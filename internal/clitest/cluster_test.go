package clitest

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCLIClusterFailover is the distributed-serving e2e: a three-node
// cluster behind cordial-router, one node SIGKILLed mid-stream. The
// control plane must rebuild the dead node's sessions from its journal
// onto the survivors (snapshot + WAL-suffix takeover), the router must
// ride out the failover with its bounded retries, and the cluster's
// final deduplicated action set must equal that of a single node that
// ingested the same log alone.
func TestCLIClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and trains models")
	}
	bin := buildAll(t)
	work := t.TempDir()

	logPath := filepath.Join(work, "fleet.jsonl")
	run(t, bin, "cordial-gen", "-seed", "21", "-uer-banks", "30",
		"-benign-banks", "20", "-log", logPath, "-format", "jsonl", "-truth", "")
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(logBytes)), "\n")
	half := len(lines) / 2
	firstHalf := []byte(strings.Join(lines[:half], "\n") + "\n")
	secondHalf := []byte(strings.Join(lines[half:], "\n") + "\n")

	// Every daemon self-trains the same (deterministic) model so the
	// cluster and the reference make identical decisions.
	serveArgs := func(walDir string, extra ...string) []string {
		return append([]string{"-train-banks", "30", "-trees", "8",
			"-wal-dir", walDir, "-fsync", "never"}, extra...)
	}

	// Reference: one node, the whole log, no failures.
	ref := startServe(t, bin, serveArgs(filepath.Join(work, "wal-ref"))...)
	if res := ref.postBody(t, logBytes); int(res["accepted"].(float64)) != len(lines) {
		t.Fatalf("reference ingest %v", res)
	}
	ref.waitDrained(t)
	want := ref.actionSet(t)
	if len(want) == 0 {
		t.Fatal("reference emitted no actions; fleet too small")
	}
	if err := ref.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := ref.cmd.Wait(); err != nil {
		t.Fatalf("reference exit: %v\noutput:\n%s", err, ref.out)
	}

	// Control plane with test-speed failure detection.
	cp := startDaemon(t, filepath.Join(bin, "cordial-control"),
		"-addr", "127.0.0.1:0", "-heartbeat-ttl", "1s", "-sweep-interval", "300ms")
	cpURL := "http://" + cp.addr

	// Three serve nodes join; handoffs at this point are empty.
	nodes := make(map[string]*serveProc, 3)
	for _, id := range []string{"n1", "n2", "n3"} {
		nodes[id] = startServe(t, bin, serveArgs(filepath.Join(work, "wal-"+id),
			"-control-plane", cpURL, "-node-id", id, "-heartbeat", "100ms")...)
	}
	var cpStats struct {
		Epoch   uint64 `json:"epoch"`
		Members []struct {
			ID string `json:"id"`
		} `json:"members"`
		Takeovers uint64 `json:"takeovers"`
	}
	waitUntil(t, "all nodes registered", func() bool {
		return cp.getJSON(t, "/statsz", &cpStats) == http.StatusOK && len(cpStats.Members) == 3
	})

	// Router: generous retries so a batch can ride out the whole failover
	// window (heartbeat TTL + sweep + takeover) on backoff alone.
	router := startDaemon(t, filepath.Join(bin, "cordial-router"),
		"-addr", "127.0.0.1:0", "-control-plane", cpURL,
		"-refresh-interval", "200ms", "-max-attempts", "8")
	waitUntil(t, "router ready", func() bool {
		return router.getJSON(t, "/readyz", nil) == http.StatusOK
	})

	// First half through the router, spread across all three nodes.
	if res := router.postBody(t, firstHalf); int(res["accepted"].(float64)) != half {
		t.Fatalf("first-half ingest %v", res)
	}
	for id, n := range nodes {
		n.waitDrained(t)
		var st map[string]any
		if n.getJSON(t, "/statsz", &st) == http.StatusOK {
			if int(st["sessionsLive"].(float64)) == 0 {
				t.Logf("note: node %s holds no sessions after first half", id)
			}
		}
	}

	// SIGKILL one node mid-stream: no drain, no snapshot, no goodbye. Its
	// accepted events exist only in its journal.
	victim := nodes["n2"]
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()

	// Second half through the router while the control plane detects the
	// death and reassigns the victim's banks to the survivors.
	if res := router.postBody(t, secondHalf); int(res["accepted"].(float64)) != len(lines)-half {
		t.Fatalf("second-half ingest %v", res)
	}
	waitUntil(t, "takeover recorded", func() bool {
		return cp.getJSON(t, "/statsz", &cpStats) == http.StatusOK &&
			cpStats.Takeovers == 1 && len(cpStats.Members) == 2
	})
	// Both survivors and the router must be ready again after failover.
	for _, id := range []string{"n1", "n3"} {
		waitUntil(t, id+" ready after failover", func() bool {
			return nodes[id].getJSON(t, "/readyz", nil) == http.StatusOK
		})
		nodes[id].waitDrained(t)
	}
	waitUntil(t, "router ready after failover", func() bool {
		return router.getJSON(t, "/readyz", nil) == http.StatusOK
	})

	// Zero verdict loss: the union of the survivors' deduplicated action
	// sets must equal the single-node reference exactly. The victim's
	// pre-crash actions reappear here because takeover replays its
	// journal on the survivors (at-least-once, same as crash recovery).
	got := map[string]bool{}
	for _, id := range []string{"n1", "n3"} {
		for k := range nodes[id].actionSet(t) {
			got[k] = true
		}
	}
	for k := range want {
		if !got[k] {
			t.Errorf("cluster missing action %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("cluster invented action %s", k)
		}
	}

	// Router /statsz aggregates per-node stats under their ring IDs.
	var rstats struct {
		Epoch uint64                    `json:"epoch"`
		Nodes map[string]map[string]any `json:"nodes"`
	}
	if code := router.getJSON(t, "/statsz", &rstats); code != http.StatusOK {
		t.Fatalf("router statsz = %d", code)
	}
	for _, id := range []string{"n1", "n3"} {
		if _, ok := rstats.Nodes[id]; !ok {
			t.Errorf("router statsz missing node %s: %v", id, rstats.Nodes)
		}
	}

	// Graceful teardown: survivors leave cleanly (SIGTERM triggers a
	// cluster leave, then drain).
	for _, id := range []string{"n1", "n3"} {
		if err := nodes[id].cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"n1", "n3"} {
		if err := nodes[id].cmd.Wait(); err != nil {
			t.Fatalf("node %s exit: %v\noutput:\n%s", id, err, nodes[id].out)
		}
	}
}

// waitUntil polls cond for up to 30s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
