package mltree

import (
	"math"
	"testing"

	"cordial/internal/xrand"
)

// blobs generates k gaussian clusters in dim dimensions, n samples per
// class, cluster centres spaced far enough to be separable at sep ≫ spread.
func blobs(seed uint64, k, n, dim int, sep, spread float64) *Dataset {
	r := xrand.New(seed)
	ds := &Dataset{}
	for c := 0; c < k; c++ {
		centre := make([]float64, dim)
		for d := range centre {
			// Deterministic centres on a lattice direction per class.
			centre[d] = sep * float64((c+d)%k)
		}
		for i := 0; i < n; i++ {
			row := make([]float64, dim)
			for d := range row {
				row[d] = centre[d] + r.Normal(0, spread)
			}
			ds.Features = append(ds.Features, row)
			ds.Labels = append(ds.Labels, c+10) // non-contiguous labels on purpose
		}
	}
	return ds
}

// accuracy evaluates a fitted classifier on a dataset.
func accuracy(c Classifier, ds *Dataset) float64 {
	correct := 0
	for i, x := range ds.Features {
		if Predict(c, x) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.NumSamples())
}

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{Features: [][]float64{{1, 2}, {3, 4}}, Labels: []int{0, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		ds   *Dataset
	}{
		{"empty", &Dataset{}},
		{"label mismatch", &Dataset{Features: [][]float64{{1}}, Labels: []int{0, 1}}},
		{"ragged", &Dataset{Features: [][]float64{{1, 2}, {3}}, Labels: []int{0, 1}}},
		{"no features", &Dataset{Features: [][]float64{{}}, Labels: []int{0}}},
		{"NaN", &Dataset{Features: [][]float64{{math.NaN()}}, Labels: []int{0}}},
		{"Inf", &Dataset{Features: [][]float64{{math.Inf(1)}}, Labels: []int{0}}},
		{"bad names", &Dataset{Features: [][]float64{{1, 2}}, Labels: []int{0}, Names: []string{"a"}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.ds.Validate(); err == nil {
				t.Fatal("invalid dataset accepted")
			}
		})
	}
}

func TestDatasetClasses(t *testing.T) {
	ds := &Dataset{Features: [][]float64{{1}, {2}, {3}}, Labels: []int{5, 3, 5}}
	got := ds.Classes()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Classes = %v", got)
	}
}

func TestSubsetWithRepeats(t *testing.T) {
	ds := &Dataset{Features: [][]float64{{1}, {2}, {3}}, Labels: []int{0, 1, 2}}
	sub := ds.Subset([]int{2, 2, 0})
	if sub.NumSamples() != 3 || sub.Labels[0] != 2 || sub.Labels[1] != 2 || sub.Labels[2] != 0 {
		t.Fatalf("Subset = %+v", sub)
	}
}

func TestSplitProportions(t *testing.T) {
	ds := blobs(1, 2, 100, 3, 10, 1)
	train, test, err := ds.Split(xrand.New(2), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumSamples() != 140 || test.NumSamples() != 60 {
		t.Fatalf("split sizes %d/%d", train.NumSamples(), test.NumSamples())
	}
	if _, _, err := ds.Split(xrand.New(2), 0); err == nil {
		t.Error("empty train side accepted")
	}
	if _, _, err := ds.Split(xrand.New(2), 1); err == nil {
		t.Error("empty test side accepted")
	}
}

func TestStratifiedSplitPreservesProportions(t *testing.T) {
	// Imbalanced: 200 of class 10, 20 of class 11.
	ds := blobs(3, 1, 200, 2, 10, 1)
	minority := blobs(4, 1, 20, 2, 10, 1)
	for i := range minority.Features {
		ds.Features = append(ds.Features, minority.Features[i])
		ds.Labels = append(ds.Labels, 11)
	}
	train, test, err := ds.StratifiedSplit(xrand.New(5), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	count := func(d *Dataset, label int) int {
		n := 0
		for _, l := range d.Labels {
			if l == label {
				n++
			}
		}
		return n
	}
	if got := count(train, 11); got != 14 {
		t.Errorf("train minority = %d, want 14", got)
	}
	if got := count(test, 11); got != 6 {
		t.Errorf("test minority = %d, want 6", got)
	}
	if train.NumSamples()+test.NumSamples() != ds.NumSamples() {
		t.Error("stratified split lost samples")
	}
}

func TestStratifiedSplitSingletonClassGoesToTrain(t *testing.T) {
	ds := &Dataset{
		Features: [][]float64{{1}, {2}, {3}, {4}, {5}},
		Labels:   []int{0, 0, 0, 0, 7},
	}
	train, test, err := ds.StratifiedSplit(xrand.New(1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range train.Labels {
		if l == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("singleton class not in training set")
	}
	for _, l := range test.Labels {
		if l == 7 {
			t.Fatal("singleton class leaked to test set")
		}
	}
}

func TestPredictTieBreaksTowardSmallerLabel(t *testing.T) {
	// A stump that returns uniform probabilities.
	tree := NewTree(TreeConfig{MaxDepth: 1}, nil)
	ds := &Dataset{
		Features: [][]float64{{0}, {0}},
		Labels:   []int{1, 2},
	}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if got := Predict(tree, []float64{0}); got != 1 {
		t.Fatalf("tie broke to %d, want 1", got)
	}
}
