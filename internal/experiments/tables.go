package experiments

import (
	"fmt"
	"io"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/trace"
	"cordial/internal/xrand"
)

// TableI is the in-row predictable ratio of UERs per micro-level (paper
// Table I).
type TableI struct {
	Rows []trace.SuddenStats
}

// RunTableI synthesises a fleet and computes the per-level sudden/non-sudden
// UER statistics.
func RunTableI(p Params) (*TableI, error) {
	fleet, err := p.fleet()
	if err != nil {
		return nil, err
	}
	return &TableI{Rows: trace.SuddenByLevel(fleet.Log)}, nil
}

// Render writes the paper-style table.
func (t *TableI) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Micro-level\tSudden UER\tNon-sudden UER\tPredictable Ratio")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", r.Level, r.Sudden, r.NonSudden, pct(r.PredictableRatio()))
	}
	return tw.Flush()
}

// RowLevelSuddenRatio returns the row-level sudden fraction (paper: 95.61%).
func (t *TableI) RowLevelSuddenRatio() float64 {
	for _, r := range t.Rows {
		if r.Level == hbm.LevelRow {
			return 1 - r.PredictableRatio()
		}
	}
	return 0
}

// TableII is the dataset summary per micro-level (paper Table II).
type TableII struct {
	Rows []trace.LevelSummary
}

// RunTableII synthesises a fleet and counts affected entities per level.
func RunTableII(p Params) (*TableII, error) {
	fleet, err := p.fleet()
	if err != nil {
		return nil, err
	}
	return &TableII{Rows: trace.SummaryByLevel(fleet.Log)}, nil
}

// Render writes the paper-style table.
func (t *TableII) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Micro-level\tWith CE\tWith UEO\tWith UER\tTotal Count")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", r.Level, r.WithCE, r.WithUEO, r.WithUER, r.Total)
	}
	return tw.Flush()
}

// TableIIIRow is one backend's pattern-classification performance.
type TableIIIRow struct {
	Model    core.ModelKind
	PerClass map[faultsim.Class]ClassScore
	Weighted ClassScore
}

// ClassScore is a precision/recall/F1 triple.
type ClassScore struct {
	Precision float64
	Recall    float64
	F1        float64
}

// TableIII is the failure-pattern classification comparison (paper
// Table III).
type TableIII struct {
	Rows []TableIIIRow
}

// TableIVRow is one strategy's cross-row prediction performance.
type TableIVRow struct {
	Name      string
	Precision float64
	Recall    float64
	F1        float64
	// HasBlocks reports whether the strategy made block predictions at
	// all; in-row methods do not, and their P/R/F1 render as "—".
	HasBlocks bool
	// ICR is the isolation coverage rate crediting all mechanisms.
	ICR float64
	// CrossRowICR credits row-granular isolation only.
	CrossRowICR float64
	// AUC is the threshold-free ROC AUC of the block probabilities;
	// HasAUC is false for strategies that emit no scores.
	AUC    float64
	HasAUC bool
}

// TableIV is the failure-prediction method comparison (paper Table IV).
type TableIV struct {
	Rows []TableIVRow
}

// RunEvaluation synthesises a fleet, splits it 70/30 at bank level, trains
// all three backends, and produces both Table III (pattern classification)
// and Table IV (cross-row prediction vs baselines). Training once for both
// tables mirrors the paper's single evaluation run.
func RunEvaluation(p Params) (*TableIII, *TableIV, error) {
	fleet, err := p.fleet()
	if err != nil {
		return nil, nil, err
	}
	train, test, err := core.SplitBanks(fleet.Faults, xrand.New(p.SplitSeed), p.TrainFrac)
	if err != nil {
		return nil, nil, err
	}
	geo := p.Spec.Fault.Geometry

	t3 := &TableIII{}
	t4 := &TableIV{}

	// Baselines first, matching the paper's row order.
	blockSpec := core.DefaultConfig(core.RandomForest).Block
	baseline := &core.NeighborRowsStrategy{Geometry: geo, Block: blockSpec}
	bres, err := core.EvaluatePrediction(baseline, test, blockSpec, p.Budget)
	if err != nil {
		return nil, nil, err
	}
	t4.Rows = append(t4.Rows, predictionRow(bres))

	inrow := &core.InRowStrategy{Geometry: geo}
	ires, err := core.EvaluatePrediction(inrow, test, blockSpec, p.Budget)
	if err != nil {
		return nil, nil, err
	}
	t4.Rows = append(t4.Rows, predictionRow(ires))

	calchas := &core.Calchas{Params: p.Model, Seed: p.SplitSeed}
	if err := calchas.Fit(train); err != nil {
		return nil, nil, fmt.Errorf("experiments: fitting Calchas-lite: %w", err)
	}
	cres, err := core.EvaluatePrediction(calchas, test, blockSpec, p.Budget)
	if err != nil {
		return nil, nil, err
	}
	t4.Rows = append(t4.Rows, predictionRow(cres))

	for _, kind := range core.AllModelKinds {
		cfg := core.DefaultConfig(kind)
		cfg.Params = p.Model
		pipe, err := core.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if err := pipe.Fit(train); err != nil {
			return nil, nil, fmt.Errorf("experiments: fitting %v: %w", kind, err)
		}

		pe, err := core.EvaluatePattern(pipe, test)
		if err != nil {
			return nil, nil, err
		}
		row := TableIIIRow{Model: kind, PerClass: make(map[faultsim.Class]ClassScore)}
		for class, rep := range pe.PerClass {
			row.PerClass[class] = ClassScore{Precision: rep.Precision, Recall: rep.Recall, F1: rep.F1}
		}
		row.Weighted = ClassScore{Precision: pe.Weighted.Precision, Recall: pe.Weighted.Recall, F1: pe.Weighted.F1}
		t3.Rows = append(t3.Rows, row)

		strat := &core.CordialStrategy{Pipeline: pipe, Geometry: geo}
		res, err := core.EvaluatePrediction(strat, test, cfg.Block, p.Budget)
		if err != nil {
			return nil, nil, err
		}
		t4.Rows = append(t4.Rows, predictionRow(res))
	}
	return t3, t4, nil
}

func predictionRow(res *core.PredictionEval) TableIVRow {
	row := TableIVRow{
		Name:        res.Name,
		Precision:   res.Block.Precision,
		Recall:      res.Block.Recall,
		F1:          res.Block.F1,
		HasBlocks:   res.BlockOutcomes.Total() > 0,
		ICR:         res.ICR.Rate(),
		CrossRowICR: res.CrossRowICR.Rate(),
	}
	row.AUC, row.HasAUC = res.BlockAUC()
	return row
}

// RunTableIII runs the evaluation and returns only Table III.
func RunTableIII(p Params) (*TableIII, error) {
	t3, _, err := RunEvaluation(p)
	return t3, err
}

// RunTableIV runs the evaluation and returns only Table IV.
func RunTableIV(p Params) (*TableIV, error) {
	_, t4, err := RunEvaluation(p)
	return t4, err
}

// Render writes the paper-style table.
func (t *TableIII) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Pattern\tModel\tPrecision\tRecall\tF1 Score")
	for _, class := range faultsim.AllClasses {
		for _, row := range t.Rows {
			s := row.PerClass[class]
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\n", class, row.Model, s.Precision, s.Recall, s.F1)
		}
	}
	for _, row := range t.Rows {
		fmt.Fprintf(tw, "Weighted Average\t%s\t%.3f\t%.3f\t%.3f\n",
			row.Model, row.Weighted.Precision, row.Weighted.Recall, row.Weighted.F1)
	}
	return tw.Flush()
}

// Best returns the backend with the highest weighted F1. Exact ties go to
// the later row; AllModelKinds lists Random Forest last, so a backend must
// strictly beat RF to displace it — mirroring the paper's preference for RF
// as the deployment choice when scores are indistinguishable.
func (t *TableIII) Best() core.ModelKind {
	best := core.ModelKind(0)
	bestF1 := -1.0
	for _, row := range t.Rows {
		if row.Weighted.F1 >= bestF1 {
			best, bestF1 = row.Model, row.Weighted.F1
		}
	}
	return best
}

// Render writes the paper-style table.
func (t *TableIV) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Methods\tPrecision\tRecall\tF1 Score\tAUC\tICR (%)\tCross-row ICR (%)")
	for _, row := range t.Rows {
		auc := "—"
		if row.HasAUC {
			auc = fmt.Sprintf("%.3f", row.AUC)
		}
		if row.HasBlocks {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%s\t%s\t%s\n",
				row.Name, row.Precision, row.Recall, row.F1, auc, pct(row.ICR), pct(row.CrossRowICR))
		} else {
			fmt.Fprintf(tw, "%s\t—\t—\t—\t%s\t%s\t%s\n",
				row.Name, auc, pct(row.ICR), pct(row.CrossRowICR))
		}
	}
	return tw.Flush()
}

// Row returns the named row, or false when absent.
func (t *TableIV) Row(name string) (TableIVRow, bool) {
	for _, r := range t.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return TableIVRow{}, false
}
