// Command cordial-train fits a Cordial pipeline (pattern classifier +
// cross-row block predictor) from ground-truth labelled banks produced by
// cordial-gen, and saves the models.
//
// Usage:
//
//	cordial-train -truth truth.json -model rf -out models.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cordial-train:", err)
		os.Exit(1)
	}
}

func parseModel(s string) (core.ModelKind, error) {
	switch strings.ToLower(s) {
	case "rf", "randomforest", "random-forest":
		return core.RandomForest, nil
	case "xgb", "xgboost":
		return core.XGBoost, nil
	case "lgbm", "lightgbm":
		return core.LightGBM, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want rf, xgb or lgbm)", s)
	}
}

func run() error {
	var (
		truthPath = flag.String("truth", "truth.json", "ground-truth path from cordial-gen")
		model     = flag.String("model", "rf", "backend: rf, xgb or lgbm")
		out       = flag.String("out", "models.json", "output model path")
		trees     = flag.Int("trees", 80, "ensemble size / boosting rounds")
		budget    = flag.Int("uer-budget", 3, "UERs used for pattern classification")
		par       = flag.Int("parallelism", 0, "training/inference goroutines (0 = all cores)")
		errBits   = flag.Bool("errbits", false, "append error-bit (DQ/burst) features to the pattern vectors; serving must load this model to match")
		topology  = flag.String("topology", hbm.ActiveProfile().Name, "topology profile the ground truth was generated under: "+strings.Join(hbm.ProfileNames(), ", "))
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if _, err := hbm.SetActiveProfile(*topology); err != nil {
		return err
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "cordial-train:", perr)
		}
	}()

	kind, err := parseModel(*model)
	if err != nil {
		return err
	}

	truthFile, err := os.Open(*truthPath)
	if err != nil {
		return err
	}
	defer truthFile.Close()
	var banks []*faultsim.BankFault
	if err := json.NewDecoder(truthFile).Decode(&banks); err != nil {
		return fmt.Errorf("decoding ground truth: %w", err)
	}
	if len(banks) == 0 {
		return fmt.Errorf("ground truth %s contains no banks", *truthPath)
	}

	cfg := core.DefaultConfig(kind)
	cfg.Params.Trees = *trees
	cfg.Params.Parallelism = *par
	cfg.Pattern.UERBudget = *budget
	cfg.ErrBits = *errBits
	pipe, err := core.New(cfg)
	if err != nil {
		return err
	}
	if err := pipe.Fit(banks); err != nil {
		return err
	}
	// Fit leaves TrainedAt zero so fitting stays deterministic; the saved
	// artefact is where provenance belongs, so stamp it here.
	if meta := pipe.Meta(); meta != nil {
		meta.TrainedAt = time.Now().UTC()
	}

	outFile, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer outFile.Close()
	if err := pipe.SaveModels(outFile); err != nil {
		return err
	}
	if err := outFile.Close(); err != nil {
		return err
	}

	fmt.Printf("trained %s on %d banks (block threshold %.3f) -> %s\n",
		kind, len(banks), pipe.Config().Threshold, *out)
	if meta := pipe.Meta(); meta != nil {
		fmt.Printf("meta: trainedAt=%s events=%d classMix=%v\n",
			meta.TrainedAt.Format(time.RFC3339), meta.EventCount, meta.ClassMix)
	}
	return nil
}
