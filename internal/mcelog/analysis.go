package mcelog

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
)

// RatePoint is one bucket of an error-rate time series.
type RatePoint struct {
	Start time.Time
	Count int
}

// RateSeries buckets the log's events into fixed-width windows from the
// log's first event to its last, returning one point per bucket (empty
// buckets included). The log should be sorted.
func (l *Log) RateSeries(bucket time.Duration) ([]RatePoint, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("mcelog: bucket must be positive, got %v", bucket)
	}
	first, last, ok := l.Span()
	if !ok {
		return nil, nil
	}
	n := int(last.Sub(first)/bucket) + 1
	points := make([]RatePoint, n)
	for i := range points {
		points[i].Start = first.Add(time.Duration(i) * bucket)
	}
	for _, e := range l.events {
		i := int(e.Time.Sub(first) / bucket)
		if i >= 0 && i < n {
			points[i].Count++
		}
	}
	return points, nil
}

// FanoFactor measures burstiness of the event process over fixed-width
// buckets: variance-to-mean ratio of per-bucket counts. 1 for a Poisson
// process, >1 for bursty processes (which HBM correctable-error episodes
// are), <1 for regular ones. It needs at least two buckets of span.
func (l *Log) FanoFactor(bucket time.Duration) (float64, error) {
	points, err := l.RateSeries(bucket)
	if err != nil {
		return 0, err
	}
	if len(points) < 2 {
		return 0, fmt.Errorf("mcelog: log spans fewer than 2 buckets of %v", bucket)
	}
	mean := 0.0
	for _, p := range points {
		mean += float64(p.Count)
	}
	mean /= float64(len(points))
	if mean == 0 {
		return 0, fmt.Errorf("mcelog: empty log")
	}
	variance := 0.0
	for _, p := range points {
		d := float64(p.Count) - mean
		variance += d * d
	}
	variance /= float64(len(points))
	return variance / mean, nil
}

// EntityLoad is one entity's event tally.
type EntityLoad struct {
	Key    uint64
	Events int
	UERs   int
}

// Address returns the entity's address (finer fields zeroed).
func (e EntityLoad) Address() hbm.Address { return hbm.Unpack(e.Key) }

// TopEntities returns the k entities at the given level with the most
// events, ties broken by UER count then key. k ≤ 0 returns all.
func (l *Log) TopEntities(level hbm.Level, k int) []EntityLoad {
	type agg struct{ events, uers int }
	loads := make(map[uint64]*agg)
	for _, e := range l.events {
		key := e.Addr.EntityKey(level)
		a := loads[key]
		if a == nil {
			a = &agg{}
			loads[key] = a
		}
		a.events++
		if e.Class == ecc.ClassUER {
			a.uers++
		}
	}
	out := make([]EntityLoad, 0, len(loads))
	for key, a := range loads {
		out = append(out, EntityLoad{Key: key, Events: a.events, UERs: a.uers})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Events != out[j].Events {
			return out[i].Events > out[j].Events
		}
		if out[i].UERs != out[j].UERs {
			return out[i].UERs > out[j].UERs
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// InterArrivals returns the successive inter-arrival durations of a sorted
// log's events.
func (l *Log) InterArrivals() []time.Duration {
	if len(l.events) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(l.events)-1)
	for i := 1; i < len(l.events); i++ {
		out = append(out, l.events[i].Time.Sub(l.events[i-1].Time))
	}
	return out
}

// Burst is a maximal run of events whose successive gaps stay within
// maxGap.
type Burst struct {
	Start, End time.Time
	Events     int
}

// Duration returns the burst's span.
func (b Burst) Duration() time.Duration { return b.End.Sub(b.Start) }

// Bursts segments a sorted log into bursts separated by gaps longer than
// maxGap, returning bursts with at least minEvents events.
func (l *Log) Bursts(maxGap time.Duration, minEvents int) ([]Burst, error) {
	if maxGap <= 0 {
		return nil, fmt.Errorf("mcelog: maxGap must be positive, got %v", maxGap)
	}
	if minEvents < 1 {
		minEvents = 1
	}
	var out []Burst
	var cur Burst
	for i, e := range l.events {
		if i == 0 || e.Time.Sub(cur.End) > maxGap {
			if i > 0 && cur.Events >= minEvents {
				out = append(out, cur)
			}
			cur = Burst{Start: e.Time, End: e.Time, Events: 1}
			continue
		}
		cur.End = e.Time
		cur.Events++
	}
	if len(l.events) > 0 && cur.Events >= minEvents {
		out = append(out, cur)
	}
	return out, nil
}
