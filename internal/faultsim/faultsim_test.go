package faultsim

import (
	"math"
	"testing"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/xrand"
)

func newGen(t *testing.T, seed uint64) *Generator {
	t.Helper()
	g, err := NewGenerator(DefaultConfig(hbm.DefaultGeometry), xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(hbm.DefaultGeometry).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"onset fraction zero", func(c *Config) { c.OnsetFraction = 0 }},
		{"onset fraction >1", func(c *Config) { c.OnsetFraction = 1.5 }},
		{"zero sigma", func(c *Config) { c.ClusterSigma = 0 }},
		{"gap inverted", func(c *Config) { c.DoubleRowGapMin = 100; c.DoubleRowGapMax = 50 }},
		{"gap too large", func(c *Config) { c.DoubleRowGapMax = 1 << 20 }},
		{"negative count range", func(c *Config) { c.BenignCEs = [2]int{-1, 3} }},
		{"inverted count range", func(c *Config) { c.ScatteredUERs = [2]int{10, 9} }},
		{"sudden prob >1", func(c *Config) { c.SuddenRowProb = 1.2 }},
		{"double-row min too small", func(c *Config) { c.DoubleRowUERs = [2]int{1, 5} }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig(hbm.DefaultGeometry)
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestNewGeneratorRejectsNilRNG(t *testing.T) {
	if _, err := NewGenerator(DefaultConfig(hbm.DefaultGeometry), nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestClassOfMapping(t *testing.T) {
	tests := map[Pattern]Class{
		PatternSingleRow:    ClassSingleRow,
		PatternDoubleRow:    ClassDoubleRow,
		PatternHalfTotalRow: ClassDoubleRow,
		PatternScattered:    ClassScattered,
		PatternWholeColumn:  ClassScattered,
	}
	for p, want := range tests {
		if got := ClassOf(p); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestIsAggregation(t *testing.T) {
	if !ClassSingleRow.IsAggregation() || !ClassDoubleRow.IsAggregation() {
		t.Error("aggregation classes not flagged")
	}
	if ClassScattered.IsAggregation() {
		t.Error("scattered flagged as aggregation")
	}
}

func TestPatternWeightsSampleMatchesDistribution(t *testing.T) {
	r := xrand.New(17)
	w := DefaultPatternWeights()
	const n = 100000
	counts := make(map[Pattern]int)
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	for p, weight := range w {
		got := float64(counts[p]) / n * 100
		if math.Abs(got-weight) > 0.6 {
			t.Errorf("%v frequency %.2f%%, want ~%.1f%%", p, got, weight)
		}
	}
}

func TestGenerateProducesGroundTruthConsistency(t *testing.T) {
	g := newGen(t, 1)
	bank := hbm.RandomBank(hbm.DefaultGeometry, xrand.New(2))
	for _, p := range AllPatterns {
		bf, err := g.Generate(bank, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if bf.Pattern != p || bf.Bank != bank {
			t.Fatalf("%v: pattern/bank mismatch", p)
		}
		n := len(bf.UERRows)
		if n == 0 || len(bf.UERTimes) != n || len(bf.SuddenRow) != n {
			t.Fatalf("%v: ground truth lengths %d/%d/%d", p, n, len(bf.UERTimes), len(bf.SuddenRow))
		}
		// UER times are non-decreasing in failure order.
		for i := 1; i < n; i++ {
			if bf.UERTimes[i].Before(bf.UERTimes[i-1]) {
				t.Fatalf("%v: UER times out of order at %d", p, i)
			}
		}
		// Every UER row has a UER event; events sorted; all within bank.
		log := mcelog.FromEvents(bf.Events)
		if !log.IsSorted() {
			t.Fatalf("%v: events not sorted", p)
		}
		uerRows := make(map[int]bool)
		for _, e := range bf.Events {
			if !e.Addr.SameBank(bank) {
				t.Fatalf("%v: event outside bank: %v", p, e.Addr)
			}
			if err := e.Validate(hbm.DefaultGeometry); err != nil {
				t.Fatalf("%v: invalid event: %v", p, err)
			}
			if e.Class == ecc.ClassUER {
				uerRows[e.Addr.Row] = true
			}
		}
		for _, row := range bf.UERRows {
			if !uerRows[row] {
				t.Fatalf("%v: ground-truth UER row %d has no UER event", p, row)
			}
		}
		if len(uerRows) != n {
			t.Fatalf("%v: %d distinct UER event rows vs %d ground truth rows", p, len(uerRows), n)
		}
	}
}

func TestSuddenRowsHaveNoPrecursors(t *testing.T) {
	g := newGen(t, 3)
	bank := hbm.BankAddress{Node: 1}
	for trial := 0; trial < 50; trial++ {
		bf, err := g.Generate(bank, PatternSingleRow)
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range bf.UERRows {
			var hasPrecursor bool
			for _, e := range bf.Events {
				if e.Addr.Row == row && e.Class != ecc.ClassUER && e.Time.Before(bf.UERTimes[i]) {
					hasPrecursor = true
				}
			}
			if bf.SuddenRow[i] && hasPrecursor {
				t.Fatalf("row %d flagged sudden but has precursor", row)
			}
			if !bf.SuddenRow[i] && !hasPrecursor {
				t.Fatalf("row %d flagged non-sudden but has no precursor", row)
			}
		}
	}
}

func TestSuddenRatioCalibration(t *testing.T) {
	g := newGen(t, 5)
	bank := hbm.BankAddress{Node: 2}
	total, sudden := 0, 0
	for trial := 0; trial < 600; trial++ {
		bf, err := g.GenerateSampled(bank, DefaultPatternWeights())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range bf.SuddenRow {
			total++
			if s {
				sudden++
			}
		}
	}
	ratio := float64(sudden) / float64(total)
	if math.Abs(ratio-0.9561) > 0.02 {
		t.Fatalf("sudden row ratio = %.4f, want ~0.9561", ratio)
	}
}

func TestSingleRowClusterIsTight(t *testing.T) {
	g := newGen(t, 7)
	bank := hbm.BankAddress{}
	for trial := 0; trial < 100; trial++ {
		bf, err := g.Generate(bank, PatternSingleRow)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := bf.UERRows[0], bf.UERRows[0]
		for _, r := range bf.UERRows {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		// With sigma 64 the whole cluster spans well under 1024 rows
		// (allowing for the occasional widened 3-sigma redraw).
		if hi-lo > 1024 {
			t.Fatalf("single-row cluster spans %d rows", hi-lo)
		}
	}
}

func TestDoubleRowHasTwoClusters(t *testing.T) {
	g := newGen(t, 9)
	cfg := g.Config()
	bank := hbm.BankAddress{}
	for trial := 0; trial < 100; trial++ {
		bf, err := g.Generate(bank, PatternDoubleRow)
		if err != nil {
			t.Fatal(err)
		}
		// The row set must split into two groups separated by a gap of at
		// least DoubleRowGapMin/2.
		rows := append([]int(nil), bf.UERRows...)
		sortInts(rows)
		maxGap, gapAt := 0, -1
		for i := 1; i < len(rows); i++ {
			if d := rows[i] - rows[i-1]; d > maxGap {
				maxGap, gapAt = d, i
			}
		}
		if maxGap < cfg.DoubleRowGapMin/2 {
			t.Fatalf("double-row max gap %d too small", maxGap)
		}
		// Both sides of the split are tight clusters.
		for _, side := range [][]int{rows[:gapAt], rows[gapAt:]} {
			if len(side) == 0 {
				t.Fatal("empty cluster side")
			}
			if side[len(side)-1]-side[0] > 1024 {
				t.Fatalf("cluster side spans %d rows", side[len(side)-1]-side[0])
			}
		}
	}
}

func TestHalfTotalRowGapIsHalfBank(t *testing.T) {
	g := newGen(t, 11)
	geo := hbm.DefaultGeometry
	bank := hbm.BankAddress{}
	for trial := 0; trial < 50; trial++ {
		bf, err := g.Generate(bank, PatternHalfTotalRow)
		if err != nil {
			t.Fatal(err)
		}
		rows := append([]int(nil), bf.UERRows...)
		sortInts(rows)
		maxGap := 0
		for i := 1; i < len(rows); i++ {
			if d := rows[i] - rows[i-1]; d > maxGap {
				maxGap = d
			}
		}
		// The dominant gap should be near half the bank (minus cluster spread).
		if math.Abs(float64(maxGap-geo.RowsPerBank/2)) > 1024 {
			t.Fatalf("half-total-row gap %d, want ~%d", maxGap, geo.RowsPerBank/2)
		}
	}
}

func TestWholeColumnPinsColumn(t *testing.T) {
	g := newGen(t, 13)
	bf, err := g.Generate(hbm.BankAddress{}, PatternWholeColumn)
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for _, e := range bf.Events {
		if col == -1 {
			col = e.Addr.Column
		}
		if e.Addr.Column != col {
			t.Fatalf("whole-column events use multiple columns: %d and %d", col, e.Addr.Column)
		}
	}
	if len(bf.UERRows) < 30 {
		t.Fatalf("whole-column has only %d UER rows", len(bf.UERRows))
	}
}

func TestScatteredSpansBank(t *testing.T) {
	g := newGen(t, 15)
	geo := hbm.DefaultGeometry
	wide := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		bf, err := g.Generate(hbm.BankAddress{}, PatternScattered)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := bf.UERRows[0], bf.UERRows[0]
		for _, r := range bf.UERRows {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		if hi-lo > geo.RowsPerBank/2 {
			wide++
		}
	}
	if wide < trials*3/4 {
		t.Fatalf("only %d/%d scattered banks span more than half the rows", wide, trials)
	}
}

func TestAggregationLocalityWithin128(t *testing.T) {
	// The Figure 4 calibration: successive UER rows of single-row clusters
	// should nearly always be within 128 rows, but not within 8.
	g := newGen(t, 17)
	within128, within8, total := 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		bf, err := g.Generate(hbm.BankAddress{}, PatternSingleRow)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(bf.UERRows); i++ {
			d := abs(bf.UERRows[i] - bf.UERRows[i-1])
			total++
			if d <= 128 {
				within128++
			}
			if d <= 8 {
				within8++
			}
		}
	}
	// With sigma 64, successive offsets are ~N(0, 64*sqrt(2)): about 84%
	// of successive pairs land within 128 rows and only ~7% within 8 —
	// wide enough that tiny thresholds miss, tight enough that 128 works.
	f128 := float64(within128) / float64(total)
	f8 := float64(within8) / float64(total)
	if f128 < 0.78 {
		t.Fatalf("within-128 fraction = %.3f, want ≥0.78", f128)
	}
	if f8 > 0.2 {
		t.Fatalf("within-8 fraction = %.3f, want <0.2 (cluster should be wider than 8 rows)", f8)
	}
}

func TestAggregationFasterThanScattered(t *testing.T) {
	g := newGen(t, 19)
	meanGap := func(p Pattern, trials int) float64 {
		var sum float64
		var n int
		for i := 0; i < trials; i++ {
			bf, err := g.Generate(hbm.BankAddress{}, p)
			if err != nil {
				t.Fatal(err)
			}
			for j := 1; j < len(bf.UERTimes); j++ {
				sum += bf.UERTimes[j].Sub(bf.UERTimes[j-1]).Hours()
				n++
			}
		}
		return sum / float64(n)
	}
	agg := meanGap(PatternSingleRow, 200)
	sc := meanGap(PatternScattered, 200)
	if agg >= sc {
		t.Fatalf("aggregation inter-UER gap %.1fh not below scattered %.1fh", agg, sc)
	}
}

func TestScatteredNoisierThanAggregation(t *testing.T) {
	g := newGen(t, 21)
	meanBg := func(p Pattern, trials int) float64 {
		var sum int
		for i := 0; i < trials; i++ {
			bf, err := g.Generate(hbm.BankAddress{}, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range bf.Events {
				if e.Class == ecc.ClassCE {
					sum++
				}
			}
		}
		return float64(sum) / float64(trials)
	}
	agg := meanBg(PatternSingleRow, 150)
	sc := meanBg(PatternScattered, 150)
	if sc <= agg+5 {
		t.Fatalf("scattered CE count %.1f not clearly above aggregation %.1f", sc, agg)
	}
}

func TestGenerateBenignNoUERs(t *testing.T) {
	g := newGen(t, 23)
	for trial := 0; trial < 100; trial++ {
		events := g.GenerateBenign(hbm.BankAddress{Node: 3})
		for _, e := range events {
			if e.Class == ecc.ClassUER {
				t.Fatal("benign bank logged a UER")
			}
			if err := e.Validate(hbm.DefaultGeometry); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	mk := func() *BankFault {
		g, err := NewGenerator(DefaultConfig(hbm.DefaultGeometry), xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		bf, err := g.Generate(hbm.BankAddress{Node: 4}, PatternDoubleRow)
		if err != nil {
			t.Fatal(err)
		}
		return bf
	}
	a, b := mk(), mk()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestEventsWithinWindow(t *testing.T) {
	g := newGen(t, 25)
	cfg := g.Config()
	end := cfg.Start.Add(cfg.Duration)
	for _, p := range AllPatterns {
		bf, err := g.Generate(hbm.BankAddress{}, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range bf.Events {
			if e.Time.Before(cfg.Start) || e.Time.After(end) {
				t.Fatalf("%v: event at %v outside window [%v,%v]", p, e.Time, cfg.Start, end)
			}
		}
	}
}

func TestPatternAndClassStrings(t *testing.T) {
	for _, p := range AllPatterns {
		if s := p.String(); s == "" || s[0] == 'P' {
			t.Errorf("Pattern(%d).String() = %q", int(p), s)
		}
	}
	for _, c := range AllClasses {
		if s := c.String(); s == "" || s[0] == 'C' {
			t.Errorf("Class(%d).String() = %q", int(c), s)
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func BenchmarkGenerateSingleRow(b *testing.B) {
	g, err := NewGenerator(DefaultConfig(hbm.DefaultGeometry), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate(hbm.BankAddress{}, PatternSingleRow); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSampled(b *testing.B) {
	g, err := NewGenerator(DefaultConfig(hbm.DefaultGeometry), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w := DefaultPatternWeights()
	for i := 0; i < b.N; i++ {
		if _, err := g.GenerateSampled(hbm.BankAddress{}, w); err != nil {
			b.Fatal(err)
		}
	}
}
