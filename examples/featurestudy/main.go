// Featurestudy: which features actually drive Cordial's two models? Train a
// pipeline, rank the pattern-classification and block-prediction features by
// importance, and relate the ranking back to the paper's §IV-B/§IV-D feature
// design (spatial vs temporal vs count families).
package main

import (
	"fmt"
	"log"
	"strings"

	"cordial"
)

func family(name string) string {
	switch {
	case strings.Contains(name, "count") || strings.Contains(name, "rate"):
		return "count"
	case strings.Contains(name, "dt_") || strings.HasSuffix(name, "_h"):
		return "temporal"
	default:
		return "spatial"
	}
}

func show(title string, imps []cordial.Importance, top int) {
	fmt.Printf("\n%s\n", title)
	fmt.Printf("%-30s %-9s %s\n", "feature", "family", "importance")
	for i, imp := range imps {
		if i >= top {
			break
		}
		bar := strings.Repeat("#", int(imp.Score*200))
		fmt.Printf("%-30s %-9s %6.3f %s\n", imp.Name, family(imp.Name), imp.Score, bar)
	}
	byFamily := map[string]float64{}
	for _, imp := range imps {
		byFamily[family(imp.Name)] += imp.Score
	}
	fmt.Printf("family totals: spatial %.2f, temporal %.2f, count %.2f\n",
		byFamily["spatial"], byFamily["temporal"], byFamily["count"])
}

func main() {
	spec := cordial.DefaultFleetSpec()
	spec.UERBanks = 250
	spec.BenignBanks = 0
	spec.Seed = 5
	fleet, err := cordial.Simulate(spec)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := cordial.Train(cordial.RandomForest, fleet.Faults)
	if err != nil {
		log.Fatal(err)
	}

	pat, err := pipe.PatternImportance()
	if err != nil {
		log.Fatal(err)
	}
	show("pattern classification — top features (first-3-UER evidence)", pat, 10)

	blk, err := pipe.BlockImportance()
	if err != nil {
		log.Fatal(err)
	}
	show("cross-row block prediction — top features (±64-row window)", blk, 10)

	fmt.Println("\n→ spatial features dominate both stages, matching the paper's bank-level")
	fmt.Println("  error-locality premise; temporal and count features mostly separate the")
	fmt.Println("  scattered pattern (frequent, dispersed errors) from the aggregations.")
}
