package mltree

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the package's single worker-pool idiom. Forest fitting,
// split-finding and batch prediction all fan out through runWorkers, which
// draws helper goroutines from one package-wide bounded token pool so that
// nested parallel sections (a parallel forest fit whose member trees also
// parallelize split search, or concurrent one-vs-rest boosting arms) cannot
// multiply into GOMAXPROCS² goroutines.
//
// Determinism contract: every call site addresses its tasks by index and
// writes results only at that index, and every reduction over task results
// runs on the calling goroutine in index order. The number of helpers
// actually recruited (which varies with pool pressure) can therefore never
// change a fitted model or a prediction — only wall-clock time.

// maxExtraWorkers bounds the helper goroutines alive across the whole
// package at any instant. Snapshotted at init; worker ids passed to tasks
// are always < maxExtraWorkers+1.
var maxExtraWorkers = runtime.GOMAXPROCS(0)

// workerTokens is the package-wide pool. A token is one helper goroutine.
var workerTokens = func() chan struct{} {
	ch := make(chan struct{}, maxExtraWorkers)
	for i := 0; i < maxExtraWorkers; i++ {
		ch <- struct{}{}
	}
	return ch
}()

// minParallelSplitWork gates feature-parallel split search: nodes whose
// |samples|×|candidate features| product is below it search serially, since
// pool traffic would cost more than it saves. Variable so tests can force
// the parallel path on tiny datasets.
var minParallelSplitWork = 2048

// defaultParallelism resolves a user parallelism knob: values <= 0 mean
// "use every core".
func defaultParallelism(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// acquireWorkers takes up to k tokens without blocking and returns how many
// it got. Non-blocking acquisition keeps nested sections deadlock-free: a
// caller that gets zero tokens simply runs inline.
func acquireWorkers(k int) int {
	got := 0
	for got < k {
		select {
		case <-workerTokens:
			got++
		default:
			return got
		}
	}
	return got
}

// releaseWorkers returns k tokens to the pool.
func releaseWorkers(k int) {
	for i := 0; i < k; i++ {
		workerTokens <- struct{}{}
	}
}

// runWorkers executes task(worker, i) for every i in [0, n), recruiting up
// to want-1 helper goroutines from the package pool (the caller's goroutine
// always works too). Worker ids are dense and unique among concurrently
// live workers, so tasks may index per-worker scratch buffers with them.
// With want <= 1, or when the pool is drained, all tasks run inline on the
// caller.
func runWorkers(n, want int, task func(worker, i int)) {
	if want > n {
		want = n
	}
	extra := 0
	if want > 1 {
		extra = acquireWorkers(want - 1)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	defer releaseWorkers(extra)
	var next atomic.Int64
	run := func(worker int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			task(worker, i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 1; w <= extra; w++ {
		go func(worker int) {
			defer wg.Done()
			run(worker)
		}(w)
	}
	run(0)
	wg.Wait()
}

// predictBatch is the shared batch-inference driver: one output row per
// input row, rows predicted independently (and therefore identically to a
// serial PredictProba loop) across up to `parallelism` workers.
func predictBatch(X [][]float64, parallelism int, perRow func(x []float64) []float64) [][]float64 {
	out := make([][]float64, len(X))
	runWorkers(len(X), defaultParallelism(parallelism), func(_, i int) {
		out[i] = perRow(X[i])
	})
	return out
}
