package wal

import (
	"fmt"
	"strconv"
	"strings"
)

// FaultSpec is a parsed disk-fault description, the bridge that lets an
// external harness (cordial-chaos) arm FaultFS inside a live daemon: the
// process is started with a spec on its command line and a disarmed
// FaultFS in the WAL path, and a signal toggles the spec on and off at
// chaos-scheduled times. In-process tests keep calling the FaultFS
// methods directly; the spec is only the serialised form.
type FaultSpec struct {
	// WriteBudget, when >= 0, arms LimitWriteBytes(WriteBudget): the write
	// that crosses the budget runs short (the torn-record shape).
	WriteBudget int64
	// SyncsLeft, when >= 0, arms FailSyncAfter(SyncsLeft): that many more
	// syncs succeed, every later one fails.
	SyncsLeft int
	// FailOpens arms the open fault.
	FailOpens bool
}

// ParseFaultSpec parses a comma-separated fault list:
//
//	sync-fail            every fsync fails
//	sync-fail=N          fsyncs fail after N more succeed
//	write-budget=N       writes run short after N more bytes
//	open-fail            every open fails
//
// An empty string is a valid spec with nothing armed.
func ParseFaultSpec(s string) (FaultSpec, error) {
	spec := FaultSpec{WriteBudget: -1, SyncsLeft: -1}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "sync-fail":
			n := 0
			if hasVal {
				v, err := strconv.Atoi(val)
				if err != nil || v < 0 {
					return FaultSpec{}, fmt.Errorf("wal: bad sync-fail count %q", val)
				}
				n = v
			}
			spec.SyncsLeft = n
		case "write-budget":
			if !hasVal {
				return FaultSpec{}, fmt.Errorf("wal: write-budget needs a byte count")
			}
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || v < 0 {
				return FaultSpec{}, fmt.Errorf("wal: bad write-budget %q", val)
			}
			spec.WriteBudget = v
		case "open-fail":
			if hasVal {
				return FaultSpec{}, fmt.Errorf("wal: open-fail takes no value")
			}
			spec.FailOpens = true
		case "":
			return FaultSpec{}, fmt.Errorf("wal: empty fault in spec %q", s)
		default:
			return FaultSpec{}, fmt.Errorf("wal: unknown fault %q (want sync-fail[=N], write-budget=N, open-fail)", key)
		}
	}
	return spec, nil
}

// String renders the spec back into its parseable form.
func (s FaultSpec) String() string {
	var parts []string
	if s.SyncsLeft == 0 {
		parts = append(parts, "sync-fail")
	} else if s.SyncsLeft > 0 {
		parts = append(parts, fmt.Sprintf("sync-fail=%d", s.SyncsLeft))
	}
	if s.WriteBudget >= 0 {
		parts = append(parts, fmt.Sprintf("write-budget=%d", s.WriteBudget))
	}
	if s.FailOpens {
		parts = append(parts, "open-fail")
	}
	return strings.Join(parts, ",")
}

// Armed reports whether the spec injects anything at all.
func (s FaultSpec) Armed() bool {
	return s.SyncsLeft >= 0 || s.WriteBudget >= 0 || s.FailOpens
}

// Apply arms f with the spec's faults.
func (s FaultSpec) Apply(f *FaultFS) {
	f.LimitWriteBytes(s.WriteBudget)
	f.FailSyncAfter(s.SyncsLeft)
	f.FailOpens(s.FailOpens)
}

// Disarm clears every fault, returning f to pass-through behaviour.
func (f *FaultFS) Disarm() {
	f.LimitWriteBytes(-1)
	f.FailSyncAfter(-1)
	f.FailOpens(false)
}
