package core

import (
	"cordial/internal/ecc"
	"cordial/internal/features"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

// NeighborRowsStrategy is the industrial baseline of §V-B: when a UER row is
// identified, isolate the Radius rows on each side of it (8 adjacent rows at
// the paper's radius of 4), hoping to contain propagation.
type NeighborRowsStrategy struct {
	// Radius is the number of rows isolated on each side (default 4).
	Radius int
	// Geometry clips the isolated rows.
	Geometry hbm.Geometry
	// Block is used only to express the heuristic as a block prediction
	// for the Table IV block metrics; it must match the evaluation spec.
	Block features.BlockSpec
}

var _ Strategy = (*NeighborRowsStrategy)(nil)

// Name returns the paper's name for the baseline.
func (s *NeighborRowsStrategy) Name() string { return "Neighbor Rows" }

// NewSession returns per-bank state.
func (s *NeighborRowsStrategy) NewSession(bank hbm.BankAddress) Session {
	r := s.Radius
	if r <= 0 {
		r = 4
	}
	return &neighborSession{strategy: s, radius: r}
}

type neighborSession struct {
	strategy *NeighborRowsStrategy
	radius   int
}

func (s *neighborSession) OnEvent(e mcelog.Event) Decision {
	if e.Class != ecc.ClassUER {
		return Decision{}
	}
	anchor := e.Addr.Row
	var rows []int
	for r := anchor - s.radius; r <= anchor+s.radius; r++ {
		if r == anchor || r < 0 || r >= s.strategy.Geometry.RowsPerBank {
			continue
		}
		rows = append(rows, r)
	}
	// Express the heuristic in block terms: blocks overlapping the
	// isolated neighbourhood count as predicted-positive.
	spec := s.strategy.Block
	var mask []bool
	if spec.WindowRadius > 0 {
		mask = make([]bool, spec.NumBlocks())
		for b := range mask {
			lo, hi := spec.BlockRange(anchor, b)
			if hi >= anchor-s.radius && lo <= anchor+s.radius {
				mask[b] = true
			}
		}
	}
	d := Decision{IsolateRows: rows}
	if mask != nil {
		d.Blocks = &BlockPrediction{AnchorRow: anchor, Predicted: mask}
	}
	return d
}

// InRowStrategy is the conventional in-row prediction paradigm the paper
// argues against (§II-C): a row is predicted to fail only when it has shown
// precursor errors, so the row is isolated as soon as it logs a CE or UEO.
// Its coverage is bounded by the non-sudden ratio — 4.39% at row level in
// Table I — which is the paper's motivating observation.
type InRowStrategy struct {
	Geometry hbm.Geometry
}

var _ Strategy = (*InRowStrategy)(nil)

// Name returns the paradigm's name.
func (s *InRowStrategy) Name() string { return "In-row" }

// NewSession returns per-bank state.
func (s *InRowStrategy) NewSession(bank hbm.BankAddress) Session {
	return &inRowSession{}
}

type inRowSession struct {
	isolated map[int]bool
}

func (s *inRowSession) OnEvent(e mcelog.Event) Decision {
	if e.Class != ecc.ClassCE && e.Class != ecc.ClassUEO {
		return Decision{}
	}
	if s.isolated == nil {
		s.isolated = make(map[int]bool)
	}
	if s.isolated[e.Addr.Row] {
		return Decision{}
	}
	s.isolated[e.Addr.Row] = true
	return Decision{IsolateRows: []int{e.Addr.Row}}
}
