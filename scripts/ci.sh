#!/bin/sh
# CI gate: formatting, vet, build, the full test suite, and the same suite
# under the race detector. The race pass is load-bearing — internal/stream
# is a concurrent engine and its tests are written to provoke races.
#
# Usage: scripts/ci.sh [extra go-test args]
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> staticcheck"
# Optional deep linting: run when the binary is installed, skip gracefully
# otherwise (hermetic CI containers don't ship it).
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipping"
fi

echo "==> go build"
go build ./...

echo "==> go test"
go test ./... "$@"

echo "==> go test -race (parallel-training equivalence focus)"
# Fast-failing race pass over the tests that exercise the shared worker
# pool hardest: parallel-vs-serial equivalence, flat-tree round-trips and
# batch inference. The full -race suite below still covers everything.
go test -race -run 'Equivalence|Parallel|RoundTrip|Batch' \
    ./internal/mltree/ ./internal/core/

echo "==> go test -race"
go test -race ./... "$@"

echo "==> crash-restart e2e (SIGKILL mid-ingest, recover, converge)"
# Kills a live cordial-serve with SIGKILL halfway through an ingest and
# asserts a restart over the same -wal-dir converges to the exact action
# set of an uninterrupted reference run. Runs inside `go test ./...` too;
# this labeled pass keeps the durability guarantee visible in CI output.
go test -run 'TestCLIServeCrashRecovery' -count 1 ./internal/clitest/

echo "==> cluster failover e2e (3 nodes + router, SIGKILL one, zero verdict loss)"
# Three serve nodes behind cordial-router, one SIGKILLed mid-stream. The
# control plane rebuilds the victim's sessions from its journal onto the
# survivors; the test asserts the cluster's deduplicated action set equals
# a single-node reference exactly — no verdict lost, none invented.
go test -run 'TestCLIClusterFailover' -count 1 ./internal/clitest/

echo "==> fuzz smoke (incremental feature equivalence, 5s)"
# Short fuzzing pass over the incremental-vs-batch feature equivalence
# property; the seed corpus alone already covers the known-tricky cutoff
# and timestamp-tie shapes, the extra seconds search for new ones.
go test -run '^$' -fuzz 'FuzzIncrementalFeatureEquivalence' -fuzztime 5s \
    ./internal/features/

echo "==> fuzz smoke (WAL record decoder, 5s)"
# The decoder must classify arbitrary bytes as a record, a clean torn
# tail, or corruption — never panic, never over-read.
go test -run '^$' -fuzz 'FuzzWALDecode' -fuzztime 5s ./internal/wal/

echo "==> fuzz smoke (consistent-hash ring placement, 5s)"
# Routing correctness rests on two ring properties: every participant
# that knows the descriptor computes the identical owner for every bank,
# and membership changes move at most ≈1/N of keys.
go test -run '^$' -fuzz 'FuzzRingPlacement' -fuzztime 5s ./internal/cluster/

echo "==> fuzz smoke (binary wire-frame decoder, 5s)"
# The frame decoder sits on the network edge: arbitrary bytes must come
# back as decoded records, a framing error, or clean EOF — never a panic,
# an over-read, or a record that a re-encode wouldn't reproduce.
go test -run '^$' -fuzz 'FuzzBinaryFrameDecode' -fuzztime 5s ./internal/mcelog/

echo "==> bench smoke (1 iteration)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "==> binary ingest perf gate (steady-state decode allocates nothing)"
# The zero-allocation claim for the hot decode loop is pinned by an
# AllocsPerRun test, not just a benchmark — run it by name so a regression
# fails CI with a direct message rather than a drifting BENCH number.
go test -run 'TestWireDecodeZeroAllocs' -count 1 ./internal/mcelog/

echo "==> topology matrix (profile registry, wire round-trips, cross-profile gates)"
# Every registered profile must validate and round-trip packed addresses
# through the wire codec allocation-free (TestWireProfileMatrix iterates
# the registry); the equivalence gates then re-run under ddr5-dimm, and a
# two-profile transfer study must complete end to end.
go test -run 'TestRegisteredProfiles|PackUnpackRoundTrip|TestWireProfileMatrix' \
    -count 1 ./internal/hbm/ ./internal/mcelog/
go test -run 'DDR5' -count 1 ./internal/stream/
go test -run 'TestTransferSmoke' -count 1 ./internal/experiments/
topodir=$(mktemp -d)
go run ./cmd/cordial-gen -topology ddr5-dimm -seed 9 -uer-banks 30 -benign-banks 20 \
    -log "$topodir/ddr5.mcelog" -truth "$topodir/ddr5-truth.json" >/dev/null
go run ./cmd/cordial-train -topology ddr5-dimm -errbits -trees 10 \
    -truth "$topodir/ddr5-truth.json" -out "$topodir/ddr5-models.json" >/dev/null
go run ./cmd/cordial-predict -topology ddr5-dimm -models "$topodir/ddr5-models.json" \
    -log "$topodir/ddr5.mcelog" | grep -q '^classified ' \
    || { echo "ddr5 predict smoke failed" >&2; exit 1; }
go run ./cmd/cordial-study -transfer hbm2e,ddr5-dimm -transfer-banks 40 -transfer-trees 8 \
    | grep -q 'baseline' || { echo "transfer study smoke failed" >&2; exit 1; }
rm -rf "$topodir"

echo "==> daemon smoke (/readyz + /metrics over a live cordial-serve)"
# Boots the daemon, waits for readiness, ingests a small batch, and asserts
# the observability endpoints: /readyz reports ready, /metrics is Prometheus
# text whose ingest counter matches what was accepted.
smokedir=$(mktemp -d)
serve_pid=""
cluster_pids=""
cleanup_smoke() {
    if [ -n "$serve_pid" ]; then
        kill "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    fi
    for pid in $cluster_pids; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$smokedir"
}

# wait_addr <logfile> <pid>: block until the daemon logs its resolved
# listen address (the msg=listening contract), echo it.
wait_addr() {
    _addr=""
    _i=0
    while [ $_i -lt 600 ]; do
        _addr=$(sed -n 's/.*msg=listening addr=\([^ ]*\).*/\1/p' "$1" | head -n 1)
        [ -n "$_addr" ] && break
        if ! kill -0 "$2" 2>/dev/null; then
            echo "daemon exited during startup:" >&2
            cat "$1" >&2
            exit 1
        fi
        sleep 0.2
        _i=$((_i + 1))
    done
    if [ -z "$_addr" ]; then
        echo "daemon never logged its address:" >&2
        cat "$1" >&2
        exit 1
    fi
    echo "$_addr"
}
trap cleanup_smoke EXIT
go build -o "$smokedir/cordial-serve" ./cmd/cordial-serve
"$smokedir/cordial-serve" -selftrain -seed 3 -train-banks 20 -trees 5 \
    -addr 127.0.0.1:0 -log-format text >"$smokedir/serve.log" 2>&1 &
serve_pid=$!
addr=""
i=0
while [ $i -lt 600 ]; do
    addr=$(sed -n 's/.*msg=listening addr=\([^ ]*\).*/\1/p' "$smokedir/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "cordial-serve exited during startup:" >&2
        cat "$smokedir/serve.log" >&2
        exit 1
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "cordial-serve never logged its address:" >&2
    cat "$smokedir/serve.log" >&2
    exit 1
fi
curl -fsS "http://$addr/readyz" | grep -q '"ready": true' \
    || { echo "readyz not ready" >&2; exit 1; }
printf '%s\n%s\n%s\n' \
    '{"time":"2026-01-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col1","class":"UER"}' \
    '{"time":"2026-01-01T00:00:01Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r2.col1","class":"CE"}' \
    '{"time":"2026-01-01T00:00:02Z","addr":"n0.u0.h0.s0.c0.p0.g0.b1.r1.col1","class":"UER"}' \
    | curl -fsS -X POST --data-binary @- "http://$addr/v1/events" \
    | grep -q '"accepted": 3' || { echo "ingest smoke failed" >&2; exit 1; }
curl -fsS "http://$addr/metrics" >"$smokedir/metrics.txt"
grep -q '^cordial_ingest_accepted_total 3$' "$smokedir/metrics.txt" \
    || { echo "metrics missing ingest counter:" >&2; cat "$smokedir/metrics.txt" >&2; exit 1; }
grep -q '^# TYPE cordial_process_seconds histogram$' "$smokedir/metrics.txt" \
    || { echo "metrics missing process histogram" >&2; exit 1; }
# Binary ingest smoke: the same daemon accepts the CRC-framed wire format
# on /v1/events.bin (cordial-gen -format wire emits a valid request body).
go run ./cmd/cordial-gen -seed 5 -uer-banks 4 -benign-banks 4 \
    -log "$smokedir/fleet.wire" -format wire -truth "" >"$smokedir/gen.out"
nwire=$(sed -n 's/^generated \([0-9]*\) events.*/\1/p' "$smokedir/gen.out")
[ -n "$nwire" ] || { echo "cordial-gen reported no event count" >&2; exit 1; }
curl -fsS -X POST -H 'Content-Type: application/octet-stream' \
    --data-binary @"$smokedir/fleet.wire" "http://$addr/v1/events.bin" \
    | grep -q "\"accepted\": $nwire" \
    || { echo "binary ingest smoke failed" >&2; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "==> online retraining smoke (drifted mix -> retrain -> shadow -> promote)"
# Boots cordial-serve with the journal and model registry enabled, ingests
# a drifted pattern mix, forces a retrain off the journal, feeds the
# candidate's shadow twins with fresh drifted traffic, and promotes it
# through the admin API — asserting the swap lands (cordial_model_swaps_total,
# /statsz active version, registry pointer) with /readyz 200 throughout.
# The lifecycle interval is parked at 30m so the smoke, not the timer,
# drives every transition deterministically.
"$smokedir/cordial-serve" -selftrain -seed 3 -train-banks 20 -trees 5 \
    -addr 127.0.0.1:0 -log-format text \
    -wal-dir "$smokedir/wal-retrain" -fsync never \
    -retrain -retrain-interval 30m >"$smokedir/retrain.log" 2>&1 &
serve_pid=$!
addr=$(wait_addr "$smokedir/retrain.log" "$serve_pid")
check_ready() {
    curl -fsS "http://$addr/readyz" | grep -q '"ready": true' \
        || { echo "readyz degraded during retraining smoke ($1)" >&2
             cat "$smokedir/retrain.log" >&2; exit 1; }
}
check_ready boot
# Drifted regime: the paper's field mix is single-row dominant; this one
# is scattered/whole-column heavy.
go run ./cmd/cordial-gen -seed 11 -uer-banks 40 -benign-banks 10 \
    -weights 'single=5,scattered=70,wholecol=25' \
    -log "$smokedir/drift-a.wire" -format wire -truth ""
curl -fsS -X POST -H 'Content-Type: application/octet-stream' \
    --data-binary @"$smokedir/drift-a.wire" "http://$addr/v1/events.bin" >/dev/null
check_ready ingest
curl -fsS -X POST -d '{"trigger":"ci-smoke"}' "http://$addr/v1/models/retrain" \
    | grep -q '"status": "retraining"' \
    || { echo "forced retrain refused:" >&2; cat "$smokedir/retrain.log" >&2; exit 1; }
curl -fsS "http://$addr/v1/models" >"$smokedir/models.json"
grep -q '"candidateVersion": 2' "$smokedir/models.json" \
    || { echo "candidate not shadowing:" >&2; cat "$smokedir/models.json" >&2; exit 1; }
# Fresh drifted banks (different seed) create their sessions while the
# shadow is live, so each gets a candidate twin and the shadow scores
# real traffic before the promotion decision.
go run ./cmd/cordial-gen -seed 12 -uer-banks 40 -benign-banks 10 \
    -weights 'single=5,scattered=70,wholecol=25' \
    -log "$smokedir/drift-b.wire" -format wire -truth ""
curl -fsS -X POST -H 'Content-Type: application/octet-stream' \
    --data-binary @"$smokedir/drift-b.wire" "http://$addr/v1/events.bin" >/dev/null
check_ready shadow
curl -fsS -X POST "http://$addr/v1/models/promote" \
    | grep -q '"activeVersion": 2' \
    || { echo "candidate promotion failed:" >&2; cat "$smokedir/retrain.log" >&2; exit 1; }
i=0
until curl -fsS "http://$addr/metrics" | grep -q '^cordial_model_swaps_total 1$'; do
    i=$((i + 1))
    [ $i -lt 50 ] || { echo "model swap never reached /metrics" >&2
                       cat "$smokedir/retrain.log" >&2; exit 1; }
    sleep 0.2
done
check_ready promoted
curl -fsS "http://$addr/statsz" | grep -q '"activeModelVersion": 2' \
    || { echo "statsz missing new active version" >&2; exit 1; }
curl -fsS "http://$addr/v1/models" | grep -q '"activeVersion": 2' \
    || { echo "registry active pointer not flipped" >&2; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "==> multi-node smoke (control plane + 2 nodes + router, kill one node)"
# Boots a live two-node cluster behind the router, ingests through the
# router, SIGKILLs one node, and asserts the cluster heals: the control
# plane records the takeover, the survivor and the router both return to
# /readyz 200, and post-failover ingest through the router still lands.
# (Verdict-level zero-loss is pinned by TestCLIClusterFailover above.)
go build -o "$smokedir/cordial-control" ./cmd/cordial-control
go build -o "$smokedir/cordial-router" ./cmd/cordial-router
"$smokedir/cordial-control" -addr 127.0.0.1:0 \
    -heartbeat-ttl 1s -sweep-interval 300ms >"$smokedir/cp.log" 2>&1 &
cp_pid=$!
cluster_pids="$cp_pid"
cp_addr=$(wait_addr "$smokedir/cp.log" "$cp_pid")
for n in 1 2; do
    "$smokedir/cordial-serve" -selftrain -seed 3 -train-banks 20 -trees 5 \
        -addr 127.0.0.1:0 -control-plane "http://$cp_addr" -node-id "n$n" \
        -heartbeat 100ms -wal-dir "$smokedir/wal-n$n" -fsync never \
        >"$smokedir/n$n.log" 2>&1 &
    eval "n${n}_pid=\$!"
done
cluster_pids="$cluster_pids $n1_pid $n2_pid"
n1_addr=$(wait_addr "$smokedir/n1.log" "$n1_pid")
wait_addr "$smokedir/n2.log" "$n2_pid" >/dev/null
"$smokedir/cordial-router" -addr 127.0.0.1:0 -control-plane "http://$cp_addr" \
    -refresh-interval 200ms -max-attempts 8 >"$smokedir/router.log" 2>&1 &
router_pid=$!
cluster_pids="$cluster_pids $router_pid"
router_addr=$(wait_addr "$smokedir/router.log" "$router_pid")
i=0
until curl -fsS "http://$router_addr/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -lt 100 ] || { echo "router never became ready" >&2; cat "$smokedir/router.log" >&2; exit 1; }
    sleep 0.2
done
go run ./cmd/cordial-gen -seed 3 -uer-banks 20 -benign-banks 10 \
    -log "$smokedir/fleet.jsonl" -format jsonl -truth ""
lines=$(wc -l <"$smokedir/fleet.jsonl")
curl -fsS -X POST --data-binary @"$smokedir/fleet.jsonl" \
    "http://$router_addr/v1/events" >"$smokedir/ingest1.json"
grep -q "\"accepted\":$lines" "$smokedir/ingest1.json" \
    || { echo "router ingest incomplete:" >&2; cat "$smokedir/ingest1.json" >&2; exit 1; }
kill -9 "$n2_pid" 2>/dev/null || true
wait "$n2_pid" 2>/dev/null || true
i=0
until curl -fsS "http://$cp_addr/statsz" 2>/dev/null | grep -q '"takeovers":1'; do
    i=$((i + 1))
    [ $i -lt 150 ] || { echo "takeover never recorded" >&2; cat "$smokedir/cp.log" >&2; exit 1; }
    sleep 0.2
done
for probe in "$n1_addr" "$router_addr"; do
    i=0
    until curl -fsS "http://$probe/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -lt 100 ] || { echo "$probe not ready after failover" >&2; exit 1; }
        sleep 0.2
    done
done
curl -fsS -X POST --data-binary @"$smokedir/fleet.jsonl" \
    "http://$router_addr/v1/events" >"$smokedir/ingest2.json"
grep -q "\"accepted\":$lines" "$smokedir/ingest2.json" \
    || { echo "post-failover ingest incomplete:" >&2; cat "$smokedir/ingest2.json" >&2; exit 1; }
curl -fsS "http://$router_addr/statsz" | grep -q '"n1"' \
    || { echo "router statsz missing survivor" >&2; exit 1; }
# Binary end-to-end: the same fleet as CRC-framed wire frames through the
# router's /v1/events.bin, forwarded upstream over the binary codec.
go run ./cmd/cordial-gen -seed 3 -uer-banks 20 -benign-banks 10 \
    -log "$smokedir/fleet.wire" -format wire -truth ""
curl -fsS -X POST -H 'Content-Type: application/octet-stream' \
    --data-binary @"$smokedir/fleet.wire" \
    "http://$router_addr/v1/events.bin" >"$smokedir/ingest3.json"
grep -q "\"accepted\":$lines" "$smokedir/ingest3.json" \
    || { echo "router binary ingest incomplete:" >&2; cat "$smokedir/ingest3.json" >&2; exit 1; }

echo "==> chaos scenarios (validate all, then the ~30s smoke run)"
# Every checked-in scenario must parse and validate; then the short
# two-node smoke scenario actually runs — fleet bring-up, wire-codec
# load, one SIGKILL with journal takeover, a poison burst — and its SLO
# verdict (recovery time, availability, zero verdict loss, zero poison
# accepted) is the gate. Reuses the daemons built above via --bin.
go build -o "$smokedir/cordial-chaos" ./cmd/cordial-chaos
"$smokedir/cordial-chaos" validate scenarios/*.yaml
"$smokedir/cordial-chaos" run scenarios/ci-smoke.yaml --bin "$smokedir" \
    --work "$smokedir/chaos-work" \
    --json "$smokedir/chaos-smoke.json" --html "$smokedir/chaos-smoke.html"
grep -q '"pass": true' "$smokedir/chaos-smoke.json" \
    || { echo "chaos smoke report does not record a pass" >&2; exit 1; }

echo "==> ok"
