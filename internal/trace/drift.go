package trace

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

// Regime is one period of fleet behaviour with its own failure-pattern mix —
// what a firmware rollout or a new HBM vendor batch looks like in the field.
type Regime struct {
	// Duration of the regime.
	Duration time.Duration
	// Weights is the pattern mix during the regime.
	Weights faultsim.PatternWeights
	// UERBanks is the number of faulty banks arising in the regime.
	UERBanks int
}

// DriftSpec configures a multi-regime fleet whose failure behaviour changes
// over time. It exists to exercise drift detection and retraining.
type DriftSpec struct {
	// Fault configures the per-bank process; its Start anchors regime 0
	// and its Duration is ignored (regimes carry their own).
	Fault faultsim.Config
	// Regimes play back to back.
	Regimes []Regime
	// Seed drives all randomness.
	Seed uint64
}

// Validate checks the specification.
func (s DriftSpec) Validate() error {
	if len(s.Regimes) == 0 {
		return fmt.Errorf("trace: drift spec has no regimes")
	}
	for i, r := range s.Regimes {
		if r.Duration <= 0 {
			return fmt.Errorf("trace: regime %d has non-positive duration", i)
		}
		if r.UERBanks < 1 {
			return fmt.Errorf("trace: regime %d has no banks", i)
		}
		total := 0.0
		for _, w := range r.Weights {
			total += w
		}
		if total <= 0 {
			return fmt.Errorf("trace: regime %d has no positive pattern weights", i)
		}
	}
	return s.Fault.Validate()
}

// DriftFleet is the generated multi-regime dataset.
type DriftFleet struct {
	// Faults holds every bank's ground truth, ordered by onset (the time
	// of the bank's first UER).
	Faults []*faultsim.BankFault
	// RegimeOf[i] is the regime index of Faults[i].
	RegimeOf []int
}

// GenerateDrift synthesises the multi-regime fleet. Each regime's banks get
// fault onsets inside that regime's window, so replaying Faults in order
// walks through the drift.
func GenerateDrift(spec DriftSpec) (*DriftFleet, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(spec.Seed)
	out := &DriftFleet{}
	used := make(map[uint64]bool)
	regimeStart := spec.Fault.Start

	for ri, regime := range spec.Regimes {
		cfg := spec.Fault
		cfg.Start = regimeStart
		cfg.Duration = regime.Duration
		gen, err := faultsim.NewGenerator(cfg, rng.Split())
		if err != nil {
			return nil, err
		}
		for b := 0; b < regime.UERBanks; b++ {
			var bank hbm.BankAddress
			for attempt := 0; ; attempt++ {
				bank = hbm.RandomBank(cfg.Geometry, rng)
				if !used[bank.Pack()] {
					used[bank.Pack()] = true
					break
				}
				if attempt > 64 {
					return nil, fmt.Errorf("trace: could not place bank in regime %d", ri)
				}
			}
			bf, err := gen.GenerateSampled(bank, regime.Weights)
			if err != nil {
				return nil, err
			}
			out.Faults = append(out.Faults, bf)
			out.RegimeOf = append(out.RegimeOf, ri)
		}
		regimeStart = regimeStart.Add(regime.Duration)
	}

	// Order by first-UER time so replay follows wall-clock drift.
	order := make([]int, len(out.Faults))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return out.Faults[order[a]].UERTimes[0].Before(out.Faults[order[b]].UERTimes[0])
	})
	faults := make([]*faultsim.BankFault, len(order))
	regimes := make([]int, len(order))
	for i, idx := range order {
		faults[i] = out.Faults[idx]
		regimes[i] = out.RegimeOf[idx]
	}
	out.Faults = faults
	out.RegimeOf = regimes
	return out, nil
}

// MixOf tallies the class mix of one regime's banks.
func (f *DriftFleet) MixOf(regime int) map[faultsim.Class]int {
	mix := make(map[faultsim.Class]int)
	for i, bf := range f.Faults {
		if f.RegimeOf[i] == regime {
			mix[bf.Class()]++
		}
	}
	return mix
}
