package stream

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cordial/internal/obs"
	"cordial/internal/wal"
)

// scrapeMetrics fetches /metrics and validates every line against the
// exposition grammar before returning the body.
func scrapeMetrics(t *testing.T, srv *Server) string {
	t.Helper()
	rec, body := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := obs.ValidateLine(line); err != nil {
			t.Fatalf("invalid exposition line %q: %v", line, err)
		}
	}
	return string(body)
}

// metricValue returns the value of the single series named exactly series
// (including any label block), failing if it is absent.
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", series, exposition)
	return 0
}

// metricSum sums every series of the family (e.g. all shard labels).
func metricSum(t *testing.T, exposition, family string) float64 {
	t.Helper()
	sum, found := 0.0, false
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // longer name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("family %s: bad line %q", family, line)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("family %s not in exposition:\n%s", family, exposition)
	}
	return sum
}

// TestMetricsExposition pins the /metrics contract: a valid Prometheus
// text scrape covering every serving layer, with counters monotone across
// scrapes.
func TestMetricsExposition(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 2})
	bank := testBank(1)
	post(t, srv, jsonlBody(t, uerAt(bank, 100, 0), uerAt(bank, 101, 1), uerAt(bank, 102, 2)))
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	out := scrapeMetrics(t, srv)
	// One scrape covers HTTP, engine counters, latency histograms, shard
	// gauges — the ISSUE's required families.
	for _, want := range []string{
		"# TYPE cordial_ingest_accepted_total counter",
		"# TYPE cordial_ingest_dropped_total counter",
		"# TYPE cordial_events_processed_total counter",
		"# TYPE cordial_events_quarantined_total counter",
		"# TYPE cordial_ingest_wait_seconds histogram",
		"# TYPE cordial_process_seconds histogram",
		"# TYPE cordial_shard_queue_depth gauge",
		"# TYPE cordial_feature_state_bytes gauge",
		"# TYPE cordial_http_requests_total counter",
		"# TYPE cordial_http_decode_seconds histogram",
		`cordial_events_processed_total{shard="0"}`,
		`cordial_events_processed_total{shard="1"}`,
		"cordial_process_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if got := metricValue(t, out, "cordial_ingest_accepted_total"); got != 3 {
		t.Errorf("ingest_accepted_total = %v, want 3", got)
	}
	if got := metricSum(t, out, "cordial_events_processed_total"); got != 3 {
		t.Errorf("sum(events_processed_total) = %v, want 3", got)
	}

	// Monotonicity: more traffic, second scrape, counters only go up.
	post(t, srv, jsonlBody(t, uerAt(bank, 103, 3)))
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out2 := scrapeMetrics(t, srv)
	for _, c := range []string{
		"cordial_ingest_accepted_total",
		"cordial_http_requests_total",
		"cordial_process_seconds_count",
	} {
		before, after := metricValue(t, out, c), metricValue(t, out2, c)
		if after <= before {
			t.Errorf("%s not monotone across scrapes: %v -> %v", c, before, after)
		}
	}
}

// TestStatszMetricsAgree pins the one-source-of-truth property: every
// quantity reported by both /statsz and /metrics is identical, because
// both read the same instruments.
func TestStatszMetricsAgree(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 3})
	for i := 0; i < 4; i++ {
		bank := testBank(i)
		post(t, srv, jsonlBody(t,
			uerAt(bank, 100, 0), uerAt(bank, 101, 1), uerAt(bank, 102, 2), uerAt(bank, 102, 3)))
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Scrape /metrics FIRST: the /statsz request increments the HTTP
	// request counter, so the later JSON view must be >= the scrape.
	out := scrapeMetrics(t, srv)
	rec, body := get(t, srv, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz = %d", rec.Code)
	}
	var st struct {
		Ingested       uint64 `json:"ingested"`
		Dropped        uint64 `json:"dropped"`
		Processed      uint64 `json:"processed"`
		ActionsEmitted uint64 `json:"actionsEmitted"`
		Quarantined    uint64 `json:"quarantined"`
		Process        struct {
			Count uint64 `json:"count"`
		} `json:"processLatency"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		json uint64
		prom float64
	}{
		{"ingested", st.Ingested, metricValue(t, out, "cordial_ingest_accepted_total")},
		{"dropped", st.Dropped, metricSum(t, out, "cordial_ingest_dropped_total")},
		{"processed", st.Processed, metricSum(t, out, "cordial_events_processed_total")},
		{"actionsEmitted", st.ActionsEmitted, metricValue(t, out, "cordial_actions_emitted_total")},
		{"quarantined", st.Quarantined, metricSum(t, out, "cordial_events_quarantined_total")},
		{"processCount", st.Process.Count, metricValue(t, out, "cordial_process_seconds_count")},
	} {
		if float64(tc.json) != tc.prom {
			t.Errorf("%s: /statsz %d != /metrics %v", tc.name, tc.json, tc.prom)
		}
	}
	if st.Ingested == 0 || st.Processed == 0 {
		t.Fatalf("test ingested nothing (ingested=%d processed=%d)", st.Ingested, st.Processed)
	}
}

// TestReadyzFlipsOnWALAppendFailure pins the readiness regression: a
// daemon whose journal cannot fsync keeps answering 200 on /healthz
// (liveness — restarting won't fix the disk) but must flip /readyz to 503
// until an append succeeds again.
func TestReadyzFlipsOnWALAppendFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	ffs := wal.NewFaultFS(wal.OSFS)
	cfg := durCfg(dir, 2, nil)
	cfg.Durability.FS = ffs
	cfg.Durability.Sync = wal.SyncAlways
	engine, srv := newTestServer(t, cfg)
	bank := testBank(3)

	if rec, body := get(t, srv, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("initial readyz = %d: %s", rec.Code, body)
	}

	ffs.FailSyncAfter(0)
	if err := engine.Ingest(uerAt(bank, 100, 0)); err == nil {
		t.Fatal("ingest under failing fsync succeeded")
	}
	rec, body := get(t, srv, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after append failure = %d, want 503", rec.Code)
	}
	var ready struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Ready || len(ready.Reasons) == 0 || !strings.Contains(ready.Reasons[0], "WAL append") {
		t.Fatalf("readyz body %+v", ready)
	}
	// Liveness must NOT flip: the process is healthy, the disk is not.
	if rec, _ := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz flipped to %d under WAL failure", rec.Code)
	}
	// /statsz surfaces the same condition.
	_, sbody := get(t, srv, "/statsz")
	var st struct {
		WALAppendErrors uint64 `json:"walAppendErrors"`
		LastAppendErr   string `json:"lastWALAppendError"`
	}
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if st.WALAppendErrors != 1 || st.LastAppendErr == "" {
		t.Fatalf("statsz wal append errors = %d (%q), want 1 with message", st.WALAppendErrors, st.LastAppendErr)
	}

	// Recovery: the fault clears, one successful append restores readiness.
	ffs.FailSyncAfter(-1)
	if err := engine.Ingest(uerAt(bank, 101, 1)); err != nil {
		t.Fatal(err)
	}
	if rec, body := get(t, srv, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d: %s", rec.Code, body)
	}
}

// TestReadyzFlipsOnDegradedSession: a poisoned event quarantines its
// session; the instance keeps serving (healthz 200) but reports not-ready
// so the balancer can rotate it out for inspection.
func TestReadyzFlipsOnDegradedSession(t *testing.T) {
	engine, srv := newTestServer(t, Config{
		Shards:   2,
		Strategy: &fakeStrategy{budget: 3, poisonRow: 666},
	})
	bank := testBank(2)
	if err := engine.Ingest(uerAt(bank, 666, 0)); err != nil {
		t.Fatal(err)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rec, body := get(t, srv, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with degraded session = %d: %s", rec.Code, body)
	}
	if !strings.Contains(string(body), "degraded") {
		t.Fatalf("readyz body lacks degraded reason: %s", body)
	}
	if rec, _ := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz flipped under degradation")
	}
	// The quarantine landed on the shard counter too.
	out := scrapeMetrics(t, srv)
	if got := metricSum(t, out, "cordial_events_quarantined_total"); got != 1 {
		t.Errorf("quarantined sum = %v, want 1", got)
	}
}

// TestMetricsScrapeConcurrentWithIngest exercises every instrument and
// both telemetry endpoints under concurrent load; meaningful under -race
// (the CI race pass runs this package).
func TestMetricsScrapeConcurrentWithIngest(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 4, Policy: IngestDrop, QueueDepth: 8})
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				bank := testBank(w*31 + i%17)
				err := engine.Ingest(uerAt(bank, 100+i%7, i))
				if err != nil && err != ErrDropped {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if err := engine.Drain(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			out := scrapeMetrics(t, srv)
			accepted := metricValue(t, out, "cordial_ingest_accepted_total")
			dropped := metricSum(t, out, "cordial_ingest_dropped_total")
			if accepted+dropped != writers*perWriter {
				t.Fatalf("accepted %v + dropped %v != %d", accepted, dropped, writers*perWriter)
			}
			if processed := metricSum(t, out, "cordial_events_processed_total"); processed != accepted {
				t.Fatalf("processed %v != accepted %v after drain", processed, accepted)
			}
			return
		default:
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("mid-load scrape = %d", rec.Code)
			}
			rec = httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("mid-load statsz = %d", rec.Code)
			}
		}
	}
}

// failRemoveFS fails every Remove — the deterministic stand-in for a
// retention step that cannot delete retired files (immutable bit, NFS
// permission skew, ...). Snapshot writes still succeed.
type failRemoveFS struct {
	wal.FS
	fail bool
}

func (f *failRemoveFS) Remove(name string) error {
	if f.fail {
		return errInjectedRemove
	}
	return f.FS.Remove(name)
}

var errInjectedRemove = errors.New("test: injected remove fault")

// TestRetentionErrorsSurfaced pins the swallowed-retention-error fix:
// when post-snapshot journal truncation fails, the snapshot still
// succeeds (retention is best-effort) but the failure is counted on
// cordial_retention_errors_total and /statsz instead of vanishing.
func TestRetentionErrorsSurfaced(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	fs := &failRemoveFS{FS: wal.OSFS}
	// One shard so the retention floor is that shard's applied LSN and
	// truncation actually has retired segments to remove; tiny segments so
	// 40 events span several of them.
	cfg := durCfg(dir, 1, nil)
	cfg.Durability.FS = fs
	cfg.Durability.SegmentBytes = 256
	engine, srv := newTestServer(t, cfg)
	bank := testBank(5)
	for i := 0; i < 40; i++ {
		if err := engine.Ingest(uerAt(bank, 100+i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	fs.fail = true
	if _, err := engine.Snapshot(); err != nil {
		t.Fatalf("snapshot must survive a retention failure, got %v", err)
	}
	fs.fail = false

	st := engine.Stats()
	if st.RetentionErrors == 0 {
		t.Fatal("retention failure not counted in EngineStats.RetentionErrors")
	}
	out := scrapeMetrics(t, srv)
	if got := metricValue(t, out, "cordial_retention_errors_total"); got != float64(st.RetentionErrors) {
		t.Fatalf("cordial_retention_errors_total = %v, engine says %d", got, st.RetentionErrors)
	}
	_, body := get(t, srv, "/statsz")
	var js struct {
		RetentionErrors uint64 `json:"retentionErrors"`
	}
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.RetentionErrors != st.RetentionErrors {
		t.Fatalf("statsz retentionErrors %d != engine %d", js.RetentionErrors, st.RetentionErrors)
	}
	// A later snapshot with working retention does not re-fail.
	before := st.RetentionErrors
	if _, err := engine.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := engine.Stats().RetentionErrors; got != before {
		t.Fatalf("healthy retention still counted errors: %d -> %d", before, got)
	}
}
