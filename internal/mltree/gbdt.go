package mltree

import (
	"fmt"
	"math"
	"runtime"

	"cordial/internal/xrand"
)

// GBDTConfig configures the XGBoost-style gradient-boosted trees.
type GBDTConfig struct {
	// Rounds is the number of boosting rounds per class (default 100).
	Rounds int
	// LearningRate is the shrinkage applied to every tree (default 0.1).
	LearningRate float64
	// MaxDepth bounds each tree (default 4).
	MaxDepth int
	// MinSamplesLeaf is the minimum samples per leaf (default 1).
	MinSamplesLeaf int
	// Lambda is the L2 regularisation on leaf values (default 1).
	Lambda float64
	// Gamma is the minimum gain to make a split (default 0).
	Gamma float64
	// MinChildWeight is the minimum hessian sum per child (default 1e-3).
	MinChildWeight float64
	// SubsampleRatio is the per-tree row subsample fraction in (0,1]
	// (default 1).
	SubsampleRatio float64
	// ColsampleRatio is the per-split feature subsample fraction in (0,1]
	// (default 1).
	ColsampleRatio float64
	// PositiveWeight scales the gradient/hessian of positive samples to
	// counter class imbalance (default 1; like scale_pos_weight).
	PositiveWeight float64
	// EarlyStopRounds stops boosting when the held-out log-loss has not
	// improved for this many rounds (0 disables). A 20% validation split
	// is carved from the training data.
	EarlyStopRounds int
	// Parallelism caps the goroutines fitting one-vs-rest arms and
	// searching splits; <=0 means runtime.GOMAXPROCS(0). Results are
	// identical for any value: arm RNG streams are derived up front and
	// split search reduces deterministically.
	Parallelism int
	// Seed drives row/column subsampling and the early-stop split.
	Seed uint64
}

func (c GBDTConfig) withDefaults() GBDTConfig {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.Lambda < 0 {
		c.Lambda = 1
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.MinChildWeight <= 0 {
		c.MinChildWeight = 1e-3
	}
	if c.SubsampleRatio <= 0 || c.SubsampleRatio > 1 {
		c.SubsampleRatio = 1
	}
	if c.PositiveWeight <= 0 {
		c.PositiveWeight = 1
	}
	if c.EarlyStopRounds < 0 {
		c.EarlyStopRounds = 0
	}
	if c.ColsampleRatio <= 0 || c.ColsampleRatio > 1 {
		c.ColsampleRatio = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// booster is one binary logistic gradient-boosting chain (one-vs-rest arm).
type booster struct {
	Bias  float64     `json:"bias"`
	Trees []*treeNode `json:"trees"`
	LR    float64     `json:"lr"`

	// flat is the chain compiled for inference; rebuilt by compile()
	// after fitting or deserialising.
	flat *flatEnsemble
}

// compile flattens the fitted chain for cache-friendly inference.
func (b *booster) compile() { b.flat = compileEnsemble(b.Trees) }

// raw returns the margin (log-odds) for x. The flat path accumulates
// lr × leaf-value in tree order, the exact floating-point sequence of the
// pointer walk.
func (b *booster) raw(x []float64) float64 {
	if b.flat != nil {
		return b.flat.margin(b.Bias, b.LR, x)
	}
	s := b.Bias
	for _, t := range b.Trees {
		s += b.LR * t.navigate(x).Value
	}
	return s
}

func sigmoid(z float64) float64 {
	return 1 / (1 + math.Exp(-z))
}

// GBDT is a gradient-boosted decision tree classifier in the XGBoost style:
// second-order (Newton) boosting of regression trees on the logistic loss,
// with L2 leaf regularisation, shrinkage, and row/column subsampling.
// Multi-class problems are handled one-vs-rest.
type GBDT struct {
	Config   GBDTConfig
	classes  []int
	boosters []*booster
}

// NewGBDT returns an unfitted GBDT.
func NewGBDT(cfg GBDTConfig) *GBDT {
	return &GBDT{Config: cfg.withDefaults()}
}

var _ Classifier = (*GBDT)(nil)

// Classes returns the labels seen during Fit.
func (g *GBDT) Classes() []int { return g.classes }

// Fit trains one boosting chain per class (a single chain for binary
// problems).
func (g *GBDT) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	g.classes = ds.Classes()
	if len(g.classes) < 2 {
		return fmt.Errorf("mltree: GBDT needs ≥2 classes, got %d", len(g.classes))
	}
	rng := xrand.New(g.Config.Seed)

	arms := len(g.classes)
	if arms == 2 {
		arms = 1 // binary: a single chain for the positive (larger) class
	}
	// Derive every arm's RNG up front, in arm order, so concurrent arm
	// fitting consumes the exact streams the serial loop did.
	rngs := make([]*xrand.RNG, arms)
	for a := range rngs {
		rngs[a] = rng.Split()
	}
	g.boosters = make([]*booster, arms)
	errs := make([]error, arms)
	runWorkers(arms, g.Config.Parallelism, func(_, a int) {
		positive := g.classes[a]
		if len(g.classes) == 2 {
			positive = g.classes[1]
		}
		y := make([]float64, ds.NumSamples())
		for i, l := range ds.Labels {
			if l == positive {
				y[i] = 1
			}
		}
		b, err := g.fitBinary(ds, y, rngs[a])
		if err != nil {
			errs[a] = fmt.Errorf("mltree: GBDT arm %d: %w", a, err)
			return
		}
		b.compile()
		g.boosters[a] = b
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (g *GBDT) fitBinary(ds *Dataset, y []float64, rng *xrand.RNG) (*booster, error) {
	cfg := g.Config
	n := ds.NumSamples()

	// Optional early-stopping validation split.
	trainIdx := make([]int, 0, n)
	var valIdx []int
	if cfg.EarlyStopRounds > 0 && n >= 20 {
		perm := rng.Perm(n)
		cut := n / 5
		valIdx = perm[:cut]
		trainIdx = append(trainIdx, perm[cut:]...)
	} else {
		for i := 0; i < n; i++ {
			trainIdx = append(trainIdx, i)
		}
	}

	pos := 0.0
	for _, i := range trainIdx {
		pos += y[i]
	}
	// Prior log-odds, clamped away from degeneracy.
	p0 := (pos + 1) / (float64(len(trainIdx)) + 2)
	b := &booster{Bias: math.Log(p0 / (1 - p0)), LR: cfg.LearningRate}

	margin := make([]float64, n)
	for i := range margin {
		margin[i] = b.Bias
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	numFeatures := ds.NumFeatures()
	colsPerSplit := int(math.Round(cfg.ColsampleRatio * float64(numFeatures)))
	if colsPerSplit < 1 {
		colsPerSplit = 1
	}

	bestLoss := math.Inf(1)
	bestLen := 0
	sinceBest := 0

	// The columnized matrix is shared by every round's tree, and when row
	// subsampling is off (the default) the per-feature sorted order of the
	// training rows never changes either — presort once and let every tree
	// start from the same read-only root lists.
	cols := columnize(ds.Features)
	part := newPartitioner(n)
	var rootSorted [][]int32
	if cfg.SubsampleRatio >= 1 {
		rootSorted = presortByFeature(cols, trainIdx)
	}

	for round := 0; round < cfg.Rounds; round++ {
		for _, i := range trainIdx {
			p := sigmoid(margin[i])
			w := 1.0
			if y[i] == 1 {
				w = cfg.PositiveWeight
			}
			grad[i] = w * (p - y[i])
			hess[i] = w * p * (1 - p)
		}
		rt := &regTree{
			cfg: TreeConfig{
				MaxDepth:        cfg.MaxDepth,
				MinSamplesSplit: 2 * cfg.MinSamplesLeaf,
				MinSamplesLeaf:  cfg.MinSamplesLeaf,
			},
			lambda:  cfg.Lambda,
			gamma:   cfg.Gamma,
			minHess: cfg.MinChildWeight,
			rng:     rng,
			maxFeat: colsPerSplit,
			cols:    cols,
			grad:    grad,
			hess:    hess,
			part:    part,
		}
		var root *treeNode
		if rootSorted != nil {
			// Tree growth partitions its lists in place, so each round
			// works on an arena copy of the cached root presort.
			root = rt.build(copyLists(rootSorted), 0)
		} else {
			root = rt.fit(g.subsample(trainIdx, rng))
		}
		b.Trees = append(b.Trees, root)
		for i := 0; i < n; i++ {
			margin[i] += cfg.LearningRate * root.navigate(ds.Features[i]).Value
		}

		if len(valIdx) > 0 {
			loss := 0.0
			for _, i := range valIdx {
				loss += logLoss(y[i], sigmoid(margin[i]))
			}
			loss /= float64(len(valIdx))
			if loss < bestLoss-1e-9 {
				bestLoss = loss
				bestLen = len(b.Trees)
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= cfg.EarlyStopRounds {
					b.Trees = b.Trees[:bestLen]
					break
				}
			}
		}
	}
	return b, nil
}

// logLoss is the binary cross-entropy of predicting probability p for
// label y, clamped away from infinities.
func logLoss(y, p float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	if y == 1 {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

// subsample draws the per-tree row sample from the training indices.
func (g *GBDT) subsample(trainIdx []int, rng *xrand.RNG) []int {
	if g.Config.SubsampleRatio >= 1 {
		return trainIdx
	}
	k := int(math.Round(g.Config.SubsampleRatio * float64(len(trainIdx))))
	if k < 1 {
		k = 1
	}
	picks := rng.SampleInts(len(trainIdx), k)
	out := make([]int, len(picks))
	for i, p := range picks {
		out[i] = trainIdx[p]
	}
	return out
}

// PredictProba returns class probabilities: the sigmoid margin for binary
// problems, or normalised one-vs-rest sigmoids for multi-class.
func (g *GBDT) PredictProba(x []float64) []float64 {
	out := make([]float64, len(g.classes))
	if len(g.boosters) == 0 {
		return out
	}
	if len(g.classes) == 2 {
		p := sigmoid(g.boosters[0].raw(x))
		out[0] = 1 - p
		out[1] = p
		return out
	}
	total := 0.0
	for a, b := range g.boosters {
		p := sigmoid(b.raw(x))
		out[a] = p
		total += p
	}
	if total > 0 {
		for a := range out {
			out[a] /= total
		}
	} else {
		for a := range out {
			out[a] = 1 / float64(len(out))
		}
	}
	return out
}

// PredictBatch predicts every row of X, in parallel across rows; each row's
// result is identical to PredictProba on that row.
func (g *GBDT) PredictBatch(X [][]float64) [][]float64 {
	return predictBatch(X, g.Config.Parallelism, g.PredictProba)
}

// NumTrees returns the total tree count across all arms.
func (g *GBDT) NumTrees() int {
	n := 0
	for _, b := range g.boosters {
		n += len(b.Trees)
	}
	return n
}
