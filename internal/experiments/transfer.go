package experiments

import (
	"fmt"
	"io"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/sparing"
	"cordial/internal/trace"
	"cordial/internal/xrand"
)

// TransferParams scales the cross-architecture transfer study: a fleet is
// synthesised per topology profile, one pipeline is trained per profile,
// and every pipeline is evaluated against every profile's held-out banks.
// The diagonal (train == eval) is the in-domain baseline the off-diagonal
// transfer numbers are read against.
type TransferParams struct {
	// Profiles names the registered topology profiles to cross.
	Profiles []string
	// UERBanks and BenignBanks scale each profile's fleet.
	UERBanks    int
	BenignBanks int
	// Seed drives fleet synthesis; profile i uses Seed+i.
	Seed uint64
	// TrainFrac is the per-profile train/test split.
	TrainFrac float64
	// SplitSeed drives the bank-level split.
	SplitSeed uint64
	// Model tunes the ensemble sizes.
	Model core.ModelParams
	// Budget bounds spare resources during prediction evaluation.
	Budget sparing.Budget
}

// DefaultTransfer returns the parameters of the reported transfer table:
// the two HBM generations plus a DDR5 DIMM fleet.
func DefaultTransfer() TransferParams {
	return TransferParams{
		Profiles:    []string{"hbm2e", "hbm3", "ddr5-dimm"},
		UERBanks:    120,
		BenignBanks: 240,
		Seed:        17,
		TrainFrac:   0.7,
		SplitSeed:   7,
		Model:       core.ModelParams{Trees: 25, Depth: 8, Leaves: 15},
		Budget:      sparing.DefaultBudget(),
	}
}

// Validate checks the parameters.
func (p TransferParams) Validate() error {
	if len(p.Profiles) < 2 {
		return fmt.Errorf("experiments: transfer needs at least 2 profiles, got %d", len(p.Profiles))
	}
	for _, name := range p.Profiles {
		if _, err := hbm.ProfileByName(name); err != nil {
			return err
		}
	}
	if p.UERBanks < 1 {
		return fmt.Errorf("experiments: transfer UER banks %d < 1", p.UERBanks)
	}
	if p.TrainFrac <= 0 || p.TrainFrac >= 1 {
		return fmt.Errorf("experiments: train fraction %g out of (0,1)", p.TrainFrac)
	}
	return p.Budget.Validate()
}

// TransferRow is one train→eval pair's result.
type TransferRow struct {
	Train string `json:"train"`
	Eval  string `json:"eval"`
	// PatternF1 is the weighted pattern-classification F1 on the eval
	// profile's held-out banks.
	PatternF1 float64 `json:"pattern_f1"`
	// BlockF1 scores the cross-row block predictions.
	BlockF1 float64 `json:"block_f1"`
	// ICR credits any isolation mechanism; CrossRowICR only row-granular
	// isolation (the paper's ICR).
	ICR         float64 `json:"icr"`
	CrossRowICR float64 `json:"cross_row_icr"`
}

// Transfer is the cross-architecture study result.
type Transfer struct {
	Rows []TransferRow
}

// transferFleet caches one profile's synthesised split.
type transferFleet struct {
	profile *hbm.Profile
	train   []*faultsim.BankFault
	test    []*faultsim.BankFault
}

// RunTransfer synthesises a fleet per profile, trains one pipeline per
// profile (under that profile active), and evaluates every pipeline on
// every profile's test banks (under the eval profile active). The feature
// vectors are topology-free — rows, times, error classes within a bank —
// which is what makes cross-architecture reuse plausible at all; this
// study measures how much headroom that leaves. The previously active
// profile is restored before returning.
func RunTransfer(p TransferParams) (*Transfer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prev := hbm.ActiveProfile()
	defer hbm.ActivateProfile(prev)

	fleets := make([]transferFleet, 0, len(p.Profiles))
	for i, name := range p.Profiles {
		prof, err := hbm.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		hbm.ActivateProfile(prof)
		spec := trace.DefaultSpec(prof.Geometry)
		spec.UERBanks = p.UERBanks
		spec.BenignBanks = p.BenignBanks
		spec.Seed = p.Seed + uint64(i)
		fleet, err := trace.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: transfer fleet for %s: %w", name, err)
		}
		train, test, err := core.SplitBanks(fleet.Faults, xrand.New(p.SplitSeed), p.TrainFrac)
		if err != nil {
			return nil, fmt.Errorf("experiments: transfer split for %s: %w", name, err)
		}
		fleets = append(fleets, transferFleet{profile: prof, train: train, test: test})
	}

	result := &Transfer{}
	for _, src := range fleets {
		hbm.ActivateProfile(src.profile)
		cfg := core.DefaultConfig(core.RandomForest)
		cfg.Params = p.Model
		pipe, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := pipe.Fit(src.train); err != nil {
			return nil, fmt.Errorf("experiments: transfer fit on %s: %w", src.profile.Name, err)
		}
		for _, dst := range fleets {
			hbm.ActivateProfile(dst.profile)
			pe, err := core.EvaluatePattern(pipe, dst.test)
			if err != nil {
				return nil, fmt.Errorf("experiments: transfer %s→%s pattern: %w", src.profile.Name, dst.profile.Name, err)
			}
			strat := &core.CordialStrategy{Pipeline: pipe, Geometry: dst.profile.Geometry}
			res, err := core.EvaluatePrediction(strat, dst.test, cfg.Block, p.Budget)
			if err != nil {
				return nil, fmt.Errorf("experiments: transfer %s→%s prediction: %w", src.profile.Name, dst.profile.Name, err)
			}
			result.Rows = append(result.Rows, TransferRow{
				Train:       src.profile.Name,
				Eval:        dst.profile.Name,
				PatternF1:   pe.Weighted.F1,
				BlockF1:     res.Block.F1,
				ICR:         res.ICR.Rate(),
				CrossRowICR: res.CrossRowICR.Rate(),
			})
		}
	}
	return result, nil
}

// Render writes the transfer table; diagonal rows are marked as the
// in-domain baseline.
func (t *Transfer) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "train\teval\tpattern-F1\tblock-F1\tICR\tcross-row-ICR\t")
	for _, r := range t.Rows {
		note := ""
		if r.Train == r.Eval {
			note = "(baseline)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Train, r.Eval, pct(r.PatternF1), pct(r.BlockF1), pct(r.ICR), pct(r.CrossRowICR), note)
	}
	return tw.Flush()
}
