package trace

import (
	"testing"
	"time"

	"cordial/internal/faultsim"
	"cordial/internal/hbm"
)

func driftSpec(seed uint64) DriftSpec {
	singleHeavy := faultsim.PatternWeights{
		faultsim.PatternSingleRow: 80,
		faultsim.PatternScattered: 20,
	}
	scatteredHeavy := faultsim.PatternWeights{
		faultsim.PatternSingleRow: 20,
		faultsim.PatternScattered: 80,
	}
	return DriftSpec{
		Fault: faultsim.DefaultConfig(hbm.DefaultGeometry),
		Regimes: []Regime{
			{Duration: 30 * 24 * time.Hour, Weights: singleHeavy, UERBanks: 60},
			{Duration: 30 * 24 * time.Hour, Weights: scatteredHeavy, UERBanks: 60},
		},
		Seed: seed,
	}
}

func TestGenerateDriftBasics(t *testing.T) {
	fleet, err := GenerateDrift(driftSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Faults) != 120 || len(fleet.RegimeOf) != 120 {
		t.Fatalf("%d faults, %d regime tags", len(fleet.Faults), len(fleet.RegimeOf))
	}
	// Banks ordered by first-UER time.
	for i := 1; i < len(fleet.Faults); i++ {
		if fleet.Faults[i].UERTimes[0].Before(fleet.Faults[i-1].UERTimes[0]) {
			t.Fatal("faults not ordered by onset")
		}
	}
	// Distinct banks.
	seen := make(map[uint64]bool)
	for _, bf := range fleet.Faults {
		if seen[bf.Bank.Pack()] {
			t.Fatal("bank reused across regimes")
		}
		seen[bf.Bank.Pack()] = true
	}
}

func TestGenerateDriftMixShifts(t *testing.T) {
	fleet, err := GenerateDrift(driftSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	mix0 := fleet.MixOf(0)
	mix1 := fleet.MixOf(1)
	// Regime 0 is single-row-heavy; regime 1 is scattered-heavy.
	if mix0[faultsim.ClassSingleRow] <= mix0[faultsim.ClassScattered] {
		t.Fatalf("regime 0 mix = %v", mix0)
	}
	if mix1[faultsim.ClassScattered] <= mix1[faultsim.ClassSingleRow] {
		t.Fatalf("regime 1 mix = %v", mix1)
	}
}

func TestGenerateDriftOnsetsRespectRegimeWindows(t *testing.T) {
	spec := driftSpec(3)
	fleet, err := GenerateDrift(spec)
	if err != nil {
		t.Fatal(err)
	}
	boundary := spec.Fault.Start.Add(spec.Regimes[0].Duration)
	for i, bf := range fleet.Faults {
		onset := bf.UERTimes[0]
		if fleet.RegimeOf[i] == 0 && onset.After(boundary) {
			t.Fatalf("regime-0 bank onset %v after boundary", onset)
		}
		if fleet.RegimeOf[i] == 1 && onset.Before(boundary) {
			t.Fatalf("regime-1 bank onset %v before boundary", onset)
		}
	}
}

func TestGenerateDriftValidation(t *testing.T) {
	bad := driftSpec(1)
	bad.Regimes = nil
	if _, err := GenerateDrift(bad); err == nil {
		t.Error("empty regimes accepted")
	}
	bad = driftSpec(1)
	bad.Regimes[0].Duration = 0
	if _, err := GenerateDrift(bad); err == nil {
		t.Error("zero duration accepted")
	}
	bad = driftSpec(1)
	bad.Regimes[0].UERBanks = 0
	if _, err := GenerateDrift(bad); err == nil {
		t.Error("zero banks accepted")
	}
	bad = driftSpec(1)
	bad.Regimes[0].Weights = faultsim.PatternWeights{}
	if _, err := GenerateDrift(bad); err == nil {
		t.Error("empty weights accepted")
	}
}
