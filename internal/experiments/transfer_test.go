package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cordial/internal/hbm"
)

// TestTransferSmoke runs a tiny two-profile transfer study and checks the
// pair grid, metric ranges, and that the active profile is restored.
func TestTransferSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipelines")
	}
	before := hbm.ActiveProfile()

	p := DefaultTransfer()
	p.Profiles = []string{"hbm2e", "ddr5-dimm"}
	p.UERBanks = 40
	p.BenignBanks = 0
	p.Model.Trees = 8
	res, err := RunTransfer(p)
	if err != nil {
		t.Fatal(err)
	}
	if hbm.ActiveProfile() != before {
		t.Fatalf("active profile not restored: %s", hbm.ActiveProfile().Name)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2×2 pair grid)", len(res.Rows))
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		seen[r.Train+"→"+r.Eval] = true
		for name, v := range map[string]float64{
			"pattern F1": r.PatternF1, "block F1": r.BlockF1,
			"ICR": r.ICR, "cross-row ICR": r.CrossRowICR,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s→%s: %s = %g out of [0,1]", r.Train, r.Eval, name, v)
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("pair grid incomplete: %v", seen)
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "ddr5-dimm") {
		t.Fatalf("render missing expected content:\n%s", out)
	}
}

// TestTransferValidate pins the parameter checks.
func TestTransferValidate(t *testing.T) {
	p := DefaultTransfer()
	p.Profiles = []string{"hbm2e"}
	if _, err := RunTransfer(p); err == nil {
		t.Error("single-profile transfer accepted")
	}
	p = DefaultTransfer()
	p.Profiles = []string{"hbm2e", "no-such-topology"}
	if _, err := RunTransfer(p); err == nil {
		t.Error("unknown profile accepted")
	}
}
