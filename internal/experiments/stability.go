package experiments

import (
	"fmt"
	"io"
	"math"

	"cordial/internal/core"
	"cordial/internal/xrand"
)

// StabilityRow summarises one metric's distribution over seeds.
type StabilityRow struct {
	Metric string
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
}

// Stability reports how the headline Table IV comparison behaves across
// independently seeded fleets — the error bars the single-run tables lack.
type Stability struct {
	Seeds int
	Rows  []StabilityRow
}

// RunStability regenerates the fleet with `seeds` different seeds, trains
// Cordial-RF on each, and aggregates the headline metrics (baseline F1,
// Cordial F1, baseline ICR, Cordial ICR, pattern weighted F1).
func RunStability(p Params, seeds int) (*Stability, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: stability needs ≥2 seeds, got %d", seeds)
	}
	metrics := map[string][]float64{}
	record := func(name string, v float64) {
		metrics[name] = append(metrics[name], v)
	}

	for s := 0; s < seeds; s++ {
		run := p
		run.Spec.Seed = p.Spec.Seed + uint64(s)*101
		fleet, err := run.fleet()
		if err != nil {
			return nil, err
		}
		train, test, err := core.SplitBanks(fleet.Faults, xrand.New(run.SplitSeed+uint64(s)), run.TrainFrac)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(core.RandomForest)
		cfg.Params = run.Model
		pipe, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := pipe.Fit(train); err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", s, err)
		}
		pe, err := core.EvaluatePattern(pipe, test)
		if err != nil {
			return nil, err
		}
		record("pattern weighted F1 (RF)", pe.Weighted.F1)

		geo := run.Spec.Fault.Geometry
		cordial, err := core.EvaluatePrediction(
			&core.CordialStrategy{Pipeline: pipe, Geometry: geo}, test, cfg.Block, run.Budget)
		if err != nil {
			return nil, err
		}
		baseline, err := core.EvaluatePrediction(
			&core.NeighborRowsStrategy{Geometry: geo, Block: cfg.Block}, test, cfg.Block, run.Budget)
		if err != nil {
			return nil, err
		}
		record("Cordial-RF block F1", cordial.Block.F1)
		record("Neighbor Rows block F1", baseline.Block.F1)
		record("Cordial-RF ICR", cordial.ICR.Rate())
		record("Neighbor Rows ICR", baseline.ICR.Rate())
		record("Cordial F1 advantage", cordial.Block.F1-baseline.Block.F1)
	}

	order := []string{
		"pattern weighted F1 (RF)",
		"Neighbor Rows block F1",
		"Cordial-RF block F1",
		"Cordial F1 advantage",
		"Neighbor Rows ICR",
		"Cordial-RF ICR",
	}
	out := &Stability{Seeds: seeds}
	for _, name := range order {
		vals := metrics[name]
		out.Rows = append(out.Rows, summarise(name, vals))
	}
	return out, nil
}

func summarise(name string, vals []float64) StabilityRow {
	row := StabilityRow{Metric: name, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vals {
		row.Mean += v
		if v < row.Min {
			row.Min = v
		}
		if v > row.Max {
			row.Max = v
		}
	}
	row.Mean /= float64(len(vals))
	for _, v := range vals {
		d := v - row.Mean
		row.Std += d * d
	}
	row.Std = math.Sqrt(row.Std / float64(len(vals)))
	return row
}

// Render writes the stability table.
func (s *Stability) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "Metric (%d seeds)\tMean\tStd\tMin\tMax\n", s.Seeds)
	for _, r := range s.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\n", r.Metric, r.Mean, r.Std, r.Min, r.Max)
	}
	return tw.Flush()
}

// Row returns the named metric row.
func (s *Stability) Row(metric string) (StabilityRow, bool) {
	for _, r := range s.Rows {
		if r.Metric == metric {
			return r, true
		}
	}
	return StabilityRow{}, false
}
