package features

import (
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

// errBitTestEvents builds a mixed sequence: a stable-pin fault signature
// (pin 3 recurring), scattered multi-pin events, and events with no
// reported bits.
func errBitTestEvents() []mcelog.Event {
	t0 := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(i, row int, class ecc.Class, bits mcelog.ErrBits) mcelog.Event {
		return mcelog.Event{
			Time:  t0.Add(time.Duration(i) * time.Hour),
			Addr:  hbm.CellInBank(hbm.BankAddress{Node: 1}, row, i%8),
			Class: class,
			Bits:  bits,
		}
	}
	return []mcelog.Event{
		mk(0, 100, ecc.ClassCE, mcelog.MakeErrBits(1<<3, 1<<0)),
		mk(1, 101, ecc.ClassCE, 0), // no syndrome detail
		mk(2, 102, ecc.ClassCE, mcelog.MakeErrBits(1<<3, 1<<2)),
		mk(3, 103, ecc.ClassUEO, mcelog.MakeErrBits(1<<3|1<<5, 1<<2)),
		mk(4, 104, ecc.ClassUER, mcelog.MakeErrBits(1<<1|1<<6|1<<7, 1<<4|1<<5)),
		mk(5, 105, ecc.ClassUER, mcelog.MakeErrBits(1<<3, 1<<0)),
	}
}

// TestErrBitIncrementalMatchesReference pins the incremental accumulator to
// the batch reference at every prefix, including the empty one.
func TestErrBitIncrementalMatchesReference(t *testing.T) {
	events := errBitTestEvents()
	st, err := NewBankState(DefaultPatternConfig(), DefaultBlockSpec())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(events); n++ {
		if n > 0 {
			st.Observe(events[n-1])
		}
		got, err := st.ErrBitVector()
		if err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
		want := referenceErrBitVector(events[:n])
		if len(got) != errBitFeatureCount || len(want) != errBitFeatureCount {
			t.Fatalf("prefix %d: lengths %d/%d, want %d", n, len(got), len(want), errBitFeatureCount)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("prefix %d, feature %q: incremental %v, reference %v",
					n, ErrBitFeatureNames()[i], got[i], want[i])
			}
		}
	}
}

// TestErrBitVectorValues checks the aggregates on a hand-computed sequence.
func TestErrBitVectorValues(t *testing.T) {
	got, err := ErrBitVector(errBitTestEvents())
	if err != nil {
		t.Fatal(err)
	}
	// 5 events carry bits; pin 3 appears in 4 of them; DQ union is pins
	// {1,3,5,6,7}; popcounts 1,1,2,3,1 sum 8; burst union {0,2,4,5};
	// popcounts 1,1,1,2,1 sum 6.
	want := []float64{5, 5, 4.0 / 5, 8.0 / 5, 4, 6.0 / 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("feature %q = %v, want %v", ErrBitFeatureNames()[i], got[i], want[i])
		}
	}
}

// TestErrBitVectorEmpty: no err-bit events yields a zero count and Missing
// statistics — and events whose Bits are all zero count as none.
func TestErrBitVectorEmpty(t *testing.T) {
	for _, events := range [][]mcelog.Event{nil, {
		{Time: time.Now().UTC(), Addr: hbm.CellInBank(hbm.BankAddress{}, 1, 1), Class: ecc.ClassCE},
	}} {
		got, err := ErrBitVector(events)
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{0, Missing, Missing, Missing, Missing, Missing}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("feature %q = %v, want %v", ErrBitFeatureNames()[i], got[i], want[i])
			}
		}
	}
}

// TestCodecRoundTripsErrBits: a v2 snapshot restores the error-bit
// accumulator bit-identically.
func TestCodecRoundTripsErrBits(t *testing.T) {
	st, err := NewBankState(DefaultPatternConfig(), DefaultBlockSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errBitTestEvents() {
		st.Observe(e)
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalBankState(blob)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := st.ErrBitVector()
	got, err := restored.ErrBitVector()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("restored feature %q = %v, want %v", ErrBitFeatureNames()[i], got[i], want[i])
		}
	}
}

// TestCodecDecodesV1 pins backward compatibility: a version-1 snapshot
// (no error-bit section) still decodes, with an empty accumulator.
func TestCodecDecodesV1(t *testing.T) {
	st, err := NewBankState(DefaultPatternConfig(), DefaultBlockSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errBitTestEvents() {
		e.Bits = 0 // a v1 producer never saw error bits
		st.Observe(e)
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite as v1: drop the trailing error-bit section and patch the
	// version byte. Section layout: int count, two u8 masks, eight int pin
	// counts, two int sums.
	const errBitSectionLen = 8 + 1 + 1 + 8*8 + 8 + 8
	v1 := append([]byte(nil), blob[:len(blob)-errBitSectionLen]...)
	v1[4] = bankStateVersionV1
	restored, err := UnmarshalBankState(v1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.ErrBitVector()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("v1 snapshot decoded with errbit count %v, want 0", got[0])
	}
	if restored.Events() != st.Events() {
		t.Errorf("v1 snapshot decoded with %d events, want %d", restored.Events(), st.Events())
	}
}
