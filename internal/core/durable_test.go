package core

import (
	"testing"

	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

// decisionsEqual compares two decisions including block probabilities
// bit-for-bit.
func decisionsEqual(a, b Decision) bool {
	if a.SpareBank != b.SpareBank || len(a.IsolateRows) != len(b.IsolateRows) {
		return false
	}
	for i := range a.IsolateRows {
		if a.IsolateRows[i] != b.IsolateRows[i] {
			return false
		}
	}
	if (a.Blocks == nil) != (b.Blocks == nil) {
		return false
	}
	if a.Blocks != nil {
		if a.Blocks.AnchorRow != b.Blocks.AnchorRow || !bitsEqual(a.Blocks.Probs, b.Blocks.Probs) {
			return false
		}
	}
	return true
}

// TestCordialSessionEncodeRestoreResume pins the durable-session contract:
// checkpoint a session mid-stream, restore it, and the restored session's
// decisions over the remaining events are identical (bit-for-bit in the
// probabilities) to the uninterrupted session's.
func TestCordialSessionEncodeRestoreResume(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	strategy := &CordialStrategy{Pipeline: p, Geometry: hbm.DefaultGeometry}
	r := xrand.New(41)

	checked := 0
	for _, bf := range test {
		if len(bf.Events) < 2 {
			continue
		}
		cut := 1 + r.Intn(len(bf.Events)-1)
		sess := strategy.NewSession(hbm.BankAddress{})
		for _, e := range bf.Events[:cut] {
			sess.OnEvent(e)
		}
		blob, err := sess.(DurableSession).EncodeState()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := strategy.RestoreSession(hbm.BankAddress{}, blob)
		if err != nil {
			t.Fatalf("restore at cut %d: %v", cut, err)
		}
		// Classification outcome survives.
		wc, wok := sess.(ClassifiedSession).Class()
		gc, gok := restored.(ClassifiedSession).Class()
		if wc != gc || wok != gok {
			t.Fatalf("class diverged after restore: (%v,%v) vs (%v,%v)", wc, wok, gc, gok)
		}
		for j, e := range bf.Events[cut:] {
			want := sess.OnEvent(e)
			got := restored.OnEvent(e)
			if !decisionsEqual(want, got) {
				t.Fatalf("event %d after cut %d: decision diverged:\noriginal %+v\nrestored %+v", j, cut, want, got)
			}
		}
		checked++
		if checked >= 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no banks exercised")
	}
}

// TestRestoreSessionRejectsMismatchedConfig: a state encoded under one
// geometry must not silently drive a pipeline with another.
func TestRestoreSessionRejectsMismatchedConfig(t *testing.T) {
	fleet := testFleet(t, 1, 120)
	train, _, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	strategy := &CordialStrategy{Pipeline: p, Geometry: hbm.DefaultGeometry}

	sess := strategy.NewSession(hbm.BankAddress{})
	blob, err := sess.(DurableSession).EncodeState()
	if err != nil {
		t.Fatal(err)
	}

	other := *p
	cfg := other.cfg
	cfg.Pattern.UERBudget++
	other.cfg = cfg
	if _, err := (&CordialStrategy{Pipeline: &other, Geometry: hbm.DefaultGeometry}).RestoreSession(hbm.BankAddress{}, blob); err == nil {
		t.Error("mismatched pattern config accepted")
	}

	// Corrupt and truncated images fail cleanly.
	for _, bad := range [][]byte{nil, {1, 2, 3}, blob[:5], append([]byte("XXXX"), blob[4:]...)} {
		if _, err := strategy.RestoreSession(hbm.BankAddress{}, bad); err == nil {
			t.Errorf("corrupt session image %v accepted", bad)
		}
	}
}
