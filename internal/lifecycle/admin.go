package lifecycle

import (
	"cordial/internal/registry"
	"cordial/internal/stream"
)

// admin adapts a Manager (and its registry) to the stream.ModelAdmin
// surface the HTTP server exposes under /v1/models. The stream package
// cannot import this one, so the dependency points this way.
type admin struct {
	mgr *Manager
}

// AdminFor wraps a manager for stream.ServerConfig.ModelAdmin.
func AdminFor(mgr *Manager) stream.ModelAdmin {
	return &admin{mgr: mgr}
}

// overview is the GET /v1/models body.
type overview struct {
	// ActiveVersion is the registry's active pointer (what new sessions
	// bind after the engine swap that accompanies every activation).
	ActiveVersion uint64 `json:"activeVersion"`
	// Versions lists every installed artefact, oldest first.
	Versions []registry.Meta `json:"versions"`
	// Lifecycle is the manager's drift/shadow/promotion state.
	Lifecycle Status `json:"lifecycle"`
}

func (a *admin) Overview() any {
	return overview{
		ActiveVersion: a.mgr.cfg.Registry.ActiveVersion(),
		Versions:      a.mgr.cfg.Registry.Versions(),
		Lifecycle:     a.mgr.Status(),
	}
}

func (a *admin) Promote(version uint64) error { return a.mgr.Promote(version) }

func (a *admin) Rollback() error { return a.mgr.Rollback() }

func (a *admin) Retrain(trigger string) error { return a.mgr.Retrain(trigger) }
