package faultsim

import (
	"testing"

	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

func TestSampleCauseConsistentWithPattern(t *testing.T) {
	r := xrand.New(1)
	for _, p := range AllPatterns {
		allowed := make(map[Cause]bool)
		for _, c := range PossibleCauses(p) {
			allowed[c] = true
		}
		if len(allowed) == 0 {
			t.Fatalf("pattern %v has no causes", p)
		}
		for i := 0; i < 200; i++ {
			if c := SampleCause(p, r); !allowed[c] {
				t.Fatalf("pattern %v sampled cause %v not in %v", p, c, PossibleCauses(p))
			}
		}
	}
}

func TestSampleCauseDistribution(t *testing.T) {
	r := xrand.New(2)
	counts := make(map[Cause]int)
	const n = 5000
	for i := 0; i < n; i++ {
		counts[SampleCause(PatternSingleRow, r)]++
	}
	swd := float64(counts[CauseSWD]) / n
	if swd < 0.80 || swd > 0.90 {
		t.Fatalf("single-row SWD share = %.3f, want ~0.85", swd)
	}
}

func TestGenerateAssignsCause(t *testing.T) {
	g := newGen(t, 31)
	for _, p := range AllPatterns {
		bf, err := g.Generate(hbm.BankAddress{}, p)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, c := range PossibleCauses(p) {
			if bf.Cause == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("pattern %v got cause %v", p, bf.Cause)
		}
	}
}

func TestCauseStrings(t *testing.T) {
	for _, c := range []Cause{CauseSWD, CauseTSV, CauseMicroBump, CauseColumnDriver, CauseWeakCells} {
		if s := c.String(); s == "" || s[0] == 'C' {
			t.Errorf("Cause(%d).String() = %q", int(c), s)
		}
	}
	if PossibleCauses(Pattern(99)) != nil {
		t.Error("unknown pattern returned causes")
	}
}
