// Command cordial-router is the stateless ingest front for a Cordial
// cluster: clients POST JSONL event batches to one address and the
// router forwards each line to the serve node that owns its bank under
// the current consistent-hash ring, retrying with bounded backoff when
// a node refuses mid-handoff or the ring moved. Run any number of
// routers; they hold no session state.
//
// Usage:
//
//	cordial-router -addr 127.0.0.1:8080 -control-plane http://127.0.0.1:9090
//
// Endpoints:
//
//	POST /v1/events      JSONL batch ingest (same contract as cordial-serve)
//	POST /v1/events.bin  binary-framed batch ingest (same contract)
//	GET  /statsz      router counters plus every node's /statsz, by node ID
//	GET  /healthz     liveness
//	GET  /readyz      readiness (503 until a ring has been fetched)
//	GET  /metrics     Prometheus text exposition (router instruments)
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cordial/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cordial-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		cpURL     = flag.String("control-plane", "", "control plane base URL (http://host:port), required")
		refresh   = flag.Duration("refresh-interval", 2*time.Second, "background ring poll period")
		attempts  = flag.Int("max-attempts", 5, "forwarding attempts per node batch before lines are dropped")
		upstream  = flag.String("upstream", cluster.CodecBinary, "codec for forwarding to serve nodes: binary or jsonl")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()
	if *cpURL == "" {
		return fmt.Errorf("need -control-plane <url>")
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stdout, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stdout, nil)
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	if *upstream != cluster.CodecBinary && *upstream != cluster.CodecJSONL {
		return fmt.Errorf("unknown upstream codec %q (want binary or jsonl)", *upstream)
	}

	rt := cluster.NewRouter(cluster.RouterConfig{
		ControlPlane:    *cpURL,
		RefreshInterval: *refresh,
		MaxAttempts:     *attempts,
		UpstreamCodec:   *upstream,
		Logger:          logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved-address attribute is load-bearing: with -addr :0 it is
	// how harnesses learn the real port (same contract as cordial-serve).
	logger.Info("listening", "addr", ln.Addr().String(), "controlPlane", *cpURL)

	srv := &http.Server{Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ringCtx, stopRing := context.WithCancel(context.Background())
	defer stopRing()
	go func() {
		if err := rt.Run(ringCtx); err != nil && ringCtx.Err() == nil {
			logger.Error("ring maintenance stopped", "err", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
	case err := <-errc:
		return err
	}
	stopRing()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
