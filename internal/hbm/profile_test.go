package hbm

import (
	"testing"

	"cordial/internal/xrand"
)

func TestRegisteredProfilesValid(t *testing.T) {
	names := ProfileNames()
	if len(names) < 4 {
		t.Fatalf("registry has %d profiles, want at least 4: %v", len(names), names)
	}
	for _, name := range names {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", name, err)
		}
		if p.Layout.Bits() > 64 {
			t.Errorf("profile %q layout needs %d bits", name, p.Layout.Bits())
		}
	}
}

// TestHBM2ELayoutMatchesHistoricalConstants pins the hbm2e layout to the
// fixed shifts the codebase used before layouts were profile-derived, so
// packed addresses, bank keys and plan digests stay stable.
func TestHBM2ELayoutMatchesHistoricalConstants(t *testing.T) {
	want := map[field]struct{ width, shift int }{
		fieldColumn:        {8, 0},
		fieldRow:           {16, 8},
		fieldBank:          {2, 24},
		fieldBankGroup:     {2, 26},
		fieldDevice:        {0, 28},
		fieldRank:          {0, 28},
		fieldPseudoChannel: {1, 28},
		fieldChannel:       {3, 29},
		fieldSID:           {1, 32},
		fieldHBM:           {2, 33},
		fieldNPU:           {4, 35},
		fieldNode:          {12, 39},
	}
	l := HBM2E.Layout
	for f, w := range want {
		if l.width[f] != w.width || int(l.shift[f]) != w.shift {
			t.Errorf("%s: width/shift = %d/%d, want %d/%d",
				fieldNames[f], l.width[f], l.shift[f], w.width, w.shift)
		}
	}
}

func TestProfilePackUnpackRoundTrip(t *testing.T) {
	for _, name := range ProfileNames() {
		t.Run(name, func(t *testing.T) {
			p, err := ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prev := ActivateProfile(p)
			defer ActivateProfile(prev)
			r := xrand.New(42)
			g := p.Geometry
			for i := 0; i < 500; i++ {
				a := CellInBank(RandomBank(g, r), r.Intn(g.RowsPerBank), r.Intn(g.ColsPerBank))
				v, err := a.PackChecked()
				if err != nil {
					t.Fatalf("PackChecked(%+v): %v", a, err)
				}
				back, err := UnpackChecked(v)
				if err != nil {
					t.Fatalf("UnpackChecked(%#x): %v", v, err)
				}
				if back != a {
					t.Fatalf("round trip mismatch: %+v vs %+v", back, a)
				}
				s, err := ParseAddress(a.String())
				if err != nil {
					t.Fatalf("ParseAddress(%q): %v", a.String(), err)
				}
				if s != a {
					t.Fatalf("string round trip mismatch: %+v vs %+v", s, a)
				}
			}
		})
	}
}

func TestDDRTruncateHierarchy(t *testing.T) {
	prev := ActivateProfile(DDR5DIMM)
	defer ActivateProfile(prev)
	a := Address{Node: 3, NPU: 1, Channel: 6, HBM: 1, Rank: 1, Device: 5, BankGroup: 3, Bank: 2, Row: 999, Column: 55}
	tests := []struct {
		level Level
		want  Address
	}{
		{LevelRow, Address{Node: 3, NPU: 1, Channel: 6, HBM: 1, Rank: 1, Device: 5, BankGroup: 3, Bank: 2, Row: 999}},
		{LevelBank, Address{Node: 3, NPU: 1, Channel: 6, HBM: 1, Rank: 1, Device: 5, BankGroup: 3, Bank: 2}},
		{LevelBankGroup, Address{Node: 3, NPU: 1, Channel: 6, HBM: 1, Rank: 1, Device: 5, BankGroup: 3}},
		{LevelDevice, Address{Node: 3, NPU: 1, Channel: 6, HBM: 1, Rank: 1, Device: 5}},
		{LevelRank, Address{Node: 3, NPU: 1, Channel: 6, HBM: 1, Rank: 1}},
		// Under DIMM profiles the module sits below the channel.
		{LevelHBM, Address{Node: 3, NPU: 1, Channel: 6, HBM: 1}},
		{LevelChannel, Address{Node: 3, NPU: 1, Channel: 6}},
		{LevelNPU, Address{Node: 3, NPU: 1}},
	}
	for _, tc := range tests {
		if got := a.Truncate(tc.level); got != tc.want {
			t.Errorf("Truncate(%v) = %+v, want %+v", tc.level, got, tc.want)
		}
	}
}

func TestProfileLevelNames(t *testing.T) {
	if got := DDR5DIMM.LevelName(LevelNPU); got != "Socket" {
		t.Errorf("ddr5 LevelName(NPU) = %q, want Socket", got)
	}
	if got := DDR5DIMM.LevelName(LevelHBM); got != "DIMM" {
		t.Errorf("ddr5 LevelName(HBM) = %q, want DIMM", got)
	}
	if got := HBM2E.LevelName(LevelHBM); got != "HBM" {
		t.Errorf("hbm2e LevelName(HBM) = %q, want HBM", got)
	}
}

func TestSetActiveProfile(t *testing.T) {
	prev := ActiveProfile()
	defer ActivateProfile(prev)
	p, err := SetActiveProfile("hbm3")
	if err != nil {
		t.Fatal(err)
	}
	if ActiveProfile() != p || p.Name != "hbm3" {
		t.Fatalf("active profile = %q, want hbm3", ActiveProfile().Name)
	}
	if _, err := SetActiveProfile("no-such-topology"); err == nil {
		t.Fatal("SetActiveProfile accepted an unknown name")
	}
}

func TestDeriveLayout(t *testing.T) {
	g := DefaultGeometry
	g.RowsPerBank = 4096
	g.ColsPerBank = 64
	l, err := DeriveLayout(g, hbmOrder)
	if err != nil {
		t.Fatal(err)
	}
	if w := l.width[fieldRow]; w != 12 {
		t.Errorf("derived row width = %d, want 12", w)
	}
	if w := l.width[fieldRank]; w != 0 {
		t.Errorf("derived rank width = %d, want 0", w)
	}
	if err := l.fits(g); err != nil {
		t.Errorf("derived layout does not fit its own geometry: %v", err)
	}
}

func TestGeometryValidateAgainstActiveLayout(t *testing.T) {
	prev := ActivateProfile(DDR5DIMM)
	defer ActivateProfile(prev)
	g := DDR5DIMM.Geometry
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.RanksPerModule = 4 // exceeds the 1-bit rank field
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted ranks over layout capacity")
	}
}
