package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/obs"
)

// armChaos schedules every resolved action relative to the load start.
// Each action runs on its own timer so a long injection (a partition
// window) never delays the next one.
func (st *runState) armChaos() {
	for i, a := range st.plan.Chaos {
		a := a
		idx := i
		st.chaosWG.Add(1)
		delay := time.Until(st.loadStart.Add(a.At))
		if delay < 0 {
			delay = 0
		}
		time.AfterFunc(delay, func() {
			defer st.chaosWG.Done()
			rec := ChaosRecord{At: a.At.String(), Action: a.Action, Target: a.Target}
			st.logf("chaos[%d] t+%v: %s %s", idx, a.At, a.Action, a.Target)
			st.execute(a, &rec)
			if rec.Error != "" {
				st.logf("chaos[%d] %s %s: %s", idx, a.Action, a.Target, rec.Error)
			}
			st.mu.Lock()
			st.chaosRecs = append(st.chaosRecs, rec)
			sort.Slice(st.chaosRecs, func(i, j int) bool { return st.chaosRecs[i].At < st.chaosRecs[j].At })
			st.mu.Unlock()
		})
	}
}

// targetDaemon resolves an action target to a process.
func (st *runState) targetDaemon(target string) (*Daemon, error) {
	switch target {
	case "control":
		if st.fleet.control == nil {
			return nil, fmt.Errorf("no control plane in a standalone fleet")
		}
		return st.fleet.control, nil
	case "router":
		if st.fleet.router == nil {
			return nil, fmt.Errorf("no router in a standalone fleet")
		}
		return st.fleet.router, nil
	}
	n, ok := strings.CutPrefix(target, "node-")
	if !ok {
		return nil, fmt.Errorf("unknown target %q", target)
	}
	idx, err := strconv.Atoi(n)
	if err != nil || idx < 1 || idx > len(st.fleet.nodes) {
		return nil, fmt.Errorf("target %q out of range", target)
	}
	return st.fleet.nodes[idx-1], nil
}

func (st *runState) execute(a ChaosAction, rec *ChaosRecord) {
	d, err := st.targetDaemon(a.Target)
	if err != nil && a.Action != ActClockSkew && a.Action != ActPoison && a.Action != ActPartitionRouter {
		rec.Error = err.Error()
		return
	}

	switch a.Action {
	case ActKillNode:
		killedAt := time.Now()
		d.Kill()
		st.mu.Lock()
		st.kills++
		st.mu.Unlock()
		rec.Detail = "SIGKILL"
		if st.fleet.control != nil && strings.HasPrefix(a.Target, "node-") {
			if recov, err := st.awaitRecovery(killedAt); err != nil {
				rec.Error = err.Error()
			} else {
				rec.Recovery = recov.Round(time.Millisecond).String()
				st.logf("recovered from killing %s in %v", a.Target, recov.Round(time.Millisecond))
			}
		}
	case ActRestartNode:
		if d.Alive() {
			rec.Error = fmt.Sprintf("%s is still running", a.Target)
			return
		}
		if err := d.Start(); err != nil {
			rec.Error = err.Error()
			return
		}
		rec.Detail = "restarted on " + d.Addr()
	case ActDiskFault, ActClearFault:
		// cordial-serve toggles FaultFS arm/disarm on SIGUSR2; the two
		// verbs are documentation of intent, the signal is the same.
		if err := d.Signal(syscall.SIGUSR2); err != nil {
			rec.Error = err.Error()
			return
		}
		rec.Detail = "SIGUSR2 (fault toggle)"
	case ActClockSkew:
		st.mu.Lock()
		st.skewOffset = a.Offset
		st.skewUntil = time.Now().Add(a.Duration)
		st.mu.Unlock()
		rec.Detail = fmt.Sprintf("producer clock shifted %v for %v", a.Offset, a.Duration)
	case ActPoison:
		st.executePoison(a, rec)
	case ActPartitionRouter:
		router := st.fleet.router
		if router == nil {
			rec.Error = "no router to partition"
			return
		}
		if err := router.Signal(syscall.SIGSTOP); err != nil {
			rec.Error = err.Error()
			return
		}
		time.Sleep(a.Duration)
		if err := router.Signal(syscall.SIGCONT); err != nil {
			rec.Error = err.Error()
			return
		}
		rec.Detail = fmt.Sprintf("router frozen (SIGSTOP) for %v", a.Duration)
	case ActRetrain:
		code, err := st.postJSON(d.URL("/v1/models/retrain"), map[string]string{"trigger": "manual"})
		if err != nil {
			rec.Error = err.Error()
			return
		}
		rec.Detail = fmt.Sprintf("retrain = HTTP %d", code)
		if code != http.StatusOK && code != http.StatusAccepted {
			rec.Error = fmt.Sprintf("retrain returned %d", code)
		}
	case ActPromote:
		body := map[string]any{}
		if a.Version > 0 {
			body["version"] = a.Version
		}
		// A freshly retrained candidate may still be training; give the
		// promotion a few tries before calling it a failure.
		var code int
		var err error
		for try := 0; try < 40; try++ {
			code, err = st.postJSON(d.URL("/v1/models/promote"), body)
			if err == nil && code == http.StatusOK {
				break
			}
			time.Sleep(500 * time.Millisecond)
		}
		if err != nil {
			rec.Error = err.Error()
			return
		}
		rec.Detail = fmt.Sprintf("promote = HTTP %d", code)
		if code != http.StatusOK {
			rec.Error = fmt.Sprintf("promote returned %d", code)
		}
	default:
		rec.Error = fmt.Sprintf("unknown action %q", a.Action)
	}
}

// executePoison throws malformed and semantically poisoned input at the
// front door. Every event here must be refused: malformed JSONL and
// broken framing with 400, well-framed garbage as per-record rejects.
// Whatever the stack ACCEPTS is counted against slo.max_poison_accepted.
func (st *runState) executePoison(a ChaosAction, rec *ChaosRecord) {
	front := st.fleet.frontDoor()
	count := a.Count
	if count <= 0 {
		count = 32
	}
	accepted := 0
	sent := 0

	// Malformed JSONL: truncated JSON, wrong shapes, non-JSON noise.
	garbage := []string{
		`{"time":"2025-03-01T00:00:00Z","addr":`,
		`not json at all`,
		`{"time":null,"addr":null,"class":null}`,
		`[]`,
	}
	for i := 0; i < count/4+1; i++ {
		line := garbage[i%len(garbage)]
		sent++
		code, res := st.rawPost(front.URL("/v1/events"), "application/x-ndjson", []byte(line+"\n"))
		if code == http.StatusOK {
			accepted += res.Accepted
		}
	}

	// Broken wire framing: random-ish bytes, no magic.
	sent++
	if code, res := st.rawPost(front.URL("/v1/events.bin"), "application/octet-stream",
		bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 8)); code == http.StatusOK {
		accepted += res.Accepted
	}

	// Well-framed poison: records that decode but must fail validation —
	// zero/pre-epoch/far-future timestamps and out-of-geometry rows.
	geo := hbm.DefaultGeometry
	bank := hbm.BankAddress{}
	poisons := []mcelog.Event{
		{Time: time.Time{}, Addr: hbm.CellInBank(bank, 0, 0), Class: 1},
		{Time: time.Unix(-86400, 0), Addr: hbm.CellInBank(bank, 1, 1), Class: 1},
		{Time: time.Date(2250, 1, 1, 0, 0, 0, 0, time.UTC), Addr: hbm.CellInBank(bank, 2, 2), Class: 1},
		// Row within the wire encoding's bit width but past the geometry
		// (a wider row would silently overflow into the bank bits on pack
		// and come back as a different, VALID address — not poison at all).
		{Time: time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC),
			Addr: hbm.CellInBank(bank, geo.RowsPerBank, 0), Class: 1},
	}
	var wire bytes.Buffer
	enc := mcelog.NewFrameEncoder(&wire, 0)
	for i := 0; i < count; i++ {
		enc.Add(poisons[i%len(poisons)])
		sent++
	}
	enc.Flush()
	code, res := st.rawPost(front.URL("/v1/events.bin"), "application/octet-stream", wire.Bytes())
	if code == http.StatusOK {
		accepted += res.Accepted
	}

	st.mu.Lock()
	st.poisonSent += sent
	st.poisonAccpt += accepted
	st.mu.Unlock()
	rec.Detail = fmt.Sprintf("%d poisoned events, %d accepted", sent, accepted)
}

// rawPost posts a body without retry logic; poison must not be resent.
func (st *runState) rawPost(url, contentType string, body []byte) (int, ingestResult) {
	resp, err := st.client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, ingestResult{}
	}
	defer resp.Body.Close()
	var res ingestResult
	json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res)
	return resp.StatusCode, res
}

func (st *runState) postJSON(url string, body any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := st.client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return resp.StatusCode, nil
}

// awaitRecovery blocks until the cluster has absorbed a node kill: the
// control plane swept the dead member and journal-takeover rebuilt its
// sessions (takeovers advanced, membership shrank), and every surviving
// node plus the router report ready again.
func (st *runState) awaitRecovery(killedAt time.Time) (time.Duration, error) {
	st.mu.Lock()
	kills := st.kills
	st.mu.Unlock()
	alive := 0
	for _, n := range st.fleet.nodes {
		if n.Alive() {
			alive++
		}
	}
	cpURL := "http://" + st.fleet.control.Addr() + "/statsz"
	err := pollUntil("cluster recovery", 2*time.Minute, func() bool {
		var cp struct {
			Members   []struct{ ID string } `json:"members"`
			Takeovers uint64                `json:"takeovers"`
		}
		if getJSON(st.client, cpURL, &cp) != http.StatusOK {
			return false
		}
		if int(cp.Takeovers) < kills || len(cp.Members) != alive {
			return false
		}
		for _, n := range st.fleet.nodes {
			if n.Alive() && getJSON(st.client, n.URL("/readyz"), nil) != http.StatusOK {
				return false
			}
		}
		return getJSON(st.client, st.fleet.router.URL("/readyz"), nil) == http.StatusOK
	})
	return time.Since(killedAt), err
}

// startProbes samples the front door's /readyz on a fixed cadence; the
// pass rate is the availability SLO input.
const probeInterval = 100 * time.Millisecond

func (st *runState) startProbes() {
	st.probes.Interval = probeInterval.String()
	st.probeWG.Add(1)
	go func() {
		defer st.probeWG.Done()
		client := &http.Client{Timeout: probeInterval}
		ticker := time.NewTicker(probeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-st.probeStop:
				return
			case <-ticker.C:
				code := getJSON(client, st.fleet.frontDoor().URL("/readyz"), nil)
				st.mu.Lock()
				st.probes.Samples++
				if code == http.StatusOK {
					st.probes.ReadyOK++
				}
				st.mu.Unlock()
			}
		}
	}()
}

func (st *runState) stopProbes(rep *Report) {
	close(st.probeStop)
	st.probeWG.Wait()
	st.mu.Lock()
	rep.Probes = st.probes
	st.mu.Unlock()
	if rep.Probes.Samples > 0 {
		rep.Probes.Availab = float64(rep.Probes.ReadyOK) / float64(rep.Probes.Samples)
	}
}

// drain waits until every live serve node has processed all it ingested.
func (st *runState) drain() error {
	for _, n := range st.fleet.nodes {
		if !n.Alive() {
			continue
		}
		if err := waitDrained(n); err != nil {
			return fmt.Errorf("chaos: %s: %w", n.Name, err)
		}
	}
	return nil
}

// collectStats scrapes final /statsz and /metrics off every live node.
func (st *runState) collectStats(rep *Report) {
	for _, n := range st.fleet.nodes {
		if !n.Alive() {
			continue
		}
		var stz struct {
			ModelSwaps  uint64 `json:"modelSwaps"`
			Quarantined uint64 `json:"quarantined"`
		}
		if getJSON(st.client, n.URL("/statsz"), &stz) == http.StatusOK {
			rep.Load.ModelSwaps += stz.ModelSwaps
			rep.Load.Quarantined += stz.Quarantined
		}
		snap, err := obs.Scrape(st.client, n.URL("/metrics"))
		if err != nil {
			continue
		}
		if p99, ok := snap.Quantile("cordial_ingest_wait_seconds", 0.99); ok && p99 > rep.Load.P99IngestWait {
			rep.Load.P99IngestWait = p99
		}
	}
}

// compareVerdicts unions the live nodes' deduplicated action sets and
// diffs them against the reference.
func (st *runState) compareVerdicts(rep *Report, want map[string]bool) {
	got := map[string]bool{}
	for _, n := range st.fleet.nodes {
		if !n.Alive() {
			continue
		}
		set, err := actionSet(n)
		if err != nil {
			rep.Verdict.Extra = append(rep.Verdict.Extra, "scrape error: "+err.Error())
			return
		}
		for k := range set {
			got[k] = true
		}
	}
	rep.Verdict.Compared = true
	rep.Verdict.Fleet = len(got)
	for k := range want {
		if !got[k] {
			rep.Verdict.Missing = append(rep.Verdict.Missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			rep.Verdict.Extra = append(rep.Verdict.Extra, k)
		}
	}
	sort.Strings(rep.Verdict.Missing)
	sort.Strings(rep.Verdict.Extra)
	const keep = 50
	if len(rep.Verdict.Missing) > keep {
		rep.Verdict.Missing = rep.Verdict.Missing[:keep]
	}
	if len(rep.Verdict.Extra) > keep {
		rep.Verdict.Extra = rep.Verdict.Extra[:keep]
	}
}

// actionSet fetches /v1/actions and reduces it to the deduplicated
// comparison set (recovery re-emits actions at least once, so comparisons
// are on sets, never counts).
func actionSet(d *Daemon) (map[string]bool, error) {
	var acts struct {
		Actions []struct {
			Kind  string `json:"kind"`
			Bank  string `json:"bank"`
			Rows  []int  `json:"rows"`
			Class string `json:"class"`
		} `json:"actions"`
	}
	if code := getJSON(nil, d.URL("/v1/actions?limit=1000000"), &acts); code != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/actions = %d", code)
	}
	set := make(map[string]bool, len(acts.Actions))
	for _, a := range acts.Actions {
		set[fmt.Sprintf("%s|%s|%v|%s", a.Kind, a.Bank, a.Rows, a.Class)] = true
	}
	return set, nil
}

// waitDrained polls /statsz until processed catches up with ingested.
func waitDrained(d *Daemon) error {
	return pollUntil(d.Name+" drained", 2*time.Minute, func() bool {
		var stz struct {
			Ingested  uint64 `json:"ingested"`
			Processed uint64 `json:"processed"`
		}
		return getJSON(nil, d.URL("/statsz"), &stz) == http.StatusOK &&
			stz.Processed == stz.Ingested
	})
}

// getJSON fetches url, decoding the body into out when non-nil. A
// transport error returns status 0.
func getJSON(client *http.Client, url string, out any) int {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := client.Get(url)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out); err != nil {
			return 0
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	}
	return resp.StatusCode
}

// pollUntil polls cond every 50ms until it holds or the deadline passes.
func pollUntil(what string, limit time.Duration, cond func() bool) error {
	deadline := time.Now().Add(limit)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil
}
