// Package mltree is a from-scratch, stdlib-only implementation of the
// tree-based learners the Cordial paper uses: CART decision trees, Random
// Forest (bagging with feature subsampling), XGBoost-style second-order
// gradient boosting, and LightGBM-style histogram gradient boosting with
// GOSS. Go has no mainstream counterpart to these libraries, so this package
// is the substitution substrate for the paper's model zoo (DESIGN.md §1).
//
// All learners implement the Classifier interface over a shared Dataset
// type, draw randomness exclusively from an injected deterministic RNG, and
// serialise to JSON.
package mltree

import (
	"fmt"
	"math"
	"sort"

	"cordial/internal/xrand"
)

// Dataset is a dense feature matrix with integer class labels. Labels may be
// any ints (not necessarily contiguous); learners remap them internally.
type Dataset struct {
	// Features is sample-major: Features[i][j] is feature j of sample i.
	Features [][]float64
	// Labels holds one class label per sample.
	Labels []int
	// Names optionally names the feature columns (used in diagnostics and
	// serialisation); when non-nil its length must equal the feature count.
	Names []string
}

// NumSamples returns the number of samples.
func (d *Dataset) NumSamples() int { return len(d.Features) }

// NumFeatures returns the number of feature columns (0 for an empty set).
func (d *Dataset) NumFeatures() int {
	if len(d.Features) == 0 {
		return 0
	}
	return len(d.Features[0])
}

// Validate checks rectangularity, label consistency and value sanity.
func (d *Dataset) Validate() error {
	if len(d.Features) == 0 {
		return fmt.Errorf("mltree: dataset has no samples")
	}
	if len(d.Labels) != len(d.Features) {
		return fmt.Errorf("mltree: %d samples but %d labels", len(d.Features), len(d.Labels))
	}
	width := len(d.Features[0])
	if width == 0 {
		return fmt.Errorf("mltree: dataset has no features")
	}
	if d.Names != nil && len(d.Names) != width {
		return fmt.Errorf("mltree: %d feature names for %d features", len(d.Names), width)
	}
	for i, row := range d.Features {
		if len(row) != width {
			return fmt.Errorf("mltree: sample %d has %d features, want %d", i, len(row), width)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("mltree: sample %d feature %d is %g", i, j, v)
			}
		}
	}
	return nil
}

// Classes returns the sorted distinct labels.
func (d *Dataset) Classes() []int {
	seen := make(map[int]bool)
	for _, l := range d.Labels {
		seen[l] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Subset returns a new dataset view built from copies of the selected rows.
// Indices may repeat (bootstrap sampling).
func (d *Dataset) Subset(indices []int) *Dataset {
	out := &Dataset{
		Features: make([][]float64, len(indices)),
		Labels:   make([]int, len(indices)),
		Names:    d.Names,
	}
	for k, i := range indices {
		out.Features[k] = d.Features[i]
		out.Labels[k] = d.Labels[i]
	}
	return out
}

// Split partitions the dataset into train and test sets with the given train
// fraction, shuffling with rng. It returns an error if either side would be
// empty.
func (d *Dataset) Split(rng *xrand.RNG, trainFrac float64) (train, test *Dataset, err error) {
	n := d.NumSamples()
	k := int(math.Round(float64(n) * trainFrac))
	if k <= 0 || k >= n {
		return nil, nil, fmt.Errorf("mltree: split fraction %g leaves an empty side (n=%d)", trainFrac, n)
	}
	perm := rng.Perm(n)
	return d.Subset(perm[:k]), d.Subset(perm[k:]), nil
}

// StratifiedSplit partitions the dataset preserving per-class proportions.
// Classes with a single sample go to the training side.
func (d *Dataset) StratifiedSplit(rng *xrand.RNG, trainFrac float64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("mltree: stratified split fraction %g out of (0,1)", trainFrac)
	}
	byClass := make(map[int][]int)
	for i, l := range d.Labels {
		byClass[l] = append(byClass[l], i)
	}
	var trainIdx, testIdx []int
	// Deterministic class order for reproducibility.
	for _, class := range d.Classes() {
		idx := byClass[class]
		rng.ShuffleInts(idx)
		k := int(math.Round(float64(len(idx)) * trainFrac))
		if k == 0 {
			k = 1
		}
		if k > len(idx) {
			k = len(idx)
		}
		trainIdx = append(trainIdx, idx[:k]...)
		testIdx = append(testIdx, idx[k:]...)
	}
	if len(trainIdx) == 0 || len(testIdx) == 0 {
		return nil, nil, fmt.Errorf("mltree: stratified split produced an empty side")
	}
	rng.ShuffleInts(trainIdx)
	rng.ShuffleInts(testIdx)
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// Classifier is a multi-class probabilistic classifier. Implementations are
// fitted once and then read-only; Predict* methods are safe for concurrent
// use after Fit returns.
type Classifier interface {
	// Fit trains on the dataset.
	Fit(ds *Dataset) error
	// Classes returns the sorted class labels seen during Fit.
	Classes() []int
	// PredictProba returns one probability per class, aligned with
	// Classes(), summing to 1.
	PredictProba(x []float64) []float64
	// PredictBatch predicts every row of X, parallelised across rows;
	// each row's result is identical to PredictProba on that row.
	PredictBatch(X [][]float64) [][]float64
}

// Predict returns the label with the highest predicted probability, breaking
// ties toward the smaller label.
func Predict(c Classifier, x []float64) int {
	return argmaxLabel(c.Classes(), c.PredictProba(x))
}

// PredictLabels batch-predicts the most probable label for every row of X.
func PredictLabels(c Classifier, X [][]float64) []int {
	probs := c.PredictBatch(X)
	classes := c.Classes()
	out := make([]int, len(probs))
	for i, p := range probs {
		out[i] = argmaxLabel(classes, p)
	}
	return out
}

// argmaxLabel returns the label of the largest probability, breaking ties
// toward the smaller label.
func argmaxLabel(classes []int, probs []float64) int {
	best, bestP := 0, math.Inf(-1)
	for i, p := range probs {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return classes[best]
}

// classIndex builds a label→index map for the sorted class list.
func classIndex(classes []int) map[int]int {
	idx := make(map[int]int, len(classes))
	for i, c := range classes {
		idx[c] = i
	}
	return idx
}
