package cluster

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"cordial/internal/mcelog"
)

// TestSweepRacesConcurrentJoin drives the dead-node sweep and a fresh
// node's join into the control plane at the same moment. The two
// topology mutations serialise on the topo lock in whichever order the
// race resolves, and each re-reads membership and fences with its own
// incremented epoch — so the final ring must contain exactly the
// survivor and the joiner, every bank's state must live on its final
// ring owner with nothing lost, and no stale owner may still accept
// ingest for a moved bank (the double-ownership failure this guards
// against).
func TestSweepRacesConcurrentJoin(t *testing.T) {
	clock := &fakeClock{t: time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)}
	cp, cpSrv := startCP(t, CPConfig{HeartbeatTTL: time.Hour, Clock: clock.Now})
	n1 := startNode(t, cpSrv.URL, "n1")
	n2 := startNode(t, cpSrv.URL, "n2")
	waitFor(t, "two nodes", func() bool {
		return n1.agent.Epoch() >= 2 && n2.agent.Epoch() >= 2
	})

	// Load both nodes so the takeover and the join both move real state.
	ring, err := BuildRing(cp.Descriptor())
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]*testNode{"n1": n1, "n2": n2}
	const banks, rowsPer = 8, 4
	deadBanks := 0
	for b := 0; b < banks; b++ {
		bank := clusterBank(b)
		owner := ring.OwnerID(bank.BankKey())
		if owner == "n2" {
			deadBanks++
		}
		var evs []mcelog.Event
		for r := 1; r <= rowsPer; r++ {
			evs = append(evs, clusterUER(bank, r, b*100+r))
		}
		status, res := postEvents(t, nodes[owner].http.URL, evs)
		if status != http.StatusOK || res.Accepted != rowsPer {
			t.Fatalf("ingest at %s: status %d result %+v", owner, status, res)
		}
	}
	if deadBanks == 0 {
		t.Fatal("no banks on the node being killed; widen the bank set")
	}
	if err := n2.engine.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill n2 and expire its lease while n1 stays fresh.
	n2.stop()
	n2.http.Close()
	expired := clock.Advance(2 * time.Hour)
	waitFor(t, "n1 heartbeat after clock jump", func() bool {
		cp.mu.Lock()
		defer cp.mu.Unlock()
		m := cp.members["n1"]
		return m != nil && !m.lastSeen.Before(expired)
	})

	// Fire the sweep and the join together. startNode's agent registers
	// from its own goroutine, so both mutations hit the topo lock
	// concurrently; epoch ordering decides who goes first.
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		cp.Sweep()
	}()
	n3 := startNode(t, cpSrv.URL, "n3")
	<-sweepDone
	waitFor(t, "takeover recorded", func() bool { return cp.takeovers.Value() == 1 })
	waitFor(t, "n3 joined", func() bool { return n3.agent.Epoch() >= 3 })

	// Whatever order the race resolved in, two mutations happened on top
	// of epoch 2: the ring is at epoch 4 with exactly {n1, n3}.
	desc := cp.Descriptor()
	if desc.Epoch != 4 {
		t.Errorf("final epoch = %d, want 4 (two serialised mutations)", desc.Epoch)
	}
	ids := map[string]bool{}
	for _, m := range desc.Members {
		ids[m.ID] = true
	}
	if len(ids) != 2 || !ids["n1"] || !ids["n3"] {
		t.Fatalf("final members = %v, want exactly {n1, n3}", desc.Members)
	}

	// Both live nodes must converge on the final epoch before ownership
	// is probed, or a fenced-but-stale view could still answer.
	live := map[string]*testNode{"n1": n1, "n3": n3}
	for id, n := range live {
		n := n
		waitFor(t, id+" adopts final ring", func() bool { return n.agent.Epoch() == desc.Epoch })
	}

	// No bank lost, none duplicated: every bank's full session sits on
	// its final ring owner, and the other node refuses ingest for it.
	finalRing, err := BuildRing(desc)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < banks; b++ {
		bank := clusterBank(b)
		owner := finalRing.OwnerID(bank.BankKey())
		waitFor(t, fmt.Sprintf("bank %v on %s", bank, owner), func() bool {
			st, ok := live[owner].engine.Session(bank)
			return ok && st.Events == rowsPer
		})
		for id, n := range live {
			if id == owner {
				continue
			}
			probe := []mcelog.Event{clusterUER(bank, rowsPer+1, b*100+99)}
			status, res := postEvents(t, n.http.URL, probe)
			if status != http.StatusServiceUnavailable || res.Accepted != 0 {
				t.Errorf("non-owner %s accepted ingest for bank %v: status %d %+v (double ownership)",
					id, bank, status, res)
			}
		}
	}
}
