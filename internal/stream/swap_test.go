package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/mcelog"
	"cordial/internal/wal"
	"cordial/internal/xrand"
)

// fakeModels is a multi-version ModelSource over fake strategies: the swap
// tests need distinguishable versions without training real pipelines.
type fakeModels struct {
	mu       sync.Mutex
	active   uint64
	versions map[uint64]core.Strategy
}

func newFakeModels(versions ...uint64) *fakeModels {
	fm := &fakeModels{active: versions[0], versions: make(map[uint64]core.Strategy)}
	for _, v := range versions {
		fm.versions[v] = &fakeStrategy{budget: 3}
	}
	return fm
}

func (f *fakeModels) ActiveModel() (core.Strategy, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.versions[f.active], f.active
}

func (f *fakeModels) ModelByVersion(v uint64) (core.Strategy, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.versions[v]
	if !ok {
		return nil, fmt.Errorf("fakeModels: no version %d", v)
	}
	return s, nil
}

// TestSwapModelPinsSessions: a swap changes what NEW sessions bind and
// never rebinds live ones.
func TestSwapModelPinsSessions(t *testing.T) {
	e, err := New(Config{Models: newFakeModels(1, 2), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	go func() {
		for range e.Actions() {
		}
	}()

	if v := e.ActiveModelVersion(); v != 1 {
		t.Fatalf("boot active version %d, want 1", v)
	}
	if err := e.Ingest(uerAt(testBank(0), 3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st, ok := e.Session(testBank(0)); !ok || st.ModelVersion != 1 {
		t.Fatalf("pre-swap session version %d (ok=%v), want 1", st.ModelVersion, ok)
	}

	if _, err := e.SwapModel(2); err != nil {
		t.Fatal(err)
	}
	if v := e.ActiveModelVersion(); v != 2 {
		t.Fatalf("active version %d after swap, want 2", v)
	}
	// The old bank keeps its pin even as it keeps ingesting; a fresh bank
	// binds the new version.
	if err := e.Ingest(uerAt(testBank(0), 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(uerAt(testBank(1), 5, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st, _ := e.Session(testBank(0)); st.ModelVersion != 1 {
		t.Fatalf("pre-swap session rebound to %d", st.ModelVersion)
	}
	if st, _ := e.Session(testBank(1)); st.ModelVersion != 2 {
		t.Fatalf("post-swap session bound %d, want 2", st.ModelVersion)
	}
	if floor := e.PinnedVersionFloor(); floor != 1 {
		t.Fatalf("pinned version floor %d, want 1", floor)
	}
	if sessions := e.Sessions(); len(sessions) != 2 {
		t.Fatalf("Sessions() returned %d entries, want 2", len(sessions))
	}
	if st := e.Stats(); st.ModelSwaps != 1 || st.ActiveModelVersion != 2 {
		t.Fatalf("stats swaps=%d active=%d, want 1/2", st.ModelSwaps, st.ActiveModelVersion)
	}

	// Swapping to a version the source cannot resolve fails cleanly and
	// changes nothing.
	if _, err := e.SwapModel(9); err == nil {
		t.Fatal("swap to unknown version succeeded")
	}
	if v := e.ActiveModelVersion(); v != 2 {
		t.Fatalf("active version %d after failed swap, want 2", v)
	}
}

// TestSwapRecordsInvisibleToExport: the journal interleaves swap records
// with events; ExportEvents must return exactly the events.
func TestSwapRecordsInvisibleToExport(t *testing.T) {
	fm := newFakeModels(1, 2, 3)
	e, err := New(Config{Models: fm, Shards: 2,
		Durability: DurabilityConfig{Dir: t.TempDir(), Sync: 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	go func() {
		for range e.Actions() {
		}
	}()

	const n = 40
	for i := 0; i < n; i++ {
		if i == 10 {
			if lsn, err := e.SwapModel(2); err != nil || lsn == 0 {
				t.Fatalf("durable swap: lsn=%d err=%v", lsn, err)
			}
		}
		if i == 25 {
			if _, err := e.SwapModel(3); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Ingest(uerAt(testBank(i%4), 1+i%8, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	evs, err := e.ExportEvents(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != n {
		t.Fatalf("exported %d events, want %d (swap records must be skipped)", len(evs), n)
	}
	for _, ev := range evs {
		if ev.Class != ecc.ClassUER {
			t.Fatalf("exported event with class %v", ev.Class)
		}
	}
}

// TestCrashDuringSwapEquivalence is the mid-swap durability gate: kill the
// engine at points straddling a model swap (with and without an intervening
// snapshot) and require byte-identical recovered state, the reference
// active version, and every session re-pinned to the version it was born
// under.
func TestCrashDuringSwapEquivalence(t *testing.T) {
	r := xrand.New(77)
	const banks, n, swapAt = 8, 240, 120
	evs := make([]mcelog.Event, 0, n)
	for i := 0; i < n; i++ {
		// First half exercises banks 0..3, second half 4..7, so sessions
		// exist on both sides of the swap.
		b := r.Intn(banks / 2)
		if i >= swapAt {
			b += banks / 2
		}
		ev := uerAt(testBank(b), 1+r.Intn(8), i)
		if r.Intn(4) == 0 {
			ev.Class = ecc.ClassCE
		}
		evs = append(evs, ev)
	}

	// Reference: an uninterrupted run with the swap at the same position.
	run := func(dir string, kill, snapAt int) *Engine {
		fm := newFakeModels(1, 2)
		e, err := New(Config{Models: fm, Shards: 3,
			Durability: DurabilityConfig{Dir: dir, Sync: 0}})
		if err != nil {
			t.Fatal(err)
		}
		start := int(e.Stats().RecoveredEvents)
		for i := start; i < kill; i++ {
			if i == swapAt {
				if _, err := e.SwapModel(2); err != nil {
					t.Fatal(err)
				}
			}
			if i == snapAt {
				if err := e.Drain(10 * time.Second); err != nil {
					t.Fatal(err)
				}
				if _, err := e.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Ingest(evs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Drain(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return e
	}

	ref := run(t.TempDir(), n, -1)
	refPayload, _, err := ref.encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	wantActions := actionKeys(drainActions(ref))
	wantBody := refPayload[snapBodyOffset:]

	kills := []struct{ kill, snapAt int }{
		{swapAt - 1, -1},           // die just before the swap
		{swapAt, -1},               // die with the swap as the last record
		{swapAt + 1, -1},           // die right after the first post-swap event
		{swapAt + 40, swapAt - 5},  // snapshot before the swap, crash after
		{swapAt + 40, swapAt + 10}, // snapshot AFTER the swap (header names v2)
		{n - 10, swapAt},
	}
	for _, k := range kills {
		t.Run(fmt.Sprintf("kill=%d,snap=%d", k.kill, k.snapAt), func(t *testing.T) {
			dir := t.TempDir()
			e1 := run(dir, k.kill, k.snapAt)
			if err := e1.Close(); err != nil { // no final snapshot: a crash
				t.Fatal(err)
			}
			a1 := drainActions(e1)

			// Recover under a different shard count and finish the feed.
			// The swap record (or snapshot header) must rebind exactly.
			fm := newFakeModels(1, 2)
			e2, err := New(Config{Models: fm, Shards: 5,
				Durability: DurabilityConfig{Dir: dir, Sync: 0}})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			wantActive := uint64(1)
			if k.kill > swapAt {
				wantActive = 2
			}
			if v := e2.ActiveModelVersion(); v != wantActive {
				t.Fatalf("recovered active version %d, want %d", v, wantActive)
			}
			for i := int(e2.Stats().RecoveredEvents); i < n; i++ {
				if i == swapAt {
					if _, err := e2.SwapModel(2); err != nil {
						t.Fatal(err)
					}
				}
				if err := e2.Ingest(evs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := e2.Drain(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			payload, _, err := e2.encodeSnapshot(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(payload[snapBodyOffset:], wantBody) {
				t.Error("recovered state diverged from uninterrupted run")
			}
			// Every session must be pinned to the version its bank's side
			// of the swap implies (testBank(i) puts i in the Node field).
			for _, st := range e2.Sessions() {
				want := uint64(1)
				if st.Bank.Node >= banks/2 {
					want = 2
				}
				if st.ModelVersion != want {
					t.Errorf("bank %v pinned to %d, want %d", st.Bank, st.ModelVersion, want)
				}
			}
			if err := e2.Close(); err != nil {
				t.Fatal(err)
			}
			assertSameActionSet(t, actionKeys(append(a1, drainActions(e2)...)), wantActions)
		})
	}
}

// TestConcurrentSwapIngestScrape races ingest against swaps, shadow
// start/stop and stat scrapes; correctness is "no event lost, versions
// always coherent" and (under -race) the absence of data races.
func TestConcurrentSwapIngestScrape(t *testing.T) {
	e, err := New(Config{Models: newFakeModels(1, 2), Shards: 4, QueueDepth: 1024})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range e.Actions() {
		}
	}()

	const n = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // swapper
		defer wg.Done()
		v := uint64(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.SwapModel(v); err != nil {
				t.Error(err)
				return
			}
			v = 3 - v
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // shadow churn
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.StartShadow(2); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
			e.StopShadow()
		}
	}()
	wg.Add(1)
	go func() { // scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats()
			if st.ActiveModelVersion != 1 && st.ActiveModelVersion != 2 {
				t.Errorf("incoherent active version %d", st.ActiveModelVersion)
				return
			}
			e.ShadowStats()
			e.RecentClassMix(16)
			e.Sessions()
			e.PinnedVersionFloor()
		}
	}()

	r := xrand.New(5)
	for i := 0; i < n; i++ {
		if err := e.Ingest(uerAt(testBank(r.Intn(32)), 1+r.Intn(16), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	st := e.Stats()
	if st.Dropped != 0 {
		t.Fatalf("%d events dropped", st.Dropped)
	}
	if st.Processed != uint64(n) {
		t.Fatalf("processed %d, want %d", st.Processed, n)
	}
	for _, s := range e.Sessions() {
		if s.ModelVersion != 1 && s.ModelVersion != 2 {
			t.Fatalf("session %v pinned to impossible version %d", s.Bank, s.ModelVersion)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecentClassMixSpatial: the drift sample labels live sessions from
// their UER row geometry, independent of any model.
func TestRecentClassMixSpatial(t *testing.T) {
	e, err := New(Config{Models: newFakeModels(1), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	go func() {
		for range e.Actions() {
		}
	}()

	// Bank 0: one tight cluster (single-row / aggregation). Bank 1: rows
	// flung across the bank (scattered). Bank 2: CEs only — no UERs, so it
	// must not appear in the sample.
	for i, row := range []int{100, 140, 180} {
		if err := e.Ingest(uerAt(testBank(0), row, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, row := range []int{500, 8000, 16000, 24000, 31000} {
		if err := e.Ingest(uerAt(testBank(1), row, 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	ce := uerAt(testBank(2), 50, 20)
	ce.Class = ecc.ClassCE
	if err := e.Ingest(ce); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	mix, total := e.RecentClassMix(10)
	if total != 2 {
		t.Fatalf("sampled %d banks, want 2 (CE-only bank excluded)", total)
	}
	sum := 0
	for _, n := range mix {
		sum += n
	}
	if sum != 2 {
		t.Fatalf("class counts sum to %d, want 2", sum)
	}
	// Truncation: asking for 1 keeps only the most recently active bank.
	if _, total := e.RecentClassMix(1); total != 1 {
		t.Fatalf("RecentClassMix(1) sampled %d", total)
	}
}

// fakeAdmin records admin calls for the endpoint tests.
type fakeAdmin struct {
	promoted  atomic.Uint64
	rollbacks atomic.Uint64
	trigger   atomic.Value
	fail      bool
}

func (a *fakeAdmin) Overview() any {
	return map[string]any{"activeVersion": 7}
}

func (a *fakeAdmin) Promote(v uint64) error {
	if a.fail {
		return fmt.Errorf("no candidate")
	}
	a.promoted.Store(v)
	return nil
}

func (a *fakeAdmin) Rollback() error {
	a.rollbacks.Add(1)
	return nil
}

func (a *fakeAdmin) Retrain(trigger string) error {
	a.trigger.Store(trigger)
	return nil
}

// TestServerModelAdminEndpoints covers the /v1/models surface and the
// model fields added to /statsz and /v1/banks.
func TestServerModelAdminEndpoints(t *testing.T) {
	e, err := New(Config{Models: newFakeModels(1, 2), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	admin := &fakeAdmin{}
	srv := NewServer(e, ServerConfig{ModelAdmin: admin})

	do := func(method, path, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		srv.ServeHTTP(rec, req)
		return rec
	}

	if rec := do("GET", "/v1/models", ""); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), `"activeVersion": 7`) {
		t.Fatalf("GET /v1/models: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do("POST", "/v1/models/promote", `{"version":3}`); rec.Code != 200 {
		t.Fatalf("promote: %d %s", rec.Code, rec.Body.String())
	}
	if v := admin.promoted.Load(); v != 3 {
		t.Fatalf("promote forwarded version %d, want 3", v)
	}
	if rec := do("POST", "/v1/models/promote", ""); rec.Code != 200 {
		t.Fatalf("empty-body promote: %d", rec.Code)
	}
	if v := admin.promoted.Load(); v != 0 {
		t.Fatalf("empty-body promote forwarded %d, want 0 (candidate)", v)
	}
	if rec := do("POST", "/v1/models/promote", `{"version":`); rec.Code != 400 {
		t.Fatalf("bad body: %d", rec.Code)
	}
	if rec := do("POST", "/v1/models/rollback", ""); rec.Code != 200 {
		t.Fatalf("rollback: %d", rec.Code)
	}
	if admin.rollbacks.Load() != 1 {
		t.Fatal("rollback not forwarded")
	}
	if rec := do("POST", "/v1/models/retrain", `{"trigger":"ops"}`); rec.Code != 202 {
		t.Fatalf("retrain: %d", rec.Code)
	}
	if tr, _ := admin.trigger.Load().(string); tr != "ops" {
		t.Fatalf("retrain trigger %q, want ops", tr)
	}
	if rec := do("POST", "/v1/models/retrain", ""); rec.Code != 202 {
		t.Fatalf("default retrain: %d", rec.Code)
	}
	if tr, _ := admin.trigger.Load().(string); tr != "manual" {
		t.Fatalf("default trigger %q, want manual", tr)
	}
	admin.fail = true
	if rec := do("POST", "/v1/models/promote", ""); rec.Code != 409 {
		t.Fatalf("refused promote: %d, want 409", rec.Code)
	}

	// Model fields on the existing surfaces: session pin in /v1/banks and
	// active version / per-version counts / shadow block in /statsz.
	if err := e.Ingest(uerAt(testBank(0), 3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SwapModel(2); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(uerAt(testBank(1), 3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	rec := do("GET", "/v1/banks/"+testBank(0).String(), "")
	var sess struct {
		ModelVersion uint64 `json:"modelVersion"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sess); err != nil {
		t.Fatal(err)
	}
	if sess.ModelVersion != 1 {
		t.Fatalf("bank 0 modelVersion %d, want 1", sess.ModelVersion)
	}

	rec = do("GET", "/statsz", "")
	var stats struct {
		ActiveModelVersion uint64         `json:"activeModelVersion"`
		ModelSwaps         uint64         `json:"modelSwaps"`
		ByVersion          map[string]int `json:"sessionsByModelVersion"`
		Shadow             map[string]any `json:"shadow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ActiveModelVersion != 2 || stats.ModelSwaps != 1 {
		t.Fatalf("statsz active=%d swaps=%d, want 2/1", stats.ActiveModelVersion, stats.ModelSwaps)
	}
	if stats.ByVersion["1"] != 1 || stats.ByVersion["2"] != 1 {
		t.Fatalf("sessionsByModelVersion = %v", stats.ByVersion)
	}
	if stats.Shadow == nil {
		t.Fatal("statsz missing shadow block")
	}

	// Without an admin the routes 404.
	bare := NewServer(e, ServerConfig{})
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/models", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /v1/models without admin: %d, want 404", rec.Code)
	}
}

// BenchmarkModelSwap measures the swap pause — the window SwapModel holds
// every shard's intake lock while journaling the swap record — over an
// engine with live sessions. ns/op is the mean pause; the p99 rides along
// as a custom metric for BENCH_retrain.json.
func BenchmarkModelSwap(b *testing.B) {
	e, err := New(Config{Models: newFakeModels(1, 2), Shards: 4,
		Logger:     slog.New(slog.DiscardHandler),
		Durability: DurabilityConfig{Dir: b.TempDir(), Sync: wal.SyncNever}})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range e.Actions() {
		}
	}()
	r := xrand.New(3)
	for i := 0; i < 256; i++ {
		if err := e.Ingest(uerAt(testBank(i), 1+r.Intn(16), i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Drain(30 * time.Second); err != nil {
		b.Fatal(err)
	}

	durs := make([]time.Duration, 0, b.N)
	v := uint64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := e.SwapModel(v); err != nil {
			b.Fatal(err)
		}
		durs = append(durs, time.Since(t0))
		v = 3 - v
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p99 := durs[len(durs)*99/100]
	if len(durs)*99/100 >= len(durs) {
		p99 = durs[len(durs)-1]
	}
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-pause-ns")
	if err := e.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShadowOverhead measures what a live shadow evaluation adds to
// the per-event ingest path: every bank gets a candidate twin, so each
// event is folded twice. Compare the on/off sub-benchmarks' ns/event.
func BenchmarkShadowOverhead(b *testing.B) {
	for _, shadowOn := range []bool{false, true} {
		name := "off"
		if shadowOn {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			e, err := New(Config{Models: newFakeModels(1, 2), Shards: 4,
				QueueDepth: 4096, Logger: slog.New(slog.DiscardHandler)})
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for range e.Actions() {
				}
			}()
			if shadowOn {
				if err := e.StartShadow(2); err != nil {
					b.Fatal(err)
				}
			}
			r := xrand.New(9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Ingest(uerAt(testBank(r.Intn(64)), 1+r.Intn(16), i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Drain(60 * time.Second); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/event")
			if err := e.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
