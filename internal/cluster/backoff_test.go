package cluster

import (
	"testing"
	"time"
)

// TestBackoffDelayCeiling pins the deterministic ceiling schedule: pure
// doubling from base, clamped at max.
func TestBackoffDelayCeiling(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for attempt, w := range want {
		if got := backoffDelay(attempt, base, max); got != w {
			t.Errorf("backoffDelay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

// TestJitteredBackoffBounds: every draw lands in [ceiling/2, ceiling], so
// the exponential shape survives (attempt n never undercuts attempt n-1's
// ceiling) and no draw exceeds the cap.
func TestJitteredBackoffBounds(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	for attempt := 0; attempt < 10; attempt++ {
		ceil := backoffDelay(attempt, base, max)
		for i := 0; i < 200; i++ {
			d := jitteredBackoff(attempt, base, max)
			if d < ceil/2 || d > ceil {
				t.Fatalf("jitteredBackoff(%d) = %v, want in [%v, %v]", attempt, d, ceil/2, ceil)
			}
		}
	}
}

// TestJitteredBackoffSpreads: the whole point of the jitter is that two
// clients retrying the same attempt do NOT sleep identically. With 100
// draws over a 25ms half-window, a constant output would mean the jitter
// is wired to a degenerate source.
func TestJitteredBackoffSpreads(t *testing.T) {
	seen := make(map[time.Duration]bool)
	for i := 0; i < 100; i++ {
		seen[jitteredBackoff(0, 50*time.Millisecond, 2*time.Second)] = true
	}
	if len(seen) < 10 {
		t.Errorf("100 draws produced only %d distinct delays; jitter looks degenerate", len(seen))
	}
}
