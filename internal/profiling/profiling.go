// Package profiling wires the runtime/pprof collectors behind the
// -cpuprofile/-memprofile flags of the cordial commands, so hot-path
// regressions in training and inference are diagnosable with
// `go tool pprof` against a production-shaped run.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths and
// returns a stop function that finalises them. cpuPath starts a CPU profile
// immediately; memPath records a heap profile at stop time, after a GC, so
// it reflects live memory rather than transient garbage. Stop must be called
// before exit (typically deferred from main) or the profile files are
// truncated/empty.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: starting cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: closing cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: creating mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: writing mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
