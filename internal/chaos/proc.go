package chaos

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Daemon is one supervised fleet process (cordial-serve, cordial-control
// or cordial-router). It mirrors the clitest harness pattern — launch,
// scan stdout for the resolved-address slog line, capture output — but
// lives outside testing.T so the chaos runner can also SIGKILL, pause and
// restart processes mid-run.
type Daemon struct {
	Name string // role label: node-1, control, router, reference
	Path string // binary path
	Args []string

	mu    sync.Mutex
	cmd   *exec.Cmd
	addr  string
	out   *tailBuf
	alive bool
}

// tailBuf is a concurrency-safe, bounded output capture: it keeps the
// last maxTail bytes so a chatty daemon cannot balloon the harness.
type tailBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

const maxTail = 256 << 10

func (b *tailBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, err := b.buf.Write(p)
	if b.buf.Len() > maxTail {
		rest := b.buf.Bytes()[b.buf.Len()-maxTail:]
		trimmed := make([]byte, len(rest))
		copy(trimmed, rest)
		b.buf.Reset()
		b.buf.Write(trimmed)
	}
	return n, err
}

func (b *tailBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startupTimeout bounds how long a daemon may take to report its listen
// address; self-training dominates and can be slow on loaded CI hosts.
const startupTimeout = 3 * time.Minute

// Start launches the process and blocks until it logs
// "msg=listening addr=127.0.0.1:NNNNN" on stdout.
func (d *Daemon) Start() error {
	d.mu.Lock()
	if d.alive {
		d.mu.Unlock()
		return fmt.Errorf("chaos: %s already running", d.Name)
	}
	cmd := exec.Command(d.Path, d.Args...)
	out := &tailBuf{}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		d.mu.Unlock()
		return err
	}
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		d.mu.Unlock()
		return fmt.Errorf("chaos: start %s: %w", d.Name, err)
	}
	d.cmd = cmd
	d.out = out
	d.alive = true
	d.mu.Unlock()

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64<<10), 64<<10)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(out, line)
			if !strings.Contains(line, "msg=listening") {
				continue
			}
			if _, rest, ok := strings.Cut(line, "addr="); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					select {
					case addrc <- strings.Trim(fields[0], `"`):
					default:
					}
				}
			}
		}
	}()

	select {
	case addr := <-addrc:
		d.mu.Lock()
		d.addr = addr
		d.mu.Unlock()
		return nil
	case <-time.After(startupTimeout):
		d.Kill()
		return fmt.Errorf("chaos: %s never reported its address; output:\n%s",
			filepath.Base(d.Path), out.String())
	}
}

// Addr returns the daemon's resolved listen address.
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addr
}

// URL joins the daemon's base URL with path.
func (d *Daemon) URL(path string) string { return "http://" + d.Addr() + path }

// Alive reports whether the harness believes the process is running (it
// has been started and not yet killed/terminated by the harness).
func (d *Daemon) Alive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alive
}

// Output returns the captured (bounded) stdout+stderr tail.
func (d *Daemon) Output() string {
	d.mu.Lock()
	out := d.out
	d.mu.Unlock()
	if out == nil {
		return ""
	}
	return out.String()
}

// Signal delivers sig to the process.
func (d *Daemon) Signal(sig syscall.Signal) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.alive || d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("chaos: %s is not running", d.Name)
	}
	return d.cmd.Process.Signal(sig)
}

// Kill SIGKILLs the process and reaps it.
func (d *Daemon) Kill() {
	d.mu.Lock()
	cmd := d.cmd
	d.alive = false
	d.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// Terminate sends SIGTERM and waits up to grace for a clean exit, then
// escalates to SIGKILL.
func (d *Daemon) Terminate(grace time.Duration) {
	d.mu.Lock()
	cmd := d.cmd
	d.alive = false
	d.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		cmd.Process.Kill()
		<-done
	}
}
