package experiments

import (
	"fmt"
	"io"
	"math"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

// GeneratorStats summarises one generation mode's log structure.
type GeneratorStats struct {
	Mode string
	// Banks generated.
	Banks int
	// MeanUERRows is the average distinct UER rows per bank.
	MeanUERRows float64
	// SuddenRatio is the fraction of UER rows without in-row precursors.
	SuddenRatio float64
	// Within128 is the fraction of successive first-UER pairs within 128
	// rows (the Figure 4 anchor).
	Within128 float64
	// MeanClusterSpan is the average max-min UER row distance per bank.
	MeanClusterSpan float64
	// UEOShare is the UEO fraction of all uncorrectable events.
	UEOShare float64
}

// GeneratorValidation compares the calibrated fast path against the
// first-principles physical path (faults → SEC-DED → scrubber/demand) on the
// single-row pattern. Their logs emerge from entirely different code, so
// agreement on the structural statistics validates both.
type GeneratorValidation struct {
	Fast     GeneratorStats
	Physical GeneratorStats
}

// RunGeneratorValidation generates banks through both paths and summarises.
func RunGeneratorValidation(p Params, banks int) (*GeneratorValidation, error) {
	if banks < 10 {
		return nil, fmt.Errorf("experiments: validation needs ≥10 banks, got %d", banks)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &GeneratorValidation{}

	fastGen, err := faultsim.NewGenerator(p.Spec.Fault, xrand.New(p.Spec.Seed+1))
	if err != nil {
		return nil, err
	}
	fast, err := collectStats("fast", banks, func() (*faultsim.BankFault, error) {
		return fastGen.Generate(hbm.BankAddress{}, faultsim.PatternSingleRow)
	})
	if err != nil {
		return nil, err
	}
	out.Fast = fast

	physGen, err := faultsim.NewGenerator(p.Spec.Fault, xrand.New(p.Spec.Seed+2))
	if err != nil {
		return nil, err
	}
	pcfg := faultsim.DefaultPhysicalConfig()
	physical, err := collectStats("physical", banks, func() (*faultsim.BankFault, error) {
		return physGen.GeneratePhysical(hbm.BankAddress{}, faultsim.PatternSingleRow, pcfg)
	})
	if err != nil {
		return nil, err
	}
	out.Physical = physical
	return out, nil
}

func collectStats(mode string, banks int, gen func() (*faultsim.BankFault, error)) (GeneratorStats, error) {
	s := GeneratorStats{Mode: mode, Banks: banks}
	var totalRows, sudden, totalSudden int
	var pairs, within int
	var spanSum float64
	var ueos, uces int
	for i := 0; i < banks; i++ {
		bf, err := gen()
		if err != nil {
			return s, err
		}
		totalRows += len(bf.UERRows)
		for _, sd := range bf.SuddenRow {
			totalSudden++
			if sd {
				sudden++
			}
		}
		lo, hi := bf.UERRows[0], bf.UERRows[0]
		for _, r := range bf.UERRows {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		spanSum += float64(hi - lo)
		for j := 1; j < len(bf.UERRows); j++ {
			pairs++
			if abs(bf.UERRows[j]-bf.UERRows[j-1]) <= 128 {
				within++
			}
		}
		for _, e := range bf.Events {
			switch e.Class {
			case ecc.ClassUEO:
				ueos++
				uces++
			case ecc.ClassUER:
				uces++
			}
		}
	}
	s.MeanUERRows = float64(totalRows) / float64(banks)
	if totalSudden > 0 {
		s.SuddenRatio = float64(sudden) / float64(totalSudden)
	}
	if pairs > 0 {
		s.Within128 = float64(within) / float64(pairs)
	}
	s.MeanClusterSpan = spanSum / float64(banks)
	if uces > 0 {
		s.UEOShare = float64(ueos) / float64(uces)
	}
	return s, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Render writes both modes side by side.
func (v *GeneratorValidation) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Statistic\tFast path\tPhysical path")
	rows := []struct {
		name  string
		f, ph float64
		pctFn bool
	}{
		{"mean UER rows per bank", v.Fast.MeanUERRows, v.Physical.MeanUERRows, false},
		{"sudden row ratio", v.Fast.SuddenRatio, v.Physical.SuddenRatio, true},
		{"successive pairs within 128", v.Fast.Within128, v.Physical.Within128, true},
		{"mean cluster span (rows)", v.Fast.MeanClusterSpan, v.Physical.MeanClusterSpan, false},
		{"UEO share of UCEs", v.Fast.UEOShare, v.Physical.UEOShare, true},
	}
	for _, r := range rows {
		if r.pctFn {
			fmt.Fprintf(tw, "%s\t%s\t%s\n", r.name, pct(r.f), pct(r.ph))
		} else {
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\n", r.name, r.f, r.ph)
		}
	}
	return tw.Flush()
}

// Agree reports whether the two modes' key locality statistics agree within
// the tolerance (fractional for spans, absolute for ratios).
func (v *GeneratorValidation) Agree(tol float64) bool {
	if math.Abs(v.Fast.Within128-v.Physical.Within128) > tol {
		return false
	}
	if math.Abs(v.Fast.SuddenRatio-v.Physical.SuddenRatio) > tol {
		return false
	}
	if v.Fast.MeanClusterSpan <= 0 {
		return false
	}
	rel := math.Abs(v.Fast.MeanClusterSpan-v.Physical.MeanClusterSpan) / v.Fast.MeanClusterSpan
	return rel <= 3*tol
}
