package hbm

import (
	"fmt"
	"math/bits"
)

// RowMap is a bijective mapping between the logical row numbers that appear
// in MCE logs and the physical placement of rows on the die. DRAM vendors
// scramble row addresses (internal remapping, anti-fuse repairs, mirrored
// sub-array segments), so two logically adjacent rows need not be physical
// neighbours. The half-total-row pattern of Figure 3(a) is the classic
// symptom: one physical defect surfaces as two logical clusters exactly half
// the bank apart because the bank's two sub-array halves mirror an address
// bit.
type RowMap interface {
	// ToPhysical maps a logical row to its physical row.
	ToPhysical(logical int) int
	// ToLogical maps a physical row back to its logical row.
	ToLogical(physical int) int
	// Rows returns the mapped domain size.
	Rows() int
}

// IdentityMap is the trivial mapping (logical == physical).
type IdentityMap struct {
	NumRows int
}

var _ RowMap = IdentityMap{}

// ToPhysical returns the row unchanged.
func (m IdentityMap) ToPhysical(logical int) int { return logical }

// ToLogical returns the row unchanged.
func (m IdentityMap) ToLogical(physical int) int { return physical }

// Rows returns the domain size.
func (m IdentityMap) Rows() int { return m.NumRows }

// XorMap scrambles rows by XOR-ing a fixed mask onto the row bits — its own
// inverse, and the standard model for address-bit swizzling. A mask with
// only the top bit set models mirrored sub-array halves: physical neighbours
// land half the logical bank apart.
type XorMap struct {
	NumRows int
	Mask    int
}

var _ RowMap = XorMap{}

// NewXorMap builds an XOR scramble over a power-of-two row count. The mask
// must keep rows in range.
func NewXorMap(numRows, mask int) (XorMap, error) {
	if numRows <= 0 || bits.OnesCount(uint(numRows)) != 1 {
		return XorMap{}, fmt.Errorf("hbm: XorMap needs a power-of-two row count, got %d", numRows)
	}
	if mask < 0 || mask >= numRows {
		return XorMap{}, fmt.Errorf("hbm: XorMap mask %#x out of [0,%d)", mask, numRows)
	}
	return XorMap{NumRows: numRows, Mask: mask}, nil
}

// ToPhysical XORs the mask onto the row.
func (m XorMap) ToPhysical(logical int) int { return logical ^ m.Mask }

// ToLogical XORs the mask onto the row (XOR is an involution).
func (m XorMap) ToLogical(physical int) int { return physical ^ m.Mask }

// Rows returns the domain size.
func (m XorMap) Rows() int { return m.NumRows }

// MirrorMap models per-half mirroring: the bank's upper half stores its rows
// in reverse order, so logical rows r and NumRows-1-r in the upper half are
// physical neighbours of their lower-half counterparts. This produces the
// "two clusters, consistent interval" geometry of the double-row patterns.
type MirrorMap struct {
	NumRows int
}

var _ RowMap = MirrorMap{}

// NewMirrorMap builds a mirror map over an even row count.
func NewMirrorMap(numRows int) (MirrorMap, error) {
	if numRows <= 0 || numRows%2 != 0 {
		return MirrorMap{}, fmt.Errorf("hbm: MirrorMap needs a positive even row count, got %d", numRows)
	}
	return MirrorMap{NumRows: numRows}, nil
}

// ToPhysical reverses the order of the upper half.
func (m MirrorMap) ToPhysical(logical int) int {
	half := m.NumRows / 2
	if logical < half {
		return logical
	}
	return m.NumRows - 1 - (logical - half)
}

// ToLogical inverts ToPhysical.
func (m MirrorMap) ToLogical(physical int) int {
	half := m.NumRows / 2
	if physical < half {
		return physical
	}
	return half + (m.NumRows - 1 - physical)
}

// Rows returns the domain size.
func (m MirrorMap) Rows() int { return m.NumRows }

// PhysicalDistance returns the physical row distance between two logical
// rows under the map.
func PhysicalDistance(m RowMap, logicalA, logicalB int) int {
	d := m.ToPhysical(logicalA) - m.ToPhysical(logicalB)
	if d < 0 {
		return -d
	}
	return d
}

// CheckBijective verifies m is a bijection over [0, m.Rows()) — a validation
// helper for custom maps.
func CheckBijective(m RowMap) error {
	n := m.Rows()
	if n <= 0 {
		return fmt.Errorf("hbm: row map has non-positive domain %d", n)
	}
	seen := make([]bool, n)
	for r := 0; r < n; r++ {
		p := m.ToPhysical(r)
		if p < 0 || p >= n {
			return fmt.Errorf("hbm: row %d maps to %d, out of [0,%d)", r, p, n)
		}
		if seen[p] {
			return fmt.Errorf("hbm: physical row %d hit twice", p)
		}
		seen[p] = true
		if back := m.ToLogical(p); back != r {
			return fmt.Errorf("hbm: round trip %d -> %d -> %d", r, p, back)
		}
	}
	return nil
}
