package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	"cordial/internal/obs"
)

// batchRecords builds n fixed-size records with recognisable contents.
func batchRecords(n, size int) []byte {
	out := make([]byte, 0, n*size)
	for i := 0; i < n; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, size)
		binary.LittleEndian.PutUint32(rec[:4], uint32(i))
		out = append(out, rec...)
	}
	return out
}

// TestAppendBatch: a batch lands under consecutive LSNs, replays in
// order, and interleaves correctly with single appends.
func TestAppendBatch(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if _, err := w.Append([]byte("single-1")); err != nil {
		t.Fatal(err)
	}
	const n, size = 100, 17
	first, err := w.AppendBatch(batchRecords(n, size), size)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("batch first LSN = %d, want 2", first)
	}
	if _, err := w.Append([]byte("single-2")); err != nil {
		t.Fatal(err)
	}
	if got := w.Appended(); got != n+2 {
		t.Fatalf("Appended() = %d, want %d", got, n+2)
	}

	var lsns []uint64
	var payloads [][]byte
	if err := w.Replay(func(lsn uint64, p []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != n+2 {
		t.Fatalf("replayed %d records, want %d", len(lsns), n+2)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d (batch LSNs must be consecutive)", i, lsn, i+1)
		}
	}
	for i := 0; i < n; i++ {
		p := payloads[i+1]
		if len(p) != size || binary.LittleEndian.Uint32(p[:4]) != uint32(i) {
			t.Fatalf("batch record %d replayed wrong: %x", i, p)
		}
	}
}

// TestAppendBatchValidation: shape errors are rejected before staging.
func TestAppendBatchValidation(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.AppendBatch(make([]byte, 35), 17); err == nil {
		t.Error("ragged batch accepted")
	}
	if _, err := w.AppendBatch(make([]byte, 17), 0); err == nil {
		t.Error("zero record size accepted")
	}
	if first, err := w.AppendBatch(nil, 17); err != nil || first != 0 {
		t.Errorf("empty batch: got (%d, %v), want (0, nil)", first, err)
	}
	if next := w.NextLSN(); next != firstRecLSN {
		t.Errorf("rejected batches advanced NextLSN to %d", next)
	}
}

// TestAppendBatchRotation: a batch larger than one segment spans the
// rotation and every record survives.
func TestAppendBatchRotation(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncNever, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n, size = 200, 17
	for i := 0; i < 5; i++ {
		if _, err := w.AppendBatch(batchRecords(n, size), size); err != nil {
			t.Fatal(err)
		}
	}
	if w.Segments() < 2 {
		t.Fatalf("expected rotation, still %d segment(s)", w.Segments())
	}
	count := 0
	if err := w.Replay(func(lsn uint64, p []byte) error {
		if lsn != uint64(count+1) {
			return fmt.Errorf("LSN %d at position %d", lsn, count)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5*n {
		t.Fatalf("replayed %d records, want %d", count, 5*n)
	}
}

// TestAppendBatchSingleFsync pins the amortisation: one batch under
// SyncAlways costs exactly one fsync, not one per record.
func TestAppendBatchSingleFsync(t *testing.T) {
	reg := obs.NewRegistry()
	w, err := Open(t.TempDir(), Options{Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n, size = 300, 17
	if _, err := w.AppendBatch(batchRecords(n, size), size); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, fmt.Sprintf("cordial_wal_appends_total %d\n", n)) {
		t.Errorf("appends_total should count records:\n%s", out)
	}
	if !strings.Contains(out, "cordial_wal_fsyncs_total 1\n") {
		t.Errorf("a %d-record batch should cost exactly 1 fsync:\n%s", n, out)
	}
}

// TestGroupCommitConcurrent: concurrent appenders under group commit all
// get distinct LSNs, every acked record replays, and the journal is
// byte-valid after a reopen (the crash path).
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 50
	lsns := make([][]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				payload := fmt.Appendf(nil, "w%d-%d", g, i)
				lsn, err := w.Append(payload)
				if err != nil {
					t.Errorf("worker %d append %d: %v", g, i, err)
					return
				}
				lsns[g] = append(lsns[g], lsn)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	seen := map[uint64]bool{}
	for g := range lsns {
		for i, lsn := range lsns[g] {
			if seen[lsn] {
				t.Fatalf("LSN %d assigned twice", lsn)
			}
			seen[lsn] = true
			if i > 0 && lsn <= lsns[g][i-1] {
				t.Fatalf("worker %d: LSN %d after %d — per-appender order broken", g, lsn, lsns[g][i-1])
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen as recovery would and check every acked record is present.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := map[uint64]string{}
	if err := w2.Replay(func(lsn uint64, p []byte) error {
		got[lsn] = string(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*perWorker {
		t.Fatalf("recovered %d records, want %d", len(got), workers*perWorker)
	}
	for g := range lsns {
		for i, lsn := range lsns[g] {
			want := fmt.Sprintf("w%d-%d", g, i)
			if got[lsn] != want {
				t.Fatalf("LSN %d holds %q, want %q", lsn, got[lsn], want)
			}
		}
	}
}

// TestGroupCommitCoalesces: under contention the window protocol must
// produce fewer fsyncs than appends — the whole point of group commit.
func TestGroupCommitCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	w, err := Open(t.TempDir(), Options{Sync: SyncAlways, GroupCommit: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := w.Append([]byte("rec")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	appends, fsyncs := -1, -1
	for _, line := range strings.Split(b.String(), "\n") {
		if _, err := fmt.Sscanf(line, "cordial_wal_appends_total %d", &appends); err == nil {
			continue
		}
		_, _ = fmt.Sscanf(line, "cordial_wal_fsyncs_total %d", &fsyncs)
	}
	if appends != workers*perWorker {
		t.Fatalf("appends_total = %d, want %d", appends, workers*perWorker)
	}
	if fsyncs < 1 || fsyncs > appends {
		t.Fatalf("fsyncs_total = %d outside (0, %d]", fsyncs, appends)
	}
	t.Logf("group commit: %d appends over %d fsyncs (%.1fx coalescing)",
		appends, fsyncs, float64(appends)/float64(fsyncs))
}

// TestGroupCommitFsyncFailure: a failed window fsync fails every append
// that joined the window — no record is acked whose covering fsync did
// not complete.
func TestGroupCommitFsyncFailure(t *testing.T) {
	ffs := NewFaultFS(OSFS)
	w, err := Open(t.TempDir(), Options{FS: ffs, Sync: SyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAfter(0)
	const workers = 4
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[g] = w.Append([]byte("doomed"))
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err == nil {
			t.Errorf("worker %d: append acked despite failed covering fsync", g)
		}
	}
	ffs.FailSyncAfter(-1)
	if _, err := w.Append([]byte("recovered")); err != nil {
		t.Fatalf("append after fsync recovery: %v", err)
	}
}

// BenchmarkAppendBatch measures batch append cost per record; sync=always
// shows the fsync amortisation a 1024-record batch buys (one fsync per
// batch instead of one per record).
func BenchmarkAppendBatch(b *testing.B) {
	for _, pol := range []struct {
		name string
		sync SyncPolicy
	}{{"never", SyncNever}, {"always", SyncAlways}} {
		b.Run("sync="+pol.name, func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{Sync: pol.sync, GroupCommit: true})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			const n, size = 1024, 17
			recs := batchRecords(n, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.AppendBatch(recs, size); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "records/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n*b.N), "ns/record")
		})
	}
}
