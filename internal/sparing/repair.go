package sparing

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/xrand"
)

// Technique is a concrete recovery mechanism. The paper (§I) stresses that
// recovery techniques must be selected by fault rate: data copying can be
// interrupted when pages are locked, hard repairs cost a reboot window, and
// bank replacement burns scarce redundancy.
type Technique int

// Recovery techniques.
const (
	// TechniqueSoftPPR is soft post-package repair: the row remap lives in
	// volatile registers; fast, no reboot, lost on power cycle.
	TechniqueSoftPPR Technique = iota + 1
	// TechniqueHardPPR is hard post-package repair: the remap is burned
	// into fuses; permanent but needs a maintenance window.
	TechniqueHardPPR
	// TechniquePageOffline retires the OS page after copying its contents
	// away; can fail when the page is locked by a running workload.
	TechniquePageOffline
	// TechniqueBankReplace remaps the whole bank onto a spare.
	TechniqueBankReplace
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case TechniqueSoftPPR:
		return "soft-PPR"
	case TechniqueHardPPR:
		return "hard-PPR"
	case TechniquePageOffline:
		return "page-offline"
	case TechniqueBankReplace:
		return "bank-replace"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// TechniqueProfile models one technique's operational cost and risk.
type TechniqueProfile struct {
	// Latency is the time the repair occupies the device.
	Latency time.Duration
	// SuccessProb is the chance the repair completes; page offlining
	// fails when the page is locked mid-copy.
	SuccessProb float64
	// Persistent reports whether the repair survives a power cycle.
	Persistent bool
	// NeedsWindow reports whether a maintenance window (job drain) is
	// required.
	NeedsWindow bool
}

// DefaultProfiles returns operationally plausible technique profiles.
func DefaultProfiles() map[Technique]TechniqueProfile {
	return map[Technique]TechniqueProfile{
		TechniqueSoftPPR: {
			Latency:     200 * time.Millisecond,
			SuccessProb: 0.995,
			Persistent:  false,
			NeedsWindow: false,
		},
		TechniqueHardPPR: {
			Latency:     2 * time.Second,
			SuccessProb: 0.99,
			Persistent:  true,
			NeedsWindow: true,
		},
		TechniquePageOffline: {
			Latency:     50 * time.Millisecond,
			SuccessProb: 0.92, // locked pages abort the copy
			Persistent:  false,
			NeedsWindow: false,
		},
		TechniqueBankReplace: {
			Latency:     5 * time.Second,
			SuccessProb: 0.999,
			Persistent:  true,
			NeedsWindow: true,
		},
	}
}

// Validate checks a profile.
func (p TechniqueProfile) Validate() error {
	if p.Latency < 0 {
		return fmt.Errorf("sparing: negative latency %v", p.Latency)
	}
	if p.SuccessProb < 0 || p.SuccessProb > 1 {
		return fmt.Errorf("sparing: success probability %g out of [0,1]", p.SuccessProb)
	}
	return nil
}

// Planner selects recovery techniques by fault rate and urgency, per the
// paper's observation that one fixed technique does not fit all fault
// profiles.
type Planner struct {
	Profiles map[Technique]TechniqueProfile
	// SoftPPRRateLimit is the per-bank UER-rows-per-day rate above which
	// volatile repairs stop being trusted and hard repairs are scheduled.
	SoftPPRRateLimit float64
	// BankReplaceRowLimit is the distinct-UER-row count above which
	// row-granular repair is abandoned for bank replacement (the
	// scattered-pattern policy).
	BankReplaceRowLimit int
}

// NewPlanner returns a planner with the default profiles and limits.
func NewPlanner() *Planner {
	return &Planner{
		Profiles:            DefaultProfiles(),
		SoftPPRRateLimit:    2.0,
		BankReplaceRowLimit: 12,
	}
}

// Plan chooses the technique for a bank given its observed distinct UER
// rows, the measured UER-row rate (rows/day), and whether a maintenance
// window is currently available.
func (p *Planner) Plan(uerRows int, rowsPerDay float64, windowAvailable bool) Technique {
	if uerRows > p.BankReplaceRowLimit {
		if windowAvailable {
			return TechniqueBankReplace
		}
		// Cannot drain now: shed load via page offlining until a window
		// opens.
		return TechniquePageOffline
	}
	if rowsPerDay > p.SoftPPRRateLimit && windowAvailable {
		return TechniqueHardPPR
	}
	if !windowAvailable {
		return TechniqueSoftPPR
	}
	// Low-rate fault with a window available: prefer the persistent fix.
	return TechniqueHardPPR
}

// RepairResult is the outcome of attempting one repair.
type RepairResult struct {
	Technique Technique
	Succeeded bool
	Latency   time.Duration
	// Retried counts extra attempts after failures.
	Retried int
}

// Attempt simulates executing a repair with up to maxRetries retries,
// drawing success from the technique's profile.
func (p *Planner) Attempt(t Technique, rng *xrand.RNG, maxRetries int) (RepairResult, error) {
	profile, ok := p.Profiles[t]
	if !ok {
		return RepairResult{}, fmt.Errorf("sparing: no profile for technique %v", t)
	}
	if err := profile.Validate(); err != nil {
		return RepairResult{}, err
	}
	if rng == nil {
		return RepairResult{}, fmt.Errorf("sparing: nil RNG")
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	res := RepairResult{Technique: t}
	for attempt := 0; attempt <= maxRetries; attempt++ {
		res.Latency += profile.Latency
		if rng.Bool(profile.SuccessProb) {
			res.Succeeded = true
			res.Retried = attempt
			return res, nil
		}
	}
	res.Retried = maxRetries
	return res, nil
}

// PlanSummary tallies a batch of planning decisions.
type PlanSummary struct {
	Counts map[Technique]int
}

// Summarise plans a batch of (rows, rate, window) triples and tallies the
// chosen techniques, most used first.
func (p *Planner) Summarise(cases []PlanCase) PlanSummary {
	s := PlanSummary{Counts: make(map[Technique]int)}
	for _, c := range cases {
		s.Counts[p.Plan(c.UERRows, c.RowsPerDay, c.WindowAvailable)]++
	}
	return s
}

// PlanCase is one bank's situation for batch planning.
type PlanCase struct {
	UERRows         int
	RowsPerDay      float64
	WindowAvailable bool
}

// Ranked returns the techniques by descending use count.
func (s PlanSummary) Ranked() []Technique {
	out := make([]Technique, 0, len(s.Counts))
	for t := range s.Counts {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if s.Counts[out[i]] != s.Counts[out[j]] {
			return s.Counts[out[i]] > s.Counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
