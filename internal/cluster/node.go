package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"cordial/internal/obs"
	"cordial/internal/stream"
)

// AgentConfig wires a serve node into a cluster.
type AgentConfig struct {
	// ControlPlane is the control plane's base URL (http://host:port).
	ControlPlane string
	// Self identifies this node: ring ID, advertised ingest address and
	// the WAL directory the control plane may read for dead-node takeover.
	Self Member
	// Heartbeat is the registration refresh interval. Default 2s.
	Heartbeat time.Duration
	// DrainTimeout bounds the engine drain before a handoff export.
	// Default 10s.
	DrainTimeout time.Duration
	// Logger defaults to slog.Default().
	Logger *slog.Logger
	// Client is the HTTP client for control-plane calls. Default: a
	// client with a 30s timeout.
	Client *http.Client
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Agent runs inside a serve node: it registers with the control plane,
// heartbeats, tracks ring epochs, and serves the handoff endpoints the
// control plane drives during rebalances (/cluster/v1/export, import,
// drop). Ownership changes flow one way — the agent only ever adopts a
// descriptor with a higher epoch than the one it holds.
type Agent struct {
	cfg    AgentConfig
	engine *stream.Engine
	server *stream.Server
	mux    *http.ServeMux

	exports   *obs.Counter
	imports   *obs.Counter
	drops     *obs.Counter
	adoptions *obs.Counter

	mu    sync.Mutex
	epoch uint64
	ring  *Ring
}

// NewAgent builds the agent and registers its instruments in the
// engine's metrics registry (one /metrics scrape covers the node).
// Mount Handler() under /cluster/ next to the stream server.
func NewAgent(cfg AgentConfig, engine *stream.Engine, server *stream.Server) *Agent {
	a := &Agent{
		cfg:    cfg.withDefaults(),
		engine: engine,
		server: server,
		mux:    http.NewServeMux(),
	}
	reg := engine.Metrics()
	a.exports = reg.Counter("cordial_cluster_handoff_exports_total",
		"Handoff exports served (sessions shipped to another node).")
	a.imports = reg.Counter("cordial_cluster_handoff_imports_total",
		"Handoff imports served (sessions adopted from another node).")
	a.drops = reg.Counter("cordial_cluster_handoff_drops_total",
		"Post-handoff drops of sessions this node no longer owns.")
	a.adoptions = reg.Counter("cordial_cluster_ring_adoptions_total",
		"Ring descriptors adopted (epoch advances seen by this node).")
	reg.GaugeFunc("cordial_cluster_ring_epoch",
		"Ring epoch this node currently serves under (0 = standalone).",
		func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(a.epoch)
		})
	a.mux.HandleFunc("POST /cluster/v1/export", a.handleExport)
	a.mux.HandleFunc("POST /cluster/v1/import", a.handleImport)
	a.mux.HandleFunc("POST /cluster/v1/drop", a.handleDrop)
	return a
}

// Handler serves the node-side cluster endpoints.
func (a *Agent) Handler() http.Handler { return a.mux }

// Epoch reports the ring epoch the node currently serves under.
func (a *Agent) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// adopt installs a descriptor's ownership view. Stale or same-epoch
// descriptors are no-ops: epochs only move forward, so a late-arriving
// control-plane call can never roll ownership back.
func (a *Agent) adopt(desc Descriptor) (*Ring, error) {
	ring, err := BuildRing(desc)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if desc.Epoch <= a.epoch {
		if desc.Epoch < a.epoch {
			return nil, fmt.Errorf("cluster: stale descriptor epoch %d (serving %d)", desc.Epoch, a.epoch)
		}
		return a.ring, nil
	}
	a.epoch = desc.Epoch
	a.ring = ring
	self := a.cfg.Self.ID
	a.server.SetOwnership(desc.Epoch, func(key uint64) bool { return ring.Owns(self, key) })
	a.adoptions.Inc()
	a.cfg.Logger.Info("adopted ring", "epoch", desc.Epoch, "members", ring.Len())
	return ring, nil
}

// handleExport: adopt the new descriptor (fencing off the moved banks),
// drain in-flight work, and return every session this node no longer
// owns. The live path ships no WAL suffix — after the drain the snapshot
// payload covers every accepted event for the moved banks.
func (a *Agent) handleExport(w http.ResponseWriter, r *http.Request) {
	var req exportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ring, err := a.adopt(req.Desc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if err := a.engine.Drain(a.cfg.DrainTimeout); err != nil {
		http.Error(w, fmt.Sprintf("drain before export: %v", err), http.StatusServiceUnavailable)
		return
	}
	self := a.cfg.Self.ID
	payload, err := a.engine.ExportSessions(func(key uint64) bool { return !ring.Owns(self, key) })
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	a.exports.Inc()
	writeJSON(w, http.StatusOK, HandoffBundle{Payload: payload})
}

// handleImport: adopt the descriptor and fold in the bundled sessions
// this node owns under it. stream.ImportSessions snapshots before
// returning, so a 200 here means the state is on local stable storage —
// the control plane may tell the source to drop its copies.
func (a *Agent) handleImport(w http.ResponseWriter, r *http.Request) {
	var req importRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ring, err := a.adopt(req.Desc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	self := a.cfg.Self.ID
	st, err := a.engine.ImportSessions(req.Bundle.Payload, req.Bundle.suffixRecords(),
		func(key uint64) bool { return ring.Owns(self, key) })
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	a.imports.Inc()
	if st.Sessions > 0 || st.Conflicts > 0 {
		a.cfg.Logger.Info("handoff import",
			"epoch", req.Desc.Epoch, "sessions", st.Sessions, "replayed", st.Replayed,
			"skipped", st.Skipped, "conflicts", st.Conflicts, "quarantined", st.Quarantined)
	}
	writeJSON(w, http.StatusOK, st)
}

// handleDrop: discard sessions this node no longer owns under the
// descriptor. The control plane only sends this after the importer's
// 200, so the moved state exists durably elsewhere.
func (a *Agent) handleDrop(w http.ResponseWriter, r *http.Request) {
	var req dropRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ring, err := a.adopt(req.Desc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	self := a.cfg.Self.ID
	n, err := a.engine.DropSessions(func(key uint64) bool { return !ring.Owns(self, key) })
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if n > 0 {
		a.drops.Inc()
		a.cfg.Logger.Info("dropped moved sessions", "epoch", req.Desc.Epoch, "sessions", n)
	}
	writeJSON(w, http.StatusOK, struct {
		Dropped int `json:"dropped"`
	}{n})
}

// Run registers with the control plane and heartbeats until ctx ends.
// Registration is retried with bounded backoff (the control plane may
// start after the node). A heartbeat 404 means the control plane forgot
// this node (it restarted, or declared the node dead during a partition)
// — the agent re-registers. A heartbeat reporting a newer epoch makes
// the agent fetch and adopt the current ring.
func (a *Agent) Run(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		if err := a.register(); err == nil {
			break
		} else {
			a.cfg.Logger.Warn("cluster register failed; retrying", "err", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(jitteredBackoff(attempt, 200*time.Millisecond, 5*time.Second)):
		}
	}
	tick := time.NewTicker(a.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		var hb heartbeatResponse
		err := postJSON(a.cfg.Client, a.cfg.ControlPlane+"/cluster/v1/heartbeat",
			heartbeatRequest{ID: a.cfg.Self.ID}, &hb)
		var se *statusError
		switch {
		case err == nil:
			if hb.Epoch > a.Epoch() {
				if err := a.refreshRing(); err != nil {
					a.cfg.Logger.Warn("ring refresh failed", "err", err)
				}
			}
		case errors.As(err, &se) && se.Status == http.StatusNotFound:
			a.cfg.Logger.Warn("control plane forgot this node; re-registering")
			if err := a.register(); err != nil {
				a.cfg.Logger.Warn("re-register failed", "err", err)
			}
		default:
			a.cfg.Logger.Warn("heartbeat failed", "err", err)
		}
	}
}

// Leave asks the control plane to rebalance this node's banks away
// (graceful departure). The node's HTTP listener must still be serving:
// the control plane calls back into /cluster/v1/export to collect the
// sessions before it responds.
func (a *Agent) Leave() error {
	return postJSON(a.cfg.Client, a.cfg.ControlPlane+"/cluster/v1/leave",
		heartbeatRequest{ID: a.cfg.Self.ID}, nil)
}

// register announces the node and adopts the descriptor the control
// plane responds with.
func (a *Agent) register() error {
	var desc Descriptor
	if err := postJSON(a.cfg.Client, a.cfg.ControlPlane+"/cluster/v1/register",
		registerRequest{Member: a.cfg.Self}, &desc); err != nil {
		return err
	}
	_, err := a.adopt(desc)
	return err
}

// refreshRing fetches and adopts the control plane's current descriptor.
func (a *Agent) refreshRing() error {
	var desc Descriptor
	if err := getJSON(a.cfg.Client, a.cfg.ControlPlane+"/cluster/v1/ring", &desc); err != nil {
		return err
	}
	_, err := a.adopt(desc)
	return err
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // peer may be gone; nothing to do
}
