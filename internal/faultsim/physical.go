package faultsim

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

// PhysicalConfig tunes the first-principles generation mode: instead of
// writing CE/UEO/UER classes into the log directly, physical faults are
// planted on codewords and the log emerges from a patrol scrubber and a
// demand-access process running against the real SEC-DED decoder
// (internal/ecc). It is slower than the calibrated fast path but validates
// it: the same spatial patterns must produce the same log structure when
// every event goes through actual ECC classification.
type PhysicalConfig struct {
	// ScrubInterval is the patrol scrubber's full-pass period (§II-B).
	ScrubInterval time.Duration
	// DemandRate is the mean demand-access rate per faulty word, per hour.
	DemandRate float64
}

// DefaultPhysicalConfig returns a 24h scrub period (typical for patrol
// scrubbing) with a few demand touches per day on hot words.
func DefaultPhysicalConfig() PhysicalConfig {
	return PhysicalConfig{
		ScrubInterval: 24 * time.Hour,
		DemandRate:    0.2,
	}
}

// Validate checks the configuration.
func (c PhysicalConfig) Validate() error {
	if c.ScrubInterval <= 0 {
		return fmt.Errorf("faultsim: scrub interval must be positive, got %v", c.ScrubInterval)
	}
	if c.DemandRate <= 0 {
		return fmt.Errorf("faultsim: demand rate must be positive, got %g", c.DemandRate)
	}
	return nil
}

// wordIndex packs (row, col) into the FaultMap's word key.
func (g *Generator) wordIndex(row, col int) uint64 {
	return uint64(row)*uint64(g.cfg.Geometry.ColsPerBank) + uint64(col)
}

func (g *Generator) wordRow(word uint64) int {
	return int(word / uint64(g.cfg.Geometry.ColsPerBank))
}

func (g *Generator) wordCol(word uint64) int {
	return int(word % uint64(g.cfg.Geometry.ColsPerBank))
}

// GeneratePhysical synthesises a bank fault through the ECC layer: the
// pattern's UER rows receive stuck multi-bit faults (beyond SEC-DED's
// correction capability, like SWD malfunctions), non-sudden rows get stuck
// single-bit precursors first, and background noise is planted as transient
// single-bit faults. A patrol scrubber and a Poisson demand-access process
// then read the faulty words; every logged event is the classified outcome
// of a real decode.
func (g *Generator) GeneratePhysical(bank hbm.BankAddress, p Pattern, pcfg PhysicalConfig) (*BankFault, error) {
	if err := pcfg.Validate(); err != nil {
		return nil, err
	}
	c := g.cfg
	rows := g.uerRows(p)
	if len(rows) == 0 {
		return nil, fmt.Errorf("faultsim: pattern %v produced no UER rows", p)
	}

	gap := c.AggregationUERGap
	if ClassOf(p) == ClassScattered {
		gap = c.ScatteredUERGap
	}
	onsetSpan := time.Duration(float64(c.Duration) * c.OnsetFraction)
	onset := c.Start.Add(time.Duration(g.rng.Float64() * float64(onsetSpan)))
	end := c.Start.Add(c.Duration)

	var fm ecc.FaultMap
	fixedCol := -1
	if p == PatternWholeColumn {
		fixedCol = g.rng.Intn(c.Geometry.ColsPerBank)
	}
	col := func() int {
		if fixedCol >= 0 {
			return fixedCol
		}
		return g.rng.Intn(c.Geometry.ColsPerBank)
	}

	// Plant the per-row fault processes.
	type rowPlan struct {
		row    int
		onset  time.Time
		sudden bool
	}
	plans := make([]rowPlan, 0, len(rows))
	t := onset
	for i, row := range rows {
		if i > 0 {
			t = t.Add(time.Duration(g.rng.Exp(1 / float64(gap))))
		}
		if t.After(end) {
			t = end
		}
		sudden := g.rng.Bool(c.SuddenRowProb)
		plans = append(plans, rowPlan{row: row, onset: t, sudden: sudden})

		// The uncorrectable defect: a stuck double-bit fault (SWD-style
		// malfunction beyond SEC-DED).
		bitA := g.rng.Intn(ecc.TotalBits)
		bitB := (bitA + 1 + g.rng.Intn(ecc.TotalBits-1)) % ecc.TotalBits
		if err := fm.AddFault(g.wordIndex(row, col()), ecc.Fault{
			Bits:  []int{bitA, bitB},
			Kind:  ecc.FaultStuck,
			Onset: t,
		}); err != nil {
			return nil, err
		}
		if !sudden {
			// Precursor: a stuck single-bit weak cell in the same row,
			// hours before the defect goes uncorrectable.
			lead := time.Duration(g.rng.Float64()*48+2) * time.Hour
			pOnset := t.Add(-lead)
			if pOnset.Before(c.Start) {
				pOnset = c.Start
			}
			if err := fm.AddFault(g.wordIndex(row, col()), ecc.Fault{
				Bits:  []int{g.rng.Intn(ecc.TotalBits)},
				Kind:  ecc.FaultStuck,
				Onset: pOnset,
			}); err != nil {
				return nil, err
			}
		}
	}

	// Background transient single-bit faults near the failing region.
	bgRange := c.AggregationBgCEs
	if ClassOf(p) == ClassScattered {
		bgRange = c.ScatteredBgCEs
	}
	nbg := g.rng.IntRange(bgRange[0], bgRange[1])
	for k := 0; k < nbg; k++ {
		row := g.bgRow(p, rows)
		ts := onset.Add(time.Duration(g.rng.Float64() * float64(end.Sub(onset))))
		if err := fm.AddFault(g.wordIndex(row, col()), ecc.Fault{
			Bits:  []int{g.rng.Intn(ecc.TotalBits)},
			Kind:  ecc.FaultTransient,
			Onset: ts,
		}); err != nil {
			return nil, err
		}
	}

	// Drive the fault map: interleave scrub passes and per-word Poisson
	// demand accesses in time order.
	type access struct {
		at     time.Time
		word   uint64
		demand bool
	}
	var schedule []access
	for ts := c.Start; !ts.After(end); ts = ts.Add(pcfg.ScrubInterval) {
		for _, w := range fm.FaultyWords() {
			schedule = append(schedule, access{at: ts, word: w})
		}
	}
	for _, w := range fm.FaultyWords() {
		ts := c.Start
		for {
			ts = ts.Add(time.Duration(g.rng.Exp(pcfg.DemandRate / float64(time.Hour))))
			if ts.After(end) {
				break
			}
			schedule = append(schedule, access{at: ts, word: w, demand: true})
		}
	}
	sort.Slice(schedule, func(i, j int) bool {
		if !schedule[i].at.Equal(schedule[j].at) {
			return schedule[i].at.Before(schedule[j].at)
		}
		return schedule[i].word < schedule[j].word
	})

	bf := &BankFault{Bank: bank, Pattern: p, Cause: SampleCause(p, g.rng)}
	events := make([]mcelog.Event, 0, len(schedule)/4)
	firstUER := make(map[int]time.Time)
	for _, a := range schedule {
		kind := ecc.AccessPatrolScrub
		if a.demand {
			kind = ecc.AccessDemand
		}
		class := fm.Read(a.word, a.at, kind)
		if class == ecc.ClassNone {
			continue
		}
		row := g.wordRow(a.word)
		events = append(events, mcelog.Event{
			Time:  a.at,
			Addr:  hbm.CellInBank(bank, row, g.wordCol(a.word)),
			Class: class,
		})
		if class == ecc.ClassUER {
			if _, seen := firstUER[row]; !seen {
				firstUER[row] = a.at
			}
		}
	}

	// Ground truth: rows whose defect was actually hit by a demand access,
	// in first-UER order. (A defect no demand read ever touched produces
	// no UER — exactly as in the field.)
	type hit struct {
		row int
		at  time.Time
	}
	var hits []hit
	for row, at := range firstUER {
		hits = append(hits, hit{row: row, at: at})
	}
	sort.Slice(hits, func(i, j int) bool {
		if !hits[i].at.Equal(hits[j].at) {
			return hits[i].at.Before(hits[j].at)
		}
		return hits[i].row < hits[j].row
	})
	suddenByRow := make(map[int]bool, len(plans))
	for _, pl := range plans {
		suddenByRow[pl.row] = pl.sudden
	}
	for _, h := range hits {
		bf.UERRows = append(bf.UERRows, h.row)
		bf.UERTimes = append(bf.UERTimes, h.at)
		bf.SuddenRow = append(bf.SuddenRow, suddenByRow[h.row])
	}
	if len(bf.UERRows) == 0 {
		return nil, fmt.Errorf("faultsim: no demand access ever hit a defect; raise DemandRate or Duration")
	}

	log := mcelog.FromEvents(events)
	log.Sort()
	log.Dedupe()
	bf.Events = log.Events()
	return bf, nil
}
