package stream

import (
	"fmt"
	"sync/atomic"
	"time"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/metrics"
)

// Shadow evaluation scores a candidate model against live traffic without
// letting it touch the action stream. While a shadow is active, every
// NEWLY created primary session gets a twin session on the candidate;
// both twins see the bank's full event history from its first event, so
// their verdicts are comparable like-for-like. Banks whose primary session
// predates the shadow are left out — feeding a candidate the tail of a
// history it never saw the head of would measure recovery behaviour, not
// model quality.
//
// The candidate's decisions are folded into per-run counters only:
// per-event verdict agreement, per-side action counts, and a per-side ICR
// proxy (UER events landing on rows that side had already isolated). The
// lifecycle manager promotes the candidate only if its proxy ICR holds up
// against the primary's over the shadow window.
//
// Shadow state is deliberately NOT snapshotted and does not survive a
// restart: an interrupted evaluation restarts from scratch, which is
// always safe (just slower) and keeps the crash≡no-crash byte-equivalence
// of the primary state untouched.

// shadowEval is one candidate evaluation. The counters are atomics because
// every shard consumer updates them concurrently; gen distinguishes this
// run's per-session twins from a previous run's stale ones.
type shadowEval struct {
	gen       uint64
	version   uint64
	strategy  core.Strategy
	startedAt time.Time

	banks       atomic.Int64
	events      atomic.Uint64
	uerEvents   atomic.Uint64
	decisions   atomic.Uint64 // events where either side decided something
	agreements  atomic.Uint64 // events where both sides decided identically
	primActions atomic.Uint64
	shadActions atomic.Uint64
	primCovered atomic.Uint64 // UERs on rows the primary had isolated
	shadCovered atomic.Uint64
	panics      atomic.Uint64 // candidate panics (that bank's twin dropped)
}

// ShadowStats is a point-in-time picture of the current (or just-stopped)
// shadow evaluation.
type ShadowStats struct {
	// Active reports an evaluation in progress.
	Active bool `json:"active"`
	// Version is the candidate model version under evaluation.
	Version uint64 `json:"version,omitempty"`
	// Since is when the evaluation started.
	Since time.Time `json:"since,omitzero"`
	// Banks is how many banks acquired shadow twins.
	Banks int `json:"banks"`
	// Events and UEREvents count traffic folded into twins.
	Events    uint64 `json:"events"`
	UEREvents uint64 `json:"uerEvents"`
	// Decisions counts events where at least one side acted; Agreements
	// counts those where both sides acted identically (same spare-bank
	// verdict, same fresh rows).
	Decisions  uint64 `json:"decisions"`
	Agreements uint64 `json:"agreements"`
	// PrimaryActions / ShadowActions count per-side action emissions
	// (shadow ones are virtual — never delivered anywhere).
	PrimaryActions uint64 `json:"primaryActions"`
	ShadowActions  uint64 `json:"shadowActions"`
	// PrimaryICR / ShadowICR are the per-side isolation-coverage proxies:
	// of the UER events seen by shadowed banks, how many landed on a row
	// (or bank) that side had already isolated.
	PrimaryICR metrics.ICR `json:"primaryICR"`
	ShadowICR  metrics.ICR `json:"shadowICR"`
	// CandidatePanics counts twins dropped after the candidate panicked.
	CandidatePanics uint64 `json:"candidatePanics"`
}

func (se *shadowEval) stats(active bool) ShadowStats {
	uer := se.uerEvents.Load()
	return ShadowStats{
		Active:          active,
		Version:         se.version,
		Since:           se.startedAt,
		Banks:           int(se.banks.Load()),
		Events:          se.events.Load(),
		UEREvents:       uer,
		Decisions:       se.decisions.Load(),
		Agreements:      se.agreements.Load(),
		PrimaryActions:  se.primActions.Load(),
		ShadowActions:   se.shadActions.Load(),
		PrimaryICR:      metrics.ICR{Covered: int(se.primCovered.Load()), Total: int(uer)},
		ShadowICR:       metrics.ICR{Covered: int(se.shadCovered.Load()), Total: int(uer)},
		CandidatePanics: se.panics.Load(),
	}
}

// StartShadow begins evaluating a model version as the shadow candidate,
// replacing any evaluation already running. Only one shadow runs at a
// time.
func (e *Engine) StartShadow(version uint64) error {
	strat, err := e.cfg.Models.ModelByVersion(version)
	if err != nil {
		return err
	}
	if strat == nil {
		return fmt.Errorf("stream: model source returned no strategy for shadow version %d", version)
	}
	se := &shadowEval{
		gen:       e.shadowGen.Add(1),
		version:   version,
		strategy:  strat,
		startedAt: time.Now(),
	}
	e.shadow.Store(se)
	e.metrics.shadowStarts.Inc()
	e.cfg.Logger.Info("shadow evaluation started", "version", version)
	return nil
}

// StopShadow ends the current evaluation and returns its final stats
// (Active=false in both the return and subsequent ShadowStats calls).
// Stale twins left on sessions are swept so their memory is released.
func (e *Engine) StopShadow() ShadowStats {
	se := e.loadShadow()
	e.shadow.Store((*shadowEval)(nil))
	if se == nil {
		return ShadowStats{}
	}
	for _, s := range e.shards {
		s.mu.Lock()
		for _, bs := range s.sessions {
			if bs.shadow != nil && bs.shadow.gen == se.gen {
				bs.shadow = nil
			}
		}
		s.mu.Unlock()
	}
	e.cfg.Logger.Info("shadow evaluation stopped", "version", se.version,
		"events", se.events.Load(), "agreements", se.agreements.Load())
	return se.stats(false)
}

// ShadowStats reports the in-progress evaluation (zero-value, Active
// false, when none).
func (e *Engine) ShadowStats() ShadowStats {
	se := e.loadShadow()
	if se == nil {
		return ShadowStats{}
	}
	return se.stats(true)
}

func (e *Engine) loadShadow() *shadowEval {
	v, _ := e.shadow.Load().(*shadowEval)
	return v
}

// shadowSession is the candidate-side twin of one bank session. It mirrors
// the engine's action-dedupe bookkeeping so the candidate's virtual action
// stream is derived by exactly the rules the primary's real one is.
type shadowSession struct {
	gen        uint64
	sess       core.Session
	spared     map[int]struct{}
	bankSpared bool
	dead       bool // candidate panicked on this bank; twin retired
}

// newShadowSession creates the twin for a freshly created primary session.
func (se *shadowEval) newShadowSession(bank hbm.BankAddress) *shadowSession {
	se.banks.Add(1)
	return &shadowSession{
		gen:    se.gen,
		sess:   se.strategy.NewSession(bank),
		spared: make(map[int]struct{}),
	}
}

// foldShadow feeds one event to a bank's twin and scores both sides
// against each other. The primary's behaviour on the SAME event arrives
// pre-digested: primCoveredUER (a UER that landed on a row/bank the
// primary had ALREADY isolated — coverage is judged before the fold,
// mirroring how a real spare must precede the failure it absorbs),
// primSpareBank (the primary emitted a bank-spare on this event) and
// primFresh (how many newly isolated rows its dedupe admitted). Runs
// under the shard lock on the consumer goroutine. A candidate panic
// retires the twin and never propagates — apart from timing, the primary
// path must be indistinguishable from an un-shadowed run.
func (se *shadowEval) foldShadow(ss *shadowSession, ev mcelog.Event,
	primCoveredUER, primSpareBank bool, primFresh int) {
	if ss.dead {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			ss.dead = true
			se.panics.Add(1)
		}
	}()
	se.events.Add(1)
	if ev.Class == ecc.ClassUER {
		se.uerEvents.Add(1)
		if primCoveredUER {
			se.primCovered.Add(1)
		}
		if ss.bankSpared {
			se.shadCovered.Add(1)
		} else if _, done := ss.spared[ev.Addr.Row]; done {
			se.shadCovered.Add(1)
		}
	}

	d := ss.sess.OnEvent(ev)

	shadSpareBank := false
	shadFresh := 0
	if d.SpareBank && !ss.bankSpared {
		ss.bankSpared = true
		shadSpareBank = true
		se.shadActions.Add(1)
	}
	for _, r := range d.IsolateRows {
		if _, done := ss.spared[r]; !done {
			ss.spared[r] = struct{}{}
			shadFresh++
		}
	}
	if shadFresh > 0 {
		se.shadActions.Add(1)
	}
	primDecided := primSpareBank || primFresh > 0
	shadDecided := shadSpareBank || shadFresh > 0
	if primDecided {
		se.primActions.Add(1)
	}
	if primDecided || shadDecided {
		se.decisions.Add(1)
		if primSpareBank == shadSpareBank && primFresh == shadFresh {
			se.agreements.Add(1)
		}
	}
}
