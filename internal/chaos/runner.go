package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

// RunOptions configures a scenario run.
type RunOptions struct {
	// BinDir holds prebuilt cordial-serve/control/router binaries. Empty
	// means build them from the module source into the work dir (requires
	// running inside the repo).
	BinDir string
	// WorkDir is the scratch directory for WALs and built binaries; empty
	// means a fresh temp dir, removed afterwards on a passing run.
	WorkDir string
	// Seed overrides the scenario seed when nonzero.
	Seed uint64
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// fleetDaemons groups the running processes of one scenario.
type fleetDaemons struct {
	control *Daemon
	router  *Daemon
	nodes   []*Daemon // index i is node-(i+1); entries stay after kills
}

// frontDoor returns the daemon load and probes go through.
func (f *fleetDaemons) frontDoor() *Daemon {
	if f.router != nil {
		return f.router
	}
	return f.nodes[0]
}

// serveBinaries are the daemons a scenario needs.
var serveBinaries = []string{"cordial-serve", "cordial-control", "cordial-router"}

// run state shared between the load loop, the chaos timers and the
// probes.
type runState struct {
	sc    *Scenario
	plan  *Plan
	fleet *fleetDaemons
	opts  RunOptions

	client *http.Client
	logf   func(format string, args ...any)

	loadStart time.Time

	mu          sync.Mutex
	chaosRecs   []ChaosRecord
	kills       int
	skewOffset  time.Duration
	skewUntil   time.Time
	poisonSent  int
	poisonAccpt int

	probeStop chan struct{}
	probeWG   sync.WaitGroup
	probes    ProbeReport

	chaosWG sync.WaitGroup
}

// Run executes the scenario end to end and returns its report. A non-nil
// report may accompany an error when the run got far enough to be worth
// recording.
func Run(sc *Scenario, opts RunOptions) (*Report, error) {
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(opts.Log, format+"\n", args...)
	}
	if opts.Seed != 0 && opts.Seed != sc.Seed {
		sc.Seed = opts.Seed
		logf("seed overridden: %d", sc.Seed)
	}

	work := opts.WorkDir
	if work == "" {
		var err error
		work, err = os.MkdirTemp("", "cordial-chaos-*")
		if err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(work, 0o755); err != nil {
		return nil, err
	}

	bin, err := ensureBinaries(opts.BinDir, work, logf)
	if err != nil {
		return nil, err
	}

	// The harness process must pack addresses under the same topology the
	// daemons run: activate the scenario's profile for plan generation,
	// load delivery and verdict comparison alike.
	geo := hbm.ActiveProfile().Geometry
	if sc.Fleet.Topology != "" {
		prof, err := hbm.SetActiveProfile(sc.Fleet.Topology)
		if err != nil {
			return nil, err
		}
		geo = prof.Geometry
		logf("topology profile: %s", prof.Name)
	}

	logf("building plan: %d banks, seed %d", sc.FleetGen.TotalBanks, sc.Seed)
	plan, err := BuildPlan(sc, geo)
	if err != nil {
		return nil, err
	}
	logf("plan digest %s: %d events from %d banks", plan.Digest, len(plan.Fleet.Events), plan.Fleet.Banks)

	rep := &Report{
		Scenario:    sc.Name,
		Description: sc.Description,
		Seed:        sc.Seed,
		PlanDigest:  plan.Digest,
		StartedAt:   time.Now(),
		Fleet: FleetReport{
			Nodes:       sc.Fleet.Nodes,
			Banks:       plan.Fleet.Banks,
			FaultyBanks: plan.Fleet.Faulty,
			Events:      len(plan.Fleet.Events),
			PerTemplate: plan.Fleet.PerTemplate,
			Startup:     sc.Fleet.Startup.Pattern,
			Topology:    sc.Fleet.Topology,
		},
		Load: LoadReport{Codec: sc.Load.Codec},
	}

	st := &runState{
		sc: sc, plan: plan, opts: opts, logf: logf,
		client:    &http.Client{Timeout: 3 * time.Minute},
		probeStop: make(chan struct{}),
	}

	// Reference run: one clean node ingests the whole stream alone; its
	// deduplicated action set is the ground truth the chaos fleet must
	// reproduce exactly.
	var wantActions map[string]bool
	if sc.SLO.ZeroVerdictLoss {
		logf("reference run: single clean node over %d events", len(plan.Fleet.Events))
		wantActions, err = st.referenceRun(bin, work)
		if err != nil {
			return rep, fmt.Errorf("chaos: reference run: %w", err)
		}
		logf("reference emitted %d distinct actions", len(wantActions))
		rep.Verdict.Reference = len(wantActions)
	}

	fleet, err := startFleet(sc, bin, work, logf)
	if err != nil {
		teardown(fleet)
		return rep, err
	}
	st.fleet = fleet
	defer teardown(fleet)

	st.startProbes()
	runErr := st.driveLoad(rep)
	st.chaosWG.Wait()
	if runErr == nil {
		runErr = st.drain()
	}
	st.stopProbes(rep)

	st.collectStats(rep)
	if sc.SLO.ZeroVerdictLoss && runErr == nil {
		st.compareVerdicts(rep, wantActions)
	}

	st.mu.Lock()
	rep.Chaos = append([]ChaosRecord(nil), st.chaosRecs...)
	rep.Load.PoisonSent = st.poisonSent
	rep.Load.PoisonAccepted = st.poisonAccpt
	st.mu.Unlock()

	rep.FinishedAt = time.Now()
	rep.evaluateSLOs(sc.SLO)
	if runErr != nil {
		rep.Pass = false
	}
	if !rep.Pass {
		rep.FailureDetail = map[string]string{}
		for _, d := range allDaemons(fleet) {
			if tail := d.Output(); tail != "" {
				if len(tail) > 4096 {
					tail = tail[len(tail)-4096:]
				}
				rep.FailureDetail[d.Name] = tail
			}
		}
	}

	if sc.Report.JSON != "" {
		if err := rep.WriteJSON(sc.Report.JSON); err != nil && runErr == nil {
			runErr = err
		}
	}
	if sc.Report.HTML != "" {
		if err := rep.WriteHTML(sc.Report.HTML); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		return rep, runErr
	}
	if opts.WorkDir == "" && rep.Pass {
		os.RemoveAll(work)
	}
	return rep, nil
}

// ensureBinaries returns a directory holding the three daemons, building
// them from source when no prebuilt directory was given.
func ensureBinaries(binDir, work string, logf func(string, ...any)) (string, error) {
	if binDir != "" {
		for _, name := range serveBinaries {
			if _, err := os.Stat(filepath.Join(binDir, name)); err != nil {
				return "", fmt.Errorf("chaos: missing binary %s in %s", name, binDir)
			}
		}
		return binDir, nil
	}
	root, err := moduleRoot()
	if err != nil {
		return "", fmt.Errorf("chaos: %w (pass --bin with prebuilt binaries to run outside the repo)", err)
	}
	out := filepath.Join(work, "bin")
	if err := os.MkdirAll(out, 0o755); err != nil {
		return "", err
	}
	logf("building daemons into %s", out)
	for _, name := range serveBinaries {
		cmd := exec.Command("go", "build", "-o", filepath.Join(out, name), "cordial/cmd/"+name)
		cmd.Dir = root
		if msg, err := cmd.CombinedOutput(); err != nil {
			return "", fmt.Errorf("chaos: building %s: %v\n%s", name, err, msg)
		}
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the cordial go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && strings.Contains(string(data), "module cordial") {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("not inside the cordial module")
		}
		dir = parent
	}
}

// serveArgs builds the cordial-serve command line for one node.
func serveArgs(sc *Scenario, walDir string, extra ...string) []string {
	args := []string{
		"-selftrain",
		"-seed", strconv.FormatUint(sc.Fleet.TrainSeed, 10),
		"-train-banks", strconv.Itoa(sc.Fleet.TrainBanks),
		"-trees", strconv.Itoa(sc.Fleet.Trees),
		"-addr", "127.0.0.1:0",
		"-wal-dir", walDir,
		"-fsync", sc.Fleet.Fsync,
	}
	if sc.Fleet.FaultFS != "" {
		args = append(args, "-faultfs", sc.Fleet.FaultFS)
	}
	if sc.Fleet.Retrain {
		args = append(args, "-retrain")
	}
	if sc.Fleet.Topology != "" {
		args = append(args, "-topology", sc.Fleet.Topology)
	}
	return append(args, extra...)
}

// startFleet launches the scenario topology: a lone node, or control
// plane + N nodes + router.
func startFleet(sc *Scenario, bin, work string, logf func(string, ...any)) (*fleetDaemons, error) {
	fleet := &fleetDaemons{}
	if sc.Fleet.Nodes == 1 {
		d := &Daemon{
			Name: "node-1",
			Path: filepath.Join(bin, "cordial-serve"),
			Args: serveArgs(sc, filepath.Join(work, "wal-node-1")),
		}
		logf("starting standalone node-1")
		if err := d.Start(); err != nil {
			return fleet, err
		}
		fleet.nodes = []*Daemon{d}
		return fleet, nil
	}

	fleet.control = &Daemon{
		Name: "control",
		Path: filepath.Join(bin, "cordial-control"),
		Args: []string{"-addr", "127.0.0.1:0",
			"-heartbeat-ttl", sc.Fleet.HeartbeatTTL.String(),
			"-sweep-interval", sc.Fleet.SweepInterval.String()},
	}
	logf("starting control plane")
	if err := fleet.control.Start(); err != nil {
		return fleet, err
	}
	cpURL := "http://" + fleet.control.Addr()

	for i := 1; i <= sc.Fleet.Nodes; i++ {
		id := "n" + strconv.Itoa(i)
		fleet.nodes = append(fleet.nodes, &Daemon{
			Name: "node-" + strconv.Itoa(i),
			Path: filepath.Join(bin, "cordial-serve"),
			Args: serveArgs(sc, filepath.Join(work, "wal-"+id),
				"-control-plane", cpURL, "-node-id", id,
				"-heartbeat", sc.Fleet.Heartbeat.String()),
		})
	}
	if err := startNodes(fleet.nodes, sc.Fleet.Startup, logf); err != nil {
		return fleet, err
	}

	// All nodes registered before the router comes up.
	if err := pollUntil("all nodes registered", 60*time.Second, func() bool {
		var cp struct {
			Members []struct{ ID string } `json:"members"`
		}
		return getJSON(nil, "http://"+fleet.control.Addr()+"/statsz", &cp) == http.StatusOK &&
			len(cp.Members) == sc.Fleet.Nodes
	}); err != nil {
		return fleet, err
	}

	fleet.router = &Daemon{
		Name: "router",
		Path: filepath.Join(bin, "cordial-router"),
		Args: []string{"-addr", "127.0.0.1:0", "-control-plane", cpURL,
			"-refresh-interval", sc.Fleet.RouterRefresh.String(),
			"-max-attempts", strconv.Itoa(sc.Fleet.RouterMaxAttempt)},
	}
	logf("starting router")
	if err := fleet.router.Start(); err != nil {
		return fleet, err
	}
	if err := pollUntil("router ready", 60*time.Second, func() bool {
		return getJSON(nil, fleet.router.URL("/readyz"), nil) == http.StatusOK
	}); err != nil {
		return fleet, err
	}
	return fleet, nil
}

// startNodes applies the startup pattern: instant (all at once),
// staggered (one by one, Spacing apart) or wave (WaveSize at a time).
func startNodes(nodes []*Daemon, spec StartupSpec, logf func(string, ...any)) error {
	startBatch := func(batch []*Daemon) error {
		errs := make([]error, len(batch))
		var wg sync.WaitGroup
		for i, d := range batch {
			wg.Add(1)
			go func(i int, d *Daemon) {
				defer wg.Done()
				errs[i] = d.Start()
			}(i, d)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	switch spec.Pattern {
	case "instant":
		logf("starting %d nodes (instant)", len(nodes))
		return startBatch(nodes)
	case "staggered":
		logf("starting %d nodes (staggered, %v apart)", len(nodes), spec.Spacing)
		for _, d := range nodes {
			if err := d.Start(); err != nil {
				return err
			}
			time.Sleep(spec.Spacing)
		}
		return nil
	case "wave":
		logf("starting %d nodes (waves of %d, %v apart)", len(nodes), spec.WaveSize, spec.Spacing)
		for i := 0; i < len(nodes); i += spec.WaveSize {
			end := i + spec.WaveSize
			if end > len(nodes) {
				end = len(nodes)
			}
			if err := startBatch(nodes[i:end]); err != nil {
				return err
			}
			if end < len(nodes) {
				time.Sleep(spec.Spacing)
			}
		}
		return nil
	}
	return fmt.Errorf("chaos: unknown startup pattern %q", spec.Pattern)
}

func allDaemons(f *fleetDaemons) []*Daemon {
	if f == nil {
		return nil
	}
	var out []*Daemon
	if f.control != nil {
		out = append(out, f.control)
	}
	if f.router != nil {
		out = append(out, f.router)
	}
	return append(out, f.nodes...)
}

func teardown(f *fleetDaemons) {
	for _, d := range allDaemons(f) {
		if d.Alive() {
			// SIGCONT first: a daemon paused by partition_router cannot
			// handle SIGTERM while stopped.
			d.Signal(syscall.SIGCONT)
			d.Terminate(30 * time.Second)
		}
	}
}

// referenceRun ingests the whole plan into one clean standalone node and
// returns its deduplicated action set.
func (st *runState) referenceRun(bin, work string) (map[string]bool, error) {
	ref := &Daemon{
		Name: "reference",
		Path: filepath.Join(bin, "cordial-serve"),
		Args: serveArgs(st.sc, filepath.Join(work, "wal-reference")),
	}
	if err := ref.Start(); err != nil {
		return nil, err
	}
	defer ref.Terminate(30 * time.Second)

	events := st.plan.Fleet.Events
	batch := st.sc.Load.Batch
	for i := 0; i < len(events); i += batch {
		end := i + batch
		if end > len(events) {
			end = len(events)
		}
		if _, err := st.postEvents(ref, events[i:end], nil); err != nil {
			return nil, err
		}
	}
	if err := waitDrained(ref); err != nil {
		return nil, err
	}
	return actionSet(ref)
}

// ingestResult is the /v1/events response shape shared by serve and
// router (the router additionally reports the consumed prefix on 503).
type ingestResult struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Dropped  int `json:"dropped"`
}

func (r ingestResult) consumed() int { return r.Accepted + r.Rejected + r.Dropped }

// postEvents delivers one batch to d using the scenario codec, honouring
// the router's consumed-prefix retry contract on 503: the response body
// reports how many leading events were consumed, and the client resends
// the rest. Returns the cumulative result; counts retries into ld.
func (st *runState) postEvents(d *Daemon, events []mcelog.Event, ld *LoadReport) (ingestResult, error) {
	var total ingestResult
	remaining := events
	for attempt := 0; ; attempt++ {
		body, contentType, err := st.encodeBatch(remaining)
		if err != nil {
			return total, err
		}
		path := "/v1/events"
		if st.sc.Load.Codec == "wire" {
			path = "/v1/events.bin"
		}
		resp, err := st.client.Post(d.URL(path), contentType, bytes.NewReader(body))
		if err != nil {
			return total, fmt.Errorf("chaos: POST %s: %w", path, err)
		}
		var res ingestResult
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res)
		resp.Body.Close()

		switch resp.StatusCode {
		case http.StatusOK:
			total.Accepted += res.Accepted
			total.Rejected += res.Rejected
			total.Dropped += res.Dropped
			return total, nil
		case http.StatusServiceUnavailable:
			if decErr != nil {
				return total, fmt.Errorf("chaos: 503 with unreadable body: %v", decErr)
			}
			total.Accepted += res.Accepted
			total.Rejected += res.Rejected
			total.Dropped += res.Dropped
			if res.consumed() >= len(remaining) {
				return total, nil
			}
			remaining = remaining[res.consumed():]
			if ld != nil {
				st.mu.Lock()
				ld.Retries++
				st.mu.Unlock()
			}
			if attempt > 100 {
				return total, fmt.Errorf("chaos: batch still refused after %d retries", attempt)
			}
			time.Sleep(200 * time.Millisecond)
		default:
			return total, fmt.Errorf("chaos: POST %s = %d", path, resp.StatusCode)
		}
	}
}

// encodeBatch renders events in the scenario codec, applying any active
// clock skew to the encoded timestamps (the events themselves are never
// mutated — the skew models a producer with a wrong clock).
func (st *runState) encodeBatch(events []mcelog.Event) ([]byte, string, error) {
	st.mu.Lock()
	skew := st.skewOffset
	if skew != 0 && time.Now().After(st.skewUntil) {
		skew, st.skewOffset = 0, 0
	}
	st.mu.Unlock()

	if skew != 0 {
		shifted := make([]mcelog.Event, len(events))
		copy(shifted, events)
		for i := range shifted {
			shifted[i].Time = shifted[i].Time.Add(skew)
		}
		events = shifted
	}

	var buf bytes.Buffer
	if st.sc.Load.Codec == "wire" {
		enc := mcelog.NewFrameEncoder(&buf, 0)
		for _, ev := range events {
			if err := enc.Add(ev); err != nil {
				return nil, "", err
			}
		}
		if err := enc.Flush(); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "application/octet-stream", nil
	}
	for _, ev := range events {
		line, err := mcelog.MarshalJSONEvent(ev)
		if err != nil {
			return nil, "", err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), "application/x-ndjson", nil
}

// driveLoad runs the phased load loop and arms the chaos timers against
// the same clock.
func (st *runState) driveLoad(rep *Report) error {
	st.loadStart = time.Now()
	st.armChaos()

	events := st.plan.Fleet.Events
	sc := st.sc
	front := st.fleet.frontDoor()

	// Build the rate timetable: each phase holds its rate for its
	// duration; after the last phase the base rate drains the remainder.
	type window struct {
		until time.Duration
		rate  int
	}
	var windows []window
	var acc time.Duration
	for _, ph := range sc.Load.Phases {
		rate := ph.Rate
		if rate == 0 {
			rate = sc.Load.EventsPerSec
		}
		acc += ph.Duration
		windows = append(windows, window{until: acc, rate: rate})
	}
	rateAt := func(elapsed time.Duration) int {
		for _, w := range windows {
			if elapsed < w.until {
				return w.rate
			}
		}
		return sc.Load.EventsPerSec
	}

	st.logf("driving %d events through %s (%s codec)", len(events), front.Name, sc.Load.Codec)
	sent := 0
	var sentBudget float64
	last := time.Now()
	for sent < len(events) {
		now := time.Now()
		sentBudget += now.Sub(last).Seconds() * float64(rateAt(now.Sub(st.loadStart)))
		last = now
		if sentBudget < float64(sc.Load.Batch) && sent+sc.Load.Batch <= len(events) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		end := sent + sc.Load.Batch
		if end > len(events) {
			end = len(events)
		}
		res, err := st.postEvents(front, events[sent:end], &rep.Load)
		if err != nil {
			return err
		}
		st.mu.Lock()
		rep.Load.Sent += end - sent
		rep.Load.Accepted += res.Accepted
		rep.Load.Rejected += res.Rejected
		rep.Load.Dropped += res.Dropped
		st.mu.Unlock()
		sentBudget -= float64(end - sent)
		sent = end
	}

	// Keep the run window open until the phases and scheduled chaos have
	// both played out, so late injections still happen under probes.
	var lastChaos time.Duration
	for _, a := range st.plan.Chaos {
		if a.At+a.Duration > lastChaos {
			lastChaos = a.At + a.Duration
		}
	}
	tail := acc
	if lastChaos > tail {
		tail = lastChaos
	}
	if wait := time.Until(st.loadStart.Add(tail)); wait > 0 {
		st.logf("load done, holding %v for remaining phases/chaos", wait.Round(time.Millisecond))
		time.Sleep(wait)
	}
	return nil
}
