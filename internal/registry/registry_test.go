package registry

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/hbm"
	"cordial/internal/trace"
	"cordial/internal/wal"
)

var (
	fitOnce sync.Once
	fitPipe *core.Pipeline
	fitErr  error
)

// testPipeline fits one small pipeline per test binary (fitting dominates
// test time otherwise).
func testPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	fitOnce.Do(func() {
		spec := trace.DefaultSpec(hbm.DefaultGeometry)
		spec.UERBanks = 60
		spec.BenignBanks = 0
		spec.Seed = 7
		fleet, err := trace.Generate(spec)
		if err != nil {
			fitErr = err
			return
		}
		cfg := core.DefaultConfig(core.RandomForest)
		cfg.Params = core.ModelParams{Trees: 10, Depth: 6, Leaves: 15, LearningRate: 0.15}
		pipe, err := core.New(cfg)
		if err != nil {
			fitErr = err
			return
		}
		if err := pipe.Fit(fleet.Faults); err != nil {
			fitErr = err
			return
		}
		fitPipe = pipe
	})
	if fitErr != nil {
		t.Fatal(fitErr)
	}
	return fitPipe
}

func openTestRegistry(t *testing.T, dir string) *Registry {
	t.Helper()
	r, err := Open(Options{
		Dir:      dir,
		Geometry: hbm.DefaultGeometry,
		Now:      func() time.Time { return time.Unix(1700000000, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryInstallActivateReopen(t *testing.T) {
	dir := t.TempDir()
	pipe := testPipeline(t)

	r := openTestRegistry(t, dir)
	if s, v := r.ActiveModel(); s != nil || v != 0 {
		t.Fatalf("empty registry reported active (%v, %d)", s, v)
	}
	m1, err := r.Install(pipe, "boot")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != 1 || m1.Trigger != "boot" {
		t.Fatalf("first install meta = %+v", m1)
	}
	if m1.Model == nil || m1.Model.BankCount != 60 {
		t.Fatalf("install did not carry pipeline meta: %+v", m1.Model)
	}
	m2, err := r.Install(pipe, "train")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 {
		t.Fatalf("second version = %d", m2.Version)
	}
	if err := r.Activate(1); err != nil {
		t.Fatal(err)
	}
	if s, v := r.ActiveModel(); v != 1 || s == nil {
		t.Fatalf("active = (%v, %d), want version 1", s, v)
	}

	// Reopen: active pointer survives, both versions resolvable, and the
	// reloaded model byte-identical to the installed one.
	r2 := openTestRegistry(t, dir)
	if v := r2.ActiveVersion(); v != 1 {
		t.Fatalf("reopened active = %d, want 1", v)
	}
	if r2.Len() != 2 {
		t.Fatalf("reopened len = %d, want 2", r2.Len())
	}
	got, err := r2.Pipeline(2)
	if err != nil {
		t.Fatal(err)
	}
	var want, have bytes.Buffer
	if err := pipe.SaveModels(&want); err != nil {
		t.Fatal(err)
	}
	if err := got.SaveModels(&have); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatal("reloaded pipeline not byte-identical to installed one")
	}
	if got.Meta() == nil || got.Meta().BankCount != 60 {
		t.Fatalf("reloaded pipeline lost meta: %+v", got.Meta())
	}
	if _, err := r2.ModelByVersion(99); err == nil {
		t.Fatal("unknown version resolved")
	}
}

func TestRegistryInMemoryMode(t *testing.T) {
	pipe := testPipeline(t)
	r, err := Open(Options{Geometry: hbm.DefaultGeometry})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Install(pipe, "boot")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(m.Version); err != nil {
		t.Fatal(err)
	}
	if s, v := r.ActiveModel(); s == nil || v != m.Version {
		t.Fatalf("in-memory active = (%v, %d)", s, v)
	}
	if _, err := r.ModelByVersion(m.Version); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryUnfittedRefused(t *testing.T) {
	r, err := Open(Options{Geometry: hbm.DefaultGeometry})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.New(core.DefaultConfig(core.RandomForest))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Install(pipe, "boot"); err == nil {
		t.Fatal("unfitted pipeline installed")
	}
	if err := r.Activate(5); err == nil {
		t.Fatal("unknown version activated")
	}
}

func TestRegistryCorruptArtefactSkipped(t *testing.T) {
	dir := t.TempDir()
	pipe := testPipeline(t)
	r := openTestRegistry(t, dir)
	if _, err := r.Install(pipe, "boot"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Install(pipe, "train"); err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(2); err != nil {
		t.Fatal(err)
	}

	// Corrupt version 2's tail: reopen must skip it and fall back to the
	// highest valid version (1), since the pointer names a corrupt file.
	path := filepath.Join(dir, artName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := openTestRegistry(t, dir)
	if v := r2.ActiveVersion(); v != 1 {
		t.Fatalf("active after corruption = %d, want fallback to 1", v)
	}
	if r2.Len() != 1 {
		t.Fatalf("len after corruption = %d, want 1", r2.Len())
	}
	// A registry with ONLY corrupt artefacts refuses to open.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, artName(1)), data[:50], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir2, Geometry: hbm.DefaultGeometry}); err == nil {
		t.Fatal("registry with only corrupt artefacts opened")
	}
}

func TestRegistryActivePointerFallback(t *testing.T) {
	dir := t.TempDir()
	pipe := testPipeline(t)
	r := openTestRegistry(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := r.Install(pipe, "train"); err != nil {
			t.Fatal(err)
		}
	}
	// No Activate ever called: a fresh open falls back to the highest
	// version rather than serving nothing.
	r2 := openTestRegistry(t, dir)
	if v := r2.ActiveVersion(); v != 3 {
		t.Fatalf("fallback active = %d, want 3", v)
	}
}

func TestRegistryPrune(t *testing.T) {
	dir := t.TempDir()
	pipe := testPipeline(t)
	r, err := Open(Options{Dir: dir, Geometry: hbm.DefaultGeometry, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Install(pipe, "train"); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Activate(1); err != nil { // oldest is active
		t.Fatal(err)
	}
	removed, err := r.Prune(0)
	if err != nil {
		t.Fatal(err)
	}
	// Versions 2 and 3 go; 1 survives as active, 4 and 5 as the newest 2.
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	left := r.Versions()
	want := []uint64{1, 4, 5}
	if len(left) != len(want) {
		t.Fatalf("versions after prune = %+v", left)
	}
	for i, m := range left {
		if m.Version != want[i] {
			t.Fatalf("versions after prune = %+v, want %v", left, want)
		}
	}
	// Floor protects versions still pinned by live sessions.
	for i := 0; i < 3; i++ {
		if _, err := r.Install(pipe, "train"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Prune(4); err != nil {
		t.Fatal(err)
	}
	for _, m := range r.Versions() {
		if m.Version != 1 && m.Version < 4 {
			t.Fatalf("prune removed pinned floor protection: %+v", r.Versions())
		}
	}
	// Pruned artefacts are gone from disk; survivors still load.
	if _, err := os.Stat(filepath.Join(dir, artName(2))); !os.IsNotExist(err) {
		t.Fatal("pruned artefact still on disk")
	}
	if _, err := r.ModelByVersion(4); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeArtifactRejectsGarbage(t *testing.T) {
	pipe := testPipeline(t)
	payload, err := encodePipeline(pipe)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	meta := Meta{Version: 3, CreatedAt: time.Unix(1700000000, 0).UTC(), Trigger: "t"}
	path, err := WriteArtifact(nil, dir, meta, payload)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || !bytes.Equal(gotPayload, payload) {
		t.Fatal("round-trip mismatch")
	}
	for name, mut := range map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"tiny":       func(b []byte) []byte { return b[:10] },
		"bad magic":  func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c },
		"bad crc":    func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 1; return c },
		"bad format": func(b []byte) []byte { c := append([]byte(nil), b...); c[4] = 99; return c },
		"flipped payload": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[artHdrSize+100] ^= 0xA5
			return c
		},
	} {
		if _, _, err := DecodeArtifact(mut(data)); err == nil {
			t.Errorf("%s artefact accepted", name)
		}
	}
}

func TestWriteArtifactFaultInjection(t *testing.T) {
	pipe := testPipeline(t)
	payload, err := encodePipeline(pipe)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS)
	ffs.LimitWriteBytes(100)
	meta := Meta{Version: 1, CreatedAt: time.Unix(1700000000, 0).UTC()}
	if _, err := WriteArtifact(ffs, dir, meta, payload); err == nil {
		t.Fatal("short write not surfaced")
	}
	// The failed write leaves no artefact and no temp file behind.
	arts, err := ListArtifacts(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 0 {
		t.Fatalf("failed write left artefacts: %+v", arts)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed write left files: %v", entries)
	}
}
