package sparing

import (
	"testing"
	"time"

	"cordial/internal/xrand"
)

func TestDefaultProfilesValid(t *testing.T) {
	for tech, p := range DefaultProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%v: %v", tech, err)
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	if err := (TechniqueProfile{Latency: -time.Second, SuccessProb: 0.5}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if err := (TechniqueProfile{SuccessProb: 1.5}).Validate(); err == nil {
		t.Error("probability >1 accepted")
	}
}

func TestPlannerPolicy(t *testing.T) {
	p := NewPlanner()
	tests := []struct {
		name   string
		rows   int
		rate   float64
		window bool
		want   Technique
	}{
		{"scattered with window", 20, 1, true, TechniqueBankReplace},
		{"scattered without window", 20, 1, false, TechniquePageOffline},
		{"hot bank with window", 5, 5, true, TechniqueHardPPR},
		{"hot bank without window", 5, 5, false, TechniqueSoftPPR},
		{"quiet bank with window", 2, 0.5, true, TechniqueHardPPR},
		{"quiet bank without window", 2, 0.5, false, TechniqueSoftPPR},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.Plan(tc.rows, tc.rate, tc.window); got != tc.want {
				t.Fatalf("Plan(%d, %g, %v) = %v, want %v", tc.rows, tc.rate, tc.window, got, tc.want)
			}
		})
	}
}

func TestAttemptSucceedsEventually(t *testing.T) {
	p := NewPlanner()
	rng := xrand.New(1)
	successes := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		res, err := p.Attempt(TechniquePageOffline, rng, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Succeeded {
			successes++
		}
		if res.Latency <= 0 {
			t.Fatal("zero latency result")
		}
		if res.Retried > 3 {
			t.Fatalf("retried %d times with cap 3", res.Retried)
		}
	}
	// 0.92 per try with 3 retries → ~0.99996 overall.
	if successes < trials-5 {
		t.Fatalf("only %d/%d repairs succeeded", successes, trials)
	}
}

func TestAttemptLatencyAccumulatesOnRetry(t *testing.T) {
	p := NewPlanner()
	p.Profiles[TechniquePageOffline] = TechniqueProfile{
		Latency:     time.Second,
		SuccessProb: 0, // always fails
	}
	res, err := p.Attempt(TechniquePageOffline, xrand.New(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatal("impossible repair succeeded")
	}
	if res.Latency != 3*time.Second {
		t.Fatalf("latency = %v, want 3s (1 try + 2 retries)", res.Latency)
	}
}

func TestAttemptErrors(t *testing.T) {
	p := NewPlanner()
	if _, err := p.Attempt(Technique(99), xrand.New(1), 0); err == nil {
		t.Error("unknown technique accepted")
	}
	if _, err := p.Attempt(TechniqueSoftPPR, nil, 0); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestSummariseAndRanked(t *testing.T) {
	p := NewPlanner()
	cases := []PlanCase{
		{UERRows: 3, RowsPerDay: 0.5, WindowAvailable: false}, // soft PPR
		{UERRows: 3, RowsPerDay: 0.5, WindowAvailable: false}, // soft PPR
		{UERRows: 3, RowsPerDay: 0.5, WindowAvailable: false}, // soft PPR
		{UERRows: 20, RowsPerDay: 2, WindowAvailable: true},   // bank replace
		{UERRows: 4, RowsPerDay: 10, WindowAvailable: true},   // hard PPR
		{UERRows: 30, RowsPerDay: 10, WindowAvailable: false}, // page offline
	}
	s := p.Summarise(cases)
	if s.Counts[TechniqueSoftPPR] != 3 || s.Counts[TechniqueBankReplace] != 1 ||
		s.Counts[TechniqueHardPPR] != 1 || s.Counts[TechniquePageOffline] != 1 {
		t.Fatalf("summary = %v", s.Counts)
	}
	ranked := s.Ranked()
	if ranked[0] != TechniqueSoftPPR {
		t.Fatalf("top technique = %v", ranked[0])
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked %d techniques", len(ranked))
	}
}

func TestTechniqueString(t *testing.T) {
	for tech, want := range map[Technique]string{
		TechniqueSoftPPR:     "soft-PPR",
		TechniqueHardPPR:     "hard-PPR",
		TechniquePageOffline: "page-offline",
		TechniqueBankReplace: "bank-replace",
	} {
		if got := tech.String(); got != want {
			t.Errorf("%d.String() = %q", int(tech), got)
		}
	}
}
