package stream

import "sync"

// eventRing is the bounded queue between ingest producers and a shard's
// single consumer. It replaces a buffered channel so both sides can move
// events in batches: the binary ingest path pushes a whole frame's worth
// of events per lock round and the consumer drains up to a batch per
// round, instead of paying one synchronised channel operation per event.
// Semantics match the channel it replaced: push blocks when full
// (IngestBlock backpressure), tryPush sheds when full (IngestDrop), and
// after close the consumer still drains everything already queued.
type eventRing struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []queued
	head     int // index of the oldest queued element
	n        int // live elements
	closed   bool
}

func newEventRing(capacity int) *eventRing {
	r := &eventRing{buf: make([]queued, capacity)}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// push appends one event, blocking while the ring is full. It returns
// false only if the ring was closed before space opened up.
func (r *eventRing) push(q queued) bool {
	r.mu.Lock()
	for r.n == len(r.buf) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = q
	r.n++
	r.mu.Unlock()
	r.notEmpty.Signal()
	return true
}

// tryPush appends one event if there is room, without blocking.
func (r *eventRing) tryPush(q queued) bool {
	r.mu.Lock()
	if r.closed || r.n == len(r.buf) {
		r.mu.Unlock()
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = q
	r.n++
	r.mu.Unlock()
	r.notEmpty.Signal()
	return true
}

// pushBatch appends every element of qs in order, blocking as needed. It
// returns false if the ring closed before the whole batch was queued.
func (r *eventRing) pushBatch(qs []queued) bool {
	r.mu.Lock()
	for len(qs) > 0 {
		for r.n == len(r.buf) && !r.closed {
			r.notFull.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return false
		}
		k := len(r.buf) - r.n
		if k > len(qs) {
			k = len(qs)
		}
		for i := 0; i < k; i++ {
			r.buf[(r.head+r.n+i)%len(r.buf)] = qs[i]
		}
		r.n += k
		qs = qs[k:]
		r.notEmpty.Signal()
	}
	r.mu.Unlock()
	return true
}

// tryPushBatch appends as many leading elements of qs as fit right now
// and returns how many were queued (IngestDrop sheds the rest).
func (r *eventRing) tryPushBatch(qs []queued) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0
	}
	k := len(r.buf) - r.n
	if k > len(qs) {
		k = len(qs)
	}
	for i := 0; i < k; i++ {
		r.buf[(r.head+r.n+i)%len(r.buf)] = qs[i]
	}
	r.n += k
	r.mu.Unlock()
	if k > 0 {
		r.notEmpty.Signal()
	}
	return k
}

// popBatch moves up to len(dst) queued events into dst, blocking while
// the ring is empty. ok is false once the ring is closed and drained —
// the consumer's signal to exit.
func (r *eventRing) popBatch(dst []queued) (k int, ok bool) {
	r.mu.Lock()
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.n == 0 {
		r.mu.Unlock()
		return 0, false
	}
	k = r.n
	if k > len(dst) {
		k = len(dst)
	}
	for i := 0; i < k; i++ {
		dst[i] = r.buf[(r.head+i)%len(r.buf)]
		r.buf[(r.head+i)%len(r.buf)] = queued{} // drop references for GC
	}
	r.head = (r.head + k) % len(r.buf)
	r.n -= k
	r.mu.Unlock()
	r.notFull.Broadcast()
	return k, true
}

// length reports the live element count (the queue-depth gauge).
func (r *eventRing) length() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// free reports how many elements fit right now (the IngestDrop admission
// check on the durable path, taken under the shard's ingest lock so it
// can only under-estimate: concurrent consumers only grow it).
func (r *eventRing) free() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf) - r.n
}

// close stops intake. Queued events remain poppable; blocked producers
// return false, and the consumer's popBatch returns ok=false once the
// ring is drained.
func (r *eventRing) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
}
