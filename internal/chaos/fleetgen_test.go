package chaos

import (
	"testing"

	"cordial/internal/hbm"
)

func planScenario(t *testing.T, seed uint64) *Scenario {
	t.Helper()
	sc, err := ParseScenario([]byte(`
name: plan-test
seed: 1
fleet:
  nodes: 3
fleet_gen:
  total_banks: 40
  templates:
    - name: agg
      weight: 50
      pattern: single
    - name: spread
      weight: 20
      pattern: scattered
    - name: any
      weight: 10
      pattern: mixed
    - name: quiet
      weight: 20
      pattern: benign
chaos:
  - at: 1s
    action: kill_node
    target: random
  - at: 2s
    action: restart_node
    target: random
`))
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = seed
	return sc
}

// TestBuildPlanDeterministic is the reproducibility contract: the same
// scenario and seed must yield the same events and the same resolved
// chaos schedule, digest-for-digest; a different seed must not.
func TestBuildPlanDeterministic(t *testing.T) {
	a, err := BuildPlan(planScenario(t, 42), hbm.DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(planScenario(t, 42), hbm.DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Errorf("same seed, different digests: %s vs %s", a.Digest, b.Digest)
	}
	if len(a.Fleet.Events) != len(b.Fleet.Events) {
		t.Errorf("same seed, different event counts: %d vs %d", len(a.Fleet.Events), len(b.Fleet.Events))
	}
	for i := range a.Chaos {
		if a.Chaos[i].Target != b.Chaos[i].Target {
			t.Errorf("chaos[%d] target differs: %s vs %s", i, a.Chaos[i].Target, b.Chaos[i].Target)
		}
	}

	c, err := BuildPlan(planScenario(t, 43), hbm.DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Errorf("different seeds, same digest %s", a.Digest)
	}
}

func TestBuildPlanShape(t *testing.T) {
	plan, err := BuildPlan(planScenario(t, 7), hbm.DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fleet.Banks != 40 {
		t.Errorf("banks = %d, want 40", plan.Fleet.Banks)
	}
	if plan.Fleet.Faulty == 0 || plan.Fleet.Faulty >= 40 {
		t.Errorf("faulty = %d, want within (0,40) for a mix with benign banks", plan.Fleet.Faulty)
	}
	total := 0
	for _, n := range plan.Fleet.PerTemplate {
		total += n
	}
	if total != 40 {
		t.Errorf("template counts sum to %d, want 40", total)
	}
	if len(plan.Fleet.Events) == 0 {
		t.Fatal("no events generated")
	}
	for i := 1; i < len(plan.Fleet.Events); i++ {
		if plan.Fleet.Events[i].Time.Before(plan.Fleet.Events[i-1].Time) {
			t.Fatalf("events not time-sorted at %d", i)
		}
	}
	geo := hbm.DefaultGeometry
	for _, ev := range plan.Fleet.Events {
		if err := ev.Validate(geo); err != nil {
			t.Fatalf("generated event invalid: %v", err)
		}
	}
	// "random" targets must be pinned to concrete nodes.
	for i, a := range plan.Chaos {
		if a.Target == "random" {
			t.Errorf("chaos[%d] target still random after BuildPlan", i)
		}
	}
}
