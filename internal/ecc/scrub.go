package ecc

import (
	"fmt"
	"sort"
	"time"
)

// FaultKind describes the persistence of a physical fault.
type FaultKind int

// Fault kinds.
const (
	// FaultTransient corrupts one read and then disappears (e.g. a
	// particle strike); scrubbing repairs the stored word.
	FaultTransient FaultKind = iota + 1
	// FaultStuck permanently forces the affected bits (e.g. a failed SWD
	// or TSV); every read sees the corruption until the region is spared.
	FaultStuck
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultStuck:
		return "stuck"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is a physical defect on one codeword: the affected bit positions
// (0..71) and its persistence.
type Fault struct {
	// Bits are the codeword bit positions the fault flips.
	Bits []int
	// Kind is the fault's persistence.
	Kind FaultKind
	// Onset is when the fault starts affecting reads.
	Onset time.Time
}

// Validate checks the fault.
func (f Fault) Validate() error {
	if len(f.Bits) == 0 {
		return fmt.Errorf("ecc: fault flips no bits")
	}
	for _, b := range f.Bits {
		if b < 0 || b >= TotalBits {
			return fmt.Errorf("ecc: fault bit %d out of [0,%d)", b, TotalBits)
		}
	}
	if f.Kind != FaultTransient && f.Kind != FaultStuck {
		return fmt.Errorf("ecc: invalid fault kind %d", int(f.Kind))
	}
	if f.Onset.IsZero() {
		return fmt.Errorf("ecc: fault has zero onset time")
	}
	return nil
}

// FaultMap tracks the physical faults of one bank's codewords, keyed by an
// opaque word index (caller-defined, e.g. row*colsPerRow+col). The zero
// value is an empty map ready to use.
type FaultMap struct {
	faults map[uint64][]Fault
	// scrubbed[word] is the last time a scrub repaired the stored word;
	// transient corruption before that time is gone.
	scrubbed map[uint64]time.Time
}

// AddFault registers a fault on a word.
func (m *FaultMap) AddFault(word uint64, f Fault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if m.faults == nil {
		m.faults = make(map[uint64][]Fault)
	}
	m.faults[word] = append(m.faults[word], f)
	return nil
}

// FaultyWords returns the word indices with registered faults, sorted.
func (m *FaultMap) FaultyWords() []uint64 {
	words := make([]uint64, 0, len(m.faults))
	for w := range m.faults {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	return words
}

// activeBits returns the union of fault bits visible on a read of word at
// time t: all stuck faults past onset, plus transient faults past onset that
// no scrub has repaired yet.
func (m *FaultMap) activeBits(word uint64, t time.Time) []int {
	set := make(map[int]bool)
	lastScrub, hasScrub := time.Time{}, false
	if ts, ok := m.scrubbed[word]; ok {
		lastScrub, hasScrub = ts, true
	}
	for _, f := range m.faults[word] {
		if f.Onset.After(t) {
			continue
		}
		if f.Kind == FaultTransient && hasScrub && !f.Onset.After(lastScrub) {
			continue // repaired by a scrub after onset
		}
		for _, b := range f.Bits {
			set[b] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	bits := make([]int, 0, len(set))
	for b := range set {
		bits = append(bits, b)
	}
	sort.Ints(bits)
	return bits
}

// Read models an access to word at time t: the stored codeword (with the
// currently active fault bits flipped) goes through SEC-DED decode and the
// outcome is classified for the access kind. A successful correction during
// a patrol scrub also rewrites the word, clearing transient faults
// (scrub-and-correct); demand reads correct in flight but do not rewrite.
func (m *FaultMap) Read(word uint64, t time.Time, access AccessKind) Class {
	class, _ := ReadFaulty(0, m.activeBits(word, t), access)
	if access == AccessPatrolScrub && class == ClassCE {
		if m.scrubbed == nil {
			m.scrubbed = make(map[uint64]time.Time)
		}
		if prev, ok := m.scrubbed[word]; !ok || t.After(prev) {
			m.scrubbed[word] = t
		}
	}
	return class
}

// Scrubber walks every faulty word of a FaultMap at a fixed interval,
// emitting the classified results — the patrol-scrubbing behaviour of §II-B
// that separates UEOs (found by scrub) from UERs (hit by demand reads).
type Scrubber struct {
	// Interval between scrub passes over the whole bank.
	Interval time.Duration
	// Map is the bank's fault map.
	Map *FaultMap
}

// Observation is one classified access produced by a scrub pass or demand
// read.
type Observation struct {
	Word  uint64
	Time  time.Time
	Class Class
}

// Run performs scrub passes from start until end and returns every non-clean
// observation in time order. Only faulty words are visited (clean words
// never produce observations).
func (s *Scrubber) Run(start, end time.Time) ([]Observation, error) {
	if s.Interval <= 0 {
		return nil, fmt.Errorf("ecc: scrub interval must be positive, got %v", s.Interval)
	}
	if s.Map == nil {
		return nil, fmt.Errorf("ecc: scrubber has no fault map")
	}
	if end.Before(start) {
		return nil, fmt.Errorf("ecc: scrub window ends before it starts")
	}
	var out []Observation
	words := s.Map.FaultyWords()
	for t := start; !t.After(end); t = t.Add(s.Interval) {
		for _, w := range words {
			if class := s.Map.Read(w, t, AccessPatrolScrub); class != ClassNone {
				out = append(out, Observation{Word: w, Time: t, Class: class})
			}
		}
	}
	return out, nil
}
