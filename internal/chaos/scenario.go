package chaos

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cordial/internal/hbm"
	"cordial/internal/wal"
)

// Scenario is one fully parsed chaos scenario: the fleet to start, the
// workload to generate, the failures to inject, and the SLOs that decide
// pass/fail.
type Scenario struct {
	Name        string
	Description string
	Seed        uint64

	Fleet    FleetSpec
	FleetGen FleetGenSpec
	Load     LoadSpec
	Chaos    []ChaosAction
	SLO      SLOSpec
	Report   ReportSpec
}

// FleetSpec describes the daemon topology. Nodes==1 runs a standalone
// cordial-serve; Nodes>1 runs a control plane, N serve nodes, and a
// router in front.
type FleetSpec struct {
	Nodes      int
	TrainBanks int
	Trees      int
	TrainSeed  uint64
	Topology   string // registered hbm profile name; empty means the active profile
	Fsync      string // cordial-serve -fsync policy: always|interval|never
	FaultFS    string // wal.FaultSpec armed/disarmed via SIGUSR2
	Retrain    bool   // enable the drift retrain loop on serve nodes

	Heartbeat        time.Duration
	HeartbeatTTL     time.Duration
	SweepInterval    time.Duration
	RouterMaxAttempt int
	RouterRefresh    time.Duration

	Startup StartupSpec
}

// StartupSpec controls how serve nodes come up.
type StartupSpec struct {
	Pattern  string        // instant | staggered | wave
	Spacing  time.Duration // staggered: gap between node starts
	WaveSize int           // wave: nodes per wave, Spacing between waves
}

// FleetGenSpec describes the synthetic workload: TotalBanks banks drawn
// across the geometry, each stamped with a weighted fault template.
type FleetGenSpec struct {
	TotalBanks int
	Templates  []TemplateSpec
}

// TemplateSpec is one weighted fault template. Pattern names match
// cordial-gen: single, double, half, scattered, wholecol, plus "mixed"
// (sample from the faultsim default weights) and "benign" (correctable
// noise that must not produce a verdict).
type TemplateSpec struct {
	Name    string
	Weight  float64
	Pattern string
}

// LoadSpec shapes event delivery.
type LoadSpec struct {
	EventsPerSec int
	Batch        int
	Codec        string // wire | jsonl
	Phases       []LoadPhase
}

// LoadPhase overrides the base rate for a window; phases run in order.
type LoadPhase struct {
	Name     string
	Duration time.Duration
	Rate     int // events/sec during the phase; 0 means the base rate
}

// ChaosAction is one scheduled injection.
type ChaosAction struct {
	At       time.Duration // offset from the start of load
	Action   string
	Target   string        // node-1..node-N | control | router | random
	Count    int           // poison: events to inject (default 32)
	Duration time.Duration // clock_skew / partition_router window
	Offset   time.Duration // clock_skew: shift applied to timestamps
	Version  int           // promote: explicit version (0 = shadow candidate)
}

// Chaos action verbs.
const (
	ActKillNode        = "kill_node"
	ActRestartNode     = "restart_node"
	ActDiskFault       = "disk_fault"
	ActClearFault      = "clear_fault"
	ActClockSkew       = "clock_skew"
	ActPoison          = "poison"
	ActPartitionRouter = "partition_router"
	ActRetrain         = "retrain"
	ActPromote         = "promote"
)

// SLOSpec is the pass/fail contract evaluated after the run.
type SLOSpec struct {
	P99IngestLatency   time.Duration // 0 disables
	RecoveryTime       time.Duration // kill -> takeover + readyz; 0 disables
	ReadyzAvailability float64       // fraction of probe samples that were 200
	ZeroVerdictLoss    bool          // compare fleet verdicts to a reference run
	MaxPoisonAccepted  int           // poisoned events the stack may accept
	MinModelSwaps      int           // model promotions observed via /statsz
}

// ReportSpec names the output artifacts.
type ReportSpec struct {
	JSON string
	HTML string
}

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// ParseScenario parses scenario YAML and validates the result.
func ParseScenario(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	sc := &Scenario{
		// Defaults chosen so a minimal scenario is still a real run.
		Seed: 1,
		Fleet: FleetSpec{
			Nodes: 1, TrainBanks: 30, Trees: 8, TrainSeed: 7, Fsync: "never",
			Heartbeat: 100 * time.Millisecond, HeartbeatTTL: time.Second,
			SweepInterval:    300 * time.Millisecond,
			RouterMaxAttempt: 8, RouterRefresh: 200 * time.Millisecond,
			Startup: StartupSpec{Pattern: "instant", Spacing: 200 * time.Millisecond, WaveSize: 2},
		},
		FleetGen: FleetGenSpec{TotalBanks: 100},
		Load:     LoadSpec{EventsPerSec: 2000, Batch: 256, Codec: "wire"},
		SLO:      SLOSpec{ReadyzAvailability: -1},
	}

	d.str(root, "name", &sc.Name)
	d.str(root, "description", &sc.Description)
	d.uint64(root, "seed", &sc.Seed)

	if fl := d.section(root, "fleet"); fl != nil {
		d.intField(fl, "nodes", &sc.Fleet.Nodes)
		d.intField(fl, "train_banks", &sc.Fleet.TrainBanks)
		d.intField(fl, "trees", &sc.Fleet.Trees)
		d.uint64(fl, "train_seed", &sc.Fleet.TrainSeed)
		d.str(fl, "topology", &sc.Fleet.Topology)
		d.str(fl, "fsync", &sc.Fleet.Fsync)
		d.str(fl, "faultfs", &sc.Fleet.FaultFS)
		d.boolField(fl, "retrain", &sc.Fleet.Retrain)
		d.dur(fl, "heartbeat", &sc.Fleet.Heartbeat)
		d.dur(fl, "heartbeat_ttl", &sc.Fleet.HeartbeatTTL)
		d.dur(fl, "sweep_interval", &sc.Fleet.SweepInterval)
		d.intField(fl, "router_max_attempts", &sc.Fleet.RouterMaxAttempt)
		d.dur(fl, "router_refresh", &sc.Fleet.RouterRefresh)
		if st := d.section(fl, "startup"); st != nil {
			d.str(st, "pattern", &sc.Fleet.Startup.Pattern)
			d.dur(st, "spacing", &sc.Fleet.Startup.Spacing)
			d.intField(st, "wave_size", &sc.Fleet.Startup.WaveSize)
			d.checkUnknown(st, "fleet.startup")
		}
		d.checkUnknown(fl, "fleet")
	}

	if fg := d.section(root, "fleet_gen"); fg != nil {
		d.intField(fg, "total_banks", &sc.FleetGen.TotalBanks)
		for i, item := range d.list(fg, "templates") {
			t := TemplateSpec{Weight: 1}
			d.str(item, "name", &t.Name)
			d.floatField(item, "weight", &t.Weight)
			d.str(item, "pattern", &t.Pattern)
			d.checkUnknown(item, fmt.Sprintf("fleet_gen.templates[%d]", i))
			sc.FleetGen.Templates = append(sc.FleetGen.Templates, t)
		}
		d.checkUnknown(fg, "fleet_gen")
	}

	if ld := d.section(root, "load"); ld != nil {
		d.intField(ld, "events_per_sec", &sc.Load.EventsPerSec)
		d.intField(ld, "batch", &sc.Load.Batch)
		d.str(ld, "codec", &sc.Load.Codec)
		for i, item := range d.list(ld, "phases") {
			var ph LoadPhase
			d.str(item, "name", &ph.Name)
			d.dur(item, "duration", &ph.Duration)
			d.intField(item, "rate", &ph.Rate)
			d.checkUnknown(item, fmt.Sprintf("load.phases[%d]", i))
			sc.Load.Phases = append(sc.Load.Phases, ph)
		}
		d.checkUnknown(ld, "load")
	}

	for i, item := range d.listAt(root, "chaos") {
		var a ChaosAction
		d.dur(item, "at", &a.At)
		d.str(item, "action", &a.Action)
		d.str(item, "target", &a.Target)
		d.intField(item, "count", &a.Count)
		d.dur(item, "duration", &a.Duration)
		d.dur(item, "offset", &a.Offset)
		d.intField(item, "version", &a.Version)
		d.checkUnknown(item, fmt.Sprintf("chaos[%d]", i))
		sc.Chaos = append(sc.Chaos, a)
	}

	if sl := d.section(root, "slo"); sl != nil {
		d.dur(sl, "p99_ingest_latency", &sc.SLO.P99IngestLatency)
		d.dur(sl, "recovery_time", &sc.SLO.RecoveryTime)
		d.floatField(sl, "readyz_availability", &sc.SLO.ReadyzAvailability)
		d.boolField(sl, "zero_verdict_loss", &sc.SLO.ZeroVerdictLoss)
		d.intField(sl, "max_poison_accepted", &sc.SLO.MaxPoisonAccepted)
		d.intField(sl, "min_model_swaps", &sc.SLO.MinModelSwaps)
		d.checkUnknown(sl, "slo")
	}

	if rp := d.section(root, "report"); rp != nil {
		d.str(rp, "json", &sc.Report.JSON)
		d.str(rp, "html", &sc.Report.HTML)
		d.checkUnknown(rp, "report")
	}

	d.checkUnknown(root, "")
	if d.err != nil {
		return nil, d.err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// Validate checks cross-field consistency; parse errors are caught
// earlier by the decoder.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if s.Seed == 0 {
		return fmt.Errorf("scenario: seed must be nonzero")
	}
	f := &s.Fleet
	if f.Nodes < 1 || f.Nodes > 16 {
		return fmt.Errorf("scenario: fleet.nodes %d out of range [1,16]", f.Nodes)
	}
	if f.TrainBanks < 1 || f.Trees < 1 {
		return fmt.Errorf("scenario: fleet.train_banks and fleet.trees must be >= 1")
	}
	if f.Topology != "" {
		if _, err := hbm.ProfileByName(f.Topology); err != nil {
			return fmt.Errorf("scenario: fleet.topology: %w", err)
		}
	}
	switch f.Fsync {
	case "always", "interval", "never":
	default:
		return fmt.Errorf("scenario: fleet.fsync %q (want always|interval|never)", f.Fsync)
	}
	if f.FaultFS != "" {
		spec, err := wal.ParseFaultSpec(f.FaultFS)
		if err != nil {
			return fmt.Errorf("scenario: fleet.faultfs: %w", err)
		}
		if !spec.Armed() {
			return fmt.Errorf("scenario: fleet.faultfs %q arms nothing", f.FaultFS)
		}
	}
	switch f.Startup.Pattern {
	case "instant", "staggered", "wave":
	default:
		return fmt.Errorf("scenario: fleet.startup.pattern %q (want instant|staggered|wave)", f.Startup.Pattern)
	}
	if f.Startup.Pattern == "wave" && f.Startup.WaveSize < 1 {
		return fmt.Errorf("scenario: fleet.startup.wave_size must be >= 1")
	}

	if s.FleetGen.TotalBanks < 1 {
		return fmt.Errorf("scenario: fleet_gen.total_banks must be >= 1")
	}
	if len(s.FleetGen.Templates) == 0 {
		return fmt.Errorf("scenario: fleet_gen.templates must not be empty")
	}
	totalWeight := 0.0
	for i, t := range s.FleetGen.Templates {
		if t.Name == "" {
			return fmt.Errorf("scenario: fleet_gen.templates[%d]: name is required", i)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("scenario: template %q: weight must be > 0", t.Name)
		}
		totalWeight += t.Weight
		switch t.Pattern {
		case "single", "double", "half", "scattered", "wholecol", "mixed", "benign":
		default:
			return fmt.Errorf("scenario: template %q: unknown pattern %q", t.Name, t.Pattern)
		}
	}
	if totalWeight <= 0 {
		return fmt.Errorf("scenario: template weights sum to zero")
	}

	if s.Load.EventsPerSec < 1 {
		return fmt.Errorf("scenario: load.events_per_sec must be >= 1")
	}
	if s.Load.Batch < 1 {
		return fmt.Errorf("scenario: load.batch must be >= 1")
	}
	switch s.Load.Codec {
	case "wire", "jsonl":
	default:
		return fmt.Errorf("scenario: load.codec %q (want wire|jsonl)", s.Load.Codec)
	}
	for i, ph := range s.Load.Phases {
		if ph.Duration <= 0 {
			return fmt.Errorf("scenario: load.phases[%d] (%s): duration must be > 0", i, ph.Name)
		}
		if ph.Rate < 0 {
			return fmt.Errorf("scenario: load.phases[%d] (%s): rate must be >= 0", i, ph.Name)
		}
	}

	for i, a := range s.Chaos {
		if a.At < 0 {
			return fmt.Errorf("scenario: chaos[%d]: at must be >= 0", i)
		}
		switch a.Action {
		case ActKillNode, ActRestartNode:
			if err := validTarget(a.Target, f.Nodes, true); err != nil {
				return fmt.Errorf("scenario: chaos[%d] %s: %w", i, a.Action, err)
			}
		case ActDiskFault:
			if f.FaultFS == "" {
				return fmt.Errorf("scenario: chaos[%d]: disk_fault needs fleet.faultfs", i)
			}
			if err := validTarget(a.Target, f.Nodes, false); err != nil {
				return fmt.Errorf("scenario: chaos[%d] disk_fault: %w", i, err)
			}
		case ActClearFault:
			if err := validTarget(a.Target, f.Nodes, false); err != nil {
				return fmt.Errorf("scenario: chaos[%d] clear_fault: %w", i, err)
			}
		case ActClockSkew:
			if a.Duration <= 0 || a.Offset == 0 {
				return fmt.Errorf("scenario: chaos[%d]: clock_skew needs duration > 0 and offset != 0", i)
			}
			if s.SLO.ZeroVerdictLoss {
				return fmt.Errorf("scenario: chaos[%d]: clock_skew breaks slo.zero_verdict_loss determinism; disable one", i)
			}
		case ActPoison:
			// Count defaults at run time.
		case ActPartitionRouter:
			if f.Nodes < 2 {
				return fmt.Errorf("scenario: chaos[%d]: partition_router needs fleet.nodes >= 2", i)
			}
			if a.Duration <= 0 {
				return fmt.Errorf("scenario: chaos[%d]: partition_router needs duration > 0", i)
			}
		case ActRetrain, ActPromote:
			if err := validTarget(a.Target, f.Nodes, false); err != nil {
				return fmt.Errorf("scenario: chaos[%d] %s: %w", i, a.Action, err)
			}
		default:
			return fmt.Errorf("scenario: chaos[%d]: unknown action %q", i, a.Action)
		}
	}

	if s.SLO.RecoveryTime > 0 && !s.hasAction(ActKillNode) {
		return fmt.Errorf("scenario: slo.recovery_time set but no kill_node action scheduled")
	}
	if s.SLO.RecoveryTime > 0 && f.Nodes < 2 {
		return fmt.Errorf("scenario: slo.recovery_time needs fleet.nodes >= 2 (takeover)")
	}
	if s.SLO.ReadyzAvailability > 1 {
		return fmt.Errorf("scenario: slo.readyz_availability must be <= 1.0")
	}
	if s.SLO.MinModelSwaps > 0 && !s.hasAction(ActPromote) && !f.Retrain {
		return fmt.Errorf("scenario: slo.min_model_swaps set but nothing triggers a swap (promote action or fleet.retrain)")
	}
	return nil
}

func (s *Scenario) hasAction(verb string) bool {
	for _, a := range s.Chaos {
		if a.Action == verb {
			return true
		}
	}
	return false
}

// validTarget checks "node-N", "random", or (for non-node-only verbs)
// "control" / "router". allowRandom is implied; nodeOnly restricts the
// verbs that act through WAL/model endpoints to serve nodes.
func validTarget(target string, nodes int, allowInfra bool) error {
	switch target {
	case "":
		return fmt.Errorf("target is required")
	case "random":
		return nil
	case "control", "router":
		if allowInfra {
			return nil
		}
		return fmt.Errorf("target %q is not a serve node", target)
	}
	n, ok := strings.CutPrefix(target, "node-")
	if !ok {
		return fmt.Errorf("unknown target %q", target)
	}
	idx, err := strconv.Atoi(n)
	if err != nil || idx < 1 || idx > nodes {
		return fmt.Errorf("target %q out of range (fleet has %d nodes)", target, nodes)
	}
	return nil
}

// TotalDuration sums the load phases; a scenario without phases runs one
// implicit phase just long enough to deliver the generated events.
func (s *Scenario) TotalDuration() time.Duration {
	var total time.Duration
	for _, ph := range s.Load.Phases {
		total += ph.Duration
	}
	return total
}

// decoder pulls typed fields out of the parseYAML tree, accumulating the
// first error and tracking which keys each section consumed so unknown
// keys are reported instead of silently ignored.
type decoder struct {
	err  error
	seen map[any]map[string]bool
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) mark(m map[string]any, key string) {
	if d.seen == nil {
		d.seen = map[any]map[string]bool{}
	}
	k := any(fmt.Sprintf("%p", m))
	if d.seen[k] == nil {
		d.seen[k] = map[string]bool{}
	}
	d.seen[k][key] = true
}

func (d *decoder) checkUnknown(m map[string]any, section string) {
	k := any(fmt.Sprintf("%p", m))
	var unknown []string
	for key := range m {
		if d.seen == nil || !d.seen[k][key] {
			unknown = append(unknown, key)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		where := section
		if where == "" {
			where = "scenario"
		}
		d.fail("scenario: %s: unknown key %q", where, unknown[0])
	}
}

func (d *decoder) scalar(m map[string]any, key string) (string, bool) {
	d.mark(m, key)
	v, ok := m[key]
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	if !ok {
		d.fail("scenario: %s must be a scalar", key)
		return "", false
	}
	return s, true
}

func (d *decoder) section(m map[string]any, key string) map[string]any {
	d.mark(m, key)
	v, ok := m[key]
	if !ok {
		return nil
	}
	sub, ok := v.(map[string]any)
	if !ok {
		d.fail("scenario: %s must be a mapping", key)
		return nil
	}
	return sub
}

// list returns the map items of a list-valued key; scalar items are an
// error. listAt is the same for root-level keys (different error prefix
// is not worth a second code path).
func (d *decoder) list(m map[string]any, key string) []map[string]any {
	d.mark(m, key)
	v, ok := m[key]
	if !ok {
		return nil
	}
	items, ok := v.([]any)
	if !ok {
		d.fail("scenario: %s must be a list", key)
		return nil
	}
	out := make([]map[string]any, 0, len(items))
	for i, it := range items {
		sub, ok := it.(map[string]any)
		if !ok {
			d.fail("scenario: %s[%d] must be a mapping", key, i)
			return nil
		}
		out = append(out, sub)
	}
	return out
}

func (d *decoder) listAt(m map[string]any, key string) []map[string]any {
	return d.list(m, key)
}

func (d *decoder) str(m map[string]any, key string, dst *string) {
	if s, ok := d.scalar(m, key); ok {
		*dst = s
	}
}

func (d *decoder) intField(m map[string]any, key string, dst *int) {
	s, ok := d.scalar(m, key)
	if !ok {
		return
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		d.fail("scenario: %s: bad integer %q", key, s)
		return
	}
	*dst = v
}

func (d *decoder) uint64(m map[string]any, key string, dst *uint64) {
	s, ok := d.scalar(m, key)
	if !ok {
		return
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		d.fail("scenario: %s: bad unsigned integer %q", key, s)
		return
	}
	*dst = v
}

func (d *decoder) floatField(m map[string]any, key string, dst *float64) {
	s, ok := d.scalar(m, key)
	if !ok {
		return
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail("scenario: %s: bad number %q", key, s)
		return
	}
	*dst = v
}

func (d *decoder) boolField(m map[string]any, key string, dst *bool) {
	s, ok := d.scalar(m, key)
	if !ok {
		return
	}
	switch s {
	case "true", "yes", "on":
		*dst = true
	case "false", "no", "off":
		*dst = false
	default:
		d.fail("scenario: %s: bad boolean %q", key, s)
	}
}

func (d *decoder) dur(m map[string]any, key string, dst *time.Duration) {
	s, ok := d.scalar(m, key)
	if !ok {
		return
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		d.fail("scenario: %s: bad duration %q", key, s)
		return
	}
	*dst = v
}
