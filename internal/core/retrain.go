package core

import (
	"fmt"
	"time"

	"cordial/internal/faultsim"
	"cordial/internal/stats"
)

// RetrainPolicy governs when a deployed Cordial instance refreshes its
// models. Production fleets drift — a firmware rollout or a new HBM vendor
// changes the failure-pattern mix — so the pipeline retrains on a sliding
// window of recently labelled banks, early when drift is detected.
type RetrainPolicy struct {
	// Window is how far back labelled banks remain in the training set.
	Window time.Duration
	// Interval is the scheduled retraining period.
	Interval time.Duration
	// MinBanks is the minimum labelled banks required to (re)train.
	MinBanks int
	// DriftPValue triggers an early retrain when a chi-square test finds
	// the recent class mix differs from the training-time mix with a
	// p-value below this threshold (0 disables drift detection).
	DriftPValue float64
	// DriftSample is how many recent banks the drift test compares
	// (default 40).
	DriftSample int
	// DriftCooldown suppresses further drift-triggered retrains for this
	// long after any retraining, preventing retrain storms while the
	// window flushes a regime transition (default: Interval/2).
	DriftCooldown time.Duration
}

// DefaultRetrainPolicy returns a monthly-window, weekly-cadence policy.
func DefaultRetrainPolicy() RetrainPolicy {
	return RetrainPolicy{
		Window:      60 * 24 * time.Hour,
		Interval:    7 * 24 * time.Hour,
		MinBanks:    40,
		DriftPValue: 0.01,
		DriftSample: 40,
	}
}

// Validate checks the policy.
func (p RetrainPolicy) Validate() error {
	if p.Window <= 0 || p.Interval <= 0 {
		return fmt.Errorf("core: retrain window/interval must be positive")
	}
	if p.MinBanks < 2 {
		return fmt.Errorf("core: retrain MinBanks %d too small", p.MinBanks)
	}
	if p.DriftPValue < 0 || p.DriftPValue >= 1 {
		return fmt.Errorf("core: drift p-value %g out of [0,1)", p.DriftPValue)
	}
	return nil
}

// labelledBank is a ground-truth bank with the time its label became known.
type labelledBank struct {
	bank     *faultsim.BankFault
	resolved time.Time
}

// Trainer maintains a deployed pipeline over a stream of labelled banks,
// retraining per policy. It is not safe for concurrent use. Each retrain
// fits the pipeline with the concurrency set by cfg.Params.Parallelism
// (default: all cores), so periodic refreshes keep the serving path stalled
// as briefly as the hardware allows.
type Trainer struct {
	cfg    Config
	policy RetrainPolicy

	store     []labelledBank
	pipeline  *Pipeline
	lastTrain time.Time
	// trainMix is the class distribution the current models were trained
	// on, for drift testing.
	trainMix map[faultsim.Class]int
	// Retrains counts completed (re)trainings.
	Retrains int
	// DriftRetrains counts retrains triggered by drift rather than
	// schedule.
	DriftRetrains int
}

// NewTrainer returns a trainer that builds pipelines with cfg.
func NewTrainer(cfg Config, policy RetrainPolicy) (*Trainer, error) {
	if policy.DriftSample <= 0 {
		policy.DriftSample = 40
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if _, err := New(cfg); err != nil {
		return nil, err
	}
	return &Trainer{cfg: cfg, policy: policy}, nil
}

// Pipeline returns the current fitted pipeline, or nil before first
// training.
func (t *Trainer) Pipeline() *Pipeline { return t.pipeline }

// ObserveBank adds a labelled bank resolved at the given time and retrains
// if the policy calls for it. It returns whether a retraining happened.
func (t *Trainer) ObserveBank(bf *faultsim.BankFault, resolved time.Time) (bool, error) {
	t.store = append(t.store, labelledBank{bank: bf, resolved: resolved})
	t.evict(resolved)

	due := t.pipeline == nil || resolved.Sub(t.lastTrain) >= t.policy.Interval
	drift := false
	cooldown := t.policy.DriftCooldown
	if cooldown <= 0 {
		cooldown = t.policy.Interval / 2
	}
	if !due && t.policy.DriftPValue > 0 && t.pipeline != nil &&
		resolved.Sub(t.lastTrain) >= cooldown {
		drift = t.driftDetected()
	}
	if !due && !drift {
		return false, nil
	}
	if len(t.store) < t.policy.MinBanks {
		return false, nil
	}
	if err := t.retrain(resolved); err != nil {
		return false, err
	}
	if drift && !due {
		t.DriftRetrains++
	}
	return true, nil
}

// evict drops banks older than the window.
func (t *Trainer) evict(now time.Time) {
	cutoff := now.Add(-t.policy.Window)
	w := 0
	for _, lb := range t.store {
		if !lb.resolved.Before(cutoff) {
			t.store[w] = lb
			w++
		}
	}
	t.store = t.store[:w]
}

// driftDetected chi-square-tests the most recent DriftSample banks' class
// mix against the training-time mix.
func (t *Trainer) driftDetected() bool {
	n := t.policy.DriftSample
	if len(t.store) < n || len(t.trainMix) == 0 {
		return false
	}
	recent := make(map[faultsim.Class]int)
	for _, lb := range t.store[len(t.store)-n:] {
		recent[lb.bank.Class()]++
	}
	table := make([][]float64, 2)
	table[0] = make([]float64, len(faultsim.AllClasses))
	table[1] = make([]float64, len(faultsim.AllClasses))
	for i, class := range faultsim.AllClasses {
		table[0][i] = float64(t.trainMix[class])
		table[1][i] = float64(recent[class])
	}
	stat, df, err := stats.ChiSquareContingency(table)
	if err != nil {
		return false
	}
	p, err := stats.ChiSquarePValue(stat, df)
	if err != nil {
		return false
	}
	return p < t.policy.DriftPValue
}

// retrain fits a fresh pipeline on the current store.
func (t *Trainer) retrain(now time.Time) error {
	banks := make([]*faultsim.BankFault, len(t.store))
	mix := make(map[faultsim.Class]int)
	for i, lb := range t.store {
		banks[i] = lb.bank
		mix[lb.bank.Class()]++
	}
	pipe, err := New(t.cfg)
	if err != nil {
		return err
	}
	if err := pipe.Fit(banks); err != nil {
		return fmt.Errorf("core: retraining: %w", err)
	}
	t.pipeline = pipe
	t.lastTrain = now
	t.trainMix = mix
	t.Retrains++
	return nil
}
