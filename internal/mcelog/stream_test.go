package mcelog

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	events := randomEvents(300, 21)
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewStreamReader(&buf)
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !got.Time.Equal(want.Time) || got.Addr != want.Addr || got.Class != want.Class {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestStreamReadAll(t *testing.T) {
	events := randomEvents(50, 22)
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	log, err := NewStreamReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 50 {
		t.Fatalf("ReadAll got %d events", log.Len())
	}
}

func TestStreamEmptyFlushWritesHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 6 {
		t.Fatalf("empty stream is %d bytes, want 6", buf.Len())
	}
	log, err := NewStreamReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 0 {
		t.Fatalf("empty stream yielded %d events", log.Len())
	}
}

func TestStreamTornWriteKeepsPrefix(t *testing.T) {
	events := randomEvents(20, 23)
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	torn := buf.Bytes()[:buf.Len()-10]
	log, err := NewStreamReader(bytes.NewReader(torn)).ReadAll()
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("torn stream error = %v", err)
	}
	if log.Len() != 19 {
		t.Fatalf("kept %d events before the tear, want 19", log.Len())
	}
}

func TestStreamBitFlipDetected(t *testing.T) {
	events := randomEvents(5, 24)
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in record 2's payload (header 6 + 2 records + offset 3).
	data[6+2*streamRecordSize+3] ^= 0x40
	log, err := NewStreamReader(bytes.NewReader(data)).ReadAll()
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("bit flip error = %v", err)
	}
	if log.Len() != 2 {
		t.Fatalf("kept %d events before corruption, want 2", log.Len())
	}
}

func TestStreamRejectsBadHeader(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader([]byte("XXXX\x01\x00"))).Next(); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewStreamReader(bytes.NewReader([]byte("MCES\x63\x00"))).Next(); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewStreamReader(bytes.NewReader(nil)).Next(); err == nil {
		t.Error("empty input accepted")
	}
}

func TestStreamRejectsInvalidClassEvenWithValidCRC(t *testing.T) {
	// Hand-craft a record with class byte 0xEE and a matching CRC.
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	if err := w.Write(randomEvents(1, 25)[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[6+16] = 0xEE
	// Recompute the CRC so only the class check can reject it.
	rec := data[6 : 6+17]
	crc := crc32ChecksumIEEE(rec)
	data[6+17] = byte(crc)
	data[6+18] = byte(crc >> 8)
	data[6+19] = byte(crc >> 16)
	data[6+20] = byte(crc >> 24)
	if _, err := NewStreamReader(bytes.NewReader(data)).Next(); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("invalid class error = %v", err)
	}
}

func BenchmarkStreamWrite(b *testing.B) {
	events := randomEvents(1, 26)
	w := NewStreamWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(events[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// crc32ChecksumIEEE avoids importing hash/crc32 twice in the test file.
func crc32ChecksumIEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}
