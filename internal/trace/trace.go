// Package trace synthesises fleet-scale HBM error logs and implements the
// paper's empirical-study analyses over them: the per-micro-level sudden-UER
// ratios of Table I, the dataset summary of Table II, the bank failure
// pattern distribution of Figure 3(b), and the row-distance locality
// chi-square curve of Figure 4.
//
// A generated Fleet stands in for the proprietary industrial dataset: it
// places faulty banks (drawn from the Figure 3(b) pattern mix) and benign
// noisy banks across a simulated cluster, correlating "sick" regions so that
// the hierarchical sudden-ratio structure of Table I emerges (an entity at a
// coarse level is non-sudden if any of its many sub-entities logged an error
// before its first UER).
package trace

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/stats"
	"cordial/internal/xrand"
)

// Spec configures fleet synthesis. Construct with DefaultSpec and adjust.
type Spec struct {
	// Fault is the per-bank fault process configuration.
	Fault faultsim.Config
	// Weights is the pattern sampling distribution (Figure 3(b) by default).
	Weights faultsim.PatternWeights
	// UERBanks is the number of banks given a UER failure pattern.
	UERBanks int
	// BenignBanks is the number of additional banks with only CE/UEO noise,
	// placed uniformly across the fleet.
	BenignBanks int
	// CompanionProbs gives, per hierarchy level, the probability that a
	// faulty bank spawns a benign noisy companion bank inside the same
	// level entity (but a different bank). These sick-region companions
	// create the rising non-sudden ratio at coarse levels in Table I.
	CompanionProbs map[hbm.Level]float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultSpec returns a calibrated specification for the given geometry.
// The default scale (300 faulty banks) keeps full-pipeline runs fast; scale
// UERBanks and BenignBanks together to approach the paper's dataset size.
// Companion probabilities follow the active topology profile's hierarchy.
func DefaultSpec(g hbm.Geometry) Spec {
	return Spec{
		Fault:          faultsim.DefaultConfig(g),
		Weights:        faultsim.DefaultPatternWeights(),
		UERBanks:       300,
		BenignBanks:    2200,
		CompanionProbs: defaultCompanionProbs(hbm.ActiveProfile()),
		Seed:           1,
	}
}

// defaultCompanionProbs assigns sick-region companion probabilities across
// the profile's hierarchy: strongest inside the bank group, moderate at
// the mid-packaging level (SID, or rank on DIMMs), and a small tail at the
// coarser levels.
func defaultCompanionProbs(p *hbm.Profile) map[hbm.Level]float64 {
	for _, l := range p.Levels {
		if l == hbm.LevelRank {
			// DIMM hierarchy: socket → channel → DIMM → rank → device.
			return map[hbm.Level]float64{
				hbm.LevelBankGroup: 0.10,
				hbm.LevelDevice:    0.02,
				hbm.LevelRank:      0.05,
				hbm.LevelHBM:       0.02,
				hbm.LevelChannel:   0.02,
				hbm.LevelNPU:       0.02,
			}
		}
	}
	return map[hbm.Level]float64{
		hbm.LevelBankGroup:     0.10,
		hbm.LevelPseudoChannel: 0.02,
		hbm.LevelSID:           0.05,
		hbm.LevelHBM:           0.02,
		hbm.LevelNPU:           0.02,
	}
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if err := s.Fault.Validate(); err != nil {
		return err
	}
	if s.UERBanks < 0 || s.BenignBanks < 0 {
		return fmt.Errorf("trace: negative bank counts (%d, %d)", s.UERBanks, s.BenignBanks)
	}
	if s.UERBanks+s.BenignBanks > s.Fault.Geometry.TotalBanks() {
		return fmt.Errorf("trace: %d banks requested but fleet has only %d",
			s.UERBanks+s.BenignBanks, s.Fault.Geometry.TotalBanks())
	}
	for l, p := range s.CompanionProbs {
		if p < 0 || p > 1 {
			return fmt.Errorf("trace: companion probability %g for %v out of [0,1]", p, l)
		}
	}
	return nil
}

// Fleet is a synthesised dataset: the merged error log plus ground truth.
type Fleet struct {
	Spec Spec
	// Log is the fleet-wide error log, sorted by time.
	Log *mcelog.Log
	// Faults holds the ground truth of every faulty bank, in generation
	// order.
	Faults []*faultsim.BankFault
	// BenignBankKeys lists the bank keys of benign noisy banks.
	BenignBankKeys []uint64
}

// Generate synthesises a fleet according to spec.
func Generate(spec Spec) (*Fleet, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(spec.Seed)
	gen, err := faultsim.NewGenerator(spec.Fault, rng.Split())
	if err != nil {
		return nil, err
	}
	geo := spec.Fault.Geometry

	used := make(map[uint64]bool)
	pickFreshBank := func(draw func() hbm.BankAddress) (hbm.BankAddress, bool) {
		for attempt := 0; attempt < 64; attempt++ {
			b := draw()
			if !used[b.Pack()] {
				used[b.Pack()] = true
				return b, true
			}
		}
		return hbm.BankAddress{}, false
	}

	fleet := &Fleet{Spec: spec, Log: mcelog.NewLog(0)}

	// Companion draws walk the active profile's hierarchy fine to coarse,
	// visiting only the levels the spec assigns a probability — same visit
	// order the calibrated HBM2E default always used.
	var companionLevels []hbm.Level
	profileLevels := hbm.ActiveProfile().Levels
	for i := len(profileLevels) - 1; i >= 0; i-- {
		if _, ok := spec.CompanionProbs[profileLevels[i]]; ok {
			companionLevels = append(companionLevels, profileLevels[i])
		}
	}

	// Faulty banks with sick-region companions.
	for i := 0; i < spec.UERBanks; i++ {
		bank, ok := pickFreshBank(func() hbm.BankAddress { return hbm.RandomBank(geo, rng) })
		if !ok {
			return nil, fmt.Errorf("trace: could not place faulty bank %d", i)
		}
		bf, err := gen.GenerateSampled(bank, spec.Weights)
		if err != nil {
			return nil, err
		}
		fleet.Faults = append(fleet.Faults, bf)
		fleet.Log.Append(bf.Events...)

		for _, level := range companionLevels {
			if !rng.Bool(spec.CompanionProbs[level]) {
				continue
			}
			level := level
			companion, ok := pickFreshBank(func() hbm.BankAddress {
				return hbm.RandomBankWithin(geo, rng, bank, level)
			})
			if !ok {
				continue // sick region saturated; skip rather than fail
			}
			fleet.Log.Append(gen.GenerateBenign(companion)...)
			fleet.BenignBankKeys = append(fleet.BenignBankKeys, companion.Pack())
		}
	}

	// Independent benign banks.
	for i := 0; i < spec.BenignBanks; i++ {
		bank, ok := pickFreshBank(func() hbm.BankAddress { return hbm.RandomBank(geo, rng) })
		if !ok {
			return nil, fmt.Errorf("trace: could not place benign bank %d", i)
		}
		fleet.Log.Append(gen.GenerateBenign(bank)...)
		fleet.BenignBankKeys = append(fleet.BenignBankKeys, bank.Pack())
	}

	fleet.Log.Sort()
	return fleet, nil
}

// SuddenStats reports, for one micro-level, how many level entities had a
// sudden first UER (no prior error anywhere in the entity) versus a
// non-sudden one. PredictableRatio is non-sudden / (sudden + non-sudden) —
// Table I's rightmost column.
type SuddenStats struct {
	Level     hbm.Level
	Sudden    int
	NonSudden int
}

// PredictableRatio returns the fraction of entities whose first UER had
// in-entity precursors.
func (s SuddenStats) PredictableRatio() float64 {
	total := s.Sudden + s.NonSudden
	if total == 0 {
		return 0
	}
	return float64(s.NonSudden) / float64(total)
}

// SuddenByLevel computes Table I from a log: for every level the active
// topology profile reports, each entity with at least one UER is sudden if
// no CE or UEO anywhere in the entity precedes its first UER.
func SuddenByLevel(log *mcelog.Log) []SuddenStats {
	events := log.Events()
	levels := hbm.ActiveProfile().TableLevels
	out := make([]SuddenStats, 0, len(levels))
	for _, level := range levels {
		firstUER := make(map[uint64]time.Time)
		for _, e := range events {
			if e.Class != ecc.ClassUER {
				continue
			}
			k := e.Addr.EntityKey(level)
			if t, ok := firstUER[k]; !ok || e.Time.Before(t) {
				firstUER[k] = e.Time
			}
		}
		nonSudden := make(map[uint64]bool)
		for _, e := range events {
			if e.Class == ecc.ClassUER {
				continue
			}
			k := e.Addr.EntityKey(level)
			if t, ok := firstUER[k]; ok && e.Time.Before(t) {
				nonSudden[k] = true
			}
		}
		s := SuddenStats{Level: level}
		for k := range firstUER {
			if nonSudden[k] {
				s.NonSudden++
			} else {
				s.Sudden++
			}
		}
		out = append(out, s)
	}
	return out
}

// LevelSummary reports, for one micro-level, how many entities logged each
// error class and how many logged anything — Table II's columns.
type LevelSummary struct {
	Level   hbm.Level
	WithCE  int
	WithUEO int
	WithUER int
	Total   int
}

// SummaryByLevel computes Table II from a log, over the active topology
// profile's reported levels.
func SummaryByLevel(log *mcelog.Log) []LevelSummary {
	levels := hbm.ActiveProfile().TableLevels
	out := make([]LevelSummary, 0, len(levels))
	for _, level := range levels {
		out = append(out, LevelSummary{
			Level:   level,
			WithCE:  log.EntitiesWithClass(level, ecc.ClassCE),
			WithUEO: log.EntitiesWithClass(level, ecc.ClassUEO),
			WithUER: log.EntitiesWithClass(level, ecc.ClassUER),
			Total:   log.Entities(level),
		})
	}
	return out
}

// PatternShare is one slice of the Figure 3(b) pie.
type PatternShare struct {
	Pattern faultsim.Pattern
	Count   int
	Share   float64 // fraction of faulty banks, in [0,1]
}

// PatternDistribution tallies the ground-truth pattern mix of a fleet —
// Figure 3(b).
func PatternDistribution(faults []*faultsim.BankFault) []PatternShare {
	counts := make(map[faultsim.Pattern]int)
	for _, f := range faults {
		counts[f.Pattern]++
	}
	total := len(faults)
	out := make([]PatternShare, 0, len(faultsim.AllPatterns))
	for _, p := range faultsim.AllPatterns {
		share := 0.0
		if total > 0 {
			share = float64(counts[p]) / float64(total)
		}
		out = append(out, PatternShare{Pattern: p, Count: counts[p], Share: share})
	}
	return out
}

// LocalityPoint is one point of the Figure 4 curve: the chi-square statistic
// of "next UER within Threshold rows of the current UER row" against the
// uniform-placement expectation.
type LocalityPoint struct {
	Threshold int
	ChiSquare float64
	// Observed is the fraction of successive UER-row pairs within the
	// threshold.
	Observed float64
	// Expected is the fraction expected under uniform random placement.
	Expected float64
	// Pairs is the number of successive pairs measured.
	Pairs int
}

// DefaultThresholds are the Figure 4 x-axis values: powers of two from 4
// (2^2) to 2048 (2^11).
func DefaultThresholds() []int {
	out := make([]int, 0, 10)
	for d := 4; d <= 2048; d *= 2 {
		out = append(out, d)
	}
	return out
}

// LocalityChiSquare computes the Figure 4 curve from a log. For every bank
// with at least two UER rows, successive first-UER rows (in time order) form
// pairs; for each threshold d the observed count of pairs within d rows is
// tested against the count expected if the next row were placed uniformly at
// random in the bank.
func LocalityChiSquare(log *mcelog.Log, rowsPerBank int, thresholds []int) ([]LocalityPoint, error) {
	if rowsPerBank < 2 {
		return nil, fmt.Errorf("trace: rowsPerBank %d too small", rowsPerBank)
	}
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("trace: no thresholds")
	}
	type pair struct{ from, dist int }
	var pairs []pair
	for _, events := range log.FilterClass(ecc.ClassUER).GroupByBank() {
		// events preserve log order; ensure time order then derive
		// first-UER row sequence.
		sort.SliceStable(events, func(i, j int) bool { return events[i].Before(events[j]) })
		seen := make(map[int]bool)
		var rows []int
		for _, e := range events {
			if !seen[e.Addr.Row] {
				seen[e.Addr.Row] = true
				rows = append(rows, e.Addr.Row)
			}
		}
		for i := 1; i < len(rows); i++ {
			d := rows[i] - rows[i-1]
			if d < 0 {
				d = -d
			}
			pairs = append(pairs, pair{from: rows[i-1], dist: d})
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("trace: no successive UER pairs in log")
	}

	out := make([]LocalityPoint, 0, len(thresholds))
	for _, d := range thresholds {
		if d <= 0 {
			return nil, fmt.Errorf("trace: non-positive threshold %d", d)
		}
		observed := 0.0
		expected := 0.0
		for _, p := range pairs {
			if p.dist <= d {
				observed++
			}
			// Probability a uniform random distinct row lands within d
			// of p.from: window size clipped to the bank, minus the row
			// itself.
			lo := p.from - d
			if lo < 0 {
				lo = 0
			}
			hi := p.from + d
			if hi > rowsPerBank-1 {
				hi = rowsPerBank - 1
			}
			expected += float64(hi-lo) / float64(rowsPerBank-1)
		}
		n := float64(len(pairs))
		chi, _, err := stats.ChiSquareGoodnessOfFit(
			[]float64{observed, n - observed},
			[]float64{expected, n - expected},
		)
		if err != nil {
			return nil, fmt.Errorf("trace: threshold %d: %w", d, err)
		}
		out = append(out, LocalityPoint{
			Threshold: d,
			ChiSquare: chi,
			Observed:  observed / n,
			Expected:  expected / n,
			Pairs:     len(pairs),
		})
	}
	return out, nil
}

// PeakThreshold returns the threshold with the largest chi-square value.
func PeakThreshold(points []LocalityPoint) int {
	best, bestChi := 0, -1.0
	for _, p := range points {
		if p.ChiSquare > bestChi {
			best, bestChi = p.Threshold, p.ChiSquare
		}
	}
	return best
}
