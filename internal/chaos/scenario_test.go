package chaos

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// minimalScenario is the smallest valid document, mutated per test case.
const minimalScenario = `
name: t
seed: 5
fleet_gen:
  templates:
    - name: a
      weight: 1
      pattern: single
`

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario([]byte(minimalScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fleet.Nodes != 1 || sc.Fleet.Fsync != "never" || sc.Load.Codec != "wire" {
		t.Errorf("defaults not applied: %+v", sc.Fleet)
	}
	if sc.Fleet.Startup.Pattern != "instant" {
		t.Errorf("startup default = %q", sc.Fleet.Startup.Pattern)
	}
	if sc.SLO.ReadyzAvailability != -1 {
		t.Errorf("readyz SLO should default to disabled, got %v", sc.SLO.ReadyzAvailability)
	}
}

func TestParseScenarioFull(t *testing.T) {
	sc, err := ParseScenario([]byte(`
name: full
description: everything set
seed: 99
fleet:
  nodes: 3
  train_banks: 25
  trees: 9
  train_seed: 11
  fsync: interval
  faultfs: sync-fail=2
  retrain: true
  heartbeat: 150ms
  heartbeat_ttl: 2s
  sweep_interval: 400ms
  router_max_attempts: 5
  router_refresh: 250ms
  startup:
    pattern: wave
    spacing: 100ms
    wave_size: 2
fleet_gen:
  total_banks: 40
  templates:
    - name: agg
      weight: 3
      pattern: single
    - name: noise
      weight: 1
      pattern: benign
load:
  events_per_sec: 800
  batch: 64
  codec: jsonl
  phases:
    - name: spike
      duration: 2s
      rate: 2000
chaos:
  - at: 1s
    action: kill_node
    target: node-3
  - at: 2s
    action: disk_fault
    target: node-1
  - at: 3s
    action: promote
    target: node-2
    version: 2
slo:
  p99_ingest_latency: 3s
  recovery_time: 20s
  readyz_availability: 0.95
  min_model_swaps: 1
report:
  json: out.json
  html: out.html
`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fleet.Nodes != 3 || !sc.Fleet.Retrain || sc.Fleet.Startup.WaveSize != 2 {
		t.Errorf("fleet mis-parsed: %+v", sc.Fleet)
	}
	if sc.Fleet.Heartbeat != 150*time.Millisecond || sc.Fleet.HeartbeatTTL != 2*time.Second {
		t.Errorf("durations mis-parsed: %+v", sc.Fleet)
	}
	if len(sc.FleetGen.Templates) != 2 || sc.FleetGen.Templates[0].Weight != 3 {
		t.Errorf("templates mis-parsed: %+v", sc.FleetGen)
	}
	if len(sc.Chaos) != 3 || sc.Chaos[2].Version != 2 {
		t.Errorf("chaos mis-parsed: %+v", sc.Chaos)
	}
	if sc.SLO.ReadyzAvailability != 0.95 || sc.Report.HTML != "out.html" {
		t.Errorf("slo/report mis-parsed: %+v %+v", sc.SLO, sc.Report)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no name", "seed: 1\nfleet_gen:\n  templates:\n    - name: a\n      weight: 1\n      pattern: single", "name is required"},
		{"zero seed", strings.Replace(minimalScenario, "seed: 5", "seed: 0", 1), "seed"},
		{"unknown root key", minimalScenario + "bogus: 1\n", "unknown key"},
		{"unknown fleet key", minimalScenario + "fleet:\n  wheels: 4\n", "unknown key"},
		{"bad pattern", strings.Replace(minimalScenario, "pattern: single", "pattern: zigzag", 1), "unknown pattern"},
		{"bad fsync", minimalScenario + "fleet:\n  fsync: sometimes\n", "fsync"},
		{"bad codec", minimalScenario + "load:\n  codec: csv\n", "codec"},
		{"bad startup", minimalScenario + "fleet:\n  startup:\n    pattern: explode\n", "startup.pattern"},
		{"unarmed faultfs", minimalScenario + "fleet:\n  faultfs: \" \"\n", "arms nothing"},
		{"kill without target", minimalScenario + "chaos:\n  - at: 1s\n    action: kill_node\n", "target is required"},
		{"kill out of range", minimalScenario + "chaos:\n  - at: 1s\n    action: kill_node\n    target: node-9\n", "out of range"},
		{"disk fault without faultfs", minimalScenario + "chaos:\n  - at: 1s\n    action: disk_fault\n    target: node-1\n", "needs fleet.faultfs"},
		{"skew without offset", minimalScenario + "chaos:\n  - at: 1s\n    action: clock_skew\n    duration: 2s\n", "clock_skew"},
		{"skew vs verdict loss", minimalScenario + "chaos:\n  - at: 1s\n    action: clock_skew\n    duration: 2s\n    offset: 1h\nslo:\n  zero_verdict_loss: true\n", "determinism"},
		{"partition on one node", minimalScenario + "chaos:\n  - at: 1s\n    action: partition_router\n    duration: 2s\n", "nodes >= 2"},
		{"recovery without kill", minimalScenario + "slo:\n  recovery_time: 10s\n", "no kill_node"},
		{"swap slo without trigger", minimalScenario + "slo:\n  min_model_swaps: 1\n", "nothing triggers"},
	}
	for _, tc := range cases {
		_, err := ParseScenario([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCheckedInScenarios keeps every scenario shipped under scenarios/
// loadable: a scenario that no longer parses is a broken deliverable
// even when no chaos run executes in CI.
func TestCheckedInScenarios(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 3 {
		t.Fatalf("want at least 3 checked-in scenarios, found %d", len(matches))
	}
	names := map[string]bool{}
	for _, path := range matches {
		sc, err := LoadScenario(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		names[sc.Name] = true
	}
	for _, required := range []string{"cluster-kill-one", "chaos-during-model-swap", "ci-smoke"} {
		if !names[required] {
			t.Errorf("required scenario %q missing from scenarios/", required)
		}
	}
}
