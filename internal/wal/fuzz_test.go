package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through both untrusted-input decoders
// — the record framer and the snapshot decoder. Corrupt, truncated, or
// adversarial input must produce an error or a clean "no record", never a
// panic or an over-allocation.
func FuzzWALDecode(f *testing.F) {
	// Seed with a well-formed record frame...
	payload := []byte("seed-record")
	var lsnb [8]byte
	binary.LittleEndian.PutUint64(lsnb[:], 42)
	sum := crc32.Update(0, crcTable, lsnb[:])
	sum = crc32.Update(sum, crcTable, payload)
	frame := make([]byte, recHdrSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], sum)
	copy(frame[8:16], lsnb[:])
	copy(frame[recHdrSize:], payload)
	f.Add(frame)

	// ...a well-formed snapshot image...
	snap := make([]byte, snapHdrSize)
	copy(snap[:4], snapMagic)
	binary.LittleEndian.PutUint16(snap[4:6], snapVersion)
	binary.LittleEndian.PutUint64(snap[8:16], 7)
	binary.LittleEndian.PutUint64(snap[16:24], uint64(len(payload)))
	snap = append(snap, payload...)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(snap, crcTable))
	snap = append(snap, tail[:]...)
	f.Add(snap)

	// ...and some degenerate shapes.
	f.Add([]byte{})
	f.Add([]byte("CSNP"))
	f.Add(bytes.Repeat([]byte{0xff}, recHdrSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		lsn, payload, _, ok := readRecord(bytes.NewReader(data))
		if ok {
			// A frame that validates must re-verify against its own CRC.
			var lb [8]byte
			binary.LittleEndian.PutUint64(lb[:], lsn)
			s := crc32.Update(0, crcTable, lb[:])
			s = crc32.Update(s, crcTable, payload)
			if len(data) >= 8 && s != binary.LittleEndian.Uint32(data[4:8]) {
				t.Fatalf("readRecord accepted a frame whose CRC does not verify")
			}
		}

		if _, p, err := DecodeSnapshot(data); err == nil {
			// Accepted payload must round-trip through the writer's CRC.
			if len(p) > len(data) {
				t.Fatalf("DecodeSnapshot returned payload longer than input")
			}
		}
	})
}
