package mcelog

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadBinary verifies the binary codec never panics and never silently
// accepts corrupted input as a different log.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid log and a few mutations.
	l := FromEvents(randomEvents(10, 1))
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:5])
	f.Add([]byte{})
	f.Add([]byte("MCEL"))
	mutated := append([]byte{}, valid...)
	mutated[12] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round-trip property: whatever parses must re-serialise and
		// re-parse identically.
		var out bytes.Buffer
		if err := log.WriteBinary(&out); err != nil {
			t.Fatalf("reserialise: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if again.Len() != log.Len() {
			t.Fatalf("round trip changed length %d -> %d", log.Len(), again.Len())
		}
	})
}

// FuzzReadJSONL verifies the JSONL codec never panics.
func FuzzReadJSONL(f *testing.F) {
	l := FromEvents(randomEvents(5, 2))
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"time":"2025-01-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	// Poisoned-timestamp seeds: zero, pre-epoch and far-future times that
	// the ingest-path validation (ValidateTime) must reject without panic.
	f.Add([]byte(`{"time":"0001-01-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`))
	f.Add([]byte(`{"time":"1969-07-20T20:17:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`))
	f.Add([]byte(`{"time":"2300-01-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"UER"}`))
	// Out-of-geometry address seed.
	f.Add([]byte(`{"time":"2025-01-01T00:00:00Z","addr":"n999.u99.h9.s9.c99.p9.g9.b9.r99999999.col9999","class":"CE"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := log.WriteJSONL(&out); err != nil {
			t.Fatalf("reserialise: %v", err)
		}
	})
}

// FuzzStreamReader verifies the streaming codec never panics and preserves
// the valid prefix of torn streams.
func FuzzStreamReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	for _, e := range randomEvents(5, 3) {
		if err := w.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("MCES\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewStreamReader(bytes.NewReader(data))
		for i := 0; i < 10000; i++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // any error terminates cleanly
			}
		}
	})
}
