package cordial

// Benchmarks regenerating every table and figure of the paper (one bench per
// experiment, per DESIGN.md §3) plus the DESIGN.md §4 ablations. They run at
// reduced scale so `go test -bench=.` completes in minutes; cmd/cordial-repro
// regenerates the full-scale numbers recorded in EXPERIMENTS.md.

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/experiments"
	"cordial/internal/mcelog"
	"cordial/internal/mltree"
	"cordial/internal/stream"
	"cordial/internal/wal"
	"cordial/internal/xrand"
)

// benchParams returns a reduced-scale configuration for benchmarking.
func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Spec.UERBanks = 60
	p.Spec.BenignBanks = 150
	p.Model = core.ModelParams{Trees: 15, Depth: 8, Leaves: 15}
	return p
}

func BenchmarkTableI(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableI(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableII(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII_TableIV regenerates both evaluation tables (they share
// one training run, as in the paper).
func BenchmarkTableIII_TableIV(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t3, t4, err := experiments.RunEvaluation(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := t3.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := t4.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3a(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3a(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3b(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3b(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUERBudget(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationUERBudget(p, []int{1, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBlockGeometry(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationBlockGeometry(p, []int{8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationWindow(p, []int{32, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFeatures(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationFeatures(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainPipeline measures end-to-end training cost (both stages).
func BenchmarkTrainPipeline(b *testing.B) {
	spec := DefaultFleetSpec()
	spec.UERBanks = 60
	spec.BenignBanks = 0
	fleet, err := Simulate(spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(RandomForest)
	cfg.Params = ModelParams{Trees: 15, Depth: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainWithConfig(cfg, fleet.Faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifyPattern measures single-bank inference latency.
func BenchmarkClassifyPattern(b *testing.B) {
	spec := DefaultFleetSpec()
	spec.UERBanks = 60
	spec.BenignBanks = 0
	fleet, err := Simulate(spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(RandomForest)
	cfg.Params = ModelParams{Trees: 15, Depth: 8}
	pipe, err := TrainWithConfig(cfg, fleet.Faults)
	if err != nil {
		b.Fatal(err)
	}
	events := fleet.Faults[0].Events
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.ClassifyPattern(events); err != nil {
			b.Fatal(err)
		}
	}
}

// streamBenchState shares one trained pipeline and one replay log across
// the StreamIngest benchmarks; training dominates setup and must not be
// re-paid per shard count.
var streamBenchState = sync.OnceValues(func() (*Pipeline, []Event) {
	spec := DefaultFleetSpec()
	spec.UERBanks = 60
	spec.BenignBanks = 0
	spec.Seed = 21
	trainFleet, err := Simulate(spec)
	if err != nil {
		panic(err)
	}
	cfg := DefaultConfig(RandomForest)
	cfg.Params = ModelParams{Trees: 10, Depth: 8}
	pipe, err := TrainWithConfig(cfg, trainFleet.Faults)
	if err != nil {
		panic(err)
	}
	liveSpec := spec
	liveSpec.UERBanks = 40
	liveSpec.BenignBanks = 120
	liveSpec.Seed = 22
	live, err := Simulate(liveSpec)
	if err != nil {
		panic(err)
	}
	live.Log.Sort()
	return pipe, live.Log.Events()
})

// benchmarkStreamIngest replays the shared fleet log through a fresh
// engine and reports end-to-end ingest throughput (enqueue + session +
// inference) for one shard count. This is the perf baseline for the hot
// online path; shard scaling should be roughly linear up to GOMAXPROCS on
// multicore hosts.
func benchmarkStreamIngest(b *testing.B, shards int) {
	pipe, events := streamBenchState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultStreamConfig(pipe)
		cfg.Shards = shards
		cfg.QueueDepth = 4096
		engine, err := NewStreamEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range engine.Actions() {
			}
		}()
		for _, e := range events {
			if err := engine.Ingest(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := engine.Close(); err != nil {
			b.Fatal(err)
		}
		<-done
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkStreamIngest measures online ingest throughput at 1 shard, 4
// shards and GOMAXPROCS shards (the cordial-serve default).
func BenchmarkStreamIngest(b *testing.B) {
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, n := range shardCounts {
		if seen[n] {
			continue
		}
		seen[n] = true
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) { benchmarkStreamIngest(b, n) })
	}
}

// BenchmarkStreamSessionOnEvent isolates per-event session cost (feature
// extraction + ensemble inference) without the engine around it.
func BenchmarkStreamSessionOnEvent(b *testing.B) {
	pipe, events := streamBenchState()
	strategy := NewStrategy(pipe, DefaultGeometry)
	perBank := make(map[uint64][]Event)
	for _, e := range events {
		k := e.Addr.BankKey()
		perBank[k] = append(perBank[k], e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bankEvents := range perBank {
			sess := strategy.NewSession(BankOf(bankEvents[0].Addr))
			for _, e := range bankEvents {
				sess.OnEvent(e)
			}
		}
	}
}

// longSessionEvents synthesises one bank's n-event history with the shape
// that stresses per-event session cost over a long life: a slowly drifting
// CE cluster with a UER on every 10th event at a previously unseen row, so
// the first three UER rows are tightly clustered (the pattern stage reads
// the bank as an aggregation failure) and block predictions keep firing
// across the whole history instead of only during a short burst.
func longSessionEvents(n int) []Event {
	r := xrand.New(7)
	const baseRow = 4096
	start := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		e := Event{
			Time:  start.Add(time.Duration(i) * 30 * time.Second),
			Class: ecc.ClassCE,
		}
		e.Addr.Row = baseRow + i/10
		if i%10 == 9 {
			e.Class = ecc.ClassUER
		} else {
			e.Addr.Row += r.Intn(4)
		}
		e.Addr.Column = r.Intn(DefaultGeometry.ColsPerBank)
		events = append(events, e)
	}
	return events
}

// BenchmarkSessionOnEvent measures per-event cost of one long-lived bank
// session at two history lengths. The headline metric is ns/event: it must
// stay flat between history=1000 and history=10000 — per-event work that
// grows with session age is exactly the O(history²) failure mode the
// incremental feature state exists to prevent.
func BenchmarkSessionOnEvent(b *testing.B) {
	pipe, _ := streamBenchState()
	strategy := NewStrategy(pipe, DefaultGeometry)
	for _, h := range []int{1000, 10000} {
		events := longSessionEvents(h)
		b.Run(fmt.Sprintf("history=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess := strategy.NewSession(BankOf(events[0].Addr))
				for _, e := range events {
					sess.OnEvent(e)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(h), "ns/event")
		})
	}
}

// BenchmarkStreamIngestLongSession replays the same single-bank long
// histories through the full engine (1 shard, so the session path is the
// bottleneck): the end-to-end ns/event must stay flat with history length
// just like the bare-session benchmark.
func BenchmarkStreamIngestLongSession(b *testing.B) {
	pipe, _ := streamBenchState()
	for _, h := range []int{1000, 10000} {
		events := longSessionEvents(h)
		b.Run(fmt.Sprintf("history=%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultStreamConfig(pipe)
				cfg.Shards = 1
				cfg.QueueDepth = 4096
				engine, err := NewStreamEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan struct{})
				go func() {
					defer close(done)
					for range engine.Actions() {
					}
				}()
				for _, e := range events {
					if err := engine.Ingest(e); err != nil {
						b.Fatal(err)
					}
				}
				if err := engine.Close(); err != nil {
					b.Fatal(err)
				}
				<-done
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(h), "ns/event")
		})
	}
}

// mltreeBenchData is a seeded multi-class dataset shared by the mltree
// training/inference benchmarks (3 classes so the boosting backends fit
// several one-vs-rest arms).
var mltreeBenchData = sync.OnceValue(func() *mltree.Dataset {
	const classes, perClass, dims = 3, 400, 12
	r := xrand.New(99)
	ds := &mltree.Dataset{}
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			row := make([]float64, dims)
			for d := range row {
				row[d] = 3*float64((c+d)%classes) + r.Normal(0, 2.5)
			}
			ds.Features = append(ds.Features, row)
			ds.Labels = append(ds.Labels, c)
		}
	}
	return ds
})

// benchParallelisms runs fn at parallelism 1 and GOMAXPROCS (deduplicated on
// single-core hosts).
func benchParallelisms(b *testing.B, fn func(b *testing.B, parallelism int)) {
	seen := map[int]bool{}
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		if seen[p] {
			continue
		}
		seen[p] = true
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) { fn(b, p) })
	}
}

// BenchmarkForestFit measures Random Forest training cost on the shared
// dataset at 1 worker vs all cores.
func BenchmarkForestFit(b *testing.B) {
	ds := mltreeBenchData()
	benchParallelisms(b, func(b *testing.B, parallelism int) {
		for i := 0; i < b.N; i++ {
			f := mltree.NewForest(mltree.ForestConfig{
				NumTrees: 20, Tree: mltree.TreeConfig{MaxDepth: 10},
				Parallelism: parallelism, Seed: 5,
			})
			if err := f.Fit(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHistGBDTFit measures histogram-GBDT training cost (multi-class,
// so arms fit concurrently) at 1 worker vs all cores.
func BenchmarkHistGBDTFit(b *testing.B) {
	ds := mltreeBenchData()
	benchParallelisms(b, func(b *testing.B, parallelism int) {
		for i := 0; i < b.N; i++ {
			h := mltree.NewHistGBDT(mltree.HistGBDTConfig{
				Rounds: 20, Parallelism: parallelism, Seed: 5,
			})
			if err := h.Fit(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPredictBatch measures flat-tree batch inference over the whole
// dataset at 1 worker vs all cores.
func BenchmarkPredictBatch(b *testing.B) {
	ds := mltreeBenchData()
	f := mltree.NewForest(mltree.ForestConfig{
		NumTrees: 20, Tree: mltree.TreeConfig{MaxDepth: 10}, Seed: 5,
	})
	if err := f.Fit(ds); err != nil {
		b.Fatal(err)
	}
	benchParallelisms(b, func(b *testing.B, parallelism int) {
		f.Config.Parallelism = parallelism
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := f.PredictBatch(ds.Features); len(got) != ds.NumSamples() {
				b.Fatal("short batch")
			}
		}
		b.ReportMetric(float64(ds.NumSamples()*b.N)/b.Elapsed().Seconds(), "rows/sec")
	})
}

// BenchmarkStability aggregates the headline comparison over three seeds.
func BenchmarkStability(b *testing.B) {
	p := benchParams()
	p.Spec.BenignBanks = 0
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStability(p, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratorValidation cross-checks the two generation paths.
func BenchmarkGeneratorValidation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGeneratorValidation(p, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkBinaryIngest replays the shared fleet log through the binary
// wire path: pre-encoded frames are decoded with a reused FrameDecoder and
// moved into the engine whole-frame via IngestBatch — the exact hot loop of
// POST /v1/events.bin. walDir != "" adds the durable path (group-commit WAL,
// one AppendBatch per frame).
func benchmarkBinaryIngest(b *testing.B, shards int, durable bool) {
	pipe, events := streamBenchState()
	var encBuf bytes.Buffer
	enc := mcelog.NewFrameEncoder(&encBuf, 1024)
	for _, e := range events {
		if err := enc.Add(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	raw := encBuf.Bytes()
	dec := mcelog.NewFrameDecoder(nil)
	batch := make([]Event, 0, 1024)
	base := b.TempDir()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultStreamConfig(pipe)
		cfg.Shards = shards
		cfg.QueueDepth = 4096
		if durable {
			cfg.Durability = stream.DurabilityConfig{
				Dir:  filepath.Join(base, fmt.Sprintf("run%d", i)),
				Sync: wal.SyncAlways, // group commit on by default
			}
		}
		engine, err := NewStreamEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range engine.Actions() {
			}
		}()
		dec.Reset(bytes.NewReader(raw))
		for {
			fr, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
			for j, n := 0, fr.Len(); j < n; j++ {
				batch = append(batch, fr.Event(j))
			}
			if acc, _, err := engine.IngestBatch(batch); err != nil || acc != len(batch) {
				b.Fatalf("IngestBatch = (%d, %v), want %d", acc, err, len(batch))
			}
		}
		if err := engine.Close(); err != nil {
			b.Fatal(err)
		}
		<-done
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(len(events)*b.N), "ns/event")
}

// BenchmarkBinaryIngest is the end-to-end binary ingest benchmark: decode +
// batch-enqueue + session inference, in memory and with the group-commit
// WAL. Decode cost alone (the zero-allocation bound) is pinned separately
// by BenchmarkWireFrameDecode in internal/mcelog.
func BenchmarkBinaryIngest(b *testing.B) {
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, n := range shardCounts {
		if seen[n] {
			continue
		}
		seen[n] = true
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) { benchmarkBinaryIngest(b, n, false) })
	}
	b.Run("durable/group-commit", func(b *testing.B) { benchmarkBinaryIngest(b, runtime.GOMAXPROCS(0), true) })
}
