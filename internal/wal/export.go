package wal

// Record is one journal record lifted out of its segment framing, as
// returned by ExportRange. Handoff bundles carry these across nodes: the
// LSN namespace is the SOURCE journal's — a receiver must treat it as an
// opaque watermark (compare against the source snapshot's per-session
// watermarks), never mix it with its own journal's LSNs.
type Record struct {
	// LSN is the record's position in the source journal.
	LSN uint64
	// Payload is a copy of the record body (safe to retain).
	Payload []byte
}

// ExportRange returns every record with from <= LSN < to, in LSN order.
// It is the segment-range read underneath cluster session handoff: a
// snapshot plus ExportRange(floor, NextLSN()) is a complete, portable
// image of the journal's state. Payloads are copied, so the result stays
// valid after the WAL is closed. Runs concurrently with Append (records
// past the horizon captured at call time are excluded).
func (w *WAL) ExportRange(from, to uint64) ([]Record, error) {
	var out []Record
	err := w.Replay(func(lsn uint64, payload []byte) error {
		if lsn < from || lsn >= to {
			return nil
		}
		out = append(out, Record{LSN: lsn, Payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
