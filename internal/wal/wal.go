// Package wal is the durability substrate of the online prediction
// engine: a segmented append-only journal of CRC-framed records plus
// versioned, checksummed snapshot files. Together they give the engine a
// crash-recovery contract — restore the latest valid snapshot, replay the
// journal suffix — whose result is bit-identical to an uninterrupted run.
//
// Journal layout: a directory of segment files named wal-<firstLSN>.seg.
// Each segment starts with a small header and holds a run of framed
// records with strictly increasing log sequence numbers (LSNs):
//
//	segment: magic "CWAL" | uint16 version | uint16 reserved
//	record:  uint32 payload length | uint32 CRC-32C over (lsn ‖ payload)
//	         | uint64 lsn | payload
//
// All integers are little-endian. The CRC makes torn or corrupted
// records detectable; on Open the final segment's tail is scanned and any
// incomplete record — the footprint of a crash mid-append — is truncated
// away. A corrupt record in the interior of the journal (not the tail) is
// a hard error: it means acknowledged data was lost, which recovery must
// surface rather than silently skip.
//
// Durability is governed by a SyncPolicy: SyncAlways fsyncs every append
// (every acknowledged record survives power loss), SyncInterval bounds
// the unsynced window, SyncNever leaves flushing to the OS. Retention is
// snapshot-driven: once a snapshot covers every record below an LSN,
// TruncateBefore deletes the segments wholly beneath it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"cordial/internal/obs"
)

// Framing and segment constants.
const (
	segMagic    = "CWAL"
	segVersion  = 1
	segHdrSize  = 8
	recHdrSize  = 16 // u32 len | u32 crc | u64 lsn
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	segNameFmt  = segPrefix + "%016x" + segSuffix
	tmpSuffix   = ".tmp"
	firstRecLSN = 1
)

// MaxRecordBytes caps one record's payload; larger appends (and decoded
// lengths, which on corrupt input are attacker-controlled) are rejected.
const MaxRecordBytes = 16 << 20

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64
// and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record is on
	// stable storage before Append returns.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when the configured interval has elapsed since
	// the last sync (checked on each append), and on rotation and Close.
	SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever
)

// String names the policy (the -fsync flag values of cordial-serve).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses a policy name as accepted on the command line.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
	}
}

// Options configures a WAL. The zero value is serviceable: OSFS, 8 MiB
// segments, fsync on every append.
type Options struct {
	// FS is the filesystem; nil means OSFS.
	FS FS
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size. Zero means 8 MiB.
	SegmentBytes int64
	// Sync selects the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the flush interval under SyncInterval (default
	// 100ms).
	SyncInterval time.Duration
	// GroupCommit, under SyncAlways, lets concurrent appenders share one
	// fsync: the first appender to commit becomes the window leader,
	// briefly yields so racing appenders can stage their records, then
	// performs one buffered write and one fsync covering the whole
	// window. Every ack is still released only after the fsync that
	// covers it — append-before-ack is unchanged, only the fsync count
	// drops. Ignored under the other policies (which already batch).
	GroupCommit bool
	// Metrics, when non-nil, receives the journal's instruments
	// (cordial_wal_*): append/fsync counts, error counts and duration
	// histograms, plus live-segment and next-LSN gauges. The registry
	// should live no longer than the WAL: gauges read from this instance.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	return o
}

// ErrCorrupt reports an invalid record in the interior of the journal —
// data loss that recovery must surface, not skip.
var ErrCorrupt = errors.New("wal: corrupt record in journal interior")

// walMetrics is the journal's instrument set; the zero value (all nil) is
// fully operational because obs instruments are nil-safe — no branches on
// the append path.
type walMetrics struct {
	appends      *obs.Counter
	appendErrors *obs.Counter
	appendDur    *obs.Histogram
	fsyncs       *obs.Counter
	fsyncErrors  *obs.Counter
	fsyncDur     *obs.Histogram
}

// register creates the journal's instruments in reg and the scrape-time
// gauges over w.
func (m *walMetrics) register(reg *obs.Registry, w *WAL) {
	m.appends = reg.Counter("cordial_wal_appends_total",
		"Records appended to the journal since this process opened it.")
	m.appendErrors = reg.Counter("cordial_wal_append_errors_total",
		"Journal appends that failed (write or fsync error); the record was rejected.")
	m.appendDur = reg.Histogram("cordial_wal_append_seconds",
		"Journal append latency including any fsync the policy requires.", nil)
	m.fsyncs = reg.Counter("cordial_wal_fsyncs_total",
		"Journal fsync calls (per-append under always, batched under interval).")
	m.fsyncErrors = reg.Counter("cordial_wal_fsync_errors_total",
		"Journal fsync calls that returned an error.")
	m.fsyncDur = reg.Histogram("cordial_wal_fsync_seconds",
		"Journal fsync latency.", nil)
	reg.GaugeFunc("cordial_wal_segments",
		"Live journal segment files.", func() float64 { return float64(w.Segments()) })
	reg.GaugeFunc("cordial_wal_next_lsn",
		"LSN the next journal append will receive.", func() float64 { return float64(w.NextLSN()) })
}

// WAL is an open journal. Append is safe for concurrent use; Replay and
// TruncateBefore may run concurrently with Append.
type WAL struct {
	dir     string
	opts    Options
	metrics walMetrics

	mu       sync.Mutex
	f        File   // current segment
	size     int64  // current segment size, staged bytes included
	buf      []byte // staged frames not yet written to f
	window   *commitWindow
	nextLSN  uint64
	segments []uint64 // first LSN of each live segment, ascending
	lastSync time.Time
	appended uint64
	closed   bool
}

// commitWindow is one group-commit round: the leader flushes and fsyncs
// every record staged while it was open, then publishes the shared
// verdict by closing done.
type commitWindow struct {
	done chan struct{}
	err  error
}

// segName returns the filename for a segment starting at lsn.
func segName(lsn uint64) string { return fmt.Sprintf(segNameFmt, lsn) }

// parseSegName extracts the first LSN from a segment filename.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var lsn uint64
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	if _, err := fmt.Sscanf(hex, "%016x", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// Open opens (or creates) the journal in dir, repairing a torn tail: the
// final segment is scanned record by record and truncated after the last
// record whose frame and checksum are intact. A final segment too damaged
// to hold even a header (a crash during rotation) is removed entirely.
func Open(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, nextLSN: firstRecLSN, lastSync: time.Now()}
	if opts.Metrics != nil {
		w.metrics.register(opts.Metrics, w)
	}

	segs, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	// Repair from the tail: drop unreadable trailing segments (crash
	// during rotation), truncate the torn tail of the last readable one.
	for len(segs) > 0 {
		last := segs[len(segs)-1]
		lastLSN, validSize, err := scanSegment(opts.FS, filepath.Join(dir, segName(last)), last)
		if err != nil {
			return nil, err
		}
		if validSize < 0 {
			// Header missing or mangled: the segment holds nothing
			// recoverable. Remove it and retry with its predecessor.
			if err := opts.FS.Remove(filepath.Join(dir, segName(last))); err != nil {
				return nil, fmt.Errorf("wal: removing damaged segment: %w", err)
			}
			segs = segs[:len(segs)-1]
			continue
		}
		f, err := opts.FS.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: opening segment: %w", err)
		}
		if err := f.Truncate(validSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seeking segment end: %w", err)
		}
		w.f, w.size, w.segments = f, validSize, segs
		if lastLSN > 0 {
			w.nextLSN = lastLSN + 1
		} else {
			w.nextLSN = last
		}
		return w, nil
	}
	// Fresh journal.
	if err := w.openSegment(firstRecLSN); err != nil {
		return nil, err
	}
	return w, nil
}

// listSegments returns the first-LSNs of the directory's segments,
// ascending. Stray temp files from an interrupted snapshot write are
// removed.
func listSegments(fs FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing dir: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			_ = fs.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if lsn, ok := parseSegName(e.Name()); ok {
			segs = append(segs, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// scanSegment walks one segment validating every frame. It returns the
// highest valid LSN (0 if the segment holds no records) and the byte
// offset just past the last valid record — the truncation point for torn
// tails. validSize < 0 means the header itself is unreadable.
func scanSegment(fs FS, path string, firstLSN uint64) (lastLSN uint64, validSize int64, err error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: opening segment for scan: %w", err)
	}
	defer f.Close()
	var hdr [segHdrSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, -1, nil // too short for a header: unrecoverable segment
	}
	if string(hdr[:4]) != segMagic || binary.LittleEndian.Uint16(hdr[4:6]) != segVersion {
		return 0, -1, nil
	}
	offset := int64(segHdrSize)
	for {
		lsn, payload, n, ok := readRecord(f)
		if !ok {
			return lastLSN, offset, nil
		}
		_ = payload
		lastLSN = lsn
		offset += n
	}
}

// readRecord reads one frame from r. ok is false on EOF, a short read, a
// CRC mismatch or an implausible length — every way a tail can be torn.
func readRecord(r io.Reader) (lsn uint64, payload []byte, size int64, ok bool) {
	var hdr [recHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, false
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	lsn = binary.LittleEndian.Uint64(hdr[8:16])
	if length > MaxRecordBytes {
		return 0, nil, 0, false
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, false
	}
	sum := crc32.Update(0, crcTable, hdr[8:16])
	sum = crc32.Update(sum, crcTable, payload)
	if sum != crc {
		return 0, nil, 0, false
	}
	return lsn, payload, int64(recHdrSize) + int64(length), true
}

// openSegment creates and syncs a fresh segment starting at lsn and makes
// it current.
func (w *WAL) openSegment(lsn uint64) error {
	path := filepath.Join(w.dir, segName(lsn))
	f, err := w.opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [segHdrSize]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment header: %w", err)
	}
	w.f, w.size = f, segHdrSize
	w.segments = append(w.segments, lsn)
	return nil
}

// Append frames and writes one record, returning its LSN. Under
// SyncAlways the record is on stable storage when Append returns; a sync
// or write failure is returned to the caller and the record must be
// considered lost (the torn frame will be truncated on the next Open).
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds max %d", len(payload), MaxRecordBytes)
	}
	t0 := time.Now()
	lsn, err := w.append(payload)
	w.metrics.appendDur.ObserveSince(t0)
	if err != nil {
		w.metrics.appendErrors.Inc()
	} else {
		w.metrics.appends.Inc()
	}
	return lsn, err
}

func (w *WAL) append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: append to closed journal")
	}
	lsn, err := w.stageLocked(payload)
	if err != nil {
		return 0, err
	}
	if err := w.commitLocked(); err != nil {
		// Outside a group-commit window no one else staged after us, so
		// the LSN can be reused; inside one, racing appenders may already
		// hold later LSNs and the failed window leaves a gap instead.
		if w.nextLSN == lsn+1 {
			w.nextLSN = lsn
		}
		return 0, err
	}
	w.appended++
	return lsn, nil
}

// AppendBatch journals a contiguous run of fixed-size records (the batch
// ingest path: one frame's worth of decoded events) under consecutive
// LSNs: record i of n gets first+i. The whole batch is staged, written
// with one buffered write, and — policy permitting — made durable by one
// fsync before AppendBatch returns, so acknowledging the batch after a
// nil return preserves append-before-ack for every record in it. An
// error means none of the batch's records may be considered durable.
func (w *WAL) AppendBatch(records []byte, recordSize int) (first uint64, err error) {
	if recordSize <= 0 || recordSize > MaxRecordBytes {
		return 0, fmt.Errorf("wal: invalid batch record size %d", recordSize)
	}
	if len(records)%recordSize != 0 {
		return 0, fmt.Errorf("wal: batch of %d bytes is not a whole number of %d-byte records", len(records), recordSize)
	}
	n := len(records) / recordSize
	if n == 0 {
		return 0, nil
	}
	t0 := time.Now()
	first, err = w.appendBatch(records, recordSize, n)
	w.metrics.appendDur.ObserveSince(t0)
	if err != nil {
		w.metrics.appendErrors.Add(uint64(n))
	} else {
		w.metrics.appends.Add(uint64(n))
	}
	return first, err
}

func (w *WAL) appendBatch(records []byte, recordSize, n int) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: append to closed journal")
	}
	first := w.nextLSN
	for i := 0; i < n; i++ {
		if _, err := w.stageLocked(records[i*recordSize : (i+1)*recordSize]); err != nil {
			w.nextLSN = first
			return 0, err
		}
	}
	if err := w.commitLocked(); err != nil {
		if w.nextLSN == first+uint64(n) {
			w.nextLSN = first
		}
		return 0, err
	}
	w.appended += uint64(n)
	return first, nil
}

// stageLocked frames payload under the next LSN into the staging buffer,
// rotating segments first if the current one is full. Staged frames are
// invisible to readers until flushLocked writes them; every exit path
// that reads or seals the file flushes first. Callers hold w.mu.
func (w *WAL) stageLocked(payload []byte) (uint64, error) {
	if w.size >= w.opts.SegmentBytes && w.size > segHdrSize {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := w.nextLSN
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	crcOff := len(w.buf)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, 0) // CRC patched below
	lsnOff := len(w.buf)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, lsn)
	w.buf = append(w.buf, payload...)
	sum := crc32.Update(0, crcTable, w.buf[lsnOff:lsnOff+8])
	sum = crc32.Update(sum, crcTable, payload)
	binary.LittleEndian.PutUint32(w.buf[crcOff:], sum)
	w.size += int64(recHdrSize + len(payload))
	w.nextLSN = lsn + 1
	return lsn, nil
}

// flushLocked writes every staged frame to the current segment in one
// write. On a write error the unwritten remainder is dropped — their
// appenders are told the append failed, and any torn bytes are truncated
// by the next Open. Callers hold w.mu.
func (w *WAL) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.f.Write(w.buf)
	if err != nil {
		w.size -= int64(len(w.buf) - n)
		w.buf = w.buf[:0]
		return fmt.Errorf("wal: appending records: %w", err)
	}
	w.buf = w.buf[:0]
	return nil
}

// commitLocked makes the staged frames durable per the sync policy.
// Callers hold w.mu; under group commit the lock is briefly released to
// gather a window (see commitWindowLocked) and re-held on return.
func (w *WAL) commitLocked() error {
	switch w.opts.Sync {
	case SyncAlways:
		if w.opts.GroupCommit {
			return w.commitWindowLocked()
		}
		if err := w.flushLocked(); err != nil {
			return err
		}
		if err := w.syncTimed(); err != nil {
			return fmt.Errorf("wal: syncing record: %w", err)
		}
		return nil
	case SyncInterval:
		if err := w.flushLocked(); err != nil {
			return err
		}
		if time.Since(w.lastSync) >= w.opts.SyncInterval {
			if err := w.syncTimed(); err != nil {
				return fmt.Errorf("wal: syncing record: %w", err)
			}
			w.lastSync = time.Now()
		}
		return nil
	default: // SyncNever: write through, let the OS flush
		return w.flushLocked()
	}
}

// commitWindowLocked is the SyncAlways group-commit protocol. The first
// committer becomes the window leader: it opens a window, yields the
// lock so concurrently arriving appenders can stage their records, then
// flushes and fsyncs everything staged and publishes the verdict.
// Later committers that find a window open are followers — their records
// were staged under the lock while the window was open, so the leader's
// flush and fsync necessarily cover them; they block until the window
// resolves and return its verdict. Either way, a nil return means the
// caller's records are on stable storage. Callers hold w.mu, which is
// released while waiting and re-held on return.
func (w *WAL) commitWindowLocked() error {
	if win := w.window; win != nil {
		w.mu.Unlock()
		<-win.done
		w.mu.Lock()
		return win.err
	}
	win := &commitWindow{done: make(chan struct{})}
	w.window = win
	w.mu.Unlock()
	runtime.Gosched() // give racing appenders a beat to join the window
	w.mu.Lock()
	w.window = nil
	err := w.flushLocked()
	if err == nil {
		if serr := w.syncTimed(); serr != nil {
			err = fmt.Errorf("wal: syncing record: %w", serr)
		}
	}
	win.err = err
	close(win.done)
	return err
}

// syncTimed fsyncs the current segment under the journal's fsync
// instruments. Callers hold w.mu.
func (w *WAL) syncTimed() error {
	t0 := time.Now()
	err := w.f.Sync()
	w.metrics.fsyncDur.ObserveSince(t0)
	w.metrics.fsyncs.Inc()
	if err != nil {
		w.metrics.fsyncErrors.Inc()
	}
	return err
}

// rotateLocked seals the current segment (staged frames flushed first —
// they carry LSNs below the new segment's first) and opens the next.
func (w *WAL) rotateLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	if err := w.syncTimed(); err != nil {
		return fmt.Errorf("wal: syncing sealed segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: closing sealed segment: %w", err)
	}
	return w.openSegment(w.nextLSN)
}

// Sync flushes the current segment (staged frames included) to stable
// storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.f == nil {
		return nil
	}
	if err := w.flushLocked(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := w.syncTimed(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.lastSync = time.Now()
	return nil
}

// NextLSN returns the LSN the next Append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Appended returns the number of records appended since Open.
func (w *WAL) Appended() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Segments returns the number of live segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segments)
}

// Replay calls fn for every record in the journal in LSN order. A record
// that fails validation is ErrCorrupt: Open has already truncated the
// torn tail, so nothing invalid can legitimately remain. fn's payload is
// only valid for the duration of the call.
func (w *WAL) Replay(fn func(lsn uint64, payload []byte) error) error {
	w.mu.Lock()
	// Replay reads the segment files, so records still sitting in the
	// staging buffer must be written out first or the tail would be
	// invisible (ExportRange — live cluster handoff — rides on this too).
	if w.f != nil && !w.closed {
		if err := w.flushLocked(); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	segs := append([]uint64(nil), w.segments...)
	valid := w.nextLSN
	w.mu.Unlock()
	for _, first := range segs {
		path := filepath.Join(w.dir, segName(first))
		f, err := w.opts.FS.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return fmt.Errorf("wal: opening segment for replay: %w", err)
		}
		err = replaySegment(f, valid, fn)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's records through fn. Records at or
// past the valid horizon (appends racing the replay) are skipped.
func replaySegment(f File, horizon uint64, fn func(lsn uint64, payload []byte) error) error {
	var hdr [segHdrSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("wal: %w: segment header unreadable", ErrCorrupt)
	}
	if string(hdr[:4]) != segMagic || binary.LittleEndian.Uint16(hdr[4:6]) != segVersion {
		return fmt.Errorf("wal: %w: bad segment magic/version", ErrCorrupt)
	}
	for {
		lsn, payload, _, ok := readRecord(f)
		if !ok {
			// Distinguish clean EOF from mid-segment corruption: try to
			// read one more byte.
			var b [1]byte
			if _, err := f.Read(b[:]); err == io.EOF {
				return nil
			}
			return ErrCorrupt
		}
		if lsn >= horizon {
			return nil
		}
		if err := fn(lsn, payload); err != nil {
			return err
		}
	}
}

// TruncateBefore deletes every segment whose records all have LSN < lsn
// (the retention step after a snapshot covering those records). The
// current segment is never deleted.
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var kept []uint64
	for i, first := range w.segments {
		last := i == len(w.segments)-1
		// Segment i's records are all below the next segment's first LSN.
		if !last && w.segments[i+1] <= lsn {
			if err := w.opts.FS.Remove(filepath.Join(w.dir, segName(first))); err != nil {
				return fmt.Errorf("wal: removing retired segment: %w", err)
			}
			continue
		}
		kept = append(kept, first)
	}
	w.segments = kept
	return nil
}

// Close syncs and closes the journal.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	if err := w.flushLocked(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: final flush: %w", err)
	}
	if err := w.syncTimed(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: final sync: %w", err)
	}
	return w.f.Close()
}
