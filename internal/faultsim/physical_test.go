package faultsim

import (
	"testing"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

func TestPhysicalConfigValidate(t *testing.T) {
	if err := DefaultPhysicalConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (PhysicalConfig{ScrubInterval: 0, DemandRate: 1}).Validate(); err == nil {
		t.Error("zero scrub interval accepted")
	}
	if err := (PhysicalConfig{ScrubInterval: 1, DemandRate: 0}).Validate(); err == nil {
		t.Error("zero demand rate accepted")
	}
}

func TestGeneratePhysicalBasics(t *testing.T) {
	g := newGen(t, 41)
	bank := hbm.BankAddress{Node: 2}
	for _, p := range []Pattern{PatternSingleRow, PatternScattered} {
		bf, err := g.GeneratePhysical(bank, p, DefaultPhysicalConfig())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(bf.UERRows) == 0 || len(bf.Events) == 0 {
			t.Fatalf("%v: empty result", p)
		}
		// Every event is a classified loggable class at a valid address.
		for _, e := range bf.Events {
			if err := e.Validate(hbm.DefaultGeometry); err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			if !e.Addr.SameBank(bank) {
				t.Fatalf("%v: event outside bank", p)
			}
		}
		// UER ground truth matches logged UER events.
		loggedUER := make(map[int]bool)
		for _, e := range bf.Events {
			if e.Class == ecc.ClassUER {
				loggedUER[e.Addr.Row] = true
			}
		}
		for _, row := range bf.UERRows {
			if !loggedUER[row] {
				t.Fatalf("%v: ground-truth UER row %d never logged", p, row)
			}
		}
		// First-UER times are non-decreasing.
		for i := 1; i < len(bf.UERTimes); i++ {
			if bf.UERTimes[i].Before(bf.UERTimes[i-1]) {
				t.Fatalf("%v: UER times out of order", p)
			}
		}
	}
}

func TestPhysicalUERTimesMatchFirstDemandHit(t *testing.T) {
	g := newGen(t, 43)
	bf, err := g.GeneratePhysical(hbm.BankAddress{}, PatternSingleRow, DefaultPhysicalConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range bf.UERRows {
		var first *int
		for j, e := range bf.Events {
			if e.Class == ecc.ClassUER && e.Addr.Row == row {
				first = &j
				break
			}
		}
		if first == nil {
			t.Fatalf("row %d has no UER event", row)
		}
		if !bf.Events[*first].Time.Equal(bf.UERTimes[i]) {
			t.Fatalf("row %d first UER at %v, truth says %v", row, bf.Events[*first].Time, bf.UERTimes[i])
		}
	}
}

func TestPhysicalProducesUEOsFromScrubs(t *testing.T) {
	// With patrol scrubbing enabled, some uncorrectable defects are found
	// by the scrubber before a demand read — those must log as UEO.
	g := newGen(t, 45)
	ueos := 0
	for trial := 0; trial < 10; trial++ {
		bf, err := g.GeneratePhysical(hbm.BankAddress{}, PatternScattered, DefaultPhysicalConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range bf.Events {
			if e.Class == ecc.ClassUEO {
				ueos++
			}
		}
	}
	if ueos == 0 {
		t.Fatal("patrol scrubbing never surfaced a UEO")
	}
}

func TestPhysicalMatchesFastPathSpatially(t *testing.T) {
	// The physical path must produce the same spatial structure as the
	// calibrated fast path: single-row clusters stay tight.
	g := newGen(t, 47)
	for trial := 0; trial < 10; trial++ {
		bf, err := g.GeneratePhysical(hbm.BankAddress{}, PatternSingleRow, DefaultPhysicalConfig())
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := bf.UERRows[0], bf.UERRows[0]
		for _, r := range bf.UERRows {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		if hi-lo > 1024 {
			t.Fatalf("physical single-row cluster spans %d rows", hi-lo)
		}
	}
}

func TestPhysicalFeaturesCompatibleWithPipelineInputs(t *testing.T) {
	// Logs from the physical path feed the same feature extractors.
	g := newGen(t, 49)
	bf, err := g.GeneratePhysical(hbm.BankAddress{}, PatternSingleRow, DefaultPhysicalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if bf.Class() != ClassSingleRow {
		t.Fatalf("class = %v", bf.Class())
	}
	if bf.Cause == 0 {
		t.Fatal("no cause assigned")
	}
}

func TestPhysicalDeterministicPerSeed(t *testing.T) {
	mk := func() *BankFault {
		g, err := NewGenerator(DefaultConfig(hbm.DefaultGeometry), xrand.New(51))
		if err != nil {
			t.Fatal(err)
		}
		bf, err := g.GeneratePhysical(hbm.BankAddress{}, PatternSingleRow, DefaultPhysicalConfig())
		if err != nil {
			t.Fatal(err)
		}
		return bf
	}
	a, b := mk(), mk()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func BenchmarkGeneratePhysical(b *testing.B) {
	g, err := NewGenerator(DefaultConfig(hbm.DefaultGeometry), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	pcfg := DefaultPhysicalConfig()
	for i := 0; i < b.N; i++ {
		if _, err := g.GeneratePhysical(hbm.BankAddress{}, PatternSingleRow, pcfg); err != nil {
			b.Fatal(err)
		}
	}
}
