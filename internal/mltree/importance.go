package mltree

import (
	"fmt"
	"sort"

	"cordial/internal/xrand"
)

// Importance is one feature's importance score.
type Importance struct {
	Feature int
	Name    string
	Score   float64
}

// sortImportances orders scores descending, breaking ties by feature index.
func sortImportances(imps []Importance) {
	sort.Slice(imps, func(i, j int) bool {
		if imps[i].Score != imps[j].Score {
			return imps[i].Score > imps[j].Score
		}
		return imps[i].Feature < imps[j].Feature
	})
}

// splitCounter visits a fitted tree and counts split occurrences per
// feature, weighted by the subtree's share of the root (an approximation of
// split-gain importance that needs no stored gain values).
func splitCounts(root *treeNode, counts map[int]float64, weight float64) {
	if root == nil || root.isLeaf() {
		return
	}
	counts[root.Feature] += weight
	splitCounts(root.Left, counts, weight/2)
	splitCounts(root.Right, counts, weight/2)
}

// SplitImportance returns per-feature importance for a fitted model, based
// on depth-weighted split frequency: splits near the root matter more.
// Scores are normalised to sum to 1. names may be nil.
func SplitImportance(model Classifier, names []string) ([]Importance, error) {
	counts := make(map[int]float64)
	switch m := model.(type) {
	case *Tree:
		splitCounts(m.root, counts, 1)
	case *Forest:
		for _, t := range m.trees {
			splitCounts(t.root, counts, 1)
		}
	case *GBDT:
		for _, b := range m.boosters {
			for _, t := range b.Trees {
				splitCounts(t, counts, 1)
			}
		}
	case *HistGBDT:
		for _, b := range m.boosters {
			for _, t := range b.Trees {
				splitCounts(t, counts, 1)
			}
		}
	default:
		return nil, fmt.Errorf("mltree: cannot compute importance for %T", model)
	}
	total := 0.0
	for _, v := range counts {
		total += v
	}
	if total == 0 {
		return nil, fmt.Errorf("mltree: model has no splits")
	}
	out := make([]Importance, 0, len(counts))
	for f, v := range counts {
		imp := Importance{Feature: f, Score: v / total}
		if names != nil && f < len(names) {
			imp.Name = names[f]
		}
		out = append(out, imp)
	}
	sortImportances(out)
	return out, nil
}

// PermutationImportance measures each feature's contribution as the drop in
// accuracy on ds when that feature's column is randomly permuted (breaking
// its relationship with the label). Features the model ignores score ~0.
// It runs rounds permutations per feature and averages.
func PermutationImportance(model Classifier, ds *Dataset, rounds int, rng *xrand.RNG) ([]Importance, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = 3
	}
	if rng == nil {
		return nil, fmt.Errorf("mltree: nil RNG")
	}
	base := datasetAccuracy(model, ds)
	n := ds.NumSamples()
	numFeatures := ds.NumFeatures()

	// Work on a mutable copy of the feature matrix.
	work := make([][]float64, n)
	for i, row := range ds.Features {
		work[i] = append([]float64(nil), row...)
	}
	probe := &Dataset{Features: work, Labels: ds.Labels, Names: ds.Names}

	out := make([]Importance, 0, numFeatures)
	saved := make([]float64, n)
	for f := 0; f < numFeatures; f++ {
		for i := range work {
			saved[i] = work[i][f]
		}
		drop := 0.0
		for r := 0; r < rounds; r++ {
			perm := rng.Perm(n)
			for i := range work {
				work[i][f] = saved[perm[i]]
			}
			drop += base - datasetAccuracy(model, probe)
		}
		for i := range work {
			work[i][f] = saved[i]
		}
		imp := Importance{Feature: f, Score: drop / float64(rounds)}
		if ds.Names != nil {
			imp.Name = ds.Names[f]
		}
		out = append(out, imp)
	}
	sortImportances(out)
	return out, nil
}

func datasetAccuracy(model Classifier, ds *Dataset) float64 {
	correct := 0
	for i, x := range ds.Features {
		if Predict(model, x) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.NumSamples())
}
