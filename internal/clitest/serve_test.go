package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuf is a concurrency-safe output capture: the daemon's reader
// goroutine appends while test assertions read.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// serveProc is a running cordial-serve under test.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
	out  *lockedBuf
}

// startServe launches cordial-serve on an ephemeral port with demo-mode
// defaults; extraArgs append to (and may override) them.
func startServe(t *testing.T, bin string, extraArgs ...string) *serveProc {
	t.Helper()
	args := append([]string{
		"-selftrain", "-seed", "7", "-train-banks", "50", "-trees", "10",
		"-addr", "127.0.0.1:0",
	}, extraArgs...)
	return startDaemon(t, filepath.Join(bin, "cordial-serve"), args...)
}

// startDaemon launches any of the repo's daemons (cordial-serve,
// cordial-control, cordial-router) and waits for its resolved-address log
// line (slog text format: msg=listening addr=127.0.0.1:NNNNN ...).
func startDaemon(t *testing.T, path string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(path, args...)
	out := &lockedBuf{}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, out: out}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(p.out, line)
			if !strings.Contains(line, "msg=listening") {
				continue
			}
			if _, rest, ok := strings.Cut(line, "addr="); ok {
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					select {
					case addrc <- strings.Trim(fields[0], `"`):
					default:
					}
				}
			}
		}
	}()
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	// Self-training dominates startup; allow generous slack on slow CI.
	select {
	case p.addr = <-addrc:
	case <-time.After(3 * time.Minute):
		t.Fatalf("%s never reported its address; output:\n%s", filepath.Base(path), p.out)
	}
	return p
}

func (p *serveProc) url(path string) string { return "http://" + p.addr + path }

// postBody POSTs raw bytes to /v1/events and decodes the result.
func (p *serveProc) postBody(t *testing.T, body []byte) map[string]any {
	t.Helper()
	resp, err := http.Post(p.url("/v1/events"), "application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/events = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func (p *serveProc) getJSON(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(p.url(path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestCLIServeEndToEnd drives the daemon over a localhost port: JSONL
// ingest of a generated fleet log, session inspection, stats, action
// retrieval, malformed-batch resilience, a mid-batch disconnect, and
// graceful SIGTERM shutdown with a drain report.
func TestCLIServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and trains a model")
	}
	bin := buildAll(t)
	work := t.TempDir()

	// A JSONL fleet log for ingestion.
	logPath := filepath.Join(work, "fleet.jsonl")
	out := run(t, bin, "cordial-gen", "-seed", "9", "-uer-banks", "50",
		"-benign-banks", "60", "-log", logPath, "-format", "jsonl", "-truth", "")
	if !strings.Contains(out, "50 faulty banks") {
		t.Fatalf("gen output: %s", out)
	}
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(logBytes)), "\n")

	p := startServe(t, bin)

	// Readiness first — the stronger gate: 200 here means no degraded
	// sessions and a working journal, not merely "the process is up".
	var ready struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	if code := p.getJSON(t, "/readyz", &ready); code != http.StatusOK || !ready.Ready {
		t.Fatalf("readyz = %d (ready=%v reasons=%v)", code, ready.Ready, ready.Reasons)
	}
	// Liveness stays a separate, weaker probe.
	if code := p.getJSON(t, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// Ingest the whole month in one batch.
	res := p.postBody(t, logBytes)
	if int(res["accepted"].(float64)) != len(lines) {
		t.Fatalf("accepted %v of %d lines: %v", res["accepted"], len(lines), res)
	}

	// Wait until every event has flowed through its session.
	var stats map[string]any
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if code := p.getJSON(t, "/statsz", &stats); code != http.StatusOK {
			t.Fatalf("statsz = %d", code)
		}
		if stats["processed"] == stats["ingested"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never drained: %v", stats)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if int(stats["ingested"].(float64)) != len(lines) {
		t.Errorf("statsz ingested %v, want %d", stats["ingested"], len(lines))
	}
	if int(stats["sessionsLive"].(float64)) == 0 {
		t.Error("no live sessions after ingest")
	}

	// 50 faulty banks with a same-scale model: actions are expected.
	var acts struct {
		Actions []struct {
			Kind string `json:"kind"`
			Bank string `json:"bank"`
		} `json:"actions"`
	}
	if code := p.getJSON(t, "/v1/actions", &acts); code != http.StatusOK {
		t.Fatalf("actions = %d", code)
	}
	if len(acts.Actions) == 0 {
		t.Fatalf("no actions emitted; stats %v\noutput:\n%s", stats, p.out)
	}

	// Inspect the bank behind the first action.
	var sess struct {
		Bank   string `json:"bank"`
		Events int    `json:"events"`
	}
	if code := p.getJSON(t, "/v1/banks/"+acts.Actions[0].Bank, &sess); code != http.StatusOK {
		t.Fatalf("banks/{addr} = %d", code)
	}
	if sess.Events == 0 || sess.Bank != acts.Actions[0].Bank {
		t.Errorf("session %+v for bank %s", sess, acts.Actions[0].Bank)
	}
	// Unknown bank and garbage address.
	if code := p.getJSON(t, "/v1/banks/n127.u7.h1.s1.c7.p1.g3.b3.r0.col0", nil); code != http.StatusNotFound {
		t.Errorf("unknown bank = %d", code)
	}
	if code := p.getJSON(t, "/v1/banks/junk", nil); code != http.StatusBadRequest {
		t.Errorf("junk bank = %d", code)
	}

	// Malformed batch: good line + garbage + bad class; daemon keeps the
	// good line and reports the rest.
	batch := lines[0] + "\nnot json\n" +
		`{"time":"2026-01-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col1","class":"??"}` + "\n"
	res = p.postBody(t, []byte(batch))
	if int(res["accepted"].(float64)) != 1 || int(res["rejected"].(float64)) != 2 {
		t.Fatalf("malformed batch result %v", res)
	}

	// Mid-batch disconnect: declare a large body, send half a line, slam
	// the connection. The daemon must stay healthy.
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /v1/events HTTP/1.1\r\nHost: %s\r\nContent-Length: 1000000\r\nContent-Type: application/jsonl\r\n\r\n", p.addr)
	fmt.Fprintf(conn, "%s\n{\"time\":\"2026-01-01T", lines[0])
	conn.Close()
	time.Sleep(100 * time.Millisecond)
	if code := p.getJSON(t, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz after disconnect = %d", code)
	}
	if code := p.getJSON(t, "/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz after disconnect = %d", code)
	}

	// One /metrics scrape through the real HTTP stack: parseable lines and
	// the ingest counter agreeing with /statsz.
	resp, err := http.Get(p.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	metricsBody := new(bytes.Buffer)
	if _, err := metricsBody.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	wantSeries := fmt.Sprintf("cordial_ingest_accepted_total %d\n", int(stats["ingested"].(float64)))
	if !strings.Contains(metricsBody.String(), wantSeries) {
		t.Errorf("metrics scrape missing %q", strings.TrimSpace(wantSeries))
	}

	// Graceful shutdown: SIGTERM → drain report → clean exit.
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\noutput:\n%s", err, p.out)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit on SIGTERM; output:\n%s", p.out)
	}
	time.Sleep(50 * time.Millisecond) // let the reader goroutine flush
	if !strings.Contains(p.out.String(), "drained") {
		t.Errorf("no drain report in output:\n%s", p.out)
	}
}

// waitDrained polls /statsz until processed catches up with ingested, and
// returns the final stats.
func (p *serveProc) waitDrained(t *testing.T) map[string]any {
	t.Helper()
	var stats map[string]any
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if code := p.getJSON(t, "/statsz", &stats); code != http.StatusOK {
			t.Fatalf("statsz = %d", code)
		}
		if stats["processed"] == stats["ingested"] {
			return stats
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never drained: %v", stats)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// actionSet fetches /v1/actions and reduces it to a comparable set of
// action keys (recovery re-emits actions at least once, so comparisons are
// on the deduplicated set).
func (p *serveProc) actionSet(t *testing.T) map[string]bool {
	t.Helper()
	var acts struct {
		Actions []struct {
			Kind  string `json:"kind"`
			Bank  string `json:"bank"`
			Rows  []int  `json:"rows"`
			Class string `json:"class"`
		} `json:"actions"`
	}
	if code := p.getJSON(t, "/v1/actions?limit=100000", &acts); code != http.StatusOK {
		t.Fatalf("actions = %d", code)
	}
	set := make(map[string]bool)
	for _, a := range acts.Actions {
		set[fmt.Sprintf("%s|%s|%v|%s", a.Kind, a.Bank, a.Rows, a.Class)] = true
	}
	return set
}

// TestCLIServeCrashRecovery is the crash-restart e2e: a daemon with a WAL
// directory is SIGKILLed mid-ingest; a new process over the same directory
// must report recovery, accept the rest of the log, and converge to exactly
// the action set of a daemon that never crashed.
func TestCLIServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and trains models")
	}
	bin := buildAll(t)
	work := t.TempDir()

	logPath := filepath.Join(work, "fleet.jsonl")
	run(t, bin, "cordial-gen", "-seed", "21", "-uer-banks", "30",
		"-benign-banks", "20", "-log", logPath, "-format", "jsonl", "-truth", "")
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(logBytes)), "\n")
	half := len(lines) / 2
	firstHalf := []byte(strings.Join(lines[:half], "\n") + "\n")
	secondHalf := []byte(strings.Join(lines[half:], "\n") + "\n")
	// The three daemons must share one model: same self-train seed, smaller
	// than the default to keep three trainings cheap.
	serveArgs := func(walDir string) []string {
		return []string{"-train-banks", "30", "-trees", "8",
			"-wal-dir", walDir, "-fsync", "never"}
	}

	// Reference: never crashes.
	ref := startServe(t, bin, serveArgs(filepath.Join(work, "wal-ref"))...)
	if res := ref.postBody(t, logBytes); int(res["accepted"].(float64)) != len(lines) {
		t.Fatalf("reference ingest %v", res)
	}
	ref.waitDrained(t)
	want := ref.actionSet(t)
	if len(want) == 0 {
		t.Fatal("reference daemon emitted no actions; fleet too small")
	}
	if err := ref.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := ref.cmd.Wait(); err != nil {
		t.Fatalf("reference exit: %v\noutput:\n%s", err, ref.out)
	}
	time.Sleep(50 * time.Millisecond)
	if !strings.Contains(ref.out.String(), "snapshot") {
		t.Errorf("no shutdown snapshot report in reference output:\n%s", ref.out)
	}

	// Victim: half the log, then SIGKILL — no drain, no snapshot, no
	// goodbye.
	walDir := filepath.Join(work, "wal-crash")
	p1 := startServe(t, bin, serveArgs(walDir)...)
	if res := p1.postBody(t, firstHalf); int(res["accepted"].(float64)) != half {
		t.Fatalf("first-half ingest %v", res)
	}
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()

	// Survivor: same directory; must recover the journal, then finish the
	// log and match the reference exactly.
	p2 := startServe(t, bin, serveArgs(walDir)...)
	time.Sleep(50 * time.Millisecond)
	if !strings.Contains(p2.out.String(), "recovered") {
		t.Errorf("no recovery report in output:\n%s", p2.out)
	}
	var stats map[string]any
	if code := p2.getJSON(t, "/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz = %d", code)
	}
	if stats["walEnabled"] != true {
		t.Errorf("statsz walEnabled = %v", stats["walEnabled"])
	}
	if got := int(stats["recoveredEvents"].(float64)); got != half {
		t.Errorf("recoveredEvents = %d, want %d", got, half)
	}
	if res := p2.postBody(t, secondHalf); int(res["accepted"].(float64)) != len(lines)-half {
		t.Fatalf("second-half ingest %v", res)
	}
	p2.waitDrained(t)
	got := p2.actionSet(t)
	for k := range want {
		if !got[k] {
			t.Errorf("recovered daemon missing action %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("recovered daemon invented action %s", k)
		}
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("recovered daemon exit: %v\noutput:\n%s", err, p2.out)
	}
}

// TestCLIServeFlagErrors covers startup validation.
func TestCLIServeFlagErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildAll(t)
	for _, args := range [][]string{
		{},                                 // neither -models nor -selftrain
		{"-models", "/nonexistent"},        // missing model file
		{"-selftrain", "-models", "x"},     // mutually exclusive
		{"-selftrain", "-policy", "bogus"}, // unknown ingest policy
		{"-selftrain", "-snapshot-interval", "5s"},             // snapshots need a WAL dir
		{"-selftrain", "-wal-dir", "x", "-fsync", "sometimes"}, // unknown fsync policy
		{"-selftrain", "-log-format", "xml"},                   // unknown log format
	} {
		cmd := exec.Command(filepath.Join(bin, "cordial-serve"), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("cordial-serve %v succeeded: %s", args, out)
		}
	}
}
