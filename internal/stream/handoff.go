package stream

import (
	"fmt"

	"cordial/internal/core"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/wal"
)

// Cluster session handoff moves per-bank session state between engines in
// different processes. The transfer unit is the pair the crash-recovery
// design already made portable:
//
//   - an engine snapshot payload (the exact format Snapshot persists),
//     restricted to the banks being moved for a live export; and
//   - a WAL record suffix (wal.Record, in the SOURCE journal's LSN
//     namespace) covering events the snapshot may not include.
//
// ImportSessions replays the suffix against the decoded sessions using the
// same per-session watermark rule boot-time recovery uses, then installs
// the sessions with their watermark reset to zero — imported state must
// never be compared against the LOCAL journal's LSNs, which live in a
// different namespace. A post-import Snapshot persists the adopted
// sessions before the importer acknowledges the handoff, preserving the
// append-before-ack contract end to end: state is only ever acknowledged
// once it is on the receiving node's stable storage.
//
// Ownership discipline is the caller's job (the cluster control plane):
// the source must stop accepting the moved banks before ExportSessions,
// and the importer must not accept them until ImportSessions returns.

// ExportSessions serialises the sessions selected by filter (nil = all)
// into an engine snapshot payload. The engine keeps serving throughout;
// callers that need the export to cover every accepted event must Drain
// first (and have stopped intake for the filtered banks, or events
// arriving after the encode walk are silently left behind).
func (e *Engine) ExportSessions(filter func(bankKey uint64) bool) ([]byte, error) {
	payload, _, err := e.encodeSnapshot(filter)
	return payload, err
}

// ImportStats describes what ImportSessions did.
type ImportStats struct {
	// Sessions is the number of sessions adopted (installed into shards).
	Sessions int
	// Replayed counts WAL-suffix records folded into adopted sessions.
	Replayed int
	// Skipped counts suffix records dropped by the ownership filter, the
	// per-session watermark (already covered by the snapshot), or a
	// conflicting local session.
	Skipped int
	// Conflicts counts sessions in the payload that were NOT adopted
	// because this engine already holds a session for the bank. A non-zero
	// value means the handoff protocol's ownership sequencing was violated
	// somewhere; the local session wins and keeps serving.
	Conflicts int
	// Actions counts mitigation actions re-derived during suffix replay
	// and emitted on the engine's output channel (at-least-once, same as
	// boot-time recovery).
	Actions int
	// Quarantined counts suffix events whose replay panicked; the adopted
	// session is installed degraded, exactly as a live panic would leave it.
	Quarantined int
}

// ImportSessions adopts the sessions in an exported snapshot payload that
// pass the owns filter (nil = all), replays the accompanying WAL suffix
// through them, installs them into the engine's shards and — when this
// engine is durable — snapshots so the adopted state survives a local
// crash. Suffix LSNs and session watermarks are interpreted in the SOURCE
// journal's namespace and discarded on install.
//
// The engine keeps serving its own banks throughout. Sessions for banks
// this engine already holds are skipped and counted as conflicts.
func (e *Engine) ImportSessions(payload []byte, suffix []wal.Record, owns func(bankKey uint64) bool) (ImportStats, error) {
	var st ImportStats
	if strat := e.activeEpoch().strategy; strat != nil {
		if _, ok := strat.(core.DurableStrategy); !ok {
			return st, fmt.Errorf("stream: import requires a durable strategy, have %T", strat)
		}
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return st, ErrClosed
	}

	// An empty payload is a valid handoff from a source with no snapshot
	// (all of its history rides in the suffix).
	var images []sessionImage
	if len(payload) > 0 {
		var err error
		if _, images, err = decodeSnapshotSessions(payload); err != nil {
			return st, err
		}
	}

	// Rebuild the accepted sessions detached from any shard, keyed by
	// bank. Conflict checks against live shards happen again at install
	// time under the shard lock; this early pass just avoids rebuilding
	// state that is sure to be rejected.
	adopted := make(map[uint64]*bankSession)
	for _, im := range images {
		if owns != nil && !owns(im.key) {
			continue
		}
		if _, exists := e.Session(im.bank); exists {
			st.Conflicts++
			continue
		}
		// Sessions keep their pinned version across the move; this engine's
		// model source must be able to resolve it (version 0 — a pre-
		// versioning export — binds the boot model, and a static source
		// resolves any version to its one strategy).
		ds, err := e.resolveDurable(im.version)
		if err != nil {
			return st, err
		}
		bs, err := buildSession(ds, im)
		if err != nil {
			return st, err
		}
		adopted[im.key] = bs
	}

	// Replay the suffix over the detached sessions. Events below a
	// session's source watermark are already inside its snapshot image;
	// events for banks the snapshot never saw get fresh sessions (the bank
	// first erred after the source's last checkpoint).
	var pending []Action
	for _, rec := range suffix {
		if _, isSwap := decodeSwapRecord(rec.Payload); isSwap {
			// The source's model swaps are its own history; the importer's
			// active model is governed by its own source.
			st.Skipped++
			continue
		}
		ev, derr := decodeEventRecord(rec.Payload)
		if derr != nil {
			return st, fmt.Errorf("stream: decoding handoff suffix record %d: %w", rec.LSN, derr)
		}
		key := ev.Addr.BankKey()
		if owns != nil && !owns(key) {
			st.Skipped++
			continue
		}
		bs, ok := adopted[key]
		if !ok {
			if _, exists := e.Session(hbm.BankOf(ev.Addr)); exists {
				st.Skipped++ // conflicting local session owns this bank's history
				continue
			}
			bank := hbm.BankOf(ev.Addr)
			ep := e.activeEpoch()
			bs = &bankSession{
				bank:    bank,
				sess:    ep.strategy.NewSession(bank),
				version: ep.version,
				uerRows: make(map[int]struct{}),
				spared:  make(map[int]struct{}),
			}
			bs.stats.Bank = bank
			bs.stats.FirstEvent = ev.Time
			bs.stats.ModelVersion = ep.version
			adopted[key] = bs
		}
		if rec.LSN <= bs.lastLSN {
			st.Skipped++ // covered by the snapshot image
			continue
		}
		bs.lastLSN = rec.LSN
		if bs.stats.Degraded {
			bs.stats.Events++
			bs.stats.LastEvent = ev.Time
			continue
		}
		acts, panicked := e.foldDetached(bs, ev)
		if panicked {
			st.Quarantined++
			continue
		}
		st.Replayed++
		pending = append(pending, acts...)
	}

	// Install under the shard locks, re-checking for conflicts: a session
	// that appeared locally since the early pass wins and the adopted one
	// is dropped. Watermarks are zeroed — from here on the session's
	// history lives in THIS engine's journal namespace.
	for key, bs := range adopted {
		bs.lastLSN = 0
		s := e.shardFor(key)
		s.mu.Lock()
		if _, exists := s.sessions[key]; exists {
			st.Conflicts++
			s.mu.Unlock()
			continue
		}
		s.installSession(key, bs)
		s.mu.Unlock()
		st.Sessions++
	}

	// Re-derived actions are emitted after install so a consumer that
	// inspects the session behind an action always finds it.
	for _, a := range pending {
		e.emit(a)
	}
	st.Actions = len(pending)

	// Persist before the caller acknowledges the handoff: without this, a
	// crash after ack would lose state the source already gave away.
	if e.wal != nil && st.Sessions > 0 {
		if _, err := e.Snapshot(); err != nil {
			return st, fmt.Errorf("stream: persisting imported sessions: %w", err)
		}
	}
	return st, nil
}

// DropSessions removes the sessions selected by filter (nil = all) and,
// when the engine is durable, snapshots so the removal sticks across a
// restart. It is the final step of a handoff: once the importer has
// acknowledged the moved banks, the source drops its now-inert copies so
// a later move back does not collide with stale local state. Events for
// the dropped banks must already be fenced off by the ownership filter —
// DropSessions does not stop intake.
func (e *Engine) DropSessions(filter func(bankKey uint64) bool) (int, error) {
	dropped := 0
	for _, s := range e.shards {
		s.mu.Lock()
		for key, bs := range s.sessions {
			if filter != nil && !filter(key) {
				continue
			}
			delete(s.sessions, key)
			s.stateBytes -= int64(bs.stats.StateBytes)
			s.stateRows -= int64(bs.stats.StateRows)
			if bs.stats.StateReleased {
				s.released--
			}
			if bs.stats.Degraded {
				s.degraded--
			}
			dropped++
		}
		s.mu.Unlock()
	}
	if e.wal != nil && dropped > 0 {
		if _, err := e.Snapshot(); err != nil {
			return dropped, fmt.Errorf("stream: persisting session drop: %w", err)
		}
	}
	return dropped, nil
}

// foldDetached folds one event into a detached (not yet installed)
// session, converting a strategy panic into the degraded state plus a
// dead-letter entry — the same quarantine contract the live path has.
func (e *Engine) foldDetached(bs *bankSession, ev mcelog.Event) (out []Action, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			out = nil
			bs.stats.Degraded = true
			e.quarantineDetached(&DeadLetter{
				Time:   ev.Time,
				Bank:   bs.bank.String(),
				Addr:   ev.Addr.Pack(),
				Row:    ev.Addr.Row,
				Class:  ev.Class.String(),
				Reason: fmt.Sprint(r),
			})
		}
	}()
	return foldEvent(bs, ev, nil), false
}

// quarantineDetached preserves a handoff-replay dead letter. Shard
// counters don't apply (the session isn't installed yet); the event still
// goes to the log and the dead-letter file.
func (e *Engine) quarantineDetached(d *DeadLetter) {
	e.cfg.Logger.Warn("event quarantined during handoff import",
		"bank", d.Bank, "row", d.Row, "class", d.Class, "reason", d.Reason)
	e.writeDeadLetter(d)
}
