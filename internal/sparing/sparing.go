// Package sparing models the mitigation mechanisms the paper's isolation
// strategy drives (§I, §IV-C): hardware row sparing for aggregation failure
// patterns, hardware bank sparing for scattered patterns, and OS-level page
// offlining as the software fallback. An Engine tracks spare budgets and
// isolation times so that the Isolation Coverage Rate — the fraction of UER
// rows isolated before they failed — can be computed faithfully.
package sparing

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/hbm"
)

// ActionKind enumerates the mitigation mechanisms.
type ActionKind int

// Mitigation mechanisms.
const (
	// ActionRowSpare remaps a failing row to a spare row inside the bank.
	ActionRowSpare ActionKind = iota + 1
	// ActionBankSpare remaps the whole bank to a spare bank.
	ActionBankSpare
	// ActionPageOffline retires the OS pages backed by the rows.
	ActionPageOffline
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionRowSpare:
		return "row-spare"
	case ActionBankSpare:
		return "bank-spare"
	case ActionPageOffline:
		return "page-offline"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action records one applied mitigation.
type Action struct {
	Kind ActionKind
	Bank hbm.BankAddress
	// Rows lists the isolated rows for row-granular actions; empty for
	// bank sparing.
	Rows []int
	Time time.Time
}

// Budget bounds the spare resources. The defaults reflect the paper's cost
// argument: row spares are cheap and plentiful per bank, bank spares are
// scarce and shared at channel granularity, page offlining is bounded
// per HBM by the OS retirement limit.
type Budget struct {
	// RowSparesPerBank is the number of spare rows each bank has.
	RowSparesPerBank int
	// BankSparesPerChannel is the number of spare banks per channel.
	BankSparesPerChannel int
	// OfflinePagesPerHBM caps page-offline rows per HBM stack.
	OfflinePagesPerHBM int
}

// DefaultBudget returns a budget consistent with HBM2E repair resources.
func DefaultBudget() Budget {
	return Budget{
		RowSparesPerBank:     64,
		BankSparesPerChannel: 2,
		OfflinePagesPerHBM:   256,
	}
}

// Validate checks the budget.
func (b Budget) Validate() error {
	if b.RowSparesPerBank < 0 || b.BankSparesPerChannel < 0 || b.OfflinePagesPerHBM < 0 {
		return fmt.Errorf("sparing: negative budget %+v", b)
	}
	return nil
}

// Engine applies mitigations under a budget and answers coverage queries.
// The zero value is not usable; construct with NewEngine. Engine is not safe
// for concurrent use.
type Engine struct {
	budget Budget

	// rowIsolated[bankKey][row] = earliest isolation time.
	rowIsolated map[uint64]map[int]time.Time
	// bankIsolated[bankKey] = isolation time.
	bankIsolated map[uint64]time.Time
	// rowSparesUsed[bankKey], bankSparesUsed[channelKey],
	// pagesUsed[hbmKey] track budget consumption.
	rowSparesUsed  map[uint64]int
	bankSparesUsed map[uint64]int
	pagesUsed      map[uint64]int

	actions []Action
}

// NewEngine returns an engine with the given budget.
func NewEngine(budget Budget) (*Engine, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		budget:         budget,
		rowIsolated:    make(map[uint64]map[int]time.Time),
		bankIsolated:   make(map[uint64]time.Time),
		rowSparesUsed:  make(map[uint64]int),
		bankSparesUsed: make(map[uint64]int),
		pagesUsed:      make(map[uint64]int),
	}, nil
}

// Budget returns the engine's budget.
func (e *Engine) Budget() Budget { return e.budget }

// Actions returns a copy of all applied actions, in application order.
func (e *Engine) Actions() []Action {
	out := make([]Action, len(e.actions))
	copy(out, e.actions)
	return out
}

// markRow records row isolation at t, keeping the earliest time.
func (e *Engine) markRow(bankKey uint64, row int, t time.Time) {
	rows := e.rowIsolated[bankKey]
	if rows == nil {
		rows = make(map[int]time.Time)
		e.rowIsolated[bankKey] = rows
	}
	if prev, ok := rows[row]; !ok || t.Before(prev) {
		rows[row] = t
	}
}

// SpareRows row-spares the given rows of bank at time t, consuming one spare
// per not-yet-isolated row. It applies as many rows as the budget allows (in
// ascending row order) and returns the rows actually spared. Rows already
// isolated are skipped without consuming budget.
func (e *Engine) SpareRows(bank hbm.BankAddress, rows []int, t time.Time) []int {
	key := bank.BankKey()
	sorted := append([]int(nil), rows...)
	sort.Ints(sorted)
	var applied []int
	for _, row := range sorted {
		if e.isRowIsolatedAt(key, row, t) {
			continue
		}
		if e.rowSparesUsed[key] >= e.budget.RowSparesPerBank {
			break
		}
		e.rowSparesUsed[key]++
		e.markRow(key, row, t)
		applied = append(applied, row)
	}
	if len(applied) > 0 {
		e.actions = append(e.actions, Action{Kind: ActionRowSpare, Bank: hbm.BankOf(bank), Rows: applied, Time: t})
	}
	return applied
}

// SpareBank bank-spares the whole bank at time t. It fails when the
// channel's spare banks are exhausted; a bank already spared is a no-op.
func (e *Engine) SpareBank(bank hbm.BankAddress, t time.Time) error {
	key := bank.BankKey()
	if prev, ok := e.bankIsolated[key]; ok {
		if t.Before(prev) {
			e.bankIsolated[key] = t
		}
		return nil
	}
	chKey := bank.EntityKey(hbm.LevelChannel)
	if e.bankSparesUsed[chKey] >= e.budget.BankSparesPerChannel {
		return fmt.Errorf("sparing: channel %v out of bank spares (%d used)",
			hbm.Unpack(chKey), e.bankSparesUsed[chKey])
	}
	e.bankSparesUsed[chKey]++
	e.bankIsolated[key] = t
	e.actions = append(e.actions, Action{Kind: ActionBankSpare, Bank: hbm.BankOf(bank), Time: t})
	return nil
}

// OfflinePages retires the pages backing the given rows at time t, bounded
// by the per-HBM offline budget. It returns the rows actually offlined.
func (e *Engine) OfflinePages(bank hbm.BankAddress, rows []int, t time.Time) []int {
	bankKey := bank.BankKey()
	hbmKey := bank.EntityKey(hbm.LevelHBM)
	sorted := append([]int(nil), rows...)
	sort.Ints(sorted)
	var applied []int
	for _, row := range sorted {
		if e.isRowIsolatedAt(bankKey, row, t) {
			continue
		}
		if e.pagesUsed[hbmKey] >= e.budget.OfflinePagesPerHBM {
			break
		}
		e.pagesUsed[hbmKey]++
		e.markRow(bankKey, row, t)
		applied = append(applied, row)
	}
	if len(applied) > 0 {
		e.actions = append(e.actions, Action{Kind: ActionPageOffline, Bank: hbm.BankOf(bank), Rows: applied, Time: t})
	}
	return applied
}

// isRowIsolatedAt reports whether the row is covered by an isolation that
// took effect at or before t.
func (e *Engine) isRowIsolatedAt(bankKey uint64, row int, t time.Time) bool {
	if bt, ok := e.bankIsolated[bankKey]; ok && !bt.After(t) {
		return true
	}
	if rt, ok := e.rowIsolated[bankKey][row]; ok && !rt.After(t) {
		return true
	}
	return false
}

// IsRowIsolatedBefore reports whether the row was isolated strictly before
// t by any mechanism — the coverage predicate behind the total Isolation
// Coverage Rate.
func (e *Engine) IsRowIsolatedBefore(bank hbm.BankAddress, row int, t time.Time) bool {
	if e.IsRowSparedBefore(bank, row, t) {
		return true
	}
	if bt, ok := e.bankIsolated[bank.BankKey()]; ok && bt.Before(t) {
		return true
	}
	return false
}

// IsRowSparedBefore reports whether the row itself was isolated (row spare
// or page offline) strictly before t, excluding whole-bank isolation — the
// predicate behind the paper's cross-row ICR, which credits only row-level
// predictions.
func (e *Engine) IsRowSparedBefore(bank hbm.BankAddress, row int, t time.Time) bool {
	rt, ok := e.rowIsolated[bank.BankKey()][row]
	return ok && rt.Before(t)
}

// UsageStats summarises consumed spare resources.
type UsageStats struct {
	RowSpares     int
	BankSpares    int
	OfflinedPages int
	IsolatedBanks int
	IsolatedRows  int
}

// Usage returns the engine's consumption totals.
func (e *Engine) Usage() UsageStats {
	var s UsageStats
	for _, n := range e.rowSparesUsed {
		s.RowSpares += n
	}
	for _, n := range e.bankSparesUsed {
		s.BankSpares += n
	}
	for _, n := range e.pagesUsed {
		s.OfflinedPages += n
	}
	s.IsolatedBanks = len(e.bankIsolated)
	for _, rows := range e.rowIsolated {
		s.IsolatedRows += len(rows)
	}
	return s
}
