package hbm

import "testing"

// FuzzParseAddress verifies the address parser never panics and that every
// accepted string round-trips exactly.
func FuzzParseAddress(f *testing.F) {
	f.Add("n3.u7.h1.s1.c6.p1.g3.b2.r999.col55")
	f.Add("n0.u0.h0.s0.c0.p0.g0.b0.r0.col0")
	f.Add("")
	f.Add("n1.u2")
	f.Add("x1.u2.h1.s0.c5.p1.g2.b3.r1.col8")
	f.Add("n-1.u2.h1.s0.c5.p1.g2.b3.r1.col8")
	f.Add("n99999999999999999999.u2.h1.s0.c5.p1.g2.b3.r1.col8")

	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddress(s)
		if err != nil {
			return
		}
		// Accepted addresses must round-trip through String.
		again, err := ParseAddress(a.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", a.String(), err)
		}
		if again != a {
			t.Fatalf("round trip changed %q: %+v vs %+v", s, a, again)
		}
	})
}

// FuzzPackUnpack verifies Unpack never panics and in-range addresses
// round-trip through Pack.
func FuzzPackUnpack(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(Address{Node: 3, Row: 999, Column: 55}.Pack())

	f.Fuzz(func(t *testing.T, v uint64) {
		a := Unpack(v)
		// Re-packing an unpacked address keeps the encoded fields.
		if Unpack(a.Pack()) != a {
			t.Fatalf("pack/unpack unstable for %#x", v)
		}
	})
}
