// Command cordial-repro regenerates every table and figure of the Cordial
// paper from the calibrated simulator (see DESIGN.md §3 for the experiment
// index and EXPERIMENTS.md for paper-vs-measured numbers).
//
// Usage:
//
//	cordial-repro                 # everything, full scale
//	cordial-repro -exp table4     # one experiment
//	cordial-repro -scale quick    # reduced scale for a smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cordial/internal/experiments"
	"cordial/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cordial-repro:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, table2, table3, table4, fig3a, fig3b, fig4, stability, validation, ablations")
		scale   = flag.String("scale", "full", "scale: full or quick")
		seed    = flag.Uint64("seed", 0, "override fleet seed (0 keeps the default)")
		par     = flag.Int("parallelism", 0, "training/inference goroutines (0 = all cores)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "cordial-repro:", perr)
		}
	}()

	var params experiments.Params
	switch *scale {
	case "full":
		params = experiments.Default()
	case "quick":
		params = experiments.Quick()
	default:
		return fmt.Errorf("unknown scale %q (want full or quick)", *scale)
	}
	if *seed != 0 {
		params.Spec.Seed = *seed
	}
	params.Model.Parallelism = *par

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := 0

	section := func(title string) {
		fmt.Printf("\n=== %s ===\n", title)
	}

	if want("table1") {
		section("Table I — In-row Predictable Ratio of UERs")
		res, err := experiments.RunTableI(params)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(row-level sudden ratio: %.2f%%; paper: 95.61%%)\n", res.RowLevelSuddenRatio()*100)
		ran++
	}
	if want("table2") {
		section("Table II — Summary of the Dataset")
		res, err := experiments.RunTableII(params)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("fig3a") {
		section("Figure 3(a) — Example Bank-level Failure Patterns (CSV scatter)")
		res, err := experiments.RunFig3a(params)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("fig3b") {
		section("Figure 3(b) — Bank Failure Pattern Distribution")
		res, err := experiments.RunFig3b(params)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(aggregation patterns combined: %.1f%%; paper: 78.1%%)\n", res.AggregationShare()*100)
		ran++
	}
	if want("fig4") {
		section("Figure 4 — Statistical Significance of Distance Thresholds")
		res, err := experiments.RunFig4(params)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(peak threshold: %d rows; paper: 128)\n", res.Peak())
		ran++
	}
	if want("table3") || want("table4") {
		section("Tables III & IV — Classification and Prediction Performance")
		t3, t4, err := experiments.RunEvaluation(params)
		if err != nil {
			return err
		}
		if want("table3") {
			fmt.Println("\nTable III — Performance of Failure Pattern Classification")
			if err := t3.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Printf("(best backend: %s; paper: Random Forest)\n", t3.Best())
			ran++
		}
		if want("table4") {
			fmt.Println("\nTable IV — Performance of Different Failure Prediction Methods")
			if err := t4.Render(os.Stdout); err != nil {
				return err
			}
			ran++
		}
	}
	if want("stability") {
		section("Seed Stability (error bars for Table IV)")
		seeds := 5
		if *scale == "quick" {
			seeds = 3
		}
		res, err := experiments.RunStability(params, seeds)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		ran++
	}
	if want("validation") {
		section("Generator Cross-validation (fast path vs physical ECC path)")
		n := 200
		if *scale == "quick" {
			n = 50
		}
		res, err := experiments.RunGeneratorValidation(params, n)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(agreement within tolerance: %v)\n", res.Agree(0.15))
		ran++
	}
	if want("ablations") {
		section("Ablations (DESIGN.md §4)")
		type runner func() (*experiments.Ablation, error)
		for _, r := range []runner{
			func() (*experiments.Ablation, error) { return experiments.RunAblationUERBudget(params, nil) },
			func() (*experiments.Ablation, error) { return experiments.RunAblationBlockGeometry(params, nil) },
			func() (*experiments.Ablation, error) { return experiments.RunAblationWindow(params, nil) },
			func() (*experiments.Ablation, error) { return experiments.RunAblationFeatures(params) },
		} {
			res, err := r()
			if err != nil {
				return err
			}
			fmt.Println()
			if err := res.Render(os.Stdout); err != nil {
				return err
			}
		}
		ran++
	}

	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (want one of: all, table1, table2, table3, table4, fig3a, fig3b, fig4, stability, validation, ablations)", *exp)
	}
	if *exp == "all" {
		fmt.Println(strings.Repeat("-", 60))
		fmt.Println("all experiments regenerated; compare against EXPERIMENTS.md")
	}
	return nil
}
