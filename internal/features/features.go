// Package features implements Cordial's feature extraction (§IV-B and
// §IV-D): spatial, temporal and count features computed from a bank's error
// events — for failure-pattern classification (using all CEs/UEOs and the
// first three UERs) and for per-block cross-row failure prediction (using
// everything observed up to the decision time, plus block-local geometry).
//
// Every vector is reproducible through two interchangeable paths with
// bit-identical results: the batch path (PatternVector/BlockVector over an
// event slice, internally a single forward replay) and the incremental
// path (a BankState fed one event at a time via Observe, O(1) amortized
// per event and bounded memory — the representation the offline dataset
// builders and the online stream engine share). The unexported
// reference* functions keep the original whole-slice implementations as
// the executable specification; equivalence between the two paths is
// enforced by table tests and a fuzz target.
//
// Missing information is encoded with the Missing sentinel, which tree
// learners split around naturally. A bank with no events of a class
// yields Missing for all of that class's statistics; a freshly created
// BankState (no events at all) yields Missing for every sequence
// statistic, zero for counts, and an error from PatternVector until the
// first UER arrives. Feature vectors have a fixed, documented order; the
// *FeatureNames functions return the matching column names.
package features

import (
	"fmt"
	"math"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/mcelog"
)

// Missing is the sentinel for undefined feature values (no events of the
// relevant class). It is far outside every real value range (rows are
// non-negative, times are non-negative hours).
const Missing = -1.0

// secondsToHours converts a duration to fractional hours.
func hours(d time.Duration) float64 { return d.Hours() }

// seqStats summarises one error class's row and time sequences.
type seqStats struct {
	count int

	rowMin, rowMax float64
	// Consecutive |row difference| statistics, in event-time order.
	rowDiffMin, rowDiffMax, rowDiffAvg float64
	// Consecutive inter-arrival statistics, in hours.
	dtMin, dtMax, dtAvg float64
}

// newSeqStats computes sequence statistics for the given events (already in
// time order).
func newSeqStats(events []mcelog.Event) seqStats {
	s := seqStats{
		count:  len(events),
		rowMin: Missing, rowMax: Missing,
		rowDiffMin: Missing, rowDiffMax: Missing, rowDiffAvg: Missing,
		dtMin: Missing, dtMax: Missing, dtAvg: Missing,
	}
	if len(events) == 0 {
		return s
	}
	s.rowMin = float64(events[0].Addr.Row)
	s.rowMax = s.rowMin
	for _, e := range events[1:] {
		r := float64(e.Addr.Row)
		if r < s.rowMin {
			s.rowMin = r
		}
		if r > s.rowMax {
			s.rowMax = r
		}
	}
	if len(events) < 2 {
		return s
	}
	var sumDiff, sumDt float64
	for i := 1; i < len(events); i++ {
		d := math.Abs(float64(events[i].Addr.Row - events[i-1].Addr.Row))
		dt := hours(events[i].Time.Sub(events[i-1].Time))
		if i == 1 {
			s.rowDiffMin, s.rowDiffMax = d, d
			s.dtMin, s.dtMax = dt, dt
		} else {
			if d < s.rowDiffMin {
				s.rowDiffMin = d
			}
			if d > s.rowDiffMax {
				s.rowDiffMax = d
			}
			if dt < s.dtMin {
				s.dtMin = dt
			}
			if dt > s.dtMax {
				s.dtMax = dt
			}
		}
		sumDiff += d
		sumDt += dt
	}
	n := float64(len(events) - 1)
	s.rowDiffAvg = sumDiff / n
	s.dtAvg = sumDt / n
	return s
}

// splitByClass partitions bank events (time-sorted) into CE, UEO and UER
// subsequences, preserving order.
func splitByClass(events []mcelog.Event) (ces, ueos, uers []mcelog.Event) {
	for _, e := range events {
		switch e.Class {
		case ecc.ClassCE:
			ces = append(ces, e)
		case ecc.ClassUEO:
			ueos = append(ueos, e)
		case ecc.ClassUER:
			uers = append(uers, e)
		}
	}
	return ces, ueos, uers
}

// firstKUERRows returns the rows of the first k distinct UER rows, in time
// order, along with the remaining events truncated at the k-th first-UER
// time (inclusive). It mirrors §IV-C: classification uses all CEs and UEOs
// plus the first three UERs.
func firstKUERRows(events []mcelog.Event, k int) (rows []int, cutoff time.Time, ok bool) {
	seen := make(map[int]bool, k)
	for _, e := range events {
		if e.Class != ecc.ClassUER || seen[e.Addr.Row] {
			continue
		}
		seen[e.Addr.Row] = true
		rows = append(rows, e.Addr.Row)
		cutoff = e.Time
		if len(rows) == k {
			return rows, cutoff, true
		}
	}
	if len(rows) == 0 {
		return nil, time.Time{}, false
	}
	return rows, cutoff, true
}

// PatternConfig configures pattern-classification feature extraction.
type PatternConfig struct {
	// UERBudget is the number of first UERs used (§IV-C default: 3).
	UERBudget int
}

// DefaultPatternConfig returns the paper's first-three-UER budget.
func DefaultPatternConfig() PatternConfig { return PatternConfig{UERBudget: 3} }

// patternFeatureCount is kept in sync with PatternVector/PatternFeatureNames.
const patternFeatureCount = 29

// PatternFeatureNames returns the column names of PatternVector, in order.
// The same order is produced by both the batch and the incremental
// (BankState.PatternVector) extraction paths.
func PatternFeatureNames() []string {
	names := make([]string, 0, patternFeatureCount)
	for _, class := range []string{"ce", "ueo", "uer"} {
		names = append(names,
			class+"_row_min", class+"_row_max",
			class+"_row_diff_min", class+"_row_diff_max", class+"_row_diff_avg",
			class+"_dt_min_h", class+"_dt_max_h",
		)
	}
	names = append(names,
		"uer_row_span",
		"uer_count_used",
		"ce_count_before_first_uer",
		"ueo_count_before_first_uer",
		"all_row_diff_avg",
		"first_error_to_first_uer_h",
		"ce_rate_before_first_uer",
		"uer_dt_avg_h",
	)
	return names
}

// PatternVector computes the §IV-B feature vector for failure-pattern
// classification from a bank's time-sorted events. It returns an error when
// the bank has no UER (no pattern to classify). It is a thin wrapper that
// replays the events once through an incremental BankState; the result is
// bit-identical to referencePatternVector (the original whole-slice
// implementation, kept as the executable specification).
func PatternVector(events []mcelog.Event, cfg PatternConfig) ([]float64, error) {
	st, err := NewBankState(cfg, DefaultBlockSpec())
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		st.Observe(e)
	}
	return st.PatternVector()
}

// referencePatternVector is the batch reference implementation of
// PatternVector: several passes over the full slice, obviously faithful to
// §IV-B. It exists to pin the incremental path — the equivalence tests and
// FuzzIncrementalFeatureEquivalence compare against it at every prefix.
func referencePatternVector(events []mcelog.Event, cfg PatternConfig) ([]float64, error) {
	if cfg.UERBudget <= 0 {
		cfg.UERBudget = 3
	}
	uerRows, cutoff, ok := firstKUERRows(events, cfg.UERBudget)
	if !ok {
		return nil, fmt.Errorf("features: bank has no UER events")
	}
	// Truncate at the cutoff: everything after the k-th first-UER is
	// future information the classifier must not see.
	var visible []mcelog.Event
	for _, e := range events {
		if !e.Time.After(cutoff) {
			visible = append(visible, e)
		}
	}
	ces, ueos, uers := splitByClass(visible)
	// Restrict UERs to first distinct rows only (repeat UERs of the same
	// row are deduplicated for the spatial features).
	uers = dedupeRows(uers, cfg.UERBudget)

	out := make([]float64, 0, patternFeatureCount)
	for _, s := range []seqStats{newSeqStats(ces), newSeqStats(ueos), newSeqStats(uers)} {
		out = append(out,
			s.rowMin, s.rowMax,
			s.rowDiffMin, s.rowDiffMax, s.rowDiffAvg,
			s.dtMin, s.dtMax,
		)
	}

	// UER row span over the budget.
	minRow, maxRow := uerRows[0], uerRows[0]
	for _, r := range uerRows[1:] {
		if r < minRow {
			minRow = r
		}
		if r > maxRow {
			maxRow = r
		}
	}
	out = append(out, float64(maxRow-minRow))
	out = append(out, float64(len(uerRows)))

	// Counts strictly before the first UER.
	firstUER := uers[0].Time
	ceBefore, ueoBefore := 0, 0
	for _, e := range visible {
		if !e.Time.Before(firstUER) {
			continue
		}
		switch e.Class {
		case ecc.ClassCE:
			ceBefore++
		case ecc.ClassUEO:
			ueoBefore++
		}
	}
	out = append(out, float64(ceBefore), float64(ueoBefore))

	out = append(out, newSeqStats(visible).rowDiffAvg)

	// Lead time from the first visible error of any class to the first UER.
	lead := Missing
	if len(visible) > 0 && visible[0].Time.Before(firstUER) {
		lead = hours(firstUER.Sub(visible[0].Time))
	}
	out = append(out, lead)

	// CE density before the first UER (events per hour of lead time).
	rate := Missing
	if lead > 0 {
		rate = float64(ceBefore) / lead
	}
	out = append(out, rate)

	out = append(out, newSeqStats(uers).dtAvg)

	if len(out) != patternFeatureCount {
		panic(fmt.Sprintf("features: pattern vector has %d values, want %d", len(out), patternFeatureCount))
	}
	return out, nil
}

// dedupeRows keeps only the first event of each distinct row, up to k rows.
func dedupeRows(events []mcelog.Event, k int) []mcelog.Event {
	seen := make(map[int]bool, k)
	var out []mcelog.Event
	for _, e := range events {
		if seen[e.Addr.Row] {
			continue
		}
		seen[e.Addr.Row] = true
		out = append(out, e)
		if len(out) == k {
			break
		}
	}
	return out
}

// BlockSpec describes the cross-row prediction window geometry (§IV-D):
// WindowRadius rows above and below the last UER row, divided into blocks of
// BlockSize rows. The paper uses radius 64 with 8-row blocks → 16 blocks.
type BlockSpec struct {
	WindowRadius int
	BlockSize    int
}

// DefaultBlockSpec returns the paper's 16×8 geometry.
func DefaultBlockSpec() BlockSpec { return BlockSpec{WindowRadius: 64, BlockSize: 8} }

// Validate checks the spec's internal consistency.
func (s BlockSpec) Validate() error {
	if s.WindowRadius <= 0 || s.BlockSize <= 0 {
		return fmt.Errorf("features: block spec %+v must be positive", s)
	}
	if (2*s.WindowRadius)%s.BlockSize != 0 {
		return fmt.Errorf("features: window 2×%d not divisible by block size %d", s.WindowRadius, s.BlockSize)
	}
	return nil
}

// NumBlocks returns the number of blocks in the window.
func (s BlockSpec) NumBlocks() int { return 2 * s.WindowRadius / s.BlockSize }

// BlockRange returns the inclusive row range [lo, hi] of block index b
// (0 ≤ b < NumBlocks) anchored at the given last UER row. Ranges may fall
// outside the bank; callers clip against geometry when needed.
func (s BlockSpec) BlockRange(lastUERRow, b int) (lo, hi int) {
	lo = lastUERRow - s.WindowRadius + b*s.BlockSize
	return lo, lo + s.BlockSize - 1
}

// BlockOf returns the block index containing row (relative to the anchor),
// or -1 when the row falls outside the window. The anchor row itself falls
// in block NumBlocks/2.
func (s BlockSpec) BlockOf(lastUERRow, row int) int {
	off := row - (lastUERRow - s.WindowRadius)
	if off < 0 || off >= 2*s.WindowRadius {
		return -1
	}
	return off / s.BlockSize
}

// blockFeatureCount is kept in sync with BlockVector/BlockFeatureNames.
const blockFeatureCount = 35

// BlockFeatureNames returns the column names of BlockVector, in order.
// The same order is produced by both the batch and the incremental
// (BankState.BlockVector) extraction paths.
func BlockFeatureNames() []string {
	names := make([]string, 0, blockFeatureCount)
	for _, class := range []string{"ce", "ueo", "uer"} {
		names = append(names,
			class+"_count",
			class+"_row_diff_min", class+"_row_diff_max", class+"_row_diff_avg",
			class+"_dt_min_h", class+"_dt_max_h", class+"_dt_avg_h",
		)
	}
	names = append(names,
		"all_count",
		"time_since_last_event_h",
		"block_offset_rows",
		"block_abs_offset_rows",
		"block_prior_error_count",
		"block_prior_uer_count",
		"dist_to_nearest_ce_row",
		"dist_to_nearest_ueo_row",
		"dist_to_nearest_uer_row",
		"uer_rows_observed",
		"anchor_row",
		"uer_row_mean_offset",
		"block_dist_to_uer_mean",
		"block_dist_to_ce_mean",
	)
	return names
}

// BlockVector computes the §IV-D feature vector for one prediction block.
// events must be the bank's events observed up to the decision time (sorted
// by time); anchorRow is the last observed UER row; now is the decision
// time. It is a thin wrapper that replays the events once through an
// incremental BankState; the result is bit-identical to
// referenceBlockVector (the original whole-slice implementation, kept as
// the executable specification). Callers scoring several blocks of one
// window should build a BankState once and query it per block instead.
func BlockVector(events []mcelog.Event, anchorRow int, spec BlockSpec, block int, now time.Time) ([]float64, error) {
	st, err := NewBankState(DefaultPatternConfig(), spec)
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		st.Observe(e)
	}
	return st.BlockVector(anchorRow, block, now)
}

// referenceBlockVector is the batch reference implementation of
// BlockVector, kept as the executable specification the incremental path
// is fuzz- and table-tested against.
func referenceBlockVector(events []mcelog.Event, anchorRow int, spec BlockSpec, block int, now time.Time) ([]float64, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if block < 0 || block >= spec.NumBlocks() {
		return nil, fmt.Errorf("features: block %d out of [0,%d)", block, spec.NumBlocks())
	}
	ces, ueos, uers := splitByClass(events)

	out := make([]float64, 0, blockFeatureCount)
	for _, evs := range [][]mcelog.Event{ces, ueos, uers} {
		s := newSeqStats(evs)
		out = append(out,
			float64(s.count),
			s.rowDiffMin, s.rowDiffMax, s.rowDiffAvg,
			s.dtMin, s.dtMax, s.dtAvg,
		)
	}

	out = append(out, float64(len(events)))

	sinceLast := Missing
	if len(events) > 0 {
		sinceLast = hours(now.Sub(events[len(events)-1].Time))
	}
	out = append(out, sinceLast)

	lo, hi := spec.BlockRange(anchorRow, block)
	centre := (lo + hi) / 2
	offset := centre - anchorRow
	out = append(out, float64(offset), math.Abs(float64(offset)))

	inBlock := func(row int) bool { return row >= lo && row <= hi }
	prior, priorUER := 0, 0
	for _, e := range events {
		if inBlock(e.Addr.Row) {
			prior++
			if e.Class == ecc.ClassUER {
				priorUER++
			}
		}
	}
	out = append(out, float64(prior), float64(priorUER))

	for _, evs := range [][]mcelog.Event{ces, ueos, uers} {
		out = append(out, nearestRowDistance(evs, centre))
	}

	uerRows := make(map[int]bool)
	for _, e := range uers {
		uerRows[e.Addr.Row] = true
	}
	out = append(out, float64(len(uerRows)))
	out = append(out, float64(anchorRow))

	// Cluster-centre estimates: future failures concentrate around the
	// mean of the rows seen so far, not around the last failure. The block
	// predictor's strongest spatial cue is the distance from the block
	// centre to those means.
	uerMean := meanRow(uers)
	ceMean := meanRow(ces)
	if uerMean == Missing {
		out = append(out, Missing, Missing)
	} else {
		out = append(out, uerMean-float64(anchorRow), math.Abs(float64(centre)-uerMean))
	}
	if ceMean == Missing {
		out = append(out, Missing)
	} else {
		out = append(out, math.Abs(float64(centre)-ceMean))
	}

	if len(out) != blockFeatureCount {
		panic(fmt.Sprintf("features: block vector has %d values, want %d", len(out), blockFeatureCount))
	}
	return out, nil
}

// meanRow returns the mean row of the events, or Missing when there are
// none. Repeat events weight the mean toward actively failing rows, which is
// intended.
func meanRow(events []mcelog.Event) float64 {
	if len(events) == 0 {
		return Missing
	}
	sum := 0.0
	for _, e := range events {
		sum += float64(e.Addr.Row)
	}
	return sum / float64(len(events))
}

// nearestRowDistance returns the minimum |row - target| over the events, or
// Missing when there are none.
func nearestRowDistance(events []mcelog.Event, target int) float64 {
	best := Missing
	for _, e := range events {
		d := math.Abs(float64(e.Addr.Row - target))
		if best == Missing || d < best {
			best = d
		}
	}
	return best
}
