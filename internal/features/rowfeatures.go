package features

import (
	"math"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/mcelog"
)

// rowFeatureCount is kept in sync with RowVector/RowFeatureNames.
const rowFeatureCount = 16

// RowFeatureNames returns the column names of RowVector, in order.
func RowFeatureNames() []string {
	return []string{
		"row_ce_count",
		"row_ueo_count",
		"row_first_error_age_h",
		"row_last_error_age_h",
		"row_error_rate_per_h",
		"row_distinct_columns",
		"bank_ce_count",
		"bank_ueo_count",
		"bank_uer_count",
		"bank_distinct_error_rows",
		"bank_distinct_uer_rows",
		"bank_last_error_age_h",
		"dist_to_nearest_bank_uer_row",
		"dist_to_nearest_bank_ce_row",
		"bank_uer_dt_avg_h",
		"row_number",
	}
}

// RowVector computes the in-row/hierarchical feature vector used by the
// Calchas-style baseline: the history of the row itself plus bank-level
// context, everything observable up to the decision time. events must be the
// bank's events so far, in time order.
func RowVector(events []mcelog.Event, row int, now time.Time) []float64 {
	var (
		rowCE, rowUEO     int
		rowFirst, rowLast time.Time
		rowCols           = map[int]bool{}
		bankCE, bankUEO   int
		bankUER           int
		bankRows          = map[int]bool{}
		bankUERRows       = map[int]bool{}
		bankLast          time.Time
		nearestUER        = Missing
		nearestCE         = Missing
		lastUERTime       time.Time
		uerGapSum         float64
		uerGapN           int
	)
	for _, e := range events {
		bankRows[e.Addr.Row] = true
		if bankLast.IsZero() || e.Time.After(bankLast) {
			bankLast = e.Time
		}
		switch e.Class {
		case ecc.ClassCE:
			bankCE++
			if d := math.Abs(float64(e.Addr.Row - row)); nearestCE == Missing || d < nearestCE {
				nearestCE = d
			}
		case ecc.ClassUEO:
			bankUEO++
		case ecc.ClassUER:
			bankUER++
			bankUERRows[e.Addr.Row] = true
			if d := math.Abs(float64(e.Addr.Row - row)); nearestUER == Missing || d < nearestUER {
				nearestUER = d
			}
			if !lastUERTime.IsZero() {
				uerGapSum += e.Time.Sub(lastUERTime).Hours()
				uerGapN++
			}
			lastUERTime = e.Time
		}
		if e.Addr.Row == row && e.Class != ecc.ClassUER {
			if e.Class == ecc.ClassCE {
				rowCE++
			} else {
				rowUEO++
			}
			rowCols[e.Addr.Column] = true
			if rowFirst.IsZero() || e.Time.Before(rowFirst) {
				rowFirst = e.Time
			}
			if rowLast.IsZero() || e.Time.After(rowLast) {
				rowLast = e.Time
			}
		}
	}

	firstAge, lastAge, rate := Missing, Missing, Missing
	if !rowFirst.IsZero() {
		firstAge = now.Sub(rowFirst).Hours()
		lastAge = now.Sub(rowLast).Hours()
		if firstAge > 0 {
			rate = float64(rowCE+rowUEO) / firstAge
		}
	}
	bankLastAge := Missing
	if !bankLast.IsZero() {
		bankLastAge = now.Sub(bankLast).Hours()
	}
	uerGapAvg := Missing
	if uerGapN > 0 {
		uerGapAvg = uerGapSum / float64(uerGapN)
	}

	out := []float64{
		float64(rowCE),
		float64(rowUEO),
		firstAge,
		lastAge,
		rate,
		float64(len(rowCols)),
		float64(bankCE),
		float64(bankUEO),
		float64(bankUER),
		float64(len(bankRows)),
		float64(len(bankUERRows)),
		bankLastAge,
		nearestUER,
		nearestCE,
		uerGapAvg,
		float64(row),
	}
	if len(out) != rowFeatureCount {
		panic("features: row vector length mismatch")
	}
	return out
}
