package cordial

import (
	"bytes"
	"testing"
)

// quickSpec returns a small fleet for facade-level testing.
func quickSpec(seed uint64) FleetSpec {
	spec := DefaultFleetSpec()
	spec.UERBanks = 90
	spec.BenignBanks = 100
	spec.Seed = seed
	return spec
}

func quickTrain(t testing.TB, kind ModelKind, banks []*BankFault) *Pipeline {
	t.Helper()
	cfg := DefaultConfig(kind)
	cfg.Params = ModelParams{Trees: 25, Depth: 8, Leaves: 15}
	p, err := TrainWithConfig(cfg, banks)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeEndToEnd(t *testing.T) {
	fleet, err := Simulate(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Log.Len() == 0 || len(fleet.Faults) != 90 {
		t.Fatalf("fleet: %d events, %d faults", fleet.Log.Len(), len(fleet.Faults))
	}
	train, test, err := Split(fleet.Faults, 2, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	pipe := quickTrain(t, RandomForest, train)

	pat, err := EvaluatePattern(pipe, test)
	if err != nil {
		t.Fatal(err)
	}
	if pat.Weighted.F1 <= 0.5 {
		t.Fatalf("pattern weighted F1 = %.3f", pat.Weighted.F1)
	}

	res, err := Evaluate(pipe, test)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EvaluateStrategy(NeighborRowsBaseline(DefaultGeometry, pipe.Config().Block), test, pipe.Config().Block)
	if err != nil {
		t.Fatal(err)
	}
	if res.Block.F1 <= base.Block.F1 {
		t.Errorf("Cordial F1 %.3f not above baseline %.3f", res.Block.F1, base.Block.F1)
	}
	if res.ICR.Rate() <= base.ICR.Rate() {
		t.Errorf("Cordial ICR %.3f not above baseline %.3f", res.ICR.Rate(), base.ICR.Rate())
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	fleet, err := Simulate(quickSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := Split(fleet.Faults, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	pipe := quickTrain(t, LightGBM, train)
	var buf bytes.Buffer
	if err := pipe.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, LightGBM)
	if err != nil {
		t.Fatal(err)
	}
	for _, bf := range test[:5] {
		a, errA := pipe.ClassifyPattern(bf.Events)
		b, errB := loaded.ClassifyPattern(bf.Events)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatal("loaded pipeline disagrees")
		}
	}
}

func TestFacadeInRowBaseline(t *testing.T) {
	fleet, err := Simulate(quickSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	_, test, err := Split(fleet.Faults, 6, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultConfig(RandomForest).Block
	res, err := EvaluateStrategy(InRowBaseline(DefaultGeometry), test, spec)
	if err != nil {
		t.Fatal(err)
	}
	// In-row prediction is bounded by the ~4.4% non-sudden row ratio.
	if res.ICR.Rate() > 0.15 {
		t.Fatalf("in-row ICR %.3f too high", res.ICR.Rate())
	}
}

func TestFacadeStudyFunctions(t *testing.T) {
	fleet, err := Simulate(quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}

	sudden := SuddenByLevel(fleet.Log)
	if len(sudden) != 7 {
		t.Fatalf("SuddenByLevel rows = %d", len(sudden))
	}
	rowStats := sudden[len(sudden)-1]
	if rowStats.Level != LevelRow {
		t.Fatalf("last level = %v", rowStats.Level)
	}
	if r := rowStats.PredictableRatio(); r > 0.12 {
		t.Fatalf("row predictable ratio = %.3f", r)
	}

	summary := SummaryByLevel(fleet.Log)
	if len(summary) != 7 {
		t.Fatalf("SummaryByLevel rows = %d", len(summary))
	}
	for _, s := range summary {
		if s.WithCE <= 0 || s.Total < s.WithCE {
			t.Fatalf("summary row %+v malformed", s)
		}
	}

	points, err := LocalityChiSquare(fleet.Log, DefaultGeometry.RowsPerBank, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("locality points = %d", len(points))
	}

	dist := PatternDistribution(fleet.Faults)
	total := 0.0
	for _, s := range dist {
		total += s.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("pattern shares sum to %g", total)
	}
}

func TestFacadeCalchasBaseline(t *testing.T) {
	fleet, err := Simulate(quickSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := Split(fleet.Faults, 9, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	calchas, err := CalchasBaseline(train, ModelParams{Trees: 15, Depth: 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultConfig(RandomForest).Block
	res, err := EvaluateStrategy(calchas, test, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ICR.Rate() > 0.15 {
		t.Fatalf("Calchas ICR %.3f above in-row bound", res.ICR.Rate())
	}
	if _, err := CalchasBaseline(nil, ModelParams{}, 1); err == nil {
		t.Fatal("empty training accepted")
	}
}

func TestFacadeBankOfAndLevels(t *testing.T) {
	a := Address{Node: 3, Row: 100, Column: 5}
	b := BankOf(a)
	if b.Row != 0 || b.Column != 0 || b.Node != 3 {
		t.Fatalf("BankOf = %+v", b)
	}
	if LevelNPU.String() != "NPU" || LevelRow.String() != "Row" {
		t.Fatal("level strings wrong")
	}
}

func TestFacadeTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(RandomForest, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	bad := DefaultConfig(RandomForest)
	bad.Threshold = -1
	if _, err := TrainWithConfig(bad, nil); err == nil {
		t.Fatal("bad config accepted")
	}
}
