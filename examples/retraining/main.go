// Retraining: operate Cordial across a fleet whose failure behaviour drifts
// — a single-row-dominated first quarter gives way to a scattered-heavy
// regime (a bad firmware rollout, say). The Trainer retrains on a sliding
// window and its chi-square drift detector pulls retraining forward when the
// class mix shifts, keeping the pattern classifier honest.
package main

import (
	"fmt"
	"log"
	"time"

	"cordial"
)

func main() {
	// Two regimes, 45 days each.
	spec := cordial.DriftSpec{
		Fault: cordial.DefaultFaultConfig(),
		Regimes: []cordial.Regime{
			{
				Duration: 45 * 24 * time.Hour,
				UERBanks: 150,
				Weights: cordial.PatternWeights{
					cordial.PatternSingleRow: 75,
					cordial.PatternDoubleRow: 10,
					cordial.PatternScattered: 15,
				},
			},
			{
				Duration: 45 * 24 * time.Hour,
				UERBanks: 150,
				Weights: cordial.PatternWeights{
					cordial.PatternSingleRow:   25,
					cordial.PatternScattered:   55,
					cordial.PatternWholeColumn: 20,
				},
			},
		},
		Seed: 7,
	}
	fleet, err := cordial.SimulateDrift(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drift fleet: %d banks over two regimes\n", len(fleet.Faults))
	for r := 0; r < 2; r++ {
		fmt.Printf("  regime %d mix: %v\n", r, fleet.MixOf(r))
	}

	cfg := cordial.DefaultConfig(cordial.RandomForest)
	cfg.Params = cordial.ModelParams{Trees: 30, Depth: 8}
	policy := cordial.RetrainPolicy{
		Window:      40 * 24 * time.Hour,
		Interval:    14 * 24 * time.Hour,
		MinBanks:    40,
		DriftPValue: 0.01,
		DriftSample: 40,
	}
	trainer, err := cordial.NewTrainer(cfg, policy)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the fleet in onset order; each bank's ground truth "resolves"
	// a day after its first failure.
	for _, bf := range fleet.Faults {
		resolved := bf.UERTimes[0].Add(24 * time.Hour)
		did, err := trainer.ObserveBank(bf, resolved)
		if err != nil {
			log.Fatal(err)
		}
		if did {
			kind := "scheduled"
			if trainer.DriftRetrains > 0 && did {
				kind = "scheduled/drift"
			}
			fmt.Printf("%s  retrained (%s) on recent window\n",
				resolved.Format("Jan 02"), kind)
		}
	}
	fmt.Printf("\nretrainings: %d total, %d triggered by drift detection\n",
		trainer.Retrains, trainer.DriftRetrains)
	if trainer.DriftRetrains > 0 {
		fmt.Println("→ the regime change was caught by the chi-square mix test before the")
		fmt.Println("  scheduled retrain, so the classifier adapted to the scattered-heavy mix early.")
	}

	// Sanity: the final pipeline still classifies current-regime banks.
	correct, total := 0, 0
	for _, bf := range fleet.Faults[len(fleet.Faults)-40:] {
		got, err := trainer.Pipeline().ClassifyPattern(bf.Events)
		if err != nil {
			continue
		}
		total++
		if got == bf.Class() {
			correct++
		}
	}
	fmt.Printf("final model accuracy on the last 40 banks: %d/%d\n", correct, total)
}
