package mcelog

import (
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
)

// TestValidateTimeBounds pins the ingestion sanity window: zero, pre-epoch
// and far-future timestamps are poison; anything in a plausible deployment
// window passes.
func TestValidateTimeBounds(t *testing.T) {
	cases := []struct {
		name string
		t    time.Time
		ok   bool
	}{
		{"zero", time.Time{}, false},
		{"pre-epoch", time.Date(1969, 12, 31, 23, 59, 59, 0, time.UTC), false},
		{"negative-nanos", time.Unix(0, -1), false},
		{"epoch", time.Unix(0, 0), true},
		{"present", time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC), true},
		{"far-future", time.Date(2200, 1, 1, 0, 0, 0, 0, time.UTC), false},
		{"way-future", time.Date(2261, 1, 1, 0, 0, 0, 0, time.UTC), false},
	}
	for _, tc := range cases {
		err := ValidateTime(tc.t)
		if tc.ok && err != nil {
			t.Errorf("%s: ValidateTime(%v) = %v, want nil", tc.name, tc.t, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: ValidateTime(%v) = nil, want error", tc.name, tc.t)
		}
	}
}

// TestValidateRejectsPoisonedWireRecords feeds Event.Validate exactly what
// DecodeWireRecord produces from attacker-shaped records: flipped-bit
// timestamps and out-of-geometry packed addresses must be rejected, never
// admitted or panicked on.
func TestValidateRejectsPoisonedWireRecords(t *testing.T) {
	g := hbm.DefaultGeometry
	goodAddr := hbm.Address{Row: 1, Column: 2}
	if err := (Event{Time: time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC), Addr: goodAddr, Class: ecc.ClassCE}).Validate(g); err != nil {
		t.Fatalf("baseline event invalid: %v", err)
	}

	poison := []struct {
		name string
		rec  func() []byte
	}{
		{"all-ones-timestamp", func() []byte {
			var rec [WireRecordSize]byte
			binary.LittleEndian.PutUint64(rec[0:8], ^uint64(0)) // -1 ns: pre-epoch
			binary.LittleEndian.PutUint64(rec[8:16], goodAddr.Pack())
			rec[16] = byte(ecc.ClassCE)
			return rec[:]
		}},
		{"high-bit-timestamp", func() []byte {
			var rec [WireRecordSize]byte
			binary.LittleEndian.PutUint64(rec[0:8], 1<<63) // hugely negative
			binary.LittleEndian.PutUint64(rec[8:16], goodAddr.Pack())
			rec[16] = byte(ecc.ClassCE)
			return rec[:]
		}},
		{"zero-timestamp-unix-epoch-minus", func() []byte {
			var rec [WireRecordSize]byte
			// Max positive nanos: year 2262, beyond MaxEventTime.
			binary.LittleEndian.PutUint64(rec[0:8], uint64(1<<63-1))
			binary.LittleEndian.PutUint64(rec[8:16], goodAddr.Pack())
			rec[16] = byte(ecc.ClassCE)
			return rec[:]
		}},
		{"out-of-geometry-addr", func() []byte {
			var rec [WireRecordSize]byte
			binary.LittleEndian.PutUint64(rec[0:8], uint64(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()))
			binary.LittleEndian.PutUint64(rec[8:16], ^uint64(0)) // every field out of range
			rec[16] = byte(ecc.ClassCE)
			return rec[:]
		}},
		{"bad-class", func() []byte {
			var rec [WireRecordSize]byte
			binary.LittleEndian.PutUint64(rec[0:8], uint64(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()))
			binary.LittleEndian.PutUint64(rec[8:16], goodAddr.Pack())
			rec[16] = 0xff
			return rec[:]
		}},
	}
	for _, tc := range poison {
		ev := DecodeWireRecord(tc.rec())
		if err := ev.Validate(g); err == nil {
			t.Errorf("%s: Validate accepted poisoned event %+v", tc.name, ev)
		}
	}
}

// TestParseJSONEventRejectsPoisonedTimestamps: the line-granular JSONL
// ingest path must reject timestamp poison at parse time.
func TestParseJSONEventRejectsPoisonedTimestamps(t *testing.T) {
	for _, tc := range []struct {
		name, line string
	}{
		{"zero-time", `{"time":"0001-01-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`},
		{"null-time", `{"time":null,"addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`},
		{"pre-epoch", `{"time":"1969-07-20T20:17:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`},
		{"far-future", `{"time":"2300-01-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`},
		{"nan-time", `{"time":NaN,"addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`},
	} {
		if _, err := ParseJSONEvent([]byte(tc.line)); err == nil {
			t.Errorf("%s: ParseJSONEvent accepted %s", tc.name, tc.line)
		}
	}

	good := `{"time":"2025-06-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col2","class":"CE"}`
	if _, err := ParseJSONEvent([]byte(good)); err != nil {
		t.Errorf("ParseJSONEvent rejected valid line: %v", err)
	}
	if !strings.Contains(good, "2025") {
		t.Fatal("sanity")
	}
}
