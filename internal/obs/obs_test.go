package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestExpositionGolden pins the exact rendered output: family ordering by
// registration, series ordering by label signature, HELP/TYPE comments,
// histogram bucket cumulativity and the +Inf terminal bucket.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_depth", "Current depth.")
	g.Set(2.5)
	r.GaugeFunc("test_live", "Live things.", func() float64 { return 7 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)
	cb := r.Counter("test_shard_total", "Per-shard.", L("shard", "1"))
	ca := r.Counter("test_shard_total", "Per-shard.", L("shard", "0"))
	cb.Add(2)
	ca.Inc()

	want := `# HELP test_events_total Events seen.
# TYPE test_events_total counter
test_events_total 42
# HELP test_depth Current depth.
# TYPE test_depth gauge
test_depth 2.5
# HELP test_live Live things.
# TYPE test_live gauge
test_live 7
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 6.05
test_latency_seconds_count 4
# HELP test_shard_total Per-shard.
# TYPE test_shard_total counter
test_shard_total{shard="0"} 1
test_shard_total{shard="1"} 2
`
	if got := render(t, r); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionParses runs a minimal line-shape validator over a rendered
// registry: every non-comment line must be "name{labels} value" with a
// parseable float value — the contract a Prometheus scraper needs.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(3)
	r.Gauge("b_bytes", "b", L("x", `quo"te`), L("y", "line\nbreak")).Set(-1.5)
	r.Histogram("c_seconds", "c", nil).Observe(0.2)
	for _, line := range strings.Split(strings.TrimSuffix(render(t, r), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if err := ValidateLine(line); err != nil {
			t.Errorf("line %q: %v", line, err)
		}
	}
}

func TestDuplicateRegistrationReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "d", L("k", "v"))
	b := r.Counter("dup_total", "d", L("k", "v"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("duplicate registration did not share state")
	}
	// Different label set under the same family is a new series.
	c := r.Counter("dup_total", "d", L("k", "w"))
	if c == a {
		t.Error("different labels returned the same instrument")
	}
	// Label order must not matter.
	g1 := r.Gauge("dup_gauge", "g", L("a", "1"), L("b", "2"))
	g2 := r.Gauge("dup_gauge", "g", L("b", "2"), L("a", "1"))
	if g1 != g2 {
		t.Error("label order changed instrument identity")
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	expectPanic("bad metric name", func() { r.Counter("1bad", "") })
	expectPanic("bad label name", func() { r.Counter("ok_total", "", L("bad-key", "v")) })
	expectPanic("empty name", func() { r.Gauge("", "") })
	r.Counter("twice", "")
	expectPanic("type conflict", func() { r.Gauge("twice", "") })
	expectPanic("non-ascending buckets", func() { r.Histogram("h", "", []float64{1, 1}) })
	r.GaugeFunc("gf", "", func() float64 { return 0 })
	expectPanic("gaugefunc vs gauge", func() { r.Gauge("gf", "") })
}

// TestNilInstrumentsAreNoOps: instrumented packages pass nil instruments
// when metrics are disabled; every method must tolerate that.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instrument returned non-zero")
	}
}

func TestGaugeAddAndNegatives(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	g.Add(2)
	g.Add(-5)
	if got := g.Value(); got != -3 {
		t.Errorf("gauge = %v, want -3", got)
	}
	if !strings.Contains(render(t, r), "g -3\n") {
		t.Errorf("rendered %q", render(t, r))
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // on the boundary: le="1" is inclusive
	h.Observe(math.Nextafter(1, 2))
	h.Observe(3)
	out := render(t, r)
	for _, want := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="+Inf"} 3`,
		`h_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestConcurrentUpdatesAndScrapes drives all instrument types from many
// goroutines while scraping; meaningful under -race, and the final counts
// must be exact.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
