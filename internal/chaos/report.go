package chaos

import (
	"encoding/json"
	"fmt"
	"html/template"
	"os"
	"sort"
	"time"
)

// Report is the full record of one scenario run: what was generated, what
// happened, and how the SLOs scored. It is the JSON artifact; the HTML
// report renders the same struct.
type Report struct {
	Scenario    string    `json:"scenario"`
	Description string    `json:"description,omitempty"`
	Seed        uint64    `json:"seed"`
	PlanDigest  string    `json:"planDigest"`
	StartedAt   time.Time `json:"startedAt"`
	FinishedAt  time.Time `json:"finishedAt"`
	Pass        bool      `json:"pass"`

	Fleet   FleetReport   `json:"fleet"`
	Load    LoadReport    `json:"load"`
	Chaos   []ChaosRecord `json:"chaos,omitempty"`
	Probes  ProbeReport   `json:"probes"`
	Verdict VerdictReport `json:"verdicts"`
	SLOs    []SLOCheck    `json:"slos"`

	// FailureDetail carries daemon output tails when the run errored or
	// an SLO failed; omitted on clean passes to keep reports small.
	FailureDetail map[string]string `json:"failureDetail,omitempty"`
}

// FleetReport summarises topology and workload.
type FleetReport struct {
	Nodes       int            `json:"nodes"`
	Banks       int            `json:"banks"`
	FaultyBanks int            `json:"faultyBanks"`
	Events      int            `json:"events"`
	PerTemplate map[string]int `json:"banksPerTemplate"`
	Startup     string         `json:"startupPattern"`
	Topology    string         `json:"topology,omitempty"`
}

// LoadReport summarises delivery.
type LoadReport struct {
	Codec          string  `json:"codec"`
	Sent           int     `json:"sent"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"`
	Dropped        int     `json:"dropped"`
	Retries        int     `json:"retries"`
	PoisonSent     int     `json:"poisonSent"`
	PoisonAccepted int     `json:"poisonAccepted"`
	P99IngestWait  float64 `json:"p99IngestWaitSeconds"`
	ModelSwaps     uint64  `json:"modelSwaps"`
	Quarantined    uint64  `json:"quarantined"`
}

// ChaosRecord is one executed injection.
type ChaosRecord struct {
	At       string `json:"at"` // offset from load start
	Action   string `json:"action"`
	Target   string `json:"target"`
	Detail   string `json:"detail,omitempty"`
	Error    string `json:"error,omitempty"`
	Recovery string `json:"recovery,omitempty"` // kill_node: time to full recovery
}

// ProbeReport summarises front-door availability sampling.
type ProbeReport struct {
	Samples  int     `json:"samples"`
	ReadyOK  int     `json:"readyOK"`
	Availab  float64 `json:"readyzAvailability"`
	Interval string  `json:"interval"`
}

// VerdictReport is the zero-verdict-loss comparison.
type VerdictReport struct {
	Compared  bool     `json:"compared"`
	Reference int      `json:"referenceActions,omitempty"`
	Fleet     int      `json:"fleetActions,omitempty"`
	Missing   []string `json:"missing,omitempty"`
	Extra     []string `json:"extra,omitempty"`
}

// SLOCheck is one evaluated objective.
type SLOCheck struct {
	Name     string `json:"name"`
	Target   string `json:"target"`
	Observed string `json:"observed"`
	Pass     bool   `json:"pass"`
}

// evaluateSLOs scores the report against the scenario's SLO spec and
// stamps Report.SLOs and Report.Pass. Recovery durations come from the
// chaos records (kill_node entries carry them).
func (r *Report) evaluateSLOs(slo SLOSpec) {
	add := func(name, target, observed string, pass bool) {
		r.SLOs = append(r.SLOs, SLOCheck{Name: name, Target: target, Observed: observed, Pass: pass})
	}

	if slo.P99IngestLatency > 0 {
		obs := time.Duration(r.Load.P99IngestWait * float64(time.Second))
		add("p99_ingest_latency", "<= "+slo.P99IngestLatency.String(), obs.String(),
			obs <= slo.P99IngestLatency)
	}
	if slo.RecoveryTime > 0 {
		worst, n := time.Duration(0), 0
		for _, c := range r.Chaos {
			if c.Action != ActKillNode || c.Recovery == "" {
				continue
			}
			d, err := time.ParseDuration(c.Recovery)
			if err != nil {
				continue
			}
			n++
			if d > worst {
				worst = d
			}
		}
		add("recovery_time", "<= "+slo.RecoveryTime.String(), worst.String(),
			n > 0 && worst <= slo.RecoveryTime)
	}
	if slo.ReadyzAvailability >= 0 {
		add("readyz_availability",
			fmt.Sprintf(">= %.4f", slo.ReadyzAvailability),
			fmt.Sprintf("%.4f (%d/%d)", r.Probes.Availab, r.Probes.ReadyOK, r.Probes.Samples),
			r.Probes.Samples > 0 && r.Probes.Availab >= slo.ReadyzAvailability)
	}
	if slo.ZeroVerdictLoss {
		add("zero_verdict_loss", "missing=0 extra=0",
			fmt.Sprintf("missing=%d extra=%d (ref=%d fleet=%d)",
				len(r.Verdict.Missing), len(r.Verdict.Extra), r.Verdict.Reference, r.Verdict.Fleet),
			r.Verdict.Compared && len(r.Verdict.Missing) == 0 && len(r.Verdict.Extra) == 0 &&
				r.Verdict.Reference > 0)
	}
	if r.Load.PoisonSent > 0 || slo.MaxPoisonAccepted > 0 {
		add("max_poison_accepted",
			fmt.Sprintf("<= %d", slo.MaxPoisonAccepted),
			fmt.Sprintf("%d of %d", r.Load.PoisonAccepted, r.Load.PoisonSent),
			r.Load.PoisonAccepted <= slo.MaxPoisonAccepted)
	}
	if slo.MinModelSwaps > 0 {
		add("min_model_swaps", fmt.Sprintf(">= %d", slo.MinModelSwaps),
			fmt.Sprintf("%d", r.Load.ModelSwaps),
			r.Load.ModelSwaps >= uint64(slo.MinModelSwaps))
	}

	r.Pass = true
	for _, c := range r.SLOs {
		if !c.Pass {
			r.Pass = false
		}
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteHTML renders the standalone HTML report.
func (r *Report) WriteHTML(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reportTemplate.Execute(f, r)
}

// TemplateNames returns the per-template bank counts in stable order for
// the HTML report.
func (r *Report) TemplateNames() []string {
	names := make([]string, 0, len(r.Fleet.PerTemplate))
	for n := range r.Fleet.PerTemplate {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunDuration formats the wall-clock span.
func (r *Report) RunDuration() string {
	return r.FinishedAt.Sub(r.StartedAt).Round(time.Millisecond).String()
}

var reportTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>cordial-chaos: {{.Scenario}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.badge { display: inline-block; padding: .2rem .7rem; border-radius: .3rem; color: #fff; font-weight: 600; }
.pass { background: #1a7f37; } .fail { background: #cf222e; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { border: 1px solid #d0d7de; padding: .35rem .7rem; text-align: left; font-size: .9rem; }
th { background: #f6f8fa; }
tr.bad td { background: #ffebe9; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: .2rem; }
.meta { color: #57606a; font-size: .85rem; }
pre { background: #f6f8fa; padding: .7rem; overflow-x: auto; font-size: .8rem; }
</style>
</head>
<body>
<h1>cordial-chaos — {{.Scenario}}
{{if .Pass}}<span class="badge pass">PASS</span>{{else}}<span class="badge fail">FAIL</span>{{end}}</h1>
<p class="meta">{{.Description}}</p>
<p class="meta">seed <code>{{.Seed}}</code> · plan digest <code>{{.PlanDigest}}</code> ·
started {{.StartedAt.Format "2006-01-02 15:04:05"}} · ran {{.RunDuration}}</p>

<h2>SLOs</h2>
<table>
<tr><th>objective</th><th>target</th><th>observed</th><th>result</th></tr>
{{range .SLOs}}<tr{{if not .Pass}} class="bad"{{end}}>
<td>{{.Name}}</td><td><code>{{.Target}}</code></td><td><code>{{.Observed}}</code></td>
<td>{{if .Pass}}pass{{else}}FAIL{{end}}</td></tr>
{{end}}</table>

<h2>Fleet</h2>
<table>
<tr><th>nodes</th><th>banks</th><th>faulty</th><th>events</th><th>startup</th></tr>
<tr><td>{{.Fleet.Nodes}}</td><td>{{.Fleet.Banks}}</td><td>{{.Fleet.FaultyBanks}}</td>
<td>{{.Fleet.Events}}</td><td>{{.Fleet.Startup}}</td></tr>
</table>
<table>
<tr><th>template</th><th>banks</th></tr>
{{$f := .Fleet}}{{range .TemplateNames}}<tr><td>{{.}}</td><td>{{index $f.PerTemplate .}}</td></tr>
{{end}}</table>

<h2>Load</h2>
<table>
<tr><th>codec</th><th>sent</th><th>accepted</th><th>rejected</th><th>dropped</th><th>retries</th>
<th>poison sent</th><th>poison accepted</th><th>p99 ingest wait</th><th>model swaps</th><th>quarantined</th></tr>
<tr><td>{{.Load.Codec}}</td><td>{{.Load.Sent}}</td><td>{{.Load.Accepted}}</td>
<td>{{.Load.Rejected}}</td><td>{{.Load.Dropped}}</td><td>{{.Load.Retries}}</td>
<td>{{.Load.PoisonSent}}</td><td>{{.Load.PoisonAccepted}}</td>
<td>{{printf "%.4fs" .Load.P99IngestWait}}</td><td>{{.Load.ModelSwaps}}</td><td>{{.Load.Quarantined}}</td></tr>
</table>

{{if .Chaos}}<h2>Chaos timeline</h2>
<table>
<tr><th>at</th><th>action</th><th>target</th><th>detail</th><th>recovery</th><th>error</th></tr>
{{range .Chaos}}<tr{{if .Error}} class="bad"{{end}}>
<td>{{.At}}</td><td>{{.Action}}</td><td>{{.Target}}</td><td>{{.Detail}}</td>
<td>{{.Recovery}}</td><td>{{.Error}}</td></tr>
{{end}}</table>{{end}}

<h2>Availability</h2>
<p>{{.Probes.ReadyOK}} of {{.Probes.Samples}} front-door <code>/readyz</code> probes returned 200
({{printf "%.4f" .Probes.Availab}}), sampled every {{.Probes.Interval}}.</p>

{{if .Verdict.Compared}}<h2>Verdict comparison</h2>
<p>reference {{.Verdict.Reference}} actions · fleet {{.Verdict.Fleet}} actions ·
missing {{len .Verdict.Missing}} · extra {{len .Verdict.Extra}}</p>
{{if .Verdict.Missing}}<pre>missing:
{{range .Verdict.Missing}}{{.}}
{{end}}</pre>{{end}}
{{if .Verdict.Extra}}<pre>extra:
{{range .Verdict.Extra}}{{.}}
{{end}}</pre>{{end}}{{end}}

{{if .FailureDetail}}<h2>Daemon output tails</h2>
{{range $name, $tail := .FailureDetail}}<h3>{{$name}}</h3><pre>{{$tail}}</pre>
{{end}}{{end}}
</body>
</html>
`))
