// Package experiments regenerates every table and figure of the Cordial
// paper's empirical study and evaluation (§III and §V) from a synthesised
// fleet, plus the ablations called out in DESIGN.md §4. Each experiment has
// a Run function returning a typed result and a Render method producing the
// paper-style text table. cmd/cordial-repro and the repository-level
// benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cordial/internal/core"
	"cordial/internal/hbm"
	"cordial/internal/sparing"
	"cordial/internal/trace"
)

// Params scales every experiment. Construct with Default or Quick.
type Params struct {
	// Spec configures fleet synthesis (scale, seed, calibration).
	Spec trace.Spec
	// TrainFrac is the train/test split (paper: 0.7).
	TrainFrac float64
	// SplitSeed drives the bank-level split.
	SplitSeed uint64
	// Model tunes the ensemble sizes.
	Model core.ModelParams
	// Budget bounds spare resources during prediction evaluation.
	Budget sparing.Budget
}

// Default returns the full-scale parameters used for the reported results:
// 500 faulty banks and 3000 benign banks spread over a 4096-NPU fleet (the
// paper's error-bank density of roughly one per NPU), 80-tree ensembles.
func Default() Params {
	geo := hbm.DefaultGeometry
	geo.Nodes = 512
	spec := trace.DefaultSpec(geo)
	spec.UERBanks = 500
	spec.BenignBanks = 3000
	return Params{
		Spec:      spec,
		TrainFrac: 0.7,
		SplitSeed: 7,
		Model:     core.ModelParams{Trees: 80, Depth: 8, Leaves: 31},
		Budget:    sparing.DefaultBudget(),
	}
}

// Quick returns reduced-scale parameters for tests and smoke runs.
func Quick() Params {
	p := Default()
	p.Spec.UERBanks = 100
	p.Spec.BenignBanks = 300
	p.Model = core.ModelParams{Trees: 25, Depth: 8, Leaves: 15}
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	if p.TrainFrac <= 0 || p.TrainFrac >= 1 {
		return fmt.Errorf("experiments: train fraction %g out of (0,1)", p.TrainFrac)
	}
	return p.Budget.Validate()
}

// fleet synthesises the dataset for the parameters.
func (p Params) fleet() (*trace.Fleet, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return trace.Generate(p.Spec)
}

// newTabWriter returns the common table layout.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// pct formats a ratio as a percentage with two decimals, e.g. "95.61%".
func pct(r float64) string { return fmt.Sprintf("%.2f%%", r*100) }
