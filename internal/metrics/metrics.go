// Package metrics implements the evaluation measures of the paper's §V:
// per-class precision, recall and F1 from a confusion matrix, their
// support-weighted averages (Table III), binary classification metrics for
// the block-level cross-row predictions, and the Isolation Coverage Rate
// (ICR) used in Table IV.
package metrics

import (
	"fmt"
	"sort"
)

// Confusion is a multi-class confusion matrix keyed by integer class labels.
// The zero value is ready to use.
type Confusion struct {
	// counts[actual][predicted] = observations.
	counts map[int]map[int]int
}

// Add records one observation with the given actual and predicted labels.
func (c *Confusion) Add(actual, predicted int) {
	if c.counts == nil {
		c.counts = make(map[int]map[int]int)
	}
	row := c.counts[actual]
	if row == nil {
		row = make(map[int]int)
		c.counts[actual] = row
	}
	row[predicted]++
}

// Count returns the number of observations with the given actual and
// predicted labels.
func (c *Confusion) Count(actual, predicted int) int {
	return c.counts[actual][predicted]
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Classes returns the sorted union of all actual and predicted labels.
func (c *Confusion) Classes() []int {
	seen := make(map[int]bool)
	for a, row := range c.counts {
		seen[a] = true
		for p := range row {
			seen[p] = true
		}
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Support returns the number of observations whose actual label is class.
func (c *Confusion) Support(class int) int {
	n := 0
	for _, v := range c.counts[class] {
		n += v
	}
	return n
}

// Accuracy returns the fraction of observations on the diagonal.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for a, row := range c.counts {
		correct += row[a]
	}
	return float64(correct) / float64(total)
}

// Report holds precision, recall and F1 for one class (or one binary task).
type Report struct {
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// ClassReport computes precision, recall and F1 for one class (one-vs-rest).
// Conventions: precision is 0 when nothing was predicted as the class;
// recall is 0 when the class never occurs; F1 is 0 when both P and R are 0.
func (c *Confusion) ClassReport(class int) Report {
	tp := c.counts[class][class]
	fp := 0
	for a, row := range c.counts {
		if a != class {
			fp += row[class]
		}
	}
	fn := 0
	for p, v := range c.counts[class] {
		if p != class {
			fn += v
		}
	}
	return binaryReport(tp, fp, fn, c.Support(class))
}

func binaryReport(tp, fp, fn, support int) Report {
	r := Report{Support: support}
	if tp+fp > 0 {
		r.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r.Recall = float64(tp) / float64(tp+fn)
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}

// WeightedAverage computes the support-weighted average of the per-class
// reports — the "Weighted Average" row of Table III.
func (c *Confusion) WeightedAverage() Report {
	total := c.Total()
	if total == 0 {
		return Report{}
	}
	var out Report
	for _, class := range c.Classes() {
		r := c.ClassReport(class)
		w := float64(r.Support) / float64(total)
		out.Precision += w * r.Precision
		out.Recall += w * r.Recall
		out.F1 += w * r.F1
		out.Support += r.Support
	}
	return out
}

// Binary accumulates binary-classification outcomes, for block-level
// cross-row prediction. The zero value is ready to use.
type Binary struct {
	TP, FP, TN, FN int
}

// Add records one outcome.
func (b *Binary) Add(actual, predicted bool) {
	switch {
	case actual && predicted:
		b.TP++
	case !actual && predicted:
		b.FP++
	case actual && !predicted:
		b.FN++
	default:
		b.TN++
	}
}

// Report returns precision, recall and F1 over the accumulated outcomes,
// with positives as the class of interest.
func (b *Binary) Report() Report {
	return binaryReport(b.TP, b.FP, b.FN, b.TP+b.FN)
}

// Total returns the number of recorded outcomes.
func (b *Binary) Total() int { return b.TP + b.FP + b.TN + b.FN }

// ICR accumulates the Isolation Coverage Rate: the proportion of actual UER
// rows that were preemptively isolated before their failure (§V-A).
type ICR struct {
	// Covered counts UER rows that were isolated before their first UER.
	Covered int `json:"covered"`
	// Total counts all UER rows in scope.
	Total int `json:"total"`
}

// Add records one UER row and whether it was isolated in time.
func (m *ICR) Add(covered bool) {
	m.Total++
	if covered {
		m.Covered++
	}
}

// Rate returns Covered/Total, or 0 when nothing was recorded.
func (m *ICR) Rate() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Covered) / float64(m.Total)
}

// String formats the rate as a percentage, e.g. "19.58%".
func (m *ICR) String() string {
	return fmt.Sprintf("%.2f%%", m.Rate()*100)
}

// Scored accumulates (score, label) pairs for threshold-free ranking
// metrics. The zero value is ready to use.
type Scored struct {
	scores []float64
	labels []bool
}

// Add records one scored observation.
func (s *Scored) Add(score float64, positive bool) {
	s.scores = append(s.scores, score)
	s.labels = append(s.labels, positive)
}

// Total returns the number of recorded observations.
func (s *Scored) Total() int { return len(s.scores) }

// AUC returns the area under the ROC curve: the probability that a uniformly
// random positive outranks a uniformly random negative, with ties counted as
// half. It returns false when either class is absent.
func (s *Scored) AUC() (float64, bool) {
	type pair struct {
		score float64
		pos   bool
	}
	pairs := make([]pair, len(s.scores))
	pos, neg := 0, 0
	for i, sc := range s.scores {
		pairs[i] = pair{score: sc, pos: s.labels[i]}
		if s.labels[i] {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, false
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].score < pairs[j].score })

	// Rank-sum (Mann-Whitney) with midranks for ties.
	rankSum := 0.0
	i := 0
	for i < len(pairs) {
		j := i
		for j < len(pairs) && pairs[j].score == pairs[i].score {
			j++
		}
		// Tied block occupies ranks i+1..j; everyone gets the midrank.
		midrank := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if pairs[k].pos {
				rankSum += midrank
			}
		}
		i = j
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), true
}
