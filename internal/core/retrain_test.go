package core

import (
	"testing"
	"time"

	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

func trainerConfig() Config {
	cfg := DefaultConfig(RandomForest)
	cfg.Params = ModelParams{Trees: 10, Depth: 6}
	return cfg
}

func TestRetrainPolicyValidate(t *testing.T) {
	if err := DefaultRetrainPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultRetrainPolicy()
	bad.Window = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero window accepted")
	}
	bad = DefaultRetrainPolicy()
	bad.MinBanks = 1
	if err := bad.Validate(); err == nil {
		t.Error("MinBanks 1 accepted")
	}
	bad = DefaultRetrainPolicy()
	bad.DriftPValue = 1
	if err := bad.Validate(); err == nil {
		t.Error("p-value 1 accepted")
	}
}

func TestTrainerScheduledRetraining(t *testing.T) {
	fleet := testFleet(t, 7, 150)
	policy := RetrainPolicy{
		Window:   30 * 24 * time.Hour,
		Interval: 7 * 24 * time.Hour,
		MinBanks: 30,
	}
	tr, err := NewTrainer(trainerConfig(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pipeline() != nil {
		t.Fatal("pipeline exists before training")
	}

	start := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	retrained := 0
	for i, bf := range fleet.Faults {
		// One bank resolves every 6 hours.
		now := start.Add(time.Duration(i) * 6 * time.Hour)
		did, err := tr.ObserveBank(bf, now)
		if err != nil {
			t.Fatal(err)
		}
		if did {
			retrained++
		}
	}
	if tr.Pipeline() == nil {
		t.Fatal("never trained")
	}
	// 150 banks × 6h = ~37 days; first train at 30 banks (~7.5 days), then
	// weekly → at least 3 trainings.
	if retrained < 3 {
		t.Fatalf("retrained %d times", retrained)
	}
	if tr.Retrains != retrained {
		t.Fatalf("Retrains counter %d vs observed %d", tr.Retrains, retrained)
	}
	// The resulting pipeline actually classifies.
	if _, err := tr.Pipeline().ClassifyPattern(fleet.Faults[0].Events); err != nil {
		t.Fatal(err)
	}
}

func TestTrainerWindowEviction(t *testing.T) {
	fleet := testFleet(t, 7, 150)
	policy := RetrainPolicy{
		Window:   24 * time.Hour, // tiny window
		Interval: 12 * time.Hour,
		MinBanks: 5,
	}
	tr, err := NewTrainer(trainerConfig(), policy)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	for i, bf := range fleet.Faults[:60] {
		now := start.Add(time.Duration(i) * 2 * time.Hour)
		if _, err := tr.ObserveBank(bf, now); err != nil {
			t.Fatal(err)
		}
	}
	// With a 24h window and one bank per 2h, at most ~13 banks are stored.
	if len(tr.store) > 14 {
		t.Fatalf("store holds %d banks despite 24h window", len(tr.store))
	}
}

func TestTrainerDriftTriggersEarlyRetrain(t *testing.T) {
	// Build two regimes: single-row-dominated then scattered-dominated.
	cfg := faultsim.DefaultConfig(hbm.DefaultGeometry)
	gen, err := faultsim.NewGenerator(cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	mkBanks := func(p faultsim.Pattern, other faultsim.Pattern, n int) []*faultsim.BankFault {
		out := make([]*faultsim.BankFault, 0, n)
		for i := 0; i < n; i++ {
			pat := p
			if i%5 == 4 {
				pat = other // keep ≥2 classes so training succeeds
			}
			bf, err := gen.Generate(hbm.BankAddress{Node: i % 32}, pat)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, bf)
		}
		return out
	}
	regimeA := mkBanks(faultsim.PatternSingleRow, faultsim.PatternScattered, 80)
	regimeB := mkBanks(faultsim.PatternScattered, faultsim.PatternSingleRow, 60)

	policy := RetrainPolicy{
		Window:        365 * 24 * time.Hour,
		Interval:      300 * 24 * time.Hour, // schedule effectively off
		MinBanks:      30,
		DriftPValue:   0.01,
		DriftSample:   40,
		DriftCooldown: time.Hour,
	}
	tr, err := NewTrainer(trainerConfig(), policy)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	i := 0
	feed := func(banks []*faultsim.BankFault) {
		for _, bf := range banks {
			now := start.Add(time.Duration(i) * time.Hour)
			if _, err := tr.ObserveBank(bf, now); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	feed(regimeA)
	if tr.Retrains != 1 {
		t.Fatalf("initial trainings = %d, want 1 (schedule off afterwards)", tr.Retrains)
	}
	feed(regimeB)
	if tr.DriftRetrains == 0 {
		t.Fatal("regime change did not trigger a drift retrain")
	}
}

func TestNewTrainerRejectsBadInputs(t *testing.T) {
	if _, err := NewTrainer(Config{Model: ModelKind(99)}, DefaultRetrainPolicy()); err == nil {
		t.Error("bad config accepted")
	}
	bad := DefaultRetrainPolicy()
	bad.Interval = 0
	if _, err := NewTrainer(trainerConfig(), bad); err == nil {
		t.Error("bad policy accepted")
	}
}
