// Retraining: operate Cordial across a fleet whose failure behaviour drifts
// — a single-row-dominated first regime gives way to a scattered-heavy one
// (a bad firmware rollout, say). This example runs the ONLINE lifecycle
// loop in-process: a versioned model registry, a stream engine whose
// sessions pin the model version they were born under, and a lifecycle
// manager that detects the drift in the live class mix, refits a candidate
// from the engine's own journal (self-labelled, no ground truth), shadow-
// scores it against the incumbent on live traffic, and hot-swaps it only
// if its isolation coverage holds up. See DESIGN.md §13.
package main

import (
	"fmt"
	"log"
	"log/slog"
	"os"
	"time"

	"cordial"
)

func main() {
	// Two regimes, 45 days each.
	spec := cordial.DriftSpec{
		Fault: cordial.DefaultFaultConfig(),
		Regimes: []cordial.Regime{
			{
				Duration: 45 * 24 * time.Hour,
				UERBanks: 150,
				Weights: cordial.PatternWeights{
					cordial.PatternSingleRow: 75,
					cordial.PatternDoubleRow: 10,
					cordial.PatternScattered: 15,
				},
			},
			{
				Duration: 45 * 24 * time.Hour,
				UERBanks: 150,
				Weights: cordial.PatternWeights{
					cordial.PatternSingleRow:   25,
					cordial.PatternScattered:   55,
					cordial.PatternWholeColumn: 20,
				},
			},
		},
		Seed: 7,
	}
	fleet, err := cordial.SimulateDrift(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drift fleet: %d banks over two regimes\n", len(fleet.Faults))
	for r := 0; r < 2; r++ {
		fmt.Printf("  regime %d mix: %v\n", r, fleet.MixOf(r))
	}
	var regime0, regime1 []*cordial.BankFault
	for i, bf := range fleet.Faults {
		if fleet.RegimeOf[i] == 0 {
			regime0 = append(regime0, bf)
		} else {
			regime1 = append(regime1, bf)
		}
	}

	// Boot model: trained offline on regime-0 ground truth, installed as
	// version 1 of an in-memory registry (use Dir for a persistent one).
	cfg := cordial.DefaultConfig(cordial.RandomForest)
	cfg.Params = cordial.ModelParams{Trees: 30, Depth: 8}
	boot, err := cordial.TrainWithConfig(cfg, regime0)
	if err != nil {
		log.Fatal(err)
	}
	reg, err := cordial.OpenModelRegistry(cordial.ModelRegistryOptions{
		Geometry: cordial.DefaultGeometry,
	})
	if err != nil {
		log.Fatal(err)
	}
	bootMeta, err := reg.Install(boot, "boot")
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Activate(bootMeta.Version); err != nil {
		log.Fatal(err)
	}

	// The engine serves the registry's active version; the journal is what
	// the lifecycle manager retrains from, so durability is on.
	walDir, err := os.MkdirTemp("", "cordial-retrain-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	engine, err := cordial.NewStreamEngine(cordial.StreamConfig{
		Models:     reg,
		Geometry:   cordial.DefaultGeometry,
		Durability: cordial.StreamDurability{Dir: walDir},
		Logger:     slog.New(slog.DiscardHandler),
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for range engine.Actions() {
		}
	}()
	mgr, err := cordial.NewLifecycleManager(cordial.LifecycleConfig{
		Engine:      engine,
		Registry:    reg,
		Geometry:    cordial.DefaultGeometry,
		Train:       cfg,
		DriftPValue: 0.01,
		MinBanks:    40,
		Logger:      slog.New(slog.DiscardHandler),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The regime changes: live the first half of the drifted banks through
	// the engine, then let the manager look for drift.
	ingest := func(banks []*cordial.BankFault) {
		for _, bf := range banks {
			for _, ev := range bf.Events {
				if err := engine.Ingest(ev); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := engine.Drain(30 * time.Second); err != nil {
			log.Fatal(err)
		}
	}
	ingest(regime1[:len(regime1)/2])
	mgr.Tick() // drift check → retrain from the journal → shadow starts
	st := mgr.Status()
	fmt.Printf("\nafter the regime change: drift p=%.2g, state=%s, candidate=v%d\n",
		st.LastDriftP, st.State, st.CandidateVersion)
	if st.State != "shadowing" {
		log.Fatalf("drift was not caught (lastError=%q)", st.LastError)
	}

	// Fresh drifted banks create their sessions while the shadow is live,
	// so each gets a candidate twin and the shadow scores real traffic.
	ingest(regime1[len(regime1)/2:])
	mgr.Tick() // judge: promote only if the candidate's ICR holds up
	st = mgr.Status()
	fmt.Printf("verdict: active=v%d (promotions=%d rollbacks=%d)\n",
		st.ActiveVersion, st.Promotions, st.Rollbacks)
	for _, meta := range reg.Versions() {
		fmt.Printf("  v%d  trigger=%-6s trainedOn=%d banks, mix=%v\n",
			meta.Version, meta.Trigger, meta.Model.BankCount, meta.Model.ClassMix)
	}

	// Sanity: the promoted pipeline classifies current-regime banks.
	pipe, err := reg.Pipeline(st.ActiveVersion)
	if err != nil {
		log.Fatal(err)
	}
	correct, total := 0, 0
	for _, bf := range regime1[len(regime1)-40:] {
		got, err := pipe.ClassifyPattern(bf.Events)
		if err != nil {
			continue
		}
		total++
		if got == bf.Class() {
			correct++
		}
	}
	fmt.Printf("active model accuracy on the last 40 drifted banks: %d/%d\n",
		correct, total)
	if err := engine.Close(); err != nil {
		log.Fatal(err)
	}
}
