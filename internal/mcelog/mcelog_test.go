package mcelog

import (
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

var epoch = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

func ev(sec int, row int, class ecc.Class) Event {
	return Event{
		Time:  epoch.Add(time.Duration(sec) * time.Second),
		Addr:  hbm.Address{Row: row},
		Class: class,
	}
}

func randomEvents(n int, seed uint64) []Event {
	r := xrand.New(seed)
	g := hbm.DefaultGeometry
	events := make([]Event, 0, n)
	classes := []ecc.Class{ecc.ClassCE, ecc.ClassUEO, ecc.ClassUER}
	for i := 0; i < n; i++ {
		bank := hbm.RandomBank(g, r)
		addr := hbm.CellInBank(bank, r.Intn(g.RowsPerBank), r.Intn(g.ColsPerBank))
		events = append(events, Event{
			Time:  epoch.Add(time.Duration(r.Intn(1_000_000)) * time.Millisecond),
			Addr:  addr,
			Class: classes[r.Intn(len(classes))],
		})
	}
	return events
}

func TestValidate(t *testing.T) {
	g := hbm.DefaultGeometry
	good := ev(1, 5, ecc.ClassCE)
	if err := good.Validate(g); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	noTime := good
	noTime.Time = time.Time{}
	if err := noTime.Validate(g); err == nil {
		t.Error("zero-time event accepted")
	}
	badClass := good
	badClass.Class = ecc.ClassNone
	if err := badClass.Validate(g); err == nil {
		t.Error("ClassNone event accepted")
	}
	badAddr := good
	badAddr.Addr.Row = g.RowsPerBank
	if err := badAddr.Validate(g); err == nil {
		t.Error("out-of-range address accepted")
	}
}

func TestSortDeterministicTotalOrder(t *testing.T) {
	events := randomEvents(500, 11)
	a := FromEvents(events)
	a.Sort()
	if !a.IsSorted() {
		t.Fatal("log not sorted after Sort")
	}
	// Shuffle and re-sort: identical order (total order, no ties left to
	// the sort's mercy).
	shuffled := FromEvents(events)
	r := xrand.New(22)
	evs := shuffled.Events()
	r.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
	b := FromEvents(evs)
	b.Sort()
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("sort order not deterministic at %d", i)
		}
	}
}

func TestFilterClass(t *testing.T) {
	l := FromEvents([]Event{
		ev(1, 1, ecc.ClassCE), ev(2, 2, ecc.ClassUEO),
		ev(3, 3, ecc.ClassUER), ev(4, 4, ecc.ClassCE),
	})
	ces := l.FilterClass(ecc.ClassCE)
	if ces.Len() != 2 {
		t.Fatalf("FilterClass(CE) len = %d, want 2", ces.Len())
	}
	uces := l.FilterClass(ecc.ClassUEO, ecc.ClassUER)
	if uces.Len() != 2 {
		t.Fatalf("FilterClass(UEO,UER) len = %d, want 2", uces.Len())
	}
	if l.Len() != 4 {
		t.Fatal("FilterClass mutated the source log")
	}
}

func TestWindow(t *testing.T) {
	l := FromEvents([]Event{ev(0, 0, ecc.ClassCE), ev(5, 1, ecc.ClassCE), ev(10, 2, ecc.ClassCE)})
	w := l.Window(epoch.Add(1*time.Second), epoch.Add(10*time.Second))
	if w.Len() != 1 || w.At(0).Addr.Row != 1 {
		t.Fatalf("Window returned %d events", w.Len())
	}
	// Inclusive start, exclusive end.
	w2 := l.Window(epoch, epoch.Add(10*time.Second))
	if w2.Len() != 2 {
		t.Fatalf("Window [0,10) returned %d events, want 2", w2.Len())
	}
}

func TestGroupByBank(t *testing.T) {
	bankA := hbm.Address{Node: 1, Bank: 0}
	bankB := hbm.Address{Node: 1, Bank: 1}
	l := FromEvents([]Event{
		{Time: epoch, Addr: hbm.CellInBank(bankA, 1, 0), Class: ecc.ClassCE},
		{Time: epoch, Addr: hbm.CellInBank(bankB, 2, 0), Class: ecc.ClassCE},
		{Time: epoch, Addr: hbm.CellInBank(bankA, 3, 0), Class: ecc.ClassUER},
	})
	groups := l.GroupByBank()
	if len(groups) != 2 {
		t.Fatalf("GroupByBank returned %d groups, want 2", len(groups))
	}
	if got := len(groups[bankA.BankKey()]); got != 2 {
		t.Fatalf("bank A has %d events, want 2", got)
	}
	keys := l.BankKeys()
	if len(keys) != 2 || keys[0] >= keys[1] {
		t.Fatalf("BankKeys = %v", keys)
	}
}

func TestCountByClassAndEntities(t *testing.T) {
	bank := hbm.Address{Node: 2}
	l := FromEvents([]Event{
		{Time: epoch, Addr: hbm.CellInBank(bank, 1, 0), Class: ecc.ClassCE},
		{Time: epoch, Addr: hbm.CellInBank(bank, 1, 5), Class: ecc.ClassCE},
		{Time: epoch, Addr: hbm.CellInBank(bank, 2, 0), Class: ecc.ClassUER},
	})
	counts := l.CountByClass()
	if counts[ecc.ClassCE] != 2 || counts[ecc.ClassUER] != 1 {
		t.Fatalf("CountByClass = %v", counts)
	}
	// Two CE events in the same row: one row entity with CE.
	if got := l.EntitiesWithClass(hbm.LevelRow, ecc.ClassCE); got != 1 {
		t.Fatalf("rows with CE = %d, want 1", got)
	}
	if got := l.EntitiesWithClass(hbm.LevelBank, ecc.ClassUER); got != 1 {
		t.Fatalf("banks with UER = %d, want 1", got)
	}
	if got := l.Entities(hbm.LevelRow); got != 2 {
		t.Fatalf("distinct rows = %d, want 2", got)
	}
	if got := l.Entities(hbm.LevelNPU); got != 1 {
		t.Fatalf("distinct NPUs = %d, want 1", got)
	}
}

func TestMergePreservesAllAndSorts(t *testing.T) {
	a := FromEvents(randomEvents(100, 1))
	b := FromEvents(randomEvents(150, 2))
	m := Merge(a, b)
	if m.Len() != 250 {
		t.Fatalf("Merge len = %d, want 250", m.Len())
	}
	if !m.IsSorted() {
		t.Fatal("Merge result not sorted")
	}
}

func TestDedupe(t *testing.T) {
	e := ev(1, 1, ecc.ClassCE)
	l := FromEvents([]Event{e, e, e, ev(2, 2, ecc.ClassUER), ev(2, 2, ecc.ClassUER)})
	l.Sort()
	removed := l.Dedupe()
	if removed != 3 {
		t.Fatalf("Dedupe removed %d, want 3", removed)
	}
	if l.Len() != 2 {
		t.Fatalf("post-dedupe len = %d, want 2", l.Len())
	}
	if l.Dedupe() != 0 {
		t.Fatal("Dedupe not idempotent")
	}
}

func TestSpan(t *testing.T) {
	var empty Log
	if _, _, ok := empty.Span(); ok {
		t.Fatal("empty log reported a span")
	}
	l := FromEvents([]Event{ev(3, 0, ecc.ClassCE), ev(9, 1, ecc.ClassCE)})
	l.Sort()
	first, last, ok := l.Span()
	if !ok || !first.Equal(epoch.Add(3*time.Second)) || !last.Equal(epoch.Add(9*time.Second)) {
		t.Fatalf("Span = %v..%v ok=%v", first, last, ok)
	}
}

func TestZeroValueLogUsable(t *testing.T) {
	var l Log
	l.Append(ev(1, 1, ecc.ClassCE))
	if l.Len() != 1 {
		t.Fatal("zero-value Log not usable")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	l := FromEvents([]Event{ev(1, 1, ecc.ClassCE)})
	got := l.Events()
	got[0].Addr.Row = 999
	if l.At(0).Addr.Row == 999 {
		t.Fatal("Events returned a view into internal storage")
	}
}
