package features

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/mcelog"
)

// BankState is the incremental feature accumulator behind both Cordial
// stages: it consumes one bank's events in time order via Observe and can
// produce, at any point, the exact §IV-B pattern vector and §IV-D block
// vectors that the batch extractors would compute over the events observed
// so far. Every aggregate is maintained in O(1) amortized time per event,
// and memory is bounded by the bank's distinct error rows (≤ RowsPerBank),
// never by the length of the history — the property that keeps a
// long-lived online session flat in both latency and footprint.
//
// Equivalence contract: for any event sequence with nondecreasing
// timestamps, the vectors returned by PatternVector and BlockVector are
// bit-identical to referencePatternVector/referenceBlockVector over the
// same prefix. This is pinned by table tests and by
// FuzzIncrementalFeatureEquivalence.
//
// A freshly created BankState has observed nothing: BlockVector returns
// Missing for every sequence statistic (and zero counts), and
// PatternVector returns an error until the first UER is observed —
// exactly as the batch extractors behave on an empty slice.
//
// BankState is not safe for concurrent use; callers (the stream engine's
// shard consumers, the offline dataset builders) serialise access per bank.
type BankState struct {
	cfg  PatternConfig
	spec BlockSpec

	events int

	// Pattern stage (§IV-B). The classifier sees only events up to the
	// cutoff — the time of the latest first-K distinct UER — so two
	// accumulator sets are kept: committed covers exactly the visible
	// events, staged additionally covers events after the cutoff that
	// become visible if a later distinct UER extends it. Both are O(1) in
	// size; promotion is a struct copy.
	committed patternAccums
	staged    patternAccums
	// budgetRows is the first-K distinct UER rows in first-occurrence
	// order (K = cfg.UERBudget, so len ≤ K).
	budgetRows []int
	// budgetSeen dedupes budgetRows; ≤ K entries, freed once the budget
	// is exhausted.
	budgetSeen map[int]bool
	cutoff     time.Time
	budgetDone bool

	haveFirstEvent bool
	firstEventTime time.Time
	haveUER        bool
	firstUERTime   time.Time
	// ceBefore/ueoBefore are the §IV-B counts strictly before the first
	// UER, frozen the moment it arrives.
	ceBefore, ueoBefore int
	// Pre-first-UER tallies. Ties at the first UER's own timestamp must
	// not count ("strictly before"), so the trailing run of
	// equal-timestamp events is tracked separately and subtracted.
	ceTotal, ueoTotal int
	runTime           time.Time
	ceAtRun, ueoAtRun int

	// Block stage (§IV-D). These cover everything observed (block
	// decisions use the full history up to the decision time).
	blkCE, blkUEO, blkUER seqAccum
	ceRowSum, uerRowSum   float64
	ceRows, ueoRows       rowSet
	uerRows               rowSet
	rowCounts             map[int]blockRowCount
	lastTime              time.Time

	// Error-bit aggregates (intra-word DQ/burst patterns), covering every
	// observed event with a nonzero pattern.
	errBits errBitAccum
}

// NewBankState returns an empty accumulator for one bank. A non-positive
// UERBudget takes the paper's default of 3, mirroring PatternVector.
func NewBankState(cfg PatternConfig, spec BlockSpec) (*BankState, error) {
	if cfg.UERBudget <= 0 {
		cfg.UERBudget = 3
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &BankState{cfg: cfg, spec: spec}, nil
}

// patternAccums is one set of §IV-B sequence accumulators: the three
// per-class subsequences plus the all-events sequence.
type patternAccums struct {
	ce, ueo, uer, all seqAccum
}

// blockRowCount tallies one row's events for the block-local prior counts.
type blockRowCount struct {
	total, uer int
}

// Observe folds one event into the state. Events must arrive in
// nondecreasing time order (the same contract the batch extractors place
// on their input slice); the equivalence guarantee holds only then.
func (s *BankState) Observe(e mcelog.Event) {
	s.events++
	if !s.haveFirstEvent {
		s.haveFirstEvent = true
		s.firstEventTime = e.Time
	}
	s.observePattern(e)
	s.observeBlock(e)
	s.errBits.observe(e.Bits)
}

// observePattern maintains the §IV-B aggregates.
func (s *BankState) observePattern(e mcelog.Event) {
	row, t := e.Addr.Row, e.Time
	isUER := e.Class == ecc.ClassUER
	if isUER && !s.haveUER {
		// Freeze the strictly-before-first-UER counts. Events in the
		// trailing run share this UER's timestamp and are excluded.
		s.haveUER = true
		s.firstUERTime = t
		s.ceBefore, s.ueoBefore = s.ceTotal, s.ueoTotal
		if s.runTime.Equal(t) {
			s.ceBefore -= s.ceAtRun
			s.ueoBefore -= s.ueoAtRun
		}
	}
	if !s.haveUER {
		if !s.runTime.Equal(t) {
			s.runTime, s.ceAtRun, s.ueoAtRun = t, 0, 0
		}
		switch e.Class {
		case ecc.ClassCE:
			s.ceTotal++
			s.ceAtRun++
		case ecc.ClassUEO:
			s.ueoTotal++
			s.ueoAtRun++
		}
	}
	if isUER && !s.budgetDone {
		if s.budgetSeen == nil {
			s.budgetSeen = make(map[int]bool, s.cfg.UERBudget)
		}
		if !s.budgetSeen[row] {
			// A new distinct UER row under budget extends the cutoff:
			// everything staged becomes visible, and this UER joins the
			// deduplicated first-K subsequence.
			s.budgetSeen[row] = true
			s.budgetRows = append(s.budgetRows, row)
			s.staged.uer.observe(row, t)
			s.staged.all.observe(row, t)
			s.committed = s.staged
			s.cutoff = t
			if len(s.budgetRows) >= s.cfg.UERBudget {
				s.budgetDone = true
				s.budgetSeen = nil
			}
			return
		}
	}
	// Non-extending event: a CE, a UEO, a repeat-row UER, or a UER past
	// the budget. Repeat and past-budget UERs never enter the per-class
	// UER statistics (the batch path deduplicates them away) but do count
	// toward the all-events sequence when visible.
	after := t.After(s.cutoff)
	if after && s.budgetDone {
		return // the cutoff is final; this event can never become visible
	}
	switch e.Class {
	case ecc.ClassCE:
		s.staged.ce.observe(row, t)
	case ecc.ClassUEO:
		s.staged.ueo.observe(row, t)
	}
	s.staged.all.observe(row, t)
	if !after {
		switch e.Class {
		case ecc.ClassCE:
			s.committed.ce.observe(row, t)
		case ecc.ClassUEO:
			s.committed.ueo.observe(row, t)
		}
		s.committed.all.observe(row, t)
	}
}

// observeBlock maintains the §IV-D aggregates.
func (s *BankState) observeBlock(e mcelog.Event) {
	row, t := e.Addr.Row, e.Time
	switch e.Class {
	case ecc.ClassCE:
		s.blkCE.observe(row, t)
		s.ceRowSum += float64(row)
		s.ceRows.add(row)
	case ecc.ClassUEO:
		s.blkUEO.observe(row, t)
		s.ueoRows.add(row)
	case ecc.ClassUER:
		s.blkUER.observe(row, t)
		s.uerRowSum += float64(row)
		s.uerRows.add(row)
	}
	if s.rowCounts == nil {
		s.rowCounts = make(map[int]blockRowCount)
	}
	rc := s.rowCounts[row]
	rc.total++
	if e.Class == ecc.ClassUER {
		rc.uer++
	}
	s.rowCounts[row] = rc
	s.lastTime = t
}

// Events returns the number of events observed.
func (s *BankState) Events() int { return s.events }

// DistinctUERRows returns the number of distinct rows with at least one
// observed UER (not capped by the pattern budget).
func (s *BankState) DistinctUERRows() int { return s.uerRows.size() }

// PatternVector returns the §IV-B feature vector over the events observed
// so far, bit-identical to PatternVector over the same prefix. It returns
// an error until the first UER has been observed (no pattern to classify).
func (s *BankState) PatternVector() ([]float64, error) {
	if !s.haveUER {
		return nil, fmt.Errorf("features: bank has no UER events")
	}
	out := make([]float64, 0, patternFeatureCount)
	for _, st := range []seqStats{s.committed.ce.stats(), s.committed.ueo.stats(), s.committed.uer.stats()} {
		out = append(out,
			st.rowMin, st.rowMax,
			st.rowDiffMin, st.rowDiffMax, st.rowDiffAvg,
			st.dtMin, st.dtMax,
		)
	}
	minRow, maxRow := s.budgetRows[0], s.budgetRows[0]
	for _, r := range s.budgetRows[1:] {
		if r < minRow {
			minRow = r
		}
		if r > maxRow {
			maxRow = r
		}
	}
	out = append(out, float64(maxRow-minRow))
	out = append(out, float64(len(s.budgetRows)))
	out = append(out, float64(s.ceBefore), float64(s.ueoBefore))
	out = append(out, s.committed.all.stats().rowDiffAvg)
	lead := Missing
	if s.firstEventTime.Before(s.firstUERTime) {
		lead = hours(s.firstUERTime.Sub(s.firstEventTime))
	}
	out = append(out, lead)
	rate := Missing
	if lead > 0 {
		rate = float64(s.ceBefore) / lead
	}
	out = append(out, rate)
	out = append(out, s.committed.uer.stats().dtAvg)
	if len(out) != patternFeatureCount {
		panic(fmt.Sprintf("features: pattern vector has %d values, want %d", len(out), patternFeatureCount))
	}
	return out, nil
}

// BlockVector returns the §IV-D feature vector for one prediction block,
// bit-identical to BlockVector over the events observed so far. anchorRow
// is the last observed UER row; now is the decision time.
func (s *BankState) BlockVector(anchorRow, block int, now time.Time) ([]float64, error) {
	if block < 0 || block >= s.spec.NumBlocks() {
		return nil, fmt.Errorf("features: block %d out of [0,%d)", block, s.spec.NumBlocks())
	}
	out := make([]float64, 0, blockFeatureCount)
	for _, st := range []seqStats{s.blkCE.stats(), s.blkUEO.stats(), s.blkUER.stats()} {
		out = append(out,
			float64(st.count),
			st.rowDiffMin, st.rowDiffMax, st.rowDiffAvg,
			st.dtMin, st.dtMax, st.dtAvg,
		)
	}
	out = append(out, float64(s.events))

	sinceLast := Missing
	if s.events > 0 {
		sinceLast = hours(now.Sub(s.lastTime))
	}
	out = append(out, sinceLast)

	lo, hi := s.spec.BlockRange(anchorRow, block)
	centre := (lo + hi) / 2
	offset := centre - anchorRow
	out = append(out, float64(offset), math.Abs(float64(offset)))

	prior, priorUER := 0, 0
	for r := lo; r <= hi; r++ {
		if rc, ok := s.rowCounts[r]; ok {
			prior += rc.total
			priorUER += rc.uer
		}
	}
	out = append(out, float64(prior), float64(priorUER))

	out = append(out, s.ceRows.nearest(centre), s.ueoRows.nearest(centre), s.uerRows.nearest(centre))
	out = append(out, float64(s.uerRows.size()))
	out = append(out, float64(anchorRow))

	if s.blkUER.count == 0 {
		out = append(out, Missing, Missing)
	} else {
		uerMean := s.uerRowSum / float64(s.blkUER.count)
		out = append(out, uerMean-float64(anchorRow), math.Abs(float64(centre)-uerMean))
	}
	if s.blkCE.count == 0 {
		out = append(out, Missing)
	} else {
		ceMean := s.ceRowSum / float64(s.blkCE.count)
		out = append(out, math.Abs(float64(centre)-ceMean))
	}

	if len(out) != blockFeatureCount {
		panic(fmt.Sprintf("features: block vector has %d values, want %d", len(out), blockFeatureCount))
	}
	return out, nil
}

// StateFootprint is a point-in-time estimate of one BankState's memory, for
// the bounded-memory monitoring the online engine exposes.
type StateFootprint struct {
	// Events is the number of events observed (NOT retained — the state
	// holds no event buffer).
	Events int
	// TrackedRows is the total entries across the per-row structures (the
	// only parts that grow at all); each is bounded by the bank's distinct
	// error rows, hence by the geometry's RowsPerBank.
	TrackedRows int
	// ApproxBytes estimates resident bytes: a fixed accumulator core plus
	// TrackedRows-proportional structures.
	ApproxBytes int
}

// Per-entry size estimates for Footprint. Rough by design: the point is
// that the total is proportional to tracked rows, not to events observed.
const (
	bankStateFixedBytes = 704 // the fixed-size accumulators and bookkeeping
	mapEntryBytes       = 48  // approximate per-entry share of a small-valued map
	rowEntryBytes       = 8   // one int row in a sorted set
)

// Footprint reports the state's current size. Cost is O(1).
func (s *BankState) Footprint() StateFootprint {
	tracked := len(s.rowCounts) + s.ceRows.size() + s.ueoRows.size() + s.uerRows.size() +
		len(s.budgetRows) + len(s.budgetSeen)
	bytes := bankStateFixedBytes +
		(len(s.rowCounts)+len(s.budgetSeen))*mapEntryBytes +
		(cap(s.ceRows.rows)+cap(s.ueoRows.rows)+cap(s.uerRows.rows)+cap(s.budgetRows))*rowEntryBytes
	return StateFootprint{Events: s.events, TrackedRows: tracked, ApproxBytes: bytes}
}

// seqAccum incrementally maintains one error class's seqStats: O(1) per
// observation, O(1) memory. The float operations mirror newSeqStats
// exactly (same formulas, same accumulation order) so the resulting stats
// are bit-identical to a batch pass over the same sequence.
type seqAccum struct {
	count    int
	lastRow  int
	lastTime time.Time

	rowMin, rowMax                     float64
	rowDiffMin, rowDiffMax, rowDiffSum float64
	dtMin, dtMax, dtSum                float64
}

// observe folds the next event of the sequence.
func (a *seqAccum) observe(row int, t time.Time) {
	r := float64(row)
	if a.count == 0 {
		a.rowMin, a.rowMax = r, r
	} else {
		if r < a.rowMin {
			a.rowMin = r
		}
		if r > a.rowMax {
			a.rowMax = r
		}
		d := math.Abs(float64(row - a.lastRow))
		dt := hours(t.Sub(a.lastTime))
		if a.count == 1 {
			a.rowDiffMin, a.rowDiffMax = d, d
			a.dtMin, a.dtMax = dt, dt
		} else {
			if d < a.rowDiffMin {
				a.rowDiffMin = d
			}
			if d > a.rowDiffMax {
				a.rowDiffMax = d
			}
			if dt < a.dtMin {
				a.dtMin = dt
			}
			if dt > a.dtMax {
				a.dtMax = dt
			}
		}
		a.rowDiffSum += d
		a.dtSum += dt
	}
	a.lastRow, a.lastTime = row, t
	a.count++
}

// stats converts the accumulator into the seqStats newSeqStats would
// return for the same sequence.
func (a *seqAccum) stats() seqStats {
	s := seqStats{
		count:  a.count,
		rowMin: Missing, rowMax: Missing,
		rowDiffMin: Missing, rowDiffMax: Missing, rowDiffAvg: Missing,
		dtMin: Missing, dtMax: Missing, dtAvg: Missing,
	}
	if a.count == 0 {
		return s
	}
	s.rowMin, s.rowMax = a.rowMin, a.rowMax
	if a.count < 2 {
		return s
	}
	n := float64(a.count - 1)
	s.rowDiffMin, s.rowDiffMax, s.rowDiffAvg = a.rowDiffMin, a.rowDiffMax, a.rowDiffSum/n
	s.dtMin, s.dtMax, s.dtAvg = a.dtMin, a.dtMax, a.dtSum/n
	return s
}

// rowSet is a sorted set of distinct rows supporting O(log n)
// nearest-row queries. Insertion is O(n) in the set size but each distinct
// row is inserted exactly once, and the set is bounded by the bank's rows,
// so total insertion work over a session's life is bounded by geometry —
// independent of event count.
type rowSet struct {
	rows []int
}

// add inserts row if absent, reporting whether it was new.
func (r *rowSet) add(row int) bool {
	i := sort.SearchInts(r.rows, row)
	if i < len(r.rows) && r.rows[i] == row {
		return false
	}
	r.rows = append(r.rows, 0)
	copy(r.rows[i+1:], r.rows[i:])
	r.rows[i] = row
	return true
}

// size returns the number of distinct rows.
func (r *rowSet) size() int { return len(r.rows) }

// nearest returns the minimum |row - target| over the set, or Missing when
// empty. The value equals nearestRowDistance over any event sequence
// containing exactly these rows.
func (r *rowSet) nearest(target int) float64 {
	if len(r.rows) == 0 {
		return Missing
	}
	i := sort.SearchInts(r.rows, target)
	best := Missing
	if i < len(r.rows) {
		best = math.Abs(float64(r.rows[i] - target))
	}
	if i > 0 {
		if d := math.Abs(float64(r.rows[i-1] - target)); best == Missing || d < best {
			best = d
		}
	}
	return best
}
