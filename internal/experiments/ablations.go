package experiments

import (
	"fmt"
	"io"
	"strings"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/metrics"
	"cordial/internal/mltree"
	"cordial/internal/xrand"
)

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	Label     string
	PatternF1 float64
	BlockF1   float64
	ICR       float64
}

// Ablation is a labelled sweep result.
type Ablation struct {
	Name string
	Rows []AblationRow
}

// Render writes the sweep as a table.
func (a *Ablation) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "%s\tPattern F1\tBlock F1\tICR (%%)\n", a.Name)
	for _, r := range a.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%s\n", r.Label, r.PatternF1, r.BlockF1, pct(r.ICR))
	}
	return tw.Flush()
}

// runConfig trains a Random-Forest Cordial with the given configuration and
// evaluates pattern F1, block F1 and ICR on the test banks.
func runConfig(p Params, cfg core.Config, train, test []*faultsim.BankFault) (AblationRow, error) {
	cfg.Params = p.Model
	pipe, err := core.New(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	if err := pipe.Fit(train); err != nil {
		return AblationRow{}, err
	}
	pe, err := core.EvaluatePattern(pipe, test)
	if err != nil {
		return AblationRow{}, err
	}
	strat := &core.CordialStrategy{Pipeline: pipe, Geometry: p.Spec.Fault.Geometry}
	res, err := core.EvaluatePrediction(strat, test, cfg.Block, p.Budget)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		PatternF1: pe.Weighted.F1,
		BlockF1:   res.Block.F1,
		ICR:       res.ICR.Rate(),
	}, nil
}

// split prepares the shared fleet and bank split for an ablation.
func (p Params) split() (train, test []*faultsim.BankFault, err error) {
	fleet, err := p.fleet()
	if err != nil {
		return nil, nil, err
	}
	return core.SplitBanks(fleet.Faults, xrand.New(p.SplitSeed), p.TrainFrac)
}

// RunAblationUERBudget sweeps the first-K-UER budget of the pattern
// classifier (§IV-C discusses the trade-off; the paper settles on 3).
func RunAblationUERBudget(p Params, budgets []int) (*Ablation, error) {
	if len(budgets) == 0 {
		budgets = []int{1, 2, 3, 5}
	}
	train, test, err := p.split()
	if err != nil {
		return nil, err
	}
	out := &Ablation{Name: "UER budget"}
	for _, b := range budgets {
		cfg := core.DefaultConfig(core.RandomForest)
		cfg.Pattern = features.PatternConfig{UERBudget: b}
		row, err := runConfig(p, cfg, train, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: budget %d: %w", b, err)
		}
		row.Label = fmt.Sprintf("first %d UERs", b)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RunAblationBlockGeometry sweeps the block size within the paper's 128-row
// window (16×8 in the paper; 32×4 and 8×16 as alternatives).
func RunAblationBlockGeometry(p Params, sizes []int) (*Ablation, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 16}
	}
	train, test, err := p.split()
	if err != nil {
		return nil, err
	}
	out := &Ablation{Name: "Block geometry (window ±64)"}
	for _, size := range sizes {
		cfg := core.DefaultConfig(core.RandomForest)
		cfg.Block = features.BlockSpec{WindowRadius: 64, BlockSize: size}
		row, err := runConfig(p, cfg, train, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: block size %d: %w", size, err)
		}
		row.Label = fmt.Sprintf("%d blocks × %d rows", cfg.Block.NumBlocks(), size)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// RunAblationWindow sweeps the prediction window radius around the last UER
// row (the paper derives ±64 from the Figure 4 locality study).
func RunAblationWindow(p Params, radii []int) (*Ablation, error) {
	if len(radii) == 0 {
		radii = []int{16, 32, 64, 128}
	}
	train, test, err := p.split()
	if err != nil {
		return nil, err
	}
	out := &Ablation{Name: "Window radius (8-row blocks)"}
	for _, radius := range radii {
		cfg := core.DefaultConfig(core.RandomForest)
		cfg.Block = features.BlockSpec{WindowRadius: radius, BlockSize: 8}
		row, err := runConfig(p, cfg, train, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: radius %d: %w", radius, err)
		}
		row.Label = fmt.Sprintf("±%d rows", radius)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// FeatureFamily groups feature columns by the paper's taxonomy (§IV-B).
type FeatureFamily int

// Feature families.
const (
	FamilySpatial FeatureFamily = iota + 1
	FamilyTemporal
	FamilyCount
)

// String names the family.
func (f FeatureFamily) String() string {
	switch f {
	case FamilySpatial:
		return "spatial"
	case FamilyTemporal:
		return "temporal"
	case FamilyCount:
		return "count"
	default:
		return fmt.Sprintf("FeatureFamily(%d)", int(f))
	}
}

// familyOf classifies a feature column by its name.
func familyOf(name string) FeatureFamily {
	switch {
	case strings.Contains(name, "count") || strings.Contains(name, "rate"):
		return FamilyCount
	case strings.Contains(name, "dt_") || strings.HasSuffix(name, "_h"):
		return FamilyTemporal
	default:
		return FamilySpatial
	}
}

// filterColumns keeps only the columns whose name satisfies keep.
func filterColumns(ds *mltree.Dataset, keep func(string) bool) *mltree.Dataset {
	var cols []int
	var names []string
	for j, name := range ds.Names {
		if keep(name) {
			cols = append(cols, j)
			names = append(names, name)
		}
	}
	out := &mltree.Dataset{Names: names, Labels: ds.Labels}
	out.Features = make([][]float64, len(ds.Features))
	for i, row := range ds.Features {
		nr := make([]float64, len(cols))
		for k, j := range cols {
			nr[k] = row[j]
		}
		out.Features[i] = nr
	}
	return out
}

// RunAblationFeatures evaluates pattern classification with each feature
// family alone versus all families together (§IV-B motivates all three).
func RunAblationFeatures(p Params) (*Ablation, error) {
	train, test, err := p.split()
	if err != nil {
		return nil, err
	}
	cfg := features.DefaultPatternConfig()
	trainDS, err := core.BuildPatternDataset(train, cfg, false)
	if err != nil {
		return nil, err
	}
	testDS, err := core.BuildPatternDataset(test, cfg, false)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		label string
		keep  func(string) bool
	}{
		{"spatial only", func(n string) bool { return familyOf(n) == FamilySpatial }},
		{"temporal only", func(n string) bool { return familyOf(n) == FamilyTemporal }},
		{"count only", func(n string) bool { return familyOf(n) == FamilyCount }},
		{"all families", func(string) bool { return true }},
	}
	out := &Ablation{Name: "Pattern feature families"}
	for _, v := range variants {
		tr := filterColumns(trainDS, v.keep)
		te := filterColumns(testDS, v.keep)
		model, err := core.NewModel(core.RandomForest, p.Model, p.SplitSeed)
		if err != nil {
			return nil, err
		}
		if err := model.Fit(tr); err != nil {
			return nil, fmt.Errorf("experiments: features %q: %w", v.label, err)
		}
		var conf metrics.Confusion
		for i, x := range te.Features {
			conf.Add(te.Labels[i], mltree.Predict(model, x))
		}
		out.Rows = append(out.Rows, AblationRow{
			Label:     v.label,
			PatternF1: conf.WeightedAverage().F1,
		})
	}
	return out, nil
}
