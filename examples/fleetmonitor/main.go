// Fleetmonitor: drive a trained Cordial pipeline in streaming mode the way
// the production service (cmd/cordial-serve) does — error events from the
// whole fleet flow through the sharded StreamEngine, per-bank sessions
// accumulate context concurrently, and mitigation actions (row sparing,
// bank sparing) are emitted the moment the pipeline has enough evidence.
package main

import (
	"fmt"
	"log"
	"sort"

	"cordial"
)

func main() {
	// Train on one simulated month...
	trainSpec := cordial.DefaultFleetSpec()
	trainSpec.UERBanks = 200
	trainSpec.BenignBanks = 500
	trainSpec.Seed = 1
	trainFleet, err := cordial.Simulate(trainSpec)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := cordial.Train(cordial.RandomForest, trainFleet.Faults)
	if err != nil {
		log.Fatal(err)
	}

	// ...then monitor a fresh month, live.
	liveSpec := trainSpec
	liveSpec.UERBanks = 40
	liveSpec.BenignBanks = 100
	liveSpec.Seed = 2
	live, err := cordial.Simulate(liveSpec)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := cordial.NewStreamEngine(cordial.DefaultStreamConfig(pipe))
	if err != nil {
		log.Fatal(err)
	}

	// Consume actions as the engine emits them, exactly as an isolation
	// controller would.
	var bankSpares, rowSpares, actionCount int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range engine.Actions() {
			actionCount++
			switch {
			case a.Kind == cordial.ActionBankSpare:
				bankSpares++
				fmt.Printf("%s  bank %s: %s -> BANK SPARE\n",
					a.Time.Format("Jan 02 15:04"), a.Bank, a.Class)
			default:
				rowSpares += len(a.Rows)
				if actionCount <= 20 {
					rows := a.Rows
					if len(rows) > 8 {
						rows = rows[:8]
					}
					fmt.Printf("%s  bank %s: %s -> row-spare %v (+%d more)\n",
						a.Time.Format("Jan 02 15:04"), a.Bank, a.Class,
						rows, len(a.Rows)-len(rows))
				}
			}
		}
	}()

	fmt.Println("streaming fleet events through the Cordial engine...")
	if _, err := engine.IngestLog(live.Log); err != nil {
		log.Fatal(err)
	}
	// Close drains every in-flight event through its session, then closes
	// the action channel.
	if err := engine.Close(); err != nil {
		log.Fatal(err)
	}
	<-done

	stats := engine.Stats()
	fmt.Printf("\nmonitored %d events across %d sessions on %d shards (%.0f events/sec)\n",
		stats.Processed, stats.SessionsLive, stats.Shards, stats.IngestRate)
	fmt.Printf("actions: %d (bank spares: %d, rows isolated: %d); session p99 latency %v\n",
		actionCount, bankSpares, rowSpares, stats.Process.P99)

	// How well did the live decisions anticipate the month's failures?
	res, err := cordial.Evaluate(pipe, live.Faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolation coverage of the live month: %.1f%% of UER rows isolated before failing\n",
		res.ICR.Rate()*100)

	// Busiest sessions by event volume, for the on-call engineer — read
	// straight from the engine's session snapshots.
	type bankLoad struct {
		stats cordial.SessionStats
		n     int
	}
	var loads []bankLoad
	for _, events := range live.Log.GroupByBank() {
		if st, ok := engine.Session(cordial.BankOf(events[0].Addr)); ok {
			loads = append(loads, bankLoad{st, st.Events})
		}
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].n > loads[j].n })
	fmt.Println("\nnoisiest banks this month:")
	for i := 0; i < 5 && i < len(loads); i++ {
		st := loads[i].stats
		status := "watching"
		switch {
		case st.BankSpared:
			status = "bank-spared"
		case st.RowsIsolated > 0:
			status = fmt.Sprintf("%d rows isolated", st.RowsIsolated)
		}
		fmt.Printf("  %3d events  %s  (%s)\n", st.Events, st.Bank, status)
	}
}
