package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"

	"cordial/internal/wal"
)

// Wire types shared by the control plane, node agents and the router.
// []byte fields ride as base64 in JSON, which keeps the handoff bundle a
// plain JSON document end to end.

// walRecordWire is one WAL suffix record in transit. LSNs stay in the
// SOURCE journal's namespace; the importer treats them as foreign
// watermarks only (see stream.ImportSessions).
type walRecordWire struct {
	LSN     uint64 `json:"lsn"`
	Payload []byte `json:"payload"`
}

// HandoffBundle carries one node's portable session state: an engine
// snapshot payload plus the journal suffix the snapshot may not cover.
type HandoffBundle struct {
	Payload []byte          `json:"payload"`
	Suffix  []walRecordWire `json:"suffix,omitempty"`
}

// suffixRecords converts the wire suffix back to wal.Record.
func (b *HandoffBundle) suffixRecords() []wal.Record {
	if len(b.Suffix) == 0 {
		return nil
	}
	out := make([]wal.Record, len(b.Suffix))
	for i, r := range b.Suffix {
		out[i] = wal.Record{LSN: r.LSN, Payload: r.Payload}
	}
	return out
}

// toWire converts wal.Record suffix records to the wire shape.
func toWire(recs []wal.Record) []walRecordWire {
	if len(recs) == 0 {
		return nil
	}
	out := make([]walRecordWire, len(recs))
	for i, r := range recs {
		out[i] = walRecordWire{LSN: r.LSN, Payload: r.Payload}
	}
	return out
}

// exportRequest asks a node to adopt the descriptor's ownership, drain,
// and hand back the sessions it no longer owns.
type exportRequest struct {
	Desc Descriptor `json:"descriptor"`
}

// importRequest asks a node to adopt the descriptor's ownership and
// ingest the bundled sessions it owns under it.
type importRequest struct {
	Desc   Descriptor    `json:"descriptor"`
	Bundle HandoffBundle `json:"bundle"`
}

// dropRequest asks a node to discard local sessions it does not own
// under the descriptor (sent only after the importer acknowledged them).
type dropRequest struct {
	Desc Descriptor `json:"descriptor"`
}

// registerRequest announces a serve node to the control plane.
type registerRequest struct {
	Member Member `json:"member"`
}

// heartbeatRequest keeps a registration alive.
type heartbeatRequest struct {
	ID string `json:"id"`
}

// heartbeatResponse tells the node the current epoch so it can refresh
// its ring when the topology moved.
type heartbeatResponse struct {
	Epoch uint64 `json:"epoch"`
}

// maxResponseBytes bounds any cluster-internal response body. Handoff
// bundles dominate; 256 MiB is far above any realistic session set and
// still protects against a runaway peer.
const maxResponseBytes = 256 << 20

// postJSON posts in as JSON to url and decodes the response into out
// (nil out discards the body). Non-2xx statuses become errors carrying
// the response text.
func postJSON(client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding request for %s: %w", url, err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decodeResponse(resp, url, out)
}

// getJSON fetches url and decodes the response into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return decodeResponse(resp, url, out)
}

func decodeResponse(resp *http.Response, url string, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return fmt.Errorf("cluster: reading %s response: %w", url, err)
	}
	if resp.StatusCode/100 != 2 {
		return &statusError{URL: url, Status: resp.StatusCode, Body: truncate(data, 256)}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cluster: decoding %s response: %w", url, err)
	}
	return nil
}

// statusError is a non-2xx cluster-internal response.
type statusError struct {
	URL    string
	Status int
	Body   string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: %s returned %d: %s", e.URL, e.Status, e.Body)
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// backoffDelay is the bounded exponential ceiling used by every
// cluster-internal retry loop: base, 2×base, 4×base … capped at max.
func backoffDelay(attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// jitteredBackoff draws the actual sleep for one retry: uniform in
// [ceiling/2, ceiling], where ceiling is backoffDelay's bounded
// exponential. Without the jitter every client that lost the same node
// retries on the same schedule, and a recovering node takes the whole
// reconnect storm in synchronized waves; the half-width spread keeps the
// exponential shape (attempt n never sleeps less than attempt n-1's
// ceiling) while decorrelating the arrivals.
func jitteredBackoff(attempt int, base, max time.Duration) time.Duration {
	d := backoffDelay(attempt, base, max)
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(d-half)+1))
}
