package faultsim

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

// Self-labelling turns an OBSERVED per-bank error log back into a labelled
// BankFault, so the online trainer can refit the pipeline from the journal
// without ground truth. The generator's patterns are geometric by
// construction, so the label is recoverable from the spatial layout alone:
// cluster the distinct UER rows with a row-gap threshold and count the
// clusters. The default threshold of 512 rows sits an order of magnitude
// above the intra-cluster spread (ClusterSigma 64 puts ~99% of a cluster
// within ±200 rows) and well below the double-row gap floor (2048), so
// both pattern families land on the right side of it with margin.

// LabelGapThreshold is the row gap that separates two UER-row clusters for
// self-labelling.
const LabelGapThreshold = 512

// labelColumnFraction is the share of UER events one column must carry
// before a many-row bank is labelled whole-column.
const labelColumnFraction = 0.9

// labelColumnMinRows is the minimum distinct UER rows for a whole-column
// label; small aggregation banks trivially concentrate on few columns.
const labelColumnMinRows = 16

// LabelPattern infers the failure pattern from the spatial layout of a
// bank's observed UERs: the distinct failed rows and, per column, how many
// UER events it carried. It is the inverse of the generator's spatial draw,
// evaluated on whatever prefix of the fault has surfaced so far.
func LabelPattern(geo hbm.Geometry, uerRows []int, uerColHits map[int]int) Pattern {
	if len(uerRows) == 0 {
		return PatternScattered
	}

	// Whole-column: errors span many rows but one column carries nearly
	// all of them.
	if len(uerRows) >= labelColumnMinRows {
		total, best := 0, 0
		for _, n := range uerColHits {
			total += n
			if n > best {
				best = n
			}
		}
		if total > 0 && float64(best) >= labelColumnFraction*float64(total) {
			return PatternWholeColumn
		}
	}

	rows := append([]int(nil), uerRows...)
	sort.Ints(rows)
	clusters := 1
	// Cluster centres as the midpoint of each run; only the two-cluster
	// case needs them (for the half-total-row gap test).
	starts := []int{rows[0]}
	ends := []int{rows[0]}
	for i := 1; i < len(rows); i++ {
		if rows[i]-rows[i-1] > LabelGapThreshold {
			clusters++
			starts = append(starts, rows[i])
			ends = append(ends, rows[i])
		} else {
			ends[len(ends)-1] = rows[i]
		}
	}

	switch clusters {
	case 1:
		return PatternSingleRow
	case 2:
		c1 := (starts[0] + ends[0]) / 2
		c2 := (starts[1] + ends[1]) / 2
		gap := c2 - c1
		half := geo.RowsPerBank / 2
		// The generator pins the half-total-row gap at exactly rows/2;
		// allow the cluster-centre estimate a ±1/16-bank error.
		if abs(gap-half) <= geo.RowsPerBank/16 {
			return PatternHalfTotalRow
		}
		return PatternDoubleRow
	default:
		return PatternScattered
	}
}

// ObservedFault reconstructs a labelled BankFault from an observed,
// time-sorted event log: UERRows/UERTimes in first-failure order, SuddenRow
// from whether any same-row error preceded the row's first UER, and Pattern
// from LabelPattern. Returns an error when the log holds no UERs (nothing
// to label — the bank is benign so far). Cause is left unset; it is not a
// training input.
func ObservedFault(geo hbm.Geometry, bank hbm.BankAddress, events []mcelog.Event) (*BankFault, error) {
	bf := &BankFault{Bank: bank, Events: events}
	seenRow := make(map[int]bool) // rows with any error so far
	uerRow := make(map[int]bool)  // rows with a UER so far
	colHits := make(map[int]int)  // UER events per column
	var lastUER time.Time
	for _, ev := range events {
		if ev.Time.Before(lastUER) {
			return nil, fmt.Errorf("faultsim: observed events out of order for bank %v", bank)
		}
		if ev.Class == ecc.ClassUER {
			lastUER = ev.Time
			colHits[ev.Addr.Column]++
			if !uerRow[ev.Addr.Row] {
				uerRow[ev.Addr.Row] = true
				bf.UERRows = append(bf.UERRows, ev.Addr.Row)
				bf.UERTimes = append(bf.UERTimes, ev.Time)
				bf.SuddenRow = append(bf.SuddenRow, !seenRow[ev.Addr.Row])
			}
		}
		seenRow[ev.Addr.Row] = true
	}
	if len(bf.UERRows) == 0 {
		return nil, fmt.Errorf("faultsim: no UERs observed for bank %v", bank)
	}
	bf.Pattern = LabelPattern(geo, bf.UERRows, colHits)
	return bf, nil
}
