package mltree

import (
	"bytes"
	"testing"
)

// forceParallelSplits drops the work-size gate so even tiny test datasets
// exercise the feature-parallel split-search path, restoring it afterwards.
func forceParallelSplits(t *testing.T) {
	t.Helper()
	saved := minParallelSplitWork
	minParallelSplitWork = 1
	t.Cleanup(func() { minParallelSplitWork = saved })
}

// fitAll fits one of every model on the same data with the given
// parallelism, using a fixed seed per model.
func fitAll(t *testing.T, train *Dataset, parallelism int) []Classifier {
	t.Helper()
	models := []Classifier{
		NewTree(TreeConfig{MaxDepth: 8}, nil),
		NewForest(ForestConfig{NumTrees: 12, Seed: 7, Parallelism: parallelism}),
		NewGBDT(GBDTConfig{Rounds: 15, Seed: 7, Parallelism: parallelism}),
		NewHistGBDT(HistGBDTConfig{Rounds: 15, Seed: 7, Parallelism: parallelism}),
	}
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			t.Fatalf("%T.Fit: %v", m, err)
		}
	}
	return models
}

func assertSameProbs(t *testing.T, label string, a, b Classifier, X [][]float64) {
	t.Helper()
	for _, x := range X {
		pa, pb := a.PredictProba(x), b.PredictProba(x)
		if len(pa) != len(pb) {
			t.Fatalf("%s: prob lengths differ: %d vs %d", label, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: probs differ at class %d: %v vs %v", label, i, pa, pb)
			}
		}
	}
}

// TestParallelismEquivalenceAllModels asserts the tentpole correctness
// contract: a seeded fit with Parallelism=8 is bit-identical to
// Parallelism=1, for every model, with the split-search gate forced open so
// the parallel paths actually run.
func TestParallelismEquivalenceAllModels(t *testing.T) {
	forceParallelSplits(t)
	train, test := noisyBlobs(31, 3, 120)
	serial := fitAll(t, train, 1)
	parallel := fitAll(t, train, 8)
	for i := range serial {
		assertSameProbs(t, typeName(serial[i]), serial[i], parallel[i], test.Features)
	}
}

func typeName(c Classifier) string {
	switch c.(type) {
	case *Tree:
		return "Tree"
	case *Forest:
		return "Forest"
	case *GBDT:
		return "GBDT"
	case *HistGBDT:
		return "HistGBDT"
	}
	return "Classifier"
}

// TestFlatTreeMatchesPointerNavigation asserts flat-tree descent reproduces
// pointer navigation exactly, for single trees and boosting chains.
func TestFlatTreeMatchesPointerNavigation(t *testing.T) {
	train, test := noisyBlobs(32, 3, 120)

	tr := NewTree(TreeConfig{MaxDepth: 8}, nil)
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if tr.flat == nil {
		t.Fatal("fit did not compile a flat tree")
	}
	for _, x := range test.Features {
		want := tr.root.navigate(x).Probs
		got := tr.flat.leafProbs(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("flat leaf probs differ: %v vs %v", got, want)
			}
		}
	}

	g := NewGBDT(GBDTConfig{Rounds: 10, Seed: 3})
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, b := range g.boosters {
		if b.flat == nil {
			t.Fatal("fit did not compile the booster chain")
		}
		for _, x := range test.Features {
			want := b.Bias
			for _, tn := range b.Trees {
				want += b.LR * tn.navigate(x).Value
			}
			if got := b.flat.margin(b.Bias, b.LR, x); got != want {
				t.Fatalf("flat margin %v differs from pointer walk %v", got, want)
			}
		}
	}
}

// TestSerializeRoundTripCompilesFlat asserts a loaded model predicts through
// recompiled flat trees and matches the original exactly, per-row and
// batched.
func TestSerializeRoundTripCompilesFlat(t *testing.T) {
	train, test := noisyBlobs(33, 3, 120)
	for _, m := range fitAll(t, train, 0) {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", typeName(m), err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", typeName(m), err)
		}
		switch lm := loaded.(type) {
		case *Tree:
			if lm.flat == nil {
				t.Fatal("loaded tree has no flat form")
			}
		case *Forest:
			for _, tr := range lm.trees {
				if tr.flat == nil {
					t.Fatal("loaded forest member has no flat form")
				}
			}
		case *GBDT:
			for _, b := range lm.boosters {
				if b.flat == nil {
					t.Fatal("loaded gbdt booster has no flat form")
				}
			}
		case *HistGBDT:
			for _, b := range lm.boosters {
				if b.flat == nil {
					t.Fatal("loaded histgbdt booster has no flat form")
				}
			}
		}
		assertSameProbs(t, typeName(m), m, loaded, test.Features)
		batch := loaded.PredictBatch(test.Features)
		for i, x := range test.Features {
			single := m.PredictProba(x)
			for c := range single {
				if batch[i][c] != single[c] {
					t.Fatalf("%s: batch row %d differs from single prediction", typeName(m), i)
				}
			}
		}
	}
}

// TestPredictBatchMatchesSingle asserts the parallel batch driver returns
// exactly the per-row PredictProba results, and that PredictLabels matches
// Predict.
func TestPredictBatchMatchesSingle(t *testing.T) {
	train, test := noisyBlobs(34, 3, 120)
	for _, m := range fitAll(t, train, 0) {
		batch := m.PredictBatch(test.Features)
		if len(batch) != len(test.Features) {
			t.Fatalf("%s: batch length %d, want %d", typeName(m), len(batch), len(test.Features))
		}
		for i, x := range test.Features {
			single := m.PredictProba(x)
			for c := range single {
				if batch[i][c] != single[c] {
					t.Fatalf("%s: batch row %d class %d: %v vs %v", typeName(m), i, c, batch[i], single)
				}
			}
		}
		labels := PredictLabels(m, test.Features)
		for i, x := range test.Features {
			if want := Predict(m, x); labels[i] != want {
				t.Fatalf("%s: PredictLabels[%d]=%d, Predict=%d", typeName(m), i, labels[i], want)
			}
		}
	}
}

// TestHistGBDTBinnedNavigationMatchesRaw asserts that navigating a grown
// tree via the pre-binned matrix reaches the same leaf as navigating the raw
// features — the invariant the training-time margin update relies on.
func TestHistGBDTBinnedNavigationMatchesRaw(t *testing.T) {
	train, _ := noisyBlobs(35, 3, 120)
	h := NewHistGBDT(HistGBDTConfig{Rounds: 8, Seed: 5})
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	bins := newBinner(train.Features, h.Config.MaxBins)
	binned := make([][]uint16, len(train.Features))
	for i, row := range train.Features {
		br := make([]uint16, len(row))
		for f, v := range row {
			br[f] = uint16(bins.bin(f, v))
		}
		binned[i] = br
	}
	for _, b := range h.boosters {
		for _, root := range b.Trees {
			for i, row := range train.Features {
				raw := root.navigate(row)
				bn := root.navigateBinned(binned[i])
				if raw != bn {
					t.Fatalf("binned navigation reached a different leaf for row %d", i)
				}
			}
		}
	}
}

// TestRunWorkers exercises the shared pool helper directly: every index runs
// exactly once for any worker request, including degenerate ones.
func TestRunWorkers(t *testing.T) {
	for _, want := range []int{0, 1, 2, 8, 100} {
		n := 57
		counts := make([]int32, n)
		runWorkers(n, want, func(worker, i int) {
			if worker < 0 || worker > maxExtraWorkers {
				t.Errorf("worker id %d out of range", worker)
			}
			counts[i]++
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("want=%d: index %d ran %d times", want, i, c)
			}
		}
	}
	runWorkers(0, 4, func(_, _ int) { t.Fatal("task ran for n=0") })
}
