package core

import (
	"fmt"
	"math"
	"time"

	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/metrics"
	"cordial/internal/mltree"
	"cordial/internal/sparing"
	"cordial/internal/xrand"
)

// SplitBanks partitions banks 70/30 (or any fraction) at bank granularity,
// stratified by ground-truth class so rare classes appear on both sides.
func SplitBanks(banks []*faultsim.BankFault, rng *xrand.RNG, trainFrac float64) (train, test []*faultsim.BankFault, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("core: train fraction %g out of (0,1)", trainFrac)
	}
	byClass := make(map[faultsim.Class][]*faultsim.BankFault)
	for _, b := range banks {
		byClass[b.Class()] = append(byClass[b.Class()], b)
	}
	for _, class := range faultsim.AllClasses {
		group := byClass[class]
		if len(group) == 0 {
			continue
		}
		rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		k := int(math.Round(float64(len(group)) * trainFrac))
		if k == 0 {
			k = 1
		}
		if k > len(group) {
			k = len(group)
		}
		train = append(train, group[:k]...)
		test = append(test, group[k:]...)
	}
	if len(train) == 0 || len(test) == 0 {
		return nil, nil, fmt.Errorf("core: bank split produced an empty side (%d/%d)", len(train), len(test))
	}
	return train, test, nil
}

// PatternEval is the Table III result for one backend.
type PatternEval struct {
	Confusion metrics.Confusion
	PerClass  map[faultsim.Class]metrics.Report
	Weighted  metrics.Report
}

// EvaluatePattern classifies every test bank and scores the result.
func EvaluatePattern(p *Pipeline, banks []*faultsim.BankFault) (*PatternEval, error) {
	if !p.Fitted() {
		return nil, fmt.Errorf("core: pipeline not fitted")
	}
	eval := &PatternEval{PerClass: make(map[faultsim.Class]metrics.Report)}
	// Extract every classifiable bank's feature vector, then classify the
	// whole test set in one batch over the flat trees.
	var vecs [][]float64
	var truths []int
	for _, bf := range banks {
		st, err := p.replayState(bf.Events)
		if err != nil {
			return nil, err
		}
		vec, err := patternVectorOf(st, p.cfg.ErrBits)
		if err != nil {
			continue // bank without UERs: out of scope
		}
		vecs = append(vecs, vec)
		truths = append(truths, int(bf.Class()))
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("core: no classifiable banks in the test set")
	}
	for i, got := range mltree.PredictLabels(p.patternModel, vecs) {
		eval.Confusion.Add(truths[i], got)
	}
	for _, class := range faultsim.AllClasses {
		eval.PerClass[class] = eval.Confusion.ClassReport(int(class))
	}
	eval.Weighted = eval.Confusion.WeightedAverage()
	return eval, nil
}

// PredictionEval is the Table IV result for one strategy.
type PredictionEval struct {
	// Name is the strategy's display name.
	Name string
	// Block holds precision/recall/F1 over all block predictions.
	Block metrics.Report
	// BlockOutcomes is the underlying binary confusion.
	BlockOutcomes metrics.Binary
	// BlockScores accumulates per-block probabilities (when the strategy
	// provides them) for the threshold-free AUC.
	BlockScores metrics.Scored
	// ICR is the isolation coverage over all test-bank UER rows, crediting
	// any isolation mechanism (row sparing and bank sparing).
	ICR metrics.ICR
	// CrossRowICR credits only row-granular isolation — the paper's ICR,
	// which measures what the cross-row predictions themselves cover.
	CrossRowICR metrics.ICR
	// Usage summarises consumed spare resources.
	Usage sparing.UsageStats
}

// EvaluatePrediction replays every test bank's event stream through the
// strategy, applies its decisions on a fresh sparing engine, and scores
// block predictions (precision/recall/F1) and isolation coverage (ICR).
//
// Block ground truth at a prediction step: a block is positive when a
// not-yet-failed UER row (first UER strictly after the step's time) falls in
// the block's row range. ICR ground truth: a UER row counts as covered when
// an isolation action that includes it took effect strictly before the row's
// first UER.
func EvaluatePrediction(s Strategy, banks []*faultsim.BankFault, spec features.BlockSpec, budget sparing.Budget) (*PredictionEval, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	engine, err := sparing.NewEngine(budget)
	if err != nil {
		return nil, err
	}
	eval := &PredictionEval{Name: s.Name()}

	for _, bf := range banks {
		session := s.NewSession(bf.Bank)
		for _, e := range bf.Events {
			d := session.OnEvent(e)
			if d.SpareBank {
				// Exhausted bank spares degrade coverage but are not an
				// evaluation error — that is the cost model at work.
				_ = engine.SpareBank(bf.Bank, e.Time)
			}
			if len(d.IsolateRows) > 0 {
				engine.SpareRows(bf.Bank, d.IsolateRows, e.Time)
			}
			if d.Blocks != nil {
				scoreBlocks(eval, d.Blocks, spec, bf, e.Time)
			}
		}
		for i, row := range bf.UERRows {
			eval.ICR.Add(engine.IsRowIsolatedBefore(bf.Bank, row, bf.UERTimes[i]))
			eval.CrossRowICR.Add(engine.IsRowSparedBefore(bf.Bank, row, bf.UERTimes[i]))
		}
	}
	eval.Block = eval.BlockOutcomes.Report()
	eval.Usage = engine.Usage()
	return eval, nil
}

// BlockAUC returns the threshold-free ROC AUC of the block probabilities, or
// ok=false when the strategy provided no scores (or one class is absent).
func (e *PredictionEval) BlockAUC() (float64, bool) {
	return e.BlockScores.AUC()
}

// scoreBlocks accumulates one step's block predictions against ground truth:
// a block is positive when any UER event (new row or recurrence) lands in it
// strictly after the prediction time. Probabilities, when present, feed the
// threshold-free AUC alongside the thresholded confusion.
func scoreBlocks(eval *PredictionEval, pred *BlockPrediction, spec features.BlockSpec, bf *faultsim.BankFault, now time.Time) {
	for b, predicted := range pred.Predicted {
		actual := blockHasFutureUER(bf, spec, pred.AnchorRow, b, now)
		eval.BlockOutcomes.Add(actual, predicted)
		if pred.Probs != nil {
			eval.BlockScores.Add(pred.Probs[b], actual)
		}
	}
}
