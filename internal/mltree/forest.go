package mltree

import (
	"runtime"

	"cordial/internal/xrand"
)

// ForestConfig configures a Random Forest classifier.
type ForestConfig struct {
	// NumTrees is the ensemble size (default 100).
	NumTrees int
	// Tree configures each member; MaxFeatures defaults to sqrt when 0.
	Tree TreeConfig
	// BootstrapRatio is the bootstrap sample size as a fraction of the
	// training set (default 1.0).
	BootstrapRatio float64
	// Parallelism is the number of goroutines fitting member trees;
	// <=0 means runtime.GOMAXPROCS(0). Results are deterministic
	// regardless of the value: every member's RNG is derived up front and
	// trees land at their index.
	Parallelism int
	// Seed drives bootstrapping and feature subsampling.
	Seed uint64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 100
	}
	if c.BootstrapRatio <= 0 {
		c.BootstrapRatio = 1
	}
	if c.Tree.MaxFeatures == 0 {
		c.Tree.MaxFeatures = -1 // sqrt
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Forest is a Random Forest classifier: bootstrap-aggregated CART trees with
// per-split feature subsampling, predictions averaged over members.
type Forest struct {
	Config  ForestConfig
	trees   []*Tree
	classes []int
	// oobScore is the out-of-bag accuracy estimated during Fit, or -1.
	oobScore float64
}

// NewForest returns an unfitted Random Forest.
func NewForest(cfg ForestConfig) *Forest {
	return &Forest{Config: cfg.withDefaults(), oobScore: -1}
}

var _ Classifier = (*Forest)(nil)

// Classes returns the labels seen during Fit.
func (f *Forest) Classes() []int { return f.classes }

// NumTrees returns the number of fitted members.
func (f *Forest) NumTrees() int { return len(f.trees) }

// OOBScore returns the out-of-bag accuracy estimate from Fit, or -1 when it
// could not be computed (e.g. every sample was in every bag).
func (f *Forest) OOBScore() float64 { return f.oobScore }

// Fit trains the ensemble.
func (f *Forest) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	f.classes = ds.Classes()
	idx := classIndex(f.classes)
	n := ds.NumSamples()
	bag := int(float64(n) * f.Config.BootstrapRatio)
	if bag < 1 {
		bag = 1
	}
	rng := xrand.New(f.Config.Seed)

	// Shared read-only training state: the columnized matrix, encoded
	// labels, and one presort of the full training set. Each member's
	// bootstrap bag is a multiset of these rows, so its per-feature sorted
	// lists are derived from the base order by a counting filter — no
	// per-tree sorting at all. Duplicated rows share a value, so emitting
	// the copies adjacently leaves every boundary scan (and therefore every
	// split, tree, and prediction) identical to sorting the bag directly.
	cols := columnize(ds.Features)
	y := make([]int, n)
	for i, l := range ds.Labels {
		y[i] = idx[l]
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	baseSorted := presortByFeature(cols, all)

	// Out-of-bag vote accumulation: votes[i][c] sums probabilities from
	// trees whose bag excluded sample i.
	votes := make([][]float64, n)
	for i := range votes {
		votes[i] = make([]float64, len(f.classes))
	}
	oobSeen := make([]bool, n)

	// Derive every member's RNG up front so fitting order cannot change
	// the result, then fan the members out over the shared worker pool.
	type member struct {
		tree  *Tree
		inBag []bool
	}
	members := make([]member, f.Config.NumTrees)
	rngs := make([]*xrand.RNG, f.Config.NumTrees)
	for t := range rngs {
		rngs[t] = rng.Split()
	}

	runWorkers(f.Config.NumTrees, f.Config.Parallelism, func(_, t int) {
		treeRNG := rngs[t]
		mult := make([]int, n)
		inBag := make([]bool, n)
		for j := 0; j < bag; j++ {
			s := treeRNG.Intn(n)
			mult[s]++
			inBag[s] = true
		}
		tree := NewTree(f.Config.Tree, treeRNG)
		tree.fitFromSorted(cols, y, f.classes, deriveSorted(baseSorted, mult, bag))
		members[t] = member{tree: tree, inBag: inBag}
	})

	f.trees = make([]*Tree, 0, f.Config.NumTrees)
	for t := range members {
		m := members[t]
		f.trees = append(f.trees, m.tree)
		for i := 0; i < n; i++ {
			if m.inBag[i] {
				continue
			}
			oobSeen[i] = true
			probs := m.tree.predictProbaAligned(ds.Features[i], f.classes)
			for c, p := range probs {
				votes[i][c] += p
			}
		}
	}

	// OOB accuracy.
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		if !oobSeen[i] {
			continue
		}
		counted++
		best, bestV := 0, votes[i][0]
		for c, v := range votes[i] {
			if v > bestV {
				best, bestV = c, v
			}
		}
		if best == idx[ds.Labels[i]] {
			correct++
		}
	}
	if counted > 0 {
		f.oobScore = float64(correct) / float64(counted)
	} else {
		f.oobScore = -1
	}
	return nil
}

// predictProbaAligned re-aligns a member tree's class probabilities onto the
// forest's class list (a bootstrap bag can miss rare classes entirely).
func (t *Tree) predictProbaAligned(x []float64, classes []int) []float64 {
	raw := t.PredictProba(x)
	if len(t.classes) == len(classes) {
		same := true
		for i := range classes {
			if t.classes[i] != classes[i] {
				same = false
				break
			}
		}
		if same {
			return raw
		}
	}
	out := make([]float64, len(classes))
	idx := classIndex(classes)
	for i, c := range t.classes {
		out[idx[c]] = raw[i]
	}
	return out
}

// PredictProba averages the member trees' leaf distributions.
func (f *Forest) PredictProba(x []float64) []float64 {
	out := make([]float64, len(f.classes))
	if len(f.trees) == 0 {
		return out
	}
	for _, tree := range f.trees {
		probs := tree.predictProbaAligned(x, f.classes)
		for c, p := range probs {
			out[c] += p
		}
	}
	inv := 1 / float64(len(f.trees))
	for c := range out {
		out[c] *= inv
	}
	return out
}

// PredictBatch predicts every row of X, in parallel across rows; each row's
// result is identical to PredictProba on that row.
func (f *Forest) PredictBatch(X [][]float64) [][]float64 {
	return predictBatch(X, f.Config.Parallelism, f.PredictProba)
}
