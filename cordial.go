// Package cordial is the public facade of a full reproduction of
// "Cordial: Cross-row Failure Prediction Method Based on Bank-level Error
// Locality for HBMs" (Gu et al., DSN-S 2025).
//
// Cordial predicts uncorrectable-error (UER) rows in High Bandwidth Memory
// *across* rows: instead of waiting for a row to show precursor errors
// (hopeless when >95% of row failures are sudden), it classifies a bank's
// failure pattern from its first three UERs and, for aggregation patterns,
// predicts which 8-row blocks in the ±64-row window around the last failure
// will fail next, so they can be row-spared preemptively. Scattered patterns
// are bank-spared instead.
//
// The typical flow:
//
//	fleet, _ := cordial.Simulate(cordial.DefaultFleetSpec())      // or ingest a real mcelog
//	train, test, _ := cordial.Split(fleet.Faults, 1, 0.7)
//	pipe, _ := cordial.Train(cordial.RandomForest, train)
//	result, _ := cordial.Evaluate(pipe, test)
//	fmt.Println(result.Block.F1, result.ICR.Rate())
//
// Sub-systems live in internal packages: HBM topology (internal/hbm), a
// (72,64) Hsiao SEC-DED ECC model (internal/ecc), MCE logs and codecs
// (internal/mcelog), the calibrated fault simulator (internal/faultsim,
// internal/trace), feature extraction (internal/features), from-scratch tree
// learners (internal/mltree), mitigation engine (internal/sparing), and the
// Cordial pipeline itself (internal/core). This package re-exports the types
// a downstream user needs.
package cordial

import (
	"io"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/hbm"
	"cordial/internal/lifecycle"
	"cordial/internal/mcelog"
	"cordial/internal/mltree"
	"cordial/internal/registry"
	"cordial/internal/sparing"
	"cordial/internal/stream"
	"cordial/internal/trace"
	"cordial/internal/xrand"
)

// Re-exported types. The aliases keep one import path for library users
// while the implementation stays modular.
type (
	// Geometry describes the modelled HBM fleet dimensions.
	Geometry = hbm.Geometry
	// Address locates a memory cell (or coarser entity) in the fleet.
	Address = hbm.Address
	// Event is one logged memory error.
	Event = mcelog.Event
	// Log is an in-memory MCE log.
	Log = mcelog.Log
	// Fleet is a synthesised dataset with ground truth.
	Fleet = trace.Fleet
	// FleetSpec configures fleet synthesis.
	FleetSpec = trace.Spec
	// BankFault is one faulty bank's events plus ground truth.
	BankFault = faultsim.BankFault
	// Pattern is a generator-level failure pattern (five shapes).
	Pattern = faultsim.Pattern
	// Class is a classifier-level failure class (three groups).
	Class = faultsim.Class
	// Config configures a Cordial pipeline.
	Config = core.Config
	// Pipeline is a trained Cordial instance.
	Pipeline = core.Pipeline
	// ModelKind selects the tree-ensemble backend.
	ModelKind = core.ModelKind
	// ModelParams tunes ensemble sizes.
	ModelParams = core.ModelParams
	// Strategy is a mitigation policy under evaluation.
	Strategy = core.Strategy
	// Session is a strategy's per-bank state for streaming use.
	Session = core.Session
	// Decision is one mitigation step returned by a Session.
	Decision = core.Decision
	// PredictionEval is a Table IV style evaluation result.
	PredictionEval = core.PredictionEval
	// PatternEval is a Table III style evaluation result.
	PatternEval = core.PatternEval
	// Budget bounds spare resources.
	Budget = sparing.Budget
	// BlockSpec is the cross-row window geometry.
	BlockSpec = features.BlockSpec
)

// Model backends (Table III/IV).
const (
	RandomForest = core.RandomForest
	XGBoost      = core.XGBoost
	LightGBM     = core.LightGBM
)

// Level identifies a micro-level of the HBM hierarchy.
type Level = hbm.Level

// Hierarchy levels, coarsest first (paper Tables I and II).
const (
	LevelNPU           = hbm.LevelNPU
	LevelHBM           = hbm.LevelHBM
	LevelSID           = hbm.LevelSID
	LevelChannel       = hbm.LevelChannel
	LevelPseudoChannel = hbm.LevelPseudoChannel
	LevelBankGroup     = hbm.LevelBankGroup
	LevelBank          = hbm.LevelBank
	LevelRow           = hbm.LevelRow
)

// BankOf returns the bank-level address containing a.
func BankOf(a Address) Address { return hbm.BankOf(a) }

// DefaultGeometry is the HBM2E organisation of the paper's Figure 1.
var DefaultGeometry = hbm.DefaultGeometry

// DefaultFleetSpec returns the calibrated fleet-synthesis specification:
// pattern mix per Figure 3(b), sudden ratios per Table I, locality per
// Figure 4.
func DefaultFleetSpec() FleetSpec { return trace.DefaultSpec(hbm.DefaultGeometry) }

// Simulate synthesises a fleet-scale error log with ground truth. It stands
// in for the paper's proprietary industrial dataset.
func Simulate(spec FleetSpec) (*Fleet, error) { return trace.Generate(spec) }

// Split partitions faulty banks into train and test sets (bank-granular,
// stratified by failure class), seeded deterministically.
func Split(banks []*BankFault, seed uint64, trainFrac float64) (train, test []*BankFault, err error) {
	return core.SplitBanks(banks, xrand.New(seed), trainFrac)
}

// DefaultConfig returns the paper-faithful pipeline configuration for a
// backend: first-3-UER pattern budget, 16 blocks × 8 rows, auto-calibrated
// block threshold.
func DefaultConfig(kind ModelKind) Config { return core.DefaultConfig(kind) }

// Train fits a Cordial pipeline with the default configuration on the given
// training banks.
func Train(kind ModelKind, banks []*BankFault) (*Pipeline, error) {
	return TrainWithConfig(core.DefaultConfig(kind), banks)
}

// TrainWithConfig fits a Cordial pipeline with an explicit configuration.
func TrainWithConfig(cfg Config, banks []*BankFault) (*Pipeline, error) {
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Fit(banks); err != nil {
		return nil, err
	}
	return p, nil
}

// Load restores a pipeline previously saved with Pipeline.SaveModels.
func Load(r io.Reader, kind ModelKind) (*Pipeline, error) {
	p, err := core.New(core.DefaultConfig(kind))
	if err != nil {
		return nil, err
	}
	if err := p.LoadModels(r); err != nil {
		return nil, err
	}
	return p, nil
}

// NewStrategy wraps a fitted pipeline as an evaluable mitigation strategy.
func NewStrategy(p *Pipeline, geo Geometry) Strategy {
	return &core.CordialStrategy{Pipeline: p, Geometry: geo}
}

// NeighborRowsBaseline returns the paper's industrial baseline: isolate the
// eight rows adjacent to every identified UER row.
func NeighborRowsBaseline(geo Geometry, block BlockSpec) Strategy {
	return &core.NeighborRowsStrategy{Geometry: geo, Block: block}
}

// InRowBaseline returns the conventional in-row prediction paradigm, whose
// coverage is bounded by the non-sudden row ratio (Table I).
func InRowBaseline(geo Geometry) Strategy {
	return &core.InRowStrategy{Geometry: geo}
}

// Importance is one feature's importance score in a fitted model.
type Importance = mltree.Importance

// CalchasBaseline trains and returns the learned hierarchical in-row
// baseline (after the Calchas framework the paper contrasts with): a Random
// Forest over in-row history plus bank context, isolating rows predicted to
// fail. Like every in-row method it is bounded by the non-sudden ratio.
func CalchasBaseline(banks []*BankFault, params ModelParams, seed uint64) (Strategy, error) {
	c := &core.Calchas{Params: params, Seed: seed}
	if err := c.Fit(banks); err != nil {
		return nil, err
	}
	return c, nil
}

// EvaluatePattern scores pattern classification on test banks (Table III).
func EvaluatePattern(p *Pipeline, banks []*BankFault) (*PatternEval, error) {
	return core.EvaluatePattern(p, banks)
}

// Evaluate scores a fitted pipeline end to end on test banks (Table IV) with
// the default spare budget and the default geometry. When the banks were
// simulated with a custom Geometry whose RowsPerBank differs from the
// default, use EvaluateStrategy with NewStrategy(p, customGeometry) instead,
// so predicted rows clip against the right bank height.
func Evaluate(p *Pipeline, banks []*BankFault) (*PredictionEval, error) {
	return EvaluateStrategy(NewStrategy(p, DefaultGeometry), banks, p.Config().Block)
}

// EvaluateStrategy scores any mitigation strategy on test banks.
func EvaluateStrategy(s Strategy, banks []*BankFault, block BlockSpec) (*PredictionEval, error) {
	return core.EvaluatePrediction(s, banks, block, sparing.DefaultBudget())
}

// SuddenStats is the per-level sudden/non-sudden UER tally of Table I.
type SuddenStats = trace.SuddenStats

// LevelSummary is the per-level affected-entity tally of Table II.
type LevelSummary = trace.LevelSummary

// LocalityPoint is one point of the Figure 4 locality curve.
type LocalityPoint = trace.LocalityPoint

// PatternShare is one slice of the Figure 3(b) pattern distribution.
type PatternShare = trace.PatternShare

// SuddenByLevel computes the paper's Table I from any MCE log: per
// micro-level, how many entities' first UER was sudden (no in-entity
// precursor) versus predictable.
func SuddenByLevel(log *Log) []SuddenStats { return trace.SuddenByLevel(log) }

// SummaryByLevel computes the paper's Table II from any MCE log: per
// micro-level, how many entities logged CEs, UEOs and UERs.
func SummaryByLevel(log *Log) []LevelSummary { return trace.SummaryByLevel(log) }

// LocalityChiSquare computes the paper's Figure 4 from any MCE log: the
// chi-square significance of successive UERs landing within each row
// distance threshold.
func LocalityChiSquare(log *Log, rowsPerBank int, thresholds []int) ([]LocalityPoint, error) {
	return trace.LocalityChiSquare(log, rowsPerBank, thresholds)
}

// DefaultThresholds returns the Figure 4 x axis (4..2048, powers of two).
func DefaultThresholds() []int { return trace.DefaultThresholds() }

// PatternDistribution tallies the ground-truth pattern mix of faulty banks
// (Figure 3(b)).
func PatternDistribution(faults []*BankFault) []PatternShare {
	return trace.PatternDistribution(faults)
}

// Trainer maintains a deployed pipeline over a stream of labelled banks,
// retraining on a sliding window per policy, early on drift.
type Trainer = core.Trainer

// RetrainPolicy governs Trainer scheduling and drift detection.
type RetrainPolicy = core.RetrainPolicy

// DefaultRetrainPolicy returns a two-month-window, weekly-cadence policy
// with chi-square drift detection.
func DefaultRetrainPolicy() RetrainPolicy { return core.DefaultRetrainPolicy() }

// NewTrainer returns a retraining driver that builds pipelines with cfg.
func NewTrainer(cfg Config, policy RetrainPolicy) (*Trainer, error) {
	return core.NewTrainer(cfg, policy)
}

// DriftSpec configures a multi-regime fleet whose failure mix changes over
// time (for exercising drift detection).
type DriftSpec = trace.DriftSpec

// Regime is one period of a drift fleet with its own pattern mix.
type Regime = trace.Regime

// DriftFleet is a generated multi-regime dataset.
type DriftFleet = trace.DriftFleet

// SimulateDrift synthesises a fleet whose failure-pattern mix shifts across
// regimes, banks ordered by failure onset.
func SimulateDrift(spec DriftSpec) (*DriftFleet, error) { return trace.GenerateDrift(spec) }

// PatternWeights is a sampling distribution over failure patterns.
type PatternWeights = faultsim.PatternWeights

// FaultConfig is the per-bank fault-process configuration.
type FaultConfig = faultsim.Config

// DefaultFaultConfig returns the calibrated per-bank fault process.
func DefaultFaultConfig() FaultConfig { return faultsim.DefaultConfig(hbm.DefaultGeometry) }

// Failure patterns (Figure 3).
const (
	PatternSingleRow    = faultsim.PatternSingleRow
	PatternDoubleRow    = faultsim.PatternDoubleRow
	PatternHalfTotalRow = faultsim.PatternHalfTotalRow
	PatternScattered    = faultsim.PatternScattered
	PatternWholeColumn  = faultsim.PatternWholeColumn
)

// StreamEngine is the concurrent, sharded online prediction engine: events
// ingested from the whole fleet are routed to per-bank sessions and typed
// mitigation Actions are emitted on StreamEngine.Actions the moment the
// pipeline decides them. Construct with NewStreamEngine.
type StreamEngine = stream.Engine

// StreamConfig configures a StreamEngine (shard count, queue depths,
// full-queue ingest policy).
type StreamConfig = stream.Config

// Action is one mitigation the stream engine recommends (row-spare rows or
// bank-spare), with the triggering event time and assigned failure class.
type Action = stream.Action

// ActionKind is the mitigation mechanism of an Action.
type ActionKind = sparing.ActionKind

// Mitigation mechanisms.
const (
	ActionRowSpare    = sparing.ActionRowSpare
	ActionBankSpare   = sparing.ActionBankSpare
	ActionPageOffline = sparing.ActionPageOffline
)

// SessionStats is a point-in-time snapshot of one bank's streaming session.
type SessionStats = stream.SessionStats

// StreamStats is a point-in-time snapshot of the whole engine: ingest
// rate, queue depths, sessions live, actions emitted, latency snapshots.
type StreamStats = stream.EngineStats

// IngestPolicy selects what StreamEngine.Ingest does when a shard queue is
// full: apply backpressure or shed load.
type IngestPolicy = stream.IngestPolicy

// Full-queue ingest policies.
const (
	// IngestBlock waits for queue space (backpressure).
	IngestBlock = stream.IngestBlock
	// IngestDrop sheds the event and returns stream.ErrDropped.
	IngestDrop = stream.IngestDrop
)

// NewStreamEngine starts a sharded online prediction engine over a fitted
// pipeline's strategy. Close it to drain in-flight events and release the
// shard goroutines:
//
//	engine, _ := cordial.NewStreamEngine(cordial.DefaultStreamConfig(pipe))
//	go func() {
//		for a := range engine.Actions() {
//			fmt.Println(a.Kind, a.Bank, a.Rows)
//		}
//	}()
//	for _, e := range events {
//		engine.Ingest(e)
//	}
//	engine.Close()
func NewStreamEngine(cfg StreamConfig) (*StreamEngine, error) { return stream.New(cfg) }

// DefaultStreamConfig returns a StreamConfig serving the given fitted
// pipeline with the default geometry, GOMAXPROCS shards and backpressure
// ingest.
func DefaultStreamConfig(p *Pipeline) StreamConfig {
	return StreamConfig{
		Strategy: NewStrategy(p, DefaultGeometry),
		Geometry: DefaultGeometry,
	}
}

// NewStreamServer wraps a StreamEngine with the cordial-serve HTTP API
// (JSONL batch ingest, action retrieval, session inspection, health and
// stats endpoints); mount the returned handler on any mux or server.
func NewStreamServer(e *StreamEngine) *stream.Server {
	return stream.NewServer(e, stream.ServerConfig{})
}

// StreamDurability configures the engine's journal + snapshot directory;
// set it on StreamConfig.Durability to make ingest crash-safe (and to give
// the lifecycle manager a journal to retrain from).
type StreamDurability = stream.DurabilityConfig

// ModelRegistry is the versioned, crash-safe model store (DESIGN.md §13).
// It satisfies the stream engine's model source: set StreamConfig.Models
// to a registry and sessions bind the registry's active version.
type ModelRegistry = registry.Registry

// ModelRegistryOptions configures OpenModelRegistry. An empty Dir keeps the
// registry in memory (versions are assigned but nothing survives restart).
type ModelRegistryOptions = registry.Options

// ModelVersionMeta describes one stored model version (training window,
// class mix, trigger, creation time).
type ModelVersionMeta = registry.Meta

// OpenModelRegistry loads (or initialises) a versioned model registry.
func OpenModelRegistry(opts ModelRegistryOptions) (*ModelRegistry, error) {
	return registry.Open(opts)
}

// LifecycleManager runs the online drift→retrain→shadow→promote loop over
// a stream engine and a model registry: it watches the live class mix for
// drift, refits a candidate from the engine's own journal (self-labelled),
// shadow-scores it against live traffic, and promotes it through the
// engine's atomic swap point only if its isolation coverage holds up.
type LifecycleManager = lifecycle.Manager

// LifecycleConfig configures a LifecycleManager; Engine and Registry are
// required, everything else has conservative defaults.
type LifecycleConfig = lifecycle.Config

// LifecycleStatus is a point-in-time picture of the lifecycle loop.
type LifecycleStatus = lifecycle.Status

// NewLifecycleManager validates the configuration and returns a manager.
// Call Run to drive the loop on a cadence, or Tick/Retrain/Promote/Rollback
// to step it by hand.
func NewLifecycleManager(cfg LifecycleConfig) (*LifecycleManager, error) {
	return lifecycle.New(cfg)
}
