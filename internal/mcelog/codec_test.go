package mcelog

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	l := FromEvents(randomEvents(200, 3))
	l.Sort()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), l.Len())
	}
	for i := 0; i < l.Len(); i++ {
		want, have := l.At(i), got.At(i)
		if !want.Time.Equal(have.Time) || want.Addr != have.Addr || want.Class != have.Class {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, want, have)
		}
	}
}

func TestJSONLEmpty(t *testing.T) {
	var l Log
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round trip len = %d", got.Len())
	}
}

func TestParseJSONEvent(t *testing.T) {
	l := FromEvents(randomEvents(20, 3))
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		got, err := ParseJSONEvent([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		want := l.At(i)
		if !got.Time.Equal(want.Time) || got.Addr != want.Addr || got.Class != want.Class {
			t.Fatalf("line %d: %+v != %+v", i, got, want)
		}
	}
	for _, bad := range []string{
		"",
		"not json",
		`{"time":"2026-01-01T00:00:00Z","addr":"bogus","class":"CE"}`,
		`{"time":"2026-01-01T00:00:00Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col1","class":"??"}`,
		`{"addr":"n0.u0.h0.s0.c0.p0.g0.b0.r1.col1","class":"CE"}`,
	} {
		if _, err := ParseJSONEvent([]byte(bad)); err == nil {
			t.Errorf("ParseJSONEvent(%q) accepted", bad)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"not json at all",
		`{"time":"2025-01-01T00:00:00Z","addr":"bogus","class":"CE"}`,
		`{"time":"2025-01-01T00:00:00Z","addr":"n1.u2.h1.s0.c5.p1.g2.b3.r1.col8","class":"WAT"}`,
	} {
		if _, err := ReadJSONL(strings.NewReader(s)); err == nil {
			t.Errorf("ReadJSONL accepted %q", s)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	l := FromEvents(randomEvents(500, 4))
	l.Sort()
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), l.Len())
	}
	for i := 0; i < l.Len(); i++ {
		want, have := l.At(i), got.At(i)
		if !want.Time.Equal(have.Time) || want.Addr != have.Addr || want.Class != have.Class {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, want, have)
		}
	}
}

func TestBinaryEmpty(t *testing.T) {
	var l Log
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round trip len = %d", got.Len())
	}
}

func TestBinaryDetectsTruncation(t *testing.T) {
	l := FromEvents(randomEvents(50, 5))
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any strict prefix must fail (header, mid-record, or missing trailer).
	for _, cut := range []int{0, 3, 9, 11, 40, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes went undetected", cut)
		}
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	l := FromEvents(randomEvents(50, 6))
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte inside a record's timestamp region (after the 10-byte
	// header): the CRC must catch it.
	corrupted := make([]byte, len(data))
	copy(corrupted, data)
	corrupted[12] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupted stream went undetected")
	}
}

func TestBinaryRejectsBadMagicAndVersion(t *testing.T) {
	l := FromEvents(randomEvents(5, 7))
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	badMagic := append([]byte{}, data...)
	badMagic[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(badMagic)); err == nil {
		t.Error("bad magic accepted")
	}

	badVersion := append([]byte{}, data...)
	badVersion[4] = 99
	if _, err := ReadBinary(bytes.NewReader(badVersion)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestBinaryRejectsInvalidClassByte(t *testing.T) {
	l := FromEvents(randomEvents(3, 8))
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Class byte of record 0 sits at offset 10 + 16.
	data[10+16] = 0xEE
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("invalid class byte accepted")
	}
}

func TestBinaryMoreCompactThanJSONL(t *testing.T) {
	l := FromEvents(randomEvents(1000, 9))
	var jb, bb bytes.Buffer
	if err := l.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBinary(&bb); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= jb.Len() {
		t.Fatalf("binary (%d bytes) not smaller than JSONL (%d bytes)", bb.Len(), jb.Len())
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	l := FromEvents(randomEvents(10000, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := l.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	l := FromEvents(randomEvents(10000, 10))
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBinaryHostileCountDoesNotOOM(t *testing.T) {
	// Regression (found by FuzzReadBinary): a header claiming billions of
	// records must not preallocate billions of entries. The read must fail
	// on the truncated body instead of exhausting memory.
	l := FromEvents(randomEvents(3, 99))
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Overwrite the count field (offset 6) with a huge value.
	data[6], data[7], data[8], data[9] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("hostile count accepted")
	}
}
