package core

import (
	"time"

	"cordial/internal/faultsim"
	"cordial/internal/hbm"
)

// ModelMeta describes the provenance of a fitted pipeline: what it was
// trained on and with which knobs. It rides inside the saved-model header
// (and inside registry artefacts), so a model file is self-describing
// instead of an anonymous blob — the serving daemon logs it at load, and
// the online drift detector uses ClassMix as the reference distribution
// the live class mix is tested against.
type ModelMeta struct {
	// TrainedAt is the wall-clock fit time. Left zero by Fit (so training
	// stays deterministic byte-for-byte); tools that persist artefacts
	// stamp it.
	TrainedAt time.Time `json:"trainedAt,omitempty"`
	// TrainedFrom/TrainedTo bound the training window: the earliest and
	// latest event timestamps across the training banks.
	TrainedFrom time.Time `json:"trainedFrom,omitempty"`
	TrainedTo   time.Time `json:"trainedTo,omitempty"`
	// EventCount and BankCount size the training set.
	EventCount int `json:"eventCount"`
	BankCount  int `json:"bankCount"`
	// ClassMix is the labelled class distribution of the training banks,
	// keyed by faultsim.Class names.
	ClassMix map[string]int `json:"classMix,omitempty"`
	// Params are the ensemble knobs the models were fitted with.
	Params ModelParams `json:"params"`
	// Geometry is the bank geometry the training data was generated or
	// collected under.
	Geometry hbm.Geometry `json:"geometry"`
}

// ClassCounts converts ClassMix back to classifier classes, for the drift
// test's contingency table. Unknown keys are ignored.
func (m *ModelMeta) ClassCounts() map[faultsim.Class]int {
	out := make(map[faultsim.Class]int, len(m.ClassMix))
	for _, c := range faultsim.AllClasses {
		if n, ok := m.ClassMix[c.String()]; ok {
			out[c] = n
		}
	}
	return out
}

// buildMeta summarises a training set. Called by Fit; TrainedAt stays zero.
func buildMeta(banks []*faultsim.BankFault, params ModelParams) *ModelMeta {
	m := &ModelMeta{
		BankCount: len(banks),
		ClassMix:  make(map[string]int, len(faultsim.AllClasses)),
		Params:    params,
	}
	for _, bf := range banks {
		m.ClassMix[bf.Class().String()]++
		m.EventCount += len(bf.Events)
		for _, ev := range bf.Events {
			if m.TrainedFrom.IsZero() || ev.Time.Before(m.TrainedFrom) {
				m.TrainedFrom = ev.Time
			}
			if ev.Time.After(m.TrainedTo) {
				m.TrainedTo = ev.Time
			}
		}
	}
	return m
}

// Meta returns the pipeline's training metadata, or nil when unknown (a
// pipeline loaded from a pre-metadata artefact, or not yet fitted).
func (p *Pipeline) Meta() *ModelMeta { return p.meta }

// SetMeta attaches (or replaces) the pipeline's training metadata; tools
// use it to stamp TrainedAt before saving.
func (p *Pipeline) SetMeta(m *ModelMeta) { p.meta = m }
