package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// appendN appends n sequential payloads ("rec-0"...) and returns the LSNs.
func appendN(t *testing.T, w *WAL, start, n int) []uint64 {
	t.Helper()
	var lsns []uint64
	for i := start; i < start+n; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns = append(lsns, lsn)
	}
	return lsns
}

// replayAll collects every (lsn, payload) pair.
func replayAll(t *testing.T, w *WAL) (lsns []uint64, payloads []string) {
	t.Helper()
	err := w.Replay(func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return lsns, payloads
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	lsns, payloads := replayAll(t, w2)
	if len(lsns) != 10 {
		t.Fatalf("replayed %d records, want 10", len(lsns))
	}
	for i := range lsns {
		if lsns[i] != uint64(i+1) {
			t.Errorf("record %d has lsn %d, want %d", i, lsns[i], i+1)
		}
		if want := fmt.Sprintf("rec-%d", i); payloads[i] != want {
			t.Errorf("record %d payload %q, want %q", i, payloads[i], want)
		}
	}
	if got := w2.NextLSN(); got != 11 {
		t.Errorf("NextLSN after reopen = %d, want 11", got)
	}
	// Appends continue the sequence.
	lsn, err := w2.Append([]byte("after"))
	if err != nil || lsn != 11 {
		t.Errorf("append after reopen: lsn %d err %v", lsn, err)
	}
}

func TestWALRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record or two forces a rotation.
	w, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	if w.Segments() < 3 {
		t.Fatalf("only %d segments after 20 appends with 64-byte segments", w.Segments())
	}
	lsns, _ := replayAll(t, w)
	if len(lsns) != 20 {
		t.Fatalf("replayed %d, want 20", len(lsns))
	}

	// Retention: drop everything below LSN 15; the survivors must still
	// include every record >= 15 (whole segments only, so a few earlier
	// records may survive too).
	if err := w.TruncateBefore(15); err != nil {
		t.Fatal(err)
	}
	lsns, _ = replayAll(t, w)
	if len(lsns) == 20 {
		t.Error("TruncateBefore removed nothing")
	}
	seen := map[uint64]bool{}
	for _, l := range lsns {
		seen[l] = true
	}
	for l := uint64(15); l <= 20; l++ {
		if !seen[l] {
			t.Errorf("record %d lost by retention", l)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after retention: sequence continues.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.NextLSN(); got != 21 {
		t.Errorf("NextLSN after retention reopen = %d, want 21", got)
	}
}

// lastSegmentPath returns the path of the newest segment file.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(OSFS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, segName(segs[len(segs)-1]))
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	w.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	path := lastSegmentPath(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer w2.Close()
	lsns, _ := replayAll(t, w2)
	if len(lsns) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(lsns))
	}
	// The torn bytes are gone; the next append lands cleanly and is
	// readable on yet another reopen.
	if lsn, err := w2.Append([]byte("post-repair")); err != nil || lsn != 6 {
		t.Fatalf("append after repair: lsn %d err %v", lsn, err)
	}
	w2.Close()
	w3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if lsns, payloads := replayAll(t, w3); len(lsns) != 6 || payloads[5] != "post-repair" {
		t.Fatalf("post-repair replay: %v %v", lsns, payloads)
	}
}

func TestWALCorruptTailRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	w.Close()

	// Flip one payload byte of the final record: CRC must reject it and
	// Open must truncate it away as a torn tail.
	path := lastSegmentPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with corrupt tail record: %v", err)
	}
	defer w2.Close()
	lsns, _ := replayAll(t, w2)
	if len(lsns) != 2 {
		t.Fatalf("replayed %d records, want 2 (corrupt final record dropped)", len(lsns))
	}
	if got := w2.NextLSN(); got != 3 {
		t.Errorf("NextLSN = %d, want 3 (lsn of the dropped record reused)", got)
	}
}

func TestWALInteriorCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 12) // multiple segments
	if w.Segments() < 2 {
		t.Fatalf("need >= 2 segments, got %d", w.Segments())
	}
	// Corrupt a record in the FIRST segment — acknowledged data in the
	// journal interior. Replay must refuse, not silently skip.
	segs, _ := listSegments(OSFS, dir)
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHdrSize+recHdrSize] ^= 0xff // first payload byte of first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = w.Replay(func(lsn uint64, payload []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over interior corruption = %v, want ErrCorrupt", err)
	}
	w.Close()
}

func TestWALDamagedFinalSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 6)
	nsegs := w.Segments()
	if nsegs < 2 {
		t.Fatalf("need >= 2 segments, got %d", nsegs)
	}
	w.Close()
	// A crash during rotation can leave a header-less final segment.
	if err := os.WriteFile(lastSegmentPath(t, dir), []byte("xx"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with damaged final segment: %v", err)
	}
	defer w2.Close()
	lsns, _ := replayAll(t, w2)
	for i := 1; i < len(lsns); i++ {
		if lsns[i] != lsns[i-1]+1 {
			t.Fatalf("non-contiguous lsns after repair: %v", lsns)
		}
	}
	// Every record of the surviving segments replays, and appends resume
	// exactly after the last surviving record.
	if got := w2.NextLSN(); len(lsns) > 0 && got != lsns[len(lsns)-1]+1 {
		t.Errorf("NextLSN %d after %d surviving records", got, len(lsns))
	}
}

func TestWALFsyncFailureSurfaces(t *testing.T) {
	ffs := NewFaultFS(OSFS)
	dir := t.TempDir()
	w, err := Open(dir, Options{FS: ffs, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAfter(0)
	if _, err := w.Append([]byte("doomed")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("append with failing fsync = %v, want ErrInjectedSync", err)
	}
	ffs.FailSyncAfter(-1)
	if _, err := w.Append([]byte("recovered")); err != nil {
		t.Fatalf("append after fsync recovers: %v", err)
	}
}

func TestWALPartialWriteRepairedOnReopen(t *testing.T) {
	ffs := NewFaultFS(OSFS)
	dir := t.TempDir()
	w, err := Open(dir, Options{FS: ffs, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	// Allow 5 more bytes: the next frame is written partially, exactly
	// like a crash mid-write.
	ffs.LimitWriteBytes(5)
	if _, err := w.Append([]byte("torn-record")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("append with write fault = %v, want ErrInjectedWrite", err)
	}
	w.Close()
	ffs.LimitWriteBytes(-1)

	w2, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("open after partial write: %v", err)
	}
	defer w2.Close()
	lsns, _ := replayAll(t, w2)
	if len(lsns) != 3 {
		t.Fatalf("replayed %d records, want the 3 intact ones", len(lsns))
	}
	if got := w2.NextLSN(); got != 4 {
		t.Errorf("NextLSN = %d, want 4", got)
	}
}

func TestSnapshotRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadLatestSnapshot(OSFS, dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir load = %v, want ErrNoSnapshot", err)
	}
	p1 := bytes.Repeat([]byte("alpha"), 100)
	p2 := bytes.Repeat([]byte("beta"), 100)
	if _, err := WriteSnapshot(OSFS, dir, 1, p1); err != nil {
		t.Fatal(err)
	}
	path2, err := WriteSnapshot(OSFS, dir, 2, p2)
	if err != nil {
		t.Fatal(err)
	}
	seq, payload, err := LoadLatestSnapshot(OSFS, dir)
	if err != nil || seq != 2 || !bytes.Equal(payload, p2) {
		t.Fatalf("load = seq %d err %v", seq, err)
	}

	// Corrupt the newest snapshot: load must fall back to seq 1.
	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	data[snapHdrSize+3] ^= 0xff
	if err := os.WriteFile(path2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, err = LoadLatestSnapshot(OSFS, dir)
	if err != nil || seq != 1 || !bytes.Equal(payload, p1) {
		t.Fatalf("fallback load = seq %d err %v", seq, err)
	}

	// Prune keeps the newest N files (validity aside).
	for s := uint64(3); s <= 6; s++ {
		if _, err := WriteSnapshot(OSFS, dir, s, p1); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneSnapshots(OSFS, dir, 2); err != nil {
		t.Fatal(err)
	}
	snaps, err := ListSnapshots(OSFS, dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("after prune: %d snapshots (%v)", len(snaps), err)
	}
	if snaps[0].Seq != 6 || snaps[1].Seq != 5 {
		t.Errorf("prune kept %v, want seqs 6 and 5", snaps)
	}
}

func TestSnapshotWriteFaultLeavesOldSnapshots(t *testing.T) {
	ffs := NewFaultFS(OSFS)
	dir := t.TempDir()
	if _, err := WriteSnapshot(ffs, dir, 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAfter(0)
	if _, err := WriteSnapshot(ffs, dir, 2, []byte("doomed")); err == nil {
		t.Fatal("snapshot write with failing fsync succeeded")
	}
	ffs.FailSyncAfter(-1)
	seq, payload, err := LoadLatestSnapshot(ffs, dir)
	if err != nil || seq != 1 || string(payload) != "good" {
		t.Fatalf("load after failed write = seq %d payload %q err %v", seq, payload, err)
	}
	// The aborted temp file must not linger once a WAL opens in the dir.
	w, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == tmpSuffix {
			t.Errorf("stale temp file %s survived", e.Name())
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}
