package core

import (
	"testing"
	"time"

	"cordial/internal/xrand"
)

// TestPipelineParallelismEquivalence asserts the end-to-end determinism
// contract at the pipeline level: fitting with Parallelism=1 and
// Parallelism=8 yields the same calibrated threshold, the same pattern
// classifications, and bit-identical block probabilities for every backend.
func TestPipelineParallelismEquivalence(t *testing.T) {
	fleet := testFleet(t, 5, 50)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(5), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range AllModelKinds {
		fit := func(parallelism int) *Pipeline {
			cfg := DefaultConfig(kind)
			cfg.Params = smallParams()
			cfg.Params.Parallelism = parallelism
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Fit(train); err != nil {
				t.Fatal(err)
			}
			return p
		}
		serial := fit(1)
		parallel := fit(8)
		if serial.Config().Threshold != parallel.Config().Threshold {
			t.Fatalf("%s: calibrated threshold differs: %g vs %g",
				kind, serial.Config().Threshold, parallel.Config().Threshold)
		}
		now := time.Time{}
		for _, bf := range test {
			cs, errS := serial.ClassifyPattern(bf.Events)
			cp, errP := parallel.ClassifyPattern(bf.Events)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("%s: classify error mismatch: %v vs %v", kind, errS, errP)
			}
			if errS != nil {
				continue
			}
			if cs != cp {
				t.Fatalf("%s: pattern class differs: %v vs %v", kind, cs, cp)
			}
			if len(bf.UERRows) == 0 {
				continue
			}
			anchor := bf.UERRows[len(bf.UERRows)-1]
			if !now.Before(bf.UERTimes[len(bf.UERTimes)-1]) {
				now = bf.UERTimes[len(bf.UERTimes)-1]
			}
			ps, errS := serial.PredictBlocks(bf.Events, anchor, now)
			pp, errP := parallel.PredictBlocks(bf.Events, anchor, now)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("%s: predict error mismatch: %v vs %v", kind, errS, errP)
			}
			if errS != nil {
				continue
			}
			for b := range ps {
				if ps[b] != pp[b] {
					t.Fatalf("%s: block %d probability differs: %g vs %g", kind, b, ps[b], pp[b])
				}
			}
		}
	}
}
