// Command cordial-control is the cluster control plane: the membership
// service for a fleet of cordial-serve nodes. Nodes register and
// heartbeat; every membership change (join, graceful leave, missed
// heartbeats) produces a new consistent-hash ring epoch, published only
// after the affected banks' session state has moved via snapshot +
// WAL-suffix handoff. cordial-router processes consume the published
// ring to route ingest.
//
// Usage:
//
//	cordial-control -addr 127.0.0.1:9090
//
// Endpoints:
//
//	POST /cluster/v1/register   serve-node registration (rebalances on a new ID)
//	POST /cluster/v1/heartbeat  lease refresh; 404 tells the node to re-register
//	POST /cluster/v1/leave      graceful departure with handoff to survivors
//	GET  /cluster/v1/ring       current ring descriptor (epoch, vnodes, members)
//	GET  /healthz               liveness
//	GET  /statsz                membership and orchestration counters (JSON)
//	GET  /metrics               Prometheus text exposition
//
// Membership is in memory: a restarted control plane rebuilds it as nodes
// re-register off their heartbeat 404s. For dead-node takeover to move a
// corpse's state (rather than restarting its banks empty), the WAL
// directories nodes register must be readable from this process.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cordial/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cordial-control:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:9090", "listen address (port 0 picks a free port)")
		ttl       = flag.Duration("heartbeat-ttl", 6*time.Second, "declare a node dead after this long without a heartbeat")
		sweep     = flag.Duration("sweep-interval", 0, "failure-detector period (0 = ttl/3)")
		vnodes    = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member in published rings")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stdout, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stdout, nil)
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	cp := cluster.NewControlPlane(cluster.CPConfig{
		VNodes:        *vnodes,
		HeartbeatTTL:  *ttl,
		SweepInterval: *sweep,
		Logger:        logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved-address attribute is load-bearing: with -addr :0 it is
	// how harnesses learn the real port (same contract as cordial-serve).
	logger.Info("listening", "addr", ln.Addr().String(), "heartbeatTTL", ttl.String())

	srv := &http.Server{Handler: cp.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sweepCtx, stopSweep := context.WithCancel(context.Background())
	defer stopSweep()
	go cp.Run(sweepCtx)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
	case err := <-errc:
		return err
	}
	stopSweep()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
