// Package cluster is Cordial's distributed serving tier: the pieces that
// turn a set of single-node cordial-serve daemons into one fleet-scale
// service. It holds three cooperating components:
//
//   - a consistent-hash Ring (this file) that maps bank addresses to serve
//     nodes deterministically, with virtual nodes for balance and minimal
//     placement movement when membership changes;
//   - a ControlPlane, the membership service: nodes register and heartbeat,
//     health is probed via their /readyz, and every membership change is
//     published as a new ring epoch after session handoff has moved the
//     affected banks' state (snapshot + WAL-suffix transfer over HTTP);
//   - a Node agent (the serve-node side) and a Router (the stateless ingest
//     front) that both derive placement from the same ring descriptor, so
//     routing and ownership can never disagree within an epoch.
//
// The wire unit is the Descriptor: epoch, virtual-node count and the member
// list. Rings are rebuilt deterministically from a descriptor on every
// participant — only membership travels, never hash tables.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when a descriptor
// leaves it zero. 128 keeps the max/mean bank load ratio under ~1.25 for
// small clusters while ring construction stays trivially cheap.
const DefaultVNodes = 128

// Member is one serve node as tracked by the control plane and published
// in ring descriptors.
type Member struct {
	// ID is the node's stable identity (placement hashes over it, so a
	// node that restarts under the same ID reclaims the same banks).
	ID string `json:"id"`
	// Addr is the node's HTTP base host:port (the cordial-serve listener).
	Addr string `json:"addr"`
	// WALDir is the node's durability directory as registered. The control
	// plane reads it for dead-node takeover, so in a multi-host deployment
	// it must name shared storage reachable from the control plane.
	WALDir string `json:"walDir,omitempty"`
}

// Descriptor is the serialized ring: everything a participant needs to
// rebuild placement bit-identically. Epochs totally order membership
// changes; a node or router holding epoch E must treat any E' > E as
// superseding it.
type Descriptor struct {
	// Epoch is the membership version, bumped on every join/leave.
	Epoch uint64 `json:"epoch"`
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int `json:"vnodes,omitempty"`
	// Members is the node set, in registration order. Order does not
	// affect placement (hashing is by ID), but it is kept stable so
	// descriptors are comparable in logs and tests.
	Members []Member `json:"members"`
}

// Member returns the member with the given ID, if present.
func (d Descriptor) Member(id string) (Member, bool) {
	for _, m := range d.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// Ring is a built consistent-hash ring: a sorted circle of virtual-node
// points. Build one from a Descriptor with BuildRing; lookups are
// read-only and safe for concurrent use.
type Ring struct {
	desc   Descriptor
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	owner int // index into desc.Members
}

// mix64 is the splitmix64 finaliser — the same full-avalanche mixer the
// stream engine shards with, reused so placement quality is already
// characterised.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString folds a string through FNV-1a then mixes; used for member
// IDs so virtual-node positions depend only on (ID, replica index).
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// BuildRing constructs the ring for a descriptor. Construction is pure:
// the same descriptor always yields the same placement, on any
// participant, in any process — the property FuzzRingPlacement pins.
// Duplicate member IDs are rejected (they would silently halve a node's
// arc). An empty member list is a valid ring that owns nothing.
func BuildRing(desc Descriptor) (*Ring, error) {
	vnodes := desc.VNodes
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]struct{}, len(desc.Members))
	for _, m := range desc.Members {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty ID")
		}
		if _, dup := seen[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
		seen[m.ID] = struct{}{}
	}
	r := &Ring{desc: desc}
	r.desc.VNodes = vnodes
	r.points = make([]ringPoint, 0, vnodes*len(desc.Members))
	for mi, m := range desc.Members {
		base := hashString(m.ID)
		for v := 0; v < vnodes; v++ {
			// Derive replica points by mixing the member hash with the
			// replica index; mix64 is bijective, so distinct (ID, v) pairs
			// collide only when FNV itself collides.
			r.points = append(r.points, ringPoint{
				hash:  mix64(base + uint64(v)*0x9e3779b97f4a7c15),
				owner: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on member ID so even a hash collision keeps placement
		// deterministic and descriptor-order independent.
		return desc.Members[r.points[i].owner].ID < desc.Members[r.points[j].owner].ID
	})
	return r, nil
}

// Descriptor returns the ring's (defaulted) descriptor.
func (r *Ring) Descriptor() Descriptor { return r.desc }

// Epoch returns the ring's membership version.
func (r *Ring) Epoch() uint64 { return r.desc.Epoch }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.desc.Members) }

// Owner maps a bank key (the packed bank address, as produced by
// hbm.Address.BankKey) to the owning member. ok is false only on an empty
// ring. Placement is total: every possible key has exactly one owner.
func (r *Ring) Owner(bankKey uint64) (Member, bool) {
	if len(r.points) == 0 {
		return Member{}, false
	}
	h := mix64(bankKey)
	// First point clockwise from the key's position, wrapping past the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.desc.Members[r.points[i].owner], true
}

// OwnerID is Owner reduced to the member ID ("" on an empty ring).
func (r *Ring) OwnerID(bankKey uint64) string {
	m, ok := r.Owner(bankKey)
	if !ok {
		return ""
	}
	return m.ID
}

// Owns reports whether the given member owns the bank key. The serve-node
// ownership filter is this predicate curried over the node's own ID.
func (r *Ring) Owns(id string, bankKey uint64) bool { return r.OwnerID(bankKey) == id }

// Member returns the ring member with the given ID, if present.
func (r *Ring) Member(id string) (Member, bool) { return r.desc.Member(id) }
