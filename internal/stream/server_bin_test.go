package stream

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/mcelog"
)

// binBody renders events in the POST /v1/events.bin wire shape, frameEvents
// records per frame (0 = encoder default).
func binBody(t *testing.T, frameEvents int, events ...mcelog.Event) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := mcelog.NewFrameEncoder(&buf, frameEvents)
	for _, ev := range events {
		if err := enc.Add(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// postBin ingests a binary body and decodes the IngestResult, expecting the
// given status.
func postBin(t *testing.T, srv *Server, body *bytes.Buffer, wantStatus int) IngestResult {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/events.bin", body))
	if rec.Code != wantStatus {
		t.Fatalf("POST /v1/events.bin = %d, want %d: %s", rec.Code, wantStatus, rec.Body)
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServerEventsBin: a multi-frame binary batch lands whole and drives
// the same pipeline as JSONL — the repeated-UER bank earns actions.
func TestServerEventsBin(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 2})
	var events []mcelog.Event
	for i := 0; i < 9; i++ {
		events = append(events, uerAt(testBank(2), i+1, i))
	}
	res := postBin(t, srv, binBody(t, 4, events...), http.StatusOK)
	if res.Accepted != 9 || res.Rejected != 0 || res.Dropped != 0 || res.Truncated {
		t.Fatalf("ingest result %+v, want 9 accepted", res)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := engine.Stats(); st.Processed != 9 {
		t.Fatalf("processed %d events, want 9", st.Processed)
	}
}

// TestServerEventsBinEmpty: an empty body (no magic) and a magic-only body
// are both complete zero-event batches, not errors.
func TestServerEventsBinEmpty(t *testing.T) {
	_, srv := newTestServer(t, Config{Shards: 1})
	for _, body := range []*bytes.Buffer{bytes.NewBuffer(nil), binBody(t, 0)} {
		res := postBin(t, srv, body, http.StatusOK)
		if res.Accepted != 0 || res.Truncated {
			t.Fatalf("empty batch result %+v", res)
		}
	}
}

// TestServerEventsBinCorrupt: a corrupted frame is a 400 — there is no way
// to resynchronise past it — but frames before it are already ingested.
func TestServerEventsBinCorrupt(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 1})
	body := binBody(t, 2, uerAt(testBank(1), 1, 0), uerAt(testBank(1), 2, 1),
		uerAt(testBank(1), 3, 2), uerAt(testBank(1), 4, 3))
	raw := body.Bytes()
	raw[len(raw)-1] ^= 0xFF // corrupt the last frame's payload: CRC mismatch
	res := postBin(t, srv, bytes.NewBuffer(raw), http.StatusBadRequest)
	if res.Accepted != 2 || !res.Truncated {
		t.Fatalf("ingest result %+v, want 2 accepted (first frame) and truncated", res)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestServerEventsBinInvalidRecord: a record outside the configured
// geometry is rejected individually; the rest of the frame still lands.
func TestServerEventsBinInvalidRecord(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 1})
	bad := uerAt(testBank(1), 1, 0)
	bad.Class = ecc.Class(200) // not a loggable error class
	body := binBody(t, 0, uerAt(testBank(1), 1, 0), bad, uerAt(testBank(1), 2, 1))
	res := postBin(t, srv, body, http.StatusOK)
	if res.Accepted != 2 || res.Rejected != 1 || len(res.Errors) != 1 {
		t.Fatalf("ingest result %+v, want 2 accepted / 1 rejected", res)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestServerEventsBinNotOwned mirrors the JSONL consumed-prefix contract:
// the batch stops at the first record for a bank outside this node's
// ownership, everything before it is consumed, and the 503 carries the
// epoch so the router refreshes and resends the suffix.
func TestServerEventsBinNotOwned(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 1})
	ownedKey := testBank(1).BankKey()
	srv.SetOwnership(7, func(bankKey uint64) bool { return bankKey == ownedKey })
	body := binBody(t, 0, uerAt(testBank(1), 1, 0), uerAt(testBank(1), 2, 1),
		uerAt(testBank(2), 1, 2), uerAt(testBank(1), 3, 3))
	res := postBin(t, srv, body, http.StatusServiceUnavailable)
	if res.Accepted != 2 || res.NotOwned != 1 || res.Epoch != 7 {
		t.Fatalf("ingest result %+v, want 2 accepted / notOwned / epoch 7", res)
	}
	if consumed := res.Accepted + res.Rejected + res.Dropped; consumed != 2 {
		t.Fatalf("consumed prefix %d, want 2 (suffix must be resendable)", consumed)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestServerEventsBinTooLarge: the body cap fails the request with 413 and
// reports what landed before the cap.
func TestServerEventsBinTooLarge(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1})
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e, ServerConfig{MaxBodyBytes: 64})
	var events []mcelog.Event
	for i := 0; i < 16; i++ {
		events = append(events, uerAt(testBank(1), i+1, i))
	}
	res := postBin(t, srv, binBody(t, 0, events...), http.StatusRequestEntityTooLarge)
	if !res.Truncated {
		t.Fatalf("ingest result %+v, want truncated", res)
	}
}

// TestServerEventsBinClosedEngine: binary ingest against a closed engine is
// a 503, not a panic.
func TestServerEventsBinClosedEngine(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 1})
	engine.Close()
	postBin(t, srv, binBody(t, 0, uerAt(testBank(1), 1, 0)), http.StatusServiceUnavailable)
}
