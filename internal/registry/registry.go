package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cordial/internal/core"
	"cordial/internal/hbm"
	"cordial/internal/wal"
)

// Options configures a Registry.
type Options struct {
	// Dir is where artefacts live. Empty means in-memory only: versions are
	// still assigned and served, but nothing survives a restart.
	Dir string
	// FS overrides the filesystem (fault injection in tests). Nil = OS.
	FS wal.FS
	// Geometry is attached to the strategies the registry hands out.
	Geometry hbm.Geometry
	// Keep bounds Prune's retention (newest Keep versions plus the active
	// one). Zero means DefaultKeep.
	Keep int
	// Now overrides the clock for CreatedAt stamps (tests). Nil = time.Now.
	Now func() time.Time
}

// DefaultKeep is the prune retention when Options.Keep is zero.
const DefaultKeep = 8

// entry is one known version: metadata always, pipeline lazily loaded from
// disk and cached (Install primes the cache with the live pipeline).
type entry struct {
	meta     Meta
	path     string // empty in memory-only mode
	strategy *core.CordialStrategy
}

// Registry is the versioned model store. It satisfies the stream engine's
// ModelSource shape: ActiveModel is the swap point new sessions bind,
// ModelByVersion resolves the pinned version of recovered sessions.
type Registry struct {
	dir  string
	fs   wal.FS
	geo  hbm.Geometry
	keep int
	now  func() time.Time

	mu      sync.Mutex
	entries map[uint64]*entry
	next    uint64 // next version to assign
	active  uint64 // 0 = nothing active yet

	// activeStrategy caches the resolved active pair so the hot path
	// (every new session) is one mutex hold with no disk I/O.
	activeStrategy *core.CordialStrategy
}

// Open loads (or initialises) a registry. Existing artefact headers are
// validated eagerly — a corrupt artefact is skipped with its error
// recorded, matching the snapshot fallback discipline — and the ACTIVE
// pointer is restored (falling back to the highest valid version).
func Open(opts Options) (*Registry, error) {
	r := &Registry{
		dir:     opts.Dir,
		fs:      opts.FS,
		geo:     opts.Geometry,
		keep:    opts.Keep,
		now:     opts.Now,
		entries: make(map[uint64]*entry),
		next:    1,
	}
	if r.fs == nil {
		r.fs = wal.OSFS
	}
	if r.keep <= 0 {
		r.keep = DefaultKeep
	}
	if r.now == nil {
		r.now = time.Now
	}
	if r.dir == "" {
		return r, nil
	}
	if err := r.fs.MkdirAll(r.dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", r.dir, err)
	}
	arts, err := ListArtifacts(r.fs, r.dir)
	if err != nil {
		return nil, err
	}
	var firstErr error
	for _, a := range arts {
		meta, _, err := ReadArtifact(r.fs, a.Path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.entries[meta.Version] = &entry{meta: meta, path: a.Path}
		if meta.Version >= r.next {
			r.next = meta.Version + 1
		}
	}
	if len(r.entries) == 0 && firstErr != nil {
		// Every artefact on disk is corrupt: refuse to silently start empty.
		return nil, fmt.Errorf("registry: no valid artefacts in %s: %w", r.dir, firstErr)
	}
	if v, ok := r.readActivePointer(); ok {
		if _, known := r.entries[v]; known {
			r.active = v
		}
	}
	if r.active == 0 && len(r.entries) > 0 {
		for v := range r.entries {
			if v > r.active {
				r.active = v
			}
		}
	}
	return r, nil
}

func (r *Registry) readActivePointer() (uint64, bool) {
	f, err := r.fs.OpenFile(filepath.Join(r.dir, activeName), os.O_RDONLY, 0)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	buf := make([]byte, 64)
	n, _ := f.Read(buf)
	s := strings.TrimSpace(string(buf[:n]))
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

// writeActivePointer persists the active version atomically (temp+rename);
// the pointer file is tiny, so a torn write is impossible after rename.
func (r *Registry) writeActivePointer(v uint64) error {
	if r.dir == "" {
		return nil
	}
	final := filepath.Join(r.dir, activeName)
	tmp := final + ".tmp"
	f, err := r.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("registry: creating active pointer temp: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%016x\n", v); err != nil {
		f.Close()
		_ = r.fs.Remove(tmp)
		return fmt.Errorf("registry: writing active pointer: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = r.fs.Remove(tmp)
		return fmt.Errorf("registry: syncing active pointer: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = r.fs.Remove(tmp)
		return fmt.Errorf("registry: closing active pointer: %w", err)
	}
	if err := r.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("registry: publishing active pointer: %w", err)
	}
	return nil
}

// Install assigns the next version to a fitted pipeline and persists it
// (when backed by a directory) before returning — a version number never
// refers to an artefact that might not survive a crash. The new version is
// NOT activated; call Activate after the swap decision.
func (r *Registry) Install(pipe *core.Pipeline, trigger string) (Meta, error) {
	if pipe == nil || !pipe.Fitted() {
		return Meta{}, fmt.Errorf("registry: refusing to install an unfitted pipeline")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	meta := Meta{
		Version:   r.next,
		CreatedAt: r.now().UTC(),
		Trigger:   trigger,
		Model:     pipe.Meta(),
	}
	e := &entry{meta: meta, strategy: &core.CordialStrategy{Pipeline: pipe, Geometry: r.geo}}
	if r.dir != "" {
		payload, err := encodePipeline(pipe)
		if err != nil {
			return Meta{}, fmt.Errorf("registry: encoding pipeline: %w", err)
		}
		path, err := WriteArtifact(r.fs, r.dir, meta, payload)
		if err != nil {
			return Meta{}, err
		}
		e.path = path
	}
	r.entries[meta.Version] = e
	r.next = meta.Version + 1
	return meta, nil
}

// Activate flips the active pointer to an installed version. The pointer
// write hits disk before the in-memory flip, so a crash between the two
// re-activates the same version on reboot.
func (r *Registry) Activate(version uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[version]; !ok {
		return fmt.Errorf("registry: version %d not installed", version)
	}
	if err := r.writeActivePointer(version); err != nil {
		return err
	}
	r.active = version
	r.activeStrategy = nil
	return nil
}

// ActiveVersion returns the active version number (0 when empty).
func (r *Registry) ActiveVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active
}

// ActiveModel returns the strategy new sessions should bind and its
// version. It returns (nil, 0) when the registry is empty. Part of the
// stream engine's ModelSource contract.
func (r *Registry) ActiveModel() (core.Strategy, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active == 0 {
		return nil, 0
	}
	if r.activeStrategy == nil {
		s, err := r.strategyLocked(r.active)
		if err != nil {
			return nil, 0
		}
		r.activeStrategy = s
	}
	return r.activeStrategy, r.active
}

// ModelByVersion resolves a specific version, loading it from disk on
// first use. Recovery uses this to rebind sessions to their pinned
// versions. Part of the stream engine's ModelSource contract.
func (r *Registry) ModelByVersion(version uint64) (core.Strategy, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, err := r.strategyLocked(version)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Pipeline returns the fitted pipeline behind a version (loading it if
// needed). The lifecycle manager uses it to read the active model's
// training class mix for the drift test.
func (r *Registry) Pipeline(version uint64) (*core.Pipeline, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, err := r.strategyLocked(version)
	if err != nil {
		return nil, err
	}
	return s.Pipeline, nil
}

// strategyLocked resolves (and caches) the strategy for a version.
func (r *Registry) strategyLocked(version uint64) (*core.CordialStrategy, error) {
	e, ok := r.entries[version]
	if !ok {
		return nil, fmt.Errorf("registry: version %d not installed", version)
	}
	if e.strategy == nil {
		if e.path == "" {
			return nil, fmt.Errorf("registry: version %d has no artefact", version)
		}
		_, payload, err := ReadArtifact(r.fs, e.path)
		if err != nil {
			return nil, fmt.Errorf("registry: loading version %d: %w", version, err)
		}
		pipe, err := decodePipeline(payload)
		if err != nil {
			return nil, fmt.Errorf("registry: restoring version %d: %w", version, err)
		}
		e.strategy = &core.CordialStrategy{Pipeline: pipe, Geometry: r.geo}
	}
	return e.strategy, nil
}

// Versions lists all installed versions' metadata, oldest first.
func (r *Registry) Versions() []Meta {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Meta, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// MetaOf returns one version's metadata.
func (r *Registry) MetaOf(version uint64) (Meta, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[version]
	if !ok {
		return Meta{}, false
	}
	return e.meta, true
}

// Prune drops the oldest versions beyond the retention limit. The active
// version is never pruned regardless of age, and neither are versions a
// running engine may still reference through pinned sessions — callers
// pass the lowest version still in use as floor (0 = no floor).
func (r *Registry) Prune(floor uint64) (removed int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) <= r.keep {
		return 0, nil
	}
	versions := make([]uint64, 0, len(r.entries))
	for v := range r.entries {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	excess := len(versions) - r.keep
	for _, v := range versions[:excess] {
		if v == r.active || (floor != 0 && v >= floor) {
			continue
		}
		e := r.entries[v]
		if e.path != "" {
			if rerr := r.fs.Remove(e.path); rerr != nil {
				if err == nil {
					err = fmt.Errorf("registry: pruning version %d: %w", v, rerr)
				}
				continue
			}
		}
		delete(r.entries, v)
		removed++
	}
	return removed, err
}

// Len reports how many versions are installed.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
