package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	// actual=1 predicted=1 ×3; actual=1 predicted=2 ×1; actual=2 predicted=2 ×2;
	// actual=2 predicted=1 ×2.
	for i := 0; i < 3; i++ {
		c.Add(1, 1)
	}
	c.Add(1, 2)
	c.Add(2, 2)
	c.Add(2, 2)
	c.Add(2, 1)
	c.Add(2, 1)

	if c.Total() != 8 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Count(1, 2) != 1 || c.Count(2, 1) != 2 {
		t.Fatal("Count wrong")
	}
	if got := c.Classes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Classes = %v", got)
	}
	if c.Support(1) != 4 || c.Support(2) != 4 {
		t.Fatal("Support wrong")
	}
	if !almost(c.Accuracy(), 5.0/8.0) {
		t.Fatalf("Accuracy = %g", c.Accuracy())
	}
}

func TestClassReportKnownValues(t *testing.T) {
	var c Confusion
	for i := 0; i < 3; i++ {
		c.Add(1, 1)
	}
	c.Add(1, 2)
	c.Add(2, 2)
	c.Add(2, 2)
	c.Add(2, 1)
	c.Add(2, 1)

	r1 := c.ClassReport(1)
	// Class 1: tp=3, fp=2 (actual 2 predicted 1), fn=1.
	if !almost(r1.Precision, 3.0/5.0) || !almost(r1.Recall, 3.0/4.0) {
		t.Fatalf("class 1 P=%g R=%g", r1.Precision, r1.Recall)
	}
	wantF1 := 2 * (0.6 * 0.75) / (0.6 + 0.75)
	if !almost(r1.F1, wantF1) {
		t.Fatalf("class 1 F1=%g want %g", r1.F1, wantF1)
	}
	if r1.Support != 4 {
		t.Fatalf("class 1 support=%d", r1.Support)
	}
}

func TestClassReportDegenerate(t *testing.T) {
	var c Confusion
	c.Add(1, 1)
	// Class 2 never occurs and is never predicted.
	r := c.ClassReport(2)
	if r.Precision != 0 || r.Recall != 0 || r.F1 != 0 || r.Support != 0 {
		t.Fatalf("degenerate report = %+v", r)
	}
	// Class 3 is predicted but never actual.
	c.Add(1, 3)
	r3 := c.ClassReport(3)
	if r3.Precision != 0 || r3.Recall != 0 {
		t.Fatalf("never-actual report = %+v", r3)
	}
}

func TestWeightedAverage(t *testing.T) {
	var c Confusion
	// Perfect on class 1 (support 6), all-wrong on class 2 (support 2).
	for i := 0; i < 6; i++ {
		c.Add(1, 1)
	}
	c.Add(2, 1)
	c.Add(2, 1)
	w := c.WeightedAverage()
	// Class1: P = 6/8, R = 1, F1 = 2*(0.75)/(1.75) = 6/7. Class2: all 0.
	if !almost(w.Recall, 0.75*1) {
		t.Fatalf("weighted recall = %g", w.Recall)
	}
	if !almost(w.Precision, 0.75*0.75) {
		t.Fatalf("weighted precision = %g", w.Precision)
	}
	if !almost(w.F1, 0.75*(6.0/7.0)) {
		t.Fatalf("weighted F1 = %g", w.F1)
	}
	if w.Support != 8 {
		t.Fatalf("weighted support = %d", w.Support)
	}
}

func TestWeightedAverageEmpty(t *testing.T) {
	var c Confusion
	if r := c.WeightedAverage(); r != (Report{}) {
		t.Fatalf("empty weighted average = %+v", r)
	}
	if c.Accuracy() != 0 {
		t.Fatal("empty accuracy not 0")
	}
}

func TestPerfectClassifierProperty(t *testing.T) {
	f := func(labels []uint8) bool {
		var c Confusion
		for _, l := range labels {
			c.Add(int(l%5), int(l%5))
		}
		if len(labels) == 0 {
			return true
		}
		w := c.WeightedAverage()
		return almost(w.Precision, 1) && almost(w.Recall, 1) && almost(w.F1, 1) &&
			almost(c.Accuracy(), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMicroF1EqualsAccuracyProperty(t *testing.T) {
	// For single-label classification, micro-averaged recall (sum tp /
	// sum support) equals accuracy. Verify via random confusions.
	f := func(pairs []uint16) bool {
		var c Confusion
		for _, p := range pairs {
			c.Add(int(p%4), int(p/4%4))
		}
		if c.Total() == 0 {
			return true
		}
		sumTP := 0
		for _, class := range c.Classes() {
			sumTP += c.Count(class, class)
		}
		microRecall := float64(sumTP) / float64(c.Total())
		return almost(microRecall, c.Accuracy())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinary(t *testing.T) {
	var b Binary
	b.Add(true, true)   // tp
	b.Add(true, true)   // tp
	b.Add(false, true)  // fp
	b.Add(true, false)  // fn
	b.Add(false, false) // tn
	if b.TP != 2 || b.FP != 1 || b.FN != 1 || b.TN != 1 {
		t.Fatalf("binary counts = %+v", b)
	}
	r := b.Report()
	if !almost(r.Precision, 2.0/3.0) || !almost(r.Recall, 2.0/3.0) || !almost(r.F1, 2.0/3.0) {
		t.Fatalf("binary report = %+v", r)
	}
	if r.Support != 3 {
		t.Fatalf("binary support = %d", r.Support)
	}
	if b.Total() != 5 {
		t.Fatalf("binary total = %d", b.Total())
	}
}

func TestBinaryDegenerate(t *testing.T) {
	var b Binary
	if r := b.Report(); r.Precision != 0 || r.Recall != 0 || r.F1 != 0 {
		t.Fatalf("empty binary report = %+v", r)
	}
	b.Add(false, false)
	if r := b.Report(); r.F1 != 0 {
		t.Fatalf("all-negative binary report = %+v", r)
	}
}

func TestICR(t *testing.T) {
	var m ICR
	if m.Rate() != 0 {
		t.Fatal("empty ICR not 0")
	}
	for i := 0; i < 1958; i++ {
		m.Add(true)
	}
	for i := 0; i < 10000-1958; i++ {
		m.Add(false)
	}
	if !almost(m.Rate(), 0.1958) {
		t.Fatalf("ICR = %g", m.Rate())
	}
	if m.String() != "19.58%" {
		t.Fatalf("ICR String = %q", m.String())
	}
}

func TestAUCPerfectRanking(t *testing.T) {
	var s Scored
	for i := 0; i < 10; i++ {
		s.Add(float64(i), i >= 5) // positives all score higher
	}
	auc, ok := s.AUC()
	if !ok || auc != 1 {
		t.Fatalf("perfect AUC = %g ok=%v", auc, ok)
	}
}

func TestAUCInvertedRanking(t *testing.T) {
	var s Scored
	for i := 0; i < 10; i++ {
		s.Add(float64(i), i < 5) // positives all score lower
	}
	auc, ok := s.AUC()
	if !ok || auc != 0 {
		t.Fatalf("inverted AUC = %g ok=%v", auc, ok)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	var s Scored
	// Deterministic interleave: equal ranks for both classes.
	for i := 0; i < 1000; i++ {
		s.Add(float64(i%100), i%2 == 0)
	}
	auc, ok := s.AUC()
	if !ok || math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("interleaved AUC = %g", auc)
	}
}

func TestAUCTiesCountHalf(t *testing.T) {
	var s Scored
	// All scores identical: AUC must be exactly 0.5 by the tie convention.
	for i := 0; i < 10; i++ {
		s.Add(1.0, i < 5)
	}
	auc, ok := s.AUC()
	if !ok || !almost(auc, 0.5) {
		t.Fatalf("all-ties AUC = %g", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	var s Scored
	// scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0) → 3/4.
	s.Add(3, true)
	s.Add(1, true)
	s.Add(2, false)
	s.Add(0, false)
	auc, ok := s.AUC()
	if !ok || !almost(auc, 0.75) {
		t.Fatalf("AUC = %g, want 0.75", auc)
	}
}

func TestAUCDegenerate(t *testing.T) {
	var s Scored
	if _, ok := s.AUC(); ok {
		t.Fatal("empty AUC reported ok")
	}
	s.Add(1, true)
	if _, ok := s.AUC(); ok {
		t.Fatal("single-class AUC reported ok")
	}
	if s.Total() != 1 {
		t.Fatal("Total wrong")
	}
}
