package mcelog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
)

// Streaming format: a BMC-style endless event stream with per-record
// checksums, for collectors that cannot know the event count up front.
//
//	header: magic "MCES" | uint16 version
//	record: int64 unix-nanos | uint64 packed addr | uint8 class | uint16 error bits | uint32 CRC
//
// The per-record CRC (IEEE, over the record's 19 payload bytes) lets a
// reader detect torn writes at the point of truncation and keep everything
// before it. Version 1 streams, whose records lack the error-bit field,
// still read; writers always emit version 2.
const (
	streamMagic        = "MCES"
	streamVersion      = 2
	streamVersionV1    = 1
	streamRecordSize   = recordSize + 4
	streamRecordSizeV1 = recordSizeV1 + 4
)

// StreamWriter appends events to a stream incrementally. Close flushes; the
// stream needs no trailer, so a crashed writer loses at most one record.
type StreamWriter struct {
	w      *bufio.Writer
	opened bool
}

// NewStreamWriter returns a writer that lazily emits the stream header
// before the first record.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: bufio.NewWriter(w)}
}

// writeHeader emits the stream header once.
func (s *StreamWriter) writeHeader() error {
	if s.opened {
		return nil
	}
	if _, err := s.w.WriteString(streamMagic); err != nil {
		return fmt.Errorf("mcelog: writing stream magic: %w", err)
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], streamVersion)
	if _, err := s.w.Write(v[:]); err != nil {
		return fmt.Errorf("mcelog: writing stream version: %w", err)
	}
	s.opened = true
	return nil
}

// Write appends one event.
func (s *StreamWriter) Write(e Event) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	var rec [streamRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], uint64(e.Time.UnixNano()))
	binary.LittleEndian.PutUint64(rec[8:16], e.Addr.Pack())
	rec[16] = byte(e.Class)
	binary.LittleEndian.PutUint16(rec[17:19], uint16(e.Bits))
	binary.LittleEndian.PutUint32(rec[19:23], crc32.ChecksumIEEE(rec[:19]))
	if _, err := s.w.Write(rec[:]); err != nil {
		return fmt.Errorf("mcelog: writing stream record: %w", err)
	}
	return nil
}

// Flush pushes buffered records to the underlying writer. Flushing a stream
// with no records still emits the header, so readers can tell an empty
// stream from a non-stream.
func (s *StreamWriter) Flush() error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	return s.w.Flush()
}

// StreamReader reads events back incrementally.
type StreamReader struct {
	r       *bufio.Reader
	opened  bool
	recSize int // payload + CRC size implied by the stream version
}

// NewStreamReader returns a reader over a stream produced by StreamWriter.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: bufio.NewReader(r)}
}

// ErrCorruptRecord is returned by Next when a record fails its checksum;
// events read before it remain valid.
var ErrCorruptRecord = errors.New("mcelog: corrupt stream record")

// Next returns the next event, io.EOF at a clean end of stream, or
// ErrCorruptRecord (possibly wrapped) on a damaged or torn record.
func (s *StreamReader) Next() (Event, error) {
	if !s.opened {
		head := make([]byte, 6)
		if _, err := io.ReadFull(s.r, head); err != nil {
			return Event{}, fmt.Errorf("mcelog: reading stream header: %w", err)
		}
		if string(head[:4]) != streamMagic {
			return Event{}, fmt.Errorf("mcelog: bad stream magic %q", head[:4])
		}
		switch v := binary.LittleEndian.Uint16(head[4:6]); v {
		case streamVersion:
			s.recSize = streamRecordSize
		case streamVersionV1:
			s.recSize = streamRecordSizeV1
		default:
			return Event{}, fmt.Errorf("mcelog: unsupported stream version %d", v)
		}
		s.opened = true
	}
	rec := make([]byte, s.recSize)
	if _, err := io.ReadFull(s.r, rec); err != nil {
		if errors.Is(err, io.EOF) {
			return Event{}, io.EOF
		}
		// A partial record is a torn write, not a clean end.
		return Event{}, fmt.Errorf("%w: truncated mid-record: %v", ErrCorruptRecord, err)
	}
	payload := rec[:s.recSize-4]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rec[s.recSize-4:]) {
		return Event{}, ErrCorruptRecord
	}
	class := ecc.Class(rec[16])
	if class != ecc.ClassCE && class != ecc.ClassUEO && class != ecc.ClassUER {
		return Event{}, fmt.Errorf("%w: invalid class byte %d", ErrCorruptRecord, rec[16])
	}
	// Checked unpack: stray bits in the packed address mean a corrupt or
	// misencoded producer, not a different-but-valid location.
	addr, err := hbm.UnpackChecked(binary.LittleEndian.Uint64(rec[8:16]))
	if err != nil {
		return Event{}, fmt.Errorf("%w: %v", ErrCorruptRecord, err)
	}
	var bits ErrBits
	if s.recSize == streamRecordSize {
		bits = ErrBits(binary.LittleEndian.Uint16(rec[17:19]))
	}
	return Event{
		Time:  time.Unix(0, int64(binary.LittleEndian.Uint64(rec[0:8]))).UTC(),
		Addr:  addr,
		Class: class,
		Bits:  bits,
	}, nil
}

// ReadAll drains the stream into a log, stopping at a clean EOF. On a
// corrupt record it returns the events read so far along with the error.
func (s *StreamReader) ReadAll() (*Log, error) {
	log := &Log{}
	for {
		e, err := s.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return log, nil
			}
			return log, err
		}
		log.Append(e)
	}
}
