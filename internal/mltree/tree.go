package mltree

import (
	"fmt"
	"math"
	"sort"

	"cordial/internal/xrand"
)

// Criterion selects the impurity measure for classification splits.
type Criterion int

// Split criteria.
const (
	// Gini is the Gini impurity (CART default).
	Gini Criterion = iota + 1
	// Entropy is the Shannon-entropy information gain.
	Entropy
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// TreeConfig configures a single CART decision tree.
type TreeConfig struct {
	// MaxDepth bounds tree depth; <=0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting.
	MinSamplesSplit int
	// MinSamplesLeaf is the minimum samples in each child.
	MinSamplesLeaf int
	// MaxFeatures is the number of features considered per split;
	// 0 means all, -1 means round(sqrt(numFeatures)).
	MaxFeatures int
	// Criterion selects the impurity measure (default Gini).
	Criterion Criterion
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	if c.Criterion == 0 {
		c.Criterion = Gini
	}
	return c
}

// resolveMaxFeatures turns the MaxFeatures convention into a concrete count.
func (c TreeConfig) resolveMaxFeatures(numFeatures int) int {
	switch {
	case c.MaxFeatures == 0 || c.MaxFeatures >= numFeatures:
		return numFeatures
	case c.MaxFeatures == -1:
		k := int(math.Round(math.Sqrt(float64(numFeatures))))
		if k < 1 {
			k = 1
		}
		return k
	case c.MaxFeatures > 0:
		return c.MaxFeatures
	default:
		return numFeatures
	}
}

// treeNode is one node of a fitted tree. Leaves carry a class-probability
// vector (classification) or a scalar (regression boosting).
type treeNode struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t"`
	Left      *treeNode `json:"l,omitempty"`
	Right     *treeNode `json:"r,omitempty"`
	Probs     []float64 `json:"p,omitempty"`
	Value     float64   `json:"v,omitempty"`
}

func (n *treeNode) isLeaf() bool { return n.Left == nil && n.Right == nil }

// navigate walks the tree for sample x and returns the leaf.
func (n *treeNode) navigate(x []float64) *treeNode {
	cur := n
	for !cur.isLeaf() {
		if x[cur.Feature] <= cur.Threshold {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	return cur
}

func (n *treeNode) depth() int {
	if n == nil || n.isLeaf() {
		return 0
	}
	l, r := n.Left.depth(), n.Right.depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

func (n *treeNode) countLeaves() int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return n.Left.countLeaves() + n.Right.countLeaves()
}

// Tree is a CART decision-tree classifier.
type Tree struct {
	Config  TreeConfig
	root    *treeNode
	classes []int
	rng     *xrand.RNG
}

// NewTree returns a tree classifier. rng drives feature subsampling; pass
// nil to consider all features deterministically.
func NewTree(cfg TreeConfig, rng *xrand.RNG) *Tree {
	return &Tree{Config: cfg.withDefaults(), rng: rng}
}

var _ Classifier = (*Tree)(nil)

// Classes returns the labels seen during Fit.
func (t *Tree) Classes() []int { return t.classes }

// Depth returns the fitted tree's depth (0 for a stump/leaf-only tree).
func (t *Tree) Depth() int { return t.root.depth() }

// NumLeaves returns the fitted tree's leaf count.
func (t *Tree) NumLeaves() int { return t.root.countLeaves() }

// Fit grows the tree on the dataset.
func (t *Tree) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	t.classes = ds.Classes()
	idx := classIndex(t.classes)
	y := make([]int, ds.NumSamples())
	for i, l := range ds.Labels {
		y[i] = idx[l]
	}
	samples := make([]int, ds.NumSamples())
	for i := range samples {
		samples[i] = i
	}
	b := &classBuilder{
		cfg:      t.Config,
		features: ds.Features,
		y:        y,
		k:        len(t.classes),
		rng:      t.rng,
		maxFeat:  t.Config.resolveMaxFeatures(ds.NumFeatures()),
	}
	t.root = b.build(samples, 0)
	return nil
}

// PredictProba returns the class distribution of the leaf x lands in.
func (t *Tree) PredictProba(x []float64) []float64 {
	leaf := t.root.navigate(x)
	out := make([]float64, len(leaf.Probs))
	copy(out, leaf.Probs)
	return out
}

// classBuilder grows a classification tree recursively.
type classBuilder struct {
	cfg      TreeConfig
	features [][]float64
	y        []int
	k        int
	rng      *xrand.RNG
	maxFeat  int
}

func (b *classBuilder) build(samples []int, depth int) *treeNode {
	counts := make([]float64, b.k)
	for _, i := range samples {
		counts[b.y[i]]++
	}
	leaf := func() *treeNode {
		probs := make([]float64, b.k)
		n := float64(len(samples))
		for c, v := range counts {
			probs[c] = v / n
		}
		return &treeNode{Probs: probs}
	}
	if len(samples) < b.cfg.MinSamplesSplit ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		isPure(counts) {
		return leaf()
	}
	feat, thr, ok := b.bestSplit(samples, counts)
	if !ok {
		return leaf()
	}
	var left, right []int
	for _, i := range samples {
		if b.features[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return leaf()
	}
	return &treeNode{
		Feature:   feat,
		Threshold: thr,
		Left:      b.build(left, depth+1),
		Right:     b.build(right, depth+1),
	}
}

func isPure(counts []float64) bool {
	nonZero := 0
	for _, c := range counts {
		if c > 0 {
			nonZero++
		}
	}
	return nonZero <= 1
}

// impurity computes Gini or entropy from class counts summing to n.
func impurity(counts []float64, n float64, crit Criterion) float64 {
	if n == 0 {
		return 0
	}
	switch crit {
	case Entropy:
		h := 0.0
		for _, c := range counts {
			if c > 0 {
				p := c / n
				h -= p * math.Log2(p)
			}
		}
		return h
	default: // Gini
		g := 1.0
		for _, c := range counts {
			p := c / n
			g -= p * p
		}
		return g
	}
}

// bestSplit searches the sampled feature subset for the split with the
// largest impurity decrease. It returns ok=false when no valid split exists.
func (b *classBuilder) bestSplit(samples []int, parentCounts []float64) (feat int, thr float64, ok bool) {
	n := float64(len(samples))
	parentImp := impurity(parentCounts, n, b.cfg.Criterion)
	bestGain := 1e-12

	numFeatures := len(b.features[0])
	candidates := b.featureCandidates(numFeatures)

	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(samples))
	leftCounts := make([]float64, b.k)
	rightCounts := make([]float64, b.k)

	for _, f := range candidates {
		for i, s := range samples {
			pairs[i] = pair{v: b.features[s][f], y: b.y[s]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue // constant feature
		}
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = parentCounts[c]
		}
		for i := 0; i < len(pairs)-1; i++ {
			leftCounts[pairs[i].y]++
			rightCounts[pairs[i].y]--
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl, nr := float64(i+1), n-float64(i+1)
			if int(nl) < b.cfg.MinSamplesLeaf || int(nr) < b.cfg.MinSamplesLeaf {
				continue
			}
			childImp := (nl*impurity(leftCounts, nl, b.cfg.Criterion) +
				nr*impurity(rightCounts, nr, b.cfg.Criterion)) / n
			gain := parentImp - childImp
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (pairs[i].v + pairs[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// featureCandidates returns the features to consider at one split.
func (b *classBuilder) featureCandidates(numFeatures int) []int {
	if b.maxFeat >= numFeatures || b.rng == nil {
		all := make([]int, numFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return b.rng.SampleInts(numFeatures, b.maxFeat)
}

// regTree grows regression trees on gradient/hessian pairs with the
// XGBoost-style regularised gain; it is the weak learner inside GBDT.
type regTree struct {
	cfg     TreeConfig
	lambda  float64
	gamma   float64
	minHess float64
	rng     *xrand.RNG
	maxFeat int

	features [][]float64
	grad     []float64
	hess     []float64
}

// fit grows the tree over the given sample indices and returns its root.
func (r *regTree) fit(samples []int) *treeNode {
	return r.build(samples, 0)
}

func (r *regTree) build(samples []int, depth int) *treeNode {
	var g, h float64
	for _, i := range samples {
		g += r.grad[i]
		h += r.hess[i]
	}
	leaf := func() *treeNode {
		return &treeNode{Value: -g / (h + r.lambda)}
	}
	if len(samples) < r.cfg.MinSamplesSplit ||
		(r.cfg.MaxDepth > 0 && depth >= r.cfg.MaxDepth) {
		return leaf()
	}
	feat, thr, ok := r.bestSplit(samples, g, h)
	if !ok {
		return leaf()
	}
	var left, right []int
	for _, i := range samples {
		if r.features[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < r.cfg.MinSamplesLeaf || len(right) < r.cfg.MinSamplesLeaf {
		return leaf()
	}
	return &treeNode{
		Feature:   feat,
		Threshold: thr,
		Left:      r.build(left, depth+1),
		Right:     r.build(right, depth+1),
	}
}

// bestSplit maximises the XGBoost structure-score gain
// 0.5*(GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)) − γ.
func (r *regTree) bestSplit(samples []int, g, h float64) (feat int, thr float64, ok bool) {
	score := func(gs, hs float64) float64 { return gs * gs / (hs + r.lambda) }
	parent := score(g, h)
	bestGain := 0.0

	numFeatures := len(r.features[0])
	candidates := r.featureCandidates(numFeatures)

	type pair struct {
		v    float64
		g, h float64
	}
	pairs := make([]pair, len(samples))
	for _, f := range candidates {
		for i, s := range samples {
			pairs[i] = pair{v: r.features[s][f], g: r.grad[s], h: r.hess[s]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue
		}
		var gl, hl float64
		for i := 0; i < len(pairs)-1; i++ {
			gl += pairs[i].g
			hl += pairs[i].h
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			if i+1 < r.cfg.MinSamplesLeaf || len(pairs)-i-1 < r.cfg.MinSamplesLeaf {
				continue
			}
			gr, hr := g-gl, h-hl
			if hl < r.minHess || hr < r.minHess {
				continue
			}
			gain := 0.5*(score(gl, hl)+score(gr, hr)-parent) - r.gamma
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (pairs[i].v + pairs[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func (r *regTree) featureCandidates(numFeatures int) []int {
	if r.maxFeat >= numFeatures || r.rng == nil {
		all := make([]int, numFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return r.rng.SampleInts(numFeatures, r.maxFeat)
}
