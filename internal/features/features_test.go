package features

import (
	"math"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/xrand"
)

var t0 = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

func ev(hoursIn float64, row int, class ecc.Class) mcelog.Event {
	return mcelog.Event{
		Time:  t0.Add(time.Duration(hoursIn * float64(time.Hour))),
		Addr:  hbm.Address{Row: row},
		Class: class,
	}
}

func featureIndex(t *testing.T, names []string, name string) int {
	t.Helper()
	for i, n := range names {
		if n == name {
			return i
		}
	}
	t.Fatalf("feature %q not found in %v", name, names)
	return -1
}

func TestPatternFeatureNamesMatchVectorLength(t *testing.T) {
	names := PatternFeatureNames()
	events := []mcelog.Event{
		ev(0, 100, ecc.ClassCE),
		ev(1, 110, ecc.ClassUER),
		ev(2, 112, ecc.ClassUER),
	}
	vec, err := PatternVector(events, DefaultPatternConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != len(names) {
		t.Fatalf("vector length %d != names length %d", len(vec), len(names))
	}
}

func TestPatternVectorNoUERFails(t *testing.T) {
	events := []mcelog.Event{ev(0, 1, ecc.ClassCE)}
	if _, err := PatternVector(events, DefaultPatternConfig()); err == nil {
		t.Fatal("CE-only bank accepted")
	}
}

func TestPatternVectorKnownValues(t *testing.T) {
	names := PatternFeatureNames()
	events := []mcelog.Event{
		ev(0, 50, ecc.ClassCE),
		ev(2, 60, ecc.ClassCE),
		ev(4, 100, ecc.ClassUER),
		ev(6, 130, ecc.ClassUER),
		ev(7, 115, ecc.ClassUER),
		ev(9, 999, ecc.ClassUER), // beyond budget: must be invisible
	}
	vec, err := PatternVector(events, DefaultPatternConfig())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 { return vec[featureIndex(t, names, name)] }

	if got := get("uer_row_min"); got != 100 {
		t.Errorf("uer_row_min = %g", got)
	}
	if got := get("uer_row_max"); got != 130 {
		t.Errorf("uer_row_max = %g (budget leak?)", got)
	}
	if got := get("uer_row_span"); got != 30 {
		t.Errorf("uer_row_span = %g", got)
	}
	if got := get("uer_count_used"); got != 3 {
		t.Errorf("uer_count_used = %g", got)
	}
	if got := get("ce_count_before_first_uer"); got != 2 {
		t.Errorf("ce_count_before_first_uer = %g", got)
	}
	if got := get("ueo_count_before_first_uer"); got != 0 {
		t.Errorf("ueo_count_before_first_uer = %g", got)
	}
	if got := get("ce_row_min"); got != 50 {
		t.Errorf("ce_row_min = %g", got)
	}
	if got := get("ce_row_diff_avg"); got != 10 {
		t.Errorf("ce_row_diff_avg = %g", got)
	}
	// UER row diffs in time order: |130-100|=30, |115-130|=15.
	if got := get("uer_row_diff_min"); got != 15 {
		t.Errorf("uer_row_diff_min = %g", got)
	}
	if got := get("uer_row_diff_max"); got != 30 {
		t.Errorf("uer_row_diff_max = %g", got)
	}
	// Time from first error (hour 0) to first UER (hour 4).
	if got := get("first_error_to_first_uer_h"); math.Abs(got-4) > 1e-9 {
		t.Errorf("first_error_to_first_uer_h = %g", got)
	}
	if got := get("ce_rate_before_first_uer"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ce_rate_before_first_uer = %g", got)
	}
	// UEO features are Missing.
	if got := get("ueo_row_min"); got != Missing {
		t.Errorf("ueo_row_min = %g, want Missing", got)
	}
}

func TestPatternVectorRepeatUERRowsDeduplicated(t *testing.T) {
	names := PatternFeatureNames()
	events := []mcelog.Event{
		ev(0, 100, ecc.ClassUER),
		ev(1, 100, ecc.ClassUER), // repeat of same row
		ev(2, 105, ecc.ClassUER),
		ev(3, 110, ecc.ClassUER),
	}
	vec, err := PatternVector(events, DefaultPatternConfig())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 { return vec[featureIndex(t, names, name)] }
	// Distinct rows 100, 105, 110 → budget covers all three.
	if got := get("uer_row_max"); got != 110 {
		t.Errorf("uer_row_max = %g (repeat rows should not consume budget)", got)
	}
	if got := get("uer_count_used"); got != 3 {
		t.Errorf("uer_count_used = %g", got)
	}
}

func TestPatternVectorBudgetOne(t *testing.T) {
	events := []mcelog.Event{
		ev(0, 100, ecc.ClassUER),
		ev(5, 9999, ecc.ClassUER),
	}
	vec, err := PatternVector(events, PatternConfig{UERBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	names := PatternFeatureNames()
	if got := vec[featureIndex(t, names, "uer_row_max")]; got != 100 {
		t.Errorf("budget-1 uer_row_max = %g", got)
	}
	if got := vec[featureIndex(t, names, "uer_row_span")]; got != 0 {
		t.Errorf("budget-1 uer_row_span = %g", got)
	}
}

func TestPatternVectorAllFinite(t *testing.T) {
	// Fuzz against the real generator: every produced vector must be finite
	// and fixed-length.
	gen, err := faultsim.NewGenerator(faultsim.DefaultConfig(hbm.DefaultGeometry), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		bf, err := gen.GenerateSampled(hbm.BankAddress{}, faultsim.DefaultPatternWeights())
		if err != nil {
			t.Fatal(err)
		}
		vec, err := PatternVector(bf.Events, DefaultPatternConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d = %g", i, v)
			}
		}
	}
}

func TestBlockSpecGeometry(t *testing.T) {
	spec := DefaultBlockSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.NumBlocks() != 16 {
		t.Fatalf("NumBlocks = %d, want 16", spec.NumBlocks())
	}
	lo, hi := spec.BlockRange(1000, 0)
	if lo != 936 || hi != 943 {
		t.Fatalf("block 0 = [%d,%d]", lo, hi)
	}
	lo, hi = spec.BlockRange(1000, 15)
	if lo != 1056 || hi != 1063 {
		t.Fatalf("block 15 = [%d,%d]", lo, hi)
	}
	// The union of blocks covers exactly [anchor-64, anchor+63].
	covered := make(map[int]int)
	for b := 0; b < spec.NumBlocks(); b++ {
		lo, hi := spec.BlockRange(1000, b)
		for r := lo; r <= hi; r++ {
			covered[r]++
		}
	}
	if len(covered) != 128 {
		t.Fatalf("blocks cover %d rows, want 128", len(covered))
	}
	for r, n := range covered {
		if n != 1 {
			t.Fatalf("row %d covered %d times", r, n)
		}
	}
}

func TestBlockOfInvertsBlockRange(t *testing.T) {
	spec := DefaultBlockSpec()
	anchor := 5000
	for b := 0; b < spec.NumBlocks(); b++ {
		lo, hi := spec.BlockRange(anchor, b)
		for _, r := range []int{lo, (lo + hi) / 2, hi} {
			if got := spec.BlockOf(anchor, r); got != b {
				t.Fatalf("BlockOf(%d) = %d, want %d", r, got, b)
			}
		}
	}
	if got := spec.BlockOf(anchor, anchor-65); got != -1 {
		t.Fatalf("BlockOf below window = %d", got)
	}
	if got := spec.BlockOf(anchor, anchor+64); got != -1 {
		t.Fatalf("BlockOf above window = %d", got)
	}
	// Anchor row falls in the first upper block.
	if got := spec.BlockOf(anchor, anchor); got != 8 {
		t.Fatalf("BlockOf(anchor) = %d, want 8", got)
	}
}

func TestBlockSpecValidateRejects(t *testing.T) {
	for _, s := range []BlockSpec{
		{WindowRadius: 0, BlockSize: 8},
		{WindowRadius: 64, BlockSize: 0},
		{WindowRadius: 64, BlockSize: 7}, // 128 % 7 != 0
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestBlockFeatureNamesMatchVectorLength(t *testing.T) {
	events := []mcelog.Event{
		ev(0, 100, ecc.ClassCE),
		ev(1, 105, ecc.ClassUER),
	}
	vec, err := BlockVector(events, 105, DefaultBlockSpec(), 3, t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != len(BlockFeatureNames()) {
		t.Fatalf("vector length %d != names %d", len(vec), len(BlockFeatureNames()))
	}
}

func TestBlockVectorKnownValues(t *testing.T) {
	names := BlockFeatureNames()
	anchor := 1000
	spec := DefaultBlockSpec()
	events := []mcelog.Event{
		ev(0, 990, ecc.ClassCE),
		ev(1, 1000, ecc.ClassUER),
		ev(2, 940, ecc.ClassCE), // inside block 0 (rows 936..943)
	}
	now := t0.Add(3 * time.Hour)
	vec, err := BlockVector(events, anchor, spec, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 { return vec[featureIndex(t, names, name)] }
	if got := get("ce_count"); got != 2 {
		t.Errorf("ce_count = %g", got)
	}
	if got := get("uer_count"); got != 1 {
		t.Errorf("uer_count = %g", got)
	}
	if got := get("all_count"); got != 3 {
		t.Errorf("all_count = %g", got)
	}
	if got := get("time_since_last_event_h"); math.Abs(got-1) > 1e-9 {
		t.Errorf("time_since_last_event_h = %g", got)
	}
	// Block 0 centre = (936+943)/2 = 939; offset = -61.
	if got := get("block_offset_rows"); got != -61 {
		t.Errorf("block_offset_rows = %g", got)
	}
	if got := get("block_abs_offset_rows"); got != 61 {
		t.Errorf("block_abs_offset_rows = %g", got)
	}
	if got := get("block_prior_error_count"); got != 1 {
		t.Errorf("block_prior_error_count = %g", got)
	}
	if got := get("block_prior_uer_count"); got != 0 {
		t.Errorf("block_prior_uer_count = %g", got)
	}
	// Nearest CE row to centre 939 is 940 → distance 1.
	if got := get("dist_to_nearest_ce_row"); got != 1 {
		t.Errorf("dist_to_nearest_ce_row = %g", got)
	}
	if got := get("dist_to_nearest_ueo_row"); got != Missing {
		t.Errorf("dist_to_nearest_ueo_row = %g", got)
	}
	if got := get("dist_to_nearest_uer_row"); got != 61 {
		t.Errorf("dist_to_nearest_uer_row = %g", got)
	}
	if got := get("uer_rows_observed"); got != 1 {
		t.Errorf("uer_rows_observed = %g", got)
	}
	if got := get("anchor_row"); got != 1000 {
		t.Errorf("anchor_row = %g", got)
	}
}

func TestBlockVectorRejectsBadBlock(t *testing.T) {
	events := []mcelog.Event{ev(0, 1, ecc.ClassUER)}
	if _, err := BlockVector(events, 1, DefaultBlockSpec(), -1, t0); err == nil {
		t.Error("block -1 accepted")
	}
	if _, err := BlockVector(events, 1, DefaultBlockSpec(), 16, t0); err == nil {
		t.Error("block 16 accepted")
	}
	if _, err := BlockVector(events, 1, BlockSpec{WindowRadius: 64, BlockSize: 7}, 0, t0); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestBlockVectorEmptyEvents(t *testing.T) {
	vec, err := BlockVector(nil, 100, DefaultBlockSpec(), 5, t0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d = %g", i, v)
		}
	}
}

func TestBlockVectorAllFiniteFuzz(t *testing.T) {
	gen, err := faultsim.NewGenerator(faultsim.DefaultConfig(hbm.DefaultGeometry), xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultBlockSpec()
	for trial := 0; trial < 100; trial++ {
		bf, err := gen.GenerateSampled(hbm.BankAddress{}, faultsim.DefaultPatternWeights())
		if err != nil {
			t.Fatal(err)
		}
		anchor := bf.UERRows[0]
		now := bf.UERTimes[0].Add(time.Minute)
		var visible []mcelog.Event
		for _, e := range bf.Events {
			if e.Time.Before(now) {
				visible = append(visible, e)
			}
		}
		for b := 0; b < spec.NumBlocks(); b++ {
			vec, err := BlockVector(visible, anchor, spec, b, now)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range vec {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("block %d feature %d = %g", b, i, v)
				}
			}
		}
	}
}

func BenchmarkPatternVector(b *testing.B) {
	gen, err := faultsim.NewGenerator(faultsim.DefaultConfig(hbm.DefaultGeometry), xrand.New(3))
	if err != nil {
		b.Fatal(err)
	}
	bf, err := gen.Generate(hbm.BankAddress{}, faultsim.PatternScattered)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultPatternConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PatternVector(bf.Events, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockVector(b *testing.B) {
	gen, err := faultsim.NewGenerator(faultsim.DefaultConfig(hbm.DefaultGeometry), xrand.New(4))
	if err != nil {
		b.Fatal(err)
	}
	bf, err := gen.Generate(hbm.BankAddress{}, faultsim.PatternSingleRow)
	if err != nil {
		b.Fatal(err)
	}
	spec := DefaultBlockSpec()
	now := bf.UERTimes[len(bf.UERTimes)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BlockVector(bf.Events, bf.UERRows[0], spec, i%16, now); err != nil {
			b.Fatal(err)
		}
	}
}
