package core

import (
	"math"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/xrand"
)

// visibleEvents returns events with Time ≤ now, preserving order. It is
// the reference prefix-slice path the production code no longer uses:
// tests replay through it to pin the single-replay rewiring.
func visibleEvents(events []mcelog.Event, now time.Time) []mcelog.Event {
	var out []mcelog.Event
	for _, e := range events {
		if !e.Time.After(now) {
			out = append(out, e)
		}
	}
	return out
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestStateVariantsMatchSliceAPI pins ClassifyPatternState/PredictBlocksState
// against the slice API on fleet-replay inputs: feeding a state
// incrementally must give the same class and bit-identical probabilities as
// handing over the full visible slice.
func TestStateVariantsMatchSliceAPI(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	checked := 0
	for _, bf := range test {
		if len(bf.UERRows) < 3 {
			continue
		}
		anchor := bf.UERRows[2]
		now := bf.UERTimes[2]
		visible := visibleEvents(bf.Events, now)

		st, err := p.NewBankState()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range visible {
			st.Observe(e)
		}

		sliceClass, err1 := p.ClassifyPattern(visible)
		stateClass, err2 := p.ClassifyPatternState(st)
		if err1 != nil || err2 != nil {
			t.Fatalf("classify errors: %v / %v", err1, err2)
		}
		if sliceClass != stateClass {
			t.Fatalf("class diverged: slice %v, state %v", sliceClass, stateClass)
		}

		sliceProbs, err1 := p.PredictBlocks(visible, anchor, now)
		stateProbs, err2 := p.PredictBlocksState(st, anchor, now)
		if err1 != nil || err2 != nil {
			t.Fatalf("predict errors: %v / %v", err1, err2)
		}
		if !bitsEqual(sliceProbs, stateProbs) {
			t.Fatalf("probabilities diverged:\nslice %v\nstate %v", sliceProbs, stateProbs)
		}
		checked++
		if checked >= 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no test banks with enough UERs")
	}
}

// TestBlockInstancesSingleReplayEquivalence pins blockInstances' forward
// replay against the original prefix-slice recomputation it replaced.
func TestBlockInstancesSingleReplayEquivalence(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	spec := features.DefaultBlockSpec()
	banks := 0
	for _, bf := range fleet.Faults {
		if !bf.Class().IsAggregation() || len(bf.UERRows) < 3 {
			continue
		}
		vecs, labels, err := blockInstances(bf, spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		var wantVecs [][]float64
		var wantLabels []int
		for k := 3; k <= len(bf.UERRows); k++ {
			anchor := bf.UERRows[k-1]
			now := bf.UERTimes[k-1]
			visible := visibleEvents(bf.Events, now)
			for b := 0; b < spec.NumBlocks(); b++ {
				vec, err := features.BlockVector(visible, anchor, spec, b, now)
				if err != nil {
					t.Fatal(err)
				}
				wantVecs = append(wantVecs, vec)
				label := 0
				if blockHasFutureUER(bf, spec, anchor, b, now) {
					label = 1
				}
				wantLabels = append(wantLabels, label)
			}
		}
		if len(vecs) != len(wantVecs) {
			t.Fatalf("instance count %d, want %d", len(vecs), len(wantVecs))
		}
		for i := range vecs {
			if !bitsEqual(vecs[i], wantVecs[i]) {
				t.Fatalf("instance %d diverged:\nreplay    %v\nreference %v", i, vecs[i], wantVecs[i])
			}
			if labels[i] != wantLabels[i] {
				t.Fatalf("label %d: replay %d, reference %d", i, labels[i], wantLabels[i])
			}
		}
		banks++
		if banks >= 10 {
			break
		}
	}
	if banks == 0 {
		t.Fatal("no aggregation banks with enough UERs")
	}
}

// TestCordialSessionReleasesStateWhenSpared drives sessions over the fleet
// and checks the release contract: once a session returns SpareBank its
// feature state is dropped, its footprint reads zero/released, and further
// events are absorbed without growing anything.
func TestCordialSessionReleasesStateWhenSpared(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	strategy := &CordialStrategy{Pipeline: p, Geometry: hbm.DefaultGeometry}

	sparedSeen := false
	keptSeen := false
	for _, bf := range test {
		sess := strategy.NewSession(hbm.BankAddress{}).(InstrumentedSession)
		spared := false
		for _, e := range bf.Events {
			d := sess.OnEvent(e)
			if d.SpareBank {
				spared = true
				fp, released := sess.StateFootprint()
				if !released {
					t.Fatal("SpareBank decision did not release the feature state")
				}
				if fp != (features.StateFootprint{}) {
					t.Fatalf("released session reports footprint %+v", fp)
				}
			} else if spared {
				if d.IsolateRows != nil || d.Blocks != nil {
					t.Fatal("decision taken after bank sparing")
				}
			}
		}
		if spared {
			sparedSeen = true
			// Further traffic must stay absorbed with zero state.
			last := bf.Events[len(bf.Events)-1]
			d := sess.OnEvent(mcelog.Event{
				Time:  last.Time.Add(time.Hour),
				Addr:  hbm.Address{Row: 1},
				Class: ecc.ClassUER,
			})
			if d.SpareBank || d.IsolateRows != nil || d.Blocks != nil {
				t.Fatal("released session still takes decisions")
			}
			if _, released := sess.StateFootprint(); !released {
				t.Fatal("released session reports live state")
			}
		} else if cls, ok := sess.(ClassifiedSession).Class(); ok && cls.IsAggregation() {
			keptSeen = true
			fp, released := sess.StateFootprint()
			if released {
				t.Fatal("aggregation session released its state")
			}
			if fp.Events != len(bf.Events) {
				t.Fatalf("aggregation session saw %d events, fed %d", fp.Events, len(bf.Events))
			}
		}
		if sparedSeen && keptSeen {
			return
		}
	}
	if !sparedSeen {
		t.Error("no session ever bank-spared (scattered class unlearned?)")
	}
	if !keptSeen {
		t.Error("no aggregation session retained its state")
	}
}

// TestCordialSessionDecisionsUnchanged replays fleet banks through the
// state-based session and through a faithful reimplementation of the old
// slice-buffering session; the decision streams must match exactly.
func TestCordialSessionDecisionsUnchanged(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	strategy := &CordialStrategy{Pipeline: p, Geometry: hbm.DefaultGeometry}

	for i, bf := range test {
		if i >= 30 {
			break
		}
		sess := strategy.NewSession(hbm.BankAddress{})
		old := &oldSliceSession{strategy: strategy}
		for j, e := range bf.Events {
			got := sess.OnEvent(e)
			want := old.OnEvent(e)
			if got.SpareBank != want.SpareBank {
				t.Fatalf("bank %d event %d: SpareBank %v, want %v", i, j, got.SpareBank, want.SpareBank)
			}
			if (got.Blocks == nil) != (want.Blocks == nil) {
				t.Fatalf("bank %d event %d: Blocks presence diverged", i, j)
			}
			if got.Blocks != nil && !bitsEqual(got.Blocks.Probs, want.Blocks.Probs) {
				t.Fatalf("bank %d event %d: probabilities diverged", i, j)
			}
			if len(got.IsolateRows) != len(want.IsolateRows) {
				t.Fatalf("bank %d event %d: isolated %d rows, want %d", i, j, len(got.IsolateRows), len(want.IsolateRows))
			}
			for r := range got.IsolateRows {
				if got.IsolateRows[r] != want.IsolateRows[r] {
					t.Fatalf("bank %d event %d: isolated row %d diverged", i, j, r)
				}
			}
		}
	}
}

// oldSliceSession reimplements the pre-refactor cordialSession (unbounded
// event buffer, full recomputation per UER) as the behavioural reference.
type oldSliceSession struct {
	strategy *CordialStrategy
	events   []mcelog.Event
	uerRows  []int
	seenRows map[int]bool

	classified bool
	class      faultsim.Class
}

func (s *oldSliceSession) OnEvent(e mcelog.Event) Decision {
	s.events = append(s.events, e)
	if e.Class != ecc.ClassUER {
		return Decision{}
	}
	if s.seenRows == nil {
		s.seenRows = make(map[int]bool)
	}
	if s.seenRows[e.Addr.Row] {
		return Decision{}
	}
	s.seenRows[e.Addr.Row] = true
	s.uerRows = append(s.uerRows, e.Addr.Row)

	pipe := s.strategy.Pipeline
	if len(s.uerRows) < pipe.Config().Pattern.UERBudget {
		return Decision{}
	}
	if !s.classified {
		class, err := pipe.ClassifyPattern(s.events)
		if err != nil {
			return Decision{}
		}
		s.classified = true
		s.class = class
		if !class.IsAggregation() {
			return Decision{SpareBank: true}
		}
	}
	if !s.class.IsAggregation() {
		return Decision{}
	}
	anchor := e.Addr.Row
	probs, err := pipe.PredictBlocks(s.events, anchor, e.Time)
	if err != nil {
		return Decision{}
	}
	mask := make([]bool, len(probs))
	for b, pr := range probs {
		mask[b] = pr >= pipe.Config().Threshold
	}
	rows := pipe.PredictRows(probs, anchor, s.strategy.Geometry)
	return Decision{
		IsolateRows: rows,
		Blocks:      &BlockPrediction{AnchorRow: anchor, Predicted: mask, Probs: probs},
	}
}
