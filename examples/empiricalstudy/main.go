// Empiricalstudy: reproduce the paper's §III analyses on a fresh simulated
// fleet — the sudden-UER ratios per micro-level (Table I), the dataset
// summary (Table II), the bank failure-pattern distribution (Figure 3(b)),
// and the row-distance locality chi-square curve that motivates the 128-row
// prediction window (Figure 4). The same functions work on a real MCE log
// ingested with the mcelog codecs.
package main

import (
	"fmt"
	"log"

	"cordial"
)

func main() {
	spec := cordial.DefaultFleetSpec()
	spec.UERBanks = 400
	spec.BenignBanks = 2500
	spec.Seed = 2025
	fleet, err := cordial.Simulate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d events, %d faulty banks, %d benign banks\n\n",
		fleet.Log.Len(), len(fleet.Faults), len(fleet.BenignBankKeys))

	// Table I — how predictable are UERs at each micro-level?
	fmt.Println("Table I — in-row predictable ratio of UERs")
	fmt.Printf("%-8s %12s %16s %18s\n", "level", "sudden UER", "non-sudden UER", "predictable ratio")
	for _, r := range cordial.SuddenByLevel(fleet.Log) {
		fmt.Printf("%-8s %12d %16d %17.2f%%\n",
			r.Level, r.Sudden, r.NonSudden, r.PredictableRatio()*100)
	}
	fmt.Println("\n→ at row level nearly every UER is sudden: in-row prediction cannot work.")

	// Table II — dataset summary.
	fmt.Println("\nTable II — entities with each error class")
	fmt.Printf("%-8s %9s %9s %9s %9s\n", "level", "with CE", "with UEO", "with UER", "total")
	for _, r := range cordial.SummaryByLevel(fleet.Log) {
		fmt.Printf("%-8s %9d %9d %9d %9d\n", r.Level, r.WithCE, r.WithUEO, r.WithUER, r.Total)
	}

	// Figure 3(b) — pattern mix.
	fmt.Println("\nFigure 3(b) — bank failure pattern distribution")
	agg := 0.0
	for _, s := range cordial.PatternDistribution(fleet.Faults) {
		fmt.Printf("%-28s %5.1f%%  (%d banks)\n", s.Pattern, s.Share*100, s.Count)
	}
	for _, s := range cordial.PatternDistribution(fleet.Faults) {
		if s.Pattern.String() == "single-row clustering" || s.Pattern.String() == "double-row clustering" {
			agg += s.Share
		}
	}
	fmt.Printf("→ aggregation patterns dominate (%.1f%% combined; paper: 78.1%%): cross-row prediction is viable.\n", agg*100)

	// Figure 4 — locality of cross-row UERs.
	fmt.Println("\nFigure 4 — chi-square significance of row-distance thresholds")
	points, err := cordial.LocalityChiSquare(fleet.Log, cordial.DefaultGeometry.RowsPerBank, cordial.DefaultThresholds())
	if err != nil {
		log.Fatal(err)
	}
	peak, peakChi := 0, 0.0
	for _, p := range points {
		bar := int(p.ChiSquare / 2000)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%5d rows  chi2=%9.0f  ", p.Threshold, p.ChiSquare)
		for i := 0; i < bar; i++ {
			fmt.Print("#")
		}
		fmt.Println()
		if p.ChiSquare > peakChi {
			peak, peakChi = p.Threshold, p.ChiSquare
		}
	}
	fmt.Printf("→ strongest significance at %d rows (paper: 128): predict within ±%d of the last UER.\n",
		peak, peak/2)
}
