package sparing

import (
	"testing"
	"time"

	"cordial/internal/hbm"
)

var t0 = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

func at(h int) time.Time { return t0.Add(time.Duration(h) * time.Hour) }

func newEngine(t *testing.T, b Budget) *Engine {
	t.Helper()
	e, err := NewEngine(b)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineRejectsNegativeBudget(t *testing.T) {
	if _, err := NewEngine(Budget{RowSparesPerBank: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestSpareRowsBasics(t *testing.T) {
	e := newEngine(t, DefaultBudget())
	bank := hbm.BankAddress{Node: 1}
	applied := e.SpareRows(bank, []int{10, 5, 7}, at(1))
	if len(applied) != 3 || applied[0] != 5 || applied[2] != 10 {
		t.Fatalf("applied = %v", applied)
	}
	if !e.IsRowIsolatedBefore(bank, 7, at(2)) {
		t.Fatal("row 7 not isolated before hour 2")
	}
	if e.IsRowIsolatedBefore(bank, 7, at(1)) {
		t.Fatal("isolation at t must not cover strictly-before t")
	}
	if e.IsRowIsolatedBefore(bank, 99, at(5)) {
		t.Fatal("unspared row reported isolated")
	}
}

func TestSpareRowsRespectsBudget(t *testing.T) {
	e := newEngine(t, Budget{RowSparesPerBank: 2, BankSparesPerChannel: 1, OfflinePagesPerHBM: 10})
	bank := hbm.BankAddress{}
	applied := e.SpareRows(bank, []int{1, 2, 3, 4}, at(1))
	if len(applied) != 2 {
		t.Fatalf("applied %d rows with budget 2", len(applied))
	}
	// Second call: budget exhausted.
	if got := e.SpareRows(bank, []int{9}, at(2)); len(got) != 0 {
		t.Fatalf("over-budget sparing applied %v", got)
	}
	// A different bank has its own budget.
	other := hbm.BankAddress{Bank: 1}
	if got := e.SpareRows(other, []int{1}, at(2)); len(got) != 1 {
		t.Fatalf("other bank sparing applied %v", got)
	}
}

func TestSpareRowsSkipsAlreadyIsolatedWithoutConsumingBudget(t *testing.T) {
	e := newEngine(t, Budget{RowSparesPerBank: 2, BankSparesPerChannel: 1, OfflinePagesPerHBM: 0})
	bank := hbm.BankAddress{}
	e.SpareRows(bank, []int{5}, at(1))
	applied := e.SpareRows(bank, []int{5, 6}, at(2))
	if len(applied) != 1 || applied[0] != 6 {
		t.Fatalf("re-sparing applied %v", applied)
	}
	if e.Usage().RowSpares != 2 {
		t.Fatalf("row spares used = %d, want 2", e.Usage().RowSpares)
	}
}

func TestSpareBank(t *testing.T) {
	e := newEngine(t, Budget{RowSparesPerBank: 1, BankSparesPerChannel: 1, OfflinePagesPerHBM: 0})
	bank := hbm.BankAddress{Node: 2}
	if err := e.SpareBank(bank, at(3)); err != nil {
		t.Fatal(err)
	}
	// Bank sparing covers every row in the bank.
	if !e.IsRowIsolatedBefore(bank, 12345, at(4)) {
		t.Fatal("bank sparing does not cover rows")
	}
	// Re-sparing the same bank is a no-op (keeps earliest time).
	if err := e.SpareBank(bank, at(10)); err != nil {
		t.Fatal(err)
	}
	// A second bank on the same channel exhausts the channel budget.
	sibling := bank
	sibling.Bank = 3
	if err := e.SpareBank(sibling, at(4)); err == nil {
		t.Fatal("channel bank-spare budget not enforced")
	}
	// A bank on a different channel succeeds.
	elsewhere := bank
	elsewhere.Channel = 5
	if err := e.SpareBank(elsewhere, at(4)); err != nil {
		t.Fatal(err)
	}
}

func TestSpareBankKeepsEarliestTime(t *testing.T) {
	e := newEngine(t, DefaultBudget())
	bank := hbm.BankAddress{}
	if err := e.SpareBank(bank, at(10)); err != nil {
		t.Fatal(err)
	}
	if err := e.SpareBank(bank, at(2)); err != nil {
		t.Fatal(err)
	}
	if !e.IsRowIsolatedBefore(bank, 1, at(3)) {
		t.Fatal("earlier re-isolation time not kept")
	}
}

func TestOfflinePages(t *testing.T) {
	e := newEngine(t, Budget{RowSparesPerBank: 0, BankSparesPerChannel: 0, OfflinePagesPerHBM: 3})
	bank := hbm.BankAddress{Node: 1}
	applied := e.OfflinePages(bank, []int{1, 2}, at(1))
	if len(applied) != 2 {
		t.Fatalf("offlined %v", applied)
	}
	// Same HBM, different bank shares the per-HBM budget.
	sibling := bank
	sibling.Bank = 2
	applied = e.OfflinePages(sibling, []int{7, 8, 9}, at(2))
	if len(applied) != 1 {
		t.Fatalf("offlined %v with 1 page left", applied)
	}
	// Different HBM has fresh budget.
	other := bank
	other.HBM = 1
	if got := e.OfflinePages(other, []int{1}, at(2)); len(got) != 1 {
		t.Fatalf("other HBM offlined %v", got)
	}
	if !e.IsRowIsolatedBefore(bank, 1, at(2)) {
		t.Fatal("offlined row not isolated")
	}
}

func TestUsageAndActions(t *testing.T) {
	e := newEngine(t, DefaultBudget())
	bank := hbm.BankAddress{}
	e.SpareRows(bank, []int{1, 2}, at(1))
	if err := e.SpareBank(hbm.BankAddress{Bank: 1}, at(2)); err != nil {
		t.Fatal(err)
	}
	e.OfflinePages(hbm.BankAddress{Bank: 2}, []int{5}, at(3))

	u := e.Usage()
	if u.RowSpares != 2 || u.BankSpares != 1 || u.OfflinedPages != 1 {
		t.Fatalf("usage = %+v", u)
	}
	if u.IsolatedBanks != 1 || u.IsolatedRows != 3 {
		t.Fatalf("usage = %+v", u)
	}
	acts := e.Actions()
	if len(acts) != 3 {
		t.Fatalf("actions = %d", len(acts))
	}
	if acts[0].Kind != ActionRowSpare || acts[1].Kind != ActionBankSpare || acts[2].Kind != ActionPageOffline {
		t.Fatalf("action kinds = %v %v %v", acts[0].Kind, acts[1].Kind, acts[2].Kind)
	}
	// Actions() returns a copy.
	acts[0].Kind = ActionBankSpare
	if e.Actions()[0].Kind != ActionRowSpare {
		t.Fatal("Actions returned internal storage")
	}
}

func TestActionKindString(t *testing.T) {
	for k, want := range map[ActionKind]string{
		ActionRowSpare:    "row-spare",
		ActionBankSpare:   "bank-spare",
		ActionPageOffline: "page-offline",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", int(k), got)
		}
	}
}

func TestRowSpareKeepsEarliestTime(t *testing.T) {
	e := newEngine(t, DefaultBudget())
	bank := hbm.BankAddress{}
	e.SpareRows(bank, []int{4}, at(5))
	// Row 4 already isolated at hour 5; offline attempt at hour 1 should
	// still isolate at the earlier time... but OfflinePages skips already
	// isolated rows only if isolated at-or-before t; at hour 1 it is not
	// yet isolated, so it records the earlier time.
	e.OfflinePages(bank, []int{4}, at(1))
	if !e.IsRowIsolatedBefore(bank, 4, at(2)) {
		t.Fatal("earliest isolation time not kept for row")
	}
}
