package faultsim

import (
	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

// Error-bit synthesis.
//
// "Exploring Error Bits for Memory Failure Prediction" observes that the
// intra-word pattern of corrupted bits separates failure modes: hardware
// faults behind aggregation patterns corrupt a stable DQ pin (the failing
// wire is physical), while scattered transient upsets flip varying,
// often multiple, pins. The simulator reproduces that signal: each bank
// has a "home" DQ pin for aggregation faults, and scattered or benign
// events draw their pins from the cell address.
//
// Bits are derived from a hash of (bank, row, column, class), not from
// the generator's RNG, for two reasons: repeated errors at the same cell
// must show the same physical pattern, and adding the field must not
// perturb the seeded draw stream that calibrated the rest of the
// simulator's marginals.

// bitKind selects the error-bit behaviour of an event source.
type bitKind int

const (
	bitsAggregation bitKind = iota // stable per-bank pin fault
	bitsScattered                  // varying multi-pin upsets
	bitsBenign                     // single transient pin flips
)

// bitKindOf maps a generator pattern to its error-bit behaviour.
func bitKindOf(p Pattern) bitKind {
	if ClassOf(p).IsAggregation() {
		return bitsAggregation
	}
	return bitsScattered
}

// mix64 is the SplitMix64 finaliser: a cheap, well-distributed 64-bit
// mixer, enough to decorrelate pin draws from address arithmetic.
func mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// errBitsFor derives the error-bit pattern of one event.
func errBitsFor(bank hbm.BankAddress, row, col int, class ecc.Class, kind bitKind) mcelog.ErrBits {
	key := bank.Pack()
	h := mix64(key ^ mix64(uint64(row)) ^ mix64(uint64(col)<<20) ^ uint64(class)<<56)
	switch kind {
	case bitsAggregation:
		// The failing wire is a property of the bank's fault, so every
		// event in the bank shares its home pin.
		home := uint8(1) << (mix64(key) & 7)
		dq := home
		if class == ecc.ClassUER && h&3 == 0 {
			// An uncorrectable word occasionally takes a second pin down.
			dq |= uint8(1) << ((h >> 3) & 7)
		}
		burst := uint8(1) << ((h >> 8) & 7)
		if class != ecc.ClassCE {
			burst |= uint8(1) << ((h >> 16) & 7)
		}
		return mcelog.MakeErrBits(dq, burst)
	case bitsScattered:
		// Scattered upsets corrupt one to three pins that vary per cell.
		dq := uint8(1)<<((h>>4)&7) | uint8(1)<<((h>>12)&7)
		if h&1 == 0 {
			dq |= uint8(1) << ((h >> 20) & 7)
		}
		burst := uint8(1)<<((h>>24)&7) | uint8(1)<<((h>>32)&7)
		return mcelog.MakeErrBits(dq, burst)
	default:
		// Benign transients: one pin, one burst position.
		return mcelog.MakeErrBits(1<<((h>>4)&7), 1<<((h>>24)&7))
	}
}
