package mltree

import (
	"fmt"

	"cordial/internal/xrand"
)

// FoldResult is one cross-validation fold's outcome.
type FoldResult struct {
	// Accuracy on the held-out fold.
	Accuracy float64
	// TrainSize and TestSize are the fold's sample counts.
	TrainSize, TestSize int
}

// CVResult summarises a k-fold cross-validation.
type CVResult struct {
	Folds []FoldResult
}

// MeanAccuracy returns the average held-out accuracy across folds.
func (r *CVResult) MeanAccuracy() float64 {
	if len(r.Folds) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range r.Folds {
		sum += f.Accuracy
	}
	return sum / float64(len(r.Folds))
}

// StdAccuracy returns the (population) standard deviation of fold accuracy.
func (r *CVResult) StdAccuracy() float64 {
	if len(r.Folds) < 2 {
		return 0
	}
	m := r.MeanAccuracy()
	ss := 0.0
	for _, f := range r.Folds {
		d := f.Accuracy - m
		ss += d * d
	}
	return sqrt(ss / float64(len(r.Folds)))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method: plenty for a diagnostic statistic.
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// CrossValidate runs k-fold cross-validation: the dataset is shuffled and cut
// into k folds; for each fold, newModel() supplies a fresh classifier fitted
// on the other k-1 folds and scored on the held-out one.
func CrossValidate(ds *Dataset, k int, rng *xrand.RNG, newModel func() Classifier) (*CVResult, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("mltree: cross-validation needs k ≥ 2, got %d", k)
	}
	n := ds.NumSamples()
	if n < k {
		return nil, fmt.Errorf("mltree: %d samples cannot fill %d folds", n, k)
	}
	if rng == nil {
		return nil, fmt.Errorf("mltree: nil RNG")
	}
	if newModel == nil {
		return nil, fmt.Errorf("mltree: nil model factory")
	}
	perm := rng.Perm(n)
	result := &CVResult{Folds: make([]FoldResult, 0, k)}
	for fold := 0; fold < k; fold++ {
		lo := fold * n / k
		hi := (fold + 1) * n / k
		test := perm[lo:hi]
		train := make([]int, 0, n-len(test))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)

		model := newModel()
		if err := model.Fit(ds.Subset(train)); err != nil {
			return nil, fmt.Errorf("mltree: fold %d: %w", fold, err)
		}
		testDS := ds.Subset(test)
		result.Folds = append(result.Folds, FoldResult{
			Accuracy:  datasetAccuracy(model, testDS),
			TrainSize: len(train),
			TestSize:  len(test),
		})
	}
	return result, nil
}
