package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/trace"
	"cordial/internal/wal"
	"cordial/internal/xrand"
)

// ---- durable fake strategy -------------------------------------------------

// fakeSession implements core.DurableSession so the fast recovery tests can
// run without training a pipeline. The image is version, classified flag,
// class, sorted distinct rows.
func (s *fakeSession) EncodeState() ([]byte, error) {
	enc := &snapEncoder{}
	enc.u8(1)
	enc.bool(s.classified)
	enc.u8(uint8(s.class))
	rows := make([]int, 0, len(s.rows))
	for r := range s.rows {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	enc.ints(rows)
	return enc.b, nil
}

func (f *fakeStrategy) RestoreSession(bank hbm.BankAddress, data []byte) (core.Session, error) {
	d := &snapDecoder{b: data}
	if v := d.u8(); d.err == nil && v != 1 {
		return nil, fmt.Errorf("fake session image version %d", v)
	}
	s := &fakeSession{strategy: f, bank: bank, rows: make(map[int]bool)}
	s.classified = d.bool()
	s.class = faultsim.Class(d.u8())
	for _, r := range d.ints() {
		s.rows[r] = true
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("fake session image has %d trailing bytes", len(data)-d.off)
	}
	return s, nil
}

var (
	_ core.DurableSession  = (*fakeSession)(nil)
	_ core.DurableStrategy = (*fakeStrategy)(nil)
)

// ---- harness ---------------------------------------------------------------

// snapBodyOffset skips the engine snapshot payload's magic, version and
// retention floor; the floor depends on the shard count, the rest of the
// payload must be byte-identical across crash/recovery boundaries.
const snapBodyOffset = len(engineSnapMagic) + 1 + 8

// durCfg points an engine at a WAL directory. SyncNever keeps the tight
// crash-recovery loops fast; fsync behaviour has its own fault tests.
func durCfg(dir string, shards int, strategy core.Strategy) Config {
	if strategy == nil {
		strategy = &fakeStrategy{budget: 3}
	}
	return Config{
		Strategy:   strategy,
		Shards:     shards,
		Durability: DurabilityConfig{Dir: dir, Sync: wal.SyncNever},
	}
}

// actionKeys reduces an action stream to a comparable set; recovery replays
// actions at least once, so equality is on the deduplicated set.
func actionKeys(actions []Action) map[string]bool {
	m := make(map[string]bool)
	for _, a := range actions {
		rows := append([]int(nil), a.Rows...)
		sort.Ints(rows)
		m[fmt.Sprintf("%v|%v|%v|%v", a.Kind, a.Bank, a.Class, rows)] = true
	}
	return m
}

func assertSameActionSet(t *testing.T, got, want map[string]bool) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Errorf("missing action %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected action %s", k)
		}
	}
}

// refRun replays evs through an uninterrupted durable engine and returns the
// canonical snapshot payload plus the deduplicated action set — the oracle
// every crashed-and-recovered run must match.
func refRun(t *testing.T, strategy core.Strategy, evs []mcelog.Event, shards int) ([]byte, map[string]bool) {
	t.Helper()
	e, err := New(durCfg(t.TempDir(), shards, strategy))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := e.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	payload, _, err := e.encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return payload, actionKeys(drainActions(e))
}

// crashRecoveryTrial is one crash/recover/compare cycle: ingest evs[:kill]
// into a durable engine (snapshotting after snapAt events when snapAt >= 0),
// crash it (a plain Close writes no snapshot — recovery rides on the
// journal), reopen the directory under a different shard count, feed the
// remaining events, and require byte-identical session state and the same
// action set as the uninterrupted reference.
func crashRecoveryTrial(t *testing.T, strategy core.Strategy, evs []mcelog.Event, kill, snapAt int, wantBody []byte, wantActions map[string]bool) {
	t.Helper()
	dir := t.TempDir()
	e1, err := New(durCfg(dir, 3, strategy))
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs[:kill] {
		if i == snapAt {
			if err := e1.Drain(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			if _, err := e1.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if err := e1.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	a1 := drainActions(e1)

	e2, err := New(durCfg(dir, 5, strategy))
	if err != nil {
		t.Fatalf("recovery failed (kill=%d snap=%d): %v", kill, snapAt, err)
	}
	st := e2.Stats()
	if !st.WALEnabled {
		t.Error("WAL disabled after recovery")
	}
	if st.RecoveredEvents != uint64(kill) {
		t.Errorf("RecoveredEvents = %d, want %d", st.RecoveredEvents, kill)
	}
	if snapAt >= 0 && st.LastSnapshotSeq == 0 {
		t.Error("LastSnapshotSeq = 0 after recovering with a snapshot present")
	}
	if snapAt >= 1 && st.RecoveredSessions == 0 {
		t.Error("RecoveredSessions = 0 despite a non-empty snapshot")
	}
	for _, ev := range evs[kill:] {
		if err := e2.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	payload, _, err := e2.encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload[snapBodyOffset:], wantBody) {
		t.Errorf("kill=%d snap=%d: recovered state diverged from uninterrupted run", kill, snapAt)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	assertSameActionSet(t, actionKeys(append(a1, drainActions(e2)...)), wantActions)
}

// flipByte corrupts the byte at the given offset from a file's end (offset
// 1 hits a snapshot's checksum).
func flipByte(t *testing.T, path string, fromEnd int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < fromEnd {
		t.Fatalf("%s has %d bytes, cannot flip %d from end", path, len(data), fromEnd)
	}
	data[len(data)-fromEnd] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---- crash-recovery equivalence --------------------------------------------

// TestCrashRecoveryEquivalence is the durability gate: for randomized kill
// points (with and without an intervening snapshot, and across a shard-count
// change), snapshot restore + journal replay must reproduce byte-identical
// per-session state and the same deduplicated action set as a run that never
// crashed.
func TestCrashRecoveryEquivalence(t *testing.T) {
	r := xrand.New(23)
	const banks, n = 10, 400
	evs := make([]mcelog.Event, 0, n)
	for i := 0; i < n; i++ {
		ev := uerAt(testBank(r.Intn(banks)), 1+r.Intn(8), i)
		if r.Intn(4) == 0 {
			ev.Class = ecc.ClassCE
		}
		evs = append(evs, ev)
	}
	strategy := &fakeStrategy{budget: 3}
	refPayload, wantActions := refRun(t, strategy, evs, 4)
	wantBody := refPayload[snapBodyOffset:]

	for trial := 0; trial < 6; trial++ {
		kill := r.Intn(n + 1)
		snapAt := -1
		if trial%2 == 1 && kill > 1 {
			snapAt = r.Intn(kill)
		}
		t.Run(fmt.Sprintf("kill=%d,snap=%d", kill, snapAt), func(t *testing.T) {
			crashRecoveryTrial(t, strategy, evs, kill, snapAt, wantBody, wantActions)
		})
	}
}

// TestCrashRecoveryEquivalenceBatched runs the durability gate over the
// batched ingest path under the production defaults: IngestBatch journals
// whole batches through one WAL AppendBatch under SyncAlways with group
// commit. A crashed batched run must recover to byte-identical state and
// the same action set as an uninterrupted single-event run — batching and
// commit coalescing may change fsync counts, never recovered bytes.
func TestCrashRecoveryEquivalenceBatched(t *testing.T) {
	r := xrand.New(31)
	const banks, n = 10, 400
	evs := make([]mcelog.Event, 0, n)
	for i := 0; i < n; i++ {
		ev := uerAt(testBank(r.Intn(banks)), 1+r.Intn(8), i)
		if r.Intn(4) == 0 {
			ev.Class = ecc.ClassCE
		}
		evs = append(evs, ev)
	}
	strategy := &fakeStrategy{budget: 3}
	refPayload, wantActions := refRun(t, strategy, evs, 4)
	wantBody := refPayload[snapBodyOffset:]

	// ingestBatches feeds events in random-size batches; every event must
	// be accepted (block policy, healthy WAL).
	ingestBatches := func(t *testing.T, e *Engine, evs []mcelog.Event) {
		t.Helper()
		for i := 0; i < len(evs); {
			sz := 1 + r.Intn(32)
			if i+sz > len(evs) {
				sz = len(evs) - i
			}
			accepted, dropped, err := e.IngestBatch(evs[i : i+sz])
			if err != nil || accepted != sz || dropped != 0 {
				t.Fatalf("IngestBatch(%d..%d) = (%d, %d, %v)", i, i+sz, accepted, dropped, err)
			}
			i += sz
		}
	}

	for trial := 0; trial < 4; trial++ {
		kill := r.Intn(n + 1)
		t.Run(fmt.Sprintf("kill=%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			cfg := durCfg(dir, 3, strategy)
			cfg.Durability.Sync = wal.SyncAlways // group commit is the default
			e1, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ingestBatches(t, e1, evs[:kill])
			if err := e1.Close(); err != nil {
				t.Fatal(err)
			}
			a1 := drainActions(e1)

			e2, err := New(durCfg(dir, 5, strategy))
			if err != nil {
				t.Fatalf("recovery failed (kill=%d): %v", kill, err)
			}
			if got := e2.Stats().RecoveredEvents; got != uint64(kill) {
				t.Errorf("RecoveredEvents = %d, want %d", got, kill)
			}
			ingestBatches(t, e2, evs[kill:])
			if err := e2.Drain(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			payload, _, err := e2.encodeSnapshot(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(payload[snapBodyOffset:], wantBody) {
				t.Errorf("kill=%d: batched recovered state diverged from uninterrupted run", kill)
			}
			if err := e2.Close(); err != nil {
				t.Fatal(err)
			}
			assertSameActionSet(t, actionKeys(append(a1, drainActions(e2)...)), wantActions)
		})
	}
}

// TestCrashRecoveryEquivalenceTrained runs the same gate over the real
// Cordial pipeline: the byte-compared session images embed the full
// incremental feature state, so equality here pins the recovered pattern and
// block vectors bit-for-bit against the uninterrupted run.
func TestCrashRecoveryEquivalenceTrained(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	pipe, err := trainedPipeline()
	if err != nil {
		t.Fatal(err)
	}
	strategy := &core.CordialStrategy{Pipeline: pipe, Geometry: hbm.DefaultGeometry}

	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = 12
	spec.BenignBanks = 12
	spec.Seed = 13
	fleet, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Log.Sort()
	evs := make([]mcelog.Event, fleet.Log.Len())
	for i := range evs {
		evs[i] = fleet.Log.At(i)
	}

	refPayload, wantActions := refRun(t, strategy, evs, 4)
	wantBody := refPayload[snapBodyOffset:]

	r := xrand.New(29)
	for trial := 0; trial < 2; trial++ {
		kill := 1 + r.Intn(len(evs)-1)
		snapAt := -1
		if trial == 1 {
			snapAt = kill / 2
		}
		t.Run(fmt.Sprintf("kill=%d,snap=%d", kill, snapAt), func(t *testing.T) {
			crashRecoveryTrial(t, strategy, evs, kill, snapAt, wantBody, wantActions)
		})
	}
}

// ---- fault injection -------------------------------------------------------

// TestRecoverySnapshotFallback: a corrupt snapshot (bad checksum or
// undecodable payload) must never break recovery — the engine falls back to
// the previous snapshot, or to a full journal replay, and converges to the
// same state either way.
func TestRecoverySnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	strategy := &fakeStrategy{budget: 3}
	e, err := New(durCfg(dir, 2, strategy))
	if err != nil {
		t.Fatal(err)
	}
	bank := testBank(1)
	ingest := func(rows ...int) {
		t.Helper()
		for i, row := range rows {
			if err := e.Ingest(uerAt(bank, row, i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Drain(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	ingest(1, 2, 3)
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingest(4, 5, 6)
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	refPayload, _, err := e.encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantBody := refPayload[snapBodyOffset:]
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e)

	snaps, err := wal.ListSnapshots(wal.OSFS, dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("snapshots = %v, %v; want 2", snaps, err)
	}

	// reopen recovers the directory and checks the converged state plus the
	// snapshot sequence actually used.
	reopen := func(t *testing.T, wantSeq uint64) {
		t.Helper()
		e2, err := New(durCfg(dir, 2, strategy))
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer func() {
			if err := e2.Close(); err != nil {
				t.Fatal(err)
			}
			drainActions(e2)
		}()
		if got := e2.Stats().LastSnapshotSeq; got != wantSeq {
			t.Errorf("LastSnapshotSeq = %d, want %d", got, wantSeq)
		}
		payload, _, err := e2.encodeSnapshot(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload[snapBodyOffset:], wantBody) {
			t.Error("recovered state diverged")
		}
	}

	// Newest snapshot checksum-corrupt: fall back to the older one.
	flipByte(t, snaps[0].Path, 1)
	t.Run("corrupt-newest", func(t *testing.T) { reopen(t, snaps[1].Seq) })

	// A snapshot with a valid checksum frame but a garbage engine payload,
	// newer than everything: skipped the same way.
	if _, err := wal.WriteSnapshot(wal.OSFS, dir, snaps[0].Seq+10, []byte("not an engine snapshot")); err != nil {
		t.Fatal(err)
	}
	t.Run("garbage-payload", func(t *testing.T) { reopen(t, snaps[1].Seq) })

	// Every snapshot corrupt: full replay from an empty state, no panic.
	snaps, err = wal.ListSnapshots(wal.OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A different byte than before: re-flipping the same one would undo the
	// earlier corruption.
	for _, si := range snaps {
		flipByte(t, si.Path, 2)
	}
	t.Run("all-corrupt", func(t *testing.T) { reopen(t, 0) })
}

// TestRecoveryTornTail: garbage after the last intact journal record (the
// shape a power cut mid-append leaves) is truncated on reopen, and the
// repaired journal accepts new appends.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	strategy := &fakeStrategy{budget: 3}
	e, err := New(durCfg(dir, 2, strategy))
	if err != nil {
		t.Fatal(err)
	}
	bank := testBank(1)
	for i, row := range []int{1, 2, 3, 4, 5} {
		if err := e.Ingest(uerAt(bank, row, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	refPayload, _, err := e.encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, err := New(durCfg(dir, 2, strategy))
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	if got := e2.Stats().RecoveredEvents; got != 5 {
		t.Errorf("RecoveredEvents = %d, want 5", got)
	}
	payload, _, err := e2.encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload[snapBodyOffset:], refPayload[snapBodyOffset:]) {
		t.Error("state diverged after torn-tail repair")
	}
	// The repaired journal keeps accepting events.
	if err := e2.Ingest(uerAt(bank, 6, 6)); err != nil {
		t.Fatal(err)
	}
	if err := e2.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e2)
}

// TestRecoveryFsyncFailureSurfaces: under SyncAlways a failed fsync must
// reject the event at Ingest (never acknowledge data that is not on stable
// storage), and the engine keeps serving once the disk recovers.
func TestRecoveryFsyncFailureSurfaces(t *testing.T) {
	ffs := wal.NewFaultFS(wal.OSFS)
	e, err := New(Config{
		Strategy: &fakeStrategy{budget: 3},
		Shards:   1,
		Durability: DurabilityConfig{
			Dir:  t.TempDir(),
			FS:   ffs,
			Sync: wal.SyncAlways,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bank := testBank(1)
	if err := e.Ingest(uerAt(bank, 1, 0)); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAfter(0)
	if err := e.Ingest(uerAt(bank, 2, 1)); !errors.Is(err, wal.ErrInjectedSync) {
		t.Fatalf("Ingest under failing fsync = %v, want ErrInjectedSync", err)
	}
	if got := e.Stats().Ingested; got != 1 {
		t.Errorf("Ingested = %d after rejected event, want 1", got)
	}
	ffs.FailSyncAfter(-1)
	if err := e.Ingest(uerAt(bank, 3, 2)); err != nil {
		t.Fatalf("Ingest after fsync recovery: %v", err)
	}
	if err := e.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e)
}

// ---- supervision -----------------------------------------------------------

// TestPoisonQuarantineAndDeadLetter: an event that panics inside the
// strategy session is quarantined — counted, preserved in the dead-letter
// file, its session degraded — while every other bank keeps being served;
// after snapshot + restart the degradation persists and the poisoned record
// is never replayed into a fresh session.
func TestPoisonQuarantineAndDeadLetter(t *testing.T) {
	base := t.TempDir()
	deadPath := filepath.Join(base, "dead.jsonl")
	walDir := filepath.Join(base, "wal")
	strategy := &fakeStrategy{budget: 3, poisonRow: 777}
	cfg := durCfg(walDir, 2, strategy)
	cfg.DeadLetterPath = deadPath
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	healthy, poisoned := testBank(1), testBank(3)
	for i, row := range []int{1, 2, 3} {
		if err := e.Ingest(uerAt(healthy, row, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Ingest(uerAt(poisoned, 777, 10)); err != nil {
		t.Fatal(err)
	}
	// Traffic after the panic: still counted, no longer processed.
	if err := e.Ingest(uerAt(poisoned, 1, 11)); err != nil {
		t.Fatal(err)
	}
	// The healthy bank keeps predicting.
	if err := e.Ingest(uerAt(healthy, 4, 12)); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Quarantined != 1 || st.SessionsDegraded != 1 {
		t.Errorf("quarantined=%d degraded=%d, want 1/1", st.Quarantined, st.SessionsDegraded)
	}
	bad, ok := e.Session(poisoned)
	if !ok || !bad.Degraded {
		t.Fatalf("poisoned session %+v, want degraded", bad)
	}
	if bad.Events != 1 {
		t.Errorf("degraded session Events = %d, want 1 (post-poison traffic only)", bad.Events)
	}
	good, ok := e.Session(healthy)
	if !ok || good.Degraded || good.Actions == 0 {
		t.Errorf("healthy session %+v, want active with actions", good)
	}

	data, err := os.ReadFile(deadPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("dead-letter lines = %d, want 1:\n%s", len(lines), data)
	}
	var dl DeadLetter
	if err := json.Unmarshal([]byte(lines[0]), &dl); err != nil {
		t.Fatalf("dead-letter line %q: %v", lines[0], err)
	}
	if dl.Bank != poisoned.String() || dl.Row != 777 || dl.LSN == 0 {
		t.Errorf("dead letter %+v, want bank %s row 777 with an LSN", dl, poisoned)
	}
	if !strings.Contains(dl.Reason, "poisoned row 777") {
		t.Errorf("dead letter reason %q", dl.Reason)
	}

	// Snapshot, restart: the degraded flag and watermark persist, so the
	// poisoned record does not replay into a fresh session and re-panic.
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e)

	e2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart after quarantine: %v", err)
	}
	st = e2.Stats()
	if st.Quarantined != 0 {
		t.Errorf("replay re-quarantined %d events; the snapshot should cover the poison", st.Quarantined)
	}
	if st.SessionsDegraded != 1 {
		t.Errorf("SessionsDegraded = %d after restart, want 1", st.SessionsDegraded)
	}
	bad, ok = e2.Session(poisoned)
	if !ok || !bad.Degraded {
		t.Errorf("degradation lost across restart: %+v", bad)
	}
	if err := e2.Ingest(uerAt(poisoned, 2, 20)); err != nil {
		t.Fatal(err)
	}
	if err := e2.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got, _ := e2.Session(poisoned); got.Events != bad.Events+1 {
		t.Errorf("degraded session stopped counting traffic: %d -> %d", bad.Events, got.Events)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e2)

	// No new dead letters were written during replay or the extra event.
	data, err = os.ReadFile(deadPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(string(data)), "\n")); got != 1 {
		t.Errorf("dead-letter lines after restart = %d, want 1", got)
	}
}

// ---- snapshot retention ----------------------------------------------------

// TestSnapshotRetention: snapshots retire fully-covered journal segments and
// prune old snapshot files, and the truncated directory still recovers to
// the exact same state.
func TestSnapshotRetention(t *testing.T) {
	dir := t.TempDir()
	strategy := &fakeStrategy{budget: 3}
	cfg := durCfg(dir, 1, strategy)
	cfg.Durability.SegmentBytes = 128 // a few records per segment
	cfg.Durability.SnapshotKeep = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	round := func(rows ...int) {
		t.Helper()
		for _, row := range rows {
			seq++
			if err := e.Ingest(uerAt(testBank(row%6), row, seq)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Drain(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	round(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	before := e.Stats().WALSegments
	if before < 3 {
		t.Fatalf("only %d segments before snapshot; shrink SegmentBytes", before)
	}
	for i := 0; i < 3; i++ {
		round(20+i, 30+i)
		if _, err := e.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.WALSegments >= before {
		t.Errorf("segments %d -> %d; snapshot retired nothing", before, st.WALSegments)
	}
	snaps, err := wal.ListSnapshots(wal.OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > 2 {
		t.Errorf("%d snapshot files retained, want <= 2", len(snaps))
	}
	refPayload, _, err := e.encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e)

	e2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery from truncated journal: %v", err)
	}
	payload, _, err := e2.encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload[snapBodyOffset:], refPayload[snapBodyOffset:]) {
		t.Error("state diverged after retention")
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e2)
}

// ---- API edges -------------------------------------------------------------

func TestSnapshotWithoutDurability(t *testing.T) {
	e := newTestEngine(t, Config{})
	defer func() {
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if _, err := e.Snapshot(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Snapshot without WAL = %v, want ErrNotDurable", err)
	}
}

func TestDurabilityRequiresDurableStrategy(t *testing.T) {
	_, err := New(Config{
		Strategy:   &recordingStrategy{times: make(map[uint64][]time.Time)},
		Durability: DurabilityConfig{Dir: t.TempDir()},
	})
	if err == nil {
		t.Fatal("non-durable strategy accepted with a WAL directory")
	}
}

// TestDrainTimeout pins Drain's deadline behaviour against a deliberately
// slow consumer, then lets the unbounded form finish the backlog.
func TestDrainTimeout(t *testing.T) {
	e := newTestEngine(t, Config{
		Shards:   1,
		Strategy: &fakeStrategy{budget: 3, delay: 10 * time.Millisecond},
	})
	bank := testBank(1)
	for i := 0; i < 30; i++ {
		if err := e.Ingest(uerAt(bank, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	err := e.Drain(5 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Drain with tiny budget = %v, want timeout", err)
	}
	// d <= 0 waits forever.
	if err := e.Drain(0); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Processed != st.Ingested {
		t.Errorf("processed %d != ingested %d after unbounded drain", st.Processed, st.Ingested)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e)
}

// TestIngestCloseRace hammers Ingest from many goroutines while Close runs;
// under -race this pins the guarantee that late Ingests get ErrClosed
// instead of racing a closed channel.
func TestIngestCloseRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		e := newTestEngine(t, Config{Shards: 4, QueueDepth: 16})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 6; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					err := e.Ingest(uerAt(testBank(p), i%10, i))
					if errors.Is(err, ErrClosed) {
						return
					}
					if err != nil && !errors.Is(err, ErrDropped) {
						t.Error(err)
						return
					}
				}
			}(p)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range e.Actions() {
			}
		}()
		close(start)
		time.Sleep(2 * time.Millisecond)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		<-done
		if st := e.Stats(); st.Processed != st.Ingested {
			t.Errorf("round %d: processed %d != ingested %d", round, st.Processed, st.Ingested)
		}
	}
}
