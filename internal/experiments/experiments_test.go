package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
)

func TestParamsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Quick().Validate(); err != nil {
		t.Fatal(err)
	}
	p := Quick()
	p.TrainFrac = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("bad train fraction accepted")
	}
}

func TestTableIShape(t *testing.T) {
	res, err := RunTableI(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(hbm.TableLevels) {
		t.Fatalf("TableI has %d rows", len(res.Rows))
	}
	// The paper's headline: >95% of row-level UERs are sudden.
	if got := res.RowLevelSuddenRatio(); got < 0.9 {
		t.Fatalf("row-level sudden ratio = %.3f", got)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Micro-level", "NPU", "Row", "Predictable Ratio"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	res, err := RunTableII(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(hbm.TableLevels) {
		t.Fatalf("TableII has %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.WithCE <= r.WithUER {
			t.Errorf("%v: CE entities (%d) not above UER entities (%d)", r.Level, r.WithCE, r.WithUER)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Total Count") {
		t.Error("render missing header")
	}
}

func TestEvaluationTablesShape(t *testing.T) {
	t3, t4, err := RunEvaluation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 3 {
		t.Fatalf("TableIII has %d rows", len(t3.Rows))
	}
	for _, row := range t3.Rows {
		if row.Weighted.F1 <= 0.5 {
			t.Errorf("%v weighted F1 = %.3f", row.Model, row.Weighted.F1)
		}
		// Single-row clustering is the easiest class for every backend
		// (allowing seed-level slack where scores saturate).
		single := row.PerClass[faultsim.ClassSingleRow]
		for _, other := range []faultsim.Class{faultsim.ClassDoubleRow, faultsim.ClassScattered} {
			if single.F1 < row.PerClass[other].F1-0.05 {
				t.Errorf("%v: single-row F1 %.3f below %v %.3f", row.Model, single.F1, other, row.PerClass[other].F1)
			}
		}
	}

	// Table IV: 3 baselines + 3 Cordial variants, Cordial wins.
	if len(t4.Rows) != 6 {
		t.Fatalf("TableIV has %d rows", len(t4.Rows))
	}
	base, ok := t4.Row("Neighbor Rows")
	if !ok {
		t.Fatal("baseline row missing")
	}
	for _, kind := range core.AllModelKinds {
		row, ok := t4.Row("Cordial-" + kind.ShortName())
		if !ok {
			t.Fatalf("Cordial-%s row missing", kind.ShortName())
		}
		if row.F1 <= base.F1 {
			t.Errorf("Cordial-%s F1 %.3f not above baseline %.3f", kind.ShortName(), row.F1, base.F1)
		}
		if row.ICR <= base.ICR {
			t.Errorf("Cordial-%s ICR %.3f not above baseline %.3f", kind.ShortName(), row.ICR, base.ICR)
		}
	}
	inrow, ok := t4.Row("In-row")
	if !ok {
		t.Fatal("in-row row missing")
	}
	// In-row coverage is bounded by the non-sudden ratio; at full scale it
	// sits clearly below the neighbor-rows baseline, at quick scale allow a
	// small margin of noise.
	if inrow.ICR > base.ICR+0.03 {
		t.Errorf("in-row ICR %.3f well above neighbor-rows %.3f", inrow.ICR, base.ICR)
	}
	if inrow.ICR > 0.12 {
		t.Errorf("in-row ICR %.3f above the sudden-ratio bound", inrow.ICR)
	}
	calchas, ok := t4.Row("Calchas-lite")
	if !ok {
		t.Fatal("Calchas-lite row missing")
	}
	// A learned in-row method is still bounded by the non-sudden ratio.
	if calchas.ICR > 0.15 {
		t.Errorf("Calchas-lite ICR %.3f unexpectedly high", calchas.ICR)
	}

	var buf bytes.Buffer
	if err := t3.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Weighted Average") {
		t.Error("TableIII render missing weighted average")
	}
	buf.Reset()
	if err := t4.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Cordial-RF") {
		t.Error("TableIV render missing Cordial-RF")
	}
}

func TestFig3aShape(t *testing.T) {
	res, err := RunFig3a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Examples) != len(faultsim.AllPatterns) {
		t.Fatalf("Fig3a has %d patterns", len(res.Examples))
	}
	for p, points := range res.Examples {
		if len(points) == 0 {
			t.Errorf("pattern %v has no points", p)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "pattern,row,column,class") {
		t.Error("Fig3a render missing CSV header")
	}
}

func TestFig3bShape(t *testing.T) {
	res, err := RunFig3b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Aggregation patterns dominate (paper: 78.1%).
	if agg := res.AggregationShare(); agg < 0.6 || agg > 0.9 {
		t.Fatalf("aggregation share = %.3f", agg)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "single-row clustering") {
		t.Error("Fig3b render missing pattern name")
	}
}

func TestFig4PeaksAt128(t *testing.T) {
	res, err := RunFig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("Fig4 has %d points", len(res.Points))
	}
	if peak := res.Peak(); peak != 128 {
		t.Fatalf("Fig4 peak at %d, want 128", peak)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Chi-Squared") {
		t.Error("Fig4 render missing header")
	}
}

func TestAblationUERBudget(t *testing.T) {
	res, err := RunAblationUERBudget(Quick(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("ablation has %d rows", len(res.Rows))
	}
	// Three UERs classify patterns better than one (the paper's §IV-C
	// rationale: one UER cannot separate aggregation from scattered).
	if res.Rows[1].PatternF1 <= res.Rows[0].PatternF1 {
		t.Errorf("budget-3 pattern F1 %.3f not above budget-1 %.3f",
			res.Rows[1].PatternF1, res.Rows[0].PatternF1)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "first 3 UERs") {
		t.Error("ablation render missing label")
	}
}

func TestAblationBlockGeometry(t *testing.T) {
	res, err := RunAblationBlockGeometry(Quick(), []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("ablation has %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.BlockF1 <= 0 {
			t.Errorf("%s: block F1 = %.3f", r.Label, r.BlockF1)
		}
	}
}

func TestAblationWindow(t *testing.T) {
	res, err := RunAblationWindow(Quick(), []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("ablation has %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.ICR <= 0 {
			t.Errorf("%s: ICR = %.3f", r.Label, r.ICR)
		}
	}
}

func TestAblationFeatures(t *testing.T) {
	res, err := RunAblationFeatures(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("ablation has %d rows", len(res.Rows))
	}
	all := res.Rows[3]
	if all.Label != "all families" {
		t.Fatalf("unexpected row order: %v", res.Rows)
	}
	// All families together must not lose to any single family by a
	// meaningful margin.
	for _, r := range res.Rows[:3] {
		if all.PatternF1 < r.PatternF1-0.05 {
			t.Errorf("all-families F1 %.3f below %s %.3f", all.PatternF1, r.Label, r.PatternF1)
		}
	}
}

func TestFamilyOf(t *testing.T) {
	tests := map[string]FeatureFamily{
		"ce_row_min":                 FamilySpatial,
		"uer_row_span":               FamilySpatial,
		"ce_dt_min_h":                FamilyTemporal,
		"first_error_to_first_uer_h": FamilyTemporal,
		"ce_count_before_first_uer":  FamilyCount,
		"ce_rate_before_first_uer":   FamilyCount,
	}
	for name, want := range tests {
		if got := familyOf(name); got != want {
			t.Errorf("familyOf(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestStability(t *testing.T) {
	p := Quick()
	p.Spec.UERBanks = 60
	p.Spec.BenignBanks = 0
	res, err := RunStability(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != 3 || len(res.Rows) != 6 {
		t.Fatalf("stability = %+v", res)
	}
	adv, ok := res.Row("Cordial F1 advantage")
	if !ok {
		t.Fatal("advantage row missing")
	}
	// Cordial beats the baseline on average across seeds.
	if adv.Mean <= 0 {
		t.Fatalf("mean F1 advantage = %.3f", adv.Mean)
	}
	for _, r := range res.Rows {
		if r.Std < 0 || r.Min > r.Max || r.Mean < r.Min || r.Mean > r.Max {
			t.Fatalf("malformed row %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Cordial-RF ICR") {
		t.Error("render missing metric")
	}
	if _, err := RunStability(p, 1); err == nil {
		t.Error("single seed accepted")
	}
}

func TestGeneratorValidation(t *testing.T) {
	res, err := RunGeneratorValidation(Quick(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fast.Banks != 40 || res.Physical.Banks != 40 {
		t.Fatalf("bank counts %d/%d", res.Fast.Banks, res.Physical.Banks)
	}
	// The two independent generation paths must agree on the structural
	// statistics the learning task depends on.
	if !res.Agree(0.15) {
		t.Fatalf("generator paths disagree: fast=%+v physical=%+v", res.Fast, res.Physical)
	}
	// Physical mode surfaces UEOs through scrubbing.
	if res.Physical.UEOShare <= 0 {
		t.Fatal("physical mode produced no UEOs")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Physical path") {
		t.Error("render missing column")
	}
	if _, err := RunGeneratorValidation(Quick(), 2); err == nil {
		t.Error("tiny bank count accepted")
	}
}
