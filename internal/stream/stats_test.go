package stream

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refQuantile is the independent nearest-rank oracle: the smallest sample v
// such that at least ceil(q*n) samples are <= v, found by scanning — no
// index arithmetic shared with the implementation.
func refQuantile(samples []time.Duration, q float64) time.Duration {
	n := len(samples)
	need := int(float64(n) * q)
	if float64(need) < float64(n)*q {
		need++ // ceil without math.Ceil: count, not float index
	}
	if need < 1 {
		need = 1
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, v := range sorted {
		le := 0
		for _, s := range samples {
			if s <= v {
				le++
			}
		}
		if le >= need {
			return v
		}
	}
	return sorted[n-1]
}

// TestQuantileNearestRankVsReference verifies the sampler's quantiles
// bit-for-bit against the scan-based oracle across every window size the
// ring can hold, 1..latencySamplerSize*4 (wrapped sizes clamp to the ring).
// Small n is where floor indexing went wrong: with n=10, int(0.99*9) = 8
// returned the 9th sample as P99.
func TestQuantileNearestRankVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{}
	for n := 1; n <= 64; n++ {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, 100, 511, 512, 1000, 1023, 1024, 1025, 2048, 4096)
	for _, n := range sizes {
		var l latencySampler
		for i := 0; i < n; i++ {
			l.observe(time.Duration(rng.Intn(1_000_000)) * time.Nanosecond)
		}
		// The comparable window is what the ring retained.
		w := n
		if w > latencySamplerSize {
			w = latencySamplerSize
		}
		window := make([]time.Duration, w)
		start := 0
		if n > latencySamplerSize {
			start = l.next % latencySamplerSize
		}
		for i := 0; i < w; i++ {
			window[i] = l.ring[(start+i)%latencySamplerSize]
		}
		got := l.snapshot()
		for _, tc := range []struct {
			q    float64
			have time.Duration
		}{{0.50, got.P50}, {0.90, got.P90}, {0.99, got.P99}} {
			if want := refQuantile(window, tc.q); tc.have != want {
				t.Fatalf("n=%d q=%v: got %v, want %v", n, tc.q, tc.have, want)
			}
		}
	}
}

// TestQuantileSmallSampleTail pins the exact regression: at n=10 the P99
// must be the maximum sample, which floor indexing (int(0.99*9) = 8)
// silently missed.
func TestQuantileSmallSampleTail(t *testing.T) {
	var l latencySampler
	for i := 1; i <= 10; i++ {
		l.observe(time.Duration(i) * time.Millisecond)
	}
	s := l.snapshot()
	if s.P99 != 10*time.Millisecond {
		t.Errorf("P99 over 1..10ms = %v, want 10ms (nearest rank)", s.P99)
	}
	if s.P90 != 9*time.Millisecond {
		t.Errorf("P90 over 1..10ms = %v, want 9ms", s.P90)
	}
	if s.P50 != 5*time.Millisecond {
		t.Errorf("P50 over 1..10ms = %v, want 5ms", s.P50)
	}
	// n=1: every quantile is the single sample.
	var one latencySampler
	one.observe(7 * time.Millisecond)
	s = one.snapshot()
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond {
		t.Errorf("single-sample quantiles %v/%v, want 7ms", s.P50, s.P99)
	}
}

// TestMergeWrappedRing merges a wrapped sampler and checks the destination
// holds exactly the retained window in chronological order — the explicit
// contract merge previously met only by modular coincidence when the
// destination was empty.
func TestMergeWrappedRing(t *testing.T) {
	var src latencySampler
	total := latencySamplerSize + 100 // wraps: first 100 samples evicted
	for i := 1; i <= total; i++ {
		src.observe(time.Duration(i) * time.Microsecond)
	}
	if src.next != total {
		t.Fatalf("src.next = %d", src.next)
	}
	var dst latencySampler
	dst.merge(&src)
	if dst.count != uint64(total) {
		t.Errorf("merged count = %d, want %d", dst.count, total)
	}
	if dst.next != latencySamplerSize {
		t.Fatalf("merged next = %d, want %d (only retained samples copied)", dst.next, latencySamplerSize)
	}
	// Chronological: oldest retained sample (101) first.
	for i := 0; i < latencySamplerSize; i++ {
		want := time.Duration(101+i) * time.Microsecond
		if dst.ring[i] != want {
			t.Fatalf("ring[%d] = %v, want %v", i, dst.ring[i], want)
		}
	}
	// And the quantile view over the merged ring matches the oracle.
	window := dst.ring[:latencySamplerSize]
	got := dst.snapshot()
	if want := refQuantile(window, 0.99); got.P99 != want {
		t.Errorf("merged P99 = %v, want %v", got.P99, want)
	}
}

// TestMergeUnwrappedAndAggregates merges two partial samplers and checks
// count/sum/max aggregation plus ordering.
func TestMergeUnwrappedAndAggregates(t *testing.T) {
	var a, b, dst latencySampler
	a.observe(1 * time.Millisecond)
	a.observe(3 * time.Millisecond)
	b.observe(2 * time.Millisecond)
	dst.merge(&a)
	dst.merge(&b)
	if dst.count != 3 || dst.sum != 6*time.Millisecond || dst.max != 3*time.Millisecond {
		t.Errorf("aggregates count=%d sum=%v max=%v", dst.count, dst.sum, dst.max)
	}
	want := []time.Duration{1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	for i, w := range want {
		if dst.ring[i] != w {
			t.Errorf("ring[%d] = %v, want %v", i, dst.ring[i], w)
		}
	}
	s := dst.snapshot()
	if s.Mean != 2*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
}

// TestMergeIntoPartiallyFilled covers the general case: the destination
// already holds samples and the merge continues from its cursor.
func TestMergeIntoPartiallyFilled(t *testing.T) {
	var src latencySampler
	for i := 1; i <= latencySamplerSize+10; i++ { // wrapped source
		src.observe(time.Duration(i) * time.Microsecond)
	}
	var dst latencySampler
	dst.observe(999 * time.Microsecond)
	dst.merge(&src)
	if dst.next != 1+latencySamplerSize {
		t.Fatalf("dst.next = %d", dst.next)
	}
	// dst ring wrapped by 1: position 0 now holds the newest source sample.
	if got := dst.ring[0]; got != time.Duration(latencySamplerSize+10)*time.Microsecond {
		t.Errorf("ring[0] after wrap = %v", got)
	}
	// Position 1 holds the oldest retained source sample (11).
	if got := dst.ring[1]; got != 11*time.Microsecond {
		t.Errorf("ring[1] = %v, want 11µs", got)
	}
}
