package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Dead-letter rotation. The quarantine file preserves evidence, but a
// sustained poison stream (the chaos harness produces exactly that) would
// grow it without bound: every poisoned event appends a line forever. The
// trail is capped two ways — the active file rotates once it reaches
// MaxFileBytes, and rotated files are pruned by count and by age — so the
// freshest evidence survives and the disk does not fill.

// DeadLetterRotation caps the on-disk quarantine trail. The zero value
// applies the defaults below; rotation is always on when a dead-letter
// path is configured.
type DeadLetterRotation struct {
	// MaxFileBytes rotates the active file once a write would push it past
	// this size. Zero means DefaultDeadLetterMaxFileBytes.
	MaxFileBytes int64
	// MaxFiles bounds how many rotated files are kept (the active file is
	// not counted). Zero means DefaultDeadLetterMaxFiles; negative keeps
	// none.
	MaxFiles int
	// MaxAge additionally drops rotated files whose rotation stamp is
	// older than this. Zero means no age pruning.
	MaxAge time.Duration
	// Clock overrides time.Now for rotation stamps and age pruning
	// (tests).
	Clock func() time.Time
}

// Defaults: 64 MiB × (1 active + 4 rotated) caps the trail at 320 MiB.
const (
	DefaultDeadLetterMaxFileBytes = 64 << 20
	DefaultDeadLetterMaxFiles     = 4
)

func (r DeadLetterRotation) withDefaults() DeadLetterRotation {
	if r.MaxFileBytes <= 0 {
		r.MaxFileBytes = DefaultDeadLetterMaxFileBytes
	}
	if r.MaxFiles == 0 {
		r.MaxFiles = DefaultDeadLetterMaxFiles
	}
	if r.Clock == nil {
		r.Clock = time.Now
	}
	return r
}

// deadLetterLog is the engine's rotating dead-letter writer. Write errors
// are swallowed (losing a dead-letter line must never take down
// processing), but size accounting stays exact so the cap holds even
// under partial writes.
type deadLetterLog struct {
	mu   sync.Mutex
	path string
	rot  DeadLetterRotation
	f    *os.File
	size int64
}

// openDeadLetterLog opens (appending) the active dead-letter file and
// prunes any rotated files left over from earlier runs.
func openDeadLetterLog(path string, rot DeadLetterRotation) (*deadLetterLog, error) {
	rot = rot.withDefaults()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stream: opening dead-letter file: %w", err)
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	l := &deadLetterLog{path: path, rot: rot, f: f, size: size}
	l.prune()
	return l, nil
}

// write appends one line (newline added here), rotating first when the
// line would push the active file over the cap.
func (l *deadLetterLog) write(line []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return
	}
	if l.size > 0 && l.size+int64(len(line))+1 > l.rot.MaxFileBytes {
		l.rotateLocked()
	}
	n, _ := l.f.Write(append(line, '\n'))
	l.size += int64(n)
}

// rotateLocked renames the active file to path.<unix-nanos> and opens a
// fresh one. A rename or reopen failure falls back to truncating in
// place — the cap must hold even when the rename path is broken.
func (l *deadLetterLog) rotateLocked() {
	stamp := l.rot.Clock().UnixNano()
	l.f.Close()
	rotated := fmt.Sprintf("%s.%d", l.path, stamp)
	renameErr := os.Rename(l.path, rotated)
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return
	}
	l.f = f
	if renameErr != nil {
		// The old contents are still behind the reopened file: truncate so
		// the size cap is enforced regardless.
		l.f.Truncate(0)
	}
	l.size = 0
	l.prune()
}

// prune removes rotated files beyond MaxFiles (oldest first) and, when
// MaxAge is set, rotated files stamped older than now-MaxAge.
func (l *deadLetterLog) prune() {
	matches, err := filepath.Glob(l.path + ".*")
	if err != nil {
		return
	}
	type rotated struct {
		path  string
		stamp int64
	}
	var files []rotated
	for _, m := range matches {
		suffix := strings.TrimPrefix(m, l.path+".")
		stamp, err := strconv.ParseInt(suffix, 10, 64)
		if err != nil {
			continue // not one of ours
		}
		files = append(files, rotated{path: m, stamp: stamp})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].stamp < files[j].stamp })
	keep := l.rot.MaxFiles
	if keep < 0 {
		keep = 0
	}
	cutoff := int64(-1)
	if l.rot.MaxAge > 0 {
		cutoff = l.rot.Clock().Add(-l.rot.MaxAge).UnixNano()
	}
	for i, f := range files {
		if len(files)-i > keep || f.stamp < cutoff {
			os.Remove(f.path)
		}
	}
}

// close closes the active file.
func (l *deadLetterLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
