#!/bin/sh
# CI gate: formatting, vet, build, the full test suite, and the same suite
# under the race detector. The race pass is load-bearing — internal/stream
# is a concurrent engine and its tests are written to provoke races.
#
# Usage: scripts/ci.sh [extra go-test args]
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test"
go test ./... "$@"

echo "==> go test -race (parallel-training equivalence focus)"
# Fast-failing race pass over the tests that exercise the shared worker
# pool hardest: parallel-vs-serial equivalence, flat-tree round-trips and
# batch inference. The full -race suite below still covers everything.
go test -race -run 'Equivalence|Parallel|RoundTrip|Batch' \
    ./internal/mltree/ ./internal/core/

echo "==> go test -race"
go test -race ./... "$@"

echo "==> crash-restart e2e (SIGKILL mid-ingest, recover, converge)"
# Kills a live cordial-serve with SIGKILL halfway through an ingest and
# asserts a restart over the same -wal-dir converges to the exact action
# set of an uninterrupted reference run. Runs inside `go test ./...` too;
# this labeled pass keeps the durability guarantee visible in CI output.
go test -run 'TestCLIServeCrashRecovery' -count 1 ./internal/clitest/

echo "==> fuzz smoke (incremental feature equivalence, 5s)"
# Short fuzzing pass over the incremental-vs-batch feature equivalence
# property; the seed corpus alone already covers the known-tricky cutoff
# and timestamp-tie shapes, the extra seconds search for new ones.
go test -run '^$' -fuzz 'FuzzIncrementalFeatureEquivalence' -fuzztime 5s \
    ./internal/features/

echo "==> fuzz smoke (WAL record decoder, 5s)"
# The decoder must classify arbitrary bytes as a record, a clean torn
# tail, or corruption — never panic, never over-read.
go test -run '^$' -fuzz 'FuzzWALDecode' -fuzztime 5s ./internal/wal/

echo "==> bench smoke (1 iteration)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "==> ok"
