package mcelog

import (
	"math"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

func TestRateSeries(t *testing.T) {
	l := FromEvents([]Event{
		ev(0, 0, ecc.ClassCE),
		ev(30, 1, ecc.ClassCE),
		ev(3700, 2, ecc.ClassCE), // just past one hour
		ev(3800, 3, ecc.ClassCE),
	})
	l.Sort()
	points, err := l.RateSeries(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d buckets", len(points))
	}
	if points[0].Count != 2 || points[1].Count != 2 {
		t.Fatalf("bucket counts = %d,%d", points[0].Count, points[1].Count)
	}
	if !points[1].Start.Equal(points[0].Start.Add(time.Hour)) {
		t.Fatal("bucket starts not contiguous")
	}
}

func TestRateSeriesEmptyAndErrors(t *testing.T) {
	var l Log
	points, err := l.RateSeries(time.Hour)
	if err != nil || points != nil {
		t.Fatalf("empty log: %v, %v", points, err)
	}
	if _, err := l.RateSeries(0); err == nil {
		t.Fatal("zero bucket accepted")
	}
}

func TestFanoFactorPoissonNearOne(t *testing.T) {
	// A homogeneous Poisson process has Fano factor ~1.
	r := xrand.New(1)
	l := NewLog(0)
	ts := epoch
	for i := 0; i < 5000; i++ {
		ts = ts.Add(time.Duration(r.Exp(1.0 / float64(time.Minute))))
		l.Append(Event{Time: ts, Addr: hbm.Address{Row: i % 100}, Class: ecc.ClassCE})
	}
	f, err := l.FanoFactor(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 0.25 {
		t.Fatalf("Poisson Fano factor = %g, want ~1", f)
	}
}

func TestFanoFactorBurstyAboveOne(t *testing.T) {
	// Events concentrated in short bursts separated by long quiet spells.
	r := xrand.New(2)
	l := NewLog(0)
	ts := epoch
	for burst := 0; burst < 40; burst++ {
		ts = ts.Add(6 * time.Hour)
		for i := 0; i < 50; i++ {
			l.Append(Event{
				Time:  ts.Add(time.Duration(r.Intn(600)) * time.Second),
				Addr:  hbm.Address{Row: burst},
				Class: ecc.ClassCE,
			})
		}
	}
	l.Sort()
	f, err := l.FanoFactor(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if f < 5 {
		t.Fatalf("bursty Fano factor = %g, want ≫1", f)
	}
}

func TestFanoFactorErrors(t *testing.T) {
	l := FromEvents([]Event{ev(0, 0, ecc.ClassCE)})
	if _, err := l.FanoFactor(time.Hour); err == nil {
		t.Fatal("single-bucket log accepted")
	}
}

func TestTopEntities(t *testing.T) {
	bankA := hbm.Address{Node: 1}
	bankB := hbm.Address{Node: 2}
	l := NewLog(0)
	for i := 0; i < 5; i++ {
		l.Append(Event{Time: epoch, Addr: hbm.CellInBank(bankA, i, 0), Class: ecc.ClassCE})
	}
	for i := 0; i < 3; i++ {
		l.Append(Event{Time: epoch, Addr: hbm.CellInBank(bankB, i, 0), Class: ecc.ClassUER})
	}
	top := l.TopEntities(hbm.LevelBank, 1)
	if len(top) != 1 || top[0].Events != 5 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Address().Node != 1 {
		t.Fatalf("top entity node = %d", top[0].Address().Node)
	}
	all := l.TopEntities(hbm.LevelBank, 0)
	if len(all) != 2 || all[1].UERs != 3 {
		t.Fatalf("all = %+v", all)
	}
}

func TestInterArrivals(t *testing.T) {
	l := FromEvents([]Event{ev(0, 0, ecc.ClassCE), ev(10, 1, ecc.ClassCE), ev(30, 2, ecc.ClassCE)})
	l.Sort()
	gaps := l.InterArrivals()
	if len(gaps) != 2 || gaps[0] != 10*time.Second || gaps[1] != 20*time.Second {
		t.Fatalf("gaps = %v", gaps)
	}
	var empty Log
	if empty.InterArrivals() != nil {
		t.Fatal("empty log produced gaps")
	}
}

func TestBursts(t *testing.T) {
	l := FromEvents([]Event{
		ev(0, 0, ecc.ClassCE), ev(5, 1, ecc.ClassCE), ev(9, 2, ecc.ClassCE),
		// one hour of silence
		ev(3700, 3, ecc.ClassCE), ev(3705, 4, ecc.ClassCE),
		// lone straggler two hours later
		ev(11000, 5, ecc.ClassCE),
	})
	l.Sort()
	bursts, err := l.Bursts(time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 2 {
		t.Fatalf("got %d bursts: %+v", len(bursts), bursts)
	}
	if bursts[0].Events != 3 || bursts[0].Duration() != 9*time.Second {
		t.Fatalf("burst 0 = %+v", bursts[0])
	}
	if bursts[1].Events != 2 {
		t.Fatalf("burst 1 = %+v", bursts[1])
	}
	// minEvents 1 keeps the straggler.
	bursts, err = l.Bursts(time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 3 {
		t.Fatalf("got %d bursts with minEvents 1", len(bursts))
	}
	if _, err := l.Bursts(0, 1); err == nil {
		t.Fatal("zero maxGap accepted")
	}
}
