package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

// fakeStrategy is a deterministic stand-in for the Cordial pipeline: after
// budget distinct UER rows it bank-spares banks with an even bank index
// and, for odd ones, isolates the anchor row and its successor at every
// subsequent UER (re-isolating the anchor to exercise dedupe). A
// configurable per-event delay simulates inference cost.
type fakeStrategy struct {
	budget int
	delay  time.Duration
	// poisonRow, when non-zero, makes OnEvent panic on any event at that
	// row — the supervision tests' stand-in for a session-poisoning bug.
	poisonRow int
}

func (f *fakeStrategy) Name() string { return "fake" }

func (f *fakeStrategy) NewSession(bank hbm.BankAddress) core.Session {
	return &fakeSession{strategy: f, bank: bank, rows: make(map[int]bool)}
}

type fakeSession struct {
	strategy   *fakeStrategy
	bank       hbm.BankAddress
	rows       map[int]bool
	classified bool
	class      faultsim.Class
}

func (s *fakeSession) Class() (faultsim.Class, bool) { return s.class, s.classified }

func (s *fakeSession) OnEvent(e mcelog.Event) core.Decision {
	if s.strategy.delay > 0 {
		time.Sleep(s.strategy.delay)
	}
	if s.strategy.poisonRow != 0 && e.Addr.Row == s.strategy.poisonRow {
		panic(fmt.Sprintf("poisoned row %d", e.Addr.Row))
	}
	if e.Class != ecc.ClassUER {
		return core.Decision{}
	}
	s.rows[e.Addr.Row] = true
	if len(s.rows) < s.strategy.budget {
		return core.Decision{}
	}
	if !s.classified {
		s.classified = true
		if s.bank.Bank%2 == 0 {
			s.class = faultsim.ClassScattered
			return core.Decision{SpareBank: true}
		}
		s.class = faultsim.ClassSingleRow
	}
	if s.class == faultsim.ClassScattered {
		return core.Decision{}
	}
	return core.Decision{IsolateRows: []int{e.Addr.Row, e.Addr.Row + 1}}
}

// testBank returns a distinct bank address; even/odd i controls the fake
// strategy's bank-spare vs row-spare behaviour via the bank index.
func testBank(i int) hbm.BankAddress {
	return hbm.BankAddress{Node: i % 8, NPU: (i / 8) % 8, BankGroup: (i / 64) % 4, Bank: i % 4}
}

// uerAt builds a UER event in bank at the given row and second offset.
func uerAt(bank hbm.BankAddress, row, sec int) mcelog.Event {
	return mcelog.Event{
		Time:  time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second),
		Addr:  hbm.CellInBank(bank, row, 0),
		Class: ecc.ClassUER,
	}
}

// newTestEngine builds an engine over the fake strategy.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Strategy == nil {
		cfg.Strategy = &fakeStrategy{budget: 3}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// drainActions collects the whole action stream after Close.
func drainActions(e *Engine) []Action {
	var out []Action
	for a := range e.Actions() {
		out = append(out, a)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	base := Config{Strategy: &fakeStrategy{budget: 3}}.withDefaults()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no model source", func(c *Config) { c.Strategy = nil; c.Models = nil }},
		{"zero shards", func(c *Config) { c.Shards = -1 }},
		{"negative queue", func(c *Config) { c.QueueDepth = -5 }},
		{"negative buffer", func(c *Config) { c.ActionBuffer = -1 }},
		{"bad policy", func(c *Config) { c.Policy = IngestPolicy(9) }},
		{"bad geometry", func(c *Config) { c.Geometry.RowsPerBank = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("config %+v validated", cfg)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
}

func TestEngineActionsAndDedupe(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4})
	even, odd := testBank(2), testBank(1) // Bank field 2 (even) and 1 (odd)

	// Even bank: three distinct UER rows -> one bank-spare, then nothing.
	for i, row := range []int{10, 20, 30, 40} {
		if err := e.Ingest(uerAt(even, row, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Odd bank: rows 100..102 cross the budget, then a repeat of row 102
	// re-predicts {102,103} which must not re-emit.
	for i, row := range []int{100, 101, 102, 102} {
		if err := e.Ingest(uerAt(odd, row, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	actions := drainActions(e)

	var bankSpares, rowSpares int
	var isolated []int
	for _, a := range actions {
		switch a.Kind.String() {
		case "bank-spare":
			bankSpares++
			if a.Bank != even {
				t.Errorf("bank-spare on %v, want %v", a.Bank, even)
			}
			if a.Class != faultsim.ClassScattered {
				t.Errorf("bank-spare class %v", a.Class)
			}
		case "row-spare":
			rowSpares++
			if a.Bank != odd {
				t.Errorf("row-spare on %v, want %v", a.Bank, odd)
			}
			isolated = append(isolated, a.Rows...)
		default:
			t.Errorf("unexpected action kind %v", a.Kind)
		}
	}
	if bankSpares != 1 {
		t.Errorf("bank spares = %d, want 1", bankSpares)
	}
	// Budget crossing at row 102 isolates {102,103}; the repeat event
	// re-predicts the same rows and must emit nothing new.
	sort.Ints(isolated)
	if want := []int{102, 103}; fmt.Sprint(isolated) != fmt.Sprint(want) {
		t.Errorf("isolated rows %v, want %v", isolated, want)
	}
	if rowSpares != 1 {
		t.Errorf("row-spare actions = %d, want 1 (dedupe failed)", rowSpares)
	}
}

func TestEngineSessionStats(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2})
	bank := testBank(1)
	for i, row := range []int{5, 6, 7} {
		if err := e.Ingest(uerAt(bank, row, i)); err != nil {
			t.Fatal(err)
		}
	}
	// A CE in the same bank counts as an event but not a UER.
	ce := uerAt(bank, 8, 3)
	ce.Class = ecc.ClassCE
	if err := e.Ingest(ce); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	st, ok := e.Session(bank)
	if !ok {
		t.Fatal("no session for bank")
	}
	if st.Events != 4 || st.UEREvents != 3 || st.DistinctUERRows != 3 {
		t.Errorf("stats %+v: want 4 events, 3 UERs, 3 rows", st)
	}
	if !st.Classified || st.Class != faultsim.ClassSingleRow {
		t.Errorf("stats %+v: want classified single-row", st)
	}
	if st.RowsIsolated != 2 || st.Actions != 1 {
		t.Errorf("stats %+v: want 2 rows isolated in 1 action", st)
	}
	if st.FirstEvent.After(st.LastEvent) {
		t.Errorf("window inverted: %v .. %v", st.FirstEvent, st.LastEvent)
	}
	if _, ok := e.Session(testBank(7)); ok {
		t.Error("session reported for untouched bank")
	}
	if n := e.SessionCount(); n != 1 {
		t.Errorf("SessionCount = %d, want 1", n)
	}

	es := e.Stats()
	if es.Ingested != 4 || es.Processed != 4 || es.SessionsLive != 1 {
		t.Errorf("engine stats %+v", es)
	}
	if es.Process.Count != 4 {
		t.Errorf("process latency snapshot %+v", es.Process)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDropPolicy(t *testing.T) {
	e := newTestEngine(t, Config{
		Shards:     1,
		QueueDepth: 1,
		Policy:     IngestDrop,
		Strategy:   &fakeStrategy{budget: 3, delay: 2 * time.Millisecond},
	})
	bank := testBank(1)
	var dropped int
	for i := 0; i < 64; i++ {
		err := e.Ingest(uerAt(bank, i, i))
		switch {
		case err == nil:
		case errors.Is(err, ErrDropped):
			dropped++
		default:
			t.Fatal(err)
		}
	}
	if dropped == 0 {
		t.Error("no events dropped despite full queue and slow consumer")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e)
	st := e.Stats()
	if st.Dropped != uint64(dropped) {
		t.Errorf("stats.Dropped = %d, want %d", st.Dropped, dropped)
	}
	if st.Ingested+st.Dropped != 64 {
		t.Errorf("ingested %d + dropped %d != 64", st.Ingested, st.Dropped)
	}
	if st.Processed != st.Ingested {
		t.Errorf("processed %d != ingested %d after Close", st.Processed, st.Ingested)
	}
}

func TestEngineActionOverflow(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1, ActionBuffer: 1})
	// Two banks each emit one bank-spare; with a buffer of one and no
	// consumer, the first is evicted for the second.
	for i := 0; i < 2; i++ {
		bank := testBank(2 + 4*i) // even bank indices -> bank-spare
		for j, row := range []int{1, 2, 3} {
			if err := e.Ingest(uerAt(bank, row, j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	actions := drainActions(e)
	if len(actions) != 1 {
		t.Fatalf("got %d buffered actions, want 1", len(actions))
	}
	st := e.Stats()
	if st.ActionsDropped != 1 || st.ActionsEmitted != 2 {
		t.Errorf("emitted %d dropped %d, want 2/1", st.ActionsEmitted, st.ActionsDropped)
	}
}

func TestEngineIngestAfterClose(t *testing.T) {
	e := newTestEngine(t, Config{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(uerAt(testBank(1), 1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineConcurrentIngest hammers the engine from many goroutines while
// stats and session snapshots are read concurrently; run under -race this
// is the engine's data-race gate.
func TestEngineConcurrentIngest(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 8, QueueDepth: 64})
	const (
		producers = 8
		perBank   = 24
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			bank := testBank(p)
			for i := 0; i < perBank; i++ {
				if err := e.Ingest(uerAt(bank, i, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Stats()
				_, _ = e.Session(testBank(3))
				_ = e.SessionCount()
			}
		}
	}()
	consumed := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range e.Actions() {
			consumed++
		}
	}()

	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	close(stop)
	rg.Wait()

	st := e.Stats()
	if st.Ingested != producers*perBank {
		t.Errorf("ingested %d, want %d", st.Ingested, producers*perBank)
	}
	if st.Processed != st.Ingested {
		t.Errorf("processed %d != ingested %d", st.Processed, st.Ingested)
	}
	if st.SessionsLive != producers {
		t.Errorf("sessions %d, want %d", st.SessionsLive, producers)
	}
	if uint64(consumed)+st.ActionsDropped != st.ActionsEmitted {
		t.Errorf("consumed %d + dropped %d != emitted %d",
			consumed, st.ActionsDropped, st.ActionsEmitted)
	}
}

// TestEnginePerBankOrder checks FIFO processing per bank: event times seen
// by a session never go backwards when ingested in order from one
// goroutine, even with many banks interleaved across shards.
func TestEnginePerBankOrder(t *testing.T) {
	rec := &recordingStrategy{times: make(map[uint64][]time.Time)}
	e := newTestEngine(t, Config{Shards: 4, Strategy: rec})
	const banks, events = 16, 32
	for i := 0; i < events; i++ {
		for b := 0; b < banks; b++ {
			if err := e.Ingest(uerAt(testBank(b), i, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drainActions(e)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.times) != banks {
		t.Fatalf("recorded %d banks, want %d", len(rec.times), banks)
	}
	for key, ts := range rec.times {
		if len(ts) != events {
			t.Errorf("bank %x saw %d events, want %d", key, len(ts), events)
		}
		for i := 1; i < len(ts); i++ {
			if ts[i].Before(ts[i-1]) {
				t.Fatalf("bank %x events out of order at %d", key, i)
			}
		}
	}
}

// recordingStrategy records per-bank event arrival order.
type recordingStrategy struct {
	mu    sync.Mutex
	times map[uint64][]time.Time
}

func (r *recordingStrategy) Name() string { return "recording" }

func (r *recordingStrategy) NewSession(bank hbm.BankAddress) core.Session {
	return &recordingSession{r: r, key: bank.BankKey()}
}

type recordingSession struct {
	r   *recordingStrategy
	key uint64
}

func (s *recordingSession) OnEvent(e mcelog.Event) core.Decision {
	s.r.mu.Lock()
	s.r.times[s.key] = append(s.r.times[s.key], e.Time)
	s.r.mu.Unlock()
	return core.Decision{}
}

func TestLatencySampler(t *testing.T) {
	var l latencySampler
	if s := l.snapshot(); s.Count != 0 || s.Max != 0 {
		t.Fatalf("zero sampler snapshot %+v", s)
	}
	for i := 1; i <= 100; i++ {
		l.observe(time.Duration(i) * time.Millisecond)
	}
	s := l.snapshot()
	if s.Count != 100 || s.Max != 100*time.Millisecond {
		t.Fatalf("snapshot %+v", s)
	}
	if s.P50 < 40*time.Millisecond || s.P50 > 60*time.Millisecond {
		t.Errorf("p50 %v out of range", s.P50)
	}
	if s.P99 < s.P90 || s.P90 < s.P50 {
		t.Errorf("quantiles not monotone: %+v", s)
	}
	var m latencySampler
	m.merge(&l)
	if got := m.snapshot(); got.Count != 100 || got.Max != s.Max {
		t.Errorf("merged snapshot %+v", got)
	}
}

func TestMix64Spreads(t *testing.T) {
	// Bank keys differ only in high-ish bits (row/col zeroed); the mixer
	// must spread sequential banks across shards reasonably evenly.
	const shards = 8
	counts := make([]int, shards)
	for i := 0; i < 1024; i++ {
		counts[mix64(testBank(i).BankKey())%shards]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Errorf("shard %d received no banks", s)
		}
	}
}
