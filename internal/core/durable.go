package core

import (
	"fmt"

	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/hbm"
)

// DurableSession is optionally implemented by sessions whose per-bank state
// can be checkpointed. EncodeState must capture everything OnEvent depends
// on, such that RestoreSession followed by the same event suffix produces
// decisions bit-identical to the uninterrupted session — the contract the
// engine's snapshot/recovery path is built on.
type DurableSession interface {
	Session
	// EncodeState returns a self-contained binary image of the session.
	EncodeState() ([]byte, error)
}

// DurableStrategy is optionally implemented by strategies whose sessions
// can be restored from an EncodeState image. The engine requires it when a
// WAL/snapshot directory is configured.
type DurableStrategy interface {
	Strategy
	// RestoreSession rebuilds a session from an EncodeState image. It fails
	// (rather than guessing) when the image's configuration does not match
	// the strategy's.
	RestoreSession(bank hbm.BankAddress, data []byte) (Session, error)
}

// cordialSession state image: magic, version, flags, class, then the
// feature-state blob (absent once released).
const (
	sessionMagic   = "CSES"
	sessionVersion = 1

	sessFlagClassified = 1 << 0
	sessFlagHasState   = 1 << 1
)

var (
	_ DurableSession  = (*cordialSession)(nil)
	_ DurableStrategy = (*CordialStrategy)(nil)
)

// EncodeState captures the session: classification outcome plus the full
// incremental feature state (or its absence, for a spared bank).
func (s *cordialSession) EncodeState() ([]byte, error) {
	var flags byte
	if s.classified {
		flags |= sessFlagClassified
	}
	if s.state != nil {
		flags |= sessFlagHasState
	}
	out := make([]byte, 0, 64)
	out = append(out, sessionMagic...)
	out = append(out, sessionVersion, flags, byte(s.class))
	if s.state != nil {
		blob, err := s.state.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = append(out, blob...)
	}
	return out, nil
}

// RestoreSession rebuilds a cordialSession from an EncodeState image,
// verifying that the embedded feature state was produced under this
// pipeline's pattern and block configuration.
func (s *CordialStrategy) RestoreSession(bank hbm.BankAddress, data []byte) (Session, error) {
	if len(data) < len(sessionMagic)+3 {
		return nil, fmt.Errorf("core: session state too short (%d bytes)", len(data))
	}
	if string(data[:4]) != sessionMagic {
		return nil, fmt.Errorf("core: bad session state magic")
	}
	if v := data[4]; v != sessionVersion {
		return nil, fmt.Errorf("core: unsupported session state version %d", v)
	}
	flags, class := data[5], faultsim.Class(data[6])
	sess := &cordialSession{
		strategy:   s,
		classified: flags&sessFlagClassified != 0,
		class:      class,
	}
	rest := data[7:]
	if flags&sessFlagHasState == 0 {
		if len(rest) != 0 {
			return nil, fmt.Errorf("core: released session carries %d state bytes", len(rest))
		}
		return sess, nil
	}
	st, err := features.UnmarshalBankState(rest)
	if err != nil {
		return nil, err
	}
	cfg := s.Pipeline.Config()
	if got := st.Config(); got != cfg.Pattern {
		return nil, fmt.Errorf("core: session pattern config %+v does not match pipeline %+v", got, cfg.Pattern)
	}
	if got := st.Spec(); got != cfg.Block {
		return nil, fmt.Errorf("core: session block spec %+v does not match pipeline %+v", got, cfg.Block)
	}
	sess.state = st
	return sess, nil
}
