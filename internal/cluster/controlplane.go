package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"cordial/internal/obs"
	"cordial/internal/wal"
)

// CPConfig configures the control plane.
type CPConfig struct {
	// VNodes is the virtual-node count baked into every published
	// descriptor. Default DefaultVNodes.
	VNodes int
	// HeartbeatTTL declares a node dead when no heartbeat arrives for
	// this long. Default 6s.
	HeartbeatTTL time.Duration
	// SweepInterval is the failure-detector period. Default TTL/3.
	SweepInterval time.Duration
	// Logger defaults to slog.Default().
	Logger *slog.Logger
	// Client is the HTTP client for node calls. Handoffs move real state,
	// so the default timeout is generous (60s).
	Client *http.Client
	// Metrics receives the control plane's instruments when non-nil.
	Metrics *obs.Registry
	// Clock is the time source (tests inject a fake). Default time.Now.
	Clock func() time.Time
}

func (c CPConfig) withDefaults() CPConfig {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 6 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.HeartbeatTTL / 3
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// memberState is one registered serve node.
type memberState struct {
	Member
	lastSeen time.Time
}

// ControlPlane tracks cluster membership and orchestrates session
// handoff. Its state is in memory only — a restarted control plane
// starts empty and rebuilds membership as nodes re-register off their
// heartbeat 404s (a documented failure mode: ring epochs restart at 1,
// which is why nodes also fence on their own monotonic epoch).
//
// Topology changes (join, leave, death) are serialised: one mutation's
// export → import → publish → drop sequence completes before the next
// starts, so ownership never has two concurrent "next" views.
type ControlPlane struct {
	cfg CPConfig
	mux *http.ServeMux

	handoffs  *obs.Counter
	takeovers *obs.Counter
	orphaned  *obs.Counter
	errors    *obs.Counter

	// topo serialises topology mutations; held across node HTTP calls.
	topo sync.Mutex
	// mu guards the fields below; never held across HTTP calls.
	mu      sync.Mutex
	epoch   uint64
	members map[string]*memberState
}

// NewControlPlane builds the service. Mount Handler(); call Run (or
// Sweep from a test) to drive failure detection.
func NewControlPlane(cfg CPConfig) *ControlPlane {
	cp := &ControlPlane{
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
		members: make(map[string]*memberState),
	}
	reg := cp.cfg.Metrics
	cp.handoffs = reg.Counter("cordial_cp_handoffs_total",
		"Session handoffs orchestrated (joins and leaves).")
	cp.takeovers = reg.Counter("cordial_cp_takeovers_total",
		"Dead-node takeovers orchestrated.")
	cp.orphaned = reg.Counter("cordial_cp_orphaned_takeovers_total",
		"Takeovers where the dead node's journal was unreadable; its banks restarted empty.")
	cp.errors = reg.Counter("cordial_cp_orchestration_errors_total",
		"Node calls that failed during a topology change.")
	reg.GaugeFunc("cordial_cp_members", "Registered serve nodes.", func() float64 {
		cp.mu.Lock()
		defer cp.mu.Unlock()
		return float64(len(cp.members))
	})
	reg.GaugeFunc("cordial_cp_ring_epoch", "Current published ring epoch.", func() float64 {
		cp.mu.Lock()
		defer cp.mu.Unlock()
		return float64(cp.epoch)
	})
	cp.mux.HandleFunc("POST /cluster/v1/register", cp.handleRegister)
	cp.mux.HandleFunc("POST /cluster/v1/heartbeat", cp.handleHeartbeat)
	cp.mux.HandleFunc("POST /cluster/v1/leave", cp.handleLeave)
	cp.mux.HandleFunc("GET /cluster/v1/ring", cp.handleRing)
	cp.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		fmt.Fprintln(w, "ok")
	})
	cp.mux.HandleFunc("GET /statsz", cp.handleStats)
	cp.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	return cp
}

// Handler serves the control plane API.
func (cp *ControlPlane) Handler() http.Handler { return cp.mux }

// Run drives the failure detector until ctx ends.
func (cp *ControlPlane) Run(ctx interface{ Done() <-chan struct{} }) {
	tick := time.NewTicker(cp.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			cp.Sweep()
		}
	}
}

// descriptor builds the current descriptor; callers hold cp.mu.
func (cp *ControlPlane) descriptorLocked() Descriptor {
	ms := make([]Member, 0, len(cp.members))
	for _, m := range cp.members {
		ms = append(ms, m.Member)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	return Descriptor{Epoch: cp.epoch, VNodes: cp.cfg.VNodes, Members: ms}
}

// Descriptor returns the currently published ring descriptor.
func (cp *ControlPlane) Descriptor() Descriptor {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.descriptorLocked()
}

// handleRegister admits a node. A new ID triggers a rebalance: every
// existing node adopts the next descriptor (fencing the moving banks),
// drains and exports them; the joiner imports; sources drop; then the
// descriptor is published. Re-registration of a live ID just refreshes
// its address and lease — no topology change.
func (cp *ControlPlane) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m := req.Member
	if m.ID == "" || m.Addr == "" {
		http.Error(w, "member id and addr are required", http.StatusBadRequest)
		return
	}

	cp.topo.Lock()
	defer cp.topo.Unlock()
	cp.mu.Lock()
	if old, ok := cp.members[m.ID]; ok {
		old.Member = m
		old.lastSeen = cp.cfg.Clock()
		desc := cp.descriptorLocked()
		cp.mu.Unlock()
		writeJSON(w, http.StatusOK, desc)
		return
	}
	next := cp.descriptorLocked()
	next.Epoch++
	next.Members = append(next.Members, m)
	sort.Slice(next.Members, func(i, j int) bool { return next.Members[i].ID < next.Members[j].ID })
	sources := cp.descriptorLocked().Members
	cp.mu.Unlock()

	if err := cp.rebalanceJoin(next, m, sources); err != nil {
		cp.errors.Inc()
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}

	cp.mu.Lock()
	cp.epoch = next.Epoch
	cp.members[m.ID] = &memberState{Member: m, lastSeen: cp.cfg.Clock()}
	cp.mu.Unlock()
	cp.cfg.Logger.Info("node joined", "id", m.ID, "addr", m.Addr, "epoch", next.Epoch)
	if len(sources) > 0 {
		cp.handoffs.Inc()
	}
	writeJSON(w, http.StatusOK, next)
}

// rebalanceJoin moves the joiner's banks off every existing node.
// Export fences each source under the next epoch before it responds, so
// from the first export on, no source accepts events for moved banks;
// the router retries them against the joiner once the ring publishes.
func (cp *ControlPlane) rebalanceJoin(next Descriptor, joiner Member, sources []Member) error {
	for _, src := range sources {
		var bundle HandoffBundle
		if err := postJSON(cp.cfg.Client, "http://"+src.Addr+"/cluster/v1/export",
			exportRequest{Desc: next}, &bundle); err != nil {
			return fmt.Errorf("export from %s: %w", src.ID, err)
		}
		if err := postJSON(cp.cfg.Client, "http://"+joiner.Addr+"/cluster/v1/import",
			importRequest{Desc: next, Bundle: bundle}, nil); err != nil {
			return fmt.Errorf("import into %s: %w", joiner.ID, err)
		}
		// Import acked: the moved state is durable on the joiner.
		if err := postJSON(cp.cfg.Client, "http://"+src.Addr+"/cluster/v1/drop",
			dropRequest{Desc: next}, nil); err != nil {
			// Non-fatal: stale copies only cost conflict-skips later.
			cp.errors.Inc()
			cp.cfg.Logger.Warn("post-handoff drop failed", "node", src.ID, "err", err)
		}
	}
	return nil
}

// handleLeave removes a node gracefully: survivors get the leaver's
// sessions (each keeps what it owns under the next ring) before the
// leaver may exit.
func (cp *ControlPlane) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cp.topo.Lock()
	defer cp.topo.Unlock()
	cp.mu.Lock()
	leaver, ok := cp.members[req.ID]
	if !ok {
		cp.mu.Unlock()
		http.Error(w, "unknown member", http.StatusNotFound)
		return
	}
	next := cp.descriptorLocked()
	next.Epoch++
	next.Members = withoutMember(next.Members, req.ID)
	cp.mu.Unlock()

	if len(next.Members) > 0 {
		var bundle HandoffBundle
		if err := postJSON(cp.cfg.Client, "http://"+leaver.Addr+"/cluster/v1/export",
			exportRequest{Desc: next}, &bundle); err != nil {
			cp.errors.Inc()
			http.Error(w, fmt.Sprintf("export from leaver: %v", err), http.StatusBadGateway)
			return
		}
		if err := cp.distribute(next, bundle); err != nil {
			cp.errors.Inc()
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
	}
	cp.mu.Lock()
	delete(cp.members, req.ID)
	cp.epoch = next.Epoch
	cp.mu.Unlock()
	cp.handoffs.Inc()
	cp.cfg.Logger.Info("node left", "id", req.ID, "epoch", next.Epoch)
	writeJSON(w, http.StatusOK, next)
}

// distribute pushes one bundle to every member of next; each importer
// keeps only the banks it owns there. Used when a node's whole session
// set must find new homes (leave, dead-node takeover).
func (cp *ControlPlane) distribute(next Descriptor, bundle HandoffBundle) error {
	for _, dst := range next.Members {
		if err := postJSON(cp.cfg.Client, "http://"+dst.Addr+"/cluster/v1/import",
			importRequest{Desc: next, Bundle: bundle}, nil); err != nil {
			return fmt.Errorf("import into %s: %w", dst.ID, err)
		}
	}
	return nil
}

func withoutMember(ms []Member, id string) []Member {
	out := ms[:0:0]
	for _, m := range ms {
		if m.ID != id {
			out = append(out, m)
		}
	}
	return out
}

// handleHeartbeat refreshes a node's lease. 404 tells a node this
// control plane does not know it (restart or prior eviction): re-register.
func (cp *ControlPlane) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cp.mu.Lock()
	m, ok := cp.members[req.ID]
	if ok {
		m.lastSeen = cp.cfg.Clock()
	}
	epoch := cp.epoch
	cp.mu.Unlock()
	if !ok {
		http.Error(w, "unknown member", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{Epoch: epoch})
}

// handleRing publishes the current descriptor.
func (cp *ControlPlane) handleRing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cp.Descriptor())
}

// handleStats reports membership and orchestration counters.
func (cp *ControlPlane) handleStats(w http.ResponseWriter, r *http.Request) {
	type jsonMember struct {
		ID       string `json:"id"`
		Addr     string `json:"addr"`
		LastSeen string `json:"lastSeen"`
	}
	cp.mu.Lock()
	out := struct {
		Epoch     uint64       `json:"epoch"`
		Members   []jsonMember `json:"members"`
		Handoffs  uint64       `json:"handoffs"`
		Takeovers uint64       `json:"takeovers"`
		Orphaned  uint64       `json:"orphanedTakeovers"`
		Errors    uint64       `json:"orchestrationErrors"`
	}{Epoch: cp.epoch}
	for _, m := range cp.members {
		out.Members = append(out.Members, jsonMember{
			ID: m.ID, Addr: m.Addr, LastSeen: m.lastSeen.UTC().Format(time.RFC3339Nano),
		})
	}
	cp.mu.Unlock()
	sort.Slice(out.Members, func(i, j int) bool { return out.Members[i].ID < out.Members[j].ID })
	out.Handoffs = cp.handoffs.Value()
	out.Takeovers = cp.takeovers.Value()
	out.Orphaned = cp.orphaned.Value()
	out.Errors = cp.errors.Value()
	writeJSON(w, http.StatusOK, out)
}

// Sweep runs one failure-detection pass: every member whose lease
// expired is declared dead and taken over. Exported for tests; Run
// calls it periodically.
func (cp *ControlPlane) Sweep() {
	now := cp.cfg.Clock()
	cp.mu.Lock()
	var dead []Member
	for _, m := range cp.members {
		if now.Sub(m.lastSeen) > cp.cfg.HeartbeatTTL {
			dead = append(dead, m.Member)
		}
	}
	cp.mu.Unlock()
	for _, m := range dead {
		cp.takeover(m)
	}
}

// takeover reassigns a dead node's banks. The dead process cannot
// export, so the control plane reads its durable state directly — the
// latest snapshot plus the full journal off its registered WAL
// directory (reachable storage is the deployment contract here; see
// DESIGN.md). Per-session watermarks make the overlap harmless. The
// bundle goes to every survivor; each keeps what it owns. If the
// journal is unreadable the ring still advances — the banks restart
// empty rather than staying routed at a corpse.
func (cp *ControlPlane) takeover(dead Member) {
	cp.topo.Lock()
	defer cp.topo.Unlock()
	cp.mu.Lock()
	cur, ok := cp.members[dead.ID]
	if !ok || cp.cfg.Clock().Sub(cur.lastSeen) <= cp.cfg.HeartbeatTTL {
		cp.mu.Unlock() // re-registered or heartbeat landed while we waited
		return
	}
	next := cp.descriptorLocked()
	next.Epoch++
	next.Members = withoutMember(next.Members, dead.ID)
	cp.mu.Unlock()

	bundle, err := readNodeState(dead.WALDir)
	if err != nil {
		cp.orphaned.Inc()
		cp.cfg.Logger.Error("dead node journal unreadable; its banks restart empty",
			"id", dead.ID, "walDir", dead.WALDir, "err", err)
		bundle = HandoffBundle{}
	}
	if len(next.Members) > 0 && (len(bundle.Payload) > 0 || len(bundle.Suffix) > 0) {
		if err := cp.distribute(next, bundle); err != nil {
			cp.errors.Inc()
			cp.cfg.Logger.Error("takeover distribution failed; will retry next sweep",
				"id", dead.ID, "err", err)
			return // keep the member; the next sweep retries the whole takeover
		}
	}
	cp.mu.Lock()
	delete(cp.members, dead.ID)
	cp.epoch = next.Epoch
	cp.mu.Unlock()
	cp.takeovers.Inc()
	cp.cfg.Logger.Warn("node declared dead; banks reassigned",
		"id", dead.ID, "epoch", next.Epoch, "survivors", len(next.Members))
}

// readNodeState loads a dead node's portable state off its WAL
// directory: newest snapshot payload plus the complete journal as the
// suffix (watermarks deduplicate the overlap during import).
func readNodeState(dir string) (HandoffBundle, error) {
	if dir == "" {
		return HandoffBundle{}, fmt.Errorf("cluster: node registered no WAL directory")
	}
	_, payload, err := wal.LoadLatestSnapshot(nil, dir)
	if err != nil && !errors.Is(err, wal.ErrNoSnapshot) {
		return HandoffBundle{}, fmt.Errorf("cluster: reading snapshot in %s: %w", dir, err)
	}
	// No snapshot (node died before its first checkpoint) is fine: the
	// journal alone rebuilds every session.
	j, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		return HandoffBundle{}, fmt.Errorf("cluster: opening journal in %s: %w", dir, err)
	}
	defer j.Close()
	recs, err := j.ExportRange(0, ^uint64(0))
	if err != nil {
		return HandoffBundle{}, fmt.Errorf("cluster: exporting journal in %s: %w", dir, err)
	}
	return HandoffBundle{Payload: payload, Suffix: toWire(recs)}, nil
}
