// Package hbm models the physical organisation of the memory fleets the
// Cordial paper studies. The default topology is the paper's HBM2E
// organisation (§II-A): a fleet of compute nodes, each with 8 NPUs, each
// NPU with two HBM sockets; every HBM is an 8Hi stack exposing 2 stack IDs
// (SIDs), 8 channels, 2 pseudo-channels per channel, 4 bank groups per
// pseudo-channel and 4 banks per group. A bank is a two-dimensional array
// of cells indexed by row and column.
//
// The package provides a compact address representation, the micro-level
// hierarchy used throughout the paper (NPU → HBM → SID → CH → PS-CH → BG →
// Bank → Row, with the channel level between SID and pseudo-channel), and
// geometry helpers the simulators and predictors share. Topologies beyond
// HBM2E — HBM3 stacks and DDR4/DDR5 DIMM fleets, which add rank and device
// levels and place the channel above the module — are named Profiles in a
// registry (see profile.go); the active profile determines the packed
// address layout and the hierarchy ordering.
package hbm

import (
	"fmt"
	"strconv"
	"strings"
)

// Geometry describes the dimensions of the modelled memory fleet. The zero
// value is not useful; start from DefaultGeometry or a registered
// profile's Geometry and adjust. For DIMM topologies the NPU dimension is
// the socket count and the HBM dimension the DIMMs per channel; the
// hierarchy ordering lives in the Profile, not here.
type Geometry struct {
	Nodes          int // compute nodes in the fleet
	NPUsPerNode    int // NPUs (or sockets) per compute node
	HBMsPerNPU     int // HBM sockets per NPU (or DIMMs per channel)
	SIDsPerHBM     int // stack IDs per HBM (8Hi stack → 2 SIDs)
	ChannelsPerSID int // channels per stack ID (or per socket)
	PseudoChPerCh  int // pseudo-channels per channel
	RanksPerModule int // ranks per DIMM; 0 means 1 (HBM topologies)
	DevicesPerRank int // DRAM devices per rank; 0 means 1 (HBM topologies)
	BankGroups     int // bank groups per pseudo-channel (or per device)
	BanksPerGroup  int // banks per bank group
	RowsPerBank    int // rows per bank
	ColsPerBank    int // columns per bank
}

// DefaultGeometry matches the HBM2E organisation in the paper (Figure 1)
// with a fleet large enough (1024 NPUs) that error banks stay sparse per
// NPU — the sparsity the hierarchical sudden-ratio structure of Table I
// depends on — while tests and examples still run quickly. Production-like
// studies scale Nodes up further; nothing else changes.
var DefaultGeometry = Geometry{
	Nodes:          128,
	NPUsPerNode:    8,
	HBMsPerNPU:     2,
	SIDsPerHBM:     2,
	ChannelsPerSID: 8,
	PseudoChPerCh:  2,
	BankGroups:     4,
	BanksPerGroup:  4,
	RowsPerBank:    32768,
	ColsPerBank:    128,
}

// dim returns the number of distinct values the field can take under the
// geometry. The rank and device dimensions are normalised: zero means the
// level does not exist, i.e. exactly one value.
func (g Geometry) dim(f field) int {
	switch f {
	case fieldNode:
		return g.Nodes
	case fieldNPU:
		return g.NPUsPerNode
	case fieldHBM:
		return g.HBMsPerNPU
	case fieldSID:
		return g.SIDsPerHBM
	case fieldChannel:
		return g.ChannelsPerSID
	case fieldPseudoChannel:
		return g.PseudoChPerCh
	case fieldRank:
		if g.RanksPerModule <= 0 {
			return 1
		}
		return g.RanksPerModule
	case fieldDevice:
		if g.DevicesPerRank <= 0 {
			return 1
		}
		return g.DevicesPerRank
	case fieldBankGroup:
		return g.BankGroups
	case fieldBank:
		return g.BanksPerGroup
	case fieldRow:
		return g.RowsPerBank
	case fieldColumn:
		return g.ColsPerBank
	}
	return 0
}

// validateDims checks that every dimension is positive (rank and device
// may be zero, meaning absent) without consulting any layout.
func (g Geometry) validateDims() error {
	if g.RanksPerModule < 0 {
		return fmt.Errorf("hbm: geometry RanksPerModule must be non-negative, got %d", g.RanksPerModule)
	}
	if g.DevicesPerRank < 0 {
		return fmt.Errorf("hbm: geometry DevicesPerRank must be non-negative, got %d", g.DevicesPerRank)
	}
	for f := field(0); f < numFields; f++ {
		if g.dim(f) <= 0 {
			return fmt.Errorf("hbm: geometry %s must be positive, got %d", fieldNames[f], g.dim(f))
		}
	}
	return nil
}

// Validate reports whether every dimension is positive and within the bit
// budget of the active profile's packed address layout.
func (g Geometry) Validate() error {
	if err := g.validateDims(); err != nil {
		return err
	}
	return ActiveProfile().Layout.fits(g)
}

// TotalNPUs returns the number of NPUs (or sockets) in the fleet.
func (g Geometry) TotalNPUs() int { return g.Nodes * g.NPUsPerNode }

// isDIMM reports whether the geometry describes a DIMM topology, where
// the channel level sits above the module and ranks/devices sit inside it.
func (g Geometry) isDIMM() bool { return g.RanksPerModule > 0 || g.DevicesPerRank > 0 }

// modulesPerNPU returns the memory modules below one NPU/socket. For HBM
// topologies that is HBMsPerNPU; for DIMM topologies the channel level
// sits above the module, so it is channels × DIMMs-per-channel.
func (g Geometry) modulesPerNPU() int {
	if g.isDIMM() {
		return g.ChannelsPerSID * g.HBMsPerNPU
	}
	return g.HBMsPerNPU
}

// TotalHBMs returns the number of memory modules (HBM stacks or DIMMs) in
// the fleet.
func (g Geometry) TotalHBMs() int { return g.TotalNPUs() * g.modulesPerNPU() }

// BanksPerHBM returns the number of banks in one memory module.
func (g Geometry) BanksPerHBM() int {
	if g.isDIMM() {
		return g.SIDsPerHBM * g.PseudoChPerCh * g.dim(fieldRank) * g.dim(fieldDevice) *
			g.BankGroups * g.BanksPerGroup
	}
	return g.SIDsPerHBM * g.ChannelsPerSID * g.PseudoChPerCh * g.BankGroups * g.BanksPerGroup
}

// TotalBanks returns the number of banks in the fleet.
func (g Geometry) TotalBanks() int {
	return g.Nodes * g.NPUsPerNode * g.HBMsPerNPU * g.SIDsPerHBM *
		g.ChannelsPerSID * g.PseudoChPerCh * g.dim(fieldRank) * g.dim(fieldDevice) *
		g.BankGroups * g.BanksPerGroup
}

// Level identifies a micro-level of the memory hierarchy. The set of
// levels present and their coarse-to-fine ordering are properties of the
// active Profile; Level values themselves are stable identifiers.
type Level int

// Hierarchy levels. Under HBM topologies LevelChannel sits between SID and
// pseudo-channel; under DIMM topologies LevelChannel sits above the module
// and LevelRank/LevelDevice sit between module and bank group. The numeric
// order of the constants is not the hierarchy order — consult
// Profile.Levels for that.
const (
	LevelNPU Level = iota + 1
	LevelHBM
	LevelSID
	LevelChannel
	LevelPseudoChannel
	LevelBankGroup
	LevelBank
	LevelRow
	LevelRank
	LevelDevice
)

// TableLevels are the micro-levels reported in the paper's Tables I and II
// for the HBM2E topology. Profile.TableLevels carries the per-topology
// equivalent; this package-level list is retained for the default profile.
var TableLevels = []Level{
	LevelNPU, LevelHBM, LevelSID, LevelPseudoChannel, LevelBankGroup, LevelBank, LevelRow,
}

var levelNames = map[Level]string{
	LevelNPU:           "NPU",
	LevelHBM:           "HBM",
	LevelSID:           "SID",
	LevelChannel:       "CH",
	LevelPseudoChannel: "PS-CH",
	LevelRank:          "Rank",
	LevelDevice:        "Dev",
	LevelBankGroup:     "BG",
	LevelBank:          "Bank",
	LevelRow:           "Row",
}

// String returns the paper's abbreviation for the level under the default
// topology; Profile.LevelName applies per-topology renames (Socket, DIMM).
func (l Level) String() string {
	if s, ok := levelNames[l]; ok {
		return s
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Address identifies a memory location (or a coarser entity, with the finer
// fields zeroed) inside the fleet. All fields are zero-based indices. Rank
// and Device are zero under HBM topologies, which give them no extent.
type Address struct {
	Node          int
	NPU           int
	HBM           int
	SID           int
	Channel       int
	PseudoChannel int
	Rank          int
	Device        int
	BankGroup     int
	Bank          int
	Row           int
	Column        int
}

// get returns the field's value.
func (a Address) get(f field) int {
	switch f {
	case fieldNode:
		return a.Node
	case fieldNPU:
		return a.NPU
	case fieldHBM:
		return a.HBM
	case fieldSID:
		return a.SID
	case fieldChannel:
		return a.Channel
	case fieldPseudoChannel:
		return a.PseudoChannel
	case fieldRank:
		return a.Rank
	case fieldDevice:
		return a.Device
	case fieldBankGroup:
		return a.BankGroup
	case fieldBank:
		return a.Bank
	case fieldRow:
		return a.Row
	case fieldColumn:
		return a.Column
	}
	return 0
}

// set assigns the field's value.
func (a *Address) set(f field, v int) {
	switch f {
	case fieldNode:
		a.Node = v
	case fieldNPU:
		a.NPU = v
	case fieldHBM:
		a.HBM = v
	case fieldSID:
		a.SID = v
	case fieldChannel:
		a.Channel = v
	case fieldPseudoChannel:
		a.PseudoChannel = v
	case fieldRank:
		a.Rank = v
	case fieldDevice:
		a.Device = v
	case fieldBankGroup:
		a.BankGroup = v
	case fieldBank:
		a.Bank = v
	case fieldRow:
		a.Row = v
	case fieldColumn:
		a.Column = v
	}
}

// Pack encodes the address into a single uint64 under the active profile's
// layout. Pack and Unpack are inverses for any address whose fields are
// within the layout's encoding capacities; a field outside its capacity is
// silently lost, which is why every trust boundary (wire decode, JSONL
// parse, simulator emit) must use PackChecked or UnpackChecked instead.
func (a Address) Pack() uint64 {
	l := &ActiveProfile().Layout
	return uint64(a.Node)<<l.shift[fieldNode] |
		uint64(a.NPU)<<l.shift[fieldNPU] |
		uint64(a.HBM)<<l.shift[fieldHBM] |
		uint64(a.SID)<<l.shift[fieldSID] |
		uint64(a.Channel)<<l.shift[fieldChannel] |
		uint64(a.PseudoChannel)<<l.shift[fieldPseudoChannel] |
		uint64(a.Rank)<<l.shift[fieldRank] |
		uint64(a.Device)<<l.shift[fieldDevice] |
		uint64(a.BankGroup)<<l.shift[fieldBankGroup] |
		uint64(a.Bank)<<l.shift[fieldBank] |
		uint64(a.Row)<<l.shift[fieldRow] |
		uint64(a.Column)<<l.shift[fieldColumn]
}

// PackChecked encodes the address, rejecting any field outside its bit
// budget in the active layout instead of truncating it. This is the only
// safe way to derive a key from an address that crossed a trust boundary.
func (a Address) PackChecked() (uint64, error) {
	l := &ActiveProfile().Layout
	var v uint64
	for f := field(0); f < numFields; f++ {
		x := a.get(f)
		if x < 0 || x >= l.capacity(f) {
			return 0, fmt.Errorf("hbm: address %s index %d outside encoding range [0,%d) (%d bits)",
				fieldNames[f], x, l.capacity(f), l.width[f])
		}
		v |= uint64(x) << l.shift[f]
	}
	return v, nil
}

// Unpack decodes an address previously produced by Pack under the same
// active profile.
func Unpack(v uint64) Address {
	l := &ActiveProfile().Layout
	var a Address
	for f := field(0); f < numFields; f++ {
		a.set(f, int(v>>l.shift[f]&uint64(l.capacity(f)-1)))
	}
	return a
}

// UnpackChecked decodes a packed address, rejecting values with bits set
// outside the active layout. Unpack silently drops such bits, which would
// alias two distinct (corrupt) keys onto one address; checked decode turns
// that into a detectable error at the trust boundary.
func UnpackChecked(v uint64) (Address, error) {
	l := &ActiveProfile().Layout
	if rest := v &^ l.used; rest != 0 {
		return Address{}, fmt.Errorf("hbm: packed address %#x has bits %#x outside the %d-bit layout", v, rest, l.Bits())
	}
	return Unpack(v), nil
}

// Validate reports whether the address is within the geometry's bounds.
func (a Address) Validate(g Geometry) error {
	for f := field(0); f < numFields; f++ {
		if v, n := a.get(f), g.dim(f); v < 0 || v >= n {
			return fmt.Errorf("hbm: %s index %d out of range [0,%d)", fieldNames[f], v, n)
		}
	}
	return nil
}

// String renders the address in the canonical dotted form, e.g.
// "n3.u2.h1.s0.c5.p1.g2.b3.r12345.col87". Under topologies with rank and
// device levels the two extra segments appear after the bank, e.g.
// "n3.u1.h0.s0.c5.p0.g2.b3.k1.d6.r12345.col87"; they are omitted entirely
// when both are zero, so HBM addresses keep their historical form.
func (a Address) String() string {
	var b strings.Builder
	b.Grow(56)
	withRank := a.Rank != 0 || a.Device != 0
	for i, f := range addressFields(withRank) {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(f.tag)
		b.WriteString(strconv.Itoa(a.get(f.f)))
	}
	return b.String()
}

// addressField pairs a string tag with the address field it renders.
type addressField struct {
	tag string
	f   field
}

var addressFieldsShort = []addressField{
	{"n", fieldNode}, {"u", fieldNPU}, {"h", fieldHBM}, {"s", fieldSID},
	{"c", fieldChannel}, {"p", fieldPseudoChannel}, {"g", fieldBankGroup},
	{"b", fieldBank}, {"r", fieldRow}, {"col", fieldColumn},
}

var addressFieldsLong = []addressField{
	{"n", fieldNode}, {"u", fieldNPU}, {"h", fieldHBM}, {"s", fieldSID},
	{"c", fieldChannel}, {"p", fieldPseudoChannel}, {"g", fieldBankGroup},
	{"b", fieldBank}, {"k", fieldRank}, {"d", fieldDevice},
	{"r", fieldRow}, {"col", fieldColumn},
}

func addressFields(withRank bool) []addressField {
	if withRank {
		return addressFieldsLong
	}
	return addressFieldsShort
}

// parseCanonicalInt parses a non-negative decimal integer in canonical
// form: digits only, no sign, no leading zeros. Anything strconv accepts
// but Itoa would not reproduce — "+3", "007", "1_0" — is rejected, so the
// parse/render pair is a bijection and string-keyed dedup stays sound.
func parseCanonicalInt(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v < 0 || strconv.Itoa(v) != s {
		return 0, fmt.Errorf("non-canonical integer %q", s)
	}
	return v, nil
}

// ParseAddress parses the canonical dotted form produced by String. It is
// strict in both directions: each field must be a canonical decimal (no
// sign, no leading zeros) and must fit the active layout's bit budget, so
// a parsed address always survives Pack without loss. Addresses with 12
// fields carry rank and device; per the canonical form they must not both
// be zero there (String omits them in that case).
func ParseAddress(s string) (Address, error) {
	parts := strings.Split(s, ".")
	var fields []addressField
	switch len(parts) {
	case len(addressFieldsShort):
		fields = addressFieldsShort
	case len(addressFieldsLong):
		fields = addressFieldsLong
	default:
		return Address{}, fmt.Errorf("hbm: address %q has %d fields, want %d or %d",
			s, len(parts), len(addressFieldsShort), len(addressFieldsLong))
	}
	var a Address
	for i, spec := range fields {
		p := parts[i]
		if !strings.HasPrefix(p, spec.tag) {
			return Address{}, fmt.Errorf("hbm: address field %q does not start with %q", p, spec.tag)
		}
		v, err := parseCanonicalInt(p[len(spec.tag):])
		if err != nil {
			return Address{}, fmt.Errorf("hbm: address field %q: %w", p, err)
		}
		a.set(spec.f, v)
	}
	if len(parts) == len(addressFieldsLong) && a.Rank == 0 && a.Device == 0 {
		return Address{}, fmt.Errorf("hbm: address %q spells out zero rank and device; canonical form omits them", s)
	}
	if _, err := a.PackChecked(); err != nil {
		return Address{}, err
	}
	return a, nil
}

// Truncate zeroes every field finer than the given level under the active
// profile's hierarchy, producing the address of the enclosing entity at
// that level. For example, truncating at LevelBank clears Row and Column;
// under a DIMM profile, truncating at LevelChannel clears the module, rank
// and device as well, because they sit below the channel there.
func (a Address) Truncate(l Level) Address {
	p := ActiveProfile()
	i := p.truncateFrom(l)
	if i < 0 {
		return a
	}
	t := a
	for _, f := range p.Layout.order[i+1:] {
		t.set(f, 0)
	}
	return t
}

// EntityKey returns a unique packed key for the entity containing the
// address at the given level. Two addresses share a key at level l exactly
// when they fall in the same level-l entity.
func (a Address) EntityKey(l Level) uint64 { return a.Truncate(l).Pack() }

// BankKey is shorthand for EntityKey(LevelBank): a unique identifier for the
// bank containing the address.
func (a Address) BankKey() uint64 { return a.EntityKey(LevelBank) }

// RowKey uniquely identifies a row within the fleet.
func (a Address) RowKey() uint64 { return a.EntityKey(LevelRow) }

// SameBank reports whether two addresses fall in the same bank.
func (a Address) SameBank(b Address) bool { return a.BankKey() == b.BankKey() }

// RowDistance returns |a.Row - b.Row|. It is only meaningful for addresses
// in the same bank.
func RowDistance(a, b Address) int {
	d := a.Row - b.Row
	if d < 0 {
		return -d
	}
	return d
}

// BankAddress identifies one bank in the fleet; it is an Address with row
// and column zeroed, retained as a distinct named type for API clarity.
type BankAddress = Address

// BankOf returns the bank-level address containing a.
func BankOf(a Address) BankAddress { return a.Truncate(LevelBank) }

// RandomSource abstracts the subset of xrand.RNG the package needs, keeping
// hbm free of a dependency on the generator implementation.
type RandomSource interface {
	Intn(n int) int
}

// RandomBank draws a uniformly random bank address within the geometry.
// Degenerate dimensions (size 1) consume no randomness, so HBM topologies
// draw exactly the same stream they did before rank/device existed and
// seeded workloads stay byte-identical.
func RandomBank(g Geometry, r RandomSource) BankAddress {
	draw := func(n int) int {
		if n <= 1 {
			return 0
		}
		return r.Intn(n)
	}
	return Address{
		Node:          draw(g.Nodes),
		NPU:           draw(g.NPUsPerNode),
		HBM:           draw(g.HBMsPerNPU),
		SID:           draw(g.SIDsPerHBM),
		Channel:       draw(g.ChannelsPerSID),
		PseudoChannel: draw(g.PseudoChPerCh),
		Rank:          draw(g.dim(fieldRank)),
		Device:        draw(g.dim(fieldDevice)),
		BankGroup:     draw(g.BankGroups),
		Bank:          draw(g.BanksPerGroup),
	}
}

// RandomBankWithin draws a random bank sharing the level entity of anchor:
// every bank-address field finer than the level under the active profile's
// hierarchy is re-randomised. As with RandomBank, degenerate dimensions
// (size 1) consume no randomness.
func RandomBankWithin(g Geometry, r RandomSource, anchor BankAddress, level Level) BankAddress {
	p := ActiveProfile()
	i := p.truncateFrom(level)
	if i < 0 {
		return anchor
	}
	b := anchor
	for _, f := range p.Layout.order[i+1:] {
		if f == fieldRow || f == fieldColumn {
			continue
		}
		if n := g.dim(f); n > 1 {
			b.set(f, r.Intn(n))
		} else {
			b.set(f, 0)
		}
	}
	return b
}

// CellInBank returns the full address of (row, col) within the given bank.
func CellInBank(bank BankAddress, row, col int) Address {
	a := bank
	a.Row = row
	a.Column = col
	return a
}

// ClampRow clamps row into [0, g.RowsPerBank).
func (g Geometry) ClampRow(row int) int {
	if row < 0 {
		return 0
	}
	if row >= g.RowsPerBank {
		return g.RowsPerBank - 1
	}
	return row
}
