package features

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"
)

// Binary codec for BankState, the payload format of the online engine's
// snapshots. The encoding is exhaustive and exact: every accumulator field
// round-trips bit-for-bit (float64 via IEEE bits, time.Time as seconds +
// nanoseconds so the zero value and sub-second precision both survive), so
// a restored state continues producing vectors bit-identical to the state
// that was encoded — the property the crash≡no-crash equivalence tests
// pin. The format is versioned; decoding a newer or unknown version fails
// cleanly rather than misinterpreting bytes. Version 2 appends the
// error-bit accumulator; version 1 snapshots still decode, with the
// accumulator empty (their events carried no error bits).
const (
	bankStateMagic     = "CBNK"
	bankStateVersion   = 2
	bankStateVersionV1 = 1
)

// maxCodecEntries bounds decoded collection lengths. The per-row sets are
// bounded by a bank's distinct rows (tens of thousands), so anything near
// this limit in a snapshot is corruption, not data.
const maxCodecEntries = 1 << 24

// enc is a little-endian append-only encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }
func (e *enc) bool(v bool) {
	b := uint8(0)
	if v {
		b = 1
	}
	e.b = append(e.b, b)
}
func (e *enc) i64(v int64)   { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) int(v int)     { e.i64(int64(v)) }
func (e *enc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) time(t time.Time) {
	e.i64(t.Unix())
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(t.Nanosecond()))
}
func (e *enc) ints(v []int) {
	e.int(len(v))
	for _, x := range v {
		e.int(x)
	}
}
func (e *enc) accum(a *seqAccum) {
	e.int(a.count)
	e.int(a.lastRow)
	e.time(a.lastTime)
	for _, f := range []float64{a.rowMin, a.rowMax, a.rowDiffMin, a.rowDiffMax, a.rowDiffSum, a.dtMin, a.dtMax, a.dtSum} {
		e.f64(f)
	}
}
func (e *enc) accums(p *patternAccums) {
	e.accum(&p.ce)
	e.accum(&p.ueo)
	e.accum(&p.uer)
	e.accum(&p.all)
}

// dec is the matching cursor-based decoder; the first failure sticks.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("features: decoding bank state: "+format, args...)
	}
}
func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated at offset %d (need %d of %d bytes)", d.off, n, len(d.b))
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}
func (d *dec) u8() uint8 {
	if s := d.take(1); s != nil {
		return s[0]
	}
	return 0
}
func (d *dec) bool() bool { return d.u8() != 0 }
func (d *dec) i64() int64 {
	if s := d.take(8); s != nil {
		return int64(binary.LittleEndian.Uint64(s))
	}
	return 0
}
func (d *dec) int() int { return int(d.i64()) }
func (d *dec) f64() float64 {
	if s := d.take(8); s != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(s))
	}
	return 0
}
func (d *dec) time() time.Time {
	sec := d.i64()
	var nsec uint32
	if s := d.take(4); s != nil {
		nsec = binary.LittleEndian.Uint32(s)
	}
	if d.err != nil {
		return time.Time{}
	}
	if sec == timeZeroSec && nsec == 0 {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}
func (d *dec) count() int {
	n := d.i64()
	if n < 0 || n > maxCodecEntries {
		d.fail("implausible collection length %d", n)
		return 0
	}
	return int(n)
}
func (d *dec) ints() []int {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.int()
	}
	if d.err != nil {
		return nil
	}
	return out
}
func (d *dec) accum(a *seqAccum) {
	a.count = d.int()
	a.lastRow = d.int()
	a.lastTime = d.time()
	a.rowMin, a.rowMax = d.f64(), d.f64()
	a.rowDiffMin, a.rowDiffMax, a.rowDiffSum = d.f64(), d.f64(), d.f64()
	a.dtMin, a.dtMax, a.dtSum = d.f64(), d.f64(), d.f64()
}
func (d *dec) accums(p *patternAccums) {
	d.accum(&p.ce)
	d.accum(&p.ueo)
	d.accum(&p.uer)
	d.accum(&p.all)
}

// timeZeroSec is time.Time{}.Unix(): the sentinel pair (timeZeroSec, 0)
// encodes the zero time so IsZero survives the round trip.
var timeZeroSec = time.Time{}.Unix()

// MarshalBinary encodes the full state. The result is self-describing
// (magic + version) and decodable by UnmarshalBankState.
func (s *BankState) MarshalBinary() ([]byte, error) {
	e := &enc{b: make([]byte, 0, 1024)}
	e.b = append(e.b, bankStateMagic...)
	e.u8(bankStateVersion)

	e.int(s.cfg.UERBudget)
	e.int(s.spec.WindowRadius)
	e.int(s.spec.BlockSize)
	e.int(s.events)

	e.accums(&s.committed)
	e.accums(&s.staged)
	e.ints(s.budgetRows)
	e.bool(s.budgetSeen != nil)
	if s.budgetSeen != nil {
		rows := make([]int, 0, len(s.budgetSeen))
		for r := range s.budgetSeen {
			rows = append(rows, r)
		}
		sort.Ints(rows)
		e.ints(rows)
	}
	e.time(s.cutoff)
	e.bool(s.budgetDone)

	e.bool(s.haveFirstEvent)
	e.time(s.firstEventTime)
	e.bool(s.haveUER)
	e.time(s.firstUERTime)
	e.int(s.ceBefore)
	e.int(s.ueoBefore)
	e.int(s.ceTotal)
	e.int(s.ueoTotal)
	e.time(s.runTime)
	e.int(s.ceAtRun)
	e.int(s.ueoAtRun)

	e.accum(&s.blkCE)
	e.accum(&s.blkUEO)
	e.accum(&s.blkUER)
	e.f64(s.ceRowSum)
	e.f64(s.uerRowSum)
	e.ints(s.ceRows.rows)
	e.ints(s.ueoRows.rows)
	e.ints(s.uerRows.rows)
	e.bool(s.rowCounts != nil)
	if s.rowCounts != nil {
		rows := make([]int, 0, len(s.rowCounts))
		for r := range s.rowCounts {
			rows = append(rows, r)
		}
		sort.Ints(rows)
		e.int(len(rows))
		for _, r := range rows {
			rc := s.rowCounts[r]
			e.int(r)
			e.int(rc.total)
			e.int(rc.uer)
		}
	}
	e.time(s.lastTime)

	e.int(s.errBits.count)
	e.u8(s.errBits.dqUnion)
	e.u8(s.errBits.burstUnion)
	for _, c := range s.errBits.dqPinCounts {
		e.int(c)
	}
	e.int(s.errBits.dqPopSum)
	e.int(s.errBits.burstPopSum)
	return e.b, nil
}

// UnmarshalBankState decodes a state produced by MarshalBinary. Corrupt or
// truncated input returns an error, never a panic.
func UnmarshalBankState(data []byte) (*BankState, error) {
	if len(data) < len(bankStateMagic)+1 {
		return nil, fmt.Errorf("features: bank state too short (%d bytes)", len(data))
	}
	if string(data[:4]) != bankStateMagic {
		return nil, fmt.Errorf("features: bad bank state magic")
	}
	version := data[4]
	if version != bankStateVersion && version != bankStateVersionV1 {
		return nil, fmt.Errorf("features: unsupported bank state version %d", version)
	}
	d := &dec{b: data, off: 5}
	s := &BankState{}
	s.cfg.UERBudget = d.int()
	s.spec.WindowRadius = d.int()
	s.spec.BlockSize = d.int()
	s.events = d.int()

	d.accums(&s.committed)
	d.accums(&s.staged)
	s.budgetRows = d.ints()
	if d.bool() {
		rows := d.ints()
		s.budgetSeen = make(map[int]bool, len(rows))
		for _, r := range rows {
			s.budgetSeen[r] = true
		}
	}
	s.cutoff = d.time()
	s.budgetDone = d.bool()

	s.haveFirstEvent = d.bool()
	s.firstEventTime = d.time()
	s.haveUER = d.bool()
	s.firstUERTime = d.time()
	s.ceBefore = d.int()
	s.ueoBefore = d.int()
	s.ceTotal = d.int()
	s.ueoTotal = d.int()
	s.runTime = d.time()
	s.ceAtRun = d.int()
	s.ueoAtRun = d.int()

	d.accum(&s.blkCE)
	d.accum(&s.blkUEO)
	d.accum(&s.blkUER)
	s.ceRowSum = d.f64()
	s.uerRowSum = d.f64()
	s.ceRows.rows = d.ints()
	s.ueoRows.rows = d.ints()
	s.uerRows.rows = d.ints()
	if d.bool() {
		n := d.count()
		s.rowCounts = make(map[int]blockRowCount, n)
		for i := 0; i < n && d.err == nil; i++ {
			r := d.int()
			s.rowCounts[r] = blockRowCount{total: d.int(), uer: d.int()}
		}
	}
	s.lastTime = d.time()

	if version >= bankStateVersion {
		s.errBits.count = d.int()
		s.errBits.dqUnion = d.u8()
		s.errBits.burstUnion = d.u8()
		for i := range s.errBits.dqPinCounts {
			s.errBits.dqPinCounts[i] = d.int()
		}
		s.errBits.dqPopSum = d.int()
		s.errBits.burstPopSum = d.int()
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("features: %d trailing bytes after bank state", len(data)-d.off)
	}
	if s.cfg.UERBudget <= 0 {
		return nil, fmt.Errorf("features: decoded non-positive UER budget %d", s.cfg.UERBudget)
	}
	if err := s.spec.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Config returns the pattern config the state was created with.
func (s *BankState) Config() PatternConfig { return s.cfg }

// Spec returns the block spec the state was created with.
func (s *BankState) Spec() BlockSpec { return s.spec }
