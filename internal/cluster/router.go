package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"cordial/internal/mcelog"
	"cordial/internal/obs"
)

// RouterConfig configures the stateless ingest front.
type RouterConfig struct {
	// ControlPlane is the control plane's base URL.
	ControlPlane string
	// MaxAttempts bounds forwarding attempts per node batch (first try
	// included). Default 5.
	MaxAttempts int
	// Backoff is the initial retry delay, doubling per attempt up to
	// BackoffCap. Defaults 50ms / 2s.
	Backoff    time.Duration
	BackoffCap time.Duration
	// RefreshInterval is the background ring poll period. Default 2s.
	// (503 responses also trigger an immediate refresh.)
	RefreshInterval time.Duration
	// MaxBodyBytes caps one POST /v1/events body. Default 32 MiB.
	MaxBodyBytes int64
	// MaxLineBytes caps one JSONL line. Defaults to MaxBodyBytes so a
	// line the body cap admits is never refused by the line scanner.
	MaxLineBytes int
	// UpstreamCodec selects how batches are forwarded to serve nodes:
	// CodecBinary (default) re-frames events into the binary wire codec
	// and posts to /v1/events.bin; CodecJSONL posts JSON lines to
	// /v1/events for nodes that predate the binary endpoint.
	UpstreamCodec string
	// Logger defaults to slog.Default().
	Logger *slog.Logger
	// Client is the HTTP client for node and control-plane calls.
	// Default: 30s timeout.
	Client *http.Client
	// Metrics receives the router's instruments; nil creates a private
	// registry (served on the router's own /metrics).
	Metrics *obs.Registry
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 2 * time.Second
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = 2 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxLineBytes == 0 {
		c.MaxLineBytes = int(c.MaxBodyBytes)
	}
	if c.UpstreamCodec == "" {
		c.UpstreamCodec = CodecBinary
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Router is the stateless ingest front: it splits a JSONL batch by bank
// owner under the current ring, forwards each slice to its node, and
// merges the per-node results. A 503 not-owned answer (a node fenced
// mid-handoff, or the router's ring is stale) refreshes the ring and
// resends exactly the unconsumed suffix — the consumed-prefix contract
// keeps per-bank event order intact across retries because a bank's
// lines only ever move forward, in order, to exactly one live owner.
type Router struct {
	cfg RouterConfig
	mux *http.ServeMux

	forwards  *obs.Counter
	retries   *obs.Counter
	failures  *obs.Counter
	refreshes *obs.Counter
	lines     *obs.Counter

	mu   sync.Mutex
	ring *Ring
}

// NewRouter builds the router. Call Run to keep its ring fresh.
func NewRouter(cfg RouterConfig) *Router {
	rt := &Router{cfg: cfg.withDefaults(), mux: http.NewServeMux()}
	reg := rt.cfg.Metrics
	rt.forwards = reg.Counter("cordial_router_forwards_total",
		"Per-node batch forwards attempted.")
	rt.retries = reg.Counter("cordial_router_retries_total",
		"Forwards retried after a refusal, error or stale ring.")
	rt.failures = reg.Counter("cordial_router_failures_total",
		"Node batches abandoned after exhausting retries.")
	rt.refreshes = reg.Counter("cordial_router_ring_refreshes_total",
		"Ring descriptor fetches from the control plane.")
	rt.lines = reg.Counter("cordial_router_lines_total",
		"JSONL event lines routed.")
	reg.GaugeFunc("cordial_router_ring_epoch",
		"Ring epoch the router currently routes under (0 = no ring yet).",
		func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			if rt.ring == nil {
				return 0
			}
			return float64(rt.ring.Epoch())
		})
	rt.mux.HandleFunc("POST /v1/events", rt.handleEvents)
	rt.mux.HandleFunc("POST /v1/events.bin", rt.handleEventsBin)
	rt.mux.HandleFunc("GET /statsz", rt.handleStats)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	rt.mux.HandleFunc("GET /readyz", rt.handleReady)
	rt.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	return rt
}

// ServeHTTP serves the router API; every response is no-store (routing
// answers describe this instant).
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	rt.mux.ServeHTTP(w, r)
}

// Run fetches the initial ring (retrying until ctx ends) and then keeps
// it fresh on a timer.
func (rt *Router) Run(ctx context.Context) error {
	for attempt := 0; rt.currentRing() == nil; attempt++ {
		if err := rt.refreshRing(); err != nil {
			rt.cfg.Logger.Warn("ring fetch failed; retrying", "err", err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(jitteredBackoff(attempt, 200*time.Millisecond, 5*time.Second)):
			}
		}
	}
	tick := time.NewTicker(rt.cfg.RefreshInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if err := rt.refreshRing(); err != nil {
				rt.cfg.Logger.Warn("ring refresh failed", "err", err)
			}
		}
	}
}

func (rt *Router) currentRing() *Ring {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring
}

// refreshRing fetches the control plane's descriptor; the ring only
// moves forward epoch-wise.
func (rt *Router) refreshRing() error {
	var desc Descriptor
	if err := getJSON(rt.cfg.Client, rt.cfg.ControlPlane+"/cluster/v1/ring", &desc); err != nil {
		return err
	}
	rt.refreshes.Inc()
	if len(desc.Members) == 0 {
		return nil // empty cluster: keep whatever ring we have
	}
	ring, err := BuildRing(desc)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	if rt.ring == nil || ring.Epoch() > rt.ring.Epoch() {
		rt.ring = ring
	}
	rt.mu.Unlock()
	return nil
}

// Upstream codec names for RouterConfig.UpstreamCodec.
const (
	CodecBinary = "binary"
	CodecJSONL  = "jsonl"
)

// routedLine is one parsed event awaiting forwarding. text holds the
// original JSONL line and is retained only under the jsonl upstream codec
// (binary forwarding re-frames from ev; jsonl forwarding of binary input
// re-encodes from ev on demand).
type routedLine struct {
	ev   mcelog.Event
	text []byte
	key  uint64
}

// ingestResult mirrors the serve node's IngestResult wire shape (the
// router speaks the same contract to its own clients).
type ingestResult struct {
	Accepted  int      `json:"accepted"`
	Rejected  int      `json:"rejected"`
	Dropped   int      `json:"dropped"`
	Errors    []string `json:"errors,omitempty"`
	Truncated bool     `json:"truncated,omitempty"`
	NotOwned  int      `json:"notOwned,omitempty"`
	Epoch     uint64   `json:"epoch,omitempty"`
}

// handleEvents splits the batch by owner and forwards each slice.
// Lines the router cannot parse are rejected here — an unroutable line
// has no owner to forward it to. Validation stays on the serve nodes.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	if rt.currentRing() == nil {
		http.Error(w, "no ring yet", http.StatusServiceUnavailable)
		return
	}
	body := http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), rt.cfg.MaxLineBytes)

	var agg ingestResult
	var lines []routedLine
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		ev, err := mcelog.ParseJSONEvent(raw)
		if err != nil {
			agg.Rejected++
			if len(agg.Errors) < 16 {
				agg.Errors = append(agg.Errors, fmt.Sprintf("line %d: %v", lineNo, err))
			}
			continue
		}
		ln := routedLine{ev: ev, key: ev.Addr.BankKey()}
		if rt.cfg.UpstreamCodec == CodecJSONL {
			ln.text = append([]byte(nil), raw...)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		agg.Truncated = true
		if len(agg.Errors) < 16 {
			agg.Errors = append(agg.Errors, fmt.Sprintf("after line %d: %v", lineNo, err))
		}
	}
	rt.lines.Add(uint64(len(lines)))
	rt.forward(lines, &agg)
	status := http.StatusOK
	if agg.Epoch == 0 {
		if ring := rt.currentRing(); ring != nil {
			agg.Epoch = ring.Epoch()
		}
	}
	writeJSON(w, status, agg)
}

// handleEventsBin accepts the binary wire codec from clients and routes
// it like handleEvents. Records decode unconditionally here — geometry
// validation stays on the serve nodes, which know the fleet's shape. A
// corrupt frame is a 400 (no way to resynchronise), but frames before it
// are already routed.
func (rt *Router) handleEventsBin(w http.ResponseWriter, r *http.Request) {
	if rt.currentRing() == nil {
		http.Error(w, "no ring yet", http.StatusServiceUnavailable)
		return
	}
	body := http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	dec := mcelog.NewFrameDecoder(body)

	var agg ingestResult
	var lines []routedLine
	frameNo := 0
	for {
		fr, err := dec.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			agg.Truncated = true
			if len(agg.Errors) < 16 {
				agg.Errors = append(agg.Errors, fmt.Sprintf("after frame %d: %v", frameNo, err))
			}
			rt.lines.Add(uint64(len(lines)))
			rt.forward(lines, &agg)
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, status, agg)
			return
		}
		frameNo++
		for i, n := 0, fr.Len(); i < n; i++ {
			ev := fr.Event(i)
			lines = append(lines, routedLine{ev: ev, key: ev.Addr.BankKey()})
		}
	}
	rt.lines.Add(uint64(len(lines)))
	rt.forward(lines, &agg)
	if agg.Epoch == 0 {
		if ring := rt.currentRing(); ring != nil {
			agg.Epoch = ring.Epoch()
		}
	}
	writeJSON(w, http.StatusOK, agg)
}

// forward delivers lines to their owners, retrying refused or failed
// slices against fresh rings until attempts run out. Grouping preserves
// input order within each node slice, so per-bank order is preserved
// end to end (one bank → one owner at a time).
func (rt *Router) forward(lines []routedLine, agg *ingestResult) {
	for attempt := 0; len(lines) > 0 && attempt < rt.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rt.retries.Inc()
			time.Sleep(jitteredBackoff(attempt-1, rt.cfg.Backoff, rt.cfg.BackoffCap))
		}
		ring := rt.currentRing()
		groups := make(map[string][]routedLine)
		var order []string // deterministic forwarding order for tests/logs
		for _, ln := range lines {
			m, ok := ring.Owner(ln.key)
			if !ok {
				continue // unreachable: rings are never empty
			}
			if _, seen := groups[m.ID]; !seen {
				order = append(order, m.ID)
			}
			groups[m.ID] = append(groups[m.ID], ln)
		}
		var carry []routedLine
		staleRing := false
		for _, id := range order {
			group := groups[id]
			m, _ := ring.Member(id)
			res, err := rt.postBatch(m, group)
			if err != nil {
				rt.cfg.Logger.Warn("forward failed", "node", id, "lines", len(group), "err", err)
				carry = append(carry, group...) // whole slice unconsumed
				staleRing = true                // the node may be gone; re-resolve owners
				continue
			}
			agg.Accepted += res.Accepted
			agg.Rejected += res.Rejected
			agg.Dropped += res.Dropped
			for _, e := range res.Errors {
				if len(agg.Errors) < 16 {
					agg.Errors = append(agg.Errors, fmt.Sprintf("node %s: %s", id, e))
				}
			}
			if res.Epoch > agg.Epoch {
				agg.Epoch = res.Epoch
			}
			if res.NotOwned > 0 {
				// Consumed-prefix contract: the node landed (or rejected)
				// exactly consumed lines, then refused the rest.
				consumed := res.Accepted + res.Rejected + res.Dropped
				carry = append(carry, group[consumed:]...)
				staleRing = true
			}
		}
		lines = carry
		if staleRing && len(lines) > 0 {
			if err := rt.refreshRing(); err != nil {
				rt.cfg.Logger.Warn("ring refresh after refusal failed", "err", err)
			}
		}
	}
	if len(lines) > 0 {
		rt.failures.Inc()
		agg.Dropped += len(lines)
		agg.Truncated = true
		if len(agg.Errors) < 16 {
			agg.Errors = append(agg.Errors,
				fmt.Sprintf("%d lines undeliverable after %d attempts", len(lines), rt.cfg.MaxAttempts))
		}
	}
}

// postBatch sends one node its slice of the batch, re-framed in the
// configured upstream codec. Any 2xx or a 503 carrying an IngestResult
// body parses as a result; everything else is an error (the caller
// re-resolves owners and retries).
func (rt *Router) postBatch(m Member, group []routedLine) (ingestResult, error) {
	rt.forwards.Inc()
	var buf bytes.Buffer
	var path, contentType string
	if rt.cfg.UpstreamCodec == CodecJSONL {
		path, contentType = "/v1/events", "application/x-ndjson"
		for _, ln := range group {
			text := ln.text
			if text == nil { // binary client input under the jsonl codec
				var err error
				if text, err = mcelog.MarshalJSONEvent(ln.ev); err != nil {
					return ingestResult{}, fmt.Errorf("re-encoding event for node %s: %w", m.ID, err)
				}
			}
			buf.Write(text)
			buf.WriteByte('\n')
		}
	} else {
		path, contentType = "/v1/events.bin", "application/octet-stream"
		enc := mcelog.NewFrameEncoder(&buf, 0)
		for _, ln := range group {
			if err := enc.Add(ln.ev); err != nil {
				return ingestResult{}, fmt.Errorf("framing event for node %s: %w", m.ID, err)
			}
		}
		if err := enc.Flush(); err != nil {
			return ingestResult{}, fmt.Errorf("framing batch for node %s: %w", m.ID, err)
		}
	}
	resp, err := rt.cfg.Client.Post("http://"+m.Addr+path, contentType, &buf)
	if err != nil {
		return ingestResult{}, err
	}
	defer resp.Body.Close()
	var res ingestResult
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusServiceUnavailable {
		if err := dec.Decode(&res); err != nil {
			return ingestResult{}, fmt.Errorf("node %s: %d with undecodable body: %w", m.ID, resp.StatusCode, err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable && res.NotOwned == 0 {
			// 503 without the not-owned marker: engine closed/unready.
			return ingestResult{}, fmt.Errorf("node %s: unavailable", m.ID)
		}
		return res, nil
	}
	return ingestResult{}, fmt.Errorf("node %s: status %d", m.ID, resp.StatusCode)
}

// handleReady: the router can route once it has a non-empty ring.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	ring := rt.currentRing()
	out := struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons,omitempty"`
		Epoch   uint64   `json:"epoch,omitempty"`
	}{Ready: ring != nil && ring.Len() > 0}
	if ring != nil {
		out.Epoch = ring.Epoch()
	} else {
		out.Reasons = []string{"no ring from control plane yet"}
	}
	status := http.StatusOK
	if !out.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

// handleStats aggregates /statsz from every ring member, keyed by node
// ID, plus the router's own counters.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	ring := rt.currentRing()
	out := struct {
		Epoch    uint64                     `json:"epoch"`
		Forwards uint64                     `json:"forwards"`
		Retries  uint64                     `json:"retries"`
		Failures uint64                     `json:"failures"`
		Lines    uint64                     `json:"linesRouted"`
		Nodes    map[string]json.RawMessage `json:"nodes"`
	}{
		Forwards: rt.forwards.Value(),
		Retries:  rt.retries.Value(),
		Failures: rt.failures.Value(),
		Lines:    rt.lines.Value(),
		Nodes:    map[string]json.RawMessage{},
	}
	if ring != nil {
		out.Epoch = ring.Epoch()
		for _, m := range ring.Descriptor().Members {
			var raw json.RawMessage
			if err := getJSON(rt.cfg.Client, "http://"+m.Addr+"/statsz", &raw); err != nil {
				msg, _ := json.Marshal(struct {
					Error string `json:"error"`
				}{err.Error()})
				raw = msg
			}
			out.Nodes[m.ID] = raw
		}
	}
	writeJSON(w, http.StatusOK, out)
}
