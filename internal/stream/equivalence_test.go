package stream

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/trace"
)

// trainedPipeline caches one small fitted pipeline per test binary; Random
// Forest training is the expensive part of these tests.
var trainedPipeline = sync.OnceValues(func() (*core.Pipeline, error) {
	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = 80
	spec.BenignBanks = 0
	spec.Seed = 11
	fleet, err := trace.Generate(spec)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(core.RandomForest)
	cfg.Params = core.ModelParams{Trees: 12, Depth: 8}
	pipe, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := pipe.Fit(fleet.Faults); err != nil {
		return nil, err
	}
	return pipe, nil
})

// bankVerdict aggregates everything a bank's replay decided.
type bankVerdict struct {
	bankSpared bool
	rows       []int
	classified bool
	class      faultsim.Class
}

func (v bankVerdict) String() string {
	return fmt.Sprintf("spared=%v classified=%v class=%v rows=%v",
		v.bankSpared, v.classified, v.class, v.rows)
}

// TestOnlineOfflineEquivalence is the online/offline skew gate: a seeded
// fleet log replayed event-by-event through the concurrent stream engine
// must yield, for every bank, exactly the decisions the offline pipeline
// (the per-bank session replay behind cordial.Evaluate) produces — same
// banks spared, same rows isolated, same classes. Any divergence means
// the engine reordered a bank's events or the online feature path drifted
// from the offline one.
func TestOnlineOfflineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	pipe, err := trainedPipeline()
	if err != nil {
		t.Fatal(err)
	}
	strategy := &core.CordialStrategy{Pipeline: pipe, Geometry: hbm.DefaultGeometry}

	// A fresh month the pipeline never saw, with benign noise banks mixed
	// in (they must cross no budget and emit nothing).
	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = 30
	spec.BenignBanks = 60
	spec.Seed = 12
	fleet, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	assertOnlineOfflineEquivalent(t, strategy, fleet)
}

// assertOnlineOfflineEquivalent replays the fleet's log both ways — per-bank
// offline sessions and the concurrent engine — and requires identical
// verdicts. Factored out so the gate also runs under non-default topology
// profiles.
func assertOnlineOfflineEquivalent(t *testing.T, strategy core.Strategy, fleet *trace.Fleet) {
	t.Helper()
	fleet.Log.Sort()

	// Offline: replay each bank's (time-ordered) events through a fresh
	// session, exactly as core.EvaluatePrediction does.
	offline := make(map[uint64]bankVerdict)
	for key, events := range fleet.Log.GroupByBank() {
		sess := strategy.NewSession(hbm.BankOf(events[0].Addr))
		v := bankVerdict{}
		seen := make(map[int]bool)
		for _, e := range events {
			d := sess.OnEvent(e)
			if d.SpareBank {
				v.bankSpared = true
			}
			for _, r := range d.IsolateRows {
				if !seen[r] {
					seen[r] = true
					v.rows = append(v.rows, r)
				}
			}
		}
		if cs, ok := sess.(core.ClassifiedSession); ok {
			v.class, v.classified = cs.Class()
		}
		sort.Ints(v.rows)
		if v.bankSpared || len(v.rows) > 0 || v.classified {
			offline[key] = v
		}
	}
	if len(offline) == 0 {
		t.Fatal("offline replay decided nothing; test fleet too small")
	}

	// Online: the same events, in log order, through the sharded engine.
	engine, err := New(Config{Strategy: strategy, Shards: 4, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	online := make(map[uint64]bankVerdict)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range engine.Actions() {
			key := a.Bank.BankKey()
			v := online[key]
			switch a.Kind.String() {
			case "bank-spare":
				v.bankSpared = true
			case "row-spare":
				v.rows = append(v.rows, a.Rows...)
			}
			v.classified, v.class = true, a.Class
			online[key] = v
		}
	}()
	if accepted, err := engine.IngestLog(fleet.Log); err != nil {
		t.Fatal(err)
	} else if accepted != fleet.Log.Len() {
		t.Fatalf("accepted %d of %d events", accepted, fleet.Log.Len())
	}
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	// Compare per bank. Engine sessions also expose class/stats; check
	// those against the offline verdicts too.
	for key, want := range offline {
		got, ok := online[key]
		if !ok {
			if want.bankSpared || len(want.rows) > 0 {
				t.Errorf("bank %x: offline decided (%v) but engine emitted nothing", key, want)
			}
			continue
		}
		sort.Ints(got.rows)
		if got.bankSpared != want.bankSpared {
			t.Errorf("bank %x: bankSpared online=%v offline=%v", key, got.bankSpared, want.bankSpared)
		}
		if fmt.Sprint(got.rows) != fmt.Sprint(want.rows) {
			t.Errorf("bank %x: rows online=%v offline=%v", key, got.rows, want.rows)
		}
		if want.classified && got.class != want.class {
			t.Errorf("bank %x: class online=%v offline=%v", key, got.class, want.class)
		}
		st, ok := engine.Session(hbm.Unpack(key))
		if !ok {
			t.Errorf("bank %x: no session snapshot", key)
			continue
		}
		if st.RowsIsolated != len(want.rows) {
			t.Errorf("bank %x: session rows %d, offline %d", key, st.RowsIsolated, len(want.rows))
		}
		if st.Classified != want.classified || (want.classified && st.Class != want.class) {
			t.Errorf("bank %x: session class %v/%v, offline %v/%v",
				key, st.Classified, st.Class, want.classified, want.class)
		}
	}
	for key, got := range online {
		if w, ok := offline[key]; !ok && (got.bankSpared || len(got.rows) > 0) {
			t.Errorf("bank %x: engine decided (%v) but offline replay did not", key, got)
		} else if ok {
			_ = w
		}
	}

	// Sanity: benign banks never act.
	for _, key := range fleet.BenignBankKeys {
		if v, ok := online[key]; ok && (v.bankSpared || len(v.rows) > 0) {
			t.Errorf("benign bank %x acted: %v", key, v)
		}
	}
}
