package chaos

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/xrand"
)

// Plan is the fully resolved, deterministic run plan: the generated event
// stream and the chaos schedule with every "random" target pinned. Two
// BuildPlan calls with the same scenario and seed produce byte-identical
// plans — Digest is the proof, and the report records it so reruns can be
// compared.
type Plan struct {
	Fleet *GeneratedFleet
	// Chaos mirrors Scenario.Chaos with "random" targets resolved to a
	// concrete node.
	Chaos []ChaosAction
	// Digest fingerprints events + schedule (FNV-1a 64, hex).
	Digest string
}

// GeneratedFleet is the synthetic workload for one run.
type GeneratedFleet struct {
	// Events is the merged, time-sorted stream across all banks.
	Events []mcelog.Event
	// Banks is the number of distinct banks generated.
	Banks int
	// PerTemplate counts banks per template name.
	PerTemplate map[string]int
	// Faulty counts banks that carry a real fault pattern (the rest are
	// benign and must not produce verdicts).
	Faulty int
}

// BuildPlan generates the fleet workload and resolves the chaos schedule,
// all from the scenario seed. The RNG is split so workload and schedule
// draw from independent deterministic streams: adding a chaos action does
// not reshuffle the event stream.
func BuildPlan(sc *Scenario, geo hbm.Geometry) (*Plan, error) {
	base := xrand.New(sc.Seed)
	fleetRNG := base.Split()
	chaosRNG := base.Split()

	fleet, err := generateFleet(sc, geo, fleetRNG)
	if err != nil {
		return nil, err
	}

	chaos := make([]ChaosAction, len(sc.Chaos))
	copy(chaos, sc.Chaos)
	for i := range chaos {
		if chaos[i].Target == "random" {
			chaos[i].Target = "node-" + strconv.Itoa(1+chaosRNG.Intn(sc.Fleet.Nodes))
		}
	}

	return &Plan{Fleet: fleet, Chaos: chaos, Digest: planDigest(fleet, chaos)}, nil
}

// patternByName maps scenario template names to generator patterns,
// matching cordial-gen's CLI vocabulary.
func patternByName(name string) (faultsim.Pattern, bool) {
	switch name {
	case "single":
		return faultsim.PatternSingleRow, true
	case "double":
		return faultsim.PatternDoubleRow, true
	case "half":
		return faultsim.PatternHalfTotalRow, true
	case "scattered":
		return faultsim.PatternScattered, true
	case "wholecol":
		return faultsim.PatternWholeColumn, true
	}
	return 0, false
}

func generateFleet(sc *Scenario, geo hbm.Geometry, rng *xrand.RNG) (*GeneratedFleet, error) {
	gen, err := faultsim.NewGenerator(faultsim.DefaultConfig(geo), rng.Split())
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(sc.FleetGen.Templates))
	for i, t := range sc.FleetGen.Templates {
		weights[i] = t.Weight
	}
	mixed := faultsim.DefaultPatternWeights()

	fleet := &GeneratedFleet{PerTemplate: map[string]int{}}
	log := mcelog.NewLog(sc.FleetGen.TotalBanks * 8)
	used := make(map[uint64]bool, sc.FleetGen.TotalBanks)
	for b := 0; b < sc.FleetGen.TotalBanks; b++ {
		var bank hbm.BankAddress
		for {
			bank = hbm.RandomBank(geo, rng)
			if !used[bank.Pack()] {
				used[bank.Pack()] = true
				break
			}
		}
		tpl := sc.FleetGen.Templates[rng.WeightedChoice(weights)]
		fleet.PerTemplate[tpl.Name]++
		switch tpl.Pattern {
		case "benign":
			log.Append(gen.GenerateBenign(bank)...)
		case "mixed":
			bf, err := gen.GenerateSampled(bank, mixed)
			if err != nil {
				return nil, fmt.Errorf("chaos: template %q: %w", tpl.Name, err)
			}
			log.Append(bf.Events...)
			fleet.Faulty++
		default:
			p, ok := patternByName(tpl.Pattern)
			if !ok {
				return nil, fmt.Errorf("chaos: template %q: unknown pattern %q", tpl.Name, tpl.Pattern)
			}
			bf, err := gen.Generate(bank, p)
			if err != nil {
				return nil, fmt.Errorf("chaos: template %q: %w", tpl.Name, err)
			}
			log.Append(bf.Events...)
			fleet.Faulty++
		}
	}
	log.Sort()
	fleet.Events = log.Events()
	fleet.Banks = sc.FleetGen.TotalBanks
	return fleet, nil
}

// planDigest fingerprints the event stream and resolved schedule. The
// per-event image matches the wire record: time, packed address, class,
// error bits — two plans differing only in reported DQ/burst patterns
// hash differently.
func planDigest(fleet *GeneratedFleet, chaos []ChaosAction) string {
	h := fnv.New64a()
	var buf [19]byte
	for _, ev := range fleet.Events {
		putInt64(buf[0:8], ev.Time.UnixNano())
		putUint64(buf[8:16], ev.Addr.Pack())
		buf[16] = byte(ev.Class)
		buf[17] = byte(ev.Bits)
		buf[18] = byte(ev.Bits >> 8)
		h.Write(buf[:])
	}
	for _, a := range chaos {
		putInt64(buf[0:8], int64(a.At))
		h.Write(buf[0:8])
		h.Write([]byte(a.Action))
		h.Write([]byte(a.Target))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func putInt64(b []byte, v int64) { putUint64(b, uint64(v)) }

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
