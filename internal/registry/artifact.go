// Package registry is the versioned model store behind the online
// retraining loop: every fitted pipeline the daemon serves — the boot
// model, drift-triggered candidates, manually promoted artefacts — is a
// numbered, CRC-tailed file on disk, and an atomic active pointer names
// the one new sessions bind. The stream engine resolves strategies through
// the Registry (it satisfies the engine's ModelSource shape), so a model
// swap is a pointer flip here plus a swap record in the engine's journal,
// and crash recovery can rebind every session to the exact version it was
// pinned to.
//
// The artefact codec follows the WAL snapshot discipline (temp file,
// fsync, rename, checksum tail): a crash mid-write leaves the store's
// previous contents intact, and a corrupt artefact fails loudly at read
// time instead of serving a half-written model.
package registry

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cordial/internal/core"
	"cordial/internal/wal"
)

// Artefact file layout:
//
//	magic "CMDL" | uint16 format version | uint16 reserved
//	uint64 model version | uint64 meta length | uint64 payload length
//	meta JSON | payload (core.Pipeline SaveModels stream)
//	uint32 CRC-32C over everything above
const (
	artMagic   = "CMDL"
	artVersion = 1
	artHdrSize = 32
	artPrefix  = "model-"
	artSuffix  = ".cmdl"
	artNameFmt = artPrefix + "%016x" + artSuffix

	// activeName is the atomic active-pointer file: the hex version of the
	// model new sessions should bind, replaced by rename on Activate.
	activeName = "ACTIVE"
)

// MaxArtifactBytes caps one artefact file; larger decoded lengths are
// treated as corruption.
const MaxArtifactBytes = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Meta describes one stored model version.
type Meta struct {
	// Version is the registry-assigned monotonic version number.
	Version uint64 `json:"version"`
	// CreatedAt is when the artefact was installed.
	CreatedAt time.Time `json:"createdAt"`
	// Trigger records why this version exists: "boot", "train", "drift",
	// "sighup", "import", ...
	Trigger string `json:"trigger,omitempty"`
	// Model is the pipeline's own training provenance (window, event
	// count, class mix, params); nil for pre-metadata artefacts.
	Model *core.ModelMeta `json:"model,omitempty"`
}

// ArtifactInfo identifies one artefact file.
type ArtifactInfo struct {
	Version uint64
	Path    string
}

func artName(version uint64) string { return fmt.Sprintf(artNameFmt, version) }

// ListArtifacts returns the directory's artefact files, oldest (lowest
// version) first. Validity is checked on read, not here.
func ListArtifacts(fs wal.FS, dir string) ([]ArtifactInfo, error) {
	if fs == nil {
		fs = wal.OSFS
	}
	entries, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("registry: listing artefacts: %w", err)
	}
	var out []ArtifactInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, artPrefix) || !strings.HasSuffix(name, artSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, artPrefix), artSuffix)
		if len(hex) != 16 {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(hex, "%016x", &v); err != nil {
			continue
		}
		out = append(out, ArtifactInfo{Version: v, Path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}

// WriteArtifact atomically persists one model version: temp file, fsync,
// rename. On any error the temp file is removed and existing artefacts are
// untouched.
func WriteArtifact(fs wal.FS, dir string, meta Meta, payload []byte) (path string, err error) {
	if fs == nil {
		fs = wal.OSFS
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return "", fmt.Errorf("registry: encoding meta: %w", err)
	}
	if len(metaJSON)+len(payload) > MaxArtifactBytes {
		return "", fmt.Errorf("registry: artefact of %d bytes exceeds max %d",
			len(metaJSON)+len(payload), MaxArtifactBytes)
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("registry: creating dir: %w", err)
	}
	final := filepath.Join(dir, artName(meta.Version))
	tmp := final + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("registry: creating artefact temp: %w", err)
	}
	defer func() {
		if err != nil {
			_ = fs.Remove(tmp)
		}
	}()
	hdr := make([]byte, artHdrSize)
	copy(hdr[:4], artMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], artVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], meta.Version)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(metaJSON)))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(payload)))
	sum := crc32.Update(0, crcTable, hdr)
	sum = crc32.Update(sum, crcTable, metaJSON)
	sum = crc32.Update(sum, crcTable, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	for _, chunk := range [][]byte{hdr, metaJSON, payload, tail[:]} {
		if _, werr := f.Write(chunk); werr != nil {
			f.Close()
			return "", fmt.Errorf("registry: writing artefact: %w", werr)
		}
	}
	if serr := f.Sync(); serr != nil {
		f.Close()
		return "", fmt.Errorf("registry: syncing artefact: %w", serr)
	}
	if cerr := f.Close(); cerr != nil {
		return "", fmt.Errorf("registry: closing artefact: %w", cerr)
	}
	if rerr := fs.Rename(tmp, final); rerr != nil {
		return "", fmt.Errorf("registry: publishing artefact: %w", rerr)
	}
	return final, nil
}

// ReadArtifact reads and validates one artefact file.
func ReadArtifact(fs wal.FS, path string) (Meta, []byte, error) {
	if fs == nil {
		fs = wal.OSFS
	}
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("registry: opening artefact: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, MaxArtifactBytes+artHdrSize+8))
	if err != nil {
		return Meta{}, nil, fmt.Errorf("registry: reading artefact: %w", err)
	}
	return DecodeArtifact(data)
}

// DecodeArtifact validates an artefact image held in memory. Exposed
// separately so the decoder can be fuzzed without a filesystem.
func DecodeArtifact(data []byte) (Meta, []byte, error) {
	if len(data) < artHdrSize+4 {
		return Meta{}, nil, fmt.Errorf("registry: artefact too short (%d bytes)", len(data))
	}
	if string(data[:4]) != artMagic {
		return Meta{}, nil, fmt.Errorf("registry: bad artefact magic")
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != artVersion {
		return Meta{}, nil, fmt.Errorf("registry: unsupported artefact format version %d", v)
	}
	version := binary.LittleEndian.Uint64(data[8:16])
	metaLen := binary.LittleEndian.Uint64(data[16:24])
	payloadLen := binary.LittleEndian.Uint64(data[24:32])
	total := uint64(len(data))
	if metaLen > MaxArtifactBytes || payloadLen > MaxArtifactBytes ||
		artHdrSize+metaLen+payloadLen+4 != total {
		return Meta{}, nil, fmt.Errorf("registry: artefact lengths (%d meta, %d payload) inconsistent with file size %d",
			metaLen, payloadLen, total)
	}
	body := data[:total-4]
	want := binary.LittleEndian.Uint32(data[total-4:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return Meta{}, nil, fmt.Errorf("registry: artefact checksum mismatch")
	}
	var meta Meta
	if err := json.Unmarshal(data[artHdrSize:artHdrSize+metaLen], &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("registry: decoding artefact meta: %w", err)
	}
	if meta.Version != version {
		return Meta{}, nil, fmt.Errorf("registry: meta version %d disagrees with header %d", meta.Version, version)
	}
	return meta, data[artHdrSize+metaLen : total-4], nil
}

// encodePipeline serialises a fitted pipeline into an artefact payload.
func encodePipeline(pipe *core.Pipeline) ([]byte, error) {
	var buf bytes.Buffer
	if err := pipe.SaveModels(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodePipeline restores a pipeline from an artefact payload.
func decodePipeline(payload []byte) (*core.Pipeline, error) {
	pipe, err := core.New(core.DefaultConfig(core.RandomForest))
	if err != nil {
		return nil, err
	}
	if err := pipe.LoadModels(bytes.NewReader(payload)); err != nil {
		return nil, err
	}
	return pipe, nil
}
