package mltree

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model kinds used in the serialised envelope.
const (
	kindTree     = "tree"
	kindForest   = "forest"
	kindGBDT     = "gbdt"
	kindHistGBDT = "histgbdt"
)

// envelope wraps any serialised model with its kind for safe round-tripping.
type envelope struct {
	Kind    string          `json:"kind"`
	Classes []int           `json:"classes"`
	Payload json.RawMessage `json:"payload"`
}

type treePayload struct {
	Config TreeConfig `json:"config"`
	Root   *treeNode  `json:"root"`
}

type forestPayload struct {
	Config ForestConfig  `json:"config"`
	Trees  []treePayload `json:"trees"`
	// TreeClasses holds each member's own class list (bootstrap bags can
	// miss classes).
	TreeClasses [][]int `json:"treeClasses"`
	OOB         float64 `json:"oob"`
}

type gbdtPayload struct {
	Config   GBDTConfig `json:"config"`
	Boosters []*booster `json:"boosters"`
}

type histPayload struct {
	Config   HistGBDTConfig `json:"config"`
	Boosters []*booster     `json:"boosters"`
}

// Save serialises a fitted model to w as JSON. Supported types: *Tree,
// *Forest, *GBDT, *HistGBDT.
func Save(w io.Writer, model Classifier) error {
	var env envelope
	env.Classes = model.Classes()
	var payload any
	switch m := model.(type) {
	case *Tree:
		env.Kind = kindTree
		payload = treePayload{Config: m.Config, Root: m.root}
	case *Forest:
		env.Kind = kindForest
		fp := forestPayload{Config: m.Config, OOB: m.oobScore}
		for _, t := range m.trees {
			fp.Trees = append(fp.Trees, treePayload{Config: t.Config, Root: t.root})
			fp.TreeClasses = append(fp.TreeClasses, t.classes)
		}
		payload = fp
	case *GBDT:
		env.Kind = kindGBDT
		payload = gbdtPayload{Config: m.Config, Boosters: m.boosters}
	case *HistGBDT:
		env.Kind = kindHistGBDT
		payload = histPayload{Config: m.Config, Boosters: m.boosters}
	default:
		return fmt.Errorf("mltree: cannot serialise model type %T", model)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("mltree: marshaling payload: %w", err)
	}
	env.Payload = raw
	enc := json.NewEncoder(w)
	return enc.Encode(env)
}

// Load deserialises a model previously written by Save. To read several
// concatenated models from one stream, use a Decoder — Load consumes an
// unspecified amount of buffered input beyond the first model.
func Load(r io.Reader) (Classifier, error) {
	return NewDecoder(r).Decode()
}

// Decoder reads a stream of models written back-to-back by Save.
type Decoder struct {
	dec *json.Decoder
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{dec: json.NewDecoder(r)}
}

// NewDecoderFromJSON wraps an existing json.Decoder, so callers that decoded
// their own header from the same stream can continue reading models without
// losing the decoder's buffered input.
func NewDecoderFromJSON(dec *json.Decoder) *Decoder {
	return &Decoder{dec: dec}
}

// Decode reads the next model from the stream.
func (d *Decoder) Decode() (Classifier, error) {
	var env envelope
	if err := d.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("mltree: decoding envelope: %w", err)
	}
	switch env.Kind {
	case kindTree:
		var p treePayload
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, fmt.Errorf("mltree: decoding tree: %w", err)
		}
		if p.Root == nil {
			return nil, fmt.Errorf("mltree: tree payload has no root")
		}
		return &Tree{Config: p.Config, root: p.Root, flat: compileTree(p.Root), classes: env.Classes}, nil
	case kindForest:
		var p forestPayload
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, fmt.Errorf("mltree: decoding forest: %w", err)
		}
		if len(p.Trees) != len(p.TreeClasses) {
			return nil, fmt.Errorf("mltree: forest has %d trees but %d class lists", len(p.Trees), len(p.TreeClasses))
		}
		f := &Forest{Config: p.Config, classes: env.Classes, oobScore: p.OOB}
		for i, tp := range p.Trees {
			if tp.Root == nil {
				return nil, fmt.Errorf("mltree: forest member %d has no root", i)
			}
			f.trees = append(f.trees, &Tree{Config: tp.Config, root: tp.Root, flat: compileTree(tp.Root), classes: p.TreeClasses[i]})
		}
		return f, nil
	case kindGBDT:
		var p gbdtPayload
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, fmt.Errorf("mltree: decoding gbdt: %w", err)
		}
		for _, b := range p.Boosters {
			b.compile()
		}
		return &GBDT{Config: p.Config, classes: env.Classes, boosters: p.Boosters}, nil
	case kindHistGBDT:
		var p histPayload
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, fmt.Errorf("mltree: decoding histgbdt: %w", err)
		}
		for _, b := range p.Boosters {
			b.compile()
		}
		return &HistGBDT{Config: p.Config, classes: env.Classes, boosters: p.Boosters}, nil
	default:
		return nil, fmt.Errorf("mltree: unknown model kind %q", env.Kind)
	}
}
