package core

import (
	"testing"

	"cordial/internal/features"
	"cordial/internal/hbm"
	"cordial/internal/sparing"
	"cordial/internal/xrand"
)

func TestCalchasFitAndEvaluate(t *testing.T) {
	fleet := testFleet(t, 6, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(2), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	c := &Calchas{Params: smallParams(), Seed: 1}
	if c.Fitted() {
		t.Fatal("unfitted Calchas claims fitted")
	}
	if err := c.Fit(train); err != nil {
		t.Fatal(err)
	}
	if !c.Fitted() {
		t.Fatal("fitted Calchas claims unfitted")
	}

	spec := features.DefaultBlockSpec()
	budget := sparing.DefaultBudget()
	res, err := EvaluatePrediction(c, test, spec, budget)
	if err != nil {
		t.Fatal(err)
	}
	// A learned in-row method is still bounded by the non-sudden ratio:
	// coverage stays in single digits.
	if rate := res.ICR.Rate(); rate > 0.12 {
		t.Fatalf("Calchas-lite ICR %.3f unexpectedly high", rate)
	}
	if res.BlockOutcomes.Total() != 0 {
		t.Error("in-row method should make no block predictions")
	}

	// It must not isolate more rows than the naive isolate-every-precursor
	// policy (it is a filtered version of it).
	naive, err := EvaluatePrediction(&InRowStrategy{Geometry: hbm.DefaultGeometry}, test, spec, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.RowSpares > naive.Usage.RowSpares {
		t.Fatalf("Calchas-lite spared %d rows, naive in-row %d", res.Usage.RowSpares, naive.Usage.RowSpares)
	}
}

func TestCalchasRejectsDegenerateTraining(t *testing.T) {
	c := &Calchas{Params: smallParams()}
	if err := c.Fit(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestRowVectorFiniteOnFleet(t *testing.T) {
	fleet := testFleet(t, 6, 150)
	for _, bf := range fleet.Faults[:30] {
		vecs, labels := rowInstances(bf)
		if len(vecs) != len(labels) {
			t.Fatal("instance/label length mismatch")
		}
		for _, vec := range vecs {
			if len(vec) != len(features.RowFeatureNames()) {
				t.Fatalf("row vector has %d values, want %d", len(vec), len(features.RowFeatureNames()))
			}
		}
	}
}
