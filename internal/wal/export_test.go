package wal

import (
	"fmt"
	"testing"
)

// TestExportRange pins the segment-range export used by cluster handoff:
// half-open [from, to) bounds, LSN order across segment rotations, and
// payloads that survive closing the journal.
func TestExportRange(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rotations so the range spans files.
	w, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	lsns := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("record-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if w.Segments() < 2 {
		t.Fatalf("want multiple segments, got %d", w.Segments())
	}

	from, to := lsns[5], lsns[15]
	recs, err := w.ExportRange(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("exported %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != lsns[5+i] {
			t.Errorf("record %d LSN = %d, want %d", i, r.LSN, lsns[5+i])
		}
		// Payloads must be copies: still correct after Close.
		if want := fmt.Sprintf("record-%02d", 5+i); string(r.Payload) != want {
			t.Errorf("record %d payload = %q, want %q", i, r.Payload, want)
		}
	}

	// Full-range export covers everything; empty range exports nothing.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	all, err := w2.ExportRange(0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Errorf("full export = %d records, want %d", len(all), n)
	}
	none, err := w2.ExportRange(lsns[3], lsns[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("empty range exported %d records", len(none))
	}
}
