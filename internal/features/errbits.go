package features

import (
	"fmt"
	"math/bits"

	"cordial/internal/mcelog"
)

// Error-bit features (after "Exploring Error Bits for Memory Failure
// Prediction"): aggregates over the per-event intra-word DQ/burst error
// pattern. A physical pin fault corrupts the same DQ wire event after
// event, so its DQ-pin distribution is concentrated; transient scattered
// upsets spread across pins. Events without syndrome detail (Bits zero)
// are excluded — a fleet whose BMCs report no error bits yields Missing
// for every statistic, so the features degrade to no-ops rather than
// inventing signal.

// errBitFeatureCount is kept in sync with ErrBitVector/ErrBitFeatureNames.
const errBitFeatureCount = 6

// ErrBitFeatureNames returns the column names of ErrBitVector, in order.
func ErrBitFeatureNames() []string {
	return []string{
		"errbit_event_count",
		"dq_union_popcount",
		"dq_dominant_fraction",
		"dq_avg_popcount",
		"burst_union_popcount",
		"burst_avg_popcount",
	}
}

// errBitAccum incrementally maintains the error-bit aggregates: O(1) per
// observation, fixed size. Mirrors referenceErrBitVector bit-for-bit.
type errBitAccum struct {
	count                 int // events with a nonzero error-bit pattern
	dqUnion, burstUnion   uint8
	dqPinCounts           [8]int
	dqPopSum, burstPopSum int
}

// observe folds one event's error-bit pattern; zero patterns are skipped.
func (a *errBitAccum) observe(b mcelog.ErrBits) {
	if b.IsZero() {
		return
	}
	a.count++
	dq, burst := b.DQ(), b.Burst()
	a.dqUnion |= dq
	a.burstUnion |= burst
	for pin := 0; pin < 8; pin++ {
		if dq&(1<<pin) != 0 {
			a.dqPinCounts[pin]++
		}
	}
	a.dqPopSum += bits.OnesCount8(dq)
	a.burstPopSum += bits.OnesCount8(burst)
}

// vector renders the accumulator as the feature slice.
func (a *errBitAccum) vector() []float64 {
	out := make([]float64, 0, errBitFeatureCount)
	out = append(out, float64(a.count))
	if a.count == 0 {
		for len(out) < errBitFeatureCount {
			out = append(out, Missing)
		}
		return out
	}
	dominant := 0
	for _, c := range a.dqPinCounts {
		if c > dominant {
			dominant = c
		}
	}
	n := float64(a.count)
	out = append(out,
		float64(bits.OnesCount8(a.dqUnion)),
		float64(dominant)/n,
		float64(a.dqPopSum)/n,
		float64(bits.OnesCount8(a.burstUnion)),
		float64(a.burstPopSum)/n,
	)
	return out
}

// ErrBitVector returns the error-bit feature vector over the events
// observed so far, bit-identical to referenceErrBitVector over the same
// prefix. It never errors on an empty state (all statistics are Missing,
// the count zero); the signature matches the other vector methods.
func (s *BankState) ErrBitVector() ([]float64, error) {
	out := s.errBits.vector()
	if len(out) != errBitFeatureCount {
		panic(fmt.Sprintf("features: error-bit vector has %d values, want %d", len(out), errBitFeatureCount))
	}
	return out, nil
}

// ErrBitVector computes the error-bit feature vector from a bank's
// time-sorted events, via a single replay through a BankState.
func ErrBitVector(events []mcelog.Event) ([]float64, error) {
	st, err := NewBankState(DefaultPatternConfig(), DefaultBlockSpec())
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		st.Observe(e)
	}
	return st.ErrBitVector()
}

// referenceErrBitVector is the batch reference implementation, kept as the
// executable specification the incremental path is tested against.
func referenceErrBitVector(events []mcelog.Event) []float64 {
	var (
		count                 int
		dqUnion, burstUnion   uint8
		dqPinCounts           [8]int
		dqPopSum, burstPopSum int
	)
	for _, e := range events {
		if e.Bits.IsZero() {
			continue
		}
		count++
		dq, burst := e.Bits.DQ(), e.Bits.Burst()
		dqUnion |= dq
		burstUnion |= burst
		for pin := 0; pin < 8; pin++ {
			if dq&(1<<pin) != 0 {
				dqPinCounts[pin]++
			}
		}
		dqPopSum += bits.OnesCount8(dq)
		burstPopSum += bits.OnesCount8(burst)
	}
	out := make([]float64, 0, errBitFeatureCount)
	out = append(out, float64(count))
	if count == 0 {
		for len(out) < errBitFeatureCount {
			out = append(out, Missing)
		}
		return out
	}
	dominant := 0
	for _, c := range dqPinCounts {
		if c > dominant {
			dominant = c
		}
	}
	n := float64(count)
	return append(out,
		float64(bits.OnesCount8(dqUnion)),
		float64(dominant)/n,
		float64(dqPopSum)/n,
		float64(bits.OnesCount8(burstUnion)),
		float64(burstPopSum)/n,
	)
}
