package stream

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for rotation stamps.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

// rotatedFiles lists path.<stamp> siblings, sorted by name.
func rotatedFiles(t *testing.T, path string) []string {
	t.Helper()
	matches, err := filepath.Glob(path + ".*")
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestDeadLetterRotatesAtSizeCap: the active file never exceeds
// MaxFileBytes, full files rotate aside, and pruning keeps only MaxFiles
// rotated files — so a sustained poison stream cannot fill the disk.
func TestDeadLetterRotatesAtSizeCap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dead.jsonl")
	clock := &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	l, err := openDeadLetterLog(path, DeadLetterRotation{
		MaxFileBytes: 64,
		MaxFiles:     2,
		Clock:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()

	line := []byte(strings.Repeat("x", 30)) // 31 bytes with newline; 2 per file
	for i := 0; i < 20; i++ {
		l.write(line)
		clock.advance(time.Second) // distinct rotation stamps
	}

	if st, err := os.Stat(path); err != nil || st.Size() > 64 {
		t.Errorf("active file size = %v (err %v), want <= 64", st.Size(), err)
	}
	rot := rotatedFiles(t, path)
	if len(rot) != 2 {
		t.Errorf("rotated files = %d (%v), want 2", len(rot), rot)
	}
	// Total trail stays under (MaxFiles+1) * MaxFileBytes.
	total := int64(0)
	for _, p := range append(rot, path) {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	if total > 3*64 {
		t.Errorf("total trail = %d bytes, want <= %d", total, 3*64)
	}
}

// TestDeadLetterAgePruning: rotated files older than MaxAge disappear on
// the next rotation even when the count cap would keep them.
func TestDeadLetterAgePruning(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dead.jsonl")
	clock := &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	l, err := openDeadLetterLog(path, DeadLetterRotation{
		MaxFileBytes: 32,
		MaxFiles:     100, // count cap out of the way
		MaxAge:       time.Minute,
		Clock:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()

	line := []byte(strings.Repeat("y", 30))
	l.write(line) // fills the file
	l.write(line) // rotates: one rotated file stamped t0
	if got := rotatedFiles(t, path); len(got) != 1 {
		t.Fatalf("rotated files = %d, want 1", len(got))
	}

	clock.advance(2 * time.Minute)
	l.write(line) // rotates again; the t0 file is now past MaxAge
	rot := rotatedFiles(t, path)
	if len(rot) != 1 {
		t.Fatalf("rotated files after age prune = %d (%v), want 1", len(rot), rot)
	}
	// The survivor must be the fresh one (stamped after the advance).
	if !strings.HasSuffix(rot[0], ".jsonl."+strconv.FormatInt(clock.now.UnixNano(), 10)) {
		t.Errorf("surviving rotated file %q is not the freshest", rot[0])
	}
}

// TestDeadLetterOpenPrunesLeftovers: boot-time open prunes rotated files
// from earlier runs so a crash loop cannot accumulate them.
func TestDeadLetterOpenPrunesLeftovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dead.jsonl")
	for i := 1; i <= 5; i++ {
		if err := os.WriteFile(path+"."+strconv.Itoa(i), []byte("old\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-numeric sibling must be left alone.
	other := path + ".bak"
	if err := os.WriteFile(other, []byte("keep\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := openDeadLetterLog(path, DeadLetterRotation{MaxFileBytes: 1 << 20, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()

	rot := rotatedFiles(t, path)
	kept := 0
	for _, p := range rot {
		if p == other {
			continue
		}
		kept++
	}
	if kept != 2 {
		t.Errorf("kept %d rotated files (%v), want 2", kept, rot)
	}
	if _, err := os.Stat(other); err != nil {
		t.Errorf("non-numeric sibling was pruned: %v", err)
	}
}
