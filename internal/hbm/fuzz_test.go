package hbm

import "testing"

// FuzzParseAddress pins the bijection between canonical address strings
// and addresses: the parser never panics, any string it accepts renders
// back to exactly itself, and any accepted address survives String →
// Parse. Without the strict canonical-integer rule, inputs like "n+1..."
// or "r007..." parse but re-render differently, so string-keyed dedup and
// digests diverge.
func FuzzParseAddress(f *testing.F) {
	f.Add("n3.u7.h1.s1.c6.p1.g3.b2.r999.col55")
	f.Add("n0.u0.h0.s0.c0.p0.g0.b0.r0.col0")
	f.Add("n3.u1.h0.s0.c5.p0.g2.b3.k1.d6.r999.col55")
	f.Add("")
	f.Add("n1.u2")
	f.Add("x1.u2.h1.s0.c5.p1.g2.b3.r1.col8")
	f.Add("n-1.u2.h1.s0.c5.p1.g2.b3.r1.col8")
	f.Add("n+1.u2.h1.s0.c5.p1.g2.b3.r1.col8")
	f.Add("n01.u2.h1.s0.c5.p1.g2.b3.r007.col8")
	f.Add("n1.u2.h1.s0.c5.p1.g2.b3.k0.d0.r1.col8")
	f.Add("n99999999999999999999.u2.h1.s0.c5.p1.g2.b3.r1.col8")

	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddress(s)
		if err != nil {
			return
		}
		// Accepted strings must be canonical: String is their exact inverse.
		if got := a.String(); got != s {
			t.Fatalf("String(Parse(%q)) = %q; parser accepted a non-canonical string", s, got)
		}
		again, err := ParseAddress(a.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", a.String(), err)
		}
		if again != a {
			t.Fatalf("round trip changed %q: %+v vs %+v", s, a, again)
		}
		// Accepted addresses always survive packing without loss.
		if _, err := a.PackChecked(); err != nil {
			t.Fatalf("parsed address fails PackChecked: %v", err)
		}
	})
}

// FuzzPackUnpack verifies Unpack never panics, in-range addresses
// round-trip through Pack, and UnpackChecked rejects exactly the packed
// values with bits outside the active layout.
func FuzzPackUnpack(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(1) << 63)
	f.Add(Address{Node: 3, Row: 999, Column: 55}.Pack())

	f.Fuzz(func(t *testing.T, v uint64) {
		a := Unpack(v)
		// Re-packing an unpacked address keeps the encoded fields.
		if Unpack(a.Pack()) != a {
			t.Fatalf("pack/unpack unstable for %#x", v)
		}
		if _, err := UnpackChecked(v); err != nil {
			// Rejection is only correct when v really carries stray bits.
			if a.Pack() == v {
				t.Fatalf("UnpackChecked rejected %#x though it round-trips cleanly", v)
			}
		} else if a.Pack() != v {
			t.Fatalf("UnpackChecked accepted %#x though bits are lost on re-pack", v)
		}
	})
}
