package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Scrape-side companion to the registry: a parser for the Prometheus text
// exposition format that turns a /metrics payload back into queryable
// samples. The chaos harness uses it to assert SLOs against live daemons;
// tests use it to read a registry's own WriteText output back without
// string matching.

// Sample is one parsed exposition line: a metric name, its label set and
// the sample value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Snapshot is one parsed scrape. Samples keep payload order; lookups go
// through an index keyed by name plus canonical label signature.
type Snapshot struct {
	Samples []Sample
	byKey   map[string]float64
	byName  map[string][]int // name -> indices into Samples
}

// ParseText parses a text exposition payload (the format WriteText
// renders). Comment and blank lines are skipped; any malformed sample
// line fails the whole parse — a scrape that is only partly readable is
// not a scrape the harness should assert against.
func ParseText(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		byKey:  make(map[string]float64),
		byName: make(map[string][]int),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		idx := len(snap.Samples)
		snap.Samples = append(snap.Samples, s)
		snap.byKey[sampleKey(s.Name, s.Labels)] = s.Value
		snap.byName[s.Name] = append(snap.byName[s.Name], idx)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return snap, nil
}

// Scrape fetches url and parses the body as a text exposition payload.
// Non-200 statuses are errors; a nil client uses http.DefaultClient.
func Scrape(client *http.Client, url string) (*Snapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scraping %s: status %d", url, resp.StatusCode)
	}
	snap, err := ParseText(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("obs: scraping %s: %w", url, err)
	}
	return snap, nil
}

// Value returns the sample for name with exactly the given label set.
func (s *Snapshot) Value(name string, labels ...Label) (float64, bool) {
	if s == nil {
		return 0, false
	}
	v, ok := s.byKey[sampleKey(name, labels)]
	return v, ok
}

// SumByName sums every series of the family, whatever its labels — the
// natural read for counters split across label values (e.g. rejects by
// reason).
func (s *Snapshot) SumByName(name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	idxs, ok := s.byName[name]
	if !ok {
		return 0, false
	}
	total := 0.0
	for _, i := range idxs {
		total += s.Samples[i].Value
	}
	return total, true
}

// Quantile estimates the q-quantile (0 < q <= 1) of the histogram family
// name from its cumulative <name>_bucket series, restricted to series
// whose labels include every given label. It interpolates linearly inside
// the target bucket, the same estimate histogram_quantile gives. The
// second return is false when the histogram is absent or empty.
func (s *Snapshot) Quantile(name string, q float64, labels ...Label) (float64, bool) {
	if s == nil || q <= 0 || q > 1 {
		return 0, false
	}
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, i := range s.byName[name+"_bucket"] {
		smp := s.Samples[i]
		if !hasLabels(smp.Labels, labels) {
			continue
		}
		le, ok := labelValue(smp.Labels, "le")
		if !ok {
			continue
		}
		bound, err := parseSampleValue(le)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: bound, cum: smp.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	for i, b := range buckets {
		if b.cum < rank {
			continue
		}
		if math.IsInf(b.le, 1) {
			// Off the ladder: report the highest finite bound.
			if i > 0 {
				return buckets[i-1].le, true
			}
			return 0, false
		}
		lower, prevCum := 0.0, 0.0
		if i > 0 {
			lower, prevCum = buckets[i-1].le, buckets[i-1].cum
		}
		if b.cum == prevCum {
			return b.le, true
		}
		return lower + (b.le-lower)*(rank-prevCum)/(b.cum-prevCum), true
	}
	return buckets[len(buckets)-1].le, true
}

// parseSampleLine splits one exposition line into name, labels and value.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		close := strings.LastIndexByte(rest, '}')
		if close < i {
			return Sample{}, fmt.Errorf("obs: unterminated label block")
		}
		labels, err := parseLabelBlock(rest[i+1 : close])
		if err != nil {
			return Sample{}, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[close+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return Sample{}, fmt.Errorf("obs: no sample value")
		}
		s.Name, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	if !validName(s.Name, false) {
		return Sample{}, fmt.Errorf("obs: invalid metric name %q", s.Name)
	}
	// Exposition lines may carry a trailing timestamp; the value is the
	// first field.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := parseSampleValue(rest)
	if err != nil {
		return Sample{}, err
	}
	s.Value = v
	return s, nil
}

// parseSampleValue parses a sample float, honouring the exposition
// spellings of the special values.
func parseSampleValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabelBlock parses the inside of a {...} block into labels,
// unescaping values.
func parseLabelBlock(s string) ([]Label, error) {
	var labels []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("obs: invalid label pair in %q", s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("obs: unquoted label value for %q", key)
		}
		s = s[1:]
		var b strings.Builder
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i])
				}
				continue
			}
			if s[i] == '"' {
				break
			}
			b.WriteByte(s[i])
		}
		if i >= len(s) {
			return nil, fmt.Errorf("obs: unterminated label value for %q", key)
		}
		labels = append(labels, Label{Key: key, Value: b.String()})
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

// sampleKey is the lookup signature: name plus canonical label string.
func sampleKey(name string, labels []Label) string {
	return name + "{" + labelKey(labels) + "}"
}

// hasLabels reports whether have includes every label in want.
func hasLabels(have, want []Label) bool {
	for _, w := range want {
		v, ok := labelValue(have, w.Key)
		if !ok || v != w.Value {
			return false
		}
	}
	return true
}

// labelValue finds key in labels.
func labelValue(labels []Label, key string) (string, bool) {
	for _, l := range labels {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}
