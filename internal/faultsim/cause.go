package faultsim

import (
	"fmt"

	"cordial/internal/xrand"
)

// Cause is the physical root cause behind a bank-level failure pattern,
// following the paper's background discussion (§I, §II, §VI): sub-wordline
// driver (SWD) malfunctions take out a row and its physical neighbours and
// are beyond conventional ECC; TSV and micro-bump defects in the 3D stack
// corrupt many addresses that share the interconnect; column decoder/driver
// faults strike one column across rows; and weak cells produce isolated
// retention failures.
type Cause int

// Physical root causes.
const (
	// CauseSWD is a sub-wordline driver malfunction: rows under the failed
	// driver fail together — the dominant source of row-clustered
	// patterns.
	CauseSWD Cause = iota + 1
	// CauseTSV is a through-silicon-via fault: addresses striped across
	// the die that share the vertical interconnect fail irregularly.
	CauseTSV
	// CauseMicroBump is a degraded micro-bump joint (thermal compression
	// bonding defects), similar in effect to TSV faults.
	CauseMicroBump
	// CauseColumnDriver is a column decoder/driver fault: one column fails
	// across nearly all rows.
	CauseColumnDriver
	// CauseWeakCells is retention degradation of isolated cells.
	CauseWeakCells
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseSWD:
		return "sub-wordline driver"
	case CauseTSV:
		return "TSV fault"
	case CauseMicroBump:
		return "micro-bump defect"
	case CauseColumnDriver:
		return "column driver"
	case CauseWeakCells:
		return "weak cells"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// causeWeights gives, per pattern, the plausible root causes and their
// relative likelihoods. Single-row clusters are overwhelmingly SWD failures;
// double-row variants are SWD failures whose driver serves mirrored
// segments; scattered banks split between TSV and micro-bump interconnect
// faults plus weak cells; whole-column banks are column-driver faults.
var causeWeights = map[Pattern][]struct {
	cause  Cause
	weight float64
}{
	PatternSingleRow: {
		{CauseSWD, 0.85}, {CauseWeakCells, 0.15},
	},
	PatternDoubleRow: {
		{CauseSWD, 0.90}, {CauseMicroBump, 0.10},
	},
	PatternHalfTotalRow: {
		{CauseSWD, 0.95}, {CauseMicroBump, 0.05},
	},
	PatternScattered: {
		{CauseTSV, 0.45}, {CauseMicroBump, 0.30}, {CauseWeakCells, 0.25},
	},
	PatternWholeColumn: {
		{CauseColumnDriver, 0.90}, {CauseTSV, 0.10},
	},
}

// SampleCause draws a physical root cause consistent with the pattern.
func SampleCause(p Pattern, rng *xrand.RNG) Cause {
	entries, ok := causeWeights[p]
	if !ok {
		panic(fmt.Sprintf("faultsim: SampleCause(%d)", int(p)))
	}
	weights := make([]float64, len(entries))
	for i, e := range entries {
		weights[i] = e.weight
	}
	return entries[rng.WeightedChoice(weights)].cause
}

// PossibleCauses returns the root causes consistent with the pattern, most
// likely first.
func PossibleCauses(p Pattern) []Cause {
	entries, ok := causeWeights[p]
	if !ok {
		return nil
	}
	out := make([]Cause, len(entries))
	for i, e := range entries {
		out[i] = e.cause
	}
	return out
}
