package stream

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/wal"
)

// walJournal keeps the Engine field readable next to the wal package name.
type walJournal = wal.WAL

// DurabilityConfig configures the engine's WAL + snapshot layer.
//
// The durability contract: once Ingest returns nil the event is journaled
// (on stable storage under SyncAlways), and after a crash the engine
// rebuilds the exact same per-bank state by restoring the newest valid
// snapshot and replaying the journal suffix. Per-session LSN watermarks
// make the replay idempotent, so the reconstruction is bit-identical to an
// uninterrupted run — pinned by TestCrashRecoveryEquivalence.
type DurabilityConfig struct {
	// Dir is the journal + snapshot directory. Empty disables durability.
	Dir string
	// FS overrides the filesystem (fault-injection tests); nil means the
	// real one.
	FS wal.FS
	// Sync is the journal fsync policy (default SyncAlways).
	Sync wal.SyncPolicy
	// SyncInterval is the flush interval under SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes is the journal segment rotation size (0 = 8 MiB).
	SegmentBytes int64
	// NoGroupCommit disables WAL group commit. By default, concurrent
	// appends under SyncAlways coalesce into shared fsyncs (each ack still
	// waits for the fsync covering its record); set this to force one
	// fsync per append, trading throughput for simpler failure analysis.
	NoGroupCommit bool
	// SnapshotKeep is how many snapshot files to retain (0 = 3).
	SnapshotKeep int
}

func (d DurabilityConfig) keep() int {
	if d.SnapshotKeep < 1 {
		return 3
	}
	return d.SnapshotKeep
}

// DeadLetter is one quarantined event as written to the dead-letter file
// (one JSON object per line).
type DeadLetter struct {
	// Time is the event's timestamp.
	Time time.Time `json:"time"`
	// Bank and Addr identify where the event landed (Addr is the packed
	// physical address, reversible with hbm.Unpack).
	Bank string `json:"bank"`
	Addr uint64 `json:"addr"`
	Row  int    `json:"row"`
	// Class is the event's ECC class.
	Class string `json:"class"`
	// LSN is the event's journal position (0 without durability).
	LSN uint64 `json:"lsn,omitempty"`
	// Reason is the recovered panic value.
	Reason string `json:"reason"`
}

// quarantine counts a poisoned event (on its shard's counter) and
// preserves it in the dead-letter file. Runs outside the shard lock; file
// errors are swallowed (losing a dead-letter line must not take down
// processing).
func (e *Engine) quarantine(s *shard, d *DeadLetter) {
	s.quarantined.Inc()
	e.cfg.Logger.Warn("event quarantined",
		"bank", d.Bank, "row", d.Row, "class", d.Class, "reason", d.Reason)
	e.writeDeadLetter(d)
}

// writeDeadLetter appends one entry to the rotating dead-letter log, if
// one is configured.
func (e *Engine) writeDeadLetter(d *DeadLetter) {
	if e.dead == nil {
		return
	}
	line, err := json.Marshal(d)
	if err != nil {
		return
	}
	e.dead.write(line)
}

// ---- journal event records -------------------------------------------------

// eventRecordSize is the fixed WAL payload for one event: int64 unix-nanos,
// uint64 packed address, uint8 ECC class — byte-identical to the wire
// codec's record (mcelog.WireRecordSize), so a binary frame's payload is
// exactly the concatenation of the journal payloads it produces.
const eventRecordSize = mcelog.WireRecordSize

// encodeEventRecord packs one event into a journal payload.
func encodeEventRecord(ev mcelog.Event) []byte {
	return mcelog.AppendWireRecord(nil, ev)
}

// decodeEventRecord unpacks a journal payload.
func decodeEventRecord(p []byte) (mcelog.Event, error) {
	if len(p) != eventRecordSize {
		return mcelog.Event{}, fmt.Errorf("stream: event record of %d bytes, want %d", len(p), eventRecordSize)
	}
	return mcelog.DecodeWireRecord(p), nil
}

// ingestDurable journals the event, then enqueues it. The per-shard
// ingestMu holds both steps together so queue order equals LSN order
// within the shard — the invariant that lets replay reproduce exactly what
// the consumer saw. Under IngestDrop the capacity check happens BEFORE the
// append: an event shed at ingest must never be resurrected by replay.
func (e *Engine) ingestDurable(s *shard, ev mcelog.Event) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if e.cfg.Policy == IngestDrop && s.in.free() == 0 {
		s.dropped.Inc()
		return ErrDropped
	}
	lsn, err := e.wal.Append(encodeEventRecord(ev))
	if err != nil {
		// Not journaled: reject rather than accept an event that a crash
		// would silently forget. The caller decides whether to retry. The
		// failure also flips /readyz: a daemon that cannot persist intake
		// should be rotated out of traffic, not just return errors.
		e.walAppendErrs.Add(1)
		e.lastAppendErr.Store(err.Error())
		return fmt.Errorf("stream: journaling event: %w", err)
	}
	if last, _ := e.lastAppendErr.Load().(string); last != "" {
		e.lastAppendErr.Store("") // append works again: readiness restored
	}
	t0 := time.Now()
	s.in.push(queued{ev: ev, lsn: lsn})
	e.ingestWait.observe(time.Since(t0))
	e.metrics.ingested.Inc()
	return nil
}

// ingestBatchDurable is IngestBatch's journaled path. The invariant it
// must preserve is the same one ingestDurable's per-shard lock encodes:
// within a shard, queue order equals LSN order. Batches touch several
// shards, so the batch takes every touched shard's ingest lock in shard
// index order (all batch ingests lock ascending and singles lock one, so
// lock order is globally consistent — no deadlock) and holds them across
// journal-append + enqueue. Concurrent appends from other shards land in
// the same WAL group-commit window and share the fsync. Drop-policy
// admission runs BEFORE the append (shed events must never be journaled,
// or replay would resurrect them), truncating each shard group to its
// queue's free space — safe because the consumer only grows it and every
// producer for that shard is excluded by the ingest lock.
func (e *Engine) ingestBatchDurable(events []mcelog.Event, sc *batchScratch) (accepted, dropped int, err error) {
	for si := range sc.groups {
		if len(sc.groups[si]) == 0 {
			continue
		}
		e.shards[si].ingestMu.Lock()
		defer e.shards[si].ingestMu.Unlock()
	}
	if e.cfg.Policy == IngestDrop {
		for si, g := range sc.groups {
			if len(g) == 0 {
				continue
			}
			if free := e.shards[si].in.free(); len(g) > free {
				sc.drops[si] = len(g) - free
				dropped += sc.drops[si]
				sc.groups[si] = g[:free]
			}
		}
	}
	// Encode admitted events in arrival order, so a batch's LSN assignment
	// is exactly what the same events ingested one at a time would get.
	// Session snapshots embed LSN watermarks and the crash gate compares
	// them byte-for-byte across ingest shapes; arrival order also keeps
	// the assignment independent of the shard count, which recovery is
	// allowed to change. A shard's admitted events are the first
	// len(groups[si]) of its arrivals (admission trims the tail), tracked
	// by the pos cursor. Each queued entry temporarily holds its offset
	// within the batch; the WAL's first LSN is added after the append.
	total := 0
	for _, ev := range events {
		si := e.shardIndex(ev.Addr.BankKey())
		if sc.pos[si] >= len(sc.groups[si]) {
			continue // shed by admission
		}
		sc.groups[si][sc.pos[si]].lsn = uint64(total)
		sc.pos[si]++
		sc.enc = mcelog.AppendWireRecord(sc.enc, ev)
		total++
	}
	if total > 0 {
		first, aerr := e.wal.AppendBatch(sc.enc, eventRecordSize)
		if aerr != nil {
			// Nothing journaled, nothing queued: the caller must treat the
			// whole batch as rejected (shed events are not counted either —
			// their fate was never decided). Readiness flips as for singles.
			e.walAppendErrs.Add(1)
			e.lastAppendErr.Store(aerr.Error())
			return 0, 0, fmt.Errorf("stream: journaling batch: %w", aerr)
		}
		if last, _ := e.lastAppendErr.Load().(string); last != "" {
			e.lastAppendErr.Store("")
		}
		for si, g := range sc.groups {
			if len(g) == 0 {
				continue
			}
			for i := range g {
				g[i].lsn += first
			}
			t0 := time.Now()
			e.shards[si].in.pushBatch(g)
			e.ingestWait.observe(time.Since(t0))
			accepted += len(g)
		}
		e.metrics.ingested.Add(uint64(accepted))
	}
	for si, n := range sc.drops {
		if n > 0 {
			e.shards[si].dropped.Add(uint64(n))
		}
	}
	return accepted, dropped, nil
}

// ---- snapshot payload ------------------------------------------------------

// Engine snapshot payload layout (wrapped in wal's checksummed snapshot
// framing): magic, version, retention floor, the active model epoch
// (version + the journal position it took effect), session count, then
// per session the bank key, packed address, LSN watermark, pinned model
// version, engine bookkeeping (stats, distinct-UER and spared-row sets)
// and the strategy session's own state image.
//
// Version 2 added the model epoch header fields and the per-session
// pinned version; version-1 payloads still decode (sessions come back
// with version 0 = "whatever was active at boot").
const (
	engineSnapMagic   = "CENG"
	engineSnapVersion = 2
	maxSnapSessions   = 1 << 24
)

type snapEncoder struct{ b []byte }

func (e *snapEncoder) u8(v uint8) { e.b = append(e.b, v) }
func (e *snapEncoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *snapEncoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *snapEncoder) int(v int)    { e.u64(uint64(int64(v))) }
func (e *snapEncoder) time(t time.Time) {
	e.u64(uint64(t.Unix()))
	e.b = binary.LittleEndian.AppendUint32(e.b, uint32(t.Nanosecond()))
}
func (e *snapEncoder) ints(v []int) {
	e.int(len(v))
	for _, x := range v {
		e.int(x)
	}
}
func (e *snapEncoder) bytes(v []byte) {
	e.int(len(v))
	e.b = append(e.b, v...)
}

type snapDecoder struct {
	b   []byte
	off int
	err error
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("stream: decoding snapshot: "+format, args...)
	}
}
func (d *snapDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated at offset %d", d.off)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}
func (d *snapDecoder) u8() uint8 {
	if s := d.take(1); s != nil {
		return s[0]
	}
	return 0
}
func (d *snapDecoder) bool() bool { return d.u8() != 0 }
func (d *snapDecoder) u64() uint64 {
	if s := d.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}
func (d *snapDecoder) int() int { return int(int64(d.u64())) }
func (d *snapDecoder) time() time.Time {
	sec := int64(d.u64())
	var nsec uint32
	if s := d.take(4); s != nil {
		nsec = binary.LittleEndian.Uint32(s)
	}
	if d.err != nil || (sec == zeroTimeSec && nsec == 0) {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}
func (d *snapDecoder) count() int {
	n := d.int()
	if n < 0 || n > maxSnapSessions {
		d.fail("implausible count %d", n)
		return 0
	}
	return n
}
func (d *snapDecoder) ints() []int {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.int()
	}
	return out
}
func (d *snapDecoder) bytes() []byte { return d.take(d.count()) }

// zeroTimeSec encodes time.Time{} (whose UnixNano is undefined) as a
// distinguishable (sec, nsec) sentinel.
var zeroTimeSec = time.Time{}.Unix()

// encodeSnapshot walks every shard (locking each in turn) and serialises
// the sessions selected by filter (nil = all) plus the retention floor:
// the minimum across shards of the highest LSN folded into sessions.
// Per-session watermarks make a non-instantaneous multi-shard snapshot
// safe — any record applied after its shard was encoded simply replays on
// recovery. A filtered payload is a handoff export, not a checkpoint: it
// uses the same framing, but its floor only describes the exporting
// engine and is informational to the importer.
func (e *Engine) encodeSnapshot(filter func(bankKey uint64) bool) (payload []byte, floor uint64, err error) {
	type sessImage struct {
		key  uint64
		blob []byte
	}
	var images []sessImage
	floor = ^uint64(0)
	for _, s := range e.shards {
		s.mu.Lock()
		if s.appliedLSN < floor {
			floor = s.appliedLSN
		}
		for key, bs := range s.sessions {
			if filter != nil && !filter(key) {
				continue
			}
			ds, ok := bs.sess.(core.DurableSession)
			if !ok {
				s.mu.Unlock()
				return nil, 0, fmt.Errorf("stream: session %T is not durable", bs.sess)
			}
			blob, serr := ds.EncodeState()
			if serr != nil {
				s.mu.Unlock()
				return nil, 0, serr
			}
			se := &snapEncoder{}
			se.u64(key)
			se.u64(uint64(bs.bank.Pack()))
			se.u64(bs.lastLSN)
			se.u64(bs.version)
			st := &bs.stats
			se.int(st.Events)
			se.int(st.UEREvents)
			se.int(st.DistinctUERRows)
			se.bool(st.Classified)
			se.u8(uint8(st.Class))
			se.bool(st.BankSpared)
			se.int(st.RowsIsolated)
			se.int(st.Actions)
			se.time(st.FirstEvent)
			se.time(st.LastEvent)
			se.bool(st.Degraded)
			se.ints(sortedKeys(bs.uerRows))
			se.ints(sortedKeys(bs.spared))
			se.bytes(blob)
			images = append(images, sessImage{key: key, blob: se.b})
		}
		s.mu.Unlock()
	}
	if floor == ^uint64(0) {
		floor = 0
	}
	sort.Slice(images, func(i, j int) bool { return images[i].key < images[j].key })
	// The active epoch rides in the header so recovery can rebind new
	// sessions correctly even after the swap record itself is truncated.
	// Snapshot takes snapMu and SwapModel excludes it, so the header can
	// never name an epoch the floor disagrees with.
	active := e.activeEpoch()
	out := &snapEncoder{b: make([]byte, 0, 1024)}
	out.b = append(out.b, engineSnapMagic...)
	out.u8(engineSnapVersion)
	out.u64(floor)
	out.u64(active.version)
	out.u64(active.sinceLSN)
	out.int(len(images))
	for _, im := range images {
		out.bytes(im.blob)
	}
	return out.b, floor, nil
}

func sortedKeys(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// sessionImage is one decoded per-session record of an engine snapshot
// payload: everything needed to rebuild the bankSession, plus the LSN
// watermark in the SOURCE engine's journal namespace.
type sessionImage struct {
	key     uint64
	bank    hbm.BankAddress
	lastLSN uint64
	version uint64
	stats   SessionStats
	uerRows []int
	spared  []int
	blob    []byte
}

// snapshotHeader is the decoded fixed prefix of an engine snapshot
// payload: the retention floor plus the model epoch that was active when
// it was taken (both zero for version-1 payloads' epoch fields).
type snapshotHeader struct {
	floor         uint64
	activeVersion uint64
	activeSince   uint64
}

// decodeSnapshotSessions validates an engine snapshot payload and decodes
// its session images. The header's floor is the source engine's retention
// floor — informational for a restore, and the WAL-suffix start for a
// handoff.
func decodeSnapshotSessions(payload []byte) (hdr snapshotHeader, images []sessionImage, err error) {
	if len(payload) < len(engineSnapMagic)+1 {
		return hdr, nil, fmt.Errorf("stream: snapshot payload too short")
	}
	if string(payload[:4]) != engineSnapMagic {
		return hdr, nil, fmt.Errorf("stream: bad snapshot payload magic")
	}
	ver := payload[4]
	if ver != 1 && ver != engineSnapVersion {
		return hdr, nil, fmt.Errorf("stream: unsupported snapshot payload version %d", ver)
	}
	d := &snapDecoder{b: payload, off: 5}
	hdr.floor = d.u64()
	if ver >= 2 {
		hdr.activeVersion = d.u64()
		hdr.activeSince = d.u64()
	}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		body := d.bytes()
		if d.err != nil {
			break
		}
		sd := &snapDecoder{b: body}
		var im sessionImage
		im.key = sd.u64()
		im.bank = hbm.Unpack(sd.u64())
		im.lastLSN = sd.u64()
		if ver >= 2 {
			im.version = sd.u64()
		}
		st := &im.stats
		st.Events = sd.int()
		st.UEREvents = sd.int()
		st.DistinctUERRows = sd.int()
		st.Classified = sd.bool()
		st.Class = faultsim.Class(sd.u8())
		st.BankSpared = sd.bool()
		st.RowsIsolated = sd.int()
		st.Actions = sd.int()
		st.FirstEvent = sd.time()
		st.LastEvent = sd.time()
		st.Degraded = sd.bool()
		im.uerRows = sd.ints()
		im.spared = sd.ints()
		im.blob = sd.bytes()
		if sd.err != nil {
			return hdr, nil, sd.err
		}
		if sd.off != len(body) {
			return hdr, nil, fmt.Errorf("stream: %d trailing bytes in session image", len(body)-sd.off)
		}
		st.Bank = im.bank
		st.ModelVersion = im.version
		images = append(images, im)
	}
	return hdr, images, d.err
}

// buildSession reconstructs a live bankSession from a decoded image,
// including its strategy session and feature-state footprint.
func buildSession(ds core.DurableStrategy, im sessionImage) (*bankSession, error) {
	sess, err := ds.RestoreSession(im.bank, im.blob)
	if err != nil {
		return nil, fmt.Errorf("stream: restoring session for bank %s: %w", im.bank.String(), err)
	}
	bs := &bankSession{
		bank:    im.bank,
		sess:    sess,
		stats:   im.stats,
		uerRows: make(map[int]struct{}, len(im.uerRows)),
		spared:  make(map[int]struct{}, len(im.spared)),
		lastLSN: im.lastLSN,
		version: im.version,
	}
	for _, r := range im.uerRows {
		bs.uerRows[r] = struct{}{}
	}
	for _, r := range im.spared {
		bs.spared[r] = struct{}{}
	}
	if is, ok := sess.(core.InstrumentedSession); ok {
		fp, released := is.StateFootprint()
		bs.stats.StateBytes = fp.ApproxBytes
		bs.stats.StateRows = fp.TrackedRows
		bs.stats.StateReleased = released
	}
	return bs, nil
}

// installSession adds a rebuilt session to its shard's map and folds its
// footprint into the shard aggregates. Callers must hold s.mu (or be on
// the pre-consumer boot path, where no one else can touch the shard).
func (s *shard) installSession(key uint64, bs *bankSession) {
	s.sessions[key] = bs
	s.stateBytes += int64(bs.stats.StateBytes)
	s.stateRows += int64(bs.stats.StateRows)
	if bs.stats.StateReleased {
		s.released++
	}
	if bs.stats.Degraded {
		s.degraded++
	}
	if bs.lastLSN > s.appliedLSN {
		s.appliedLSN = bs.lastLSN
	}
}

// restoreSnapshot rebuilds every session from an engine snapshot payload,
// re-seeding the model epoch table from the header and rebinding each
// session to its pinned version. A version the model source cannot resolve
// is a hard error — serving a bank under the wrong model would silently
// diverge from the pre-crash verdict stream, which is worse than refusing
// to boot. Called during New, before the consumers start.
func (e *Engine) restoreSnapshot(payload []byte) error {
	hdr, images, err := decodeSnapshotSessions(payload)
	if err != nil {
		return err
	}
	if hdr.activeVersion != 0 {
		strat, serr := e.strategyFor(hdr.activeVersion)
		if serr != nil {
			return fmt.Errorf("stream: resolving snapshot's active model version %d: %w", hdr.activeVersion, serr)
		}
		e.seedEpochs(modelEpoch{version: hdr.activeVersion, sinceLSN: hdr.activeSince, strategy: strat})
	}
	for _, im := range images {
		ds, derr := e.resolveDurable(im.version)
		if derr != nil {
			return derr
		}
		bs, berr := buildSession(ds, im)
		if berr != nil {
			return berr
		}
		e.shardFor(im.key).installSession(im.key, bs)
		e.recoveredSessions++
	}
	return nil
}

// ---- recovery and snapshotting --------------------------------------------

// recoverDurable restores the newest decodable snapshot (walking past
// corrupt ones — a bad snapshot costs replay time, never the recovery),
// opens the journal (repairing any torn tail), and replays the suffix
// through the normal apply path. Per-session watermarks skip records the
// snapshot already covers; actions re-derived by the replayed suffix are
// emitted again (at-least-once), deduplicated per bank by the restored
// spared-row state.
func (e *Engine) recoverDurable() error {
	dcfg := e.cfg.Durability
	fs := dcfg.FS
	if fs == nil {
		fs = wal.OSFS
	}
	// The boot epoch table, restored before each fallback attempt so a
	// half-restored snapshot cannot leave its header's epoch behind.
	bootEpochs := e.epochList()

	snaps, err := wal.ListSnapshots(fs, dcfg.Dir)
	if err != nil {
		return err
	}
	for _, si := range snaps {
		seq, payload, rerr := wal.ReadSnapshot(fs, si.Path)
		if rerr != nil {
			continue // corrupt file: fall back to the previous snapshot
		}
		if rerr = e.restoreSnapshot(payload); rerr != nil {
			// Undecodable payload (e.g. version skew): also fall back, but
			// drop any partially restored sessions first.
			e.resetSessions()
			e.epochs.Store(bootEpochs)
			continue
		}
		e.snapSeq = seq
		break
	}

	w, err := wal.Open(dcfg.Dir, wal.Options{
		FS:           fs,
		SegmentBytes: dcfg.SegmentBytes,
		Sync:         dcfg.Sync,
		SyncInterval: dcfg.SyncInterval,
		GroupCommit:  !dcfg.NoGroupCommit,
		Metrics:      e.cfg.Metrics,
	})
	if err != nil {
		return err
	}
	e.wal = w

	var replayed uint64
	err = w.Replay(func(lsn uint64, payload []byte) error {
		if version, isSwap := decodeSwapRecord(payload); isSwap {
			// Re-install the epoch at its original position so sessions
			// created later in the replay bind the same version they bound
			// live. Idempotent against the snapshot header's seed. An
			// unresolvable version fails the boot loudly, same as restore.
			strat, serr := e.strategyFor(version)
			if serr != nil {
				return fmt.Errorf("stream: resolving replayed model swap to version %d: %w", version, serr)
			}
			e.installEpoch(modelEpoch{version: version, sinceLSN: lsn, strategy: strat})
			return nil
		}
		ev, derr := decodeEventRecord(payload)
		if derr != nil {
			return derr
		}
		replayed++
		s := e.shardFor(ev.Addr.BankKey())
		out, dead := e.apply(s, queued{ev: ev, lsn: lsn})
		if dead != nil {
			e.quarantine(s, dead)
		}
		for _, a := range out {
			e.emit(a)
		}
		return nil
	})
	if err != nil {
		w.Close()
		e.wal = nil
		return fmt.Errorf("stream: replaying journal: %w", err)
	}
	e.recoveredEvents = replayed
	e.metrics.recoveredSessions.Set(float64(e.recoveredSessions))
	e.metrics.recoveredEvents.Set(float64(replayed))
	return nil
}

// resetSessions drops all restored sessions and shard bookkeeping (used
// when a snapshot payload fails mid-restore before falling back).
func (e *Engine) resetSessions() {
	for _, s := range e.shards {
		s.sessions = make(map[uint64]*bankSession)
		s.appliedLSN = 0
		s.stateBytes, s.stateRows = 0, 0
		s.released, s.degraded = 0, 0
	}
	e.recoveredSessions = 0
}

// ErrNotDurable is returned by Snapshot when no WAL directory was
// configured.
var ErrNotDurable = errors.New("stream: durability not configured")

// Snapshot writes a checkpoint of every session to the durability
// directory, then retires journal segments wholly covered by it and prunes
// old snapshot files. Concurrent ingest and processing continue throughout;
// Drain first for a checkpoint that covers everything accepted so far.
// Returns the snapshot's sequence number.
func (e *Engine) Snapshot() (uint64, error) {
	if e.wal == nil {
		return 0, ErrNotDurable
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	t0 := time.Now()
	payload, floor, err := e.encodeSnapshot(nil)
	if err != nil {
		e.metrics.snapshotErrors.Inc()
		return 0, err
	}
	seq := e.wal.NextLSN()
	if seq <= e.snapSeq {
		seq = e.snapSeq + 1
	}
	fs := e.cfg.Durability.FS
	if fs == nil {
		fs = wal.OSFS
	}
	if _, err := wal.WriteSnapshot(fs, e.cfg.Durability.Dir, seq, payload); err != nil {
		e.metrics.snapshotErrors.Inc()
		return 0, err
	}
	e.snapSeq = seq
	e.metrics.snapshots.Inc()
	e.metrics.snapshotBytes.Set(float64(len(payload)))
	// Retention is best-effort — a failure leaves extra files, not broken
	// recovery — but it must never be silent: a retention step that keeps
	// failing grows the directory until the disk fills, so each failure is
	// logged and counted (cordial_retention_errors_total, and
	// EngineStats.RetentionErrors on /statsz).
	if terr := e.wal.TruncateBefore(floor + 1); terr != nil {
		e.metrics.retentionErrors.Inc()
		e.cfg.Logger.Warn("snapshot retention failed",
			"stage", "truncate", "floor", floor, "err", terr)
	}
	if perr := wal.PruneSnapshots(fs, e.cfg.Durability.Dir, e.cfg.Durability.keep()); perr != nil {
		e.metrics.retentionErrors.Inc()
		e.cfg.Logger.Warn("snapshot retention failed",
			"stage", "prune", "keep", e.cfg.Durability.keep(), "err", perr)
	}
	e.metrics.snapshotDur.Observe(time.Since(t0).Seconds())
	return seq, nil
}
