package stream

import (
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/hbm"
	"cordial/internal/trace"
)

// TestEngineFeatureStateStats pins the bounded-memory accounting: per-bank
// snapshots expose the feature state's footprint, spared banks show it
// released, and the engine aggregate equals the sum over live sessions.
func TestEngineFeatureStateStats(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	pipe, err := trainedPipeline()
	if err != nil {
		t.Fatal(err)
	}
	strategy := &core.CordialStrategy{Pipeline: pipe, Geometry: hbm.DefaultGeometry}

	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = 30
	spec.BenignBanks = 10
	spec.Seed = 13
	fleet, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Log.Sort()

	engine, err := New(Config{Strategy: strategy, Shards: 3, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	go func() {
		for range engine.Actions() {
		}
	}()
	if _, err := engine.IngestLog(fleet.Log); err != nil {
		t.Fatal(err)
	}
	if err := engine.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	es := engine.Stats()
	if es.FeatureStateBytes <= 0 || es.FeatureStateRows <= 0 {
		t.Fatalf("no feature state accounted: %d bytes, %d rows", es.FeatureStateBytes, es.FeatureStateRows)
	}
	if len(es.ShardStateBytes) != es.Shards {
		t.Fatalf("per-shard breakdown has %d entries, want %d", len(es.ShardStateBytes), es.Shards)
	}
	var shardSum int64
	for _, b := range es.ShardStateBytes {
		shardSum += b
	}
	if shardSum != es.FeatureStateBytes {
		t.Errorf("shard breakdown sums to %d, aggregate %d", shardSum, es.FeatureStateBytes)
	}

	// Cross-check the aggregate against the per-session snapshots and the
	// release contract for spared banks.
	var sessBytes, sessRows int64
	released := 0
	for key := range fleet.Log.GroupByBank() {
		st, ok := engine.Session(hbm.Unpack(key))
		if !ok {
			t.Fatalf("no session for bank %x", key)
		}
		sessBytes += int64(st.StateBytes)
		sessRows += int64(st.StateRows)
		if st.StateReleased {
			released++
		}
		if st.BankSpared {
			if !st.StateReleased {
				t.Errorf("bank %x spared but state not released", key)
			}
			if st.StateBytes != 0 || st.StateRows != 0 {
				t.Errorf("bank %x spared but retains %d bytes / %d rows", key, st.StateBytes, st.StateRows)
			}
		} else if st.StateBytes <= 0 {
			t.Errorf("live bank %x reports no feature state", key)
		}
	}
	if sessBytes != es.FeatureStateBytes || sessRows != es.FeatureStateRows {
		t.Errorf("aggregate %d bytes / %d rows, per-session sum %d / %d",
			es.FeatureStateBytes, es.FeatureStateRows, sessBytes, sessRows)
	}
	if es.SessionsReleased != released {
		t.Errorf("SessionsReleased = %d, per-session count %d", es.SessionsReleased, released)
	}
	if released == 0 {
		t.Error("no session released state (no bank spared in test fleet?)")
	}
}
