package mltree

// Flat trees: fitted pointer trees recompiled into a struct-of-arrays
// layout for inference. Pointer navigation chases one heap node per level;
// the flat form keeps features, thresholds and child indices in four dense
// slices, so a descent touches a handful of cache lines and the branch
// predictor sees one tight loop. Compilation preserves the exact comparison
// sequence (same feature, same threshold, same ≤ test), so flat predictions
// are bit-identical to pointer navigation; equivalence_test.go asserts it.
//
// Flat trees are a derived, in-memory artifact: serialization still writes
// the pointer form, and loading recompiles (see serialize.go), which keeps
// the on-disk format unchanged.

// flatTree is one or more compiled trees sharing node arrays. Node 0 is the
// first tree's root; leaves carry feature == -1. Leaf payloads live in
// value (regression/boosting) and probs (classification); probs rows alias
// the fitted tree's leaf vectors rather than copying them.
type flatTree struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
	value     []float64
	probs     [][]float64
}

// flatLeaf marks a leaf node in the feature array.
const flatLeaf = int32(-1)

// compileTree flattens a single fitted tree, root at node 0.
func compileTree(root *treeNode) *flatTree {
	ft := &flatTree{}
	ft.add(root)
	return ft
}

// flatEnsemble is a boosting chain's trees compiled back-to-back into one
// node arena, navigated from per-tree root indices.
type flatEnsemble struct {
	flatTree
	roots []int32
}

// compileEnsemble flattens a tree sequence into one arena.
func compileEnsemble(trees []*treeNode) *flatEnsemble {
	fe := &flatEnsemble{roots: make([]int32, len(trees))}
	for i, t := range trees {
		fe.roots[i] = fe.add(t)
	}
	return fe
}

// add appends n's subtree in preorder and returns its node index.
func (ft *flatTree) add(n *treeNode) int32 {
	idx := int32(len(ft.feature))
	ft.feature = append(ft.feature, flatLeaf)
	ft.threshold = append(ft.threshold, n.Threshold)
	ft.left = append(ft.left, 0)
	ft.right = append(ft.right, 0)
	ft.value = append(ft.value, n.Value)
	ft.probs = append(ft.probs, n.Probs)
	if n.isLeaf() {
		return idx
	}
	ft.feature[idx] = int32(n.Feature)
	l := ft.add(n.Left)
	r := ft.add(n.Right)
	ft.left[idx] = l
	ft.right[idx] = r
	return idx
}

// leafFrom descends from node root and returns the leaf index x lands in.
func (ft *flatTree) leafFrom(root int32, x []float64) int32 {
	i := root
	for {
		f := ft.feature[i]
		if f == flatLeaf {
			return i
		}
		if x[f] <= ft.threshold[i] {
			i = ft.left[i]
		} else {
			i = ft.right[i]
		}
	}
}

// leafProbs returns the class distribution of the leaf x lands in (single
// tree, root at 0). The returned slice aliases the fitted tree's leaf.
func (ft *flatTree) leafProbs(x []float64) []float64 {
	return ft.probs[ft.leafFrom(0, x)]
}

// margin accumulates lr × leaf-value over every tree of the chain, in tree
// order — the same floating-point sequence booster.raw used on the pointer
// form.
func (fe *flatEnsemble) margin(bias, lr float64, x []float64) float64 {
	s := bias
	for _, r := range fe.roots {
		s += lr * fe.value[fe.leafFrom(r, x)]
	}
	return s
}
