package core

import (
	"fmt"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/mltree"
	"cordial/internal/xrand"
)

// Calchas is a learned in-row baseline modelled after the hierarchical HBM
// failure predictor the paper compares against conceptually (§I, [5]): when
// a row shows precursor errors, a classifier over in-row history plus
// bank-level context decides whether the row will develop a UER, and the row
// is isolated if so. Like every in-row method its coverage is bounded by the
// non-sudden row ratio — the paper's central critique — but it is a stronger
// comparator than unconditionally isolating every precursor row.
type Calchas struct {
	// Params tunes the Random Forest behind the predictor.
	Params ModelParams
	// Threshold is the positive-probability cutoff (default 0.5).
	Threshold float64
	// Seed drives model randomness.
	Seed uint64

	model mltree.Classifier
}

var _ Strategy = (*Calchas)(nil)

// Name identifies the baseline in reports.
func (c *Calchas) Name() string { return "Calchas-lite" }

// rowInstances generates training samples from one bank: one instance per
// first precursor (CE/UEO) observation of a row, labelled by whether that
// row later logs a UER.
func rowInstances(bf *faultsim.BankFault) (vecs [][]float64, labels []int) {
	uerRows := make(map[int]time.Time, len(bf.UERRows))
	for i, row := range bf.UERRows {
		uerRows[row] = bf.UERTimes[i]
	}
	seen := make(map[int]bool)
	for i, e := range bf.Events {
		if e.Class == ecc.ClassUER || seen[e.Addr.Row] {
			continue
		}
		seen[e.Addr.Row] = true
		vecs = append(vecs, features.RowVector(bf.Events[:i+1], e.Addr.Row, e.Time))
		label := 0
		if t, ok := uerRows[e.Addr.Row]; ok && t.After(e.Time) {
			label = 1
		}
		labels = append(labels, label)
	}
	return vecs, labels
}

// Fit trains the row predictor on ground-truth labelled banks.
func (c *Calchas) Fit(banks []*faultsim.BankFault) error {
	ds := &mltree.Dataset{Names: features.RowFeatureNames()}
	for _, bf := range banks {
		vecs, labels := rowInstances(bf)
		ds.Features = append(ds.Features, vecs...)
		ds.Labels = append(ds.Labels, labels...)
	}
	if ds.NumSamples() == 0 {
		return fmt.Errorf("core: no precursor rows to train Calchas-lite")
	}
	pos := 0
	for _, l := range ds.Labels {
		pos += l
	}
	if pos == 0 || pos == ds.NumSamples() {
		return fmt.Errorf("core: Calchas-lite training labels are degenerate (%d/%d positive)", pos, ds.NumSamples())
	}
	model, err := NewModel(RandomForest, c.Params, c.Seed)
	if err != nil {
		return err
	}
	if err := model.Fit(ds); err != nil {
		return fmt.Errorf("core: fitting Calchas-lite: %w", err)
	}
	c.model = model
	if c.Threshold <= 0 {
		// Same held-out calibration the Cordial pipeline uses: the
		// positive class (precursor row that develops a UER) is rare, so
		// a fixed 0.5 cutoff would rarely fire.
		calTrain, calVal, err := ds.StratifiedSplit(xrand.New(c.Seed+1), 0.75)
		if err != nil {
			return err
		}
		cm, err := NewModel(RandomForest, c.Params, c.Seed+2)
		if err != nil {
			return err
		}
		if err := cm.Fit(calTrain); err != nil {
			return err
		}
		c.Threshold = calibrateThreshold(cm, calVal)
	}
	return nil
}

// Fitted reports whether Fit has run.
func (c *Calchas) Fitted() bool { return c.model != nil }

// NewSession returns per-bank state.
func (c *Calchas) NewSession(bank hbm.BankAddress) Session {
	return &calchasSession{strategy: c}
}

type calchasSession struct {
	strategy *Calchas
	events   []mcelog.Event
	decided  map[int]bool
}

func (s *calchasSession) OnEvent(e mcelog.Event) Decision {
	s.events = append(s.events, e)
	if e.Class == ecc.ClassUER || s.strategy.model == nil {
		return Decision{}
	}
	if s.decided == nil {
		s.decided = make(map[int]bool)
	}
	if s.decided[e.Addr.Row] {
		return Decision{}
	}
	s.decided[e.Addr.Row] = true
	vec := features.RowVector(s.events, e.Addr.Row, e.Time)
	probs := s.strategy.model.PredictProba(vec)
	classes := s.strategy.model.Classes()
	for i, class := range classes {
		if class == 1 && probs[i] >= s.strategy.Threshold {
			return Decision{IsolateRows: []int{e.Addr.Row}}
		}
	}
	return Decision{}
}
