package features

import (
	"bytes"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/mcelog"
	"cordial/internal/xrand"
)

// assertStateEquivalent checks that two states produce bit-identical
// vectors (the codec's contract) and matching bookkeeping.
func assertStateEquivalent(t *testing.T, want, got *BankState, anchor int, now time.Time) {
	t.Helper()
	if want.Events() != got.Events() {
		t.Fatalf("events %d vs %d", want.Events(), got.Events())
	}
	wp, werr := want.PatternVector()
	gp, gerr := got.PatternVector()
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("pattern error mismatch: %v vs %v", werr, gerr)
	}
	if werr == nil && !vecBitsEqual(wp, gp) {
		t.Fatalf("pattern vector diverged:\noriginal %v\nrestored %v", wp, gp)
	}
	for b := 0; b < want.spec.NumBlocks(); b++ {
		wb, err1 := want.BlockVector(anchor, b, now)
		gb, err2 := got.BlockVector(anchor, b, now)
		if err1 != nil || err2 != nil {
			t.Fatalf("block %d errors: %v / %v", b, err1, err2)
		}
		if !vecBitsEqual(wb, gb) {
			t.Fatalf("block %d vector diverged:\noriginal %v\nrestored %v", b, wb, gb)
		}
	}
}

// TestBankStateCodecResume is the core durability property: marshal at an
// arbitrary point, decode, feed the identical suffix to both states — every
// vector stays bit-identical all the way.
func TestBankStateCodecResume(t *testing.T) {
	r := xrand.New(97)
	for trial := 0; trial < 15; trial++ {
		n := 5 + r.Intn(60)
		events := make([]mcelog.Event, 0, n)
		now := t0
		for i := 0; i < n; i++ {
			if r.Bool(0.6) {
				now = now.Add(time.Duration(r.Intn(7)) * 11 * time.Minute)
			}
			row := 100 + r.Intn(80)
			class := []ecc.Class{ecc.ClassCE, ecc.ClassCE, ecc.ClassUEO, ecc.ClassUER}[r.Intn(4)]
			events = append(events, mcelog.Event{Time: now, Addr: hbmAddr(row), Class: class})
		}
		cfg := PatternConfig{UERBudget: 1 + r.Intn(4)}
		spec := BlockSpec{WindowRadius: 8, BlockSize: 4}
		cut := r.Intn(n + 1)

		orig, err := NewBankState(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		anchor := 100
		for _, e := range events[:cut] {
			orig.Observe(e)
			if e.Class == ecc.ClassUER {
				anchor = e.Addr.Row
			}
		}
		blob, err := orig.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := UnmarshalBankState(blob)
		if err != nil {
			t.Fatalf("trial %d cut %d: %v", trial, cut, err)
		}
		if restored.Config() != cfg || restored.Spec() != spec {
			t.Fatalf("config/spec lost: %+v %+v", restored.Config(), restored.Spec())
		}
		assertStateEquivalent(t, orig, restored, anchor, now.Add(time.Hour))

		// The restored state must continue exactly like the original.
		for j, e := range events[cut:] {
			orig.Observe(e)
			restored.Observe(e)
			if e.Class == ecc.ClassUER {
				anchor = e.Addr.Row
			}
			assertStateEquivalent(t, orig, restored, anchor, e.Time.Add(30*time.Minute))
			_ = j
		}

		// Determinism: both states now encode to identical bytes.
		b1, _ := orig.MarshalBinary()
		b2, _ := restored.MarshalBinary()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("trial %d: re-encoded states differ", trial)
		}
	}
}

func TestBankStateCodecFreshState(t *testing.T) {
	st, err := NewBankState(DefaultPatternConfig(), BlockSpec{WindowRadius: 8, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBankState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.PatternVector(); err == nil {
		t.Error("restored fresh state has a pattern vector before any UER")
	}
	assertStateEquivalent(t, st, got, 0, t0)
	if got.lastTime != (time.Time{}) || !got.cutoff.IsZero() {
		t.Error("zero times did not survive the round trip")
	}
}

// TestBankStateCodecCorruptInput: truncations and bit flips error out
// cleanly — never panic, never return an insane state.
func TestBankStateCodecCorruptInput(t *testing.T) {
	st, err := NewBankState(DefaultPatternConfig(), BlockSpec{WindowRadius: 8, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		class := ecc.ClassCE
		if i%7 == 0 {
			class = ecc.ClassUER
		}
		st.Observe(mcelog.Event{Time: t0.Add(time.Duration(i) * time.Minute), Addr: hbmAddr(200 + i%16), Class: class})
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBankState(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	// Every truncation must fail (the format has no optional tail).
	for n := 0; n < len(blob); n++ {
		if _, err := UnmarshalBankState(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage is rejected too.
	if _, err := UnmarshalBankState(append(append([]byte(nil), blob...), 0xAB)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Flipping the version or magic fails.
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := UnmarshalBankState(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), blob...)
	bad[4] = 99
	if _, err := UnmarshalBankState(bad); err == nil {
		t.Error("unknown version accepted")
	}
	// Random bit flips: decode may succeed (flips in float payloads are
	// legal values) but must never panic; a length-field flip must error.
	r := xrand.New(5)
	for trial := 0; trial < 200; trial++ {
		bad = append([]byte(nil), blob...)
		bad[5+r.Intn(len(bad)-5)] ^= byte(1 << r.Intn(8))
		_, _ = UnmarshalBankState(bad)
	}
}
