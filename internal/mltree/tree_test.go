package mltree

import (
	"math"
	"testing"
	"testing/quick"

	"cordial/internal/xrand"
)

func TestTreeLearnsSeparableBlobs(t *testing.T) {
	train := blobs(1, 3, 150, 4, 20, 1)
	test := blobs(2, 3, 50, 4, 20, 1)
	tree := NewTree(TreeConfig{MaxDepth: 8}, nil)
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, test); acc < 0.95 {
		t.Fatalf("tree accuracy on separable blobs = %.3f", acc)
	}
}

func TestTreeLearnsXOR(t *testing.T) {
	// XOR is not linearly separable; a depth-2 tree handles it.
	r := xrand.New(7)
	ds := &Dataset{}
	for i := 0; i < 400; i++ {
		a, b := r.Bool(0.5), r.Bool(0.5)
		x := []float64{bTo(a) + r.Normal(0, 0.1), bTo(b) + r.Normal(0, 0.1)}
		label := 0
		if a != b {
			label = 1
		}
		ds.Features = append(ds.Features, x)
		ds.Labels = append(ds.Labels, label)
	}
	tree := NewTree(TreeConfig{MaxDepth: 3}, nil)
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, ds); acc < 0.95 {
		t.Fatalf("tree accuracy on XOR = %.3f", acc)
	}
}

func bTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	train := blobs(3, 4, 100, 3, 5, 2)
	for _, depth := range []int{1, 2, 5} {
		tree := NewTree(TreeConfig{MaxDepth: depth}, nil)
		if err := tree.Fit(train); err != nil {
			t.Fatal(err)
		}
		if got := tree.Depth(); got > depth {
			t.Fatalf("tree depth %d exceeds cap %d", got, depth)
		}
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	train := blobs(4, 2, 100, 2, 10, 3)
	tree := NewTree(TreeConfig{MinSamplesLeaf: 30}, nil)
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	// With 200 samples and ≥30 per leaf there can be at most 6 leaves.
	if got := tree.NumLeaves(); got > 6 {
		t.Fatalf("tree has %d leaves with MinSamplesLeaf=30", got)
	}
}

func TestTreeEntropyCriterion(t *testing.T) {
	train := blobs(5, 3, 100, 3, 15, 1)
	tree := NewTree(TreeConfig{MaxDepth: 8, Criterion: Entropy}, nil)
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, train); acc < 0.95 {
		t.Fatalf("entropy tree accuracy = %.3f", acc)
	}
}

func TestTreePureDataYieldsLeaf(t *testing.T) {
	ds := &Dataset{
		Features: [][]float64{{1, 2}, {3, 4}, {5, 6}},
		Labels:   []int{9, 9, 9},
	}
	tree := NewTree(TreeConfig{}, nil)
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 || tree.NumLeaves() != 1 {
		t.Fatalf("pure-data tree depth=%d leaves=%d", tree.Depth(), tree.NumLeaves())
	}
	probs := tree.PredictProba([]float64{0, 0})
	if len(probs) != 1 || probs[0] != 1 {
		t.Fatalf("pure-data probs = %v", probs)
	}
}

func TestTreeConstantFeatures(t *testing.T) {
	// All features identical: no split possible, majority leaf.
	ds := &Dataset{
		Features: [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}},
		Labels:   []int{0, 0, 0, 1},
	}
	tree := NewTree(TreeConfig{}, nil)
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Fatalf("constant-feature tree has %d leaves", tree.NumLeaves())
	}
	if got := Predict(tree, []float64{1, 1}); got != 0 {
		t.Fatalf("majority prediction = %d", got)
	}
}

func TestTreeDeterministicWithoutRNG(t *testing.T) {
	train := blobs(6, 3, 80, 4, 10, 2)
	fit := func() *Tree {
		tree := NewTree(TreeConfig{MaxDepth: 6}, nil)
		if err := tree.Fit(train); err != nil {
			t.Fatal(err)
		}
		return tree
	}
	a, b := fit(), fit()
	probe := blobs(7, 3, 20, 4, 10, 2)
	for _, x := range probe.Features {
		pa, pb := a.PredictProba(x), b.PredictProba(x)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("tree fit not deterministic")
			}
		}
	}
}

func TestTreeProbaSumsToOneProperty(t *testing.T) {
	train := blobs(8, 3, 60, 3, 10, 2)
	tree := NewTree(TreeConfig{MaxDepth: 6}, nil)
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		probs := tree.PredictProba([]float64{a, b, c})
		sum := 0.0
		for _, p := range probs {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRejectsInvalidDataset(t *testing.T) {
	tree := NewTree(TreeConfig{}, nil)
	if err := tree.Fit(&Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" {
		t.Fatal("criterion strings wrong")
	}
}

func BenchmarkTreeFit(b *testing.B) {
	train := blobs(1, 3, 200, 10, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := NewTree(TreeConfig{MaxDepth: 8}, nil)
		if err := tree.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreePredict(b *testing.B) {
	train := blobs(1, 3, 200, 10, 10, 3)
	tree := NewTree(TreeConfig{MaxDepth: 8}, nil)
	if err := tree.Fit(train); err != nil {
		b.Fatal(err)
	}
	x := train.Features[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tree.PredictProba(x)
	}
}
