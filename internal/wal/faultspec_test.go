package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// TestParseFaultSpec covers the grammar and its round trip.
func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in   string
		want FaultSpec
		str  string
	}{
		{"", FaultSpec{WriteBudget: -1, SyncsLeft: -1}, ""},
		{"sync-fail", FaultSpec{WriteBudget: -1, SyncsLeft: 0}, "sync-fail"},
		{"sync-fail=3", FaultSpec{WriteBudget: -1, SyncsLeft: 3}, "sync-fail=3"},
		{"write-budget=4096", FaultSpec{WriteBudget: 4096, SyncsLeft: -1}, "write-budget=4096"},
		{"open-fail", FaultSpec{WriteBudget: -1, SyncsLeft: -1, FailOpens: true}, "open-fail"},
		{"sync-fail, write-budget=10, open-fail", FaultSpec{WriteBudget: 10, SyncsLeft: 0, FailOpens: true}, "sync-fail,write-budget=10,open-fail"},
	}
	for _, tc := range cases {
		got, err := ParseFaultSpec(tc.in)
		if err != nil {
			t.Errorf("ParseFaultSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseFaultSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if got.String() != tc.str {
			t.Errorf("ParseFaultSpec(%q).String() = %q, want %q", tc.in, got.String(), tc.str)
		}
		if want := tc.in != ""; got.Armed() != want {
			t.Errorf("ParseFaultSpec(%q).Armed() = %v, want %v", tc.in, got.Armed(), want)
		}
	}

	for _, bad := range []string{
		"sync-fail=-1", "sync-fail=x", "write-budget", "write-budget=-5",
		"open-fail=yes", "bogus", "sync-fail,,open-fail",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q): want error, got nil", bad)
		}
	}
}

// TestFaultSpecApplyDisarm drives a FaultFS through the arm/disarm cycle
// the chaos harness uses: disarmed pass-through, armed faults firing,
// disarmed pass-through again.
func TestFaultSpecApplyDisarm(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS)

	write := func() error {
		f, err := ffs.OpenFile(filepath.Join(dir, "probe"), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.Write([]byte("0123456789")); err != nil {
			return err
		}
		return f.Sync()
	}

	if err := write(); err != nil {
		t.Fatalf("disarmed write: %v", err)
	}

	spec, err := ParseFaultSpec("sync-fail")
	if err != nil {
		t.Fatal(err)
	}
	spec.Apply(ffs)
	if err := write(); err == nil {
		t.Fatal("armed sync-fail: want error, got nil")
	}
	if _, syncs := ffs.Faults(); syncs == 0 {
		t.Error("sync fault did not count")
	}

	ffs.Disarm()
	if err := write(); err != nil {
		t.Fatalf("re-disarmed write: %v", err)
	}
}
