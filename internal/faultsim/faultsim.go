// Package faultsim synthesises per-bank HBM error processes with the
// bank-level failure patterns the Cordial paper reports (Figure 3): single-row
// clustering, double-row clustering, half-total-row clustering, scattered,
// and whole-column. Because the paper's industrial dataset is proprietary,
// this simulator is the data substrate for the whole reproduction; its knobs
// are calibrated so the generated logs reproduce the published marginals —
// the pattern mix of Figure 3(b), the row-level sudden-UER ratio of Table I,
// and the 128-row locality peak of Figure 4.
//
// A faulty bank is generated in two steps: a spatial draw (which rows/columns
// carry uncorrectable errors, per the pattern geometry) and a temporal draw
// (when each error surfaces, whether precursor CEs/UEOs appear before the
// first UER, and how errors propagate outward through a cluster over time).
package faultsim

import (
	"fmt"
	"math"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/xrand"
)

// Pattern enumerates the bank-level failure patterns of Figure 3(a).
type Pattern int

// Failure patterns. HalfTotalRow is the variant of double-row clustering in
// which the two clusters sit exactly half the bank apart; WholeColumn is the
// variant of the scattered pattern in which errors cover nearly all rows of
// one column.
const (
	PatternSingleRow Pattern = iota + 1
	PatternDoubleRow
	PatternHalfTotalRow
	PatternScattered
	PatternWholeColumn
)

// AllPatterns lists every pattern in Figure 3(b) order.
var AllPatterns = []Pattern{
	PatternSingleRow, PatternDoubleRow, PatternHalfTotalRow,
	PatternScattered, PatternWholeColumn,
}

// String returns the paper's name for the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternSingleRow:
		return "single-row clustering"
	case PatternDoubleRow:
		return "double-row clustering"
	case PatternHalfTotalRow:
		return "half total-row clustering"
	case PatternScattered:
		return "scattered"
	case PatternWholeColumn:
		return "whole column"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Class is the three-way grouping Cordial's pattern classifier predicts
// (§IV-C): the five generator patterns collapse into double-row clustering,
// single-row clustering, and scattered.
type Class int

// Classifier classes.
const (
	ClassSingleRow Class = iota + 1
	ClassDoubleRow
	ClassScattered
)

// AllClasses lists the classifier's classes in Table III order.
var AllClasses = []Class{ClassDoubleRow, ClassSingleRow, ClassScattered}

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case ClassSingleRow:
		return "single-row clustering"
	case ClassDoubleRow:
		return "double-row clustering"
	case ClassScattered:
		return "scattered"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassOf maps a generator pattern to the classifier class it belongs to:
// half-total-row is a double-row variant (§III-B) and whole-column is a
// scattered variant.
func ClassOf(p Pattern) Class {
	switch p {
	case PatternSingleRow:
		return ClassSingleRow
	case PatternDoubleRow, PatternHalfTotalRow:
		return ClassDoubleRow
	case PatternScattered, PatternWholeColumn:
		return ClassScattered
	default:
		panic(fmt.Sprintf("faultsim: ClassOf(%d)", int(p)))
	}
}

// IsAggregation reports whether the class is an aggregation pattern, for
// which Cordial triggers cross-row prediction and row sparing.
func (c Class) IsAggregation() bool { return c == ClassSingleRow || c == ClassDoubleRow }

// PatternWeights is the sampling distribution over patterns. Values are
// relative weights; they need not sum to 1.
type PatternWeights map[Pattern]float64

// DefaultPatternWeights reproduces the Figure 3(b) distribution:
// 68.2% single-row, 9.9% double-row, 7.3% half-total-row, 12.5% scattered,
// 2.1% whole-column.
func DefaultPatternWeights() PatternWeights {
	return PatternWeights{
		PatternSingleRow:    68.2,
		PatternDoubleRow:    9.9,
		PatternHalfTotalRow: 7.3,
		PatternScattered:    12.5,
		PatternWholeColumn:  2.1,
	}
}

// Sample draws a pattern according to the weights.
func (w PatternWeights) Sample(r *xrand.RNG) Pattern {
	weights := make([]float64, len(AllPatterns))
	for i, p := range AllPatterns {
		weights[i] = w[p]
	}
	return AllPatterns[r.WeightedChoice(weights)]
}

// Config holds every knob of the per-bank fault process. Construct with
// DefaultConfig and adjust; the zero value is not valid.
type Config struct {
	// Geometry bounds row/column draws.
	Geometry hbm.Geometry
	// Start is the beginning of the observation window.
	Start time.Time
	// Duration is the length of the observation window; fault onsets are
	// placed uniformly inside the first OnsetFraction of it so that the
	// error process has room to play out.
	Duration time.Duration
	// OnsetFraction in (0,1]: the fault onset is drawn uniformly from the
	// first OnsetFraction of the window.
	OnsetFraction float64

	// ClusterSigma is the standard deviation, in rows, of UER-row offsets
	// around a cluster centre. Successive same-cluster UER rows then differ
	// by ~sigma*sqrt(2). The chi-square locality statistic of Figure 4
	// peaks near twice the sigma, so the default of 64 places the peak at
	// the paper's 128-row threshold.
	ClusterSigma float64

	// DoubleRowGapMin/Max bound the row interval between the two clusters
	// of the double-row pattern.
	DoubleRowGapMin, DoubleRowGapMax int

	// UER-row count ranges per pattern (inclusive).
	SingleRowUERs, DoubleRowUERs, ScatteredUERs, WholeColumnUERs [2]int

	// SuddenRowProb is the probability that a UER row has no precursor
	// errors in the same row (Table I row level: 95.61%).
	SuddenRowProb float64
	// RowPrecursorCEs bounds the number of precursor CEs planted in a
	// non-sudden UER row before its first UER.
	RowPrecursorCEs [2]int
	// RowPrecursorUEOProb is the chance a non-sudden row also logs a UEO
	// between its CEs and its first UER.
	RowPrecursorUEOProb float64

	// Mean inter-arrival between successive UER rows, per class. The paper
	// observes aggregation faults erupt faster than scattered ones; the
	// temporal features feed on this difference.
	AggregationUERGap time.Duration
	ScatteredUERGap   time.Duration

	// Background CE/UEO activity within the faulty bank (beyond row
	// precursors): ranges per class. Scattered banks are noisier — the
	// count features feed on this difference.
	AggregationBgCEs [2]int
	ScatteredBgCEs   [2]int
	BgUEOProb        float64
	// BgBeforeOnsetProb is the chance that background activity begins
	// before the first UER (making the bank non-sudden even when all its
	// rows are sudden).
	BgBeforeOnsetProb float64

	// ScatteredBurstProb is the chance that a scattered-pattern bank
	// starts with a locally concentrated burst (its first few UER rows
	// close together) before dispersing across the bank. This is what
	// makes early scattered banks genuinely confusable with single-row
	// clustering (§IV-C: "when only a single UER is observed, it is
	// challenging to distinguish between aggregation and scattered").
	ScatteredBurstProb float64

	// AdjacentRowProb is the chance that a new failing row in an
	// aggregation pattern emerges immediately adjacent (within a few rows)
	// to a previously failed row, rather than independently around the
	// cluster centre. Sub-wordline-driver faults take out physical
	// neighbours; this tight component is what the neighbor-rows baseline
	// exploits (its field ICR of ~13% bounds the value from above).
	AdjacentRowProb float64
	// AdjacentRowMaxDist bounds the adjacency distance in rows.
	AdjacentRowMaxDist int

	// RowRepeatProb is the per-step chance that a failed row logs another
	// UER (geometric repeat count). Failed rows keep erroring in the field
	// until they are isolated; these repeats are what makes the blocks
	// near current error rows predictable.
	RowRepeatProb float64
	// RepeatGapMean is the mean interval between repeat UERs of one row.
	RepeatGapMean time.Duration
	// MaxRepeats bounds the repeat count of one row.
	MaxRepeats int

	// BenignCEs bounds the CE count of a benign (never-UER) bank.
	BenignCEs [2]int
	// BenignUEOProb is the chance a benign bank also logs a UEO.
	BenignUEOProb float64
}

// DefaultConfig returns the calibrated configuration for the given geometry.
// The double-row gap range scales with the bank's row count (1/16 to 3/8 of
// it) so the two clusters stay well separated yet inside the bank on any
// registered topology; at the HBM2E default of 32768 rows this reproduces
// the calibrated [2048, 12288] range exactly.
func DefaultConfig(g hbm.Geometry) Config {
	gapMin := max(1, g.RowsPerBank/16)
	gapMax := max(gapMin, g.RowsPerBank*3/8)
	return Config{
		Geometry:            g,
		Start:               time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		Duration:            30 * 24 * time.Hour,
		OnsetFraction:       0.6,
		ClusterSigma:        64,
		DoubleRowGapMin:     gapMin,
		DoubleRowGapMax:     gapMax,
		SingleRowUERs:       [2]int{3, 8},
		DoubleRowUERs:       [2]int{4, 10},
		ScatteredUERs:       [2]int{8, 20},
		WholeColumnUERs:     [2]int{30, 80},
		SuddenRowProb:       0.9561,
		RowPrecursorCEs:     [2]int{2, 8},
		RowPrecursorUEOProb: 0.5,
		AggregationUERGap:   6 * time.Hour,
		ScatteredUERGap:     18 * time.Hour,
		AggregationBgCEs:    [2]int{0, 6},
		ScatteredBgCEs:      [2]int{20, 60},
		BgUEOProb:           0.35,
		BgBeforeOnsetProb:   0.22,
		ScatteredBurstProb:  0.35,
		AdjacentRowProb:     0.10,
		AdjacentRowMaxDist:  4,
		RowRepeatProb:       0.55,
		RepeatGapMean:       12 * time.Hour,
		MaxRepeats:          5,
		BenignCEs:           [2]int{1, 12},
		BenignUEOProb:       0.05,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("faultsim: Duration must be positive, got %v", c.Duration)
	}
	if c.OnsetFraction <= 0 || c.OnsetFraction > 1 {
		return fmt.Errorf("faultsim: OnsetFraction %g out of (0,1]", c.OnsetFraction)
	}
	if c.ClusterSigma <= 0 {
		return fmt.Errorf("faultsim: ClusterSigma must be positive, got %g", c.ClusterSigma)
	}
	if c.DoubleRowGapMin <= 0 || c.DoubleRowGapMax < c.DoubleRowGapMin {
		return fmt.Errorf("faultsim: double-row gap range [%d,%d] invalid", c.DoubleRowGapMin, c.DoubleRowGapMax)
	}
	if c.DoubleRowGapMax >= c.Geometry.RowsPerBank {
		return fmt.Errorf("faultsim: DoubleRowGapMax %d must be below RowsPerBank %d", c.DoubleRowGapMax, c.Geometry.RowsPerBank)
	}
	for _, rg := range [][2]int{
		c.SingleRowUERs, c.DoubleRowUERs, c.ScatteredUERs, c.WholeColumnUERs,
		c.RowPrecursorCEs, c.AggregationBgCEs, c.ScatteredBgCEs, c.BenignCEs,
	} {
		if rg[0] < 0 || rg[1] < rg[0] {
			return fmt.Errorf("faultsim: count range [%d,%d] invalid", rg[0], rg[1])
		}
	}
	if c.SingleRowUERs[0] < 1 || c.DoubleRowUERs[0] < 2 || c.ScatteredUERs[0] < 1 || c.WholeColumnUERs[0] < 1 {
		return fmt.Errorf("faultsim: UER count minimums too small")
	}
	if c.SuddenRowProb < 0 || c.SuddenRowProb > 1 {
		return fmt.Errorf("faultsim: SuddenRowProb %g out of [0,1]", c.SuddenRowProb)
	}
	if c.ScatteredBurstProb < 0 || c.ScatteredBurstProb >= 1 {
		return fmt.Errorf("faultsim: ScatteredBurstProb %g out of [0,1)", c.ScatteredBurstProb)
	}
	if c.AdjacentRowProb < 0 || c.AdjacentRowProb >= 1 {
		return fmt.Errorf("faultsim: AdjacentRowProb %g out of [0,1)", c.AdjacentRowProb)
	}
	if c.AdjacentRowProb > 0 && c.AdjacentRowMaxDist < 1 {
		return fmt.Errorf("faultsim: AdjacentRowMaxDist must be positive when adjacency is on")
	}
	if c.RowRepeatProb < 0 || c.RowRepeatProb >= 1 {
		return fmt.Errorf("faultsim: RowRepeatProb %g out of [0,1)", c.RowRepeatProb)
	}
	if c.RowRepeatProb > 0 && (c.RepeatGapMean <= 0 || c.MaxRepeats < 1) {
		return fmt.Errorf("faultsim: repeat process needs positive RepeatGapMean and MaxRepeats")
	}
	return nil
}

// BankFault is the generated error process of one faulty bank, together with
// the ground truth labels the evaluation needs.
type BankFault struct {
	Bank    hbm.BankAddress
	Pattern Pattern
	// Cause is the physical root cause behind the pattern.
	Cause Cause
	// Events is the bank's full error log, sorted by time.
	Events []mcelog.Event
	// UERRows lists the distinct UER rows in order of their first UER.
	UERRows []int
	// UERTimes[i] is the time of the first UER in UERRows[i].
	UERTimes []time.Time
	// SuddenRow[i] reports whether UERRows[i] had no precursor error in
	// the same row before its first UER.
	SuddenRow []bool
}

// Class returns the classifier class of the bank's pattern.
func (b *BankFault) Class() Class { return ClassOf(b.Pattern) }

// Generator produces per-bank fault processes. It is not safe for concurrent
// use; create one per goroutine with its own RNG.
type Generator struct {
	cfg Config
	rng *xrand.RNG
}

// NewGenerator validates cfg and returns a generator drawing randomness from
// rng.
func NewGenerator(cfg Config, rng *xrand.RNG) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("faultsim: nil RNG")
	}
	return &Generator{cfg: cfg, rng: rng}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Generate synthesises the fault process of one bank with the given pattern.
// Every emitted event is checked against the configured geometry and the
// active address layout before it leaves the generator: a simulator bug that
// drew an out-of-range coordinate must surface here, not as a silently
// aliased packed address three codecs downstream.
func (g *Generator) Generate(bank hbm.BankAddress, p Pattern) (*BankFault, error) {
	rows := g.uerRows(p)
	if len(rows) == 0 {
		return nil, fmt.Errorf("faultsim: pattern %v produced no UER rows", p)
	}
	bf := g.schedule(bank, p, rows)
	bf.Cause = SampleCause(p, g.rng)
	for i, ev := range bf.Events {
		if err := ev.Validate(g.cfg.Geometry); err != nil {
			return nil, fmt.Errorf("faultsim: generated event %d: %w", i, err)
		}
		if _, err := ev.Addr.PackChecked(); err != nil {
			return nil, fmt.Errorf("faultsim: generated event %d: %w", i, err)
		}
	}
	return bf, nil
}

// GenerateSampled draws a pattern from weights and generates a bank fault.
func (g *Generator) GenerateSampled(bank hbm.BankAddress, w PatternWeights) (*BankFault, error) {
	return g.Generate(bank, w.Sample(g.rng))
}

// uerRows draws the spatial layout: the ordered set of UER rows for the
// pattern, in the temporal order the rows will fail. Aggregation patterns
// then get the adjacency pass: some rows are rewritten to fail right next to
// an earlier row (§III-C error propagation).
func (g *Generator) uerRows(p Pattern) []int {
	c := g.cfg
	geo := c.Geometry
	switch p {
	case PatternSingleRow:
		n := g.rng.IntRange(c.SingleRowUERs[0], c.SingleRowUERs[1])
		center := g.rng.Intn(geo.RowsPerBank)
		return g.applyAdjacency(g.clusterRows(center, n))
	case PatternDoubleRow, PatternHalfTotalRow:
		n := g.rng.IntRange(c.DoubleRowUERs[0], c.DoubleRowUERs[1])
		var gap int
		if p == PatternHalfTotalRow {
			gap = geo.RowsPerBank / 2
		} else {
			gap = g.rng.IntRange(c.DoubleRowGapMin, c.DoubleRowGapMax)
		}
		c1 := g.rng.Intn(geo.RowsPerBank - gap)
		c2 := c1 + gap
		// Split rows between the two clusters, then interleave them in
		// failure order so the process alternates between clusters.
		n1 := n / 2
		if g.rng.Bool(0.5) {
			n1 = n - n1
		}
		// Adjacency applies within each cluster so the two clusters stay
		// separated by the sampled gap.
		a := g.applyAdjacency(g.clusterRows(c1, n1))
		b := g.applyAdjacency(g.clusterRows(c2, n-n1))
		return interleave(g.rng, a, b)
	case PatternScattered:
		n := g.rng.IntRange(c.ScatteredUERs[0], c.ScatteredUERs[1])
		rows := g.distinctUniformRows(n)
		if g.rng.Bool(c.ScatteredBurstProb) && n >= 3 {
			// Local burst onset: the first three failures concentrate
			// around one spot before the fault disperses.
			seen := make(map[int]bool, n)
			for _, r := range rows {
				seen[r] = true
			}
			center := rows[0]
			for i := 1; i < 3; i++ {
				for attempt := 0; attempt < 8; attempt++ {
					cand := geo.ClampRow(center + int(math.Round(g.rng.Normal(0, c.ClusterSigma))))
					if !seen[cand] {
						delete(seen, rows[i])
						rows[i] = cand
						seen[cand] = true
						break
					}
				}
			}
		}
		return rows
	case PatternWholeColumn:
		n := g.rng.IntRange(c.WholeColumnUERs[0], c.WholeColumnUERs[1])
		return g.distinctUniformRows(n)
	default:
		panic(fmt.Sprintf("faultsim: uerRows(%d)", int(p)))
	}
}

// clusterRows draws n distinct rows normally distributed around center with
// ClusterSigma, in random failure order. Independent normal draws make the
// distance between consecutive failures |N(0, sigma*sqrt(2))|, which is the
// distribution the Figure 4 locality calibration relies on.
func (g *Generator) clusterRows(center, n int) []int {
	geo := g.cfg.Geometry
	seen := make(map[int]bool, n)
	rows := make([]int, 0, n)
	for len(rows) < n {
		r := geo.ClampRow(center + int(math.Round(g.rng.Normal(0, g.cfg.ClusterSigma))))
		if seen[r] {
			// Clamping and collisions can exhaust a tight cluster;
			// widen the draw slightly rather than loop forever.
			r = geo.ClampRow(center + int(math.Round(g.rng.Normal(0, 3*g.cfg.ClusterSigma))))
			if seen[r] {
				continue
			}
		}
		seen[r] = true
		rows = append(rows, r)
	}
	return rows
}

// distinctUniformRows draws n distinct uniform rows in arbitrary order.
func (g *Generator) distinctUniformRows(n int) []int {
	geo := g.cfg.Geometry
	if n > geo.RowsPerBank {
		n = geo.RowsPerBank
	}
	return g.rng.SampleInts(geo.RowsPerBank, n)
}

func interleave(r *xrand.RNG, a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		takeA := j >= len(b) || (i < len(a) && r.Bool(float64(len(a)-i)/float64(len(a)-i+len(b)-j)))
		if takeA {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// applyAdjacency rewrites some rows (from index 1 on) to sit within a few
// rows of an earlier row in the failure sequence, modelling SWD-style
// physical-neighbour propagation. Rows stay distinct.
func (g *Generator) applyAdjacency(rows []int) []int {
	c := g.cfg
	if c.AdjacentRowProb <= 0 || len(rows) < 2 {
		return rows
	}
	seen := make(map[int]bool, len(rows))
	seen[rows[0]] = true
	for i := 1; i < len(rows); i++ {
		if g.rng.Bool(c.AdjacentRowProb) {
			base := rows[g.rng.Intn(i)]
			for attempt := 0; attempt < 8; attempt++ {
				off := g.rng.IntRange(1, c.AdjacentRowMaxDist)
				if g.rng.Bool(0.5) {
					off = -off
				}
				cand := c.Geometry.ClampRow(base + off)
				if !seen[cand] {
					rows[i] = cand
					break
				}
			}
		}
		seen[rows[i]] = true
	}
	return rows
}

// schedule assigns event times, plants precursors and background activity,
// and assembles the sorted event log plus ground truth.
func (g *Generator) schedule(bank hbm.BankAddress, p Pattern, rows []int) *BankFault {
	c := g.cfg
	class := ClassOf(p)
	gap := c.AggregationUERGap
	if class == ClassScattered {
		gap = c.ScatteredUERGap
	}

	onsetSpan := time.Duration(float64(c.Duration) * c.OnsetFraction)
	onset := c.Start.Add(time.Duration(g.rng.Float64() * float64(onsetSpan)))
	end := c.Start.Add(c.Duration)

	bf := &BankFault{Bank: bank, Pattern: p}
	events := make([]mcelog.Event, 0, 4*len(rows))
	kind := bitKindOf(p)

	// Whole-column faults pin every error to one column; other patterns
	// draw columns per event.
	fixedCol := -1
	if p == PatternWholeColumn {
		fixedCol = g.rng.Intn(c.Geometry.ColsPerBank)
	}
	col := func() int {
		if fixedCol >= 0 {
			return fixedCol
		}
		return g.rng.Intn(c.Geometry.ColsPerBank)
	}

	// First UERs per row, spaced by exponential inter-arrivals.
	t := onset
	for i, row := range rows {
		if i > 0 {
			t = t.Add(time.Duration(g.rng.Exp(1 / float64(gap))))
		}
		if t.After(end) {
			t = end // clamp the tail into the window
		}
		uerTime := t
		sudden := g.rng.Bool(c.SuddenRowProb)
		if !sudden {
			// Plant precursor CEs (and maybe a UEO) in the same row
			// during the hours before the first UER.
			nce := g.rng.IntRange(c.RowPrecursorCEs[0], c.RowPrecursorCEs[1])
			lead := time.Duration(g.rng.Float64()*48+2) * time.Hour
			start := uerTime.Add(-lead)
			if start.Before(c.Start) {
				start = c.Start
			}
			span := uerTime.Sub(start)
			for k := 0; k < nce; k++ {
				ts := start.Add(time.Duration(g.rng.Float64() * float64(span)))
				cc := col()
				events = append(events, mcelog.Event{
					Time: ts, Addr: hbm.CellInBank(bank, row, cc), Class: ecc.ClassCE,
					Bits: errBitsFor(bank, row, cc, ecc.ClassCE, kind),
				})
			}
			if g.rng.Bool(c.RowPrecursorUEOProb) {
				ts := start.Add(time.Duration(g.rng.Float64() * float64(span)))
				cc := col()
				events = append(events, mcelog.Event{
					Time: ts, Addr: hbm.CellInBank(bank, row, cc), Class: ecc.ClassUEO,
					Bits: errBitsFor(bank, row, cc, ecc.ClassUEO, kind),
				})
			}
		}
		uerCol := col()
		events = append(events, mcelog.Event{
			Time: uerTime, Addr: hbm.CellInBank(bank, row, uerCol), Class: ecc.ClassUER,
			Bits: errBitsFor(bank, row, uerCol, ecc.ClassUER, kind),
		})
		// Failed rows keep erroring until mitigated: a geometric train of
		// repeat UERs follows the first failure.
		repeat := uerTime
		for k := 0; k < c.MaxRepeats && g.rng.Bool(c.RowRepeatProb); k++ {
			repeat = repeat.Add(time.Duration(g.rng.Exp(1 / float64(c.RepeatGapMean))))
			if repeat.After(end) {
				break
			}
			rc := col()
			events = append(events, mcelog.Event{
				Time: repeat, Addr: hbm.CellInBank(bank, row, rc), Class: ecc.ClassUER,
				Bits: errBitsFor(bank, row, rc, ecc.ClassUER, kind),
			})
		}
		bf.UERRows = append(bf.UERRows, row)
		bf.UERTimes = append(bf.UERTimes, uerTime)
		bf.SuddenRow = append(bf.SuddenRow, sudden)
	}

	// Background CE/UEO activity within the bank.
	bgRange := c.AggregationBgCEs
	if class == ClassScattered {
		bgRange = c.ScatteredBgCEs
	}
	nbg := g.rng.IntRange(bgRange[0], bgRange[1])
	if nbg > 0 {
		bgStart := onset
		preOnset := g.rng.Bool(c.BgBeforeOnsetProb)
		if preOnset {
			back := time.Duration(g.rng.Float64()*72+1) * time.Hour
			bgStart = onset.Add(-back)
			if bgStart.Before(c.Start) {
				bgStart = c.Start
			}
		}
		span := end.Sub(bgStart)
		for k := 0; k < nbg; k++ {
			row := g.bgRow(p, rows)
			class := ecc.ClassCE
			if g.rng.Bool(c.BgUEOProb / float64(max(nbg, 1))) {
				class = ecc.ClassUEO
			}
			ts := bgStart.Add(time.Duration(g.rng.Float64() * float64(span)))
			if k == 0 && preOnset && onset.After(bgStart) {
				// Make the pre-onset draw real: the first background
				// event is guaranteed to precede the first UER, which
				// is what renders the bank non-sudden at bank level.
				ts = bgStart.Add(time.Duration(g.rng.Float64() * float64(onset.Sub(bgStart))))
			}
			bc := col()
			events = append(events, mcelog.Event{
				Time:  ts,
				Addr:  hbm.CellInBank(bank, row, bc),
				Class: class,
				Bits:  errBitsFor(bank, row, bc, class, kind),
			})
		}
	}

	log := mcelog.FromEvents(events)
	log.Sort()
	bf.Events = log.Events()
	return bf
}

// bgRow picks a row for background activity: near the clusters for
// aggregation patterns (corrected errors shadow the failing region), uniform
// for scattered ones. UER rows themselves are excluded — their precursor
// history is governed by SuddenRowProb, not by background noise.
func (g *Generator) bgRow(p Pattern, uerRows []int) int {
	geo := g.cfg.Geometry
	isUER := make(map[int]bool, len(uerRows))
	for _, r := range uerRows {
		isUER[r] = true
	}
	for attempt := 0; ; attempt++ {
		var row int
		if ClassOf(p) == ClassScattered || attempt > 16 {
			row = g.rng.Intn(geo.RowsPerBank)
		} else {
			anchor := uerRows[g.rng.Intn(len(uerRows))]
			row = geo.ClampRow(anchor + int(math.Round(g.rng.Normal(0, 2*g.cfg.ClusterSigma))))
		}
		if !isUER[row] {
			return row
		}
	}
}

// GenerateBenign synthesises the error log of a healthy bank: a short burst
// of CEs (and rarely a UEO) at uniform addresses, no UERs. Correctable-error
// episodes in the field are bursty — a transient condition produces a train
// of CEs over hours, not a uniform trickle over the whole month — and the
// burstiness matters for Table I: whether a co-located benign bank makes a
// coarse-level entity "non-sudden" depends on whether its burst happened to
// precede the first UER.
func (g *Generator) GenerateBenign(bank hbm.BankAddress) []mcelog.Event {
	c := g.cfg
	n := g.rng.IntRange(c.BenignCEs[0], c.BenignCEs[1])
	burst := time.Duration(g.rng.Float64()*24+1) * time.Hour
	latestStart := c.Duration - burst
	if latestStart < 0 {
		latestStart = 0
		burst = c.Duration
	}
	burstStart := c.Start.Add(time.Duration(g.rng.Float64() * float64(latestStart)))
	stamp := func() time.Time {
		return burstStart.Add(time.Duration(g.rng.Float64() * float64(burst)))
	}
	events := make([]mcelog.Event, 0, n+1)
	for i := 0; i < n; i++ {
		// Draw order (time, row, column) matches the pre-error-bits code so
		// seeded streams replay byte-identically.
		ts := stamp()
		row, cc := g.rng.Intn(c.Geometry.RowsPerBank), g.rng.Intn(c.Geometry.ColsPerBank)
		events = append(events, mcelog.Event{
			Time:  ts,
			Addr:  hbm.CellInBank(bank, row, cc),
			Class: ecc.ClassCE,
			Bits:  errBitsFor(bank, row, cc, ecc.ClassCE, bitsBenign),
		})
	}
	if g.rng.Bool(c.BenignUEOProb) {
		ts := stamp()
		row, cc := g.rng.Intn(c.Geometry.RowsPerBank), g.rng.Intn(c.Geometry.ColsPerBank)
		events = append(events, mcelog.Event{
			Time:  ts,
			Addr:  hbm.CellInBank(bank, row, cc),
			Class: ecc.ClassUEO,
			Bits:  errBitsFor(bank, row, cc, ecc.ClassUEO, bitsBenign),
		})
	}
	log := mcelog.FromEvents(events)
	log.Sort()
	return log.Events()
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
