package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FS is the slice of filesystem behaviour the journal and snapshot code
// depend on. Production code uses OSFS; fault-injection tests substitute a
// FaultFS to make writes run short, syncs fail, or opens error — the
// failure modes a crash-safe log must survive without panicking.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
}

// File is the open-file surface the journal uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate cuts the file to the given size (torn-tail repair).
	Truncate(size int64) error
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

// syncDir best-effort fsyncs the directory containing path, making a
// preceding rename durable. Only meaningful on the real filesystem; errors
// are ignored (not every platform or FS supports directory fsync).
func syncDir(fs FS, path string) {
	if _, ok := fs.(osFS); !ok {
		return
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Injected fault sentinels returned by FaultFS.
var (
	// ErrInjectedWrite is returned once the configured write budget is
	// exhausted; the write that hits it is partial.
	ErrInjectedWrite = errors.New("wal: injected write fault (budget exhausted)")
	// ErrInjectedSync is returned by Sync after the configured number of
	// successful syncs.
	ErrInjectedSync = errors.New("wal: injected sync fault")
	// ErrInjectedOpen is returned by OpenFile when open faults are armed.
	ErrInjectedOpen = errors.New("wal: injected open fault")
)

// FaultFS wraps another FS and injects failures: partial writes after a
// byte budget, fsync errors after a sync count, and open errors. It is the
// harness behind the durability fault-injection tests — a crash-safe WAL
// must turn every one of these into a clean error, never a panic and never
// a corrupted acknowledged record.
//
// All knobs are safe for concurrent use and may be re-armed mid-test.
type FaultFS struct {
	inner FS

	mu           sync.Mutex
	writeBudget  int64 // bytes writable before ErrInjectedWrite; <0 = unlimited
	syncsLeft    int   // successful syncs before ErrInjectedSync; <0 = unlimited
	failOpens    bool
	writeFaults  int
	syncFaults   int
	bytesWritten int64
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, writeBudget: -1, syncsLeft: -1}
}

// LimitWriteBytes arms the write fault: after n more bytes are written
// (across all files), the write that crosses the budget is cut short and
// returns ErrInjectedWrite. n < 0 disarms.
func (f *FaultFS) LimitWriteBytes(n int64) {
	f.mu.Lock()
	f.writeBudget = n
	f.mu.Unlock()
}

// FailSyncAfter arms the sync fault: the next n Sync calls succeed, every
// later one returns ErrInjectedSync. n < 0 disarms.
func (f *FaultFS) FailSyncAfter(n int) {
	f.mu.Lock()
	f.syncsLeft = n
	f.mu.Unlock()
}

// FailOpens makes every subsequent OpenFile return ErrInjectedOpen.
func (f *FaultFS) FailOpens(fail bool) {
	f.mu.Lock()
	f.failOpens = fail
	f.mu.Unlock()
}

// Faults reports how many write and sync faults have fired.
func (f *FaultFS) Faults() (writes, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeFaults, f.syncFaults
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	fail := f.failOpens
	f.mu.Unlock()
	if fail {
		return nil, ErrInjectedOpen
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *FaultFS) Rename(oldpath, newpath string) error       { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error                   { return f.inner.Remove(name) }
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// faultFile applies the shared FaultFS state to one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }
func (f *faultFile) Close() error               { return f.inner.Close() }
func (f *faultFile) Truncate(size int64) error  { return f.inner.Truncate(size) }
func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	budget := f.fs.writeBudget
	if budget >= 0 && int64(len(p)) > budget {
		// Partial write: the torn-record shape a real power cut produces.
		f.fs.writeBudget = 0
		f.fs.writeFaults++
		f.fs.mu.Unlock()
		n, err := f.inner.Write(p[:budget])
		if err != nil {
			return n, err
		}
		return n, ErrInjectedWrite
	}
	if budget >= 0 {
		f.fs.writeBudget = budget - int64(len(p))
	}
	f.fs.bytesWritten += int64(len(p))
	f.fs.mu.Unlock()
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	if f.fs.syncsLeft == 0 {
		f.fs.syncFaults++
		f.fs.mu.Unlock()
		return ErrInjectedSync
	}
	if f.fs.syncsLeft > 0 {
		f.fs.syncsLeft--
	}
	f.fs.mu.Unlock()
	return f.inner.Sync()
}
