package stream

import (
	"fmt"
	"testing"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/trace"
	"cordial/internal/xrand"
)

// These tests re-run the two equivalence gates — online≡offline and
// crash≡no-crash — under a non-default topology profile. Packed bank keys,
// WAL records, and snapshot images all follow the active profile's layout;
// a profile-dependent bug in any of them shows up here and nowhere in the
// HBM2E-default suites.

// ddrTestBank returns a distinct DDR5 bank address; the bank index parity
// controls the fake strategy's bank-spare vs row-spare branch, as with
// testBank.
func ddrTestBank(i int) hbm.BankAddress {
	return hbm.BankAddress{
		Node:      i % 8,
		Rank:      (i / 2) % 2,
		Device:    (i / 4) % 8,
		BankGroup: i % 8,
		Bank:      i % 4,
	}
}

// TestOnlineOfflineEquivalenceDDR5 is the online/offline skew gate under
// the ddr5-dimm profile: a trained Cordial strategy over a DDR5 fleet must
// make identical decisions event-by-event online and in per-bank offline
// replay.
func TestOnlineOfflineEquivalenceDDR5(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	prev := hbm.ActivateProfile(hbm.DDR5DIMM)
	defer hbm.ActivateProfile(prev)
	geo := hbm.DDR5DIMM.Geometry

	spec := trace.DefaultSpec(geo)
	spec.UERBanks = 60
	spec.BenignBanks = 0
	spec.Seed = 13
	fleet, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.RandomForest)
	cfg.Params = core.ModelParams{Trees: 12, Depth: 8}
	pipe, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Fit(fleet.Faults); err != nil {
		t.Fatal(err)
	}
	strategy := &core.CordialStrategy{Pipeline: pipe, Geometry: geo}

	eval := trace.DefaultSpec(geo)
	eval.UERBanks = 25
	eval.BenignBanks = 40
	eval.Seed = 14
	evalFleet, err := trace.Generate(eval)
	if err != nil {
		t.Fatal(err)
	}
	assertOnlineOfflineEquivalent(t, strategy, evalFleet)
}

// TestCrashRecoveryEquivalenceDDR5 is the durability gate under the
// ddr5-dimm profile: randomized kill points, with and without an intervening
// snapshot, must recover to byte-identical session state and the same action
// set as an uninterrupted run.
func TestCrashRecoveryEquivalenceDDR5(t *testing.T) {
	prev := hbm.ActivateProfile(hbm.DDR5DIMM)
	defer hbm.ActivateProfile(prev)

	r := xrand.New(41)
	const banks, n = 10, 300
	evs := make([]mcelog.Event, 0, n)
	for i := 0; i < n; i++ {
		ev := uerAt(ddrTestBank(r.Intn(banks)), 1+r.Intn(8), i)
		if r.Intn(4) == 0 {
			ev.Class = ecc.ClassCE
		}
		evs = append(evs, ev)
	}
	strategy := &fakeStrategy{budget: 3}
	refPayload, wantActions := refRun(t, strategy, evs, 4)
	wantBody := refPayload[snapBodyOffset:]

	for trial := 0; trial < 4; trial++ {
		kill := r.Intn(n + 1)
		snapAt := -1
		if trial%2 == 1 && kill > 1 {
			snapAt = r.Intn(kill)
		}
		t.Run(fmt.Sprintf("kill=%d,snap=%d", kill, snapAt), func(t *testing.T) {
			crashRecoveryTrial(t, strategy, evs, kill, snapAt, wantBody, wantActions)
		})
	}
}
