package stream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/obs"
)

// ServerConfig bounds the HTTP ingestion front-end. Zero fields take the
// defaults noted per field.
type ServerConfig struct {
	// MaxBodyBytes caps one POST /v1/events body. Default 32 MiB.
	MaxBodyBytes int64
	// MaxLineBytes caps one JSONL line. Defaults to MaxBodyBytes: a line
	// the body cap admits must not be refused by the line scanner, or a
	// legal batch aborts mid-body (the whole batch used to sink when one
	// line crossed an unrelated 1 MiB scanner default).
	MaxLineBytes int
	// MaxStoredActions caps the in-memory action store served by
	// GET /v1/actions; the oldest actions are evicted past it. Default 4096.
	MaxStoredActions int
	// MaxBatchErrors caps per-line error messages echoed in one ingest
	// response. Default 16.
	MaxBatchErrors int
	// ModelAdmin, when set, enables the model-lifecycle admin endpoints
	// (GET /v1/models, POST /v1/models/{promote,rollback,retrain}).
	// Normally lifecycle.AdminFor over the daemon's Manager; nil leaves
	// the endpoints answering 404.
	ModelAdmin ModelAdmin
}

// ModelAdmin is the lifecycle hook behind the model administration
// endpoints. The stream package cannot import the lifecycle manager (the
// manager drives the engine), so the server takes the admin surface as an
// interface and the lifecycle package provides the adapter.
type ModelAdmin interface {
	// Overview returns the JSON-serialisable body of GET /v1/models:
	// installed versions plus lifecycle status.
	Overview() any
	// Promote makes a version active (0 = the current shadow candidate).
	Promote(version uint64) error
	// Rollback retires an in-flight candidate, or re-activates the
	// previous installed version when no shadow is running.
	Rollback() error
	// Retrain forces a retrain cycle, tagging the artefact with trigger.
	Retrain(trigger string) error
}

// withDefaults fills zero fields.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxLineBytes == 0 {
		c.MaxLineBytes = int(c.MaxBodyBytes)
	}
	if c.MaxStoredActions == 0 {
		c.MaxStoredActions = 4096
	}
	if c.MaxBatchErrors == 0 {
		c.MaxBatchErrors = 16
	}
	return c
}

// Server is the HTTP front-end over an Engine: JSONL batch ingest, action
// retrieval, per-bank session inspection, health and stats. It implements
// http.Handler; mount it directly or under a prefix.
type Server struct {
	engine *Engine
	cfg    ServerConfig
	mux    *http.ServeMux

	requests  *obs.Counter
	notOwned  *obs.Counter
	decode    latencySampler
	binDecode latencySampler
	binPool   sync.Pool // *binScratch: frame decoder + event slice reuse

	// ownership is nil while the node serves standalone (it owns every
	// bank). In a cluster the node agent installs the current ring view
	// here; handleEvents rejects events for banks outside it with a 503
	// the router understands (see IngestResult.NotOwned).
	ownership atomic.Pointer[ownershipView]

	mu      sync.Mutex
	stored  []Action
	evicted uint64
	drained chan struct{}
}

// NewServer wraps an engine with the HTTP API and starts collecting its
// actions. The collector goroutine exits when the engine is closed. The
// server registers its own instruments in the engine's registry, so one
// GET /metrics scrape covers all three layers (HTTP, engine, WAL).
func NewServer(e *Engine, cfg ServerConfig) *Server {
	s := &Server{
		engine:  e,
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
		drained: make(chan struct{}),
	}
	reg := e.Metrics()
	s.requests = reg.Counter("cordial_http_requests_total",
		"HTTP requests served (all routes).")
	s.notOwned = reg.Counter("cordial_http_not_owned_total",
		"Ingest batches refused because a bank is outside this node's ring ownership.")
	s.decode.attach(reg.Histogram("cordial_http_decode_seconds",
		"Per-line JSONL event decode time on POST /v1/events.", nil))
	s.binDecode.attach(reg.Histogram("cordial_http_bin_decode_seconds",
		"Per-frame binary decode time on POST /v1/events.bin.", nil))
	s.binPool.New = func() any { return &binScratch{dec: mcelog.NewFrameDecoder(nil)} }
	reg.GaugeFunc("cordial_actions_stored",
		"Actions currently held in the bounded GET /v1/actions store.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.stored))
		})
	s.mux.HandleFunc("POST /v1/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/events.bin", s.handleEventsBin)
	s.mux.HandleFunc("GET /v1/actions", s.handleActions)
	s.mux.HandleFunc("GET /v1/banks/{addr}", s.handleBank)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models/promote", s.handleModelPromote)
	s.mux.HandleFunc("POST /v1/models/rollback", s.handleModelRollback)
	s.mux.HandleFunc("POST /v1/models/retrain", s.handleModelRetrain)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	go s.collect()
	return s
}

// collect drains the engine's action channel into the bounded store.
func (s *Server) collect() {
	defer close(s.drained)
	for a := range s.engine.Actions() {
		s.mu.Lock()
		s.stored = append(s.stored, a)
		if over := len(s.stored) - s.cfg.MaxStoredActions; over > 0 {
			s.evicted += uint64(over)
			s.stored = append(s.stored[:0:0], s.stored[over:]...)
		}
		s.mu.Unlock()
	}
}

// AwaitDrained blocks until the engine has been closed and every emitted
// action has been collected (graceful-shutdown ordering: close the engine,
// then await, then report).
func (s *Server) AwaitDrained() { <-s.drained }

// ServeHTTP dispatches to the API routes. Every response carries
// Cache-Control: no-store — health, stats and ownership answers describe
// this instant on this node, and a cached copy (proxy, browser, CDN)
// would misroute traffic or mask an outage.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	w.Header().Set("Cache-Control", "no-store")
	s.mux.ServeHTTP(w, r)
}

// ownershipView is one ring epoch's answer to "does this node own bank X".
type ownershipView struct {
	epoch uint64
	owns  func(bankKey uint64) bool
}

// SetOwnership installs the bank-ownership predicate for a ring epoch.
// Ingest rejects events for banks where owns returns false with a 503
// whose body carries the epoch, so a router with a stale ring knows to
// refresh and resend the unconsumed suffix. A nil owns accepts every
// bank under the given epoch; call with epoch 0 and nil to return to
// standalone mode.
func (s *Server) SetOwnership(epoch uint64, owns func(bankKey uint64) bool) {
	if epoch == 0 && owns == nil {
		s.ownership.Store(nil)
		return
	}
	s.ownership.Store(&ownershipView{epoch: epoch, owns: owns})
}

// IngestResult is the response body of POST /v1/events.
type IngestResult struct {
	// Accepted counts events enqueued to the engine.
	Accepted int `json:"accepted"`
	// Rejected counts malformed or invalid lines.
	Rejected int `json:"rejected"`
	// Dropped counts events shed by a full shard queue (IngestDrop).
	Dropped int `json:"dropped"`
	// Errors samples per-line failure messages (capped).
	Errors []string `json:"errors,omitempty"`
	// Truncated reports that the batch ended early (oversized line or a
	// mid-body disconnect); counts cover the prefix that was read.
	Truncated bool `json:"truncated,omitempty"`
	// NotOwned is 1 when the batch stopped at a line whose bank this node
	// does not own under the current ring epoch (response status 503).
	// The offending line was NOT consumed: a router should refresh its
	// ring and resend the batch suffix starting at line index
	// Accepted+Rejected+Dropped.
	NotOwned int `json:"notOwned,omitempty"`
	// Epoch is the ring epoch the server evaluated ownership under.
	// Zero when the node serves standalone.
	Epoch uint64 `json:"epoch,omitempty"`
}

// handleEvents ingests a JSONL batch. Malformed lines are rejected
// individually — one bad line never sinks the batch, and a mid-batch
// disconnect keeps everything already accepted.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), s.cfg.MaxLineBytes)

	var res IngestResult
	geo := s.engine.Config().Geometry
	own := s.ownership.Load()
	if own != nil {
		res.Epoch = own.epoch
	}
	lineNo := 0
	reject := func(err error) {
		res.Rejected++
		if len(res.Errors) < s.cfg.MaxBatchErrors {
			res.Errors = append(res.Errors, fmt.Sprintf("line %d: %v", lineNo, err))
		}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		t0 := time.Now()
		ev, err := mcelog.ParseJSONEvent(line)
		s.decode.observe(time.Since(t0))
		if err != nil {
			reject(err)
			continue
		}
		if err := ev.Validate(geo); err != nil {
			reject(err)
			continue
		}
		if own != nil && own.owns != nil && !own.owns(ev.Addr.BankKey()) {
			// Consumed-prefix contract: everything before this line landed
			// (or was rejected) and must not be resent; this line and the
			// rest of the body belong to another node.
			res.NotOwned = 1
			s.notOwned.Inc()
			writeJSON(w, http.StatusServiceUnavailable, res)
			return
		}
		switch err := s.engine.Ingest(ev); err {
		case nil:
			res.Accepted++
		case ErrDropped:
			res.Dropped++
		default:
			// Engine closed mid-batch: report what landed.
			reject(err)
			res.Truncated = true
			writeJSON(w, http.StatusServiceUnavailable, res)
			return
		}
	}
	if err := sc.Err(); err != nil {
		res.Truncated = true
		if len(res.Errors) < s.cfg.MaxBatchErrors {
			res.Errors = append(res.Errors, fmt.Sprintf("after line %d: %v", lineNo, err))
		}
		// A body over MaxBodyBytes is the client's error: 413, with the
		// counts for the prefix that was ingested before the cap hit.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, res)
			return
		}
	}
	writeJSON(w, http.StatusOK, res)
}

// binScratch is the per-request reusable state of the binary ingest path:
// the frame decoder (which owns the payload read buffer) and the decoded
// event slice handed to IngestBatch. Pooled so a steady stream of binary
// batches decodes without per-request allocation.
type binScratch struct {
	dec    *mcelog.FrameDecoder
	events []mcelog.Event
}

// handleEventsBin ingests a length-prefixed CRC-framed binary batch (the
// mcelog wire codec: "CBF1" magic, then u32 length | u32 crc32c | N×17-byte
// records per frame). It mirrors handleEvents' response contract — same
// IngestResult shape, same consumed-prefix rule on 503 — but moves whole
// frames through Engine.IngestBatch, so a frame costs one shard lock round
// and (when durable) one WAL batch append instead of per-event synchronisation.
//
// Error semantics differ from JSONL in one deliberate way: a framing error
// (bad CRC, truncated or oversized frame) is a 400, not a per-record
// rejection. A corrupt frame leaves no way to find the next frame boundary,
// so the rest of the body is undecodable; counts in the response cover the
// frames consumed before the corruption.
func (s *Server) handleEventsBin(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	bs := s.binPool.Get().(*binScratch)
	defer func() {
		bs.dec.Reset(nil)
		bs.events = bs.events[:0]
		s.binPool.Put(bs)
	}()
	bs.dec.Reset(body)

	var res IngestResult
	geo := s.engine.Config().Geometry
	own := s.ownership.Load()
	if own != nil {
		res.Epoch = own.epoch
	}
	frameNo := 0
	for {
		t0 := time.Now()
		fr, err := bs.dec.Next()
		s.binDecode.observe(time.Since(t0))
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			res.Truncated = true
			if len(res.Errors) < s.cfg.MaxBatchErrors {
				res.Errors = append(res.Errors, fmt.Sprintf("after frame %d: %v", frameNo, err))
			}
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(w, http.StatusRequestEntityTooLarge, res)
				return
			}
			writeJSON(w, http.StatusBadRequest, res)
			return
		}
		frameNo++

		// Validate and ownership-scan the frame, collecting the ingestable
		// prefix. A record for a bank this node does not own stops the scan:
		// everything before it is ingested below, then the 503 tells the
		// router to resend from index Accepted+Rejected+Dropped.
		bs.events = bs.events[:0]
		notOwned := false
		for i, n := 0, fr.Len(); i < n; i++ {
			ev := fr.Event(i)
			if err := ev.Validate(geo); err != nil {
				res.Rejected++
				if len(res.Errors) < s.cfg.MaxBatchErrors {
					res.Errors = append(res.Errors, fmt.Sprintf("frame %d record %d: %v", frameNo, i, err))
				}
				continue
			}
			if own != nil && own.owns != nil && !own.owns(ev.Addr.BankKey()) {
				notOwned = true
				break
			}
			bs.events = append(bs.events, ev)
		}
		accepted, dropped, err := s.engine.IngestBatch(bs.events)
		res.Accepted += accepted
		res.Dropped += dropped
		if err != nil {
			// Engine closed or journaling failed: nothing from this frame
			// landed; report what previous frames ingested.
			res.Truncated = true
			if len(res.Errors) < s.cfg.MaxBatchErrors {
				res.Errors = append(res.Errors, fmt.Sprintf("frame %d: %v", frameNo, err))
			}
			writeJSON(w, http.StatusServiceUnavailable, res)
			return
		}
		if notOwned {
			res.NotOwned = 1
			s.notOwned.Inc()
			writeJSON(w, http.StatusServiceUnavailable, res)
			return
		}
	}
	writeJSON(w, http.StatusOK, res)
}

// jsonAction is the wire shape of one action.
type jsonAction struct {
	Kind  string    `json:"kind"`
	Bank  string    `json:"bank"`
	Rows  []int     `json:"rows,omitempty"`
	Class string    `json:"class"`
	Time  time.Time `json:"time"`
}

// handleActions returns collected actions, oldest first. ?limit=N keeps
// only the newest N.
func (s *Server) handleActions(w http.ResponseWriter, r *http.Request) {
	limit := -1
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad limit %q", q), http.StatusBadRequest)
			return
		}
		limit = n
	}
	s.mu.Lock()
	actions := make([]Action, len(s.stored))
	copy(actions, s.stored)
	evicted := s.evicted
	s.mu.Unlock()
	if limit >= 0 && len(actions) > limit {
		actions = actions[len(actions)-limit:]
	}
	out := struct {
		Actions []jsonAction `json:"actions"`
		Evicted uint64       `json:"evicted"`
	}{Actions: make([]jsonAction, len(actions)), Evicted: evicted}
	for i, a := range actions {
		out.Actions[i] = jsonAction{
			Kind:  a.Kind.String(),
			Bank:  a.Bank.String(),
			Rows:  a.Rows,
			Class: a.Class.String(),
			Time:  a.Time.UTC(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// jsonSession is the wire shape of one bank session snapshot.
type jsonSession struct {
	Bank            string    `json:"bank"`
	Events          int       `json:"events"`
	UEREvents       int       `json:"uerEvents"`
	DistinctUERRows int       `json:"distinctUERRows"`
	Classified      bool      `json:"classified"`
	Class           string    `json:"class,omitempty"`
	BankSpared      bool      `json:"bankSpared"`
	RowsIsolated    int       `json:"rowsIsolated"`
	Actions         int       `json:"actions"`
	FirstEvent      time.Time `json:"firstEvent"`
	LastEvent       time.Time `json:"lastEvent"`
	StateBytes      int       `json:"featureStateBytes"`
	StateRows       int       `json:"featureStateRows"`
	StateReleased   bool      `json:"featureStateReleased"`
	Degraded        bool      `json:"degraded"`
	ModelVersion    uint64    `json:"modelVersion"`
}

// handleBank returns one bank's session snapshot. The address may be any
// cell in the bank; it is truncated to bank granularity.
func (s *Server) handleBank(w http.ResponseWriter, r *http.Request) {
	addr, err := hbm.ParseAddress(r.PathValue("addr"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, ok := s.engine.Session(hbm.BankOf(addr))
	if !ok {
		http.Error(w, "no session for bank", http.StatusNotFound)
		return
	}
	js := jsonSession{
		Bank:            st.Bank.String(),
		Events:          st.Events,
		UEREvents:       st.UEREvents,
		DistinctUERRows: st.DistinctUERRows,
		Classified:      st.Classified,
		BankSpared:      st.BankSpared,
		RowsIsolated:    st.RowsIsolated,
		Actions:         st.Actions,
		FirstEvent:      st.FirstEvent.UTC(),
		LastEvent:       st.LastEvent.UTC(),
		StateBytes:      st.StateBytes,
		StateRows:       st.StateRows,
		StateReleased:   st.StateReleased,
		Degraded:        st.Degraded,
		ModelVersion:    st.ModelVersion,
	}
	if st.Classified {
		js.Class = st.Class.String()
	}
	writeJSON(w, http.StatusOK, js)
}

// admin resolves the configured ModelAdmin or answers 404 — a daemon
// without a lifecycle manager simply does not have these routes.
func (s *Server) admin(w http.ResponseWriter) (ModelAdmin, bool) {
	if s.cfg.ModelAdmin == nil {
		http.Error(w, "model administration not enabled on this node", http.StatusNotFound)
		return nil, false
	}
	return s.cfg.ModelAdmin, true
}

// handleModels lists installed model versions and lifecycle status.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	admin, ok := s.admin(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, admin.Overview())
}

// decodeAdminBody decodes a small optional JSON body into v. An empty body
// leaves v untouched; anything unparsable is the client's error.
func decodeAdminBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// handleModelPromote activates a version ({"version": N}; 0 or an empty
// body promotes the current shadow candidate). A refused promotion — no
// candidate, unknown version — is a 409 so clients can tell operator error
// from transport failure.
func (s *Server) handleModelPromote(w http.ResponseWriter, r *http.Request) {
	admin, ok := s.admin(w)
	if !ok {
		return
	}
	var req struct {
		Version uint64 `json:"version"`
	}
	if !decodeAdminBody(w, r, &req) {
		return
	}
	if err := admin.Promote(req.Version); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ActiveVersion uint64 `json:"activeVersion"`
	}{s.engine.ActiveModelVersion()})
}

// handleModelRollback retires the candidate or reverts to the previous
// installed version.
func (s *Server) handleModelRollback(w http.ResponseWriter, r *http.Request) {
	admin, ok := s.admin(w)
	if !ok {
		return
	}
	if err := admin.Rollback(); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ActiveVersion uint64 `json:"activeVersion"`
	}{s.engine.ActiveModelVersion()})
}

// handleModelRetrain forces a retrain cycle off the journal
// ({"trigger": "why"}; defaults to "manual"). The new candidate enters
// shadow evaluation like a drift-triggered one; poll GET /v1/models for
// its fate.
func (s *Server) handleModelRetrain(w http.ResponseWriter, r *http.Request) {
	admin, ok := s.admin(w)
	if !ok {
		return
	}
	req := struct {
		Trigger string `json:"trigger"`
	}{Trigger: "manual"}
	if !decodeAdminBody(w, r, &req) {
		return
	}
	if err := admin.Retrain(req.Trigger); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		Status string `json:"status"`
	}{"retraining"})
}

// handleHealth answers liveness probes: the process is up and serving.
// It deliberately stays 200 under degradation — restarting the daemon
// does not undegrade a session, so liveness must not trigger restarts.
// Readiness (should this instance take traffic?) is /readyz's question.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady answers readiness probes: 200 {"ready":true} when the
// engine can do its job, 503 with the reasons when it cannot (degraded
// sessions, or the last WAL append failed so intake is not being
// persisted). Load balancers should route on this, not /healthz.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	reasons := s.engine.ReadyReasons()
	out := struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons,omitempty"`
	}{Ready: len(reasons) == 0, Reasons: reasons}
	status := http.StatusOK
	if !out.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

// handleMetrics renders the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.engine.Metrics().WriteText(w) // connection may be gone; nothing to do
}

// jsonLatency is the wire shape of a latency snapshot.
type jsonLatency struct {
	Count uint64 `json:"count"`
	Mean  string `json:"mean"`
	P50   string `json:"p50"`
	P90   string `json:"p90"`
	P99   string `json:"p99"`
	Max   string `json:"max"`
}

func toJSONLatency(l LatencySnapshot) jsonLatency {
	return jsonLatency{
		Count: l.Count,
		Mean:  l.Mean.String(),
		P50:   l.P50.String(),
		P90:   l.P90.String(),
		P99:   l.P99.String(),
		Max:   l.Max.String(),
	}
}

// jsonShadow is the wire shape of a shadow-evaluation snapshot.
type jsonShadow struct {
	Active          bool      `json:"active"`
	Version         uint64    `json:"version,omitempty"`
	Since           time.Time `json:"since,omitempty"`
	Banks           int       `json:"banks"`
	Events          uint64    `json:"events"`
	UEREvents       uint64    `json:"uerEvents"`
	Decisions       uint64    `json:"decisions"`
	Agreements      uint64    `json:"agreements"`
	PrimaryActions  uint64    `json:"primaryActions"`
	ShadowActions   uint64    `json:"shadowActions"`
	PrimaryICR      float64   `json:"primaryICR"`
	ShadowICR       float64   `json:"shadowICR"`
	CandidatePanics uint64    `json:"candidatePanics"`
}

func toJSONShadow(ss ShadowStats) jsonShadow {
	js := jsonShadow{
		Active:          ss.Active,
		Version:         ss.Version,
		Banks:           ss.Banks,
		Events:          ss.Events,
		UEREvents:       ss.UEREvents,
		Decisions:       ss.Decisions,
		Agreements:      ss.Agreements,
		PrimaryActions:  ss.PrimaryActions,
		ShadowActions:   ss.ShadowActions,
		PrimaryICR:      ss.PrimaryICR.Rate(),
		ShadowICR:       ss.ShadowICR.Rate(),
		CandidatePanics: ss.CandidatePanics,
	}
	if !ss.Since.IsZero() {
		js.Since = ss.Since.UTC()
	}
	return js
}

// handleStats reports engine and server counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.engine.Stats()
	s.mu.Lock()
	stored, evicted := len(s.stored), s.evicted
	s.mu.Unlock()
	// Per-session pinned versions, folded to counts: version -> sessions
	// still pinned to it. The interesting signal after a swap is how much
	// of the fleet still rides the old model.
	pinned := make(map[uint64]int)
	for _, ses := range s.engine.Sessions() {
		pinned[ses.ModelVersion]++
	}
	out := struct {
		Uptime         string         `json:"uptime"`
		Ingested       uint64         `json:"ingested"`
		Dropped        uint64         `json:"dropped"`
		Processed      uint64         `json:"processed"`
		IngestRate     float64        `json:"ingestRatePerSec"`
		SessionsLive   int            `json:"sessionsLive"`
		Shards         int            `json:"shards"`
		QueueDepths    []int          `json:"queueDepths"`
		ActionsEmitted uint64         `json:"actionsEmitted"`
		ActionsDropped uint64         `json:"actionsDropped"`
		ActionsStored  int            `json:"actionsStored"`
		ActionsEvicted uint64         `json:"actionsEvicted"`
		HTTPRequests   uint64         `json:"httpRequests"`
		Decode         jsonLatency    `json:"decodeLatency"`
		IngestWait     jsonLatency    `json:"ingestWaitLatency"`
		Process        jsonLatency    `json:"processLatency"`
		StateBytes     int64          `json:"featureStateBytes"`
		StateRows      int64          `json:"featureStateRows"`
		StateReleased  int            `json:"sessionsReleased"`
		ShardStateB    []int64        `json:"shardFeatureStateBytes"`
		Quarantined    uint64         `json:"quarantined"`
		Degraded       int            `json:"sessionsDegraded"`
		WALEnabled     bool           `json:"walEnabled"`
		WALAppended    uint64         `json:"walAppended,omitempty"`
		WALSegments    int            `json:"walSegments,omitempty"`
		WALNextLSN     uint64         `json:"walNextLSN,omitempty"`
		SnapshotSeq    uint64         `json:"lastSnapshotSeq,omitempty"`
		RecoveredSess  int            `json:"recoveredSessions,omitempty"`
		RecoveredEvts  uint64         `json:"recoveredEvents,omitempty"`
		RetentionErrs  uint64         `json:"retentionErrors"`
		WALAppendErrs  uint64         `json:"walAppendErrors"`
		LastAppendErr  string         `json:"lastWALAppendError,omitempty"`
		ActiveModelV   uint64         `json:"activeModelVersion"`
		ModelSwaps     uint64         `json:"modelSwaps"`
		PinnedSessions map[uint64]int `json:"sessionsByModelVersion"`
		Shadow         jsonShadow     `json:"shadow"`
	}{
		Uptime:         es.Uptime.String(),
		Ingested:       es.Ingested,
		Dropped:        es.Dropped,
		Processed:      es.Processed,
		IngestRate:     es.IngestRate,
		SessionsLive:   es.SessionsLive,
		Shards:         es.Shards,
		QueueDepths:    es.QueueDepths,
		ActionsEmitted: es.ActionsEmitted,
		ActionsDropped: es.ActionsDropped,
		ActionsStored:  stored,
		ActionsEvicted: evicted,
		HTTPRequests:   s.requests.Value(),
		Decode:         toJSONLatency(s.decode.snapshot()),
		IngestWait:     toJSONLatency(es.IngestWait),
		Process:        toJSONLatency(es.Process),
		StateBytes:     es.FeatureStateBytes,
		StateRows:      es.FeatureStateRows,
		StateReleased:  es.SessionsReleased,
		ShardStateB:    es.ShardStateBytes,
		Quarantined:    es.Quarantined,
		Degraded:       es.SessionsDegraded,
		WALEnabled:     es.WALEnabled,
		WALAppended:    es.WALAppended,
		WALSegments:    es.WALSegments,
		WALNextLSN:     es.WALNextLSN,
		SnapshotSeq:    es.LastSnapshotSeq,
		RecoveredSess:  es.RecoveredSessions,
		RecoveredEvts:  es.RecoveredEvents,
		RetentionErrs:  es.RetentionErrors,
		WALAppendErrs:  es.WALAppendErrors,
		LastAppendErr:  es.LastWALAppendError,
		ActiveModelV:   es.ActiveModelVersion,
		ModelSwaps:     es.ModelSwaps,
		PinnedSessions: pinned,
		Shadow:         toJSONShadow(es.Shadow),
	}
	writeJSON(w, http.StatusOK, out)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection may already be gone; nothing to do
}
