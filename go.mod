module cordial

go 1.22
