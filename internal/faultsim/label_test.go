package faultsim

import (
	"testing"

	"cordial/internal/hbm"
	"cordial/internal/xrand"
)

func TestLabelPatternGeometry(t *testing.T) {
	geo := hbm.DefaultGeometry
	half := geo.RowsPerBank / 2
	cases := []struct {
		name string
		rows []int
		cols map[int]int
		want Pattern
	}{
		{"single cluster", []int{100, 140, 90, 210}, map[int]int{3: 2, 9: 2}, PatternSingleRow},
		{"one row", []int{5000}, map[int]int{0: 1}, PatternSingleRow},
		{"two clusters", []int{1000, 1060, 5000, 5100}, map[int]int{1: 4}, PatternDoubleRow},
		{"half-total gap", []int{1000, 1050, 1000 + half, 1020 + half}, map[int]int{1: 4}, PatternHalfTotalRow},
		{"scattered", []int{100, 2000, 9000, 15000, 22000, 30000}, map[int]int{1: 6}, PatternScattered},
		{
			"whole column",
			func() []int {
				rows := make([]int, 30)
				for i := range rows {
					rows[i] = i * 1000
				}
				return rows
			}(),
			map[int]int{7: 30},
			PatternWholeColumn,
		},
		{
			// Many rows but columns spread out: spatial clustering wins.
			"many rows many columns",
			func() []int {
				rows := make([]int, 20)
				for i := range rows {
					rows[i] = i * 1500
				}
				return rows
			}(),
			map[int]int{1: 5, 2: 5, 3: 5, 4: 5},
			PatternScattered,
		},
	}
	for _, tc := range cases {
		if got := LabelPattern(geo, tc.rows, tc.cols); got != tc.want {
			t.Errorf("%s: LabelPattern = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestObservedFaultRecoversGroundTruth round-trips generated banks through
// the self-labeller: the observed event log alone must recover the
// classifier class (what training consumes) for nearly every bank, and the
// derived UER row/time/suddenness ground truth must match the generator's
// exactly.
func TestObservedFaultRecoversGroundTruth(t *testing.T) {
	geo := hbm.DefaultGeometry
	gen, err := NewGenerator(DefaultConfig(geo), xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	weights := DefaultPatternWeights()
	const banks = 200
	agree := 0
	for i := 0; i < banks; i++ {
		// Spread banks across groups within geometry bounds; Bank: i % 16
		// would overflow the 4-bank groups and alias under checked packing.
		bank := hbm.BankAddress{NPU: i % 8, HBM: (i / 8) % 2, BankGroup: (i / 4) % 4, Bank: i % 4}
		bf, err := gen.GenerateSampled(bank, weights)
		if err != nil {
			t.Fatal(err)
		}
		obs, err := ObservedFault(geo, bank, bf.Events)
		if err != nil {
			t.Fatalf("bank %d: %v", i, err)
		}
		if len(obs.UERRows) != len(bf.UERRows) {
			t.Fatalf("bank %d: observed %d UER rows, generated %d",
				i, len(obs.UERRows), len(bf.UERRows))
		}
		// First-UER ORDER is ambiguous when the generator clamps several
		// rows' first UERs to the window end (tied timestamps), so compare
		// per-row: same row set, same first-UER time for each row.
		genTime := make(map[int]int, len(bf.UERRows))
		for j, r := range bf.UERRows {
			genTime[r] = j
		}
		for j, r := range obs.UERRows {
			gj, ok := genTime[r]
			if !ok {
				t.Fatalf("bank %d: observed UER row %d not in ground truth", i, r)
			}
			if !obs.UERTimes[j].Equal(bf.UERTimes[gj]) {
				t.Fatalf("bank %d row %d: observed time %v, generated %v",
					i, r, obs.UERTimes[j], bf.UERTimes[gj])
			}
			// Row-level suddenness can legitimately differ: background
			// bank activity may land in a "sudden" UER row before it
			// fails. Only the one direction must hold: a generated
			// non-sudden row (planted precursors) can never be observed
			// sudden.
			if !bf.SuddenRow[gj] && obs.SuddenRow[j] {
				t.Fatalf("bank %d row %d: generated non-sudden observed as sudden", i, r)
			}
			if j > 0 && obs.UERTimes[j].Before(obs.UERTimes[j-1]) {
				t.Fatalf("bank %d: observed UER times not nondecreasing", i)
			}
		}
		if obs.Class() == bf.Class() {
			agree++
		}
	}
	if agree < banks*95/100 {
		t.Fatalf("self-label class agreement %d/%d below 95%%", agree, banks)
	}
}
