package cluster

import (
	"fmt"
	"testing"
)

// members builds n test members named node-0..node-(n-1).
func members(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: fmt.Sprintf("node-%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return out
}

// sampleKeys fabricates a deterministic spread of bank keys. Real bank
// keys are packed addresses with low bits zeroed; multiplying by a large
// odd constant mimics that sparse, structured distribution.
func sampleKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 0x10002000400 // structured, non-dense, distinct
	}
	return keys
}

// TestRingDeterministicAndTotal pins the two placement invariants every
// participant relies on: the same descriptor yields the same owner for
// every key (determinism across independent builds), and every key has
// exactly one owner (totality).
func TestRingDeterministicAndTotal(t *testing.T) {
	desc := Descriptor{Epoch: 3, Members: members(5)}
	r1, err := BuildRing(desc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BuildRing(desc)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sampleKeys(4096) {
		o1, ok1 := r1.Owner(k)
		o2, ok2 := r2.Owner(k)
		if !ok1 || !ok2 {
			t.Fatalf("key %#x has no owner", k)
		}
		if o1.ID != o2.ID {
			t.Fatalf("key %#x placed on %s and %s by identical descriptors", k, o1.ID, o2.ID)
		}
	}
	// Member order must not affect placement: reverse the member list.
	rev := Descriptor{Epoch: 3, Members: members(5)}
	for i, j := 0, len(rev.Members)-1; i < j; i, j = i+1, j-1 {
		rev.Members[i], rev.Members[j] = rev.Members[j], rev.Members[i]
	}
	r3, err := BuildRing(rev)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sampleKeys(4096) {
		if r1.OwnerID(k) != r3.OwnerID(k) {
			t.Fatalf("key %#x placement depends on member order", k)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing contract the whole
// handoff design depends on: one membership change moves at most 2/N of
// the banks (the theoretical expectation is ~1/N on join of an (N+1)th
// node; 2/N leaves headroom for vnode variance without letting a modulo
// ring — which moves ~(N-1)/N — sneak back in).
func TestRingMinimalMovement(t *testing.T) {
	keys := sampleKeys(20000)
	for _, n := range []int{2, 3, 5, 8} {
		before, err := BuildRing(Descriptor{Epoch: 1, Members: members(n)})
		if err != nil {
			t.Fatal(err)
		}
		// Join: add one node.
		joined, err := BuildRing(Descriptor{Epoch: 2, Members: members(n + 1)})
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			if before.OwnerID(k) != joined.OwnerID(k) {
				moved++
			}
		}
		if limit := 2 * len(keys) / n; moved > limit {
			t.Errorf("join at n=%d moved %d/%d keys, want <= %d (2/N)", n, moved, len(keys), limit)
		}
		// Every moved key must land on the joiner — anything else is
		// gratuitous reshuffling between survivors.
		for _, k := range keys {
			ob, oa := before.OwnerID(k), joined.OwnerID(k)
			if ob != oa && oa != fmt.Sprintf("node-%d", n) {
				t.Fatalf("join at n=%d moved key %#x between survivors (%s -> %s)", n, k, ob, oa)
			}
		}
		// Leave: remove the first node from the n-member ring.
		left, err := BuildRing(Descriptor{Epoch: 2, Members: members(n)[1:]})
		if err != nil {
			t.Fatal(err)
		}
		moved = 0
		for _, k := range keys {
			ob, oa := before.OwnerID(k), left.OwnerID(k)
			if ob != oa {
				moved++
				if ob != "node-0" {
					t.Fatalf("leave at n=%d moved key %#x that node-0 never owned (%s -> %s)", n, k, ob, oa)
				}
			}
		}
		if limit := 2 * len(keys) / n; moved > limit {
			t.Errorf("leave at n=%d moved %d/%d keys, want <= %d (2/N)", n, moved, len(keys), limit)
		}
	}
}

// TestRingBalance sanity-checks virtual-node balance: with the default
// vnode count no member's share may exceed twice the mean.
func TestRingBalance(t *testing.T) {
	keys := sampleKeys(20000)
	for _, n := range []int{2, 4, 8} {
		r, err := BuildRing(Descriptor{Epoch: 1, Members: members(n)})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.OwnerID(k)]++
		}
		mean := len(keys) / n
		for id, c := range counts {
			if c > 2*mean {
				t.Errorf("n=%d: member %s owns %d keys, mean %d — vnode balance broken", n, id, c, mean)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d members own keys", n, len(counts))
		}
	}
}

// TestRingValidation covers the descriptor error paths and the empty ring.
func TestRingValidation(t *testing.T) {
	if _, err := BuildRing(Descriptor{Members: []Member{{ID: "a"}, {ID: "a"}}}); err == nil {
		t.Error("duplicate member IDs accepted")
	}
	if _, err := BuildRing(Descriptor{Members: []Member{{ID: ""}}}); err == nil {
		t.Error("empty member ID accepted")
	}
	empty, err := BuildRing(Descriptor{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := empty.Owner(42); ok {
		t.Error("empty ring claims an owner")
	}
	if id := empty.OwnerID(42); id != "" {
		t.Errorf("empty ring OwnerID = %q", id)
	}
}
