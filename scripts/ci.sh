#!/bin/sh
# CI gate: formatting, vet, build, the full test suite, and the same suite
# under the race detector. The race pass is load-bearing — internal/stream
# is a concurrent engine and its tests are written to provoke races.
#
# Usage: scripts/ci.sh [extra go-test args]
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test"
go test ./... "$@"

echo "==> go test -race"
go test -race ./... "$@"

echo "==> ok"
