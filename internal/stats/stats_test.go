package stats

import (
	"math"
	"testing"

	"cordial/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Fatal("Mean(nil) did not error")
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %g, err=%v", m, err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if _, err := Variance([]float64{1}); err == nil {
		t.Fatal("Variance of one value did not error")
	}
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g, want %g", v, 32.0/7.0)
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %g", sd)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %g,%g err=%v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("MinMax(nil) did not error")
	}
}

func TestQuantileAndMedian(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	med, err := Median(xs)
	if err != nil || med != 3 {
		t.Fatalf("Median = %g err=%v", med, err)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 5 {
		t.Fatalf("Quantile extremes = %g,%g", q0, q1)
	}
	q25, _ := Quantile(xs, 0.25)
	if q25 != 2 {
		t.Fatalf("Quantile(0.25) = %g, want 2", q25)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("Quantile(1.5) did not error")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestChiSquareGoodnessOfFitKnownValue(t *testing.T) {
	// Classic die example: 60 rolls, observed vs uniform expectation 10.
	observed := []float64{5, 8, 9, 8, 10, 20}
	expected := []float64{10, 10, 10, 10, 10, 10}
	stat, df, err := ChiSquareGoodnessOfFit(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	if df != 5 {
		t.Fatalf("df = %d, want 5", df)
	}
	want := (25 + 4 + 1 + 4 + 0 + 100) / 10.0
	if !almostEqual(stat, want, 1e-12) {
		t.Fatalf("stat = %g, want %g", stat, want)
	}
}

func TestChiSquareGoodnessOfFitEdgeCases(t *testing.T) {
	if _, _, err := ChiSquareGoodnessOfFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single cell accepted")
	}
	if _, _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquareGoodnessOfFit([]float64{-1, 2}, []float64{1, 2}); err == nil {
		t.Error("negative observed accepted")
	}
	stat, _, err := ChiSquareGoodnessOfFit([]float64{5, 0}, []float64{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(stat, 1) {
		t.Errorf("zero-expected non-zero-observed stat = %g, want +Inf", stat)
	}
}

func TestChiSquareContingencyKnownValue(t *testing.T) {
	// 2x2 example with hand-computed statistic:
	// [10 20; 30 40]: row sums 30,70; col sums 40,60; total 100.
	table := [][]float64{{10, 20}, {30, 40}}
	stat, df, err := ChiSquareContingency(table)
	if err != nil {
		t.Fatal(err)
	}
	if df != 1 {
		t.Fatalf("df = %d, want 1", df)
	}
	// E = [12 18; 28 42]; chi2 = 4/12+4/18+4/28+4/42 = 0.79365...
	want := 4.0/12 + 4.0/18 + 4.0/28 + 4.0/42
	if !almostEqual(stat, want, 1e-12) {
		t.Fatalf("stat = %g, want %g", stat, want)
	}
}

func TestChiSquareContingencyErrors(t *testing.T) {
	if _, _, err := ChiSquareContingency([][]float64{{1, 2}}); err == nil {
		t.Error("single row accepted")
	}
	if _, _, err := ChiSquareContingency([][]float64{{1}, {2}}); err == nil {
		t.Error("single column accepted")
	}
	if _, _, err := ChiSquareContingency([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table accepted")
	}
	if _, _, err := ChiSquareContingency([][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Error("all-zero table accepted")
	}
	if _, _, err := ChiSquareContingency([][]float64{{1, -2}, {3, 4}}); err == nil {
		t.Error("negative cell accepted")
	}
}

func TestChiSquarePValueKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	tests := []struct {
		stat float64
		df   int
		want float64
		tol  float64
	}{
		{3.841, 1, 0.05, 1e-3},
		{6.635, 1, 0.01, 1e-3},
		{5.991, 2, 0.05, 1e-3},
		{11.070, 5, 0.05, 1e-3},
		{0, 3, 1, 1e-12},
	}
	for _, tc := range tests {
		got, err := ChiSquarePValue(tc.stat, tc.df)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want, tc.tol) {
			t.Errorf("p(stat=%g, df=%d) = %g, want ~%g", tc.stat, tc.df, got, tc.want)
		}
	}
}

func TestChiSquarePValueMonotoneInStat(t *testing.T) {
	prev := 1.1
	for stat := 0.0; stat <= 50; stat += 0.5 {
		p, err := ChiSquarePValue(stat, 4)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone: p(%g)=%g > previous %g", stat, p, prev)
		}
		prev = p
	}
}

func TestChiSquarePValueEdges(t *testing.T) {
	if _, err := ChiSquarePValue(1, 0); err == nil {
		t.Error("df=0 accepted")
	}
	if _, err := ChiSquarePValue(-1, 1); err == nil {
		t.Error("negative stat accepted")
	}
	p, err := ChiSquarePValue(math.Inf(1), 2)
	if err != nil || p != 0 {
		t.Errorf("p(+Inf) = %g err=%v, want 0", p, err)
	}
}

func TestChiSquareDistributionSelfConsistency(t *testing.T) {
	// Sum of df squared standard normals is chi-square(df): the empirical
	// exceedance rate of the 5% critical value should be ≈5%.
	r := xrand.New(123)
	const trials = 20000
	exceed := 0
	for i := 0; i < trials; i++ {
		s := 0.0
		for j := 0; j < 3; j++ {
			v := r.NormFloat64()
			s += v * v
		}
		if s >= 7.815 { // chi2(3) 5% critical value
			exceed++
		}
	}
	rate := float64(exceed) / trials
	if math.Abs(rate-0.05) > 0.007 {
		t.Fatalf("empirical exceedance = %g, want ~0.05", rate)
	}
}

func BenchmarkChiSquarePValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquarePValue(12.3, 4); err != nil {
			b.Fatal(err)
		}
	}
}
